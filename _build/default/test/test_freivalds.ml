(* Freivalds' algorithm inside the proving system (paper §6 "Linear
   layers"): the matrix product C = A * B is computed outside the
   circuit; the circuit only verifies C r = A (B r) for a random vector
   r = (1, rho, rho^2, ...) derived from a transcript challenge after A,
   B and C are committed. This exercises the multi-phase / challenge
   machinery on its real use case and checks soundness: a single wrong
   entry of C is caught.

   Columns: advice 0 (phase 0) = streamed matrix entries; advice 1 and 2
   (phase 1) = challenge-dependent operands and running accumulators.
   Rows: the power chain, then one accumulation run per dot product
   (u = B r, then v = A u, then w = C r plus an equality row); copy
   constraints wire every reused value (powers, u, final accumulators)
   to its producer, and a reset selector pins each accumulator start to
   zero. *)

open Zkml_plonkish
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Proto = Protocol.Make (Kzg)
module F = Zkml_ff.Fp61

let m_dim = 4
let k_dim = 5
let n_dim = 3
let k = 8
let n_rows = 1 lsl k
let blinding = 5
let params = Kzg.setup ~max_size:n_rows ~seed:"freivalds"

(* structural row positions (challenge-independent) *)
let power_row j = j
let u_start i = n_dim + (i * (n_dim + 1))
let u_final i = u_start i + n_dim
let v_start i = n_dim + (k_dim * (n_dim + 1)) + (i * (k_dim + 1))
let v_final i = v_start i + k_dim
let w_base = n_dim + (k_dim * (n_dim + 1)) + (m_dim * (k_dim + 1))
let w_start i = w_base + (i * (n_dim + 2))
let w_final i = w_start i + n_dim
let eq_row i = w_start i + n_dim + 1
let total_rows = eq_row (m_dim - 1) + 1

let circuit : F.t Circuit.t =
  let open Expr in
  let copies = ref [] in
  let copy a b = copies := (a, b) :: !copies in
  (* operand wiring *)
  for i = 0 to k_dim - 1 do
    for j = 0 to n_dim - 1 do
      copy
        (Circuit.Col_advice 1, u_start i + j)
        (Circuit.Col_advice 1, power_row j)
    done
  done;
  for i = 0 to m_dim - 1 do
    for t = 0 to k_dim - 1 do
      copy (Circuit.Col_advice 1, v_start i + t) (Circuit.Col_advice 2, u_final t)
    done
  done;
  for i = 0 to m_dim - 1 do
    for j = 0 to n_dim - 1 do
      copy
        (Circuit.Col_advice 1, w_start i + j)
        (Circuit.Col_advice 1, power_row j)
    done;
    copy (Circuit.Col_advice 1, eq_row i) (Circuit.Col_advice 2, v_final i);
    copy (Circuit.Col_advice 2, eq_row i) (Circuit.Col_advice 2, w_final i)
  done;
  {
    Circuit.k;
    num_fixed = 5;
    (* s_pow, s_first, s_acc, s_eq, s_zero *)
    is_selector = [| true; true; true; true; true |];
    advice_phases = [| 0; 1; 1 |];
    num_instance = 0;
    num_challenges = 1;
    gates =
      [ {
          Circuit.gate_name = "power-chain";
          polys =
            [ Mul (fixed 0, Sub (advice ~rot:1 1, Mul (Challenge 0, advice 1)))
            ];
        };
        {
          Circuit.gate_name = "power-first";
          polys = [ Mul (fixed 1, Sub (advice 1, Const F.one)) ];
        };
        {
          Circuit.gate_name = "dot-accumulate";
          polys =
            [ Mul
                ( fixed 2,
                  Sub
                    (advice ~rot:1 2, Add (advice 2, Mul (advice 0, advice 1)))
                );
            ];
        };
        { Circuit.gate_name = "equal";
          polys = [ Mul (fixed 3, Sub (advice 2, advice 1)) ] };
        { Circuit.gate_name = "acc-reset";
          polys = [ Mul (fixed 4, advice 2) ] }
      ];
    lookups = [];
    copies = !copies;
    blinding;
  }

let fixed_columns () =
  let s_pow = Array.make n_rows F.zero in
  let s_first = Array.make n_rows F.zero in
  let s_acc = Array.make n_rows F.zero in
  let s_eq = Array.make n_rows F.zero in
  let s_zero = Array.make n_rows F.zero in
  s_first.(power_row 0) <- F.one;
  for j = 0 to n_dim - 2 do
    s_pow.(power_row j) <- F.one
  done;
  let run start len =
    s_zero.(start) <- F.one;
    for t = 0 to len - 1 do
      s_acc.(start + t) <- F.one
    done
  in
  for i = 0 to k_dim - 1 do
    run (u_start i) n_dim
  done;
  for i = 0 to m_dim - 1 do
    run (v_start i) k_dim
  done;
  for i = 0 to m_dim - 1 do
    run (w_start i) n_dim;
    s_eq.(eq_row i) <- F.one
  done;
  [| s_pow; s_first; s_acc; s_eq; s_zero |]

let build_advice ~a ~b ~c challenges =
  let col0 = Array.make n_rows F.zero in
  let col1 = Array.make n_rows F.zero in
  let col2 = Array.make n_rows F.zero in
  let rho = if Array.length challenges > 0 then challenges.(0) else F.zero in
  let r = Array.make n_dim F.one in
  for j = 1 to n_dim - 1 do
    r.(j) <- F.mul r.(j - 1) rho
  done;
  Array.iteri (fun j rj -> col1.(power_row j) <- rj) r;
  let run start xs ys =
    let acc = ref F.zero in
    Array.iteri
      (fun t x ->
        col0.(start + t) <- x;
        col1.(start + t) <- ys.(t);
        col2.(start + t) <- !acc;
        acc := F.add !acc (F.mul x ys.(t)))
      xs;
    col2.(start + Array.length xs) <- !acc;
    !acc
  in
  let u = Array.init k_dim (fun i -> run (u_start i) b.(i) r) in
  let v = Array.init m_dim (fun i -> run (v_start i) a.(i) u) in
  Array.iteri
    (fun i vi ->
      let wi = run (w_start i) c.(i) r in
      col1.(eq_row i) <- vi;
      col2.(eq_row i) <- wi)
    v;
  [| col0; col1; col2 |]

let random_matrix rng rows cols =
  Array.init rows (fun _ ->
      Array.init cols (fun _ -> F.of_int (Zkml_util.Rng.int rng 1000)))

let matmul a b =
  Array.init m_dim (fun i ->
      Array.init n_dim (fun j ->
          let acc = ref F.zero in
          for t = 0 to k_dim - 1 do
            acc := F.add !acc (F.mul a.(i).(t) b.(t).(j))
          done;
          !acc))

let run_freivalds ~corrupt =
  assert (total_rows < n_rows - blinding - 1);
  let rng = Zkml_util.Rng.create 77L in
  let a = random_matrix rng m_dim k_dim in
  let b = random_matrix rng k_dim n_dim in
  let c = matmul a b in
  if corrupt then c.(1).(2) <- F.add c.(1).(2) F.one;
  let keys = Proto.keygen params circuit ~fixed:(fixed_columns ()) in
  let prng = Zkml_util.Rng.create 9L in
  match
    Proto.prove params keys ~instance:[||]
      ~advice:(fun challenges -> build_advice ~a ~b ~c challenges)
      ~rng:prng
  with
  | proof -> Proto.verify params keys ~instance:[||] proof
  | exception _ -> false

let test_honest () =
  Alcotest.(check bool) "Freivalds accepts C = A*B" true
    (run_freivalds ~corrupt:false)

let test_corrupt () =
  Alcotest.(check bool) "Freivalds rejects corrupted C" false
    (run_freivalds ~corrupt:true)

(* why the paper uses Freivalds: MAC counts *)
let test_row_savings () =
  let naive = m_dim * n_dim * k_dim in
  let freivalds = (m_dim * k_dim) + (k_dim * n_dim) + (m_dim * n_dim) in
  Alcotest.(check bool)
    (Printf.sprintf "freivalds %d < naive %d MACs" freivalds naive)
    true (freivalds < naive)

let () =
  Alcotest.run "freivalds"
    [ ( "protocol",
        [ Alcotest.test_case "honest" `Quick test_honest;
          Alcotest.test_case "corrupt" `Quick test_corrupt;
          Alcotest.test_case "row_savings" `Quick test_row_savings
        ] )
    ]
