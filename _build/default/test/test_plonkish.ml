(* End-to-end tests of the Plonkish protocol on small hand-built
   circuits: completeness, and soundness against corrupted witnesses,
   instances and proofs. *)

open Zkml_plonkish

module Make_suite (Scheme : Zkml_commit.Scheme_intf.S) = struct
  module Proto = Protocol.Make (Scheme)
  module F = Proto.F

  let rng = Zkml_util.Rng.create 101L
  let params = Scheme.setup ~max_size:64 ~seed:"plonkish-test"

  (* Circuit 1: one multiplication gate + copies + a ReLU-style lookup.
     Columns: fixed = [s_mul; t_in; t_out; s_lk], advice = [a; b; c],
     instance = [out]. *)
  let k = 5
  let n = 1 lsl k
  let blinding = 5
  let u = n - blinding - 1

  let circuit : F.t Circuit.t =
    let open Expr in
    {
      k;
      num_fixed = 4;
      is_selector = [| true; false; false; true |];
      advice_phases = [| 0; 0; 0 |];
      num_instance = 1;
      num_challenges = 0;
      gates =
        [ {
            gate_name = "mul";
            polys = [ Mul (fixed 0, Sub (advice 2, Mul (advice 0, advice 1))) ];
          }
        ];
      lookups =
        [ {
            lookup_name = "relu";
            inputs = [ Mul (fixed 3, advice 0); Mul (fixed 3, advice 1) ];
            tables = [ fixed 1; fixed 2 ];
          }
        ];
      copies =
        [ ((Circuit.Col_advice 2, 0), (Circuit.Col_instance 0, 0));
          (* chain: c at row 0 equals a at row 1 *)
          ((Circuit.Col_advice 2, 0), (Circuit.Col_advice 0, 1));
        ];
      blinding;
    }

  (* table: (i, relu(i)) for i in -8..8 (0 included for inactive rows) *)
  let fixed_cols () =
    let s_mul = Array.make n F.zero in
    let t_in = Array.make n F.zero in
    let t_out = Array.make n F.zero in
    let s_lk = Array.make n F.zero in
    s_mul.(0) <- F.one;
    s_mul.(1) <- F.one;
    List.iteri
      (fun row i ->
        t_in.(row) <- F.of_int i;
        t_out.(row) <- F.of_int (max 0 i))
      (List.init 17 (fun j -> j - 8));
    s_lk.(1) <- F.one;
    [| s_mul; t_in; t_out; s_lk |]

  let good_advice () =
    let a = Array.make n F.zero in
    let b = Array.make n F.zero in
    let c = Array.make n F.zero in
    (* row 0: 3 * 4 = 12 *)
    a.(0) <- F.of_int 3;
    b.(0) <- F.of_int 4;
    c.(0) <- F.of_int 12;
    (* row 1: a = 12 (copied from c row 0); multiplied by b=0 -> c=0;
       lookup checks relu: but 12 is outside the table, so use b as the
       relu output of... choose a value in range instead. *)
    a.(1) <- F.of_int 12;
    b.(1) <- F.zero;
    c.(1) <- F.zero;
    [| a; b; c |]

  (* 12 is outside the relu table (-8..8); fix row 1 to satisfy both the
     mul gate, the copy and the lookup by adjusting the scenario: the
     copy forces a.(1) = 12, so the lookup selector must instead point at
     another row. Use row 2 for the lookup. *)
  let fixed_cols () =
    let f = fixed_cols () in
    f.(3).(1) <- F.zero;
    f.(3).(2) <- F.one;
    f
    [@@warning "-32"]

  let good_advice () =
    let adv = good_advice () in
    (* row 2: lookup row: a = -3, b = relu(-3) = 0; no mul selector *)
    adv.(0).(2) <- F.of_int (-3);
    adv.(1).(2) <- F.zero;
    adv

  let instance_cols out_value =
    let col = Array.make n F.zero in
    col.(0) <- out_value;
    [| col |]

  let keys = lazy (Proto.keygen params circuit ~fixed:(fixed_cols ()))

  let prove_good () =
    let keys = Lazy.force keys in
    let adv = good_advice () in
    Proto.prove params keys
      ~instance:(instance_cols (F.of_int 12))
      ~advice:(fun _ -> Array.map Array.copy adv)
      ~rng

  let test_completeness () =
    let keys = Lazy.force keys in
    let proof = prove_good () in
    Alcotest.(check bool)
      "valid proof accepted" true
      (Proto.verify params keys ~instance:(instance_cols (F.of_int 12)) proof)

  let test_wrong_instance () =
    let keys = Lazy.force keys in
    let proof = prove_good () in
    Alcotest.(check bool)
      "wrong instance rejected" false
      (Proto.verify params keys ~instance:(instance_cols (F.of_int 13)) proof)

  let test_gate_violation () =
    let keys = Lazy.force keys in
    let adv = good_advice () in
    adv.(2).(0) <- F.of_int 13;
    (* also fix the copy target so only the gate is violated *)
    adv.(0).(1) <- F.of_int 13;
    let proof =
      Proto.prove params keys
        ~instance:(instance_cols (F.of_int 13))
        ~advice:(fun _ -> Array.map Array.copy adv)
        ~rng
    in
    Alcotest.(check bool)
      "gate violation rejected" false
      (Proto.verify params keys ~instance:(instance_cols (F.of_int 13)) proof)

  let test_copy_violation () =
    let keys = Lazy.force keys in
    let adv = good_advice () in
    (* break the advice-advice copy: a.(1) must equal c.(0) = 12 *)
    adv.(0).(1) <- F.of_int 7;
    let proof =
      Proto.prove params keys
        ~instance:(instance_cols (F.of_int 12))
        ~advice:(fun _ -> Array.map Array.copy adv)
        ~rng
    in
    Alcotest.(check bool)
      "copy violation rejected" false
      (Proto.verify params keys ~instance:(instance_cols (F.of_int 12)) proof)

  let test_lookup_violation () =
    let keys = Lazy.force keys in
    let adv = good_advice () in
    (* row 2: claim relu(-3) = 2, which is not a table row *)
    adv.(1).(2) <- F.of_int 2;
    match
      Proto.prove params keys
        ~instance:(instance_cols (F.of_int 12))
        ~advice:(fun _ -> Array.map Array.copy adv)
        ~rng
    with
    | exception Invalid_argument _ ->
        (* honest prover machinery refuses: input not in table *)
        ()
    | proof ->
        Alcotest.(check bool)
          "lookup violation rejected" false
          (Proto.verify params keys
             ~instance:(instance_cols (F.of_int 12))
             proof)

  let test_corrupted_proof () =
    let keys = Lazy.force keys in
    let proof = prove_good () in
    let corrupted =
      { proof with
        evals =
          (let e = Array.copy proof.Proto.evals in
           e.(0) <- F.add e.(0) F.one;
           e)
      }
    in
    Alcotest.(check bool)
      "corrupted eval rejected" false
      (Proto.verify params keys
         ~instance:(instance_cols (F.of_int 12))
         corrupted)

  let test_proof_bytes () =
    let proof = prove_good () in
    let bytes = Proto.proof_to_bytes proof in
    Alcotest.(check bool) "nonempty" true (String.length bytes > 100);
    Alcotest.(check int)
      "size accessor" (String.length bytes)
      (Proto.proof_size_bytes proof)

  (* Circuit 2: challenge + phase-1 advice. Gate: s * (c - r*a) with
     r = Challenge 0 and c in phase 1. *)
  let chal_circuit : F.t Circuit.t =
    let open Expr in
    {
      k;
      num_fixed = 1;
      is_selector = [| true |];
      advice_phases = [| 0; 1 |];
      num_instance = 0;
      num_challenges = 1;
      gates =
        [ {
            gate_name = "scale-by-challenge";
            polys =
              [ Mul (fixed 0, Sub (advice 1, Mul (Challenge 0, advice 0))) ];
          }
        ];
      lookups = [];
      copies = [];
      blinding;
    }

  let test_challenge_phase () =
    let s = Array.make n F.zero in
    s.(0) <- F.one;
    s.(3) <- F.one;
    let keys = Proto.keygen params chal_circuit ~fixed:[| s |] in
    let a = Array.make n F.zero in
    a.(0) <- F.of_int 5;
    a.(3) <- F.of_int 9;
    let advice challenges =
      let c = Array.make n F.zero in
      if Array.length challenges > 0 then begin
        c.(0) <- F.mul challenges.(0) a.(0);
        c.(3) <- F.mul challenges.(0) a.(3)
      end;
      [| Array.copy a; c |]
    in
    let proof = Proto.prove params keys ~instance:[||] ~advice ~rng in
    Alcotest.(check bool)
      "challenge circuit accepted" true
      (Proto.verify params keys ~instance:[||] proof);
    (* wrong phase-1 witness must fail *)
    let bad_advice challenges =
      let c = Array.make n F.zero in
      if Array.length challenges > 0 then
        c.(0) <- F.add F.one (F.mul challenges.(0) a.(0));
      [| Array.copy a; c |]
    in
    let proof =
      Proto.prove params keys ~instance:[||] ~advice:bad_advice ~rng
    in
    Alcotest.(check bool)
      "bad phase-1 witness rejected" false
      (Proto.verify params keys ~instance:[||] proof)

  (* Circuit 3: multi-row gate (rotation): s * (a(X) + a(wX) - b(X)). *)
  let multirow_circuit : F.t Circuit.t =
    let open Expr in
    {
      k;
      num_fixed = 1;
      is_selector = [| true |];
      advice_phases = [| 0; 0 |];
      num_instance = 0;
      num_challenges = 0;
      gates =
        [ {
            gate_name = "adjacent-sum";
            polys =
              [ Mul (fixed 0, Sub (advice 1, Add (advice 0, advice ~rot:1 0))) ];
          }
        ];
      lookups = [];
      copies = [];
      blinding;
    }

  let test_multirow () =
    let s = Array.make n F.zero in
    s.(2) <- F.one;
    let keys = Proto.keygen params multirow_circuit ~fixed:[| s |] in
    let a = Array.make n F.zero and b = Array.make n F.zero in
    a.(2) <- F.of_int 10;
    a.(3) <- F.of_int 32;
    b.(2) <- F.of_int 42;
    let adv = [| a; b |] in
    let proof =
      Proto.prove params keys ~instance:[||]
        ~advice:(fun _ -> Array.map Array.copy adv)
        ~rng
    in
    Alcotest.(check bool)
      "multi-row gate accepted" true
      (Proto.verify params keys ~instance:[||] proof);
    let bad = Array.map Array.copy adv in
    bad.(1).(2) <- F.of_int 41;
    let proof =
      Proto.prove params keys ~instance:[||]
        ~advice:(fun _ -> Array.map Array.copy bad)
        ~rng
    in
    Alcotest.(check bool)
      "multi-row violation rejected" false
      (Proto.verify params keys ~instance:[||] proof)

  let test_stats () =
    let st = Circuit.stats circuit in
    Alcotest.(check int) "rows" n st.Circuit.s_rows;
    Alcotest.(check int) "selectors" 2 st.Circuit.s_selectors;
    Alcotest.(check int) "advice" 3 st.Circuit.s_advice;
    Alcotest.(check int) "lookups" 1 st.Circuit.s_lookups;
    Alcotest.(check bool) "degree >= 3" true (st.Circuit.s_max_degree >= 3);
    Alcotest.(check int) "u" u (Circuit.last_row circuit)

  let suite =
    [ Alcotest.test_case "completeness" `Quick test_completeness;
      Alcotest.test_case "wrong_instance" `Quick test_wrong_instance;
      Alcotest.test_case "gate_violation" `Quick test_gate_violation;
      Alcotest.test_case "copy_violation" `Quick test_copy_violation;
      Alcotest.test_case "lookup_violation" `Quick test_lookup_violation;
      Alcotest.test_case "corrupted_proof" `Quick test_corrupted_proof;
      Alcotest.test_case "proof_bytes" `Quick test_proof_bytes;
      Alcotest.test_case "challenge_phase" `Quick test_challenge_phase;
      Alcotest.test_case "multirow" `Quick test_multirow;
      Alcotest.test_case "stats" `Quick test_stats
    ]
end

module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg_suite = Make_suite (Zkml_commit.Kzg.Make (Sim61))
module Ipa_suite = Make_suite (Zkml_commit.Ipa.Make (Sim61))
module Kzg_pallas_suite = Make_suite (Zkml_commit.Kzg.Make (Zkml_ec.Pallas))

let () =
  Alcotest.run "plonkish"
    [ ("kzg_fp61", Kzg_suite.suite);
      ("ipa_fp61", Ipa_suite.suite);
      ( "kzg_pallas",
        [ Alcotest.test_case "completeness" `Slow
            Kzg_pallas_suite.test_completeness
        ] )
    ]
