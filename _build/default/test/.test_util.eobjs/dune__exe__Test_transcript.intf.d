test/test_transcript.mli:
