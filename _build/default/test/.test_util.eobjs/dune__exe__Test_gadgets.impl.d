test/test_gadgets.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Test Zkml_commit Zkml_compiler Zkml_ec Zkml_ff Zkml_fixed Zkml_plonkish Zkml_util
