test/test_poly.ml: Alcotest Array List Zkml_ff Zkml_poly Zkml_util
