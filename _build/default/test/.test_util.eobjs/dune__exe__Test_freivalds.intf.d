test/test_freivalds.mli:
