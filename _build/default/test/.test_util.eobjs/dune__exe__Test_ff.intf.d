test/test_ff.mli:
