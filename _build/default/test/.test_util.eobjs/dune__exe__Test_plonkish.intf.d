test/test_plonkish.mli:
