test/test_freivalds.ml: Alcotest Array Circuit Expr Printf Protocol Zkml_commit Zkml_ec Zkml_ff Zkml_plonkish Zkml_util
