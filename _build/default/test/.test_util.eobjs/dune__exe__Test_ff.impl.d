test/test_ff.ml: Alcotest Array Int64 List Pasta Printf QCheck QCheck_alcotest String Test Zkml_ff Zkml_util
