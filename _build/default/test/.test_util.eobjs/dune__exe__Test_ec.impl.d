test/test_ec.ml: Alcotest Array List Printf Scalar String Zkml_ec Zkml_ff Zkml_util
