test/test_models.ml: Alcotest Array Bytes Char Float List String Zkml_commit Zkml_compiler Zkml_ec Zkml_ff Zkml_fixed Zkml_models Zkml_nn Zkml_tensor
