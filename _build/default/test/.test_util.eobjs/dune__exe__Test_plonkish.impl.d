test/test_plonkish.ml: Alcotest Array Circuit Expr Lazy List Protocol String Zkml_commit Zkml_ec Zkml_ff Zkml_plonkish Zkml_util
