test/test_nn.ml: Alcotest Array Float List Printf Zkml_fixed Zkml_nn Zkml_tensor Zkml_util
