test/test_commit.ml: Alcotest Printf String Zkml_commit Zkml_ec Zkml_ff Zkml_poly Zkml_transcript Zkml_util
