test/test_transcript.ml: Alcotest Array Hashtbl Int64 Printf Zkml_ff Zkml_transcript
