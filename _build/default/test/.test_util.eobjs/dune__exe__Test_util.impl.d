test/test_util.ml: Alcotest Char String Zkml_util
