(* Fiat-Shamir transcript tests: determinism, order and length
   sensitivity, domain separation, clone independence — the properties
   the non-interactive security of the whole prover rests on. *)

module T = Zkml_transcript.Transcript

module Make_suite (F : Zkml_ff.Field_intf.S) = struct
  module Ch = T.Challenge (F)

  let test_determinism () =
    let run () =
      let t = T.create "test" in
      T.absorb_bytes t ~label:"a" "hello";
      Ch.absorb_scalar t ~label:"b" (F.of_int 42);
      Ch.squeeze t ~label:"c"
    in
    Alcotest.(check bool) "same transcript, same challenge" true
      (F.equal (run ()) (run ()))

  let test_order_sensitivity () =
    let run first second =
      let t = T.create "test" in
      T.absorb_bytes t ~label:"x" first;
      T.absorb_bytes t ~label:"x" second;
      Ch.squeeze t ~label:"c"
    in
    Alcotest.(check bool) "absorb order matters" false
      (F.equal (run "a" "b") (run "b" "a"))

  let test_length_prefixing () =
    (* "ab" + "c" must differ from "a" + "bc": the encoding is
       length-prefixed, so no concatenation ambiguity *)
    let run a b =
      let t = T.create "test" in
      T.absorb_bytes t ~label:"x" a;
      T.absorb_bytes t ~label:"x" b;
      Ch.squeeze t ~label:"c"
    in
    Alcotest.(check bool) "no concatenation ambiguity" false
      (F.equal (run "ab" "c") (run "a" "bc"))

  let test_domain_separation () =
    let t1 = T.create "one" and t2 = T.create "two" in
    Alcotest.(check bool) "creation labels separate" false
      (F.equal (Ch.squeeze t1 ~label:"c") (Ch.squeeze t2 ~label:"c"));
    let t1 = T.create "same" and t2 = T.create "same" in
    T.absorb_bytes t1 ~label:"l1" "data";
    T.absorb_bytes t2 ~label:"l2" "data";
    Alcotest.(check bool) "absorb labels separate" false
      (F.equal (Ch.squeeze t1 ~label:"c") (Ch.squeeze t2 ~label:"c"));
    let t = T.create "same" in
    Alcotest.(check bool) "squeeze labels separate" false
      (F.equal
         (Ch.squeeze (T.clone t) ~label:"c1")
         (Ch.squeeze (T.clone t) ~label:"c2"))

  let test_squeeze_advances_state () =
    let t = T.create "test" in
    let c1 = Ch.squeeze t ~label:"c" in
    let c2 = Ch.squeeze t ~label:"c" in
    Alcotest.(check bool) "consecutive squeezes differ" false (F.equal c1 c2)

  let test_clone_independence () =
    let t = T.create "test" in
    let t' = T.clone t in
    T.absorb_bytes t ~label:"x" "mutate original";
    Alcotest.(check bool) "clone unaffected" false
      (F.equal (Ch.squeeze t ~label:"c") (Ch.squeeze t' ~label:"c"))

  let test_challenge_distribution () =
    (* crude sanity: challenges spread across the field (no stuck bits
       in the reduction): low 8 bits take many distinct values *)
    let t = T.create "dist" in
    let seen = Hashtbl.create 64 in
    for i = 1 to 200 do
      T.absorb_bytes t ~label:"i" (string_of_int i);
      let c = Ch.squeeze t ~label:"c" in
      let low = Int64.to_int (F.to_canonical_limbs c).(0) land 0xff in
      Hashtbl.replace seen low ()
    done;
    Alcotest.(check bool)
      (Printf.sprintf "low byte diversity (%d/256)" (Hashtbl.length seen))
      true
      (Hashtbl.length seen > 100)

  let suite =
    [ Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "order_sensitivity" `Quick test_order_sensitivity;
      Alcotest.test_case "length_prefixing" `Quick test_length_prefixing;
      Alcotest.test_case "domain_separation" `Quick test_domain_separation;
      Alcotest.test_case "squeeze_advances" `Quick test_squeeze_advances_state;
      Alcotest.test_case "clone_independence" `Quick test_clone_independence;
      Alcotest.test_case "distribution" `Quick test_challenge_distribution
    ]
end

module Fp61_suite = Make_suite (Zkml_ff.Fp61)
module Pasta_suite = Make_suite (Zkml_ff.Pasta.Fq)

let () =
  Alcotest.run "transcript"
    [ ("fp61", Fp61_suite.suite); ("pasta_fq", Pasta_suite.suite) ]
