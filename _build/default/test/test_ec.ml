(* SHA-256 vectors, curve group laws (Pallas + simulated), and MSM
   consistency against the naive sum. *)

let test_sha256_vectors () =
  let check input expected =
    Alcotest.(check string) input expected (Zkml_util.Sha256.hex_digest input)
  in
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  (* exercise multi-block padding boundary *)
  check (String.make 64 'a')
    "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"

module Group_suite (G : Zkml_ec.Group_intf.S) = struct
  module M = Zkml_ec.Msm.Make (G)

  let rng = Zkml_util.Rng.create 23L

  let check_eq msg a b = Alcotest.(check bool) msg true (G.equal a b)

  let test_group_laws () =
    let p = G.random rng and q = G.random rng and r = G.random rng in
    check_eq "assoc" (G.add (G.add p q) r) (G.add p (G.add q r));
    check_eq "comm" (G.add p q) (G.add q p);
    check_eq "identity" p (G.add p G.zero);
    check_eq "inverse" G.zero (G.add p (G.neg p));
    check_eq "double" (G.double p) (G.add p p)

  let test_scalar_mul () =
    let p = G.random rng in
    let three = G.Scalar.of_int 3 in
    check_eq "3p" (G.add p (G.add p p)) (G.mul p three);
    check_eq "0p" G.zero (G.mul p G.Scalar.zero);
    check_eq "1p" p (G.mul p G.Scalar.one);
    (* distributivity over scalar addition *)
    let a = G.Scalar.random rng and b = G.Scalar.random rng in
    check_eq "(a+b)P = aP + bP"
      (G.mul p (G.Scalar.add a b))
      (G.add (G.mul p a) (G.mul p b))

  let test_serialization () =
    let p = G.random rng in
    Alcotest.(check int) "size" G.size_bytes (String.length (G.to_bytes p));
    Alcotest.(check bool)
      "distinct points distinct bytes" false
      (String.equal (G.to_bytes p) (G.to_bytes (G.double p)))

  let test_derive_generators () =
    let gens = G.derive_generators "test" 8 in
    Alcotest.(check int) "count" 8 (Array.length gens);
    (* deterministic *)
    let gens' = G.derive_generators "test" 8 in
    Array.iteri (fun i g -> check_eq "deterministic" g gens'.(i)) gens;
    (* distinct *)
    for i = 0 to 6 do
      Alcotest.(check bool) "distinct" false (G.equal gens.(i) gens.(i + 1))
    done

  let test_msm_matches_naive () =
    List.iter
      (fun n ->
        let points = Array.init n (fun _ -> G.random rng) in
        let scalars = Array.init n (fun _ -> G.Scalar.random rng) in
        check_eq
          (Printf.sprintf "msm n=%d" n)
          (M.naive points scalars)
          (M.pippenger points scalars))
      [ 1; 2; 7; 33; 100 ]

  let suite =
    [ Alcotest.test_case "group_laws" `Quick test_group_laws;
      Alcotest.test_case "scalar_mul" `Quick test_scalar_mul;
      Alcotest.test_case "serialization" `Quick test_serialization;
      Alcotest.test_case "derive_generators" `Quick test_derive_generators;
      Alcotest.test_case "msm_matches_naive" `Quick test_msm_matches_naive
    ]
end

module Pallas_suite = Group_suite (Zkml_ec.Pallas)
module Sim_suite = Group_suite (Zkml_ec.Simulated.Make (Zkml_ff.Fp61))

(* Pallas-specific: the generator is on the curve and has order q
   (q * G = identity). *)
let test_pallas_order () =
  let open Zkml_ec.Pallas in
  let q_minus_1 = Scalar.neg Scalar.one in
  let p = mul generator q_minus_1 in
  Alcotest.(check bool) "(q-1)G = -G" true (equal p (neg generator));
  Alcotest.(check bool)
    "qG = 0" true
    (is_zero (add p generator))

let () =
  Alcotest.run "ec"
    [ ("sha256", [ Alcotest.test_case "vectors" `Quick test_sha256_vectors ]);
      ("pallas", Pallas_suite.suite);
      ("simulated", Sim_suite.suite);
      ("pallas_order", [ Alcotest.test_case "order" `Quick test_pallas_order ])
    ]
