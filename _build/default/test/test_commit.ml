(* Commitment scheme tests: completeness, rejection of wrong values /
   wrong points / corrupted proofs, homomorphic batching, and proof-size
   shape (IPA grows with log n, KZG constant). *)

module Make_suite
    (Scheme : Zkml_commit.Scheme_intf.S) =
struct
  module F = Scheme.G.Scalar
  module P = Zkml_poly.Polynomial.Make (F)
  module T = Zkml_transcript.Transcript

  let rng = Zkml_util.Rng.create 31L
  let params = Scheme.setup ~max_size:64 ~seed:"test"

  let test_open_verify () =
    for trial = 1 to 5 do
      let coeffs = P.random rng 33 in
      let c = Scheme.commit params coeffs in
      let z = F.random rng in
      let tp = T.create "open" in
      let v, proof = Scheme.open_at params tp coeffs z in
      Alcotest.(check bool)
        (Printf.sprintf "eval %d" trial)
        true
        (F.equal v (P.eval coeffs z));
      let tv = T.create "open" in
      Alcotest.(check bool)
        (Printf.sprintf "verify %d" trial)
        true
        (Scheme.verify params tv c ~point:z ~value:v proof)
    done

  let test_reject_wrong_value () =
    let coeffs = P.random rng 20 in
    let c = Scheme.commit params coeffs in
    let z = F.random rng in
    let tp = T.create "open" in
    let v, proof = Scheme.open_at params tp coeffs z in
    let tv = T.create "open" in
    Alcotest.(check bool)
      "wrong value rejected" false
      (Scheme.verify params tv c ~point:z ~value:(F.add v F.one) proof);
    let tv = T.create "open" in
    Alcotest.(check bool)
      "wrong point rejected" false
      (Scheme.verify params tv c ~point:(F.add z F.one) ~value:v proof);
    let tv = T.create "open" in
    let other = Scheme.commit params (P.random rng 20) in
    Alcotest.(check bool)
      "wrong commitment rejected" false
      (Scheme.verify params tv other ~point:z ~value:v proof)

  let test_homomorphic_batching () =
    (* open f + alpha*g via combined commitment: the RLC pattern used by
       the Plonkish prover *)
    let f = P.random rng 30 and g = P.random rng 25 in
    let alpha = F.random rng in
    let cf = Scheme.commit params f and cg = Scheme.commit params g in
    let combined = P.add f (P.scale alpha g) in
    let c_combined =
      Scheme.add_commitment cf (Scheme.scale_commitment cg alpha)
    in
    let z = F.random rng in
    let tp = T.create "batch" in
    let v, proof = Scheme.open_at params tp combined z in
    let tv = T.create "batch" in
    Alcotest.(check bool)
      "combined verifies" true
      (Scheme.verify params tv c_combined ~point:z ~value:v proof);
    Alcotest.(check bool)
      "value is f(z) + alpha g(z)" true
      (F.equal v (F.add (P.eval f z) (F.mul alpha (P.eval g z))))

  let test_zero_poly () =
    let coeffs = [| F.zero |] in
    let c = Scheme.commit params coeffs in
    let z = F.random rng in
    let tp = T.create "zero" in
    let v, proof = Scheme.open_at params tp coeffs z in
    let tv = T.create "zero" in
    Alcotest.(check bool) "zero value" true (F.is_zero v);
    Alcotest.(check bool)
      "zero verifies" true
      (Scheme.verify params tv c ~point:z ~value:v proof)

  let suite =
    [ Alcotest.test_case "open_verify" `Quick test_open_verify;
      Alcotest.test_case "reject_wrong" `Quick test_reject_wrong_value;
      Alcotest.test_case "homomorphic_batching" `Quick test_homomorphic_batching;
      Alcotest.test_case "zero_poly" `Quick test_zero_poly
    ]
end

module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg_sim = Make_suite (Zkml_commit.Kzg.Make (Sim61))
module Ipa_sim = Make_suite (Zkml_commit.Ipa.Make (Sim61))
module Kzg_pallas = Make_suite (Zkml_commit.Kzg.Make (Zkml_ec.Pallas))
module Ipa_pallas = Make_suite (Zkml_commit.Ipa.Make (Zkml_ec.Pallas))

(* Proof-size shape: IPA proofs grow with the log of the parameter size,
   KZG proofs do not (Table 6 vs 7 shape). *)
let test_proof_size_shape () =
  let module K = Zkml_commit.Kzg.Make (Sim61) in
  let module I = Zkml_commit.Ipa.Make (Sim61) in
  let module P = Zkml_poly.Polynomial.Make (Zkml_ff.Fp61) in
  let rng = Zkml_util.Rng.create 5L in
  let coeffs = P.random rng 16 in
  let size (type pf) open_at (proof_to_bytes : pf -> string) =
    let _, proof = open_at coeffs in
    String.length (proof_to_bytes proof)
  in
  let kzg_small =
    let p = K.setup ~max_size:16 ~seed:"s" in
    size
      (fun c ->
        K.open_at p (Zkml_transcript.Transcript.create "t") c Zkml_ff.Fp61.one)
      K.proof_to_bytes
  in
  let kzg_large =
    let p = K.setup ~max_size:256 ~seed:"s" in
    size
      (fun c ->
        K.open_at p (Zkml_transcript.Transcript.create "t") c Zkml_ff.Fp61.one)
      K.proof_to_bytes
  in
  let ipa_small =
    let p = I.setup ~max_size:16 ~seed:"s" in
    size
      (fun c ->
        I.open_at p (Zkml_transcript.Transcript.create "t") c Zkml_ff.Fp61.one)
      I.proof_to_bytes
  in
  let ipa_large =
    let p = I.setup ~max_size:256 ~seed:"s" in
    size
      (fun c ->
        I.open_at p (Zkml_transcript.Transcript.create "t") c Zkml_ff.Fp61.one)
      I.proof_to_bytes
  in
  Alcotest.(check int) "kzg constant" kzg_small kzg_large;
  Alcotest.(check bool) "ipa grows" true (ipa_large > ipa_small)

let () =
  Alcotest.run "commit"
    [ ("kzg_simulated", Kzg_sim.suite);
      ("ipa_simulated", Ipa_sim.suite);
      ("kzg_pallas", Kzg_pallas.suite);
      ("ipa_pallas", Ipa_pallas.suite);
      ( "shape",
        [ Alcotest.test_case "proof_size" `Quick test_proof_size_shape ] )
    ]
