let test_hex_roundtrip () =
  let rng = Zkml_util.Rng.create 42L in
  for _ = 1 to 100 do
    let n = Zkml_util.Rng.int rng 64 in
    let s = String.init n (fun _ -> Char.chr (Zkml_util.Rng.int rng 256)) in
    Alcotest.(check string) "roundtrip" s
      Zkml_util.Bytes_util.(of_hex (to_hex s))
  done

let () =
  Alcotest.run "util"
    [ ("hex", [ Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip ]) ]
