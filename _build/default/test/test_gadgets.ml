(* Gadget-level tests: each gadget from the paper's §5 library is
   emitted in isolation through the layouter, finalized into a real
   circuit, proved and verified — and its arithmetic identity is
   property-tested against the executor semantics. *)

module L = Zkml_compiler.Layouter
module Lo = Zkml_compiler.Lower
module Fx = Zkml_fixed.Fixed
module Spec = Zkml_compiler.Layout_spec
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Proto = Zkml_plonkish.Protocol.Make (Kzg)
module F = Zkml_ff.Fp61

let cfg = { Fx.scale_bits = 5; table_bits = 9 }
let params = Kzg.setup ~max_size:(1 lsl 11) ~seed:"gadget-test"
let blinding = 5

(* Build a layouter, emit gadgets via [emit], then finalize / keygen /
   prove / verify the resulting circuit. *)
let prove_gadget ?(ncols = 9) emit =
  let ly = L.create ~ncols ~cfg ~counting:false in
  emit ly;
  let k = L.optimal_k ly ~blinding in
  let built = L.finalize ly ~blinding ~k in
  let to_f = Array.map (fun col -> Array.map F.of_int col) in
  let circuit =
    let c = built.L.circuit in
    {
      Zkml_plonkish.Circuit.k = c.k;
      num_fixed = c.num_fixed;
      is_selector = c.is_selector;
      advice_phases = c.advice_phases;
      num_instance = c.num_instance;
      num_challenges = c.num_challenges;
      gates =
        List.map
          (fun (g : int Zkml_plonkish.Circuit.gate) ->
            {
              Zkml_plonkish.Circuit.gate_name = g.gate_name;
              polys = List.map (Zkml_plonkish.Expr.map_const F.of_int) g.polys;
            })
          c.gates;
      lookups =
        List.map
          (fun (l : int Zkml_plonkish.Circuit.lookup) ->
            {
              Zkml_plonkish.Circuit.lookup_name = l.lookup_name;
              inputs = List.map (Zkml_plonkish.Expr.map_const F.of_int) l.inputs;
              tables = List.map (Zkml_plonkish.Expr.map_const F.of_int) l.tables;
            })
          c.lookups;
      copies = c.copies;
      blinding = c.blinding;
    }
  in
  let keys = Proto.keygen params circuit ~fixed:(to_f built.L.fixed) in
  let rng = Zkml_util.Rng.create 5L in
  let proof =
    Proto.prove params keys
      ~instance:[| Array.map F.of_int built.L.instance_col |]
      ~advice:(fun _ -> to_f built.L.advice)
      ~rng
  in
  Proto.verify params keys
    ~instance:[| Array.map F.of_int built.L.instance_col |]
    proof

let check name emit = Alcotest.(check bool) name true (prove_gadget emit)

let test_sum () =
  check "sum of 13" (fun ly ->
      let xs = List.init 13 (fun i -> Lo.const_opnd ly (i * 3)) in
      let z = Lo.emit_sum ly xs in
      Alcotest.(check int) "value" (3 * 78) z.Lo.v;
      L.expose ly (Option.get z.Lo.cell) z.Lo.v)

let test_dot_plain () =
  check "dot plain" (fun ly ->
      let pairs =
        List.init 11 (fun i -> (Lo.const_opnd ly (i + 1), Lo.const_opnd ly (i - 4)))
      in
      let z = Lo.emit_dot_plain ly pairs in
      let expected =
        List.fold_left ( + ) 0 (List.init 11 (fun i -> (i + 1) * (i - 4)))
      in
      Alcotest.(check int) "value" expected z.Lo.v;
      L.expose ly (Option.get z.Lo.cell) z.Lo.v)

let test_dot_bias () =
  check "dot with bias accumulation" (fun ly ->
      let pairs =
        List.init 9 (fun i -> (Lo.const_opnd ly (2 * i), Lo.const_opnd ly (i + 1)))
      in
      let bias = Lo.const_opnd ly 7 in
      let z = Lo.emit_dot_bias ly pairs bias in
      let expected =
        (7 * Fx.sf cfg)
        + List.fold_left ( + ) 0 (List.init 9 (fun i -> 2 * i * (i + 1)))
      in
      Alcotest.(check int) "value" expected z.Lo.v;
      L.expose ly (Option.get z.Lo.cell) z.Lo.v)

let test_divround () =
  check "rounded division lanes" (fun ly ->
      List.iter
        (fun a ->
          let q = Lo.emit_divround ly (Lo.const_opnd ly a) ~divisor:(Fx.sf cfg) in
          Alcotest.(check int)
            (Printf.sprintf "divround %d" a)
            (Fx.round_div a (Fx.sf cfg))
            q.Lo.v;
          L.expose ly (Option.get q.Lo.cell) q.Lo.v)
        [ 0; 1; 31; 32; 33; -1; -31; -32; -33; 1000; -1000; 48; -48 ])

let test_vardiv () =
  check "variable division lanes" (fun ly ->
      List.iter
        (fun (num, den) ->
          let y =
            Lo.emit_vardiv ly (Lo.const_opnd ly num) (Lo.const_opnd ly den)
          in
          Alcotest.(check int)
            (Printf.sprintf "vardiv %d/%d" num den)
            (Fx.round_div (num * Fx.sf cfg) den)
            y.Lo.v;
          L.expose ly (Option.get y.Lo.cell) y.Lo.v)
        [ (10, 3); (1, 7); (100, 100); (0, 5); (7, 2) ])

let test_binary_custom () =
  check "packed binary lanes" (fun ly ->
      let expose o = L.expose ly (Option.get o.Lo.cell) o.Lo.v in
      let a = Lo.const_opnd ly 13 and b = Lo.const_opnd ly (-5) in
      let spec = Spec.default in
      let r = Lo.emit_binary ly ~spec Lo.Badd a b in
      Alcotest.(check int) "add" 8 r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bsub a b in
      Alcotest.(check int) "sub" 18 r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bmul_raw a b in
      Alcotest.(check int) "mul" (-65) r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bsqdiff_raw a b in
      Alcotest.(check int) "sqdiff" 324 r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bmax a b in
      Alcotest.(check int) "max" 13 r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bmin a b in
      Alcotest.(check int) "min" (-5) r.Lo.v;
      expose r)

let test_binary_via_dot () =
  check "via-dot binary alternatives" (fun ly ->
      let spec = { Spec.default with Spec.arith = Spec.Via_dot } in
      let a = Lo.const_opnd ly 9 and b = Lo.const_opnd ly 4 in
      let expose o = L.expose ly (Option.get o.Lo.cell) o.Lo.v in
      let r = Lo.emit_binary ly ~spec Lo.Badd a b in
      Alcotest.(check int) "add" 13 r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bsub a b in
      Alcotest.(check int) "sub" 5 r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bmul_raw a b in
      Alcotest.(check int) "mul" 36 r.Lo.v;
      expose r;
      let r = Lo.emit_binary ly ~spec Lo.Bsqdiff_raw a b in
      Alcotest.(check int) "sqdiff" 25 r.Lo.v;
      expose r)

let test_act_lookup () =
  check "lookup non-linearities" (fun ly ->
      List.iter
        (fun (name, fn, x) ->
          let y = Lo.emit_act_lookup ly name fn (Lo.const_opnd ly x) in
          Alcotest.(check int)
            (Printf.sprintf "%s(%d)" name x)
            (Fx.apply_real cfg fn x) y.Lo.v;
          L.expose ly (Option.get y.Lo.cell) y.Lo.v)
        [ ("relu", Fx.relu, 17); ("relu", Fx.relu, -17);
          ("sigmoid", Fx.sigmoid, 5); ("tanh", Fx.tanh', -20);
          ("exp", Fx.exp', -40); ("exp", Fx.exp', 0);
          ("gelu", Fx.gelu, 9) ])

let test_relu_bitdecomp () =
  (* wide rows needed: table_bits + 2 cells per lane *)
  Alcotest.(check bool)
    "bit-decomposed relu" true
    (prove_gadget ~ncols:(cfg.Fx.table_bits + 2) (fun ly ->
         List.iter
           (fun x ->
             let y = Lo.emit_relu_bitdecomp ly (Lo.const_opnd ly x) in
             Alcotest.(check int)
               (Printf.sprintf "relu_bits(%d)" x)
               (max 0 x) y.Lo.v;
             L.expose ly (Option.get y.Lo.cell) y.Lo.v)
           [ 0; 1; -1; 100; -100; 200; -200 ]))

let test_softmax_composition () =
  check "softmax composition" (fun ly ->
      let xs = List.map (Lo.const_opnd ly) [ 10; 20; 5; 0 ] in
      let ys = Lo.emit_softmax ly ~spec:Spec.default xs in
      let total = List.fold_left (fun acc y -> acc + y.Lo.v) 0 ys in
      Alcotest.(check bool)
        (Printf.sprintf "sums to ~SF (%d)" total)
        true
        (abs (total - Fx.sf cfg) <= List.length ys);
      List.iter (fun y -> L.expose ly (Option.get y.Lo.cell) y.Lo.v) ys)

let test_max_tree () =
  check "max tree" (fun ly ->
      let xs = List.map (Lo.const_opnd ly) [ 3; -7; 42; 0; 11; 42; -1 ] in
      let m = Lo.emit_max_tree ly ~spec:Spec.default xs in
      Alcotest.(check int) "max" 42 m.Lo.v;
      L.expose ly (Option.get m.Lo.cell) m.Lo.v)

(* property tests: the gadget identities hold for random values (these
   check the arithmetic the gates constrain, across the value range the
   tables support) *)
let prop_tests =
  let open QCheck in
  let sf = Fx.sf cfg in
  [ Test.make ~name:"divround gadget identity" ~count:500
      (int_range (-100000) 100000)
      (fun a ->
        let q = Fx.round_div a sf in
        let r = (2 * a) + sf - (q * 2 * sf) in
        r >= 0 && r < 2 * sf);
    Test.make ~name:"vardiv gadget identity" ~count:500
      (pair (int_range 0 5000) (int_range 1 400))
      (fun (num, den) ->
        let y = Fx.round_div (num * sf) den in
        let r = (2 * sf * num) + den - (2 * y * den) in
        r >= 0 && r < 2 * den);
    Test.make ~name:"max gadget is sound" ~count:200
      (pair (int_range (-200) 200) (int_range (-200) 200))
      (fun (a, b) ->
        let c = max a b in
        (c - a) * (c - b) = 0 && c - a >= 0 && c - b >= 0);
    Test.make ~name:"bitdecomp offset in range" ~count:200
      (int_range (Fx.table_min cfg) (Fx.table_max cfg))
      (fun x ->
        let off = x + (1 lsl (cfg.Fx.table_bits - 1)) in
        off >= 0 && off < 1 lsl cfg.Fx.table_bits)
  ]

let () =
  Alcotest.run "gadgets"
    ([ ("sum", [ Alcotest.test_case "sum" `Quick test_sum ]);
       ( "dot",
         [ Alcotest.test_case "plain" `Quick test_dot_plain;
           Alcotest.test_case "bias" `Quick test_dot_bias
         ] );
       ( "division",
         [ Alcotest.test_case "divround" `Quick test_divround;
           Alcotest.test_case "vardiv" `Quick test_vardiv
         ] );
       ( "binary",
         [ Alcotest.test_case "custom" `Quick test_binary_custom;
           Alcotest.test_case "via_dot" `Quick test_binary_via_dot
         ] );
       ( "nonlinear",
         [ Alcotest.test_case "lookup_acts" `Quick test_act_lookup;
           Alcotest.test_case "bitdecomp_relu" `Quick test_relu_bitdecomp;
           Alcotest.test_case "softmax" `Quick test_softmax_composition;
           Alcotest.test_case "max_tree" `Quick test_max_tree
         ] )
     ]
    @ [ ( "properties",
          List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests )
      ])
