(** Prior-work-style baseline compilers (Table 9's comparison targets).

    zkCNN / vCNN / ZEN compile CNNs with a fixed circuit shape: no
    layout search, bit-decomposed ReLU instead of lookup tables, plain
    dot products with separate accumulation, and one fixed (narrow)
    column count. We reproduce that *style* inside our own framework so
    the comparison isolates exactly what the paper claims: the gains
    come from ZKML's gadget diversity and its layout optimizer, not from
    a different proving stack (see DESIGN.md "Substitutions"). *)

type kind =
  | Bitdecomp_style
      (** ZEN/vCNN-style: bit-decomposition for non-linearities *)
  | Lookup_fixed_style
      (** zkCNN-style: lookup activations but no layout search *)

let spec_of = function
  | Bitdecomp_style ->
      {
        Zkml_compiler.Layout_spec.linear = Zkml_compiler.Layout_spec.Dot_plain;
        relu = Zkml_compiler.Layout_spec.Bitdecomp_relu;
        arith = Zkml_compiler.Layout_spec.Via_dot;
      }
  | Lookup_fixed_style ->
      {
        Zkml_compiler.Layout_spec.linear = Zkml_compiler.Layout_spec.Dot_plain;
        relu = Zkml_compiler.Layout_spec.Lookup_relu;
        arith = Zkml_compiler.Layout_spec.Via_dot;
      }

(** The fixed column count used by the baseline circuits. Bit
    decomposition needs rows wide enough for table_bits + 2 cells. *)
let fixed_ncols ~cfg = function
  | Bitdecomp_style -> max 12 (cfg.Zkml_fixed.Fixed.table_bits + 2)
  | Lookup_fixed_style -> 12

let name = function
  | Bitdecomp_style -> "vCNN/ZEN-style (bit-decomposition, fixed layout)"
  | Lookup_fixed_style -> "zkCNN-style (fixed layout)"
