lib/baselines/baseline.ml: Zkml_compiler Zkml_fixed
