lib/ec/pallas.ml: Array Bytes Char Int64 Printf String Zkml_ff Zkml_util
