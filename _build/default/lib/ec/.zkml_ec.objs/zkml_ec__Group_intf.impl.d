lib/ec/group_intf.ml: Zkml_ff Zkml_util
