lib/ec/simulated.ml: Array Group_intf Printf Zkml_ff Zkml_util
