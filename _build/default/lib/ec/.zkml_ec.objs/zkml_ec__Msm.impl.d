lib/ec/msm.ml: Array Group_intf Int64
