(** Signature of prime-order groups used by the polynomial commitment
    schemes. Two instantiations: {!Pallas} (a real elliptic curve, the
    halo2 curve) and {!Simulated} (a structurally identical stand-in
    whose discrete logs are known; see DESIGN.md for why this
    substitution preserves the paper's experiments). *)

module type S = sig
  module Scalar : Zkml_ff.Field_intf.S

  type t

  val name : string
  val zero : t
  (** The identity element. *)

  val generator : t
  val add : t -> t -> t
  val double : t -> t
  val neg : t -> t
  val sub : t -> t -> t

  val mul : t -> Scalar.t -> t
  (** Scalar multiplication. *)

  val equal : t -> t -> bool
  val is_zero : t -> bool

  val size_bytes : int
  val to_bytes : t -> string
  (** Canonical serialization, [size_bytes] long. *)

  val of_bytes_exn : string -> t
  (** Inverse of {!to_bytes}; raises [Invalid_argument] on malformed or
      off-curve input. *)

  val derive_generators : string -> int -> t array
  (** [derive_generators seed n] produces [n] independent generators
      deterministically (hash-to-group); used for IPA parameter setup. *)

  val random : Zkml_util.Rng.t -> t
end
