lib/fixed/fixed.mli:
