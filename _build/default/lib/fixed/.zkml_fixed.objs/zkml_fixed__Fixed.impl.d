lib/fixed/fixed.ml: Float
