lib/poly/polynomial.ml: Array List Zkml_ff
