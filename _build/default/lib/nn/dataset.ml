(** Synthetic datasets. The container has no MNIST/CIFAR files, so the
    accuracy experiments (paper Table 8) run on seeded synthetic
    classification tasks: each class is a smooth random template image
    and samples are noisy draws from it. This reproduces the quantity
    Table 8 measures — the accuracy delta between FP32 execution and
    fixed-point circuit execution of the same trained model. *)

module T = Zkml_tensor.Tensor

type sample = { image : float T.t; label : int }

type t = { train : sample array; test : sample array; num_classes : int }

(* smooth template: sum of a few random 2-D cosine modes *)
let template rng ~h ~w ~c =
  let modes =
    Array.init 4 (fun _ ->
        ( Zkml_util.Rng.float rng *. 3.0,
          Zkml_util.Rng.float rng *. 3.0,
          Zkml_util.Rng.float rng *. 6.28,
          0.5 +. Zkml_util.Rng.float rng ))
  in
  T.init [| h; w; c |] (fun flat ->
      let ch = flat mod c in
      let j = flat / c mod w in
      let i = flat / (c * w) in
      let x = float_of_int i /. float_of_int h
      and y = float_of_int j /. float_of_int w in
      Array.fold_left
        (fun acc (fx, fy, phase, amp) ->
          acc
          +. amp
             *. cos ((6.28 *. ((fx *. x) +. (fy *. y))) +. phase +. float_of_int ch))
        0.0 modes
      /. 4.0)

let classification ~seed ~num_classes ~h ~w ~c ~train_per_class
    ~test_per_class ~noise =
  let rng = Zkml_util.Rng.create seed in
  let templates =
    Array.init num_classes (fun _ -> template rng ~h ~w ~c)
  in
  let make_sample label =
    let t = templates.(label) in
    let image =
      T.init [| 1; h; w; c |] (fun flat ->
          T.get_flat t flat +. (noise *. Zkml_util.Rng.gaussian rng))
    in
    { image; label }
  in
  let make count =
    Array.init (count * num_classes) (fun i -> make_sample (i mod num_classes))
  in
  { train = make train_per_class; test = make test_per_class; num_classes }

(** Tabular dataset for the recommender-style models: dense features plus
    a binary label from a random ground-truth MLP-ish rule. *)
let tabular ~seed ~dim ~train ~test =
  let rng = Zkml_util.Rng.create seed in
  let w = Array.init dim (fun _ -> Zkml_util.Rng.gaussian rng) in
  let make count =
    Array.init count (fun _ ->
        let x = Array.init dim (fun _ -> Zkml_util.Rng.gaussian rng) in
        let score =
          Array.fold_left ( +. ) 0.0 (Array.map2 (fun a b -> a *. b *. sin b) w x)
        in
        {
          image = T.of_array [| 1; dim |] x;
          label = (if score > 0.0 then 1 else 0);
        })
  in
  { train = make train; test = make test; num_classes = 2 }
