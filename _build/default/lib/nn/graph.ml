(** Dataflow graph of operations: the compiler's input, playing the role
    of the tflite model in the original system. Nodes are in topological
    order by construction (a node's inputs always have smaller ids). *)

module T = Zkml_tensor.Tensor

type node = { id : int; op : Op.t; inputs : int array; label : string }

type t = {
  mutable nodes : node list;  (** reverse order *)
  mutable count : int;
  mutable outputs : int list;  (** reverse order *)
  name : string;
}

let create name = { nodes = []; count = 0; outputs = []; name }
let name g = g.name

let add ?(label = "") g op inputs =
  Array.iter
    (fun i ->
      if i < 0 || i >= g.count then invalid_arg "Graph.add: bad input id")
    inputs;
  let id = g.count in
  g.nodes <- { id; op; inputs; label } :: g.nodes;
  g.count <- id + 1;
  id

let mark_output g id = g.outputs <- id :: g.outputs
let nodes g = Array.of_list (List.rev g.nodes)
let outputs g = List.rev g.outputs
let node g id = List.nth (List.rev g.nodes) id
let num_nodes g = g.count

(** {1 Builder helpers} *)

let input g shape = add g (Op.Input { shape }) [||] ~label:"input"
let weight ?(label = "w") g tensor = add g (Op.Weight { tensor }) [||] ~label

let weight_of_array g shape data ~label =
  weight g (T.of_array shape data) ~label

let conv2d ?(stride = 1) ?(padding = Op.Same) g x w b =
  add g (Op.Conv2d { stride; padding }) [| x; w; b |]

let depthwise_conv2d ?(stride = 1) ?(padding = Op.Same) g x w b =
  add g (Op.Depthwise_conv2d { stride; padding }) [| x; w; b |]

let fully_connected g x w b = add g Op.Fully_connected [| x; w; b |]

let batch_matmul ?(transpose_b = false) g a b =
  add g (Op.Batch_matmul { transpose_b }) [| a; b |]

let avg_pool2d ?(stride = 0) g ~size x =
  let stride = if stride = 0 then size else stride in
  add g (Op.Avg_pool2d { size; stride }) [| x |]

let max_pool2d ?(stride = 0) g ~size x =
  let stride = if stride = 0 then size else stride in
  add g (Op.Max_pool2d { size; stride }) [| x |]

let global_avg_pool g x = add g Op.Global_avg_pool [| x |]
let add_ g a b = add g Op.Add [| a; b |]
let sub g a b = add g Op.Sub [| a; b |]
let mul g a b = add g Op.Mul [| a; b |]
let div g a b = add g Op.Div [| a; b |]
let squared_difference g a b = add g Op.Squared_difference [| a; b |]
let maximum g a b = add g Op.Maximum [| a; b |]
let minimum g a b = add g Op.Minimum [| a; b |]
let neg g a = add g Op.Neg [| a |]
let square g a = add g Op.Square [| a |]
let reduce_sum g ~axis x = add g (Op.Reduce_sum { axis }) [| x |]
let reduce_mean g ~axis x = add g (Op.Reduce_mean { axis }) [| x |]
let reduce_max g ~axis x = add g (Op.Reduce_max { axis }) [| x |]
let activation g a x = add g (Op.Activation a) [| x |]
let relu g x = activation g Op.Relu x
let softmax g x = add g Op.Softmax [| x |]
let layer_norm ?(eps = 1e-5) g x gamma beta =
  add g (Op.Layer_norm { eps }) [| x; gamma; beta |]
let batch_norm g x scale shift = add g Op.Batch_norm [| x; scale; shift |]
let reshape g shape x = add g (Op.Reshape { shape }) [| x |]
let transpose g perm x = add g (Op.Transpose { perm }) [| x |]
let concat g ~axis xs = add g (Op.Concat { axis }) (Array.of_list xs)
let slice g ~starts ~sizes x = add g (Op.Slice { starts; sizes }) [| x |]
let pad g ~pads x = add g (Op.Pad { pads }) [| x |]
let flatten g x = add g Op.Flatten [| x |]
let squeeze g ~axis x = add g (Op.Squeeze { axis }) [| x |]
let expand_dims g ~axis x = add g (Op.Expand_dims { axis }) [| x |]
let gather g ~indices ~axis x = add g (Op.Gather { indices; axis }) [| x |]

(** Random weight initialisers (He / Xavier style), deterministic via the
    supplied rng. *)
let he_weight g rng shape ~label =
  let fan_in =
    match Array.length shape with
    | 1 -> shape.(0)
    | 2 -> shape.(0)
    | 4 -> shape.(0) * shape.(1) * shape.(2)
    | _ -> T.numel_of_shape shape
  in
  let std = sqrt (2.0 /. float_of_int (max 1 fan_in)) in
  let t =
    T.init shape (fun _ -> Zkml_util.Rng.gaussian rng *. std)
  in
  weight g t ~label

let zero_weight g shape ~label = weight g (T.create shape 0.0) ~label
