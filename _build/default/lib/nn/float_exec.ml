(** Reference (FP32) executor. Defines the mathematical semantics of
    every op; the fixed-point executor and the circuit must agree with
    this up to quantization error (Table 8 measures exactly that gap). *)

module T = Zkml_tensor.Tensor

let conv_out_dim ~padding ~stride ~k in_dim =
  match padding with
  | Op.Same -> (in_dim + stride - 1) / stride
  | Op.Valid -> ((in_dim - k) / stride) + 1

let conv_pad ~padding ~stride ~k ~out in_dim =
  match padding with
  | Op.Same ->
      let total = max 0 (((out - 1) * stride) + k - in_dim) in
      (total / 2, total - (total / 2))
  | Op.Valid -> (0, 0)

let normalize_axis r axis = if axis < 0 then r + axis else axis

(* NHWC convolution; f is the accumulation kernel so the fixed-point
   executor can reuse the same loop with integer semantics. *)
let conv2d_generic ~zero ~madd ~stride ~padding x w b =
  let xs = T.shape x and ws = T.shape w in
  let n = xs.(0) and h = xs.(1) and wi = xs.(2) and ic = xs.(3) in
  let kh = ws.(0) and kw = ws.(1) and oc = ws.(3) in
  assert (ws.(2) = ic);
  let oh = conv_out_dim ~padding ~stride ~k:kh h in
  let ow = conv_out_dim ~padding ~stride ~k:kw wi in
  let ph, _ = conv_pad ~padding ~stride ~k:kh ~out:oh h in
  let pw, _ = conv_pad ~padding ~stride ~k:kw ~out:ow wi in
  let out = T.create [| n; oh; ow; oc |] zero in
  for b' = 0 to n - 1 do
    for i = 0 to oh - 1 do
      for j = 0 to ow - 1 do
        for o = 0 to oc - 1 do
          let acc = ref (T.get b [| o |]) in
          for ki = 0 to kh - 1 do
            for kj = 0 to kw - 1 do
              let si = (i * stride) + ki - ph and sj = (j * stride) + kj - pw in
              if si >= 0 && si < h && sj >= 0 && sj < wi then
                for c = 0 to ic - 1 do
                  acc :=
                    madd !acc
                      (T.get x [| b'; si; sj; c |])
                      (T.get w [| ki; kj; c; o |])
                done
            done
          done;
          T.set out [| b'; i; j; o |] !acc
        done
      done
    done
  done;
  out

let depthwise_conv2d_generic ~zero ~madd ~stride ~padding x w b =
  let xs = T.shape x and ws = T.shape w in
  let n = xs.(0) and h = xs.(1) and wi = xs.(2) and c = xs.(3) in
  let kh = ws.(0) and kw = ws.(1) in
  assert (ws.(2) = c);
  let oh = conv_out_dim ~padding ~stride ~k:kh h in
  let ow = conv_out_dim ~padding ~stride ~k:kw wi in
  let ph, _ = conv_pad ~padding ~stride ~k:kh ~out:oh h in
  let pw, _ = conv_pad ~padding ~stride ~k:kw ~out:ow wi in
  let out = T.create [| n; oh; ow; c |] zero in
  for b' = 0 to n - 1 do
    for i = 0 to oh - 1 do
      for j = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          let acc = ref (T.get b [| ch |]) in
          for ki = 0 to kh - 1 do
            for kj = 0 to kw - 1 do
              let si = (i * stride) + ki - ph and sj = (j * stride) + kj - pw in
              if si >= 0 && si < h && sj >= 0 && sj < wi then
                acc :=
                  madd !acc
                    (T.get x [| b'; si; sj; ch |])
                    (T.get w [| ki; kj; ch; 0 |])
            done
          done;
          T.set out [| b'; i; j; ch |] !acc
        done
      done
    done
  done;
  out

(* [.., m, k] x [.., k, n] batched matmul; b may also be rank 2. *)
let batch_matmul_generic ~zero ~madd ~transpose_b a b =
  let sa = T.shape a and sb = T.shape b in
  let ra = Array.length sa and rb = Array.length sb in
  let m = sa.(ra - 2) and k = sa.(ra - 1) in
  let kb, n =
    if transpose_b then (sb.(rb - 1), sb.(rb - 2)) else (sb.(rb - 2), sb.(rb - 1))
  in
  if k <> kb then invalid_arg "batch_matmul: inner dimension mismatch";
  let batch = T.numel a / (m * k) in
  let b_batched = rb > 2 in
  if b_batched && T.numel b / (kb * n) <> batch then
    invalid_arg "batch_matmul: batch mismatch";
  let out_shape = Array.append (Array.sub sa 0 (ra - 2)) [| m; n |] in
  let out = T.create out_shape zero in
  for bt = 0 to batch - 1 do
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref zero in
        for t = 0 to k - 1 do
          let bv =
            let base = if b_batched then bt * k * n else 0 in
            if transpose_b then T.get_flat b (base + (j * k) + t)
            else T.get_flat b (base + (t * n) + j)
          in
          acc := madd !acc (T.get_flat a ((bt * m * k) + (i * k) + t)) bv
        done;
        T.set_flat out ((bt * m * n) + (i * n) + j) !acc
      done
    done
  done;
  out

let pool_generic ~combine ~finalize ~init ~size ~stride x =
  let xs = T.shape x in
  let n = xs.(0) and h = xs.(1) and w = xs.(2) and c = xs.(3) in
  let oh = ((h - size) / stride) + 1 and ow = ((w - size) / stride) + 1 in
  let out = T.create [| n; oh; ow; c |] init in
  for b = 0 to n - 1 do
    for i = 0 to oh - 1 do
      for j = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          let acc = ref init in
          for ki = 0 to size - 1 do
            for kj = 0 to size - 1 do
              acc :=
                combine !acc
                  (T.get x [| b; (i * stride) + ki; (j * stride) + kj; ch |])
            done
          done;
          T.set out [| b; i; j; ch |] (finalize !acc (size * size))
        done
      done
    done
  done;
  out

let reduce_generic ~combine ~finalize ~init ~axis x =
  let xs = T.shape x in
  let r = Array.length xs in
  let axis = normalize_axis r axis in
  let outer = ref 1 and inner = ref 1 in
  for i = 0 to axis - 1 do
    outer := !outer * xs.(i)
  done;
  for i = axis + 1 to r - 1 do
    inner := !inner * xs.(i)
  done;
  let d = xs.(axis) in
  let out_shape =
    Array.of_list
      (List.filteri (fun i _ -> i <> axis) (Array.to_list xs))
  in
  let out_shape = if Array.length out_shape = 0 then [| 1 |] else out_shape in
  let out = T.create out_shape init in
  for o = 0 to !outer - 1 do
    for i = 0 to !inner - 1 do
      let acc = ref init in
      for j = 0 to d - 1 do
        acc := combine !acc (T.get_flat x ((o * d * !inner) + (j * !inner) + i))
      done;
      T.set_flat out ((o * !inner) + i) (finalize !acc d)
    done
  done;
  out

(* elementwise with broadcasting of the second operand when it is a
   vector matching the last axis, or a scalar *)
let broadcast2 f a b =
  if T.shape a = T.shape b then T.map2 f a b
  else begin
    let sb = T.shape b in
    let nb = T.numel b in
    let last = (T.shape a).(Array.length (T.shape a) - 1) in
    if nb = 1 then T.map (fun x -> f x (T.get_flat b 0)) a
    else if nb = last && (Array.length sb = 1 || T.numel b = nb) then
      T.init (T.shape a) (fun i -> f (T.get_flat a i) (T.get_flat b (i mod last)))
    else invalid_arg "broadcast2: incompatible shapes"
  end

let gather_generic ~indices ~axis x =
  let xs = T.shape x in
  let r = Array.length xs in
  let axis = normalize_axis r axis in
  let out_shape = Array.copy xs in
  out_shape.(axis) <- Array.length indices;
  let outer = ref 1 and inner = ref 1 in
  for i = 0 to axis - 1 do
    outer := !outer * xs.(i)
  done;
  for i = axis + 1 to r - 1 do
    inner := !inner * xs.(i)
  done;
  let d = xs.(axis) in
  let out = T.create out_shape (T.get_flat x 0) in
  Array.iteri
    (fun oi src ->
      if src < 0 || src >= d then invalid_arg "gather: index out of range";
      for o = 0 to !outer - 1 do
        for i = 0 to !inner - 1 do
          T.set_flat out
            ((o * Array.length indices * !inner) + (oi * !inner) + i)
            (T.get_flat x ((o * d * !inner) + (src * !inner) + i))
        done
      done)
    indices;
  out

(** Run the graph; [inputs] are bound to [Input] nodes in id order.
    Returns the value of every node. *)
let run graph ~(inputs : float T.t list) : float T.t array
    =
  let nodes = Graph.nodes graph in
  let values = Array.make (Array.length nodes) (T.create [| 1 |] 0.0) in
  let remaining_inputs = ref inputs in
  let v i = values.(i) in
  Array.iter
    (fun (node : Graph.node) ->
      let inp = node.Graph.inputs in
      let result =
        match node.Graph.op with
        | Op.Input { shape } -> (
            match !remaining_inputs with
            | t :: rest ->
                if T.shape t <> shape then
                  invalid_arg "Float_exec.run: input shape mismatch";
                remaining_inputs := rest;
                t
            | [] -> invalid_arg "Float_exec.run: missing input")
        | Op.Weight { tensor } -> tensor
        | Op.Conv2d { stride; padding } ->
            conv2d_generic ~zero:0.0
              ~madd:(fun acc a b -> acc +. (a *. b))
              ~stride ~padding (v inp.(0)) (v inp.(1)) (v inp.(2))
        | Op.Depthwise_conv2d { stride; padding } ->
            depthwise_conv2d_generic ~zero:0.0
              ~madd:(fun acc a b -> acc +. (a *. b))
              ~stride ~padding (v inp.(0)) (v inp.(1)) (v inp.(2))
        | Op.Fully_connected ->
            let x = v inp.(0) and w = v inp.(1) and b = v inp.(2) in
            let y =
              batch_matmul_generic ~zero:0.0
                ~madd:(fun acc a b -> acc +. (a *. b))
                ~transpose_b:false x w
            in
            broadcast2 ( +. ) y b
        | Op.Batch_matmul { transpose_b } ->
            batch_matmul_generic ~zero:0.0
              ~madd:(fun acc a b -> acc +. (a *. b))
              ~transpose_b (v inp.(0)) (v inp.(1))
        | Op.Avg_pool2d { size; stride } ->
            pool_generic
              ~combine:( +. )
              ~finalize:(fun acc count -> acc /. float_of_int count)
              ~init:0.0 ~size ~stride (v inp.(0))
        | Op.Max_pool2d { size; stride } ->
            pool_generic ~combine:Float.max
              ~finalize:(fun acc _ -> acc)
              ~init:neg_infinity ~size ~stride (v inp.(0))
        | Op.Global_avg_pool ->
            let x = v inp.(0) in
            let s = T.shape x in
            pool_generic
              ~combine:( +. )
              ~finalize:(fun acc count -> acc /. float_of_int count)
              ~init:0.0 ~size:s.(1) ~stride:s.(1) x
        | Op.Add -> broadcast2 ( +. ) (v inp.(0)) (v inp.(1))
        | Op.Sub -> broadcast2 ( -. ) (v inp.(0)) (v inp.(1))
        | Op.Mul -> broadcast2 ( *. ) (v inp.(0)) (v inp.(1))
        | Op.Div -> broadcast2 ( /. ) (v inp.(0)) (v inp.(1))
        | Op.Squared_difference ->
            broadcast2 (fun a b -> (a -. b) *. (a -. b)) (v inp.(0)) (v inp.(1))
        | Op.Maximum -> broadcast2 Float.max (v inp.(0)) (v inp.(1))
        | Op.Minimum -> broadcast2 Float.min (v inp.(0)) (v inp.(1))
        | Op.Neg -> T.map (fun x -> -.x) (v inp.(0))
        | Op.Square -> T.map (fun x -> x *. x) (v inp.(0))
        | Op.Reduce_sum { axis } ->
            reduce_generic ~combine:( +. )
              ~finalize:(fun acc _ -> acc)
              ~init:0.0 ~axis (v inp.(0))
        | Op.Reduce_mean { axis } ->
            reduce_generic ~combine:( +. )
              ~finalize:(fun acc d -> acc /. float_of_int d)
              ~init:0.0 ~axis (v inp.(0))
        | Op.Reduce_max { axis } ->
            reduce_generic ~combine:Float.max
              ~finalize:(fun acc _ -> acc)
              ~init:neg_infinity ~axis (v inp.(0))
        | Op.Activation a -> T.map (Op.activation_fn a) (v inp.(0))
        | Op.Softmax ->
            let x = v inp.(0) in
            let s = T.shape x in
            let d = s.(Array.length s - 1) in
            let out = T.copy x in
            let rows = T.numel x / d in
            for r = 0 to rows - 1 do
              let m = ref neg_infinity in
              for j = 0 to d - 1 do
                m := Float.max !m (T.get_flat x ((r * d) + j))
              done;
              let sum = ref 0.0 in
              for j = 0 to d - 1 do
                let e = exp (T.get_flat x ((r * d) + j) -. !m) in
                T.set_flat out ((r * d) + j) e;
                sum := !sum +. e
              done;
              for j = 0 to d - 1 do
                T.set_flat out ((r * d) + j) (T.get_flat out ((r * d) + j) /. !sum)
              done
            done;
            out
        | Op.Layer_norm { eps } ->
            let x = v inp.(0) and gamma = v inp.(1) and beta = v inp.(2) in
            let s = T.shape x in
            let d = s.(Array.length s - 1) in
            let out = T.copy x in
            let rows = T.numel x / d in
            for r = 0 to rows - 1 do
              let mean = ref 0.0 in
              for j = 0 to d - 1 do
                mean := !mean +. T.get_flat x ((r * d) + j)
              done;
              let mean = !mean /. float_of_int d in
              let var = ref 0.0 in
              for j = 0 to d - 1 do
                let dd = T.get_flat x ((r * d) + j) -. mean in
                var := !var +. (dd *. dd)
              done;
              let var = !var /. float_of_int d in
              let inv = 1.0 /. sqrt (var +. eps) in
              for j = 0 to d - 1 do
                let dd = T.get_flat x ((r * d) + j) -. mean in
                T.set_flat out ((r * d) + j)
                  ((dd *. inv *. T.get_flat gamma j) +. T.get_flat beta j)
              done
            done;
            out
        | Op.Batch_norm ->
            let x = v inp.(0) and scale = v inp.(1) and shift = v inp.(2) in
            broadcast2 ( +. ) (broadcast2 ( *. ) x scale) shift
        | Op.Reshape { shape } -> T.reshape (v inp.(0)) shape
        | Op.Transpose { perm } -> T.transpose (v inp.(0)) perm
        | Op.Concat { axis } ->
            T.concat axis (Array.to_list (Array.map v inp))
        | Op.Slice { starts; sizes } -> T.slice (v inp.(0)) ~starts ~sizes
        | Op.Pad { pads } -> T.pad (v inp.(0)) ~pads ~value:0.0
        | Op.Flatten ->
            let x = v inp.(0) in
            T.reshape x [| (T.shape x).(0); -1 |]
        | Op.Squeeze { axis } ->
            let x = v inp.(0) in
            let s = T.shape x in
            let axis = normalize_axis (Array.length s) axis in
            T.reshape x
              (Array.of_list
                 (List.filteri (fun i _ -> i <> axis) (Array.to_list s)))
        | Op.Expand_dims { axis } ->
            let x = v inp.(0) in
            let s = Array.to_list (T.shape x) in
            let rec insert i = function
              | rest when i = 0 -> 1 :: rest
              | [] -> [ 1 ]
              | d :: rest -> d :: insert (i - 1) rest
            in
            T.reshape x (Array.of_list (insert axis s))
        | Op.Gather { indices; axis } ->
            gather_generic ~indices ~axis (v inp.(0))
      in
      values.(node.Graph.id) <- result)
    nodes;
  values
