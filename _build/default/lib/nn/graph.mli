(** Dataflow graph of operations — the compiler's input, playing the
    role of the tflite model in the original system. Nodes are in
    topological order by construction (a node's inputs always have
    smaller ids). Use {!Serialize} for the on-disk format and
    {!Float_exec} / {!Quant_exec} to evaluate. *)

type node = { id : int; op : Op.t; inputs : int array; label : string }

type t

val create : string -> t
val name : t -> string

val add : ?label:string -> t -> Op.t -> int array -> int
(** [add g op inputs] appends a node and returns its id. *)

val mark_output : t -> int -> unit
val nodes : t -> node array
val outputs : t -> int list
val node : t -> int -> node
val num_nodes : t -> int

(** {1 Builder helpers}

    Each returns the new node's id. Image tensors are NHWC; weight
    layouts are documented on the corresponding {!Op.t} constructor. *)

val input : t -> int array -> int
val weight : ?label:string -> t -> float Zkml_tensor.Tensor.t -> int
val weight_of_array : t -> int array -> float array -> label:string -> int
val conv2d : ?stride:int -> ?padding:Op.padding -> t -> int -> int -> int -> int
val depthwise_conv2d :
  ?stride:int -> ?padding:Op.padding -> t -> int -> int -> int -> int
val fully_connected : t -> int -> int -> int -> int
val batch_matmul : ?transpose_b:bool -> t -> int -> int -> int
val avg_pool2d : ?stride:int -> t -> size:int -> int -> int
val max_pool2d : ?stride:int -> t -> size:int -> int -> int
val global_avg_pool : t -> int -> int
val add_ : t -> int -> int -> int
val sub : t -> int -> int -> int
val mul : t -> int -> int -> int
val div : t -> int -> int -> int
val squared_difference : t -> int -> int -> int
val maximum : t -> int -> int -> int
val minimum : t -> int -> int -> int
val neg : t -> int -> int
val square : t -> int -> int
val reduce_sum : t -> axis:int -> int -> int
val reduce_mean : t -> axis:int -> int -> int
val reduce_max : t -> axis:int -> int -> int
val activation : t -> Op.activation -> int -> int
val relu : t -> int -> int
val softmax : t -> int -> int
val layer_norm : ?eps:float -> t -> int -> int -> int -> int
val batch_norm : t -> int -> int -> int -> int
val reshape : t -> int array -> int -> int
val transpose : t -> int array -> int -> int
val concat : t -> axis:int -> int list -> int
val slice : t -> starts:int array -> sizes:int array -> int -> int
val pad : t -> pads:(int * int) array -> int -> int
val flatten : t -> int -> int
val squeeze : t -> axis:int -> int -> int
val expand_dims : t -> axis:int -> int -> int
val gather : t -> indices:int array -> axis:int -> int -> int

val he_weight :
  t -> Zkml_util.Rng.t -> int array -> label:string -> int
(** Deterministic He-style random initialisation. *)

val zero_weight : t -> int array -> label:string -> int
