(** The operation (layer) vocabulary of the compiler. ZKML supports 43
    layers (§6.1); the list below reproduces that coverage: linear
    layers, arithmetic layers, activation layers, softmax, and the shape
    operations that are free inside the circuit. *)

type activation =
  | Relu
  | Relu6
  | Elu of float  (** alpha *)
  | Sigmoid
  | Tanh
  | Gelu
  | Exp  (** scaled exponential, the softmax building block *)
  | Softplus
  | Silu
  | Rsqrt
  | Sqrt
  | Reciprocal

let activation_name = function
  | Relu -> "relu"
  | Relu6 -> "relu6"
  | Elu _ -> "elu"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Gelu -> "gelu"
  | Exp -> "exp"
  | Softplus -> "softplus"
  | Silu -> "silu"
  | Rsqrt -> "rsqrt"
  | Sqrt -> "sqrt"
  | Reciprocal -> "reciprocal"

let activation_fn = function
  | Relu -> Zkml_fixed.Fixed.relu
  | Relu6 -> Zkml_fixed.Fixed.relu6
  | Elu alpha -> Zkml_fixed.Fixed.elu ~alpha
  | Sigmoid -> Zkml_fixed.Fixed.sigmoid
  | Tanh -> Zkml_fixed.Fixed.tanh'
  | Gelu -> Zkml_fixed.Fixed.gelu
  | Exp -> Zkml_fixed.Fixed.exp'
  | Softplus -> Zkml_fixed.Fixed.softplus
  | Silu -> Zkml_fixed.Fixed.silu
  | Rsqrt -> Zkml_fixed.Fixed.rsqrt
  | Sqrt -> Zkml_fixed.Fixed.sqrt'
  | Reciprocal -> Zkml_fixed.Fixed.reciprocal

type padding = Same | Valid

type t =
  | Input of { shape : int array }
  | Weight of { tensor : float Zkml_tensor.Tensor.t }
  (* linear layers *)
  | Conv2d of { stride : int; padding : padding }
      (** inputs: x (NHWC), w (KhKwIcOc), bias (Oc) *)
  | Depthwise_conv2d of { stride : int; padding : padding }
      (** inputs: x (NHWC), w (KhKwC1), bias (C) *)
  | Fully_connected  (** inputs: x (N,In), w (In,Out), bias (Out) *)
  | Batch_matmul of { transpose_b : bool }
  (* pooling *)
  | Avg_pool2d of { size : int; stride : int }
  | Max_pool2d of { size : int; stride : int }
  | Global_avg_pool
  (* arithmetic layers *)
  | Add
  | Sub
  | Mul
  | Div
  | Squared_difference
  | Maximum
  | Minimum
  | Neg
  | Square
  | Reduce_sum of { axis : int }
  | Reduce_mean of { axis : int }
  | Reduce_max of { axis : int }
  (* activations and composites *)
  | Activation of activation
  | Softmax  (** along the last axis *)
  | Layer_norm of { eps : float }  (** inputs: x, gamma, beta *)
  | Batch_norm  (** inputs: x, scale, shift — pre-folded constants *)
  (* shape operations: free in the circuit *)
  | Reshape of { shape : int array }
  | Transpose of { perm : int array }
  | Concat of { axis : int }
  | Slice of { starts : int array; sizes : int array }
  | Pad of { pads : (int * int) array }
  | Flatten
  | Squeeze of { axis : int }
  | Expand_dims of { axis : int }
  | Gather of { indices : int array; axis : int }
      (** static gather (embedding lookup with public indices) *)

let name = function
  | Input _ -> "input"
  | Weight _ -> "weight"
  | Conv2d _ -> "conv2d"
  | Depthwise_conv2d _ -> "depthwise_conv2d"
  | Fully_connected -> "fully_connected"
  | Batch_matmul _ -> "batch_matmul"
  | Avg_pool2d _ -> "avg_pool2d"
  | Max_pool2d _ -> "max_pool2d"
  | Global_avg_pool -> "global_avg_pool"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Squared_difference -> "squared_difference"
  | Maximum -> "maximum"
  | Minimum -> "minimum"
  | Neg -> "neg"
  | Square -> "square"
  | Reduce_sum _ -> "reduce_sum"
  | Reduce_mean _ -> "reduce_mean"
  | Reduce_max _ -> "reduce_max"
  | Activation a -> activation_name a
  | Softmax -> "softmax"
  | Layer_norm _ -> "layer_norm"
  | Batch_norm -> "batch_norm"
  | Reshape _ -> "reshape"
  | Transpose _ -> "transpose"
  | Concat _ -> "concat"
  | Slice _ -> "slice"
  | Pad _ -> "pad"
  | Flatten -> "flatten"
  | Squeeze _ -> "squeeze"
  | Expand_dims _ -> "expand_dims"
  | Gather _ -> "gather"

(** Shape operations cost no circuit rows (tensors hold cell
    references; §5.1 "Shape operations"). *)
let is_shape_op = function
  | Reshape _ | Transpose _ | Concat _ | Slice _ | Pad _ | Flatten
  | Squeeze _ | Expand_dims _ | Gather _ ->
      true
  | _ -> false
