(** Textual model format — the stand-in for tflite flatbuffers (see
    DESIGN.md). One line per node:

      node <id> <op> in=<i,j,...> [attrs] [data]

    Weight data is stored inline as "%h" hex floats for exact
    round-tripping. *)

module T = Zkml_tensor.Tensor

let shape_str s = String.concat "," (List.map string_of_int (Array.to_list s))

let parse_shape s =
  if s = "" then [||]
  else
    String.split_on_char ',' s |> List.map int_of_string |> Array.of_list

let pads_str pads =
  String.concat ","
    (List.concat_map (fun (a, b) -> [ string_of_int a; string_of_int b ])
       (Array.to_list pads))

let parse_pads s =
  let parts = parse_shape s in
  Array.init (Array.length parts / 2) (fun i -> (parts.(2 * i), parts.((2 * i) + 1)))

let padding_str = function Op.Same -> "same" | Op.Valid -> "valid"

let parse_padding = function
  | "same" -> Op.Same
  | "valid" -> Op.Valid
  | s -> invalid_arg ("Serialize: bad padding " ^ s)

let op_to_string (op : Op.t) =
  match op with
  | Input { shape } -> Printf.sprintf "input shape=%s" (shape_str shape)
  | Weight { tensor } ->
      let floats =
        String.concat " "
          (List.map (fun f -> Printf.sprintf "%h" f)
             (Array.to_list (T.data tensor)))
      in
      Printf.sprintf "weight shape=%s data=%s" (shape_str (T.shape tensor)) floats
  | Conv2d { stride; padding } ->
      Printf.sprintf "conv2d stride=%d padding=%s" stride (padding_str padding)
  | Depthwise_conv2d { stride; padding } ->
      Printf.sprintf "depthwise_conv2d stride=%d padding=%s" stride
        (padding_str padding)
  | Fully_connected -> "fully_connected"
  | Batch_matmul { transpose_b } ->
      Printf.sprintf "batch_matmul transpose_b=%b" transpose_b
  | Avg_pool2d { size; stride } ->
      Printf.sprintf "avg_pool2d size=%d stride=%d" size stride
  | Max_pool2d { size; stride } ->
      Printf.sprintf "max_pool2d size=%d stride=%d" size stride
  | Global_avg_pool -> "global_avg_pool"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Squared_difference -> "squared_difference"
  | Maximum -> "maximum"
  | Minimum -> "minimum"
  | Neg -> "neg"
  | Square -> "square"
  | Reduce_sum { axis } -> Printf.sprintf "reduce_sum axis=%d" axis
  | Reduce_mean { axis } -> Printf.sprintf "reduce_mean axis=%d" axis
  | Reduce_max { axis } -> Printf.sprintf "reduce_max axis=%d" axis
  | Activation (Elu alpha) -> Printf.sprintf "act_elu alpha=%h" alpha
  | Activation a -> "act_" ^ Op.activation_name a
  | Softmax -> "softmax"
  | Layer_norm { eps } -> Printf.sprintf "layer_norm eps=%h" eps
  | Batch_norm -> "batch_norm"
  | Reshape { shape } -> Printf.sprintf "reshape shape=%s" (shape_str shape)
  | Transpose { perm } -> Printf.sprintf "transpose perm=%s" (shape_str perm)
  | Concat { axis } -> Printf.sprintf "concat axis=%d" axis
  | Slice { starts; sizes } ->
      Printf.sprintf "slice starts=%s sizes=%s" (shape_str starts)
        (shape_str sizes)
  | Pad { pads } -> Printf.sprintf "pad pads=%s" (pads_str pads)
  | Flatten -> "flatten"
  | Squeeze { axis } -> Printf.sprintf "squeeze axis=%d" axis
  | Expand_dims { axis } -> Printf.sprintf "expand_dims axis=%d" axis
  | Gather { indices; axis } ->
      Printf.sprintf "gather axis=%d indices=%s" axis (shape_str indices)

let activation_of_string = function
  | "relu" -> Op.Relu
  | "relu6" -> Op.Relu6
  | "sigmoid" -> Op.Sigmoid
  | "tanh" -> Op.Tanh
  | "gelu" -> Op.Gelu
  | "exp" -> Op.Exp
  | "softplus" -> Op.Softplus
  | "silu" -> Op.Silu
  | "rsqrt" -> Op.Rsqrt
  | "sqrt" -> Op.Sqrt
  | "reciprocal" -> Op.Reciprocal
  | s -> invalid_arg ("Serialize: unknown activation " ^ s)

let parse_attrs tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None)
    tokens

let op_of_tokens = function
  | [] -> invalid_arg "Serialize: empty op"
  | opname :: rest -> (
      let attrs = parse_attrs rest in
      let attr k =
        try List.assoc k attrs
        with Not_found -> invalid_arg ("Serialize: missing attr " ^ k)
      in
      let iattr k = int_of_string (attr k) in
      match opname with
      | "input" -> Op.Input { shape = parse_shape (attr "shape") }
      | "weight" ->
          let shape = parse_shape (attr "shape") in
          (* data floats follow the data= token *)
          let rec collect = function
            | [] -> []
            | tok :: rest when String.length tok > 5 && String.sub tok 0 5 = "data=" ->
                String.sub tok 5 (String.length tok - 5) :: rest
            | _ :: rest -> collect rest
          in
          let floats = List.map float_of_string (collect rest) in
          Op.Weight { tensor = T.of_array shape (Array.of_list floats) }
      | "conv2d" ->
          Op.Conv2d
            { stride = iattr "stride"; padding = parse_padding (attr "padding") }
      | "depthwise_conv2d" ->
          Op.Depthwise_conv2d
            { stride = iattr "stride"; padding = parse_padding (attr "padding") }
      | "fully_connected" -> Op.Fully_connected
      | "batch_matmul" ->
          Op.Batch_matmul { transpose_b = bool_of_string (attr "transpose_b") }
      | "avg_pool2d" -> Op.Avg_pool2d { size = iattr "size"; stride = iattr "stride" }
      | "max_pool2d" -> Op.Max_pool2d { size = iattr "size"; stride = iattr "stride" }
      | "global_avg_pool" -> Op.Global_avg_pool
      | "add" -> Op.Add
      | "sub" -> Op.Sub
      | "mul" -> Op.Mul
      | "div" -> Op.Div
      | "squared_difference" -> Op.Squared_difference
      | "maximum" -> Op.Maximum
      | "minimum" -> Op.Minimum
      | "neg" -> Op.Neg
      | "square" -> Op.Square
      | "reduce_sum" -> Op.Reduce_sum { axis = iattr "axis" }
      | "reduce_mean" -> Op.Reduce_mean { axis = iattr "axis" }
      | "reduce_max" -> Op.Reduce_max { axis = iattr "axis" }
      | "act_elu" -> Op.Activation (Op.Elu (float_of_string (attr "alpha")))
      | "softmax" -> Op.Softmax
      | "layer_norm" -> Op.Layer_norm { eps = float_of_string (attr "eps") }
      | "batch_norm" -> Op.Batch_norm
      | "reshape" -> Op.Reshape { shape = parse_shape (attr "shape") }
      | "transpose" -> Op.Transpose { perm = parse_shape (attr "perm") }
      | "concat" -> Op.Concat { axis = iattr "axis" }
      | "slice" ->
          Op.Slice { starts = parse_shape (attr "starts"); sizes = parse_shape (attr "sizes") }
      | "pad" -> Op.Pad { pads = parse_pads (attr "pads") }
      | "flatten" -> Op.Flatten
      | "squeeze" -> Op.Squeeze { axis = iattr "axis" }
      | "expand_dims" -> Op.Expand_dims { axis = iattr "axis" }
      | "gather" ->
          Op.Gather { indices = parse_shape (attr "indices"); axis = iattr "axis" }
      | s when String.length s > 4 && String.sub s 0 4 = "act_" ->
          Op.Activation (activation_of_string (String.sub s 4 (String.length s - 4)))
      | s -> invalid_arg ("Serialize: unknown op " ^ s))

let to_string graph =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "zkml-model v1 %s\n" (Graph.name graph));
  Array.iter
    (fun (n : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "node %d in=%s %s\n" n.Graph.id
           (shape_str n.Graph.inputs)
           (op_to_string n.Graph.op)))
    (Graph.nodes graph);
  Buffer.add_string buf
    (Printf.sprintf "outputs %s\n"
       (String.concat "," (List.map string_of_int (Graph.outputs graph))));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> invalid_arg "Serialize: empty model"
  | header :: rest ->
      let name =
        match String.split_on_char ' ' header with
        | "zkml-model" :: "v1" :: name :: _ -> name
        | _ -> invalid_arg "Serialize: bad header"
      in
      let g = Graph.create name in
      List.iter
        (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] | [] -> ()
          | "node" :: _id :: ins :: op_tokens ->
              let inputs =
                if ins = "in=" then [||]
                else parse_shape (String.sub ins 3 (String.length ins - 3))
              in
              ignore (Graph.add g (op_of_tokens op_tokens) inputs)
          | "outputs" :: [ outs ] ->
              Array.iter (Graph.mark_output g) (parse_shape outs)
          | _ -> invalid_arg ("Serialize: bad line: " ^ line))
        rest;
      g

let save graph path =
  let oc = open_out path in
  output_string oc (to_string graph);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
