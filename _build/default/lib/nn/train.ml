(** SGD training with reverse-mode differentiation over the graph.
    Supports the layer set of the vision models used in the accuracy
    experiment (Table 8): convolutions, fully-connected, pooling,
    pointwise activations, residual additions and the shape ops. The
    loss is softmax cross-entropy on the graph output (logits).

    The paper's Table 2 lists "CNN training" as a ZKML capability; this
    module is the substrate that produces genuinely trained weights for
    the accuracy comparison. *)

module T = Zkml_tensor.Tensor

exception Unsupported of string

let zeros_like t = T.create (T.shape t) 0.0

(* derivative of a pointwise activation; analytic where cheap, central
   difference otherwise *)
let activation_deriv a x =
  match a with
  | Op.Relu -> if x > 0.0 then 1.0 else 0.0
  | Op.Relu6 -> if x > 0.0 && x < 6.0 then 1.0 else 0.0
  | Op.Sigmoid ->
      let s = Zkml_fixed.Fixed.sigmoid x in
      s *. (1.0 -. s)
  | Op.Tanh ->
      let t = Float.tanh x in
      1.0 -. (t *. t)
  | _ ->
      let h = 1e-4 in
      let f = Op.activation_fn a in
      (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

(* reduce a gradient with the broadcast pattern of Float_exec.broadcast2's
   second operand *)
let reduce_broadcast_grad grad target =
  if T.shape grad = T.shape target then grad
  else begin
    let nt = T.numel target in
    let out = zeros_like target in
    T.iteri (fun i g -> T.set_flat out (i mod nt) (T.get_flat out (i mod nt) +. g)) grad;
    out
  end

let backward graph values ~out_grad =
  let nodes = Graph.nodes graph in
  let grads = Array.map zeros_like values in
  (match Graph.outputs graph with
  | [ out ] -> grads.(out) <- out_grad
  | _ -> raise (Unsupported "training requires a single graph output"));
  let add_grad id g =
    grads.(id) <- T.map2 ( +. ) grads.(id) (T.reshape g (T.shape grads.(id)))
  in
  for idx = Array.length nodes - 1 downto 0 do
    let node = nodes.(idx) in
    let inp = node.Graph.inputs in
    let dy = grads.(node.Graph.id) in
    let x i = values.(inp.(i)) in
    match node.Graph.op with
    | Op.Input _ | Op.Weight _ -> ()
    | Op.Fully_connected ->
        let xv = x 0 and w = x 1 in
        let xs = T.shape xv and ws = T.shape w in
        let batch = xs.(0) and k = ws.(0) and n = ws.(1) in
        let dx = zeros_like xv and dw = zeros_like w and db = zeros_like (x 2) in
        for b = 0 to batch - 1 do
          for j = 0 to n - 1 do
            let g = T.get dy [| b; j |] in
            T.set_flat db j (T.get_flat db j +. g);
            for t = 0 to k - 1 do
              T.set dx [| b; t |]
                (T.get dx [| b; t |] +. (g *. T.get w [| t; j |]));
              T.set dw [| t; j |]
                (T.get dw [| t; j |] +. (g *. T.get xv [| b; t |]))
            done
          done
        done;
        add_grad inp.(0) dx;
        add_grad inp.(1) dw;
        add_grad inp.(2) db
    | Op.Conv2d { stride; padding } ->
        let xv = x 0 and w = x 1 in
        let xs = T.shape xv and ws = T.shape w in
        let n = xs.(0) and h = xs.(1) and wi = xs.(2) and ic = xs.(3) in
        let kh = ws.(0) and kw = ws.(1) and oc = ws.(3) in
        let os = T.shape dy in
        let oh = os.(1) and ow = os.(2) in
        let ph, _ = Float_exec.conv_pad ~padding ~stride ~k:kh ~out:oh h in
        let pw, _ = Float_exec.conv_pad ~padding ~stride ~k:kw ~out:ow wi in
        let dx = zeros_like xv and dw = zeros_like w and db = zeros_like (x 2) in
        for b = 0 to n - 1 do
          for i = 0 to oh - 1 do
            for j = 0 to ow - 1 do
              for o = 0 to oc - 1 do
                let g = T.get dy [| b; i; j; o |] in
                T.set_flat db o (T.get_flat db o +. g);
                for ki = 0 to kh - 1 do
                  for kj = 0 to kw - 1 do
                    let si = (i * stride) + ki - ph
                    and sj = (j * stride) + kj - pw in
                    if si >= 0 && si < h && sj >= 0 && sj < wi then
                      for c = 0 to ic - 1 do
                        T.set dx [| b; si; sj; c |]
                          (T.get dx [| b; si; sj; c |]
                          +. (g *. T.get w [| ki; kj; c; o |]));
                        T.set dw [| ki; kj; c; o |]
                          (T.get dw [| ki; kj; c; o |]
                          +. (g *. T.get xv [| b; si; sj; c |]))
                      done
                  done
                done
              done
            done
          done
        done;
        add_grad inp.(0) dx;
        add_grad inp.(1) dw;
        add_grad inp.(2) db
    | Op.Avg_pool2d { size; stride } ->
        let xv = x 0 in
        let dx = zeros_like xv in
        let os = T.shape dy in
        let inv = 1.0 /. float_of_int (size * size) in
        for b = 0 to os.(0) - 1 do
          for i = 0 to os.(1) - 1 do
            for j = 0 to os.(2) - 1 do
              for c = 0 to os.(3) - 1 do
                let g = T.get dy [| b; i; j; c |] *. inv in
                for ki = 0 to size - 1 do
                  for kj = 0 to size - 1 do
                    let si = (i * stride) + ki and sj = (j * stride) + kj in
                    T.set dx [| b; si; sj; c |] (T.get dx [| b; si; sj; c |] +. g)
                  done
                done
              done
            done
          done
        done;
        add_grad inp.(0) dx
    | Op.Max_pool2d { size; stride } ->
        let xv = x 0 in
        let dx = zeros_like xv in
        let os = T.shape dy in
        for b = 0 to os.(0) - 1 do
          for i = 0 to os.(1) - 1 do
            for j = 0 to os.(2) - 1 do
              for c = 0 to os.(3) - 1 do
                (* route to argmax *)
                let best = ref neg_infinity and bi = ref 0 and bj = ref 0 in
                for ki = 0 to size - 1 do
                  for kj = 0 to size - 1 do
                    let v = T.get xv [| b; (i * stride) + ki; (j * stride) + kj; c |] in
                    if v > !best then begin
                      best := v;
                      bi := (i * stride) + ki;
                      bj := (j * stride) + kj
                    end
                  done
                done;
                T.set dx [| b; !bi; !bj; c |]
                  (T.get dx [| b; !bi; !bj; c |] +. T.get dy [| b; i; j; c |])
              done
            done
          done
        done;
        add_grad inp.(0) dx
    | Op.Global_avg_pool ->
        let xv = x 0 in
        let xs = T.shape xv in
        let inv = 1.0 /. float_of_int (xs.(1) * xs.(2)) in
        let dx =
          T.init xs (fun flat ->
              let c = flat mod xs.(3) in
              let b = flat / (xs.(1) * xs.(2) * xs.(3)) in
              T.get dy [| b; 0; 0; c |] *. inv)
        in
        add_grad inp.(0) dx
    | Op.Add ->
        add_grad inp.(0) (T.reshape dy (T.shape (x 0)));
        add_grad inp.(1) (reduce_broadcast_grad dy (x 1))
    | Op.Sub ->
        add_grad inp.(0) (T.reshape dy (T.shape (x 0)));
        add_grad inp.(1) (reduce_broadcast_grad (T.map (fun g -> -.g) dy) (x 1))
    | Op.Mul ->
        if T.shape (x 0) <> T.shape (x 1) then
          raise (Unsupported "mul broadcast backward");
        add_grad inp.(0) (T.map2 ( *. ) dy (x 1));
        add_grad inp.(1) (T.map2 ( *. ) dy (x 0))
    | Op.Batch_norm ->
        let xv = x 0 in
        add_grad inp.(0)
          (T.init (T.shape xv) (fun i ->
               T.get_flat dy i
               *. T.get_flat (x 1) (i mod T.numel (x 1))));
        add_grad inp.(1)
          (reduce_broadcast_grad (T.map2 ( *. ) dy xv) (x 1));
        add_grad inp.(2) (reduce_broadcast_grad dy (x 2))
    | Op.Activation a ->
        let xv = x 0 in
        add_grad inp.(0)
          (T.init (T.shape xv) (fun i ->
               T.get_flat dy i *. activation_deriv a (T.get_flat xv i)))
    | Op.Reshape _ | Op.Flatten | Op.Squeeze _ | Op.Expand_dims _ ->
        add_grad inp.(0) (T.reshape dy (T.shape (x 0)))
    | op -> raise (Unsupported (Op.name op))
  done;
  grads

(** Softmax cross-entropy loss and its gradient w.r.t. the logits. *)
let softmax_ce logits label =
  let d = T.numel logits in
  let m = T.fold Float.max neg_infinity logits in
  let exps = T.map (fun x -> exp (x -. m)) logits in
  let sum = T.fold ( +. ) 0.0 exps in
  let loss = -.log (T.get_flat exps label /. sum) in
  let grad =
    T.init (T.shape logits) (fun i ->
        (T.get_flat exps i /. sum) -. (if i = label then 1.0 else 0.0))
  in
  ignore d;
  (loss, grad)

(** In-place SGD over [epochs] passes of the training set. Returns the
    average loss per epoch. *)
let sgd graph ~(data : Dataset.sample array) ~epochs ~lr ~rng =
  let nodes = Graph.nodes graph in
  let weight_tensors =
    Array.to_list nodes
    |> List.filter_map (fun (n : Graph.node) ->
           match n.Graph.op with
           | Op.Weight { tensor } -> Some (n.Graph.id, tensor)
           | _ -> None)
  in
  let losses = ref [] in
  for _epoch = 1 to epochs do
    (* shuffled pass *)
    let order = Array.init (Array.length data) (fun i -> i) in
    for i = Array.length order - 1 downto 1 do
      let j = Zkml_util.Rng.int rng (i + 1) in
      let t = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- t
    done;
    let total = ref 0.0 in
    Array.iter
      (fun i ->
        let sample = data.(i) in
        let values = Float_exec.run graph ~inputs:[ sample.Dataset.image ] in
        let out =
          match Graph.outputs graph with
          | [ o ] -> values.(o)
          | _ -> raise (Unsupported "single output required")
        in
        let loss, out_grad = softmax_ce out sample.Dataset.label in
        total := !total +. loss;
        let grads = backward graph values ~out_grad in
        List.iter
          (fun (id, tensor) ->
            let g = grads.(id) in
            T.iteri
              (fun j gv -> T.set_flat tensor j (T.get_flat tensor j -. (lr *. gv)))
              g)
          weight_tensors)
      order;
    losses := (!total /. float_of_int (Array.length data)) :: !losses
  done;
  List.rev !losses

let argmax t =
  let best = ref 0 in
  T.iteri (fun i v -> if v > T.get_flat t !best then best := i) t;
  !best

(** Classification accuracy of the FP32 executor. *)
let float_accuracy graph (samples : Dataset.sample array) =
  let correct = ref 0 in
  Array.iter
    (fun s ->
      let values = Float_exec.run graph ~inputs:[ s.Dataset.image ] in
      let out = values.(List.hd (Graph.outputs graph)) in
      if argmax out = s.Dataset.label then incr correct)
    samples;
  float_of_int !correct /. float_of_int (Array.length samples)

(** Classification accuracy of the fixed-point executor (the circuit
    semantics). *)
let quant_accuracy ?(saturate = true) cfg graph (samples : Dataset.sample array) =
  let correct = ref 0 in
  Array.iter
    (fun s ->
      let qin = T.map (Zkml_fixed.Fixed.quantize cfg) s.Dataset.image in
      let result = Quant_exec.run ~saturate cfg graph ~inputs:[ qin ] in
      let out = result.Quant_exec.values.(List.hd (Graph.outputs graph)) in
      let best = ref 0 in
      T.iteri (fun i v -> if v > T.get_flat out !best then best := i) out;
      if !best = s.Dataset.label then incr correct)
    samples;
  float_of_int !correct /. float_of_int (Array.length samples)
