(** Fixed-point executor. Runs the graph on integer tensors at scale
    SF = 2^scale_bits with exactly the rounding and lookup semantics the
    gadgets constrain, so the circuit witness can be read straight off
    these values and the circuit output equals this executor's output
    bit-for-bit.

    If a non-linearity input falls outside the lookup-table range the
    executor raises {!Out_of_range} by default (the paper's approach is
    to pick the scale factor so that this cannot happen); passing
    [~saturate:true] clamps instead, which is useful for executor-only
    accuracy sweeps. *)

module T = Zkml_tensor.Tensor
module F = Zkml_fixed.Fixed

exception Out_of_range of string

type t = {
  cfg : F.config;
  values : int T.t array;  (** per node, at scale SF (weights too) *)
}

let madd_int acc a b = acc + (a * b)

let table_input cfg ~saturate ~what x =
  if x >= F.table_min cfg && x <= F.table_max cfg then x
  else if saturate then F.clamp cfg x
  else
    raise
      (Out_of_range
         (Printf.sprintf "%s: value %d outside table range [%d, %d]" what x
            (F.table_min cfg) (F.table_max cfg)))

let quantize_tensor cfg t = T.map (F.quantize cfg) t

(* rescale an SF^2-scaled accumulation back to SF *)
let rescale cfg x = F.round_div x (F.sf cfg)

let run ?(saturate = false) cfg graph ~(inputs : int T.t list) : t =
  let sf = F.sf cfg in
  let nodes = Graph.nodes graph in
  let values = Array.make (Array.length nodes) (T.create [| 1 |] 0) in
  let remaining_inputs = ref inputs in
  let v i = values.(i) in
  let act_value a x =
    let x = table_input cfg ~saturate ~what:(Op.activation_name a) x in
    F.apply_real cfg (Op.activation_fn a) x
  in
  Array.iter
    (fun (node : Graph.node) ->
      let inp = node.Graph.inputs in
      let result =
        match node.Graph.op with
        | Op.Input { shape } -> (
            match !remaining_inputs with
            | t :: rest ->
                if T.shape t <> shape then
                  invalid_arg "Quant_exec.run: input shape mismatch";
                remaining_inputs := rest;
                t
            | [] -> invalid_arg "Quant_exec.run: missing input")
        | Op.Weight { tensor } -> quantize_tensor cfg tensor
        | Op.Conv2d { stride; padding } ->
            (* bias at SF lifted to SF^2 during accumulation *)
            let b2 = T.map (fun b -> b * sf) (v inp.(2)) in
            Float_exec.conv2d_generic ~zero:0 ~madd:madd_int ~stride ~padding
              (v inp.(0)) (v inp.(1)) b2
            |> T.map (rescale cfg)
        | Op.Depthwise_conv2d { stride; padding } ->
            let b2 = T.map (fun b -> b * sf) (v inp.(2)) in
            Float_exec.depthwise_conv2d_generic ~zero:0 ~madd:madd_int ~stride
              ~padding (v inp.(0)) (v inp.(1)) b2
            |> T.map (rescale cfg)
        | Op.Fully_connected ->
            let y =
              Float_exec.batch_matmul_generic ~zero:0 ~madd:madd_int
                ~transpose_b:false (v inp.(0)) (v inp.(1))
            in
            let b2 = T.map (fun b -> b * sf) (v inp.(2)) in
            Float_exec.broadcast2 ( + ) y b2 |> T.map (rescale cfg)
        | Op.Batch_matmul { transpose_b } ->
            Float_exec.batch_matmul_generic ~zero:0 ~madd:madd_int ~transpose_b
              (v inp.(0)) (v inp.(1))
            |> T.map (rescale cfg)
        | Op.Avg_pool2d { size; stride } ->
            Float_exec.pool_generic ~combine:( + )
              ~finalize:(fun acc count -> F.round_div acc count)
              ~init:0 ~size ~stride (v inp.(0))
        | Op.Max_pool2d { size; stride } ->
            Float_exec.pool_generic ~combine:max
              ~finalize:(fun acc _ -> acc)
              ~init:min_int ~size ~stride (v inp.(0))
        | Op.Global_avg_pool ->
            let x = v inp.(0) in
            let s = T.shape x in
            Float_exec.pool_generic ~combine:( + )
              ~finalize:(fun acc count -> F.round_div acc count)
              ~init:0 ~size:s.(1) ~stride:s.(1) x
        | Op.Add -> Float_exec.broadcast2 ( + ) (v inp.(0)) (v inp.(1))
        | Op.Sub -> Float_exec.broadcast2 ( - ) (v inp.(0)) (v inp.(1))
        | Op.Mul ->
            Float_exec.broadcast2 (fun a b -> rescale cfg (a * b)) (v inp.(0))
              (v inp.(1))
        | Op.Div ->
            Float_exec.broadcast2
              (fun a b ->
                (* variable division gadget: round(a * SF / b), positive
                   denominator *)
                let b = max 1 b in
                F.round_div (a * sf) b)
              (v inp.(0)) (v inp.(1))
        | Op.Squared_difference ->
            Float_exec.broadcast2
              (fun a b -> rescale cfg ((a - b) * (a - b)))
              (v inp.(0)) (v inp.(1))
        | Op.Maximum -> Float_exec.broadcast2 max (v inp.(0)) (v inp.(1))
        | Op.Minimum -> Float_exec.broadcast2 min (v inp.(0)) (v inp.(1))
        | Op.Neg -> T.map (fun x -> -x) (v inp.(0))
        | Op.Square -> T.map (fun x -> rescale cfg (x * x)) (v inp.(0))
        | Op.Reduce_sum { axis } ->
            Float_exec.reduce_generic ~combine:( + )
              ~finalize:(fun acc _ -> acc)
              ~init:0 ~axis (v inp.(0))
        | Op.Reduce_mean { axis } ->
            Float_exec.reduce_generic ~combine:( + )
              ~finalize:(fun acc d -> F.round_div acc d)
              ~init:0 ~axis (v inp.(0))
        | Op.Reduce_max { axis } ->
            Float_exec.reduce_generic ~combine:max
              ~finalize:(fun acc _ -> acc)
              ~init:min_int ~axis (v inp.(0))
        | Op.Activation a -> T.map (act_value a) (v inp.(0))
        | Op.Softmax ->
            (* the paper's high-performance softmax (§6.1): subtract the
               max, scaled-exp via lookup, scale the numerator, variable
               division *)
            let x = v inp.(0) in
            let s = T.shape x in
            let d = s.(Array.length s - 1) in
            let out = T.copy x in
            let rows = T.numel x / d in
            for r = 0 to rows - 1 do
              let m = ref min_int in
              for j = 0 to d - 1 do
                m := max !m (T.get_flat x ((r * d) + j))
              done;
              let sum = ref 0 in
              for j = 0 to d - 1 do
                let shifted =
                  table_input cfg ~saturate ~what:"softmax-exp"
                    (T.get_flat x ((r * d) + j) - !m)
                in
                let e = F.apply_real cfg F.exp' shifted in
                T.set_flat out ((r * d) + j) e;
                sum := !sum + e
              done;
              for j = 0 to d - 1 do
                T.set_flat out ((r * d) + j)
                  (F.round_div (T.get_flat out ((r * d) + j) * sf) (max 1 !sum))
              done
            done;
            out
        | Op.Layer_norm { eps } ->
            let x = v inp.(0) and gamma = v inp.(1) and beta = v inp.(2) in
            let s = T.shape x in
            let d = s.(Array.length s - 1) in
            let out = T.copy x in
            let rows = T.numel x / d in
            let eps_q = F.quantize cfg eps in
            for r = 0 to rows - 1 do
              let total = ref 0 in
              for j = 0 to d - 1 do
                total := !total + T.get_flat x ((r * d) + j)
              done;
              let mean = F.round_div !total d in
              let var_total = ref 0 in
              for j = 0 to d - 1 do
                let dd = T.get_flat x ((r * d) + j) - mean in
                var_total := !var_total + rescale cfg (dd * dd)
              done;
              let var = F.round_div !var_total d in
              let inv =
                F.apply_real cfg F.rsqrt
                  (table_input cfg ~saturate ~what:"layer_norm-rsqrt"
                     (var + eps_q))
              in
              for j = 0 to d - 1 do
                let dd = T.get_flat x ((r * d) + j) - mean in
                let normalized = rescale cfg (dd * inv) in
                T.set_flat out ((r * d) + j)
                  (rescale cfg (normalized * T.get_flat gamma j)
                  + T.get_flat beta j)
              done
            done;
            out
        | Op.Batch_norm ->
            let x = v inp.(0) and scale = v inp.(1) and shift = v inp.(2) in
            Float_exec.broadcast2 ( + )
              (Float_exec.broadcast2 (fun a b -> rescale cfg (a * b)) x scale)
              shift
        | Op.Reshape { shape } -> T.reshape (v inp.(0)) shape
        | Op.Transpose { perm } -> T.transpose (v inp.(0)) perm
        | Op.Concat { axis } -> T.concat axis (Array.to_list (Array.map v inp))
        | Op.Slice { starts; sizes } -> T.slice (v inp.(0)) ~starts ~sizes
        | Op.Pad { pads } -> T.pad (v inp.(0)) ~pads ~value:0
        | Op.Flatten ->
            let x = v inp.(0) in
            T.reshape x [| (T.shape x).(0); -1 |]
        | Op.Squeeze { axis } ->
            let x = v inp.(0) in
            let s = T.shape x in
            let axis = Float_exec.normalize_axis (Array.length s) axis in
            T.reshape x
              (Array.of_list
                 (List.filteri (fun i _ -> i <> axis) (Array.to_list s)))
        | Op.Expand_dims { axis } ->
            let x = v inp.(0) in
            let s = Array.to_list (T.shape x) in
            let rec insert i = function
              | rest when i = 0 -> 1 :: rest
              | [] -> [ 1 ]
              | dim :: rest -> dim :: insert (i - 1) rest
            in
            T.reshape x (Array.of_list (insert axis s))
        | Op.Gather { indices; axis } ->
            Float_exec.gather_generic ~indices ~axis (v inp.(0))
      in
      values.(node.Graph.id) <- result)
    nodes;
  { cfg; values }

let output_values t graph =
  List.map (fun id -> t.values.(id)) (Graph.outputs graph)

let dequantized t graph =
  List.map (T.map (F.dequantize t.cfg)) (output_values t graph)
