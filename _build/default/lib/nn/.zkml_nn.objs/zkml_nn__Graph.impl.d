lib/nn/graph.ml: Array List Op Zkml_tensor Zkml_util
