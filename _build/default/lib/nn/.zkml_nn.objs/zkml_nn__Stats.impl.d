lib/nn/stats.ml: Array Float_exec Graph List Op Zkml_tensor
