lib/nn/serialize.ml: Array Buffer Graph List Op Printf String Zkml_tensor
