lib/nn/float_exec.ml: Array Float Graph List Op Zkml_tensor
