lib/nn/train.ml: Array Dataset Float Float_exec Graph List Op Quant_exec Zkml_fixed Zkml_tensor Zkml_util
