lib/nn/quant_exec.ml: Array Float_exec Graph List Op Printf Zkml_fixed Zkml_tensor
