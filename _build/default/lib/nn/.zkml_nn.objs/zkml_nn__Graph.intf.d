lib/nn/graph.mli: Op Zkml_tensor Zkml_util
