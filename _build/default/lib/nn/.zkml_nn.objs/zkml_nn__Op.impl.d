lib/nn/op.ml: Zkml_fixed Zkml_tensor
