lib/nn/dataset.ml: Array Zkml_tensor Zkml_util
