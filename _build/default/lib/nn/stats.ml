(** Parameter and FLOP counting (paper Table 5). *)

module T = Zkml_tensor.Tensor

type t = { params : int; flops : int; num_nodes : int }

let zero_inputs graph =
  Graph.nodes graph
  |> Array.to_list
  |> List.filter_map (fun (n : Graph.node) ->
         match n.Graph.op with
         | Op.Input { shape } -> Some (T.create shape 0.0)
         | _ -> None)

let compute graph =
  let nodes = Graph.nodes graph in
  let values = Float_exec.run graph ~inputs:(zero_inputs graph) in
  let out_numel id = T.numel values.(id) in
  let in_shape (n : Graph.node) i = T.shape values.(n.Graph.inputs.(i)) in
  let params = ref 0 and flops = ref 0 in
  Array.iter
    (fun (n : Graph.node) ->
      match n.Graph.op with
      | Op.Input _ -> ()
      | Op.Weight { tensor } -> params := !params + T.numel tensor
      | Op.Conv2d _ ->
          let ws = in_shape n 1 in
          flops := !flops + (out_numel n.id * 2 * ws.(0) * ws.(1) * ws.(2))
      | Op.Depthwise_conv2d _ ->
          let ws = in_shape n 1 in
          flops := !flops + (out_numel n.id * 2 * ws.(0) * ws.(1))
      | Op.Fully_connected | Op.Batch_matmul _ ->
          let xs = in_shape n 0 in
          let k = xs.(Array.length xs - 1) in
          flops := !flops + (out_numel n.id * 2 * k)
      | Op.Avg_pool2d { size; _ } | Op.Max_pool2d { size; _ } ->
          flops := !flops + (out_numel n.id * size * size)
      | Op.Global_avg_pool ->
          flops := !flops + T.numel values.(n.inputs.(0))
      | Op.Add | Op.Sub | Op.Mul | Op.Div | Op.Squared_difference | Op.Maximum
      | Op.Minimum | Op.Neg | Op.Square | Op.Batch_norm ->
          flops := !flops + out_numel n.id
      | Op.Reduce_sum _ | Op.Reduce_mean _ | Op.Reduce_max _ ->
          flops := !flops + T.numel values.(n.inputs.(0))
      | Op.Activation _ -> flops := !flops + out_numel n.id
      | Op.Softmax -> flops := !flops + (4 * out_numel n.id)
      | Op.Layer_norm _ -> flops := !flops + (8 * out_numel n.id)
      | Op.Reshape _ | Op.Transpose _ | Op.Concat _ | Op.Slice _ | Op.Pad _
      | Op.Flatten | Op.Squeeze _ | Op.Expand_dims _ | Op.Gather _ ->
          ())
    nodes;
  { params = !params; flops = !flops; num_nodes = Array.length nodes }
