lib/commit/scheme_intf.ml: Zkml_ec Zkml_transcript
