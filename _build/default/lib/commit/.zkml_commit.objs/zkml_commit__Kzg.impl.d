lib/commit/kzg.ml: Array Scheme_intf String Zkml_ec Zkml_poly Zkml_util
