lib/commit/ipa.ml: Array Buffer Scheme_intf String Zkml_ec Zkml_transcript
