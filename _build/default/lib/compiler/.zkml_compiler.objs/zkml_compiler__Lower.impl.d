lib/compiler/lower.ml: Array Hashtbl Layout_spec Layouter List Printf Zkml_fixed Zkml_nn Zkml_plonkish Zkml_tensor
