lib/compiler/layouter.ml: Array Hashtbl List Printf Zkml_fixed Zkml_plonkish Zkml_util
