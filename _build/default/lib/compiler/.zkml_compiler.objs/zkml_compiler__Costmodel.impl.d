lib/compiler/costmodel.ml: Layouter List Zkml_util
