lib/compiler/optimizer.ml: Array Costmodel Layout_spec Layouter List Lower Zkml_nn
