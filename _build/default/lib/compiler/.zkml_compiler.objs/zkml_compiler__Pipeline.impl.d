lib/compiler/pipeline.ml: Array Costmodel Hashtbl Layouter List Lower Optimizer Printf Zkml_commit Zkml_ec Zkml_fixed Zkml_nn Zkml_plonkish Zkml_tensor Zkml_util
