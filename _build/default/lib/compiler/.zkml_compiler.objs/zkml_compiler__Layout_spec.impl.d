lib/compiler/layout_spec.ml: List Printf String
