(** Logical circuit layouts (§7.2): which gadget implementation each
    layer class uses. The optimizer's pruned search enforces one choice
    per layer class across the whole model (the paper's heuristic); the
    non-pruned search (Table 12) relaxes this to per-layer choices. *)

type linear_impl =
  | Dot_bias  (** dot-product rows carrying the accumulator in the bias slot *)
  | Dot_plain  (** plain dot rows plus separate sum/accumulate rows *)

type relu_impl =
  | Lookup_relu  (** two cells per value via a lookup table *)
  | Bitdecomp_relu
      (** full bit decomposition with polynomial constraints (prior-work
          style; needs wide rows) *)

type arith_impl =
  | Custom_arith  (** dedicated packed constraints per operation *)
  | Via_dot  (** repurpose the dot-product gadget (§5.1) *)

type t = { linear : linear_impl; relu : relu_impl; arith : arith_impl }

let default = { linear = Dot_bias; relu = Lookup_relu; arith = Custom_arith }

let all =
  List.concat_map
    (fun linear ->
      List.concat_map
        (fun relu ->
          List.map (fun arith -> { linear; relu; arith }) [ Custom_arith; Via_dot ])
        [ Lookup_relu; Bitdecomp_relu ])
    [ Dot_bias; Dot_plain ]

(** The restricted menu for the Table 11 ablation ("fixed set of
    gadgets"): a single, prior-work-style implementation per layer class
    (plain dots, bit-decomposed ReLU, everything else through the dot
    gadget). *)
let fixed_gadgets =
  [ { linear = Dot_plain; relu = Bitdecomp_relu; arith = Via_dot } ]

let to_string t =
  Printf.sprintf "linear=%s relu=%s arith=%s"
    (match t.linear with Dot_bias -> "dot_bias" | Dot_plain -> "dot_plain")
    (match t.relu with Lookup_relu -> "lookup" | Bitdecomp_relu -> "bitdecomp")
    (match t.arith with Custom_arith -> "custom" | Via_dot -> "via_dot")

let of_string s =
  let assoc =
    List.filter_map
      (fun tok ->
        match String.index_opt tok '=' with
        | Some i ->
            Some
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
        | None -> None)
      (String.split_on_char ' ' s)
  in
  let get k = try List.assoc k assoc with Not_found -> invalid_arg ("Layout_spec.of_string: missing " ^ k) in
  {
    linear =
      (match get "linear" with
      | "dot_bias" -> Dot_bias
      | "dot_plain" -> Dot_plain
      | v -> invalid_arg ("Layout_spec.of_string: linear " ^ v));
    relu =
      (match get "relu" with
      | "lookup" -> Lookup_relu
      | "bitdecomp" -> Bitdecomp_relu
      | v -> invalid_arg ("Layout_spec.of_string: relu " ^ v));
    arith =
      (match get "arith" with
      | "custom" -> Custom_arith
      | "via_dot" -> Via_dot
      | v -> invalid_arg ("Layout_spec.of_string: arith " ^ v));
  }
