(** Fiat–Shamir transcript: a SHA-256 hash chain that both prover and
    verifier advance identically. The state type is field-independent;
    field-specific challenge derivation lives in the {!Challenge}
    functor. Challenges are derived by expanding the chain state to 64
    bytes and reducing exactly modulo the field order, so the
    distribution is uniform to within a 2^-256 bias. *)

type t = { mutable state : string }

let create label = { state = Zkml_util.Sha256.digest ("zkml-transcript:" ^ label) }

let clone t = { state = t.state }

let absorb_bytes t ~label s =
  t.state <-
    Zkml_util.Sha256.digest
      (t.state ^ "\x00" ^ label ^ "\x01"
      ^ string_of_int (String.length s)
      ^ "\x02" ^ s)

module Challenge (F : Zkml_ff.Field_intf.S) = struct
  let absorb_scalar t ~label x = absorb_bytes t ~label (F.to_bytes x)

  let absorb_scalars t ~label xs =
    absorb_bytes t ~label (String.concat "" (List.map F.to_bytes xs))

  (* 2^64 in the field, for Horner recombination of 64-bit words. *)
  let two_to_64 = F.mul (F.of_int64 Int64.min_int) (F.of_int 2)

  let squeeze t ~label =
    let h1 = Zkml_util.Sha256.digest (t.state ^ "\x03" ^ label ^ "\x00") in
    let h2 = Zkml_util.Sha256.digest (t.state ^ "\x03" ^ label ^ "\x01") in
    t.state <- h1;
    let wide = h1 ^ h2 in
    (* Horner over eight 64-bit words: exact modular reduction. *)
    let acc = ref F.zero in
    for i = 7 downto 0 do
      acc :=
        F.add
          (F.mul !acc two_to_64)
          (F.of_int64 (Zkml_util.Bytes_util.int64_of_le wide (8 * i)))
    done;
    !acc

  (* A challenge usable as a denominator / evaluation point: re-squeeze
     in the (cryptographically unreachable) zero case. *)
  let rec squeeze_nonzero t ~label =
    let x = squeeze t ~label in
    if F.is_zero x then squeeze_nonzero t ~label else x
end
