lib/transcript/transcript.ml: Int64 List String Zkml_ff Zkml_util
