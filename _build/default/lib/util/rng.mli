(** Deterministic pseudo-random number generation.

    All randomness in the repository (synthetic weights, datasets, test
    vectors, Freivalds challenges in tests) flows through this seeded
    SplitMix64 generator so that every experiment is reproducible. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val next_int64 : t -> int64
(** Uniform 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val gaussian : t -> float
(** Standard normal sample (Box–Muller). *)

val split : t -> t
(** Derive an independent stream (for parallel substructures). *)
