(** Growable arrays (amortized O(1) append) used by the circuit layouter,
    where column heights are unknown until layout finishes. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty vector; [dummy] fills unused slots. *)

val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
(** Grows the vector (padding with the dummy) if [i >= length]. *)

val to_array : 'a t -> 'a array

val to_padded_array : 'a t -> int -> 'a array
(** [to_padded_array t n] is the contents padded with the dummy value up
    to length [n]. *)
