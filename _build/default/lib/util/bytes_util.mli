(** Byte-string helpers shared by the transcript and serialization code. *)

val to_hex : string -> string
(** Lowercase hex encoding. *)

val of_hex : string -> string
(** Inverse of [to_hex]. Raises [Invalid_argument] on malformed input. *)

val int64_le : int64 -> string
(** 8-byte little-endian encoding. *)

val int64_of_le : string -> int -> int64
(** [int64_of_le s off] reads 8 little-endian bytes at [off]. *)
