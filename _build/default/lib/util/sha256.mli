(** Pure-OCaml SHA-256 (FIPS 180-4), used for Fiat–Shamir transcripts and
    deterministic generator derivation. The container is sealed, so the
    hash is implemented in-tree rather than pulled from opam. *)

val digest : string -> string
(** 32-byte raw digest. *)

val hex_digest : string -> string
(** Lowercase hex of {!digest}. *)
