let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, t1 -. t0)

let time_s f = snd (time f)

let median_of n f =
  assert (n > 0);
  let samples = Array.init n (fun _ -> time_s f) in
  Array.sort compare samples;
  samples.(n / 2)
