(** Wall-clock timing used by the cost-model calibration and benches. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result and the elapsed seconds. *)

val time_s : (unit -> 'a) -> float
(** Elapsed seconds only. *)

val median_of : int -> (unit -> 'a) -> float
(** [median_of n f] runs [f] [n] times and returns the median elapsed
    seconds; used to stabilise microbenchmark readings. *)
