let to_hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytes_util.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytes_util.of_hex: bad digit"
  in
  String.init (n / 2) (fun i ->
      Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let int64_le x =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff))

let int64_of_le s off =
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc :=
      Int64.logor
        (Int64.shift_left !acc 8)
        (Int64.of_int (Char.code s.[off + i]))
  done;
  !acc
