lib/util/vec.mli:
