lib/util/timer.mli:
