lib/util/rng.mli:
