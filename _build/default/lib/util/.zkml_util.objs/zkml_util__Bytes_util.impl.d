lib/util/bytes_util.ml: Buffer Char Int64 Printf String
