lib/util/sha256.ml: Array Bytes Bytes_util Char String
