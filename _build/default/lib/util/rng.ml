type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  assert (bound > 0);
  let x = Int64.to_int (next_int64 t) land max_int in
  x mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 uniform mantissa bits *)
  let x = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float x /. 9007199254740992.0

let gaussian t =
  let rec draw () =
    let u = float t in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let split t = create (next_int64 t)
