type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) dummy =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length t = t.len

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t v =
  ensure t (t.len + 1);
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i v =
  if i < 0 then invalid_arg "Vec.set";
  if i >= t.len then begin
    ensure t (i + 1);
    Array.fill t.data t.len (i - t.len) t.dummy;
    t.len <- i + 1
  end;
  t.data.(i) <- v

let to_array t = Array.sub t.data 0 t.len

let to_padded_array t n =
  if n < t.len then invalid_arg "Vec.to_padded_array: target too small";
  let a = Array.make n t.dummy in
  Array.blit t.data 0 a 0 t.len;
  a
