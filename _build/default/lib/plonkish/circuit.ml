(** Circuit (constraint-system) description: a 2^k-row grid of fixed,
    advice and instance columns constrained by single- or multi-row
    custom gates, lookup arguments and copy (equality) constraints —
    the Plonkish randomized AIR of Section 3 of the paper. *)

type any_col = Col_fixed of int | Col_advice of int | Col_instance of int

type 'f gate = {
  gate_name : string;
  polys : 'f Expr.t list;  (** each must evaluate to zero on every row *)
}

type 'f lookup = {
  lookup_name : string;
  inputs : 'f Expr.t list;
  tables : 'f Expr.t list;
      (** the tuple of [inputs] must appear as a row of the tuple of
          [tables]; both lists have equal length *)
}

type copy = (any_col * int) * (any_col * int)

type 'f t = {
  k : int;  (** rows = 2^k *)
  num_fixed : int;
  is_selector : bool array;
      (** per fixed column: is it a selector? (cost accounting only) *)
  advice_phases : int array;
      (** phase (0 or 1) per advice column; phase-1 columns may depend on
          the challenges squeezed after phase 0 *)
  num_instance : int;
  num_challenges : int;
  gates : 'f gate list;
  lookups : 'f lookup list;
  copies : copy list;
  blinding : int;  (** rows reserved at the bottom for zero-knowledge *)
}

let n t = 1 lsl t.k
let num_advice t = Array.length t.advice_phases

(** Index of the "last" usable row u; rows 0..u-1 hold content, row u
    anchors the grand-product boundary checks, rows u+1..2^k-1 are
    blinding. *)
let last_row t = n t - t.blinding - 1

let usable_rows t = last_row t

let gate_degree g = List.fold_left (fun acc p -> max acc (Expr.degree p)) 0 g.polys

let lookup_degree l =
  let deg es = List.fold_left (fun acc e -> max acc (Expr.degree e)) 0 es in
  (* active * (Z(wX) (A'+b)(S'+g) - Z(X) (A+b)(S+g)) *)
  1 + 1 + max (deg l.inputs + deg l.tables) 2

(** Maximum constraint degree over the whole system (>= 3 so the
    permutation argument can make progress). *)
let max_degree t =
  let d = List.fold_left (fun acc g -> max acc (gate_degree g)) 3 t.gates in
  List.fold_left (fun acc l -> max acc (lookup_degree l)) d t.lookups

(** Chunk width of the permutation argument, as in halo2: each grand
    product covers [max_degree - 2] columns. *)
let permutation_chunk t = max_degree t - 2

(** Columns participating in the permutation argument, in a canonical
    order derived from the copy constraints. *)
let permutation_columns t =
  let cols =
    List.concat_map (fun ((c1, _), (c2, _)) -> [ c1; c2 ]) t.copies
  in
  List.sort_uniq compare cols |> Array.of_list

(** Statistics consumed by the cost model (§7.4 of the paper). *)
type stats = {
  s_rows : int;
  s_fixed : int;
  s_selectors : int;
  s_advice : int;
  s_instance : int;
  s_lookups : int;
  s_perm_columns : int;
  s_perm_chunks : int;
  s_gates : int;
  s_max_degree : int;
}

let stats t =
  let perm_cols = Array.length (permutation_columns t) in
  let chunk = permutation_chunk t in
  {
    s_rows = n t;
    s_fixed = t.num_fixed;
    s_selectors =
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.is_selector;
    s_advice = num_advice t;
    s_instance = t.num_instance;
    s_lookups = List.length t.lookups;
    s_perm_columns = perm_cols;
    s_perm_chunks = (if perm_cols = 0 then 0 else (perm_cols + chunk - 1) / chunk);
    s_gates = List.length t.gates;
    s_max_degree = max_degree t;
  }
