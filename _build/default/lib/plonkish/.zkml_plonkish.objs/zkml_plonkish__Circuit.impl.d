lib/plonkish/circuit.ml: Array Expr List
