lib/plonkish/protocol.ml: Array Buffer Circuit Expr Hashtbl List Printf String Zkml_commit Zkml_ff Zkml_poly Zkml_transcript
