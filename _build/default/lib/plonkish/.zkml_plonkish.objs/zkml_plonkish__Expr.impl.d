lib/plonkish/expr.ml:
