(** Polynomial constraint expressions over the circuit grid.

    An expression references cells of the current row (or, with a
    non-zero rotation, of nearby rows — the paper's gadgets are
    single-row, i.e. rotation 0, but multi-row rotations are supported
    for the Table 13 ablation). Expressions are polymorphic in the field
    element so the AST can be built without committing to a backend. *)

type query = { col : int; rot : int }

type 'f t =
  | Const of 'f
  | Fixed of query
  | Advice of query
  | Instance of query
  | Challenge of int
      (** A verifier challenge available after phase-0 advice is
          committed (used for Freivalds' algorithm). Degree 0. *)
  | Neg of 'f t
  | Add of 'f t * 'f t
  | Sub of 'f t * 'f t
  | Mul of 'f t * 'f t
  | Scaled of 'f t * 'f

let fixed ?(rot = 0) col = Fixed { col; rot }
let advice ?(rot = 0) col = Advice { col; rot }
let instance ?(rot = 0) col = Instance { col; rot }

let rec degree = function
  | Const _ | Challenge _ -> 0
  | Fixed _ | Advice _ | Instance _ -> 1
  | Neg e | Scaled (e, _) -> degree e
  | Add (a, b) | Sub (a, b) -> max (degree a) (degree b)
  | Mul (a, b) -> degree a + degree b

(** Fold over all queries, tagged by column kind. *)
type kind = KFixed | KAdvice | KInstance

let rec fold_queries f acc = function
  | Const _ | Challenge _ -> acc
  | Fixed q -> f acc KFixed q
  | Advice q -> f acc KAdvice q
  | Instance q -> f acc KInstance q
  | Neg e | Scaled (e, _) -> fold_queries f acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) ->
      fold_queries f (fold_queries f acc a) b

(** Evaluate with callbacks supplying cell values and challenges. *)
let eval ~fixed_at ~advice_at ~instance_at ~challenge ~add ~sub ~mul ~neg
    ~scale expr =
  let rec go = function
    | Const c -> c
    | Fixed q -> fixed_at q.col q.rot
    | Advice q -> advice_at q.col q.rot
    | Instance q -> instance_at q.col q.rot
    | Challenge i -> challenge i
    | Neg e -> neg (go e)
    | Add (a, b) -> add (go a) (go b)
    | Sub (a, b) -> sub (go a) (go b)
    | Mul (a, b) -> mul (go a) (go b)
    | Scaled (e, c) -> scale c (go e)
  in
  go expr

let rec map_const f = function
  | Const c -> Const (f c)
  | Fixed q -> Fixed q
  | Advice q -> Advice q
  | Instance q -> Instance q
  | Challenge i -> Challenge i
  | Neg e -> Neg (map_const f e)
  | Add (a, b) -> Add (map_const f a, map_const f b)
  | Sub (a, b) -> Sub (map_const f a, map_const f b)
  | Mul (a, b) -> Mul (map_const f a, map_const f b)
  | Scaled (e, c) -> Scaled (map_const f e, f c)
