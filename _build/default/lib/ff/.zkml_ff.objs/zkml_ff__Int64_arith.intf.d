lib/ff/int64_arith.mli:
