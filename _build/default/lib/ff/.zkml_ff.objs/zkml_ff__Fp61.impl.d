lib/ff/fp61.ml: Array Format Int64 Int64_arith Printf String Zkml_util
