lib/ff/field_intf.ml: Format Zkml_util
