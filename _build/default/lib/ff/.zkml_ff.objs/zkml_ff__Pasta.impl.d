lib/ff/pasta.ml: Limb4
