lib/ff/field_extra.ml: Array Field_intf Int64 Int64_arith
