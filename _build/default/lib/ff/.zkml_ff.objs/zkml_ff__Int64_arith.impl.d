lib/ff/int64_arith.ml: Int64
