lib/ff/limb4.ml: Array Field_intf Format Int64 Int64_arith List Printf String Zkml_util
