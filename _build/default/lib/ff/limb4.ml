(* Generic 256-bit prime field using 4 x 64-bit limbs (little-endian) in
   Montgomery form with R = 2^256. Multiplication is the CIOS method.

   The Montgomery constants (p', R mod p, R^2 mod p) are computed at
   functor application time from the modulus alone, which avoids
   hand-transcribed magic constants. *)

module type PARAMS = sig
  val name : string
  val modulus : int64 array
  val generator_int : int
  val two_adicity : int
end

module Make (P : PARAMS) : Field_intf.S = struct
  type t = int64 array (* always length 4, Montgomery form *)

  let name = P.name
  let modulus_limbs = Array.copy P.modulus
  let size_bytes = 32
  let two_adicity = P.two_adicity
  let p = P.modulus
  let p' = Int64_arith.neg_inv p.(0)

  let cmp_raw a b =
    let rec go i =
      if i < 0 then 0
      else
        let c = Int64.unsigned_compare a.(i) b.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go 3

  (* a - p into a fresh array; caller guarantees a >= p. *)
  let sub_p a =
    let r = Array.make 4 0L in
    let borrow = ref 0L in
    for i = 0 to 3 do
      let d, b = Int64_arith.subb a.(i) p.(i) !borrow in
      r.(i) <- d;
      borrow := b
    done;
    r

  let add a b =
    let r = Array.make 4 0L in
    let carry = ref 0L in
    for i = 0 to 3 do
      let s, c = Int64_arith.addc a.(i) b.(i) !carry in
      r.(i) <- s;
      carry := c
    done;
    if !carry = 1L || cmp_raw r p >= 0 then sub_p r else r

  let sub a b =
    let r = Array.make 4 0L in
    let borrow = ref 0L in
    for i = 0 to 3 do
      let d, bw = Int64_arith.subb a.(i) b.(i) !borrow in
      r.(i) <- d;
      borrow := bw
    done;
    if !borrow = 1L then begin
      let carry = ref 0L in
      for i = 0 to 3 do
        let s, c = Int64_arith.addc r.(i) p.(i) !carry in
        r.(i) <- s;
        carry := c
      done
    end;
    r

  let is_zero a = a.(0) = 0L && a.(1) = 0L && a.(2) = 0L && a.(3) = 0L
  let equal a b = cmp_raw a b = 0
  let zero = Array.make 4 0L
  let neg a = if is_zero a then zero else sub zero a

  (* CIOS Montgomery multiplication. *)
  let mul a b =
    let t = Array.make 6 0L in
    for i = 0 to 3 do
      (* t += a * b.(i) *)
      let c = ref 0L in
      for j = 0 to 3 do
        let hi, lo = Int64_arith.umul a.(j) b.(i) in
        let s1, c1 = Int64_arith.addc t.(j) lo 0L in
        let s2, c2 = Int64_arith.addc s1 !c 0L in
        t.(j) <- s2;
        c := Int64.add hi (Int64.add c1 c2)
      done;
      let s, cy = Int64_arith.addc t.(4) !c 0L in
      t.(4) <- s;
      t.(5) <- cy;
      (* reduce one limb *)
      let m = Int64.mul t.(0) p' in
      let hi0, lo0 = Int64_arith.umul m p.(0) in
      let _, c0 = Int64_arith.addc t.(0) lo0 0L in
      let c = ref (Int64.add hi0 c0) in
      for j = 1 to 3 do
        let hi, lo = Int64_arith.umul m p.(j) in
        let s1, c1 = Int64_arith.addc t.(j) lo 0L in
        let s2, c2 = Int64_arith.addc s1 !c 0L in
        t.(j - 1) <- s2;
        c := Int64.add hi (Int64.add c1 c2)
      done;
      let s, cy = Int64_arith.addc t.(4) !c 0L in
      t.(3) <- s;
      t.(4) <- Int64.add t.(5) cy
    done;
    let r = [| t.(0); t.(1); t.(2); t.(3) |] in
    if t.(4) = 1L || cmp_raw r p >= 0 then sub_p r else r

  let square a = mul a a

  (* R mod p via 256 modular doublings of 1; R^2 via 256 more. *)
  let double_mod a = add a a

  let r_mod_p =
    let x = ref [| 1L; 0L; 0L; 0L |] in
    for _ = 1 to 256 do
      x := double_mod !x
    done;
    !x

  let r2_mod_p =
    let x = ref r_mod_p in
    for _ = 1 to 256 do
      x := double_mod !x
    done;
    !x

  let one = r_mod_p
  let to_mont raw = mul raw r2_mod_p
  let from_mont a = mul a [| 1L; 0L; 0L; 0L |]
  let to_canonical_limbs a = from_mont a

  let of_int64 x = to_mont [| x; 0L; 0L; 0L |]

  let of_int x =
    if x >= 0 then of_int64 (Int64.of_int x)
    else neg (of_int64 (Int64.of_int (-x)))

  let compare a b = cmp_raw (from_mont a) (from_mont b)

  let pow_limbs base limbs =
    let acc = ref one and b = ref base in
    Array.iter
      (fun limb ->
        let l = ref limb in
        for _ = 1 to 64 do
          if Int64.logand !l 1L = 1L then acc := mul !acc !b;
          b := square !b;
          l := Int64.shift_right_logical !l 1
        done)
      limbs;
    !acc

  let pow_int base e =
    assert (e >= 0);
    pow_limbs base [| Int64.of_int e |]

  (* p - 2 as limbs (p is odd and > 2 so only the low limb changes). *)
  let p_minus_2 =
    let r = Array.copy p in
    r.(0) <- Int64.sub r.(0) 2L;
    r

  let inv a = if is_zero a then raise Division_by_zero else pow_limbs a p_minus_2
  let div a b = mul a (inv b)
  let generator = of_int P.generator_int

  (* Multi-limb logical shift right by k bits. *)
  let shift_right_limbs a k =
    let r = Array.copy a in
    let words = k / 64 and bits = k mod 64 in
    if words > 0 then begin
      for i = 0 to 3 - words do
        r.(i) <- r.(i + words)
      done;
      for i = 4 - words to 3 do
        r.(i) <- 0L
      done
    end;
    if bits > 0 then
      for i = 0 to 3 do
        let lo = Int64.shift_right_logical r.(i) bits in
        let hi =
          if i < 3 then Int64.shift_left r.(i + 1) (64 - bits) else 0L
        in
        r.(i) <- Int64.logor lo hi
      done;
    r

  let root_of_unity k =
    if k > two_adicity || k < 0 then
      invalid_arg (name ^ ".root_of_unity: exceeds two-adicity");
    let pm1 = Array.copy p in
    pm1.(0) <- Int64.sub pm1.(0) 1L;
    pow_limbs generator (shift_right_limbs pm1 k)

  let to_bytes a =
    let raw = from_mont a in
    String.concat "" (List.map Zkml_util.Bytes_util.int64_le (Array.to_list raw))

  let of_bytes_exn s =
    if String.length s <> 32 then invalid_arg (name ^ ".of_bytes_exn: length");
    let raw =
      Array.init 4 (fun i -> Zkml_util.Bytes_util.int64_of_le s (8 * i))
    in
    if cmp_raw raw p >= 0 then invalid_arg (name ^ ".of_bytes_exn: not canonical");
    to_mont raw

  let random rng =
    let rec draw () =
      let raw =
        Array.init 4 (fun _ -> Zkml_util.Rng.next_int64 rng)
      in
      raw.(3) <- Int64.logand raw.(3) 0x3FFFFFFFFFFFFFFFL;
      if cmp_raw raw p < 0 then raw else draw ()
    in
    to_mont (draw ())

  let to_hex a =
    let raw = from_mont a in
    Printf.sprintf "%016Lx%016Lx%016Lx%016Lx" raw.(3) raw.(2) raw.(1) raw.(0)

  let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
end
