let mask32 = 0xFFFFFFFFL

let ult a b = Int64.unsigned_compare a b < 0

let umul a b =
  let open Int64 in
  let al = logand a mask32 and ah = shift_right_logical a 32 in
  let bl = logand b mask32 and bh = shift_right_logical b 32 in
  let ll = mul al bl in
  let lh = mul al bh in
  let hl = mul ah bl in
  let hh = mul ah bh in
  (* cross collects bits 32..95; each summand is < 2^32 so the sum fits
     comfortably in 64 bits (< 3 * 2^32). *)
  let cross =
    add
      (shift_right_logical ll 32)
      (add (logand lh mask32) (logand hl mask32))
  in
  let lo = logor (shift_left cross 32) (logand ll mask32) in
  let hi =
    add hh
      (add
         (shift_right_logical cross 32)
         (add (shift_right_logical lh 32) (shift_right_logical hl 32)))
  in
  (hi, lo)

let addc a b carry_in =
  let open Int64 in
  let s = add a b in
  let c1 = if ult s a then 1L else 0L in
  let s' = add s carry_in in
  let c2 = if ult s' s then 1L else 0L in
  (s', add c1 c2)

let subb a b borrow_in =
  let open Int64 in
  let d = sub a b in
  let b1 = if ult a b then 1L else 0L in
  let d' = sub d borrow_in in
  let b2 = if ult d borrow_in then 1L else 0L in
  (d', add b1 b2)

let neg_inv p0 =
  (* Newton iteration doubles correct bits each step; 6 steps reach 64. *)
  let x = ref p0 in
  for _ = 1 to 6 do
    x := Int64.mul !x (Int64.sub 2L (Int64.mul p0 !x))
  done;
  Int64.neg !x
