(** Unsigned 64-bit helper arithmetic for multi-precision field code.

    OCaml's [Int64] is signed; these helpers provide the unsigned
    primitives (full 64x64 -> 128 multiplication, add-with-carry,
    subtract-with-borrow) that the Montgomery implementations build on. *)

val umul : int64 -> int64 -> int64 * int64
(** [umul a b] is [(hi, lo)] such that [a * b = hi * 2^64 + lo]
    interpreting all values as unsigned. *)

val addc : int64 -> int64 -> int64 -> int64 * int64
(** [addc a b carry_in] is [(sum, carry_out)] with [carry_in], [carry_out]
    in [{0, 1}]. *)

val subb : int64 -> int64 -> int64 -> int64 * int64
(** [subb a b borrow_in] is [(diff, borrow_out)] computing [a - b -
    borrow_in] with borrows in [{0, 1}]. *)

val ult : int64 -> int64 -> bool
(** Unsigned less-than. *)

val neg_inv : int64 -> int64
(** [neg_inv p0] computes [- p0^-1 mod 2^64] for odd [p0] (Newton
    iteration); the Montgomery [p'] constant. *)
