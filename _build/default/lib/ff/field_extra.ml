(** Derived field algorithms shared by all instantiations. *)

module Make (F : Field_intf.S) = struct
  (* (p - 1) / 2 as limbs, for the Euler criterion. *)
  let half_order =
    let limbs = Array.copy F.modulus_limbs in
    limbs.(0) <- Int64.sub limbs.(0) 1L;
    let n = Array.length limbs in
    let r = Array.make n 0L in
    for i = 0 to n - 1 do
      let lo = Int64.shift_right_logical limbs.(i) 1 in
      let hi =
        if i < n - 1 then Int64.shift_left limbs.(i + 1) 63 else 0L
      in
      r.(i) <- Int64.logor lo hi
    done;
    r

  let legendre x = F.pow_limbs x half_order

  let is_square x = F.is_zero x || F.equal (legendre x) F.one

  (* Tonelli-Shanks using the field's two-adicity; the multiplicative
     generator is a quadratic non-residue because (p-1)/2 is not a
     multiple of its order quotient. *)
  let sqrt x =
    if F.is_zero x then Some F.zero
    else if not (is_square x) then None
    else begin
      let s = F.two_adicity in
      (* q odd with p - 1 = q * 2^s: exponent limbs = (p-1) >> s. *)
      let q_limbs =
        let limbs = Array.copy F.modulus_limbs in
        limbs.(0) <- Int64.sub limbs.(0) 1L;
        let n = Array.length limbs in
        let r = Array.copy limbs in
        let words = s / 64 and bits = s mod 64 in
        if words > 0 then begin
          for i = 0 to n - 1 - words do
            r.(i) <- r.(i + words)
          done;
          for i = n - words to n - 1 do
            r.(i) <- 0L
          done
        end;
        if bits > 0 then
          for i = 0 to n - 1 do
            let lo = Int64.shift_right_logical r.(i) bits in
            let hi =
              if i < n - 1 then Int64.shift_left r.(i + 1) (64 - bits)
              else 0L
            in
            r.(i) <- Int64.logor lo hi
          done;
        r
      in
      let z = F.root_of_unity s in
      (* x^((q+1)/2): compute t = x^q, r = x^((q+1)/2). *)
      let q_plus_1_half =
        (* (q+1)/2 = (q >> 1) + 1 since q odd *)
        let n = Array.length q_limbs in
        let r = Array.make n 0L in
        for i = 0 to n - 1 do
          let lo = Int64.shift_right_logical q_limbs.(i) 1 in
          let hi =
            if i < n - 1 then Int64.shift_left q_limbs.(i + 1) 63 else 0L
          in
          r.(i) <- Int64.logor lo hi
        done;
        let carry = ref 1L in
        let i = ref 0 in
        while !carry = 1L && !i < n do
          let s', c = Int64_arith.addc r.(!i) 0L !carry in
          r.(!i) <- s';
          carry := c;
          incr i
        done;
        r
      in
      let m = ref s in
      let c = ref z in
      let t = ref (F.pow_limbs x q_limbs) in
      let r = ref (F.pow_limbs x q_plus_1_half) in
      let result = ref None in
      (try
         while true do
           if F.equal !t F.one then begin
             result := Some !r;
             raise Exit
           end;
           (* find least i with t^(2^i) = 1 *)
           let i = ref 0 in
           let tt = ref !t in
           while not (F.equal !tt F.one) do
             tt := F.square !tt;
             incr i
           done;
           if !i = !m then raise Exit (* not a square; unreachable here *);
           let b = ref !c in
           for _ = 1 to !m - !i - 1 do
             b := F.square !b
           done;
           m := !i;
           c := F.square !b;
           t := F.mul !t !c;
           r := F.mul !r !b
         done
       with Exit -> ());
      !result
    end

  (* Batch inversion (Montgomery's trick): inverts a non-empty array of
     non-zero elements with a single field inversion. *)
  let batch_inv xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let prefix = Array.make n F.one in
      let acc = ref F.one in
      for i = 0 to n - 1 do
        prefix.(i) <- !acc;
        acc := F.mul !acc xs.(i)
      done;
      let inv_all = ref (F.inv !acc) in
      let out = Array.make n F.zero in
      for i = n - 1 downto 0 do
        out.(i) <- F.mul !inv_all prefix.(i);
        inv_all := F.mul !inv_all xs.(i)
      done;
      out
    end
end
