(* The Pasta curve cycle fields used by halo2.

   Fp is the Pallas base field:
     p = 0x40000000000000000000000000000000224698fc094cf91b992d30ed00000001
   Fq is the Pallas scalar field (= Vesta base field):
     q = 0x40000000000000000000000000000000224698fc0994a8dd8c46eb2100000001
   Both have two-adicity 32 and multiplicative generator 5. *)

module Fp = Limb4.Make (struct
  let name = "pasta_fp"

  let modulus =
    [| 0x992d30ed00000001L; 0x224698fc094cf91bL; 0x0000000000000000L;
       0x4000000000000000L |]

  let generator_int = 5
  let two_adicity = 32
end)

module Fq = Limb4.Make (struct
  let name = "pasta_fq"

  let modulus =
    [| 0x8c46eb2100000001L; 0x224698fc0994a8ddL; 0x0000000000000000L;
       0x4000000000000000L |]

  let generator_int = 5
  let two_adicity = 32
end)
