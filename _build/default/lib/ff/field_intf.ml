(** Signature of prime fields used throughout the proving stack.

    Two instantiations exist: {!Fp61} (a 62-bit NTT-friendly prime, used
    for fast benchmark sweeps) and the 255-bit Pasta fields in {!Pasta}
    (the real halo2 curve cycle, built on the {!Limb4} Montgomery
    functor). All protocol code is functorized over this signature. *)

module type S = sig
  type t

  val name : string

  val modulus_limbs : int64 array
  (** Little-endian 64-bit limbs of the modulus [p]. *)

  val size_bytes : int
  (** Canonical serialized size. *)

  val zero : t
  val one : t

  val of_int : int -> t
  (** Embeds an OCaml integer; negative integers map to [p - |x|]. *)

  val of_int64 : int64 -> t
  (** Embeds a non-negative 64-bit value (interpreted unsigned). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val square : t -> t

  val inv : t -> t
  (** Multiplicative inverse. Raises [Division_by_zero] on zero. *)

  val div : t -> t -> t
  val equal : t -> t -> bool
  val is_zero : t -> bool

  val compare : t -> t -> int
  (** Total order on canonical representatives (used for sorting in the
      lookup argument); not arithmetically meaningful. *)

  val pow_int : t -> int -> t
  (** [pow_int x e] for [e >= 0]. *)

  val pow_limbs : t -> int64 array -> t
  (** Exponentiation by a little-endian multi-limb exponent. *)

  val generator : t
  (** A fixed generator of the multiplicative group. *)

  val two_adicity : int
  (** Largest [s] with [2^s | p - 1]. *)

  val root_of_unity : int -> t
  (** [root_of_unity k] is a primitive [2^k]-th root of unity;
      [k <= two_adicity]. *)

  val to_canonical_limbs : t -> int64 array
  (** Canonical (non-Montgomery) little-endian limbs in [\[0, p)]. *)

  val to_bytes : t -> string
  (** Canonical little-endian encoding, [size_bytes] long. *)

  val of_bytes_exn : string -> t
  (** Inverse of {!to_bytes}; raises [Invalid_argument] if out of range. *)

  val random : Zkml_util.Rng.t -> t
  val to_hex : t -> string
  val pp : Format.formatter -> t -> unit
end
