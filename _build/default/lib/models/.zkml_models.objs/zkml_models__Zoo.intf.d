lib/models/zoo.mli: Zkml_fixed Zkml_nn Zkml_tensor
