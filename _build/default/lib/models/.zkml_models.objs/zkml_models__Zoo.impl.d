lib/models/zoo.ml: List Zkml_fixed Zkml_nn Zkml_tensor Zkml_util
