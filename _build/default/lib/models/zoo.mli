(** The model zoo: the eight architectures of the paper's evaluation
    (Table 5), dimension-scaled to laptop-size circuits but structurally
    faithful — each exercises the same layer classes as its full-size
    counterpart (see DESIGN.md "Substitutions"). *)

type model = {
  name : string;  (** short id used by the CLI and benches *)
  paper_name : string;  (** the row name in the paper's Table 5 *)
  graph : Zkml_nn.Graph.t;
  input_shapes : int array list;
  cfg : Zkml_fixed.Fixed.config;
  description : string;
}

val default_cfg : Zkml_fixed.Fixed.config

val sample_inputs : ?seed:int64 -> model -> float Zkml_tensor.Tensor.t list
(** Deterministic synthetic inputs of the right shapes. *)

val mnist : unit -> model
(** Minimal CNN (conv + pool + dense). *)

val resnet18 : unit -> model
(** Residual CNN with identity skip connections. *)

val vgg16 : unit -> model
(** Plain deep conv stacks with max pooling and a dense head. *)

val mobilenet : unit -> model
(** MobileNetV2-style inverted residuals with depthwise convs/ReLU6. *)

val dlrm : unit -> model
(** Facebook-style deep recommender: bottom MLP, embedding gathers,
    pairwise dot interactions, top MLP. *)

val twitter : unit -> model
(** Twitter's MaskNet: layer-norm + instance-guided mask blocks. *)

val gpt2 : unit -> model
(** Distilled-GPT-2 style: embeddings, two transformer blocks
    (attention + softmax + layer norm + GELU MLP), tied unembedding. *)

val diffusion : unit -> model
(** One UNet denoising step with a skip connection. *)

val all : unit -> model list
(** All eight models, smallest first (the Table 6/7 sweep order). *)

val by_name : string -> model
(** Raises [Invalid_argument] for unknown names. *)
