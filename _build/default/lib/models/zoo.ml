(** The model zoo: the eight architectures of the paper's evaluation
    (Table 5), dimension-scaled to laptop-size circuits but structurally
    faithful — each exercises the same layer classes as its full-size
    counterpart (see DESIGN.md "Substitutions"). Weights are synthetic
    (seeded He initialisation); the accuracy experiment (Table 8)
    retrains the vision models on synthetic data instead. *)

module T = Zkml_tensor.Tensor
module G = Zkml_nn.Graph
module Op = Zkml_nn.Op
module Fx = Zkml_fixed.Fixed

type model = {
  name : string;
  paper_name : string;
  graph : G.t;
  input_shapes : int array list;
  cfg : Fx.config;
  description : string;
}

let default_cfg = { Fx.scale_bits = 5; table_bits = 9 }

let sample_inputs ?(seed = 1234L) m =
  let rng = Zkml_util.Rng.create seed in
  List.map
    (fun shape ->
      T.init shape (fun _ -> 0.4 *. Zkml_util.Rng.gaussian rng))
    m.input_shapes

(* He-initialised weights scaled down to keep fixed-point activations
   inside the lookup range *)
let w g rng shape label = G.he_weight g rng shape ~label
let b0 g shape label = G.zero_weight g shape ~label

(* ------------------------------------------------------------------ *)

(** The paper's MNIST model: a minimal CNN (conv + pool + dense). *)
let mnist () =
  let rng = Zkml_util.Rng.create 101L in
  let g = G.create "mnist" in
  let x = G.input g [| 1; 8; 8; 1 |] in
  let c1 = G.relu g (G.conv2d ~stride:1 ~padding:Op.Same g x (w g rng [| 3; 3; 1; 4 |] "c1w") (b0 g [| 4 |] "c1b")) in
  let p1 = G.avg_pool2d g ~size:2 c1 in
  let f = G.flatten g p1 in
  let y = G.fully_connected g f (w g rng [| 64; 10 |] "fcw") (b0 g [| 10 |] "fcb") in
  G.mark_output g y;
  {
    name = "mnist";
    paper_name = "MNIST";
    graph = g;
    input_shapes = [ [| 1; 8; 8; 1 |] ];
    cfg = default_cfg;
    description = "minimal CNN (conv/pool/dense), paper's smallest model";
  }

let residual_block g rng x channels label =
  let c1 =
    G.relu g
      (G.conv2d ~stride:1 ~padding:Op.Same g x
         (w g rng [| 3; 3; channels; channels |] (label ^ "w1"))
         (b0 g [| channels |] (label ^ "b1")))
  in
  let c2 =
    G.conv2d ~stride:1 ~padding:Op.Same g c1
      (w g rng [| 3; 3; channels; channels |] (label ^ "w2"))
      (b0 g [| channels |] (label ^ "b2"))
  in
  G.relu g (G.add_ g c2 x)

(** ResNet-18 style: initial conv, two residual blocks, global average
    pooling, dense classifier. *)
let resnet18 () =
  let rng = Zkml_util.Rng.create 102L in
  let g = G.create "resnet18" in
  let x = G.input g [| 1; 8; 8; 1 |] in
  let stem =
    G.relu g
      (G.conv2d ~stride:1 ~padding:Op.Same g x (w g rng [| 3; 3; 1; 4 |] "stemw")
         (b0 g [| 4 |] "stemb"))
  in
  let r1 = residual_block g rng stem 4 "res1" in
  let r2 = residual_block g rng r1 4 "res2" in
  let p = G.global_avg_pool g r2 in
  let f = G.flatten g p in
  let y = G.fully_connected g f (w g rng [| 4; 10 |] "fcw") (b0 g [| 10 |] "fcb") in
  G.mark_output g y;
  {
    name = "resnet18";
    paper_name = "ResNet-18 (CIFAR-10)";
    graph = g;
    input_shapes = [ [| 1; 8; 8; 1 |] ];
    cfg = default_cfg;
    description = "residual CNN with identity skip connections";
  }

(** VGG-16 style: deep plain conv stacks with max pooling and a large
    dense head — deliberately parameter-heavy, like the original. *)
let vgg16 () =
  let rng = Zkml_util.Rng.create 103L in
  let g = G.create "vgg16" in
  let x = G.input g [| 1; 8; 8; 1 |] in
  let conv c_in c_out x label =
    G.relu g
      (G.conv2d ~stride:1 ~padding:Op.Same g x
         (w g rng [| 3; 3; c_in; c_out |] (label ^ "w"))
         (b0 g [| c_out |] (label ^ "b")))
  in
  let s1 = conv 1 4 x "c11" in
  let s1 = conv 4 4 s1 "c12" in
  let p1 = G.max_pool2d g ~size:2 s1 in
  let s2 = conv 4 8 p1 "c21" in
  let s2 = conv 8 8 s2 "c22" in
  let p2 = G.max_pool2d g ~size:2 s2 in
  let f = G.flatten g p2 in
  let h =
    G.relu g (G.fully_connected g f (w g rng [| 32; 16 |] "fc1w") (b0 g [| 16 |] "fc1b"))
  in
  let y = G.fully_connected g h (w g rng [| 16; 10 |] "fc2w") (b0 g [| 10 |] "fc2b") in
  G.mark_output g y;
  {
    name = "vgg16";
    paper_name = "VGG16 (CIFAR-10)";
    graph = g;
    input_shapes = [ [| 1; 8; 8; 1 |] ];
    cfg = default_cfg;
    description = "plain deep conv stacks with max pooling and dense head";
  }

let inverted_residual g rng x ~channels ~expansion label =
  let mid = channels * expansion in
  let expand =
    G.activation g Op.Relu6
      (G.conv2d ~stride:1 ~padding:Op.Same g x
         (w g rng [| 1; 1; channels; mid |] (label ^ "ew"))
         (b0 g [| mid |] (label ^ "eb")))
  in
  let dw =
    G.activation g Op.Relu6
      (G.depthwise_conv2d ~stride:1 ~padding:Op.Same g expand
         (w g rng [| 3; 3; mid; 1 |] (label ^ "dw"))
         (b0 g [| mid |] (label ^ "db")))
  in
  let project =
    G.conv2d ~stride:1 ~padding:Op.Same g dw
      (w g rng [| 1; 1; mid; channels |] (label ^ "pw"))
      (b0 g [| channels |] (label ^ "pb"))
  in
  G.add_ g project x

(** MobileNetV2 style: inverted residual bottlenecks with depthwise
    convolutions and ReLU6. *)
let mobilenet () =
  let rng = Zkml_util.Rng.create 104L in
  let g = G.create "mobilenet" in
  let x = G.input g [| 1; 8; 8; 1 |] in
  let stem =
    G.activation g Op.Relu6
      (G.conv2d ~stride:1 ~padding:Op.Same g x (w g rng [| 3; 3; 1; 4 |] "stemw")
         (b0 g [| 4 |] "stemb"))
  in
  let b1 = inverted_residual g rng stem ~channels:4 ~expansion:2 "ir1" in
  let b2 = inverted_residual g rng b1 ~channels:4 ~expansion:2 "ir2" in
  let p = G.global_avg_pool g b2 in
  let f = G.flatten g p in
  let y = G.fully_connected g f (w g rng [| 4; 10 |] "fcw") (b0 g [| 10 |] "fcb") in
  G.mark_output g y;
  {
    name = "mobilenet";
    paper_name = "MobileNet (ImageNet)";
    graph = g;
    input_shapes = [ [| 1; 8; 8; 1 |] ];
    cfg = default_cfg;
    description = "inverted residuals with depthwise convs and ReLU6";
  }

(** DLRM style (Facebook deep recommender): bottom MLP over dense
    features, static embedding gathers, pairwise dot-product feature
    interactions, top MLP. *)
let dlrm () =
  let rng = Zkml_util.Rng.create 105L in
  let g = G.create "dlrm" in
  let dense = G.input g [| 1; 8 |] in
  let bottom =
    G.relu g
      (G.fully_connected g dense (w g rng [| 8; 4 |] "botw") (b0 g [| 4 |] "botb"))
  in
  (* two embedding tables, looked up at fixed (public) indices *)
  let table1 = w g rng [| 16; 4 |] "emb1" in
  let table2 = w g rng [| 16; 4 |] "emb2" in
  let e1 = G.gather g ~indices:[| 3 |] ~axis:0 table1 in
  let e2 = G.gather g ~indices:[| 7 |] ~axis:0 table2 in
  (* stack features: [3; 4] then pairwise interactions via matmul *)
  let stacked = G.concat g ~axis:0 [ G.reshape g [| 1; 4 |] bottom; e1; e2 ] in
  let inter = G.batch_matmul ~transpose_b:true g stacked stacked in
  let flat_inter = G.reshape g [| 1; 9 |] inter in
  let features = G.concat g ~axis:1 [ G.reshape g [| 1; 4 |] bottom; flat_inter ] in
  let top =
    G.relu g
      (G.fully_connected g features (w g rng [| 13; 8 |] "topw") (b0 g [| 8 |] "topb"))
  in
  let y =
    G.activation g Op.Sigmoid
      (G.fully_connected g top (w g rng [| 8; 2 |] "outw") (b0 g [| 2 |] "outb"))
  in
  G.mark_output g y;
  {
    name = "dlrm";
    paper_name = "DLRM";
    graph = g;
    input_shapes = [ [| 1; 8 |] ];
    cfg = default_cfg;
    description = "bottom MLP, embeddings, pairwise interactions, top MLP";
  }

let mask_block g rng x input_dim label =
  (* MaskNet block: instance-guided mask (two-layer MLP) multiplied into
     a linear projection of the input, then layer norm + relu *)
  let mask_hidden =
    G.relu g
      (G.fully_connected g x
         (w g rng [| input_dim; input_dim * 2 |] (label ^ "m1w"))
         (b0 g [| input_dim * 2 |] (label ^ "m1b")))
  in
  let mask =
    G.fully_connected g mask_hidden
      (w g rng [| input_dim * 2; input_dim |] (label ^ "m2w"))
      (b0 g [| input_dim |] (label ^ "m2b"))
  in
  let hidden =
    G.fully_connected g x
      (w g rng [| input_dim; input_dim |] (label ^ "hw"))
      (b0 g [| input_dim |] (label ^ "hb"))
  in
  let masked = G.mul g hidden mask in
  let gamma = G.weight g (T.create [| input_dim |] 1.0) ~label:(label ^ "g") in
  let beta = G.weight g (T.create [| input_dim |] 0.0) ~label:(label ^ "be") in
  G.relu g (G.layer_norm g masked gamma beta)

(** Twitter's recommender (MaskNet): layer-normalised features through
    serial instance-guided mask blocks. *)
let twitter () =
  let rng = Zkml_util.Rng.create 106L in
  let g = G.create "twitter" in
  let d = 12 in
  let x = G.input g [| 1; d |] in
  let gamma0 = G.weight g (T.create [| d |] 1.0) ~label:"ln0g" in
  let beta0 = G.weight g (T.create [| d |] 0.0) ~label:"ln0b" in
  let normed = G.layer_norm g x gamma0 beta0 in
  let b1 = mask_block g rng normed d "blk1" in
  let b2 = mask_block g rng b1 d "blk2" in
  let y =
    G.activation g Op.Sigmoid
      (G.fully_connected g b2 (w g rng [| d; 1 |] "outw") (b0 g [| 1 |] "outb"))
  in
  G.mark_output g y;
  {
    name = "twitter";
    paper_name = "Twitter (MaskNet)";
    graph = g;
    input_shapes = [ [| 1; d |] ];
    cfg = default_cfg;
    description = "MaskNet: layer norm + instance-guided mask blocks";
  }

let transformer_block g rng x ~seq ~d label =
  let wq = w g rng [| d; d |] (label ^ "wq") in
  let wk = w g rng [| d; d |] (label ^ "wk") in
  let wv = w g rng [| d; d |] (label ^ "wv") in
  let wo = w g rng [| d; d |] (label ^ "wo") in
  let q = G.batch_matmul g x wq in
  let k = G.batch_matmul g x wk in
  let v = G.batch_matmul g x wv in
  let scores = G.batch_matmul ~transpose_b:true g q k in
  let attn = G.softmax g scores in
  let ctx = G.batch_matmul g attn v in
  let proj = G.batch_matmul g ctx wo in
  let res1 = G.add_ g proj x in
  let g1 = G.weight g (T.create [| d |] 1.0) ~label:(label ^ "ln1g") in
  let b1 = G.weight g (T.create [| d |] 0.0) ~label:(label ^ "ln1b") in
  let n1 = G.layer_norm g res1 g1 b1 in
  (* feed-forward with GELU, expansion 2 *)
  let w1 = w g rng [| d; d * 2 |] (label ^ "ff1") in
  let w2 = w g rng [| d * 2; d |] (label ^ "ff2") in
  let h =
    G.activation g Op.Gelu
      (G.add_ g (G.batch_matmul g n1 w1)
         (G.weight g (T.create [| d * 2 |] 0.0) ~label:(label ^ "ffb1")))
  in
  let ff =
    G.add_ g (G.batch_matmul g h w2)
      (G.weight g (T.create [| d |] 0.0) ~label:(label ^ "ffb2"))
  in
  let res2 = G.add_ g ff n1 in
  let g2 = G.weight g (T.create [| d |] 1.0) ~label:(label ^ "ln2g") in
  let b2 = G.weight g (T.create [| d |] 0.0) ~label:(label ^ "ln2b") in
  ignore seq;
  G.layer_norm g res2 g2 b2

(** Distilled GPT-2 style: token + position embeddings (static gathers),
    two transformer blocks, tied unembedding. *)
let gpt2 () =
  let rng = Zkml_util.Rng.create 107L in
  let g = G.create "gpt2" in
  let vocab = 16 and seq = 3 and d = 4 in
  (* the prompt token ids are public and baked into the gathers *)
  let tokens = [| 5; 11; 2 |] in
  let wte = w g rng [| vocab; d |] "wte" in
  let wpe = w g rng [| seq; d |] "wpe" in
  let tok_emb = G.gather g ~indices:tokens ~axis:0 wte in
  let pos_emb = G.gather g ~indices:[| 0; 1; 2 |] ~axis:0 wpe in
  let x0 = G.add_ g tok_emb pos_emb in
  let x0 = G.expand_dims g ~axis:0 x0 in
  (* a small learned perturbation input stands in for the private prompt
     continuation embedding *)
  let prompt = G.input g [| 1; seq; d |] in
  let x0 = G.add_ g x0 prompt in
  let x1 = transformer_block g rng x0 ~seq ~d "blk1" in
  let x2 = transformer_block g rng x1 ~seq ~d "blk2" in
  (* unembed the last position *)
  let last = G.slice g ~starts:[| 0; seq - 1; 0 |] ~sizes:[| 1; 1; d |] x2 in
  let last = G.reshape g [| 1; d |] last in
  let logits = G.batch_matmul ~transpose_b:true g last wte in
  G.mark_output g logits;
  {
    name = "gpt2";
    paper_name = "GPT-2 (distilled)";
    graph = g;
    input_shapes = [ [| 1; seq; d |] ];
    cfg = default_cfg;
    description = "embeddings + 2 transformer blocks + tied unembedding";
  }

(** Small latent diffusion style: one denoising UNet step — timestep
    embedding, down/up convolutions with a skip connection
    (nearest-neighbour upsampling expressed as a free static gather). *)
let diffusion () =
  let rng = Zkml_util.Rng.create 108L in
  let g = G.create "diffusion" in
  let latent = G.input g [| 1; 8; 8; 1 |] in
  (* timestep embedding broadcast-added to the latent *)
  let temb = G.weight g (T.create [| 1 |] 0.1) ~label:"temb" in
  let xt = G.add_ g latent temb in
  let conv c_in c_out ?(stride = 1) x label =
    G.activation g Op.Silu
      (G.conv2d ~stride ~padding:Op.Same g x
         (w g rng [| 3; 3; c_in; c_out |] (label ^ "w"))
         (b0 g [| c_out |] (label ^ "b")))
  in
  let d1 = conv 1 4 xt "down1" in
  let d2 = conv 4 4 ~stride:2 d1 "down2" in
  let mid = conv 4 4 d2 "mid" in
  (* nearest-neighbour 2x upsampling: duplicate rows then columns *)
  let up_rows = G.gather g ~indices:[| 0; 0; 1; 1; 2; 2; 3; 3 |] ~axis:1 mid in
  let up = G.gather g ~indices:[| 0; 0; 1; 1; 2; 2; 3; 3 |] ~axis:2 up_rows in
  let skip = G.concat g ~axis:3 [ up; d1 ] in
  let u1 = conv 8 4 skip "up1" in
  let eps =
    G.conv2d ~stride:1 ~padding:Op.Same g u1 (w g rng [| 3; 3; 4; 1 |] "outw")
      (b0 g [| 1 |] "outb")
  in
  G.mark_output g eps;
  {
    name = "diffusion";
    paper_name = "Diffusion";
    graph = g;
    input_shapes = [ [| 1; 8; 8; 1 |] ];
    cfg = default_cfg;
    description = "one UNet denoising step with skip connection";
  }

(** All eight models, smallest first (the Table 5/6/7 sweep order). *)
let all () =
  [ mnist (); dlrm (); twitter (); resnet18 (); mobilenet (); vgg16 ();
    diffusion (); gpt2 () ]

let by_name name =
  match List.find_opt (fun m -> m.name = name) (all ()) with
  | Some m -> m
  | None -> invalid_arg ("Zoo.by_name: unknown model " ^ name)
