(** Dense n-dimensional tensors in row-major order, generic in the
    element type (used with [float] by the reference executor and the
    trainer, and with [int] by the fixed-point executor and the circuit
    layouter, where elements are fixed-point integers or cell ids). *)

type 'a t = { shape : int array; data : 'a array }

let numel_of_shape shape = Array.fold_left ( * ) 1 shape

let create shape v = { shape = Array.copy shape; data = Array.make (numel_of_shape shape) v }

let init shape f =
  { shape = Array.copy shape; data = Array.init (numel_of_shape shape) f }

let of_array shape data =
  if numel_of_shape shape <> Array.length data then
    invalid_arg "Tensor.of_array: shape/data mismatch";
  { shape = Array.copy shape; data }

let shape t = Array.copy t.shape
let numel t = Array.length t.data
let rank t = Array.length t.shape
let data t = t.data

let strides shape =
  let n = Array.length shape in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * shape.(i + 1)
  done;
  s

let flat_index shape idx =
  let s = strides shape in
  let acc = ref 0 in
  Array.iteri
    (fun i j ->
      if j < 0 || j >= shape.(i) then invalid_arg "Tensor: index out of bounds";
      acc := !acc + (j * s.(i)))
    idx;
  !acc

let get t idx = t.data.(flat_index t.shape idx)
let set t idx v = t.data.(flat_index t.shape idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

let reshape t new_shape =
  (* one dimension may be -1 (inferred) *)
  let known = Array.fold_left (fun acc d -> if d > 0 then acc * d else acc) 1 new_shape in
  let inferred =
    Array.map (fun d -> if d = -1 then numel t / known else d) new_shape
  in
  if numel_of_shape inferred <> numel t then
    invalid_arg "Tensor.reshape: element count mismatch";
  { shape = inferred; data = t.data }

let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let map2 f a b =
  if a.shape <> b.shape then invalid_arg "Tensor.map2: shape mismatch";
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let fold f acc t = Array.fold_left f acc t.data
let iteri f t = Array.iteri f t.data

(** Transpose by axis permutation, e.g. [transpose t [|1;0|]]. *)
let transpose t perm =
  let r = rank t in
  if Array.length perm <> r then invalid_arg "Tensor.transpose: bad perm";
  let new_shape = Array.map (fun p -> t.shape.(p)) perm in
  let old_strides = strides t.shape in
  let new_strides_in_old = Array.map (fun p -> old_strides.(p)) perm in
  let out = create new_shape t.data.(0) in
  let n = numel t in
  let idx = Array.make r 0 in
  for flat = 0 to n - 1 do
    ignore flat;
    (* compute source index for current multi-index *)
    let src = ref 0 in
    for i = 0 to r - 1 do
      src := !src + (idx.(i) * new_strides_in_old.(i))
    done;
    let dst = flat_index new_shape idx in
    out.data.(dst) <- t.data.(!src);
    (* increment multi-index *)
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = new_shape.(i) then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (r - 1)
  done;
  out

(** Concatenate along an axis. *)
let concat axis ts =
  match ts with
  | [] -> invalid_arg "Tensor.concat: empty"
  | first :: _ ->
      let r = rank first in
      if axis < 0 || axis >= r then invalid_arg "Tensor.concat: bad axis";
      let out_shape = Array.copy first.shape in
      out_shape.(axis) <- List.fold_left (fun acc t -> acc + t.shape.(axis)) 0 ts;
      let out = create out_shape first.data.(0) in
      let outer = ref 1 and inner = ref 1 in
      for i = 0 to axis - 1 do
        outer := !outer * first.shape.(i)
      done;
      for i = axis + 1 to r - 1 do
        inner := !inner * first.shape.(i)
      done;
      let offset = ref 0 in
      List.iter
        (fun t ->
          let ax = t.shape.(axis) in
          for o = 0 to !outer - 1 do
            for a = 0 to ax - 1 do
              Array.blit t.data
                (((o * ax) + a) * !inner)
                out.data
                ((((o * out_shape.(axis)) + !offset + a) * !inner))
                !inner
            done
          done;
          offset := !offset + ax)
        ts;
      out

(** Slice: [starts] and [sizes] per axis. *)
let slice t ~starts ~sizes =
  let r = rank t in
  if Array.length starts <> r || Array.length sizes <> r then
    invalid_arg "Tensor.slice: rank mismatch";
  let out = create sizes t.data.(0) in
  let idx = Array.make r 0 in
  let n = numel_of_shape sizes in
  for flat = 0 to n - 1 do
    ignore flat;
    let src_idx = Array.mapi (fun i j -> starts.(i) + j) idx in
    out.data.(flat_index sizes idx) <- t.data.(flat_index t.shape src_idx);
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = sizes.(i) then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (r - 1)
  done;
  out

(** Zero-pad spatial padding: [pads] is per-axis (before, after). *)
let pad t ~pads ~value =
  let r = rank t in
  if Array.length pads <> r then invalid_arg "Tensor.pad: rank mismatch";
  let out_shape =
    Array.mapi (fun i d -> d + fst pads.(i) + snd pads.(i)) t.shape
  in
  let out = create out_shape value in
  let idx = Array.make r 0 in
  for flat = 0 to numel t - 1 do
    ignore flat;
    let dst_idx = Array.mapi (fun i j -> j + fst pads.(i)) idx in
    out.data.(flat_index out_shape dst_idx) <- t.data.(flat_index t.shape idx);
    let rec bump i =
      if i >= 0 then begin
        idx.(i) <- idx.(i) + 1;
        if idx.(i) = t.shape.(i) then begin
          idx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (r - 1)
  done;
  out

let equal eq a b = a.shape = b.shape && Array.for_all2 eq a.data b.data
