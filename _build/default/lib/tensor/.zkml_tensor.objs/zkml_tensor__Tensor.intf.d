lib/tensor/tensor.mli:
