(** Dense n-dimensional tensors in row-major order, generic in the
    element type: [float] for the reference executor and trainer, [int]
    for the fixed-point executor, and cell references for the circuit
    layouter (which is how shape operations become free inside circuits
    — they only rearrange references; paper §5.1). *)

type 'a t

val numel_of_shape : int array -> int

val create : int array -> 'a -> 'a t
(** [create shape v] fills a fresh tensor with [v]. *)

val init : int array -> (int -> 'a) -> 'a t
(** [init shape f] fills element [i] (flat, row-major) with [f i]. *)

val of_array : int array -> 'a array -> 'a t
(** Wraps (does not copy) a flat array. Raises [Invalid_argument] if the
    element count does not match the shape. *)

val shape : 'a t -> int array
val numel : 'a t -> int
val rank : 'a t -> int

val data : 'a t -> 'a array
(** The underlying flat array (shared, not a copy). *)

val strides : int array -> int array
val flat_index : int array -> int array -> int
val get : 'a t -> int array -> 'a
val set : 'a t -> int array -> 'a -> unit
val get_flat : 'a t -> int -> 'a
val set_flat : 'a t -> int -> 'a -> unit

val reshape : 'a t -> int array -> 'a t
(** Shares the underlying data; one dimension may be [-1] (inferred). *)

val copy : 'a t -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val iteri : (int -> 'a -> unit) -> 'a t -> unit

val transpose : 'a t -> int array -> 'a t
(** [transpose t perm] permutes axes, e.g. [transpose t [|1;0|]]. *)

val concat : int -> 'a t list -> 'a t
(** Concatenate along an axis. *)

val slice : 'a t -> starts:int array -> sizes:int array -> 'a t
val pad : 'a t -> pads:(int * int) array -> value:'a -> 'a t
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
