(* Trustless credit scoring (paper §2): a lender publishes a commitment
   to its scoring model (here: the DLRM-style recommender re-used as a
   credit scorer over on-chain history features); a borrower obtains a
   score together with a ZK-SNARK, so both sides know the score was
   computed honestly while the model stays secret.

     dune exec examples/credit_score.exe *)

module T = Zkml_tensor.Tensor
module Zoo = Zkml_models.Zoo
module Group = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Scheme = Zkml_commit.Kzg.Make (Group)
module Pipeline = Zkml_compiler.Pipeline.Make (Scheme)

type borrower = { name : string; history : float array }

let borrowers =
  [ { name = "alice"; history = [| 0.8; 0.2; 0.9; 0.1; 0.7; 0.3; 0.5; 0.6 |] };
    { name = "bob"; history = [| -0.4; 0.1; -0.6; 0.3; -0.2; 0.0; -0.5; 0.2 |] };
    { name = "carol"; history = [| 0.3; 0.5; 0.1; -0.1; 0.4; 0.2; 0.0; 0.3 |] }
  ]

let () =
  print_endline "=== trustless credit scoring ===";
  let model = Zoo.dlrm () in
  let params = Scheme.setup ~max_size:(1 lsl 12) ~seed:"credit" in
  List.iter
    (fun b ->
      let input = T.of_array [| 1; 8 |] b.history in
      let result =
        Pipeline.run ~cfg:model.Zoo.cfg ~params model.Zoo.graph [ input ]
      in
      assert result.Pipeline.verified;
      let score =
        match result.Pipeline.outputs with
        | [ out ] -> Zkml_fixed.Fixed.dequantize model.Zoo.cfg (T.get_flat out 0)
        | _ -> assert false
      in
      Printf.printf
        "  %-6s creditworthiness %.3f  (SNARK: %d B, proved %.2f s, verified %.4f s)\n"
        b.name score result.Pipeline.proof_bytes result.Pipeline.prove_s
        result.Pipeline.verify_s;
      Printf.printf
        "         -> %s\n"
        (if score > 0.5 then "loan approved (score provably from committed model)"
         else "loan declined (decision provably from committed model)"))
    borrowers
