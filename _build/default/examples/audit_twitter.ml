(* Trustless audit of a recommendation feed (the paper's Figure 1 use
   case): the platform commits to its MaskNet ranking model, scores a
   set of candidate tweets, publishes the scores, and proves with a
   ZK-SNARK that every published score came from the committed model —
   without revealing the model weights.

     dune exec examples/audit_twitter.exe *)

module T = Zkml_tensor.Tensor
module Zoo = Zkml_models.Zoo
module Group = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Scheme = Zkml_commit.Kzg.Make (Group)
module Pipeline = Zkml_compiler.Pipeline.Make (Scheme)

type tweet = { id : int; text : string; features : float array }

let candidate_tweets =
  [ { id = 101; text = "breaking: ocaml verifies ML models"; features = [| 0.9; 0.1; 0.3; -0.2; 0.5; 0.0; 0.7; -0.1; 0.2; 0.4; -0.3; 0.6 |] };
    { id = 102; text = "cat pictures, thread 1/9"; features = [| 0.1; 0.8; -0.4; 0.3; 0.0; 0.2; -0.6; 0.5; 0.1; -0.2; 0.3; 0.0 |] };
    { id = 103; text = "hot take about type systems"; features = [| -0.5; 0.2; 0.6; 0.1; -0.3; 0.7; 0.2; 0.0; -0.1; 0.5; 0.4; -0.2 |] };
    { id = 104; text = "sponsored content (disclosed)"; features = [| 0.3; -0.7; 0.1; 0.6; 0.2; -0.4; 0.0; 0.3; 0.5; -0.1; 0.2; 0.1 |] }
  ]

let () =
  print_endline "=== trustless feed audit (paper Fig. 1 / Fig. 2) ===";
  (* The platform's private ranking model. *)
  let model = Zoo.twitter () in
  let params = Scheme.setup ~max_size:(1 lsl 13) ~seed:"audit" in
  (* Score every candidate and produce one proof per tweet. In the
     end-to-end audit of Figure 2 the input features would additionally
     be bound to a trusted database commitment. *)
  let scored =
    List.map
      (fun tweet ->
        let input = T.of_array [| 1; 12 |] tweet.features in
        let result =
          Pipeline.run ~cfg:model.Zoo.cfg ~params model.Zoo.graph [ input ]
        in
        if not result.Pipeline.verified then
          failwith "audit proof failed verification";
        let score =
          match result.Pipeline.outputs with
          | [ out ] -> Zkml_fixed.Fixed.dequantize model.Zoo.cfg (T.get_flat out 0)
          | _ -> assert false
        in
        (tweet, score, result))
      candidate_tweets
  in
  (* The published, provably-honest ranking. *)
  let ranked =
    List.sort (fun (_, a, _) (_, b, _) -> compare b a) scored
  in
  print_endline "published ranking (every row carries a ZK-SNARK):";
  List.iteri
    (fun rank (tweet, score, result) ->
      Printf.printf
        "  #%d  tweet %d  score %.3f  proof %d B (proved in %.2f s)  %s\n"
        (rank + 1) tweet.id score result.Pipeline.proof_bytes
        result.Pipeline.prove_s tweet.text)
    ranked;
  Printf.printf
    "auditor: all %d proofs verified against the committed model; weights never revealed.\n"
    (List.length ranked)
