(* Quickstart: define a tiny model, compile it to a circuit with the
   optimizer, produce a ZK-SNARK of its inference, and verify it.

     dune exec examples/quickstart.exe *)

module T = Zkml_tensor.Tensor
module G = Zkml_nn.Graph

(* Pick a backend: the KZG commitment scheme over the fast simulated
   group. Swap [Zkml_ec.Pallas] in for real elliptic-curve arithmetic,
   or [Zkml_commit.Ipa.Make] for the transparent (no-trusted-setup)
   backend. *)
module Group = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Scheme = Zkml_commit.Kzg.Make (Group)
module Pipeline = Zkml_compiler.Pipeline.Make (Scheme)

let () =
  (* 1. Build a model: a two-layer MLP with ReLU and softmax. In a real
     deployment this would be loaded from a file via Zkml_nn.Serialize. *)
  let rng = Zkml_util.Rng.create 2024L in
  let g = G.create "quickstart" in
  let x = G.input g [| 1; 4 |] in
  let h =
    G.relu g
      (G.fully_connected g x
         (G.he_weight g rng [| 4; 8 |] ~label:"w1")
         (G.zero_weight g [| 8 |] ~label:"b1"))
  in
  let logits =
    G.fully_connected g h
      (G.he_weight g rng [| 8; 3 |] ~label:"w2")
      (G.zero_weight g [| 3 |] ~label:"b2")
  in
  let probs = G.softmax g logits in
  G.mark_output g probs;

  (* 2. One-time setup for circuits of up to 2^12 rows. *)
  let params = Scheme.setup ~max_size:(1 lsl 12) ~seed:"quickstart" in

  (* 3. Compile + optimize + prove + verify in one call. *)
  let input = T.of_array [| 1; 4 |] [| 0.9; -0.3; 0.1; 0.5 |] in
  let result = Pipeline.run ~params g [ input ] in

  Printf.printf "layout:      %s, %d columns, 2^%d rows\n"
    (Zkml_compiler.Layout_spec.to_string result.Pipeline.plan.Zkml_compiler.Optimizer.spec)
    result.Pipeline.plan.Zkml_compiler.Optimizer.ncols
    result.Pipeline.plan.Zkml_compiler.Optimizer.k;
  Printf.printf "optimize:    %.3f s\n" result.Pipeline.optimize_s;
  Printf.printf "keygen:      %.3f s\n" result.Pipeline.keygen_s;
  Printf.printf "prove:       %.3f s\n" result.Pipeline.prove_s;
  Printf.printf "verify:      %.4f s -> %b\n" result.Pipeline.verify_s
    result.Pipeline.verified;
  Printf.printf "proof size:  %d bytes\n" result.Pipeline.proof_bytes;
  (match result.Pipeline.outputs with
  | [ out ] ->
      let cfg = Zkml_fixed.Fixed.default in
      Printf.printf "public model output (class probabilities): ";
      T.iteri
        (fun _ v -> Printf.printf "%.3f " (Zkml_fixed.Fixed.dequantize cfg v))
        out;
      print_newline ()
  | _ -> ());
  if not result.Pipeline.verified then exit 1
