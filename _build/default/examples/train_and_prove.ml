(* Full lifecycle: train a CNN on a synthetic dataset, measure FP32 vs
   fixed-point (circuit) accuracy (the paper's Table 8 quantity), save
   and reload the model through the textual format (the tflite
   substitute), then produce and verify a ZK-SNARK for one inference.

     dune exec examples/train_and_prove.exe *)

module T = Zkml_tensor.Tensor
module G = Zkml_nn.Graph
module Fx = Zkml_fixed.Fixed
module Group = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Scheme = Zkml_commit.Kzg.Make (Group)
module Pipeline = Zkml_compiler.Pipeline.Make (Scheme)

let () =
  print_endline "=== train -> quantize -> serialize -> prove ===";
  let rng = Zkml_util.Rng.create 99L in
  let data =
    Zkml_nn.Dataset.classification ~seed:3L ~num_classes:3 ~h:8 ~w:8 ~c:1
      ~train_per_class:40 ~test_per_class:20 ~noise:0.15
  in
  (* a small CNN classifier *)
  let g = G.create "trained-cnn" in
  let x = G.input g [| 1; 8; 8; 1 |] in
  let c =
    G.relu g
      (G.conv2d ~padding:Zkml_nn.Op.Same g x
         (G.he_weight g rng [| 3; 3; 1; 4 |] ~label:"cw")
         (G.zero_weight g [| 4 |] ~label:"cb"))
  in
  let p = G.avg_pool2d g ~size:2 c in
  let f = G.flatten g p in
  let y =
    G.fully_connected g f
      (G.he_weight g rng [| 64; 3 |] ~label:"fw")
      (G.zero_weight g [| 3 |] ~label:"fb")
  in
  G.mark_output g y;
  let losses =
    Zkml_nn.Train.sgd g ~data:data.Zkml_nn.Dataset.train ~epochs:5 ~lr:0.03 ~rng
  in
  Printf.printf "training loss per epoch: %s\n"
    (String.concat " " (List.map (Printf.sprintf "%.3f") losses));
  let facc = Zkml_nn.Train.float_accuracy g data.Zkml_nn.Dataset.test in
  let cfg = { Fx.scale_bits = 6; table_bits = 12 } in
  let qacc = Zkml_nn.Train.quant_accuracy cfg g data.Zkml_nn.Dataset.test in
  Printf.printf "fp32 accuracy %.1f%%, circuit (fixed-point) accuracy %.1f%%\n"
    (100. *. facc) (100. *. qacc);
  (* round-trip through the model format *)
  let path = Filename.temp_file "zkml-model" ".zkml" in
  Zkml_nn.Serialize.save g path;
  let g = Zkml_nn.Serialize.load path in
  Sys.remove path;
  print_endline "model serialized and reloaded";
  (* prove one inference of the reloaded model *)
  let params = Scheme.setup ~max_size:(1 lsl 13) ~seed:"train-example" in
  let sample = data.Zkml_nn.Dataset.test.(0) in
  let result = Pipeline.run ~cfg ~params g [ sample.Zkml_nn.Dataset.image ] in
  Printf.printf
    "proved inference on a test image: verified %b, %d B proof, %.2f s prove / %.4f s verify\n"
    result.Pipeline.verified result.Pipeline.proof_bytes result.Pipeline.prove_s
    result.Pipeline.verify_s;
  (match result.Pipeline.outputs with
  | [ out ] ->
      let best = ref 0 in
      T.iteri (fun i v -> if v > T.get_flat out !best then best := i) out;
      Printf.printf "predicted class %d (true class %d)\n" !best
        sample.Zkml_nn.Dataset.label
  | _ -> ());
  if not result.Pipeline.verified then exit 1
