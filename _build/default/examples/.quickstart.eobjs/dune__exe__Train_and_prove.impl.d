examples/train_and_prove.ml: Array Filename List Printf String Sys Zkml_commit Zkml_compiler Zkml_ec Zkml_ff Zkml_fixed Zkml_nn Zkml_tensor Zkml_util
