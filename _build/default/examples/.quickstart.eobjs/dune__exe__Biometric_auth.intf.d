examples/biometric_auth.mli:
