examples/audit_twitter.mli:
