examples/quickstart.mli:
