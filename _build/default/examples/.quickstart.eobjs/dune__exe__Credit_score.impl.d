examples/credit_score.ml: List Printf Zkml_commit Zkml_compiler Zkml_ec Zkml_ff Zkml_fixed Zkml_models Zkml_tensor
