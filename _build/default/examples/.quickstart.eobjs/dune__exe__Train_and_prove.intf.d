examples/train_and_prove.mli:
