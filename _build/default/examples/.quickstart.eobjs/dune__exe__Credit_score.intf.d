examples/credit_score.mli:
