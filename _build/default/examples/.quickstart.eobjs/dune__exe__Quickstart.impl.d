examples/quickstart.ml: Printf Zkml_commit Zkml_compiler Zkml_ec Zkml_ff Zkml_fixed Zkml_nn Zkml_tensor Zkml_util
