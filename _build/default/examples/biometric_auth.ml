(* Private biometric authentication (paper §2): a user proves that the
   face embedding computed from a (attested-sensor) photo matches their
   enrolled template, without revealing either the photo or the
   recognition model. The embedding network runs inside the SNARK; the
   match decision (a thresholded squared distance) is the only public
   output.

     dune exec examples/biometric_auth.exe *)

module T = Zkml_tensor.Tensor
module G = Zkml_nn.Graph
module Group = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Scheme = Zkml_commit.Kzg.Make (Group)
module Pipeline = Zkml_compiler.Pipeline.Make (Scheme)

(* A small face-embedding CNN followed by the comparison against the
   enrolled template, all inside one circuit. The enrolled template is
   part of the (private) weights; the public output is the squared
   distance to it. *)
let embedding_model template =
  let rng = Zkml_util.Rng.create 7001L in
  let g = G.create "face-embed" in
  let photo = G.input g [| 1; 8; 8; 1 |] in
  let c1 =
    G.relu g
      (G.conv2d ~stride:2 ~padding:Zkml_nn.Op.Same g photo
         (G.he_weight g rng [| 3; 3; 1; 4 |] ~label:"c1w")
         (G.zero_weight g [| 4 |] ~label:"c1b"))
  in
  let f = G.flatten g c1 in
  let embed =
    G.activation g Zkml_nn.Op.Tanh
      (G.fully_connected g f
         (G.he_weight g rng [| 64; 4 |] ~label:"ew")
         (G.zero_weight g [| 4 |] ~label:"eb"))
  in
  (* squared distance to the enrolled template *)
  let template_w = G.weight g (T.of_array [| 1; 4 |] template) ~label:"template" in
  let diff2 = G.squared_difference g embed template_w in
  let dist = G.reduce_sum g ~axis:1 diff2 in
  G.mark_output g dist;
  g

let () =
  print_endline "=== private biometric authentication ===";
  let params = Scheme.setup ~max_size:(1 lsl 12) ~seed:"biometric" in
  let cfg = { Zkml_fixed.Fixed.scale_bits = 6; table_bits = 11 } in
  (* enrollment: run the embedding on the user's reference photo (in the
     clear, on the user's device) to fix the template *)
  let reference_photo =
    T.init [| 1; 8; 8; 1 |] (fun i -> 0.3 *. sin (float_of_int i *. 0.7))
  in
  let template = [| 0.0; 0.0; 0.0; 0.0 |] in
  let enroll_graph = embedding_model template in
  (* enroll with the fixed-point executor so the template matches the
     circuit semantics exactly *)
  let qref = T.map (Zkml_fixed.Fixed.quantize cfg) reference_photo in
  let exec = Zkml_nn.Quant_exec.run cfg enroll_graph ~inputs:[ qref ] in
  (* the embedding feeds the squared-difference three nodes before the
     output (embed, template weight, diff^2, distance) *)
  let embed_node = List.hd (G.outputs enroll_graph) - 3 in
  let template =
    Array.init 4 (fun i ->
        Zkml_fixed.Fixed.dequantize cfg
          (T.get_flat exec.Zkml_nn.Quant_exec.values.(embed_node) i))
  in
  let g = embedding_model template in
  let attempt name photo threshold =
    let result = Pipeline.run ~cfg ~params g [ photo ] in
    assert result.Pipeline.verified;
    let dist =
      match result.Pipeline.outputs with
      | [ out ] -> Zkml_fixed.Fixed.dequantize cfg (T.get_flat out 0)
      | _ -> assert false
    in
    Printf.printf
      "  %-18s distance %.4f -> %s (proof %d B, %.2f s; photo stays private)\n"
      name dist
      (if dist < threshold then "ACCEPTED" else "REJECTED")
      result.Pipeline.proof_bytes result.Pipeline.prove_s
  in
  (* the same person: a slightly noisy retake of the reference photo *)
  let genuine =
    T.init [| 1; 8; 8; 1 |] (fun i ->
        (0.3 *. sin (float_of_int i *. 0.7)) +. 0.002)
  in
  (* an impostor photo *)
  let impostor =
    T.init [| 1; 8; 8; 1 |] (fun i -> 0.4 *. cos (float_of_int i *. 1.3))
  in
  attempt "genuine retake" genuine 0.1;
  attempt "impostor" impostor 0.1
