(* Serving-layer tests: the per-model artifact cache and the batch
   prove/verify APIs.

   Covers, with a hermetic cache directory:
   - batch/single equivalence: [prove_many [x]] is byte-identical to
     [prove x], and batch proofs are byte-identical across worker-pool
     sizes (ZKML_JOBS);
   - [verify_many] accepts exactly when every member verifies
     individually, including mixed honest/tampered batches;
   - the amortization claim itself: batched verification of 8 proofs
     performs strictly fewer PCS final checks than 8 single
     verifications (asserted on the "pcs.final_check" counter, for both
     the KZG and IPA backends);
   - cache behaviour: Miss -> Hit_mem -> Hit_disk status progression,
     disk roundtrip of the compiled layout, corrupt/truncated entries
     classified as typed errors (and recompiled), never exceptions. *)

module Zoo = Zkml_models.Zoo
module Obs = Zkml_obs.Obs
module Err = Zkml_util.Err
module Art = Zkml_serve.Artifacts
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Ipa = Zkml_commit.Ipa.Make (Sim61)
module Serve = Zkml_serve.Artifacts.Make (Kzg)
module Serve_ipa = Zkml_serve.Artifacts.Make (Ipa)
module Pipe = Serve.Pipe
module Proto = Pipe.Proto

let cache_dir =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "zkml-test-serve-%d" (Unix.getpid ()))

let () = Unix.putenv "ZKML_CACHE_DIR" cache_dir

let kzg_params = Kzg.setup ~max_size:(1 lsl 13) ~seed:"test-serve"
let ipa_params = Ipa.setup ~max_size:(1 lsl 13) ~seed:"test-serve"

let mnist = lazy (Zoo.mnist ())

(* one compiled entry per test run, via the cache *)
let entry = lazy (fst (Serve.prepare ~cfg:(Lazy.force mnist).Zoo.cfg kzg_params
                         (Lazy.force mnist).Zoo.graph))

let witness_for seed =
  let m = Lazy.force mnist in
  Serve.witness (Lazy.force entry) ~cfg:m.Zoo.cfg m.Zoo.graph
    (Zoo.sample_inputs ~seed m)

let prove_one ?(seed = 7L) () =
  let w = witness_for seed in
  let keys = (Lazy.force entry).Serve.e_keys in
  let proof =
    Proto.prove kzg_params keys ~instance:w.Pipe.w_instance
      ~advice:(fun _ -> Array.map Array.copy w.Pipe.w_advice)
      ~rng:(Zkml_util.Rng.create seed)
  in
  (w, proof)

(* --- batch/single equivalence --------------------------------------- *)

let test_prove_many_singleton () =
  let w, single = prove_one () in
  let keys = (Lazy.force entry).Serve.e_keys in
  let batch =
    Proto.prove_many kzg_params keys
      [
        {
          Proto.job_instance = w.Pipe.w_instance;
          job_advice = (fun _ -> Array.map Array.copy w.Pipe.w_advice);
          job_rng = Zkml_util.Rng.create 7L;
        };
      ]
  in
  match batch with
  | [ p ] ->
      Alcotest.(check string)
        "prove_many [x] = prove x"
        (Proto.proof_to_bytes single)
        (Proto.proof_to_bytes p)
  | _ -> Alcotest.fail "prove_many returned wrong batch size"

let test_batch_bytes_stable_across_jobs () =
  let m = Lazy.force mnist in
  let prove_batch () =
    Serve.prove_batch kzg_params (Lazy.force entry) ~cfg:m.Zoo.cfg m.Zoo.graph
      [ (Zoo.sample_inputs ~seed:11L m, 11L); (Zoo.sample_inputs ~seed:12L m, 12L) ]
    |> List.map (fun (_, p) -> Proto.proof_to_bytes p)
  in
  Zkml_util.Pool.set_jobs 1;
  let seq = prove_batch () in
  Zkml_util.Pool.set_jobs 4;
  let par = prove_batch () in
  Zkml_util.Pool.set_jobs 1;
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "batch proof bytes identical at jobs 1 and 4" true
        (String.equal a b))
    seq par

(* --- verify_many semantics ------------------------------------------ *)

let tamper bytes =
  let b = Bytes.of_string bytes in
  Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) lxor 1));
  Bytes.to_string b

let test_verify_many_mixed_batches () =
  let w, proof = prove_one () in
  let keys = (Lazy.force entry).Serve.e_keys in
  let good = Proto.proof_to_bytes proof in
  let bad = tamper good in
  let ints = w.Pipe.w_instance_ints in
  let verdict batch =
    Pipe.verify_many_verdict kzg_params keys
      ~batch:(List.map (fun p -> (ints, p)) batch)
  in
  let is_accepted = function Proto.Accepted -> true | _ -> false in
  (* accepted iff every member individually accepted *)
  Alcotest.(check bool) "good singleton" true (is_accepted (verdict [ good ]));
  Alcotest.(check bool)
    "all-good batch" true
    (is_accepted (verdict [ good; good; good ]));
  Alcotest.(check bool) "bad singleton" false (is_accepted (verdict [ bad ]));
  Alcotest.(check bool)
    "bad first" false
    (is_accepted (verdict [ bad; good; good ]));
  Alcotest.(check bool)
    "bad last" false
    (is_accepted (verdict [ good; good; bad ]));
  (* truncated member classifies as malformed, never raises *)
  (match verdict [ good; String.sub good 0 10 ] with
  | Proto.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated batch member must classify as malformed");
  (* wrong instance for a member rejects the batch *)
  let forged = Array.copy ints in
  forged.(0) <- forged.(0) + 1;
  Alcotest.(check bool)
    "forged member instance" false
    (is_accepted
       (Pipe.verify_many_verdict kzg_params keys
          ~batch:[ (ints, good); (forged, good) ]))

(* --- the amortization claim (Obs counter) --------------------------- *)

let final_checks f =
  let _, report = Obs.with_enabled f in
  int_of_float (Obs.counter_total report "pcs.final_check")

let test_batched_final_check_kzg () =
  let proofs = List.map (fun seed -> prove_one ~seed ()) [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ] in
  let keys = (Lazy.force entry).Serve.e_keys in
  let batch =
    List.map
      (fun (w, p) -> (w.Pipe.w_instance, p))
      proofs
  in
  let singles =
    final_checks (fun () ->
        List.iter
          (fun (instance, p) ->
            Alcotest.(check bool) "single verifies" true
              (Proto.verify kzg_params keys ~instance p))
          batch)
  in
  let batched =
    final_checks (fun () ->
        Alcotest.(check bool) "batch verifies" true
          (Proto.verify_many kzg_params keys ~batch))
  in
  Alcotest.(check int) "one final check for the whole batch" 1 batched;
  Alcotest.(check bool)
    (Printf.sprintf "batched (%d) strictly fewer than 8 singles (%d)" batched
       singles)
    true (batched < singles)

let test_batched_final_check_ipa () =
  let m = Zoo.dlrm () in
  let entry, _ = Serve_ipa.prepare ~cfg:m.Zoo.cfg ipa_params m.Zoo.graph in
  let keys = entry.Serve_ipa.e_keys in
  let batch =
    Serve_ipa.prove_batch ipa_params entry ~cfg:m.Zoo.cfg m.Zoo.graph
      [ (Zoo.sample_inputs ~seed:1L m, 1L); (Zoo.sample_inputs ~seed:2L m, 2L) ]
    |> List.map (fun (w, p) -> (w.Serve_ipa.Pipe.w_instance, p))
  in
  let singles =
    final_checks (fun () ->
        List.iter
          (fun (instance, p) ->
            Alcotest.(check bool) "ipa single verifies" true
              (Serve_ipa.Proto.verify ipa_params keys ~instance p))
          batch)
  in
  let batched =
    final_checks (fun () ->
        Alcotest.(check bool) "ipa batch verifies" true
          (Serve_ipa.Proto.verify_many ipa_params keys ~batch))
  in
  Alcotest.(check int) "one MSM final check for the ipa batch" 1 batched;
  Alcotest.(check bool) "ipa batched strictly fewer" true (batched < singles)

(* --- artifact cache behaviour --------------------------------------- *)

let test_cache_status_progression () =
  let m = Lazy.force mnist in
  let prep () = Serve.prepare ~cfg:m.Zoo.cfg kzg_params m.Zoo.graph in
  ignore (Lazy.force entry);
  (* entry was prepared at least once above: in-memory now *)
  let _, s1 = prep () in
  Alcotest.(check bool) "second prepare hits memory" true (s1 = Art.Hit_mem);
  Serve.reset_memory ();
  let e2, s2 = prep () in
  Alcotest.(check bool) "after LRU reset, hits disk" true (s2 = Art.Hit_disk);
  let e1 = Lazy.force entry in
  Alcotest.(check int) "same k" e1.Serve.e_k e2.Serve.e_k;
  Alcotest.(check int) "same ncols" e1.Serve.e_ncols e2.Serve.e_ncols;
  Alcotest.(check string) "same spec"
    (Zkml_compiler.Layout_spec.to_string e1.Serve.e_spec)
    (Zkml_compiler.Layout_spec.to_string e2.Serve.e_spec);
  (* a proof made with disk-loaded keys verifies against original keys *)
  let w = witness_for 21L in
  let proof =
    Proto.prove kzg_params e2.Serve.e_keys ~instance:w.Pipe.w_instance
      ~advice:(fun _ -> Array.map Array.copy w.Pipe.w_advice)
      ~rng:(Zkml_util.Rng.create 21L)
  in
  Alcotest.(check bool) "disk-loaded keys prove" true
    (Proto.verify kzg_params e1.Serve.e_keys ~instance:w.Pipe.w_instance proof)

let cache_file () =
  let m = Lazy.force mnist in
  Filename.concat cache_dir
    (Serve.cache_key ~cfg:m.Zoo.cfg m.Zoo.graph ^ ".zka")

let overwrite path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let test_cache_corruption_is_typed () =
  let m = Lazy.force mnist in
  ignore (Lazy.force entry);
  let path = cache_file () in
  Alcotest.(check bool) "cache file exists" true (Sys.file_exists path);
  let original =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let expect_corrupt what text =
    overwrite path text;
    Serve.reset_memory ();
    let _, status = Serve.prepare ~cfg:m.Zoo.cfg kzg_params m.Zoo.graph in
    match status with
    | Art.Corrupt _ -> ()
    | s ->
        Alcotest.failf "%s: expected Corrupt, got %s" what (Art.status_string s)
  in
  (* flip a payload byte: digest mismatch *)
  let flipped = Bytes.of_string original in
  let pos = Bytes.length flipped - 100 in
  Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 1));
  expect_corrupt "bit flip" (Bytes.to_string flipped);
  (* truncations at every interesting boundary *)
  expect_corrupt "empty file" "";
  expect_corrupt "header only" "zkml-artifact v1\n";
  expect_corrupt "half file" (String.sub original 0 (String.length original / 2));
  expect_corrupt "one byte short"
    (String.sub original 0 (String.length original - 1));
  (* trailing garbage *)
  expect_corrupt "trailing bytes" (original ^ "x");
  (* wrong backend: rewrite the header's backend line *)
  let needle = "backend " ^ Kzg.name in
  let nlen = String.length needle in
  let rec find i =
    if i + nlen > String.length original then None
    else if String.sub original i nlen = needle then Some i
    else find (i + 1)
  in
  (match find 0 with
  | Some i ->
      let swapped =
        String.sub original 0 i
        ^ "backend " ^ Ipa.name
        ^ String.sub original (i + nlen) (String.length original - i - nlen)
      in
      expect_corrupt "wrong backend" swapped
  | None -> Alcotest.fail "header has no backend line")

let test_load_entry_total () =
  (* load_entry distinguishes absent (None) from damaged (Some Error) *)
  ignore (Lazy.force entry);
  Alcotest.(check bool) "absent entry is None" true
    (Serve.load_entry "0000000000000000" = None);
  let path = cache_file () in
  overwrite path "not a cache entry at all";
  match Serve.load_entry (Filename.chop_suffix (Filename.basename path) ".zka") with
  | Some (Error e) ->
      (* any typed code is fine; the point is no exception escapes *)
      Alcotest.(check bool) "typed error has a message" true
        (String.length (Err.to_string e) > 0)
  | Some (Ok _) -> Alcotest.fail "garbage parsed as a cache entry"
  | None -> Alcotest.fail "existing file reported as absent"

let () =
  let restore_cache_after f () =
    (* tests above deliberately destroy the disk entry; rebuild state
       for whoever runs next *)
    Fun.protect ~finally:Serve.reset_memory f
  in
  Alcotest.run "serve"
    [
      ( "batch",
        [
          Alcotest.test_case "prove_many_singleton" `Quick
            test_prove_many_singleton;
          Alcotest.test_case "bytes_stable_across_jobs" `Quick
            test_batch_bytes_stable_across_jobs;
          Alcotest.test_case "verify_many_mixed" `Quick
            test_verify_many_mixed_batches;
          Alcotest.test_case "final_check_counter_kzg" `Quick
            test_batched_final_check_kzg;
          Alcotest.test_case "final_check_counter_ipa" `Quick
            test_batched_final_check_ipa;
        ] );
      ( "cache",
        [
          Alcotest.test_case "status_progression" `Quick
            (restore_cache_after test_cache_status_progression);
          Alcotest.test_case "corruption_is_typed" `Quick
            (restore_cache_after test_cache_corruption_is_typed);
          Alcotest.test_case "load_entry_total" `Quick
            (restore_cache_after test_load_entry_total);
        ] );
    ]
