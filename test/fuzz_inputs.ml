(* Regression suite for the untrusted-input surface: typed parse errors
   for model files and proof bytes, the hardening satellites (odd pad
   lists, non-finite quantization, canonical integers), a qcheck
   round-trip over randomized graphs, and short fixed-seed runs of the
   deterministic fuzz engine (the long run is `make fuzz`). *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module G = Zkml_nn.Graph
module S = Zkml_nn.Serialize
module Err = Zkml_util.Err
module Fuzz = Zkml_util.Fuzz
module Zoo = Zkml_models.Zoo
module Opt = Zkml_compiler.Optimizer
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Pipe = Zkml_compiler.Pipeline.Make (Kzg)

let kzg_params = Kzg.setup ~max_size:(1 lsl 13) ~seed:"fuzz-inputs"

(* the segmented-proof corpus below proves through the artifact cache;
   keep it hermetic *)
let () =
  Unix.putenv "ZKML_CACHE_DIR"
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "zkml-test-fuzz-inputs-%d" (Unix.getpid ())))

let expect_code name code = function
  | Ok _ -> Alcotest.failf "%s: parsed fine, expected %s" name (Err.code_name code)
  | Error (e : Err.t) ->
      Alcotest.(check string) name (Err.code_name code) (Err.code_name e.Err.code)

let expect_error name = function
  | Ok _ -> Alcotest.failf "%s: parsed fine, expected an error" name
  | Error (_ : Err.t) -> ()

(* ------------------------------------------------------------------ *)
(* Err primitives *)

let test_err_fields () =
  let chk name ok s =
    match Err.int_field ~what:"x" s with
    | Ok _ when ok -> ()
    | Error _ when not ok -> ()
    | Ok v -> Alcotest.failf "%s: %S accepted as %d" name s v
    | Error e -> Alcotest.failf "%s: %S rejected: %s" name s (Err.to_string e)
  in
  chk "plain" true "42";
  chk "zero" true "0";
  chk "negative" true "-17";
  (* the permissive int_of_string grammar re-encodes equal values as
     different bytes; all of it must be refused *)
  chk "leading zeros" false "007";
  chk "negative zero" false "-0";
  chk "plus sign" false "+1";
  chk "hex" false "0x10";
  chk "underscores" false "1_000";
  chk "empty" false "";
  chk "trailing junk" false "12x";
  expect_code "overflow" Err.Bad_field
    (Err.int_field ~what:"x" "99999999999999999999999999");
  expect_code "bound" Err.Out_of_range
    (Err.bounded_int_field ~what:"x" ~min:1 ~max:8 "9");
  expect_code "nan float" Err.Out_of_range
    (Err.finite_float_field ~what:"w" "nan");
  expect_code "inf float" Err.Out_of_range
    (Err.finite_float_field ~what:"w" "inf")

let test_err_reader () =
  let r = Err.Reader.of_string "abcdef" in
  (match Err.Reader.take r ~what:"p" 4 with
  | Ok s -> Alcotest.(check string) "take" "abcd" s
  | Error e -> Alcotest.failf "take: %s" (Err.to_string e));
  expect_code "short take" Err.Truncated (Err.Reader.take r ~what:"p" 3);
  expect_code "trailing" Err.Trailing_data (Err.Reader.expect_end r ~what:"p");
  (match Err.Reader.take r ~what:"p" 2 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "tail take: %s" (Err.to_string e));
  match Err.Reader.expect_end r ~what:"p" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "end: %s" (Err.to_string e)

(* ------------------------------------------------------------------ *)
(* Fixed-point hardening *)

let test_fixed_nonfinite () =
  let cfg = Fx.default in
  Alcotest.(check int)
    "+inf saturates" (Fx.table_max cfg)
    (Fx.quantize cfg infinity);
  Alcotest.(check int)
    "-inf saturates" (Fx.table_min cfg)
    (Fx.quantize cfg neg_infinity);
  (match Fx.quantize cfg nan with
  | exception Fx.Nan_input _ -> ()
  | v -> Alcotest.failf "nan quantized to %d" v);
  (match Fx.apply_real cfg (fun _ -> nan) 0 with
  | exception Fx.Nan_input _ -> ()
  | v -> Alcotest.failf "nan table image %d" v);
  Alcotest.(check int)
    "inf table image saturates" (Fx.table_max cfg)
    (Fx.apply_real cfg (fun _ -> infinity) 0)

(* ------------------------------------------------------------------ *)
(* Model-format regressions *)

let model lines = "zkml-model v1 m\n" ^ String.concat "\n" lines ^ "\n"

let test_model_regressions () =
  let base = S.to_string (Zoo.mnist ()).Zoo.graph in
  (match S.of_string base with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "mnist text: %s" (Err.to_string e));
  expect_code "bad version" Err.Bad_header (S.of_string "zkml-model v2 m\n");
  expect_code "no header" Err.Bad_header (S.of_string "hello\n");
  expect_code "missing outputs" Err.Missing_field
    (S.of_string (model [ "node 0 in= input shape=2" ]));
  expect_code "duplicate outputs" Err.Duplicate_field
    (S.of_string (model [ "node 0 in= input shape=2"; "outputs 0"; "outputs 0" ]));
  expect_code "output out of range" Err.Out_of_range
    (S.of_string (model [ "node 0 in= input shape=2"; "outputs 1" ]));
  (* a duplicated or reordered node line shows up as an id clash *)
  expect_code "id out of sequence" Err.Bad_field
    (S.of_string
       (model
          [ "node 0 in= input shape=2"; "node 0 in= input shape=2";
            "outputs 0" ]));
  expect_code "unknown op" Err.Unknown_variant
    (S.of_string (model [ "node 0 in= warp factor=9"; "outputs 0" ]));
  (* satellite: odd-length pad list must be an error, not a silent drop *)
  expect_code "odd pads" Err.Bad_field
    (S.of_string
       (model
          [ "node 0 in= input shape=2,2"; "node 1 in=0 pad pads=1,2,3";
            "outputs 1" ]));
  expect_code "nan weight" Err.Out_of_range
    (S.of_string (model [ "node 0 in= weight shape=1 data=nan"; "outputs 0" ]));
  expect_code "weight count mismatch" Err.Bad_field
    (S.of_string
       (model [ "node 0 in= weight shape=3 data=0x1p0 0x1p0"; "outputs 0" ]));
  expect_code "zero stride" Err.Out_of_range
    (S.of_string
       (model
          [ "node 0 in= input shape=1,4,4,1";
            "node 1 in=0 avg_pool2d size=2 stride=0"; "outputs 1" ]));
  expect_code "huge shape" Err.Out_of_range
    (S.of_string
       (model [ "node 0 in= input shape=99999999,99999999"; "outputs 0" ]));
  (* truncation anywhere in the text is a typed error *)
  for cut = 0 to String.length base - 1 do
    if cut mod 37 = 0 then
      expect_error
        (Printf.sprintf "truncated model @%d" cut)
        (S.of_string (String.sub base 0 cut))
  done

(* qcheck: random graphs round-trip through the textual format *)
let random_graph seed =
  let rng = Zkml_util.Rng.create seed in
  let g = G.create (Printf.sprintf "q%Ld" (Int64.logand seed 0xffffL)) in
  let width = ref (2 + Zkml_util.Rng.int rng 6) in
  let last = ref (G.input g [| 1; !width |]) in
  let steps = 1 + Zkml_util.Rng.int rng 6 in
  for _ = 1 to steps do
    match Zkml_util.Rng.int rng 6 with
    | 0 -> last := G.relu g !last
    | 1 -> last := G.activation g Zkml_nn.Op.Sigmoid !last
    | 2 ->
        let w' = 1 + Zkml_util.Rng.int rng 5 in
        let wt = G.he_weight g rng [| !width; w' |] ~label:"w" in
        let b = G.zero_weight g [| w' |] ~label:"b" in
        last := G.fully_connected g !last wt b;
        width := w'
    | 3 -> last := G.add_ g !last !last
    | 4 -> last := G.neg g !last
    | _ -> last := G.softmax g !last
  done;
  G.mark_output g !last;
  g

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"random graphs round-trip"
    (QCheck.make
       (QCheck.Gen.map random_graph QCheck.Gen.int64)
       ~print:S.to_string)
    (fun g ->
      let text = S.to_string g in
      match S.of_string text with
      | Error e -> QCheck.Test.fail_reportf "no parse: %s" (Err.to_string e)
      | Ok g2 ->
          S.to_string g2 = text
          && G.num_nodes g2 = G.num_nodes g
          && G.outputs g2 = G.outputs g)

(* short fixed-seed fuzz of the model parser (mirrors `zkml fuzz`) *)
let test_fuzz_models () =
  let corpus =
    [ S.to_string (Zoo.mnist ()).Zoo.graph;
      S.to_string (Zoo.dlrm ()).Zoo.graph ]
  in
  let classify text =
    match S.of_string text with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok g -> (
        let canonical = S.to_string g in
        match S.of_string canonical with
        | Ok g2 when S.to_string g2 = canonical -> Fuzz.Valid
        | _ -> Fuzz.Accepted)
  in
  let rng = Zkml_util.Rng.create 11L in
  let report = Fuzz.run ~text:true ~rng ~iters:400 ~corpus ~classify () in
  if not (Fuzz.clean report) then
    Alcotest.failf "model fuzz not clean:\n%s"
      (String.concat "\n" (Fuzz.report_lines ~label:"models" report));
  Alcotest.(check bool) "some malformed" true (report.Fuzz.malformed > 0)

(* ------------------------------------------------------------------ *)
(* Proof bytes: prove mnist once, then attack the byte string *)

let mnist_proof =
  lazy
    (let m = Zoo.mnist () in
     let inputs = Zoo.sample_inputs m in
     let r = Pipe.run ~cfg:m.Zoo.cfg ~params:kzg_params m.Zoo.graph inputs in
     assert r.Pipe.verified;
     let bytes = Pipe.Proto.proof_to_bytes r.Pipe.proof in
     let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
     let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
     let lowered =
       Zkml_compiler.Lower.lower_with ~spec_fn:r.Pipe.plan.Opt.spec_fn
         ~cfg:m.Zoo.cfg ~ncols:r.Pipe.plan.Opt.ncols ~counting:false
         m.Zoo.graph exec
     in
     let built =
       Zkml_compiler.Layouter.finalize lowered.Zkml_compiler.Lower.layouter
         ~blinding:Opt.blinding ~k:r.Pipe.plan.Opt.k
     in
     let instance_ints = built.Zkml_compiler.Layouter.instance_col in
     let keys =
       Pipe.rebuild_keys kzg_params ~spec:r.Pipe.plan.Opt.spec
         ~ncols:r.Pipe.plan.Opt.ncols ~k:r.Pipe.plan.Opt.k ~cfg:m.Zoo.cfg
         m.Zoo.graph
     in
     (bytes, keys, instance_ints))

let verdict bytes =
  let proof, keys, instance_ints = Lazy.force mnist_proof in
  ignore proof;
  Pipe.verify_verdict kzg_params keys ~instance_ints bytes

let test_proof_verdicts () =
  let bytes, _, _ = Lazy.force mnist_proof in
  (match verdict bytes with
  | Pipe.Proto.Accepted -> ()
  | v -> Alcotest.failf "valid proof: %s" (Pipe.Proto.verdict_string v));
  (* flipping a low bit of a field element keeps the encoding canonical:
     well-formed proof, false statement *)
  let tampered = Bytes.of_string bytes in
  Bytes.set tampered 100
    (Char.chr (Char.code (Bytes.get tampered 100) lxor 1));
  (match verdict (Bytes.to_string tampered) with
  | Pipe.Proto.Rejected -> ()
  | v -> Alcotest.failf "tampered proof: %s" (Pipe.Proto.verdict_string v));
  (* trailing garbage after a complete proof *)
  (match verdict (bytes ^ "\x00") with
  | Pipe.Proto.Malformed e ->
      Alcotest.(check string) "trailing code" "trailing_data"
        (Err.code_name e.Err.code)
  | v -> Alcotest.failf "trailing garbage: %s" (Pipe.Proto.verdict_string v));
  (* non-canonical field encoding *)
  let hi = Bytes.of_string bytes in
  Bytes.set hi 7 '\xff';
  match verdict (Bytes.to_string hi) with
  | Pipe.Proto.Malformed _ -> ()
  | v -> Alcotest.failf "non-canonical element: %s" (Pipe.Proto.verdict_string v)

(* the ISSUE's acceptance bar: every truncated prefix of a valid mnist
   proof is Malformed (Truncated), never an exception, never accepted *)
let test_proof_prefixes () =
  let bytes, _, _ = Lazy.force mnist_proof in
  let n = String.length bytes in
  for cut = 0 to n - 1 do
    match verdict (String.sub bytes 0 cut) with
    | Pipe.Proto.Malformed e when e.Err.code = Err.Truncated -> ()
    | v ->
        Alcotest.failf "prefix %d/%d: %s" cut n
          (Pipe.Proto.verdict_string v)
  done

(* short fixed-seed binary fuzz of the proof-byte parser + verifier *)
let test_fuzz_proof_bytes () =
  let bytes, _, _ = Lazy.force mnist_proof in
  let classify b =
    match verdict b with
    | Pipe.Proto.Accepted -> Fuzz.Accepted
    | Pipe.Proto.Rejected -> Fuzz.Rejected
    | Pipe.Proto.Malformed e -> Fuzz.Malformed (Err.to_string e)
  in
  let rng = Zkml_util.Rng.create 7L in
  let report = Fuzz.run ~rng ~iters:300 ~corpus:[ bytes ] ~classify () in
  if not (Fuzz.clean report) then
    Alcotest.failf "proof fuzz not clean:\n%s"
      (String.concat "\n" (Fuzz.report_lines ~label:"proof-bytes" report));
  Alcotest.(check bool) "some malformed" true (report.Fuzz.malformed > 0);
  Alcotest.(check bool) "some rejected" true (report.Fuzz.rejected > 0)

(* ------------------------------------------------------------------ *)
(* Wire frames: pinned finds from `zkml fuzz`'s wire corpus, plus a
   short fixed-seed binary fuzz of the frame decoder *)

module Wire = Zkml_serve.Wire
module B = Zkml_serve.Backends

let wire_corpus () =
  let proof = "zkml-proof v1\nmodel mnist\n" in
  List.map Wire.encode_request
    [ Wire.Ping;
      Wire.Prove
        { tenant = "fuzz"; backend = B.Kzg; model = "mnist"; seeds = [ 1L; 2L ] };
      Wire.Prove_seg
        { tenant = "fuzz"; backend = B.Kzg; model = "mnist"; segments = 4;
          seeds = [ 1L; 2L ] };
      Wire.Verify { tenant = "fuzz"; model = "mnist"; proof };
      Wire.Shutdown ]
  @ List.map Wire.encode_response
      [ Wire.Pong; Wire.Proofs [ proof ];
        Wire.Verdict { code = 2; detail = "malformed input" };
        Wire.Overloaded; Wire.Stopping ]

(* pinned mutants: each shape the daemon must classify as a typed error *)
let test_wire_pins () =
  let expect what code bytes = expect_code what code (Wire.decode_any bytes) in
  let ping = Wire.encode_request Wire.Ping in
  expect "empty input" Err.Truncated "";
  expect "truncated header" Err.Truncated (String.sub ping 0 5);
  expect "truncated payload" Err.Truncated "ZKW1\x01\x00\x00\x00\x08zk";
  expect "bad magic" Err.Bad_header ("zkw1" ^ String.sub ping 4 5);
  expect "over-cap length" Err.Out_of_range "ZKW1\x02\xff\xff\xff\xff";
  expect "length just over cap" Err.Out_of_range "ZKW1\x02\x01\x00\x00\x01";
  expect "trailing bytes" Err.Trailing_data (ping ^ "\x00");
  expect "duplicate header" Err.Trailing_data (ping ^ ping);
  expect "unknown request kind" Err.Unknown_variant
    (Wire.encode_frame ~kind:0x00 "");
  expect "unknown response kind" Err.Unknown_variant
    (Wire.encode_frame ~kind:0xff "");
  (* seed count 0: a Prove frame must carry 1..max_batch seeds *)
  expect "zero seeds" Err.Out_of_range
    (Wire.encode_frame ~kind:0x02 "\x00\x04fuzz\x00\x00\x05mnist\x00\x00");
  (* name length field over the cap *)
  expect "oversized tenant" Err.Out_of_range
    (Wire.encode_frame ~kind:0x02 "\xff\xfffuzz");
  (* Prove_seg: the segments byte must be in [1, 16]. Patch it in place
     in a valid frame — it sits just before the u16 seed count and the
     seeds. *)
  let seg_frame =
    Wire.encode_request
      (Wire.Prove_seg
         { tenant = "fuzz"; backend = B.Kzg; model = "mnist"; segments = 4;
           seeds = [ 1L; 2L ] })
  in
  let with_segments v =
    let b = Bytes.of_string seg_frame in
    Bytes.set b (Bytes.length b - (2 + (8 * 2)) - 1) (Char.chr v);
    Bytes.to_string b
  in
  (match Wire.decode_any (with_segments 4) with
  | Ok (`Req (Wire.Prove_seg { segments = 4; _ })) -> ()
  | _ -> Alcotest.fail "segments-byte patch does not hit the segments field");
  expect "zero segments" Err.Out_of_range (with_segments 0);
  expect "17 segments" Err.Out_of_range (with_segments 17)

(* short fixed-seed fuzz: decode must be total, and anything accepted
   must re-encode to exactly the input bytes (canonical encoding) *)
let test_fuzz_wire () =
  let classify bytes =
    match Wire.decode_any bytes with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok v ->
        if String.equal (Wire.encode_any v) bytes then Fuzz.Valid
        else Fuzz.Accepted
  in
  let rng = Zkml_util.Rng.create 13L in
  let report =
    Fuzz.run ~rng ~iters:400 ~corpus:(wire_corpus ()) ~classify ()
  in
  if not (Fuzz.clean report) then
    Alcotest.failf "wire fuzz not clean:\n%s"
      (String.concat "\n" (Fuzz.report_lines ~label:"wire" report));
  Alcotest.(check bool) "some malformed" true (report.Fuzz.malformed > 0)

(* ------------------------------------------------------------------ *)
(* Segmented proof files (PR 10): pinned finds from `zkml fuzz`'s
   fifth corpus, plus a short fixed-seed fuzz of the strict parser +
   aggregate verdict. The format is covered by a total-decode oracle
   (every mutant is a typed error, a rejected-but-well-formed file, or
   re-encodes byte-identically) just like model text and wire frames. *)

module SPF = Zkml_serve.Seg_proof

let seg_mnist = lazy (Zoo.mnist ())
let seg_honest = lazy (SPF.prove (Lazy.force seg_mnist) B.Kzg 1234 ~segments:3)
let seg_kzg_keys : (string, _) Hashtbl.t = Hashtbl.create 8
let seg_ipa_keys : (string, _) Hashtbl.t = Hashtbl.create 8

let seg_verdict sp =
  SPF.verdict ~kzg_keys:seg_kzg_keys ~ipa_keys:seg_ipa_keys
    (Lazy.force seg_mnist) sp

(* patch one whole line of the canonical text *)
let patch_line text ~from ~to_ =
  let lines = String.split_on_char '\n' text in
  let hit = ref false in
  let lines =
    List.filter_map
      (fun l ->
        if l = from then begin
          hit := true;
          match to_ with None -> None | Some l' -> Some l'
        end
        else Some l)
      lines
  in
  if not !hit then Alcotest.failf "patch_line: no line %S" from;
  String.concat "\n" lines

let test_seg_pins () =
  let text = (Lazy.force seg_honest).SPF.p_text in
  (* honest file: parses, canonical, accepted *)
  let sp =
    match SPF.of_string text with
    | Ok sp -> sp
    | Error e -> Alcotest.failf "honest parse: %s" (Err.to_string e)
  in
  Alcotest.(check string) "canonical" text (SPF.render sp);
  (match seg_verdict sp with
  | `Accepted -> ()
  | `Rejected -> Alcotest.fail "honest segmented proof rejected"
  | `Malformed e ->
      Alcotest.failf "honest segmented proof malformed: %s" (Err.to_string e));
  (* pinned find: every truncated prefix is a typed parse error — the
     parser demands a trailing newline and a complete line script, so
     no strict prefix can decode *)
  for cut = 0 to String.length text - 1 do
    if cut mod 37 = 0 then
      expect_error
        (Printf.sprintf "truncated seg proof @%d" cut)
        (SPF.of_string (String.sub text 0 cut))
  done;
  (* pinned find: dropping the last seam line and decrementing the
     declared count still parses (indices stay sequential), but the
     verdict is malformed — the seam count is pinned by the plan, so a
     prover cannot simply omit a binding *)
  let nseams = Array.length sp.SPF.sp_seams in
  Alcotest.(check bool) "has seams" true (nseams > 0);
  let last_seam =
    Printf.sprintf "seam %d %s" (nseams - 1)
      (Zkml_util.Bytes_util.to_hex sp.SPF.sp_seams.(nseams - 1))
  in
  let dropped =
    patch_line
      (patch_line text ~from:last_seam ~to_:None)
      ~from:(Printf.sprintf "seams %d" nseams)
      ~to_:(Some (Printf.sprintf "seams %d" (nseams - 1)))
  in
  (match SPF.of_string dropped with
  | Error e -> Alcotest.failf "dropped seam should parse: %s" (Err.to_string e)
  | Ok sp' -> (
      match seg_verdict sp' with
      | `Malformed _ -> ()
      | `Accepted -> Alcotest.fail "dropped seam ACCEPTED"
      | `Rejected -> Alcotest.fail "dropped seam: expected malformed"));
  (* pinned find: an uppercase hex digit in a digest must be refused at
     parse time (canonical format is lowercase-only), not silently
     re-encoded differently *)
  let seam0 = Zkml_util.Bytes_util.to_hex sp.SPF.sp_seams.(0) in
  let upper = String.uppercase_ascii seam0 in
  if upper <> seam0 then
    expect_code "uppercase seam hex" Err.Invalid_encoding
      (SPF.of_string
         (patch_line text ~from:("seam 0 " ^ seam0)
            ~to_:(Some ("seam 0 " ^ upper))));
  (* a flipped digest nibble parses but is rejected by the seam check *)
  let flipped =
    let b = Bytes.of_string seam0 in
    Bytes.set b 0 (if Bytes.get b 0 = '0' then '1' else '0');
    Bytes.to_string b
  in
  (match
     SPF.of_string
       (patch_line text ~from:("seam 0 " ^ seam0)
          ~to_:(Some ("seam 0 " ^ flipped)))
   with
  | Error e -> Alcotest.failf "flipped digest should parse: %s" (Err.to_string e)
  | Ok sp' -> (
      match seg_verdict sp' with
      | `Rejected -> ()
      | `Accepted -> Alcotest.fail "flipped seam digest ACCEPTED"
      | `Malformed e ->
          Alcotest.failf "flipped seam digest: expected rejected, got %s"
            (Err.to_string e)));
  (* segment counts outside [1, max_segments] are refused at parse *)
  let nseg = Array.length sp.SPF.sp_groups in
  let with_count v =
    patch_line text
      ~from:(Printf.sprintf "segments %d" nseg)
      ~to_:(Some (Printf.sprintf "segments %d" v))
  in
  expect_code "zero segments" Err.Out_of_range (SPF.of_string (with_count 0));
  expect_code "over-cap segments" Err.Out_of_range
    (SPF.of_string (with_count 99))

let test_fuzz_seg_proofs () =
  let honest = (Lazy.force seg_honest).SPF.p_text in
  let classify text =
    match SPF.of_string text with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok sp ->
        if SPF.render sp <> text then Fuzz.Accepted
          (* canonicity violation: decoded but re-encodes differently *)
        else (
          match seg_verdict sp with
          | `Accepted -> if text = honest then Fuzz.Valid else Fuzz.Accepted
          | `Rejected -> Fuzz.Rejected
          | `Malformed e -> Fuzz.Malformed (Err.to_string e))
  in
  let rng = Zkml_util.Rng.create 17L in
  let report =
    Fuzz.run ~text:true ~rng ~iters:150 ~corpus:[ honest ] ~classify ()
  in
  if not (Fuzz.clean report) then
    Alcotest.failf "segmented-proof fuzz not clean:\n%s"
      (String.concat "\n" (Fuzz.report_lines ~label:"segmented" report));
  Alcotest.(check bool) "some malformed" true (report.Fuzz.malformed > 0)

let () =
  Alcotest.run "fuzz_inputs"
    [ ( "err",
        [ Alcotest.test_case "typed fields" `Quick test_err_fields;
          Alcotest.test_case "reader" `Quick test_err_reader;
          Alcotest.test_case "fixed nonfinite" `Quick test_fixed_nonfinite
        ] );
      ( "models",
        [ Alcotest.test_case "regressions" `Quick test_model_regressions;
          QCheck_alcotest.to_alcotest ~long:false prop_roundtrip;
          Alcotest.test_case "fuzz" `Quick test_fuzz_models
        ] );
      ( "proofs",
        [ Alcotest.test_case "verdicts" `Quick test_proof_verdicts;
          Alcotest.test_case "all truncated prefixes" `Quick
            test_proof_prefixes;
          Alcotest.test_case "fuzz" `Quick test_fuzz_proof_bytes
        ] );
      ( "wire",
        [ Alcotest.test_case "pinned mutants" `Quick test_wire_pins;
          Alcotest.test_case "fuzz" `Quick test_fuzz_wire
        ] );
      ( "segmented",
        [ Alcotest.test_case "pinned mutants" `Quick test_seg_pins;
          Alcotest.test_case "fuzz" `Quick test_fuzz_seg_proofs
        ] )
    ]
