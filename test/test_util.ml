let test_hex_roundtrip () =
  let rng = Zkml_util.Rng.create 42L in
  for _ = 1 to 100 do
    let n = Zkml_util.Rng.int rng 64 in
    let s = String.init n (fun _ -> Char.chr (Zkml_util.Rng.int rng 256)) in
    Alcotest.(check string) "roundtrip" s
      Zkml_util.Bytes_util.(of_hex (to_hex s))
  done

(* ------------------------------------------------------------------ *)
(* JSON parser *)

module J = Zkml_util.Json

let parse_ok s =
  match J.of_string s with
  | Ok d -> d
  | Error e ->
      Alcotest.failf "expected Ok for %S, got %s" s (Zkml_util.Err.to_string e)

let test_json_values () =
  (match parse_ok "[1, -2.5e3, 0.125, true, false, null]" with
  | J.Arr [ J.Num a; J.Num b; J.Num c; J.Bool true; J.Bool false; J.Null ] ->
      Alcotest.(check (float 0.0)) "int" 1.0 a;
      Alcotest.(check (float 0.0)) "exponent" (-2500.0) b;
      Alcotest.(check (float 0.0)) "fraction" 0.125 c
  | _ -> Alcotest.fail "array shape mismatch");
  (* escapes, including \u to UTF-8 *)
  (match parse_ok {|"a\n\t\"\\\u0041\u00e9"|} with
  | J.Str s -> Alcotest.(check string) "escapes" "a\n\t\"\\A\xc3\xa9" s
  | _ -> Alcotest.fail "string expected");
  (* nesting + accessors *)
  let d = parse_ok {|{"k":1,"o":{"l":[{"x":2}]},"s":"v"}|} in
  Alcotest.(check (option (float 0.0))) "mem_float" (Some 1.0) (J.mem_float "k" d);
  Alcotest.(check (option string)) "mem_string" (Some "v") (J.mem_string "s" d);
  (match J.member "o" d with
  | Some o -> (
      match J.mem_list "l" o with
      | Some [ inner ] ->
          Alcotest.(check (option (float 0.0)))
            "nested" (Some 2.0) (J.mem_float "x" inner)
      | _ -> Alcotest.fail "l shape")
  | None -> Alcotest.fail "o missing");
  Alcotest.(check (option int)) "to_int exact" (Some 42)
    (J.to_int (parse_ok "42"));
  Alcotest.(check (option int)) "to_int rejects fraction" None
    (J.to_int (parse_ok "42.5"))

let test_json_errors () =
  let is_err s =
    Alcotest.(check bool)
      (Printf.sprintf "reject %S" s)
      true
      (Result.is_error (J.of_string s))
  in
  List.iter is_err
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "1 2"; "{\"k\" 1}";
      "nan"; "01"; "- 1"; "\"bad \\q escape\"" ];
  (* depth cap: 200 nested arrays exceed the limit *)
  is_err (String.make 200 '[' ^ String.make 200 ']');
  (* round numbers of whitespace and trailing newline are fine *)
  (match J.of_string " { } \n" with
  | Ok (J.Obj []) -> ()
  | _ -> Alcotest.fail "whitespace handling")

(* ------------------------------------------------------------------ *)
(* Bench-regression gate *)

module Gate = Zkml_util.Bench_gate

let par_doc t1 =
  parse_ok
    (Printf.sprintf
       {|{"schema_version":1,"bench":"par","model":"m","runs":[{"jobs":1,"prove_s":%g},{"jobs":4,"prove_s":3.0}],"speedup_j4":2.0}|}
       t1)

let quotient_doc scale =
  parse_ok
    (Printf.sprintf
       {|{"schema_version":1,"bench":"quotient","models":[{"model":"mnist","interp_s":%g,"compiled_s":%g,"interp_rows_per_s":1000.0,"speedup":1.4}]}|}
       (0.2 *. scale) (0.1 *. scale))

let test_gate_extraction () =
  let s = Gate.series_of_json (par_doc 6.0) in
  Alcotest.(check bool)
    "par keys" true
    (List.mem ("par/jobs=1/prove_s", 6.0) s
    && List.mem ("par/jobs=4/prove_s", 3.0) s);
  (* speedup_j4 is not time-like, must not be extracted *)
  Alcotest.(check int) "par extracts exactly the runs" 2 (List.length s);
  let q = Gate.series_of_json (quotient_doc 1.0) in
  Alcotest.(check bool)
    "quotient keys" true
    (List.mem_assoc "quotient/mnist/interp_s" q
    && List.mem_assoc "quotient/mnist/compiled_s" q);
  Alcotest.(check bool)
    "rows/s skipped" true
    (not (List.exists (fun (k, _) -> k = "quotient/mnist/interp_rows_per_s") q));
  (* results shape *)
  let r =
    Gate.series_of_json
      (parse_ok
         {|{"results":[{"section":"table6","model":"mnist","prove_s":1.0,"verify_s":0.5,"proof_bytes":99,"spans":{"ntt":0.25}}]}|})
  in
  Alcotest.(check bool)
    "results keys" true
    (List.mem ("table6/mnist/prove_s", 1.0) r
    && List.mem ("table6/mnist/verify_s", 0.5) r
    && List.mem ("table6/mnist/span.ntt", 0.25) r);
  Alcotest.(check bool)
    "proof_bytes is not a time" true
    (not (List.exists (fun (k, _) -> k = "table6/mnist/proof_bytes") r))

let test_gate_verdicts () =
  let baseline = Gate.series_of_json (quotient_doc 1.0) in
  (* identical run passes *)
  let v =
    Gate.compare_series ~threshold:1.75 ~baseline
      ~current:(Gate.series_of_json (quotient_doc 1.0))
  in
  Alcotest.(check bool) "identical passes" true (Gate.passed v);
  (* within threshold passes *)
  let v =
    Gate.compare_series ~threshold:1.75 ~baseline
      ~current:(Gate.series_of_json (quotient_doc 1.5))
  in
  Alcotest.(check bool) "1.5x within 1.75x passes" true (Gate.passed v);
  (* 3x inflated fails and the report names the key *)
  let v =
    Gate.compare_series ~threshold:1.75 ~baseline
      ~current:(Gate.series_of_json (quotient_doc 3.0))
  in
  Alcotest.(check bool) "3x regresses" false (Gate.passed v);
  Alcotest.(check int) "both keys regress" 2 (List.length v.Gate.v_regressed);
  let report =
    String.concat "\n" (Gate.report_lines ~threshold:1.75 v)
  in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "report names the key" true
    (contains "quotient/mnist/interp_s" report);
  Alcotest.(check bool) "report says FAIL" true (contains "FAIL" report);
  (* missing/extra keys are reported, never regressions *)
  let v =
    Gate.compare_series ~threshold:1.75
      ~baseline:(baseline @ [ ("quotient/ghost/interp_s", 1.0) ])
      ~current:(Gate.series_of_json (quotient_doc 1.0))
  in
  Alcotest.(check bool) "missing key still passes" true (Gate.passed v);
  Alcotest.(check (list string))
    "missing reported"
    [ "quotient/ghost/interp_s" ]
    v.Gate.v_missing;
  (* duplicate keys collapse to the median *)
  let m =
    Gate.medians
      [ ("k", 1.0); ("k", 100.0); ("k", 2.0) ]
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "median of duplicates"
    [ ("k", 2.0) ]
    m

let () =
  Alcotest.run "util"
    [ ("hex", [ Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip ]);
      ( "json",
        [ Alcotest.test_case "values and accessors" `Quick test_json_values;
          Alcotest.test_case "malformed inputs" `Quick test_json_errors ] );
      ( "bench-gate",
        [ Alcotest.test_case "series extraction" `Quick test_gate_extraction;
          Alcotest.test_case "verdicts and report" `Quick test_gate_verdicts ] )
    ]
