(* Split-and-aggregate proving tests (PR 10).

   Three layers, cheapest first:
   - plan/executor equivalence: for every zoo model and segment count,
     cutting the graph at layer boundaries and re-running the quantized
     executor per segment (imports fed from the monolithic run)
     reproduces every exported intermediate bit-for-bit;
   - instance-slice wiring: each seam's source and destination slices
     of the per-segment instance columns carry exactly the monolithic
     flattened values (so the seam digests bind the right cells);
   - full differential: segmented prove/verify at --segments 1/2/4
     agrees with the monolithic accept verdict, the proof file is
     canonical (parse . render = id) and deterministic, and seam or
     splice tampering flips the verdict to rejected. *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module G = Zkml_nn.Graph
module Q = Zkml_nn.Quant_exec
module Zoo = Zkml_models.Zoo
module Seg = Zkml_compiler.Segment
module Spec = Zkml_compiler.Layout_spec
module Err = Zkml_util.Err
module B = Zkml_serve.Backends
module SPF = Zkml_serve.Seg_proof

let cache_dir =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "zkml-test-segments-%d" (Unix.getpid ()))

let () = Unix.putenv "ZKML_CACHE_DIR" cache_dir

(* default sample inputs: the same ones the monolithic pipeline (and
   every bench table) proves, so they are in-range for every model's
   lookup tables *)
let qinputs (m : Zoo.model) =
  List.map (T.map (Fx.quantize m.Zoo.cfg)) (Zoo.sample_inputs m)

(* ------------------------------------------------------------------ *)
(* Executor equivalence across the cut *)

let check_exec_equivalence (m : Zoo.model) segments =
  let cfg = m.Zoo.cfg in
  let exec = Q.run cfg m.Zoo.graph ~inputs:(qinputs m) in
  let plan = Seg.plan ~spec:Spec.default ~ncols:8 ~cfg ~segments m.Zoo.graph in
  let n = Array.length plan.Seg.p_segments in
  Alcotest.(check bool)
    (Printf.sprintf "%s: 1 <= %d <= %d" m.Zoo.name n segments)
    true
    (1 <= n && n <= segments);
  Array.iter
    (fun (s : Seg.seg) ->
      let inputs = List.map (fun id -> exec.Q.values.(id)) s.Seg.sg_imports in
      let sexec = Q.run cfg s.Seg.sg_graph ~inputs in
      List.iteri
        (fun i full ->
          let local = List.nth (G.outputs s.Seg.sg_graph) i in
          Alcotest.(check bool)
            (Printf.sprintf "%s segs=%d export node %d" m.Zoo.name segments
               full)
            true
            (T.equal Int.equal exec.Q.values.(full) sexec.Q.values.(local)))
        s.Seg.sg_exports)
    plan.Seg.p_segments

let test_exec_equivalence () =
  List.iter
    (fun m ->
      List.iter (fun segs -> check_exec_equivalence m segs) [ 1; 2; 4 ])
    (Zoo.all ())

(* segment counts beyond the compute-node count clamp instead of
   failing; max_segments is the hard ceiling *)
let test_clamping () =
  let m = Zoo.mnist () in
  let plan =
    Seg.plan ~spec:Spec.default ~ncols:8 ~cfg:m.Zoo.cfg ~segments:1000
      m.Zoo.graph
  in
  Alcotest.(check bool)
    "clamped to max_segments" true
    (Array.length plan.Seg.p_segments <= Seg.max_segments)

(* ------------------------------------------------------------------ *)
(* Seam slices of the instance columns carry the monolithic values *)

let check_instance_slices (m : Zoo.model) segments =
  let cfg = m.Zoo.cfg in
  let spec = Spec.default and ncols = 8 in
  let exec = Q.run cfg m.Zoo.graph ~inputs:(qinputs m) in
  let plan = Seg.plan ~spec ~ncols ~cfg ~segments m.Zoo.graph in
  let insts =
    Array.map
      (fun (s : Seg.seg) ->
        let w =
          B.Pipe_kzg.witness_ints ~spec ~ncols ~k:s.Seg.sg_k ~cfg
            s.Seg.sg_graph
            (List.map (fun id -> exec.Q.values.(id)) s.Seg.sg_imports)
        in
        w.B.Pipe_kzg.w_instance_ints)
      plan.Seg.p_segments
  in
  Array.iter
    (fun (sm : Seg.seam) ->
      let mono = T.data exec.Q.values.(sm.Seg.sm_node) in
      let slice_at (si, off) =
        match Seg.slice_copy insts.(si) ~off ~numel:sm.Seg.sm_numel with
        | Some s -> s
        | None ->
            Alcotest.failf "%s segs=%d seam node %d: slice out of bounds"
              m.Zoo.name segments sm.Seg.sm_node
      in
      let src = slice_at sm.Seg.sm_src in
      Alcotest.(check (array int))
        (Printf.sprintf "%s segs=%d seam node %d src" m.Zoo.name segments
           sm.Seg.sm_node)
        mono src;
      List.iter
        (fun dst ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s segs=%d seam node %d dst" m.Zoo.name segments
               sm.Seg.sm_node)
            src (slice_at dst))
        sm.Seg.sm_dsts)
    plan.Seg.p_seams

let test_instance_slices () =
  List.iter
    (fun m ->
      List.iter (fun segs -> check_instance_slices m segs) [ 2; 4 ])
    [ Zoo.mnist (); Zoo.dlrm () ]

(* ------------------------------------------------------------------ *)
(* Full prove/verify differential *)

let kzg_keys : (string, _) Hashtbl.t = Hashtbl.create 16
let ipa_keys : (string, _) Hashtbl.t = Hashtbl.create 16

let verdict_of m sp = SPF.verdict ~kzg_keys ~ipa_keys m sp

let prove_and_parse (m : Zoo.model) backend seed ~segments =
  let p = SPF.prove m backend seed ~segments in
  match SPF.of_string p.SPF.p_text with
  | Ok sp -> (p, sp)
  | Error e ->
      Alcotest.failf "%s: re-parse of honest segmented proof failed: %s"
        m.Zoo.name (Err.to_string e)

let check_prove (m : Zoo.model) backend segments =
  let p, sp = prove_and_parse m backend 1234 ~segments in
  Alcotest.(check string)
    (Printf.sprintf "%s segs=%d canonical" m.Zoo.name segments)
    p.SPF.p_text (SPF.render sp);
  Alcotest.(check bool)
    (Printf.sprintf "%s segs=%d peak <= mono rows" m.Zoo.name segments)
    true
    (p.SPF.p_peak_rows <= p.SPF.p_mono_rows);
  (match verdict_of m sp with
  | `Accepted -> ()
  | `Rejected ->
      Alcotest.failf "%s segs=%d: honest proof rejected" m.Zoo.name segments
  | `Malformed e ->
      Alcotest.failf "%s segs=%d: honest proof malformed: %s" m.Zoo.name
        segments (Err.to_string e));
  (* same seed, same bytes: the whole pipeline is deterministic *)
  let p2 = SPF.prove m backend 1234 ~segments in
  Alcotest.(check string)
    (Printf.sprintf "%s segs=%d deterministic" m.Zoo.name segments)
    p.SPF.p_text p2.SPF.p_text;
  sp

let expect_rejected name m sp =
  match verdict_of m sp with
  | `Rejected -> ()
  | `Accepted -> Alcotest.failf "%s: tampered proof ACCEPTED" name
  | `Malformed e ->
      Alcotest.failf "%s: expected rejected, got malformed: %s" name
        (Err.to_string e)

let test_differential_mnist () =
  let m = Zoo.mnist () in
  List.iter (fun segs -> ignore (check_prove m B.Kzg segs)) [ 1; 2; 4 ]

let test_differential_mnist_ipa () =
  ignore (check_prove (Zoo.mnist ()) B.Ipa 2)

let test_differential_dlrm () =
  ignore (check_prove (Zoo.dlrm ()) B.Kzg 2)

let test_differential_resnet18 () =
  ignore (check_prove (Zoo.resnet18 ()) B.Kzg 4)

(* seam-digest tamper: flip one bit of a committed seam digest *)
let test_tamper_seam_digest () =
  let m = Zoo.mnist () in
  let _, sp = prove_and_parse m B.Kzg 1234 ~segments:4 in
  Alcotest.(check bool) "has seams" true (Array.length sp.SPF.sp_seams > 0);
  let seams = Array.copy sp.SPF.sp_seams in
  let b = Bytes.of_string seams.(0) in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
  seams.(0) <- Bytes.to_string b;
  expect_rejected "seam digest flip" m { sp with SPF.sp_seams = seams }

(* seam-value tamper: bump an instance int inside a seam slice *)
let test_tamper_seam_value () =
  let m = Zoo.mnist () in
  let _, sp = prove_and_parse m B.Kzg 1234 ~segments:4 in
  let plan =
    Seg.plan ~spec:sp.SPF.sp_spec ~ncols:sp.SPF.sp_ncols ~cfg:sp.SPF.sp_cfg
      ~segments:(Array.length sp.SPF.sp_groups) m.Zoo.graph
  in
  Alcotest.(check bool) "has seams" true (Array.length plan.Seg.p_seams > 0);
  let si, off = plan.Seg.p_seams.(0).Seg.sm_src in
  let groups = Array.copy sp.SPF.sp_groups in
  let inst = Array.copy groups.(si).SPF.sg_instance in
  inst.(off) <- inst.(off) + 1;
  groups.(si) <- { (groups.(si)) with SPF.sg_instance = inst };
  expect_rejected "seam value bump" m { sp with SPF.sp_groups = groups }

(* splice: segment proofs from two honest runs over different inputs.
   Every individual segment proof is honest for its own instance, so
   only the seam checks can (and must) catch the mix. *)
let test_splice_two_honest_runs () =
  let m = Zoo.mnist () in
  let _, sp_a = prove_and_parse m B.Kzg 1234 ~segments:4 in
  let _, sp_b = prove_and_parse m B.Kzg 999 ~segments:4 in
  let groups = Array.copy sp_a.SPF.sp_groups in
  groups.(0) <- sp_b.SPF.sp_groups.(0);
  expect_rejected "spliced segments" m { sp_a with SPF.sp_groups = groups }

(* dropped / duplicated segment: group count no longer matches the
   deterministic plan for this model -> malformed, never accepted *)
let test_dropped_and_duplicated_segment () =
  let m = Zoo.mnist () in
  let _, sp = prove_and_parse m B.Kzg 1234 ~segments:4 in
  let n = Array.length sp.SPF.sp_groups in
  Alcotest.(check bool) "multi-segment" true (n > 1);
  let check name groups =
    match verdict_of m { sp with SPF.sp_groups = groups } with
    | `Accepted -> Alcotest.failf "%s: ACCEPTED" name
    | `Rejected | `Malformed _ -> ()
  in
  check "dropped segment" (Array.sub sp.SPF.sp_groups 0 (n - 1));
  check "duplicated segment"
    (Array.append sp.SPF.sp_groups [| sp.SPF.sp_groups.(n - 1) |])

let () =
  Alcotest.run "segments"
    [
      ( "plan",
        [
          Alcotest.test_case "exec_equivalence_all_models" `Quick
            test_exec_equivalence;
          Alcotest.test_case "segment_count_clamps" `Quick test_clamping;
          Alcotest.test_case "instance_slices" `Quick test_instance_slices;
        ] );
      ( "differential",
        [
          Alcotest.test_case "mnist_kzg_1_2_4" `Quick test_differential_mnist;
          Alcotest.test_case "mnist_ipa_2" `Quick test_differential_mnist_ipa;
          Alcotest.test_case "dlrm_kzg_2" `Quick test_differential_dlrm;
          Alcotest.test_case "resnet18_kzg_4" `Slow
            test_differential_resnet18;
        ] );
      ( "tamper",
        [
          Alcotest.test_case "seam_digest_flip" `Quick
            test_tamper_seam_digest;
          Alcotest.test_case "seam_value_bump" `Quick test_tamper_seam_value;
          Alcotest.test_case "splice_two_honest_runs" `Quick
            test_splice_two_honest_runs;
          Alcotest.test_case "dropped_duplicated_segment" `Quick
            test_dropped_and_duplicated_segment;
        ] );
    ]
