(* Wire-protocol unit tests: qcheck round-trip over the full request and
   response space, exhaustive truncated-prefix totality on concrete
   frames, and pinned classifications for the malformed shapes the
   daemon must answer (never die on): bad magic, over-cap length,
   unknown kind, trailing bytes, duplicated headers. *)

module Wire = Zkml_serve.Wire
module B = Zkml_serve.Backends
module Err = Zkml_util.Err

let code_name e = Err.code_name e.Err.code

(* ------------------------------------------------------------------ *)
(* generators *)

let gen_name =
  QCheck.Gen.(
    let* n = int_range 0 24 in
    string_size ~gen:(char_range 'a' 'z') (return n))

let gen_blob =
  QCheck.Gen.(
    let* n = int_range 0 200 in
    string_size ~gen:(char_range '\000' '\255') (return n))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        return Wire.Ping;
        return Wire.Shutdown;
        (let* tenant = gen_name in
         let* backend = oneofl [ B.Kzg; B.Ipa ] in
         let* model = gen_name in
         let* nseeds = int_range 1 Wire.max_batch in
         let* seeds = list_size (return nseeds) (map Int64.of_int int) in
         return (Wire.Prove { tenant; backend; model; seeds }));
        (let* tenant = gen_name in
         let* model = gen_name in
         let* proof = gen_blob in
         return (Wire.Verify { tenant; model; proof }));
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        return Wire.Pong;
        return Wire.Overloaded;
        return Wire.Stopping;
        (let* n = int_range 0 8 in
         let* texts = list_size (return n) gen_blob in
         return (Wire.Proofs texts));
        (let* code = int_range 0 2 in
         let* detail = gen_name in
         return (Wire.Verdict { code; detail }));
      ])

(* ------------------------------------------------------------------ *)
(* properties *)

let prop_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"decode_request (encode_request r) = r"
    (QCheck.make gen_request)
    (fun r ->
      match Wire.decode_request (Wire.encode_request r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Err.to_string e))

let prop_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"decode_response (encode_response r) = r"
    (QCheck.make gen_response)
    (fun r ->
      match Wire.decode_response (Wire.encode_response r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Err.to_string e))

(* The encoding is canonical: decoding any bytes that succeed must
   re-encode to exactly those bytes (the fuzz corpus's soundness
   invariant, checked here on the valid side). *)
let prop_canonical =
  QCheck.Test.make ~count:500 ~name:"encode_any (decode_any s) = s"
    (QCheck.make (QCheck.Gen.oneof
                    [ QCheck.Gen.map Wire.encode_request gen_request;
                      QCheck.Gen.map Wire.encode_response gen_response ]))
    (fun s ->
      match Wire.decode_any s with
      | Ok v -> String.equal (Wire.encode_any v) s
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Err.to_string e))

(* ------------------------------------------------------------------ *)
(* totality: every truncated prefix is a typed error, never an
   exception, and never an accept *)

let concrete_frames () =
  List.map Wire.encode_request
    [ Wire.Ping;
      Wire.Prove
        { tenant = "acme"; backend = B.Ipa; model = "mnist";
          seeds = [ 1L; -7L; Int64.max_int ] };
      Wire.Verify { tenant = "acme"; model = "dlrm"; proof = "\x00\xff\x01" };
      Wire.Shutdown ]
  @ List.map Wire.encode_response
      [ Wire.Pong; Wire.Proofs [ "zkml-proof v1\n"; "" ];
        Wire.Verdict { code = 1; detail = "proof rejected" };
        Wire.Overloaded; Wire.Stopping ]

let test_truncated_prefixes () =
  List.iter
    (fun frame ->
      for len = 0 to String.length frame - 1 do
        let prefix = String.sub frame 0 len in
        match Wire.decode_any prefix with
        | Ok _ ->
            Alcotest.failf "prefix %d/%d of a frame decoded Ok" len
              (String.length frame)
        | Error e ->
            (* every prefix cuts a fixed-width read or the payload *)
            Alcotest.(check string)
              (Printf.sprintf "prefix %d classified" len)
              "truncated" (code_name e)
        | exception exn ->
            Alcotest.failf "prefix %d/%d escaped: %s" len
              (String.length frame) (Printexc.to_string exn)
      done)
    (concrete_frames ())

let test_malformed_shapes () =
  let ping = Wire.encode_request Wire.Ping in
  let expect what want bytes =
    match Wire.decode_any bytes with
    | Ok _ -> Alcotest.failf "%s decoded Ok" what
    | Error e -> Alcotest.(check string) what want (code_name e)
  in
  (* corrupted magic *)
  expect "bad magic" "bad_header"
    ("XKW1" ^ String.sub ping 4 (String.length ping - 4));
  (* length far over the frame cap *)
  expect "oversized length" "out_of_range" "ZKW1\x01\x7f\xff\xff\xff";
  (* header claims more payload than present *)
  expect "short payload" "truncated" "ZKW1\x01\x00\x00\x00\x05ab";
  (* unknown request and response kinds *)
  expect "unknown request kind" "unknown_variant"
    (Wire.encode_frame ~kind:0x0f "");
  expect "unknown response kind" "unknown_variant"
    (Wire.encode_frame ~kind:0x7f "");
  (* a valid frame followed by junk: one message per decode *)
  expect "trailing byte" "trailing_data" (ping ^ "x");
  expect "duplicate header" "trailing_data" (ping ^ ping);
  (* payload longer than the fields it claims *)
  expect "trailing payload bytes" "trailing_data"
    (Wire.encode_frame ~kind:0x01 "junk");
  (* a Prove with a backend tag outside the closed universe *)
  (let buf = Buffer.create 32 in
   Buffer.add_string buf "\x00\x04acme";
   (* tenant *)
   Buffer.add_char buf '\x07';
   (* backend tag 7: not kzg(0) / ipa(1) *)
   Buffer.add_string buf "\x00\x05mnist";
   Buffer.add_string buf "\x00\x01";
   Buffer.add_string buf (String.make 8 '\x00');
   expect "bad backend tag" "unknown_variant"
     (Wire.encode_frame ~kind:0x02 (Buffer.contents buf)));
  (* zero seeds: the batch bounds are 1..max_batch *)
  (let buf = Buffer.create 16 in
   Buffer.add_string buf "\x00\x04acme";
   Buffer.add_char buf '\x00';
   Buffer.add_string buf "\x00\x05mnist";
   Buffer.add_string buf "\x00\x00";
   (* seed count 0 *)
   expect "zero seeds" "out_of_range"
     (Wire.encode_frame ~kind:0x02 (Buffer.contents buf)));
  (* a Verdict with a code outside 0..2 *)
  (let buf = Buffer.create 8 in
   Buffer.add_char buf '\x03';
   Buffer.add_string buf "\x00\x00\x00\x00";
   expect "verdict code 3" "out_of_range"
     (Wire.encode_frame ~kind:0x13 (Buffer.contents buf)))

(* The header parser alone must also be total over short inputs. *)
let test_header_totality () =
  for len = 0 to Wire.header_len - 1 do
    match Wire.parse_header (String.make len 'Z') with
    | Ok _ -> Alcotest.failf "header of %d bytes parsed" len
    | Error _ -> ()
  done

let () =
  Alcotest.run "wire"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest ~long:false prop_request_roundtrip;
          QCheck_alcotest.to_alcotest ~long:false prop_response_roundtrip;
          QCheck_alcotest.to_alcotest ~long:false prop_canonical;
        ] );
      ( "totality",
        [
          Alcotest.test_case "all truncated prefixes" `Quick
            test_truncated_prefixes;
          Alcotest.test_case "malformed shapes" `Quick test_malformed_shapes;
          Alcotest.test_case "header totality" `Quick test_header_totality;
        ] );
    ]
