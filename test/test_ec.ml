(* SHA-256 vectors, curve group laws (Pallas + simulated), and MSM
   consistency against the naive sum. *)

let test_sha256_vectors () =
  let check input expected =
    Alcotest.(check string) input expected (Zkml_util.Sha256.hex_digest input)
  in
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  (* exercise multi-block padding boundary *)
  check (String.make 64 'a')
    "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"

module Group_suite (G : Zkml_ec.Group_intf.S) = struct
  module M = Zkml_ec.Msm.Make (G)

  let rng = Zkml_util.Rng.create 23L

  let check_eq msg a b = Alcotest.(check bool) msg true (G.equal a b)

  let test_group_laws () =
    let p = G.random rng and q = G.random rng and r = G.random rng in
    check_eq "assoc" (G.add (G.add p q) r) (G.add p (G.add q r));
    check_eq "comm" (G.add p q) (G.add q p);
    check_eq "identity" p (G.add p G.zero);
    check_eq "inverse" G.zero (G.add p (G.neg p));
    check_eq "double" (G.double p) (G.add p p)

  let test_scalar_mul () =
    let p = G.random rng in
    let three = G.Scalar.of_int 3 in
    check_eq "3p" (G.add p (G.add p p)) (G.mul p three);
    check_eq "0p" G.zero (G.mul p G.Scalar.zero);
    check_eq "1p" p (G.mul p G.Scalar.one);
    (* distributivity over scalar addition *)
    let a = G.Scalar.random rng and b = G.Scalar.random rng in
    check_eq "(a+b)P = aP + bP"
      (G.mul p (G.Scalar.add a b))
      (G.add (G.mul p a) (G.mul p b))

  let test_serialization () =
    let p = G.random rng in
    Alcotest.(check int) "size" G.size_bytes (String.length (G.to_bytes p));
    Alcotest.(check bool)
      "distinct points distinct bytes" false
      (String.equal (G.to_bytes p) (G.to_bytes (G.double p)))

  let test_derive_generators () =
    let gens = G.derive_generators "test" 8 in
    Alcotest.(check int) "count" 8 (Array.length gens);
    (* deterministic *)
    let gens' = G.derive_generators "test" 8 in
    Array.iteri (fun i g -> check_eq "deterministic" g gens'.(i)) gens;
    (* distinct *)
    for i = 0 to 6 do
      Alcotest.(check bool) "distinct" false (G.equal gens.(i) gens.(i + 1))
    done

  let test_msm_matches_naive () =
    List.iter
      (fun n ->
        let points = Array.init n (fun _ -> G.random rng) in
        let scalars = Array.init n (fun _ -> G.Scalar.random rng) in
        check_eq
          (Printf.sprintf "msm n=%d" n)
          (M.naive points scalars)
          (M.pippenger points scalars))
      [ 1; 2; 7; 33; 100 ]

  (* Boundary scalars the signed-digit recoding and GLV split must get
     right: 0, 1, -1 (= order - 1), +-small, and values with all-ones
     digit patterns. Duplicate and negated points stress the affine
     scheduler's collision queue (same bucket repeatedly). *)
  let test_msm_boundary_scalars () =
    let s = G.Scalar.of_int in
    let specials =
      [| G.Scalar.zero; G.Scalar.one; G.Scalar.neg G.Scalar.one; s 2;
         G.Scalar.neg (s 2); s 0xFFFF; G.Scalar.neg (s 0xFFFF);
         G.Scalar.inv (s 3); G.Scalar.random rng
      |]
    in
    let base = G.random rng in
    (* enough duplicates of one point to force every path past the
       affine/GLV threshold *)
    let n = 80 in
    let points =
      Array.init n (fun i -> if i mod 3 = 0 then base else G.random rng)
    in
    let scalars =
      Array.init n (fun i -> specials.(i mod Array.length specials))
    in
    check_eq "boundary msm" (M.naive points scalars)
      (M.pippenger points scalars);
    (* all-identical points: every digit lands in the same bucket *)
    let points = Array.make n base in
    check_eq "duplicate-point msm" (M.naive points scalars)
      (M.pippenger points scalars);
    (* identity points mixed in *)
    let points = Array.init n (fun i -> if i mod 4 = 0 then G.zero else base) in
    check_eq "identity-point msm" (M.naive points scalars)
      (M.pippenger points scalars)

  (* The explicit-window affine path (with GLV when available) against
     naive, across window widths including degenerate ones. *)
  let test_msm_affine_windows () =
    let n = 70 in
    let points = Array.init n (fun _ -> G.random rng) in
    let scalars = Array.init n (fun _ -> G.Scalar.random rng) in
    let reference = M.naive points scalars in
    List.iter
      (fun c ->
        check_eq
          (Printf.sprintf "affine msm c=%d" c)
          reference
          (M.pippenger_affine_with_window ~c points scalars))
      [ 2; 3; 8; 13 ]

  let test_affine_kernels () =
    (* batch_of_group / to_group round-trip, including the identity *)
    let pts = Array.init 17 (fun i -> if i = 5 then G.zero else G.random rng) in
    let aff = G.Affine.batch_of_group pts in
    Array.iteri
      (fun i a ->
        check_eq "affine roundtrip" pts.(i) (G.Affine.to_group a);
        Alcotest.(check bool)
          "infinity flag" (G.is_zero pts.(i))
          (G.Affine.is_infinity a))
      aff;
    (* neg is an involution on the group image and leaves the argument
       alone *)
    let a = G.Affine.batch_of_group [| G.random rng |] in
    let n = G.Affine.neg a.(0) in
    check_eq "affine neg" (G.neg (G.Affine.to_group a.(0)))
      (G.Affine.to_group n);
    (* batch_add against group addition over every special case: copy
       into an empty accumulator, generic add, doubling, cancellation,
       and identity sources *)
    let p = G.random rng and q = G.random rng in
    let cells pts = G.Affine.batch_of_group pts in
    let acc = cells [| G.zero; p; p; p; p |] in
    let src = cells [| p; q; p; G.neg p; G.zero |] in
    let expected = [| p; G.add p q; G.double p; G.zero; p |] in
    G.Affine.batch_add acc ~dst:[| 0; 1; 2; 3; 4 |] ~src ~len:5;
    Array.iteri
      (fun i e ->
        check_eq
          (Printf.sprintf "batch_add case %d" i)
          e
          (G.Affine.to_group acc.(i)))
      expected;
    (* chaining: accumulate k random points into one cell one at a time
       and compare with the group sum *)
    let pts = Array.init 9 (fun _ -> G.random rng) in
    let srcs = cells pts in
    let acc = [| G.Affine.infinity () |] in
    Array.iter
      (fun s -> G.Affine.batch_add acc ~dst:[| 0 |] ~src:[| s |] ~len:1)
      srcs;
    check_eq "chained batch_add"
      (Array.fold_left G.add G.zero pts)
      (G.Affine.to_group acc.(0))

  let suite =
    [ Alcotest.test_case "group_laws" `Quick test_group_laws;
      Alcotest.test_case "scalar_mul" `Quick test_scalar_mul;
      Alcotest.test_case "serialization" `Quick test_serialization;
      Alcotest.test_case "derive_generators" `Quick test_derive_generators;
      Alcotest.test_case "msm_matches_naive" `Quick test_msm_matches_naive;
      Alcotest.test_case "msm_boundary_scalars" `Quick
        test_msm_boundary_scalars;
      Alcotest.test_case "msm_affine_windows" `Quick test_msm_affine_windows;
      Alcotest.test_case "affine_kernels" `Quick test_affine_kernels
    ]
end

module Pallas_suite = Group_suite (Zkml_ec.Pallas)
module Sim_suite = Group_suite (Zkml_ec.Simulated.Make (Zkml_ff.Fp61))

(* Pallas-specific: the generator is on the curve and has order q
   (q * G = identity). *)
let test_pallas_order () =
  let open Zkml_ec.Pallas in
  let q_minus_1 = Scalar.neg Scalar.one in
  let p = mul generator q_minus_1 in
  Alcotest.(check bool) "(q-1)G = -G" true (equal p (neg generator));
  Alcotest.(check bool)
    "qG = 0" true
    (is_zero (add p generator))

(* GLV decomposition on Pallas: the endomorphism must be additive and
   of order 3, and every split must recombine to the original scalar —
   verified on the group, k*P = k1*(+-P) + k2*(+-phi P) — with both
   halves near half-width. *)
let test_pallas_glv () =
  let open Zkml_ec.Pallas in
  let rng = Zkml_util.Rng.create 31L in
  match endo with
  | None -> Alcotest.fail "Pallas must expose a GLV endomorphism"
  | Some (phi, split) ->
      let p = random rng and q = random rng in
      Alcotest.(check bool)
        "phi additive" true
        (equal (phi (add p q)) (add (phi p) (phi q)));
      Alcotest.(check bool)
        "phi^3 = id" true
        (equal (phi (phi (phi p))) p);
      Alcotest.(check bool) "phi <> id" false (equal (phi p) p);
      Alcotest.(check bool) "phi 0 = 0" true (is_zero (phi zero));
      let scalar_of_limbs limbs =
        let two64 = Scalar.pow_int (Scalar.of_int 2) 64 in
        let acc = ref Scalar.zero in
        for i = Array.length limbs - 1 downto 0 do
          acc := Scalar.add (Scalar.mul !acc two64) (Scalar.of_int64 limbs.(i))
        done;
        !acc
      in
      let check_split k =
        let s = split k in
        let open Zkml_ec.Group_intf in
        Alcotest.(check bool)
          "k1 half-width" true
          (Zkml_ff.Limbs.bits s.k1 <= 130);
        Alcotest.(check bool)
          "k2 half-width" true
          (Zkml_ff.Limbs.bits s.k2 <= 130);
        let base = random rng in
        let t1 = mul base (scalar_of_limbs s.k1) in
        let t1 = if s.k1_neg then neg t1 else t1 in
        let t2 = mul (phi base) (scalar_of_limbs s.k2) in
        let t2 = if s.k2_neg then neg t2 else t2 in
        Alcotest.(check bool)
          "split recombines" true
          (equal (mul base k) (add t1 t2))
      in
      for _ = 1 to 40 do
        check_split (Scalar.random rng)
      done;
      List.iter check_split
        [ Scalar.zero; Scalar.one; Scalar.neg Scalar.one; Scalar.of_int 2;
          Scalar.neg (Scalar.of_int 2); Scalar.inv (Scalar.of_int 3)
        ]

let () =
  Alcotest.run "ec"
    [ ("sha256", [ Alcotest.test_case "vectors" `Quick test_sha256_vectors ]);
      ("pallas", Pallas_suite.suite);
      ("simulated", Sim_suite.suite);
      ("pallas_order", [ Alcotest.test_case "order" `Quick test_pallas_order ]);
      ("pallas_glv", [ Alcotest.test_case "glv" `Quick test_pallas_glv ])
    ]
