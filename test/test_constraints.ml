(* Constraint-IR and under-constraint-detector tests.

   Covers the typed IR's reference checker ({!Cs.Check}), the
   second-witness detector ({!Constraint_check}), the construction-time
   lookup-default validation in {!Layouter.add_lookup}, the bitdecomp
   ReLU booleanity regression, the optimizer tie-break, and a
   differential property: on random small circuits the reference
   checker and the full prove/verify pipeline accept exactly the same
   witnesses. *)

module C = Zkml_plonkish.Circuit
module Cs = Zkml_plonkish.Cs
module E = Zkml_plonkish.Expr
module L = Zkml_compiler.Layouter
module Lo = Zkml_compiler.Lower
module Fx = Zkml_fixed.Fixed
module Spec = Zkml_compiler.Layout_spec
module Opt = Zkml_compiler.Optimizer
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Proto = Zkml_plonkish.Protocol.Make (Kzg)
module F = Zkml_ff.Fp61
module CC = Zkml_compiler.Constraint_check.Make (F)
module Chk = CC.Chk

let cfg = { Fx.scale_bits = 5; table_bits = 9 }
let blinding = 5
let params = lazy (Kzg.setup ~max_size:(1 lsl 11) ~seed:"constraint-test")

let build ?(ncols = 9) emit =
  let ly = L.create ~ncols ~cfg ~counting:false in
  emit ly;
  let k = L.optimal_k ly ~blinding in
  L.finalize ly ~blinding ~k

let grids_of (built : L.built) =
  {
    Chk.n = 1 lsl built.L.circuit.C.k;
    usable = C.last_row built.L.circuit;
    fixed = Array.map (Array.map F.of_int) built.L.fixed;
    advice = Array.map (Array.map F.of_int) built.L.advice;
    instance = [| Array.map F.of_int built.L.instance_col |];
  }

let cs_of (built : L.built) = Cs.map_const F.of_int built.L.cs

let circuit_f (built : L.built) =
  let c = built.L.circuit in
  {
    C.k = c.C.k;
    num_fixed = c.C.num_fixed;
    is_selector = c.C.is_selector;
    advice_phases = c.C.advice_phases;
    num_instance = c.C.num_instance;
    num_challenges = c.C.num_challenges;
    gates =
      List.map
        (fun (g : int C.gate) ->
          { C.gate_name = g.C.gate_name;
            polys = List.map (E.map_const F.of_int) g.C.polys
          })
        c.C.gates;
    lookups =
      List.map
        (fun (l : int C.lookup) ->
          { C.lookup_name = l.C.lookup_name;
            inputs = List.map (E.map_const F.of_int) l.C.inputs;
            tables = List.map (E.map_const F.of_int) l.C.tables
          })
        c.C.lookups;
    copies = c.C.copies;
    blinding = c.C.blinding;
  }

let keys_of (built : L.built) =
  Proto.keygen (Lazy.force params) (circuit_f built)
    ~fixed:(Array.map (Array.map F.of_int) built.L.fixed)

(* Prove with the given advice grid and verify against the honest keys
   and instance. The prover refusing (raising) counts as a rejection. *)
let protocol_accepts (built : L.built) keys ~advice =
  let instance = [| Array.map F.of_int built.L.instance_col |] in
  match
    Proto.prove (Lazy.force params) keys ~instance
      ~advice:(fun _ -> Array.map Array.copy advice)
      ~rng:(Zkml_util.Rng.create 5L)
  with
  | exception _ -> false
  | proof -> Proto.verify (Lazy.force params) keys ~instance proof

let check_no_violations name vs =
  Alcotest.(check (list string)) name [] (List.map Cs.violation_to_string vs)

(* ------------------------------------------------------------------ *)
(* Detector: the whole gadget library is fully constrained *)

let test_gadget_suite_clean () =
  List.iter
    (fun (name, r) ->
      check_no_violations (name ^ ": honest witness") r.CC.r_honest;
      (match r.CC.r_findings with
      | [] -> ()
      | f :: _ -> Alcotest.failf "%s: %s" name (CC.pp_finding f));
      Alcotest.(check bool) (name ^ ": perturbed some cells") true
        (r.CC.r_cells > 0))
    (CC.gadget_suite ~seed:99L ~cfg ())

(* Detector efficacy: a tracked cell no constraint reads must be
   flagged as a second witness. *)
let test_detector_flags_free_cell () =
  let built =
    build ~ncols:4 (fun ly ->
        let register s_col _lanes =
          L.add_gate ly ~sel:s_col "leaky" [ E.Sub (E.advice 1, E.advice 0) ]
        in
        let row, base = L.alloc_lane ly ~kind:"leaky" ~width:4 ~register in
        ignore (L.put ly ~row ~col:base ~value:3);
        ignore (L.put ly ~row ~col:(base + 1) ~value:3);
        ignore (L.put ly ~row ~col:(base + 2) ~value:7))
  in
  let r = CC.check_built ~seed:7L built in
  check_no_violations "honest witness" r.CC.r_honest;
  match r.CC.r_findings with
  | [ f ] ->
      Alcotest.(check int) "free cell column" 2 f.CC.f_col;
      Alcotest.(check string) "owning gadget" "leaky" f.CC.f_gadget
  | fs ->
      Alcotest.failf "expected exactly the free cell flagged, got %d findings"
        (List.length fs)

(* Detector efficacy on the classic gadget bug: a max-style gate
   (c - a)(c - b) = 0 without the range lookups that pick the larger
   root. The output can move to the other root — a second witness. *)
let test_detector_flags_missing_range () =
  let built =
    build ~ncols:4 (fun ly ->
        let register s_col _lanes =
          L.add_gate ly ~sel:s_col "bad_max"
            [
              E.Mul
                ( E.Sub (E.advice 2, E.advice 0),
                  E.Sub (E.advice 2, E.advice 1) );
            ]
        in
        let row, base = L.alloc_lane ly ~kind:"bad_max" ~width:4 ~register in
        ignore (L.put ly ~track:false ~row ~col:base ~value:0);
        ignore (L.put ly ~track:false ~row ~col:(base + 1) ~value:1);
        ignore (L.put ly ~row ~col:(base + 2) ~value:1))
  in
  let r = CC.check_built ~seed:7L built in
  check_no_violations "honest witness" r.CC.r_honest;
  match r.CC.r_findings with
  | [ f ] ->
      Alcotest.(check int) "unranged output column" 2 f.CC.f_col;
      Alcotest.(check string) "second witness is the other root"
        (F.to_hex F.zero)
        (F.to_hex f.CC.f_alternative)
  | fs ->
      Alcotest.failf "expected the unranged max output flagged, got %d findings"
        (List.length fs)

(* ------------------------------------------------------------------ *)
(* Satellite: padding rows and the range table's 0 entry *)

let test_padding_rows_and_range_zero () =
  let rcol = ref (-1) in
  let built =
    build ~ncols:9 (fun ly ->
        List.iter
          (fun v ->
            ignore (Lo.emit_divround ly (Lo.const_opnd ly v) ~divisor:7))
          [ 0; 13; -9; 20 ];
        rcol := Hashtbl.find ly.L.table_cols "range")
  in
  let grids = grids_of built and cs = cs_of built in
  (* the circuit really has padding rows between content and blinding *)
  Alcotest.(check bool) "padding rows exist" true
    (grids.Chk.usable > built.L.rows_content);
  Alcotest.(check string) "range table contains 0" (F.to_hex F.zero)
    (F.to_hex grids.Chk.fixed.(!rcol).(0));
  check_no_violations "honest witness (padding rows included)"
    (Chk.check cs grids);
  (* remove 0 from the range table: every row not owned by the gadget
     reads the gated input as 0 and must now fail, including padding *)
  grids.Chk.fixed.(!rcol).(0) <- F.one;
  let vs = Chk.check cs grids in
  Alcotest.(check bool) "default tuple flagged" true
    (List.exists (function Cs.V_lookup_default _ -> true | _ -> false) vs);
  Alcotest.(check bool) "a padding row fails the lookup" true
    (List.exists
       (function
         | Cs.V_lookup { row; _ } -> row >= built.L.rows_content
         | _ -> false)
       vs)

let test_add_lookup_rejects_missing_default () =
  let ly = L.create ~ncols:4 ~cfg ~counting:false in
  let tcol = L.new_table ly "no_zero" [| [| 1; 2; 3 |] |] in
  let sel = L.new_selector ly "t" in
  Alcotest.check_raises "plainly-gated input needs 0 in the table"
    (L.Layout_invalid "lookup 'bad': disabled-row default tuple not in table")
    (fun () -> L.add_lookup ly ~sel "bad" [ Cs.Li_gated (E.advice 0) ] [ tcol ]);
  (* a default that is a real table entry registers fine *)
  L.add_lookup ly ~sel "good" [ Cs.Li_gated_default (E.advice 0, 2) ] [ tcol ]

(* ------------------------------------------------------------------ *)
(* Satellite: bitdecomp ReLU booleanity / bit-flip second witness *)

let test_relu_bit_flip_rejected () =
  let tb = cfg.Fx.table_bits in
  let built =
    build
      ~ncols:(2 * (tb + 2))
      (fun ly ->
        List.iter
          (fun v ->
            let o = Lo.emit_relu_bitdecomp ly (Lo.const_opnd ly v) in
            L.expose ly (Option.get o.Lo.cell) o.Lo.v)
          [ -5; 0; 7 ])
  in
  let grids = grids_of built and cs = cs_of built in
  check_no_violations "honest witness" (Chk.check cs grids);
  let keys = keys_of built in
  Alcotest.(check bool) "honest proof verifies" true
    (protocol_accepts built keys ~advice:grids.Chk.advice);
  (* flipping any single decomposition bit of the first lane must break
     a constraint: booleanity keeps the cell in {0,1} and the offset
     recomposition pins the weighted bit sum *)
  for row = 0 to built.L.rows_content - 1 do
    for i = 0 to tb - 1 do
      let col = 2 + i in
      let v = grids.Chk.advice.(col).(row) in
      grids.Chk.advice.(col).(row) <- (if F.is_zero v then F.one else F.zero);
      Alcotest.(check bool)
        (Printf.sprintf "bit %d flip on row %d caught" i row)
        false (Chk.accepts cs grids);
      grids.Chk.advice.(col).(row) <- v
    done
  done;
  (* one representative bit flip through the real prover/verifier *)
  let flipped = Array.map Array.copy grids.Chk.advice in
  flipped.(2).(0) <-
    (if F.is_zero flipped.(2).(0) then F.one else F.zero);
  Alcotest.(check bool) "flipped-bit witness rejected by protocol" false
    (protocol_accepts built keys ~advice:flipped);
  (* a non-boolean bit value trips the explicit booleanity constraint *)
  let nonbool = Array.map Array.copy grids.Chk.advice in
  nonbool.(2).(0) <- F.of_int 2;
  Alcotest.(check bool) "non-boolean bit caught by reference checker" false
    (Chk.accepts cs { grids with Chk.advice = nonbool });
  Alcotest.(check bool) "non-boolean bit rejected by protocol" false
    (protocol_accepts built keys ~advice:nonbool)

(* ------------------------------------------------------------------ *)
(* Differential property: reference checker == prove/verify *)

(* A random small circuit over the real gadget library: binary
   arithmetic, max (range lookups), sums, relu lookups, with operand
   reuse inducing copy constraints. Values are kept small enough that
   every range/act lookup stays in table. *)
let random_circuit st =
  let nops = 2 + Random.State.int st 5 in
  build ~ncols:9 (fun ly ->
      let pool =
        ref
          (List.map
             (fun v -> Lo.const_opnd ly v)
             [ Random.State.int st 15 - 7; Random.State.int st 15 - 7; 5 ])
      in
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      let push (o : Lo.opnd) = if abs o.Lo.v <= 120 then pool := o :: !pool in
      for _ = 1 to nops do
        match Random.State.int st 5 with
        | 0 -> push (Lo.emit_binary_custom ly Lo.Badd (pick ()) (pick ()))
        | 1 -> push (Lo.emit_binary_custom ly Lo.Bsub (pick ()) (pick ()))
        | 2 -> push (Lo.emit_binary_custom ly Lo.Bmax (pick ()) (pick ()))
        | 3 -> push (Lo.emit_sum ly [ pick (); pick (); pick () ])
        | 4 ->
            let x = pick () in
            if x.Lo.v >= Fx.table_min cfg && x.Lo.v <= Fx.table_max cfg then
              push (Lo.emit_act_lookup ly "relu" Fx.relu x)
            else push (Lo.emit_binary_custom ly Lo.Badd x (Lo.const_opnd ly 1))
        | _ -> assert false
      done;
      List.iteri
        (fun i (o : Lo.opnd) ->
          if i < 2 then
            match o.Lo.cell with
            | Some cell -> L.expose ly cell o.Lo.v
            | None -> ())
        !pool)

let prop_reference_matches_protocol seed =
  let st = Random.State.make [| seed |] in
  let built = random_circuit st in
  let grids = grids_of built and cs = cs_of built in
  let keys = keys_of built in
  let agree advice =
    let ref_ok = Chk.accepts cs { grids with Chk.advice = advice } in
    let proto_ok = protocol_accepts built keys ~advice in
    if ref_ok <> proto_ok then
      QCheck.Test.fail_reportf
        "seed %d: reference checker says %b, protocol says %b" seed ref_ok
        proto_ok;
    ref_ok
  in
  if not (agree grids.Chk.advice) then
    QCheck.Test.fail_reportf "seed %d: honest witness rejected by both" seed;
  (* random single-cell perturbations anywhere in the content region:
     both sides must reach the same verdict (almost always reject;
     agreeing accepts — e.g. a dead prefill cell — are equally fine) *)
  for _ = 1 to 2 do
    let col = Random.State.int st 9 in
    let row = Random.State.int st built.L.rows_content in
    let advice = Array.map Array.copy grids.Chk.advice in
    advice.(col).(row) <-
      F.add advice.(col).(row) (F.of_int (1 + Random.State.int st 5));
    ignore (agree advice)
  done;
  true

let prop_tests =
  [
    QCheck.Test.make ~name:"reference checker agrees with prove/verify"
      ~count:8
      QCheck.(int_range 0 10_000)
      prop_reference_matches_protocol;
  ]

let () =
  Alcotest.run "constraints"
    ([
       ( "detector",
         [
           Alcotest.test_case "gadget suite clean" `Quick
             test_gadget_suite_clean;
           Alcotest.test_case "flags free cell" `Quick
             test_detector_flags_free_cell;
           Alcotest.test_case "flags missing range" `Quick
             test_detector_flags_missing_range;
         ] );
       ( "lookup_defaults",
         [
           Alcotest.test_case "padding rows and range zero" `Quick
             test_padding_rows_and_range_zero;
           Alcotest.test_case "add_lookup validation" `Quick
             test_add_lookup_rejects_missing_default;
         ] );
       ( "relu_bits",
         [
           Alcotest.test_case "bit flip rejected" `Quick
             test_relu_bit_flip_rejected;
         ] );
     ]
    @ [
        ( "differential",
          List.map (QCheck_alcotest.to_alcotest ~long:false) prop_tests );
      ])
