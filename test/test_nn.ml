(* Tensor, executor, trainer and serialization tests. *)

module T = Zkml_tensor.Tensor
module G = Zkml_nn.Graph
module FE = Zkml_nn.Float_exec
module QE = Zkml_nn.Quant_exec
module Fx = Zkml_fixed.Fixed

let feq = Alcotest.(check (float 1e-9))
let feq_loose eps msg a b = Alcotest.(check (float eps)) msg a b

(* --- tensor --- *)

let test_tensor_basics () =
  let t = T.init [| 2; 3 |] float_of_int in
  feq "get" 5.0 (T.get t [| 1; 2 |]);
  let tt = T.transpose t [| 1; 0 |] in
  Alcotest.(check (array int)) "transposed shape" [| 3; 2 |] (T.shape tt);
  feq "transposed" 5.0 (T.get tt [| 2; 1 |]);
  feq "transposed2" 1.0 (T.get tt [| 1; 0 |]);
  let r = T.reshape t [| 3; -1 |] in
  Alcotest.(check (array int)) "reshape infer" [| 3; 2 |] (T.shape r)

let test_tensor_concat_slice_pad () =
  let a = T.init [| 2; 2 |] float_of_int in
  let b = T.map (fun x -> x +. 10.0) a in
  let c = T.concat 1 [ a; b ] in
  Alcotest.(check (array int)) "concat shape" [| 2; 4 |] (T.shape c);
  feq "concat val" 11.0 (T.get c [| 0; 3 |]);
  let s = T.slice c ~starts:[| 0; 2 |] ~sizes:[| 2; 2 |] in
  feq "slice = b" 13.0 (T.get s [| 1; 1 |]);
  let p = T.pad a ~pads:[| (1, 0); (0, 1) |] ~value:(-1.0) in
  Alcotest.(check (array int)) "pad shape" [| 3; 3 |] (T.shape p);
  feq "pad border" (-1.0) (T.get p [| 0; 0 |]);
  feq "pad content" 3.0 (T.get p [| 2; 1 |])

(* --- float executor --- *)

let test_fc () =
  let g = G.create "fc" in
  let x = G.input g [| 1; 3 |] in
  let w = G.weight g (T.of_array [| 3; 2 |] [| 1.; 2.; 3.; 4.; 5.; 6. |]) in
  let b = G.weight g (T.of_array [| 2 |] [| 0.5; -0.5 |]) in
  let y = G.fully_connected g x w b in
  G.mark_output g y;
  let values =
    FE.run g ~inputs:[ T.of_array [| 1; 3 |] [| 1.; 1.; 2. |] ]
  in
  (* [1,1,2] . [[1,2],[3,4],[5,6]] = [1+3+10, 2+4+12] = [14, 18] + bias *)
  feq "y0" 14.5 (T.get values.(y) [| 0; 0 |]);
  feq "y1" 17.5 (T.get values.(y) [| 0; 1 |])

let test_conv () =
  let g = G.create "conv" in
  let x = G.input g [| 1; 3; 3; 1 |] in
  (* 2x2 all-ones kernel, valid padding: output = 2x2 window sums *)
  let w = G.weight g (T.create [| 2; 2; 1; 1 |] 1.0) in
  let b = G.weight g (T.create [| 1 |] 0.0) in
  let y = G.conv2d ~padding:Zkml_nn.Op.Valid g x w b in
  G.mark_output g y;
  let img = T.init [| 1; 3; 3; 1 |] float_of_int in
  let values = FE.run g ~inputs:[ img ] in
  Alcotest.(check (array int)) "shape" [| 1; 2; 2; 1 |] (T.shape values.(y));
  (* window at (0,0): 0+1+3+4 = 8 *)
  feq "w00" 8.0 (T.get values.(y) [| 0; 0; 0; 0 |]);
  feq "w11" (4. +. 5. +. 7. +. 8.) (T.get values.(y) [| 0; 1; 1; 0 |])

let test_softmax_layer_norm () =
  let g = G.create "sm" in
  let x = G.input g [| 1; 4 |] in
  let y = G.softmax g x in
  G.mark_output g y;
  let values = FE.run g ~inputs:[ T.of_array [| 1; 4 |] [| 1.; 2.; 3.; 4. |] ] in
  let total = T.fold ( +. ) 0.0 values.(y) in
  feq "softmax sums to 1" 1.0 total;
  Alcotest.(check bool)
    "monotone" true
    (T.get values.(y) [| 0; 3 |] > T.get values.(y) [| 0; 0 |]);
  (* layer norm: output has ~zero mean, unit variance when gamma=1 beta=0 *)
  let g2 = G.create "ln" in
  let x = G.input g2 [| 1; 8 |] in
  let gamma = G.weight g2 (T.create [| 8 |] 1.0) in
  let beta = G.weight g2 (T.create [| 8 |] 0.0) in
  let y = G.layer_norm g2 x gamma beta in
  G.mark_output g2 y;
  let inp = T.init [| 1; 8 |] (fun i -> float_of_int (i * i)) in
  let values = FE.run g2 ~inputs:[ inp ] in
  let mean = T.fold ( +. ) 0.0 values.(y) /. 8.0 in
  feq_loose 1e-6 "ln mean ~ 0" 0.0 mean

let test_batch_matmul () =
  let g = G.create "bmm" in
  let a = G.input g [| 2; 2; 3 |] in
  let b = G.input g [| 2; 3; 2 |] in
  let y = G.batch_matmul g a b in
  G.mark_output g y;
  let av = T.init [| 2; 2; 3 |] float_of_int in
  let bv = T.init [| 2; 3; 2 |] float_of_int in
  let values = FE.run g ~inputs:[ av; bv ] in
  (* batch 0, row 0: [0,1,2] . cols of [[0,1],[2,3],[4,5]] -> [10, 13] *)
  feq "bmm00" 10.0 (T.get values.(y) [| 0; 0; 0 |]);
  feq "bmm01" 13.0 (T.get values.(y) [| 0; 0; 1 |]);
  (* transpose_b variant must agree with manual transpose *)
  let g2 = G.create "bmm_t" in
  let a2 = G.input g2 [| 2; 2; 3 |] in
  let b2 = G.input g2 [| 2; 2; 3 |] in
  let y2 = G.batch_matmul ~transpose_b:true g2 a2 b2 in
  G.mark_output g2 y2;
  let b2v = T.init [| 2; 2; 3 |] float_of_int in
  let values2 = FE.run g2 ~inputs:[ av; b2v ] in
  (* row0 . row0 of b = 0+1+4 = 5 *)
  feq "bmm_t" 5.0 (T.get values2.(y2) [| 0; 0; 0 |])

(* --- quantized executor tracks float executor --- *)

let test_quant_matches_float () =
  let rng = Zkml_util.Rng.create 3L in
  let g = G.create "small" in
  let x = G.input g [| 1; 6 |] in
  let w1 = G.he_weight g rng [| 6; 8 |] ~label:"w1" in
  let b1 = G.zero_weight g [| 8 |] ~label:"b1" in
  let h = G.relu g (G.fully_connected g x w1 b1) in
  let w2 = G.he_weight g rng [| 8; 4 |] ~label:"w2" in
  let b2 = G.zero_weight g [| 4 |] ~label:"b2" in
  let y = G.softmax g (G.fully_connected g h w2 b2) in
  G.mark_output g y;
  let cfg = { Fx.scale_bits = 12; table_bits = 16 } in
  let input = T.init [| 1; 6 |] (fun i -> 0.25 *. float_of_int (i - 3)) in
  let fv = FE.run g ~inputs:[ input ] in
  let qv =
    QE.run cfg g ~inputs:[ T.map (Fx.quantize cfg) input ]
  in
  let fq = qv.QE.values.(y) in
  T.iteri
    (fun i f ->
      let q = Fx.dequantize cfg (T.get_flat fq i) in
      feq_loose 0.01 (Printf.sprintf "prob %d" i) f q)
    fv.(y)

let test_quant_div_semantics () =
  (* round_div must match the circuit's floor((2n+d)/(2d)) for negatives *)
  Alcotest.(check int) "pos" 2 (Fx.round_div 3 2);
  Alcotest.(check int) "half-up neg" (-1) (Fx.round_div (-3) 2);
  Alcotest.(check int) "neg" (-2) (Fx.round_div (-4) 2);
  Alcotest.(check int) "exact" 5 (Fx.round_div 15 3);
  for num = -50 to 50 do
    for den = 1 to 9 do
      let q = Fx.round_div num den in
      (* the gadget identity: 2*num + den = q*(2*den) + r with r in [0, 2den) *)
      let r = (2 * num) + den - (q * 2 * den) in
      Alcotest.(check bool)
        (Printf.sprintf "gadget identity %d/%d" num den)
        true
        (r >= 0 && r < 2 * den)
    done
  done

(* --- stats --- *)

let test_stats () =
  let g = G.create "stats" in
  let x = G.input g [| 1; 4 |] in
  let w = G.weight g (T.create [| 4; 3 |] 0.1) in
  let b = G.weight g (T.create [| 3 |] 0.0) in
  let y = G.fully_connected g x w b in
  G.mark_output g y;
  let st = Zkml_nn.Stats.compute g in
  Alcotest.(check int) "params" 15 st.Zkml_nn.Stats.params;
  Alcotest.(check int) "flops" (3 * 4 * 2) st.Zkml_nn.Stats.flops

(* --- training --- *)

let test_training_learns () =
  let rng = Zkml_util.Rng.create 17L in
  let data =
    Zkml_nn.Dataset.classification ~seed:5L ~num_classes:3 ~h:6 ~w:6 ~c:1
      ~train_per_class:30 ~test_per_class:10 ~noise:0.1
  in
  let g = G.create "clf" in
  let x = G.input g [| 1; 6; 6; 1 |] in
  let f = G.flatten g x in
  let w1 = G.he_weight g rng [| 36; 16 |] ~label:"w1" in
  let b1 = G.zero_weight g [| 16 |] ~label:"b1" in
  let h = G.relu g (G.fully_connected g f w1 b1) in
  let w2 = G.he_weight g rng [| 16; 3 |] ~label:"w2" in
  let b2 = G.zero_weight g [| 3 |] ~label:"b2" in
  let y = G.fully_connected g h w2 b2 in
  G.mark_output g y;
  let before = Zkml_nn.Train.float_accuracy g data.Zkml_nn.Dataset.test in
  let losses =
    Zkml_nn.Train.sgd g ~data:data.Zkml_nn.Dataset.train ~epochs:5 ~lr:0.05 ~rng
  in
  let after = Zkml_nn.Train.float_accuracy g data.Zkml_nn.Dataset.test in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy improves (%.2f -> %.2f)" before after)
    true (after > 0.8);
  Alcotest.(check bool)
    "loss decreases" true
    (List.nth losses 4 < List.hd losses);
  (* quantized accuracy close to float accuracy (Table 8 shape) *)
  let cfg = { Fx.scale_bits = 10; table_bits = 16 } in
  let qacc = Zkml_nn.Train.quant_accuracy cfg g data.Zkml_nn.Dataset.test in
  Alcotest.(check bool)
    (Printf.sprintf "quant acc close (%.2f vs %.2f)" after qacc)
    true
    (Float.abs (after -. qacc) < 0.1)

(* --- serialization --- *)

let test_serialize_roundtrip () =
  let rng = Zkml_util.Rng.create 29L in
  let g = G.create "roundtrip" in
  let x = G.input g [| 1; 4; 4; 2 |] in
  let w = G.he_weight g rng [| 3; 3; 2; 4 |] ~label:"w" in
  let b = G.zero_weight g [| 4 |] ~label:"b" in
  let c = G.conv2d ~stride:2 ~padding:Zkml_nn.Op.Same g x w b in
  let r = G.relu g c in
  let f = G.flatten g r in
  let w2 = G.he_weight g rng [| 16; 3 |] ~label:"w2" in
  let b2 = G.zero_weight g [| 3 |] ~label:"b2" in
  let y = G.softmax g (G.fully_connected g f w2 b2) in
  G.mark_output g y;
  let text = Zkml_nn.Serialize.to_string g in
  let g' = Zkml_nn.Serialize.of_string_exn text in
  Alcotest.(check int) "node count" (G.num_nodes g) (G.num_nodes g');
  Alcotest.(check (list int)) "outputs" (G.outputs g) (G.outputs g');
  (* semantics preserved: same output on same input *)
  let input = T.init [| 1; 4; 4; 2 |] (fun i -> sin (float_of_int i)) in
  let v1 = FE.run g ~inputs:[ input ] in
  let v2 = FE.run g' ~inputs:[ input ] in
  T.iteri (fun i a -> feq "same output" a (T.get_flat v2.(y) i)) v1.(y)

let () =
  Alcotest.run "nn"
    [ ( "tensor",
        [ Alcotest.test_case "basics" `Quick test_tensor_basics;
          Alcotest.test_case "concat_slice_pad" `Quick
            test_tensor_concat_slice_pad
        ] );
      ( "float_exec",
        [ Alcotest.test_case "fc" `Quick test_fc;
          Alcotest.test_case "conv" `Quick test_conv;
          Alcotest.test_case "softmax_layer_norm" `Quick test_softmax_layer_norm;
          Alcotest.test_case "batch_matmul" `Quick test_batch_matmul
        ] );
      ( "quant_exec",
        [ Alcotest.test_case "matches_float" `Quick test_quant_matches_float;
          Alcotest.test_case "div_semantics" `Quick test_quant_div_semantics
        ] );
      ("stats", [ Alcotest.test_case "counts" `Quick test_stats ]);
      ("train", [ Alcotest.test_case "learns" `Quick test_training_learns ]);
      ( "serialize",
        [ Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip ] )
    ]
