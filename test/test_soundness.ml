(* Circuit-soundness mutation suite.

   Mutation testing for the proof system: take each zoo model, produce
   an honest proof, then hand the prover a deliberately wrong input —
   one flipped advice cell, one swapped permutation (sigma) pair, one
   corrupted lookup-table column, one flipped proof byte — and demand
   that the (honest-key) verifier rejects every mutant, individually and
   inside a batch.

   A mutation classifies as:
     - [Rejected]  the prover produced a proof and the verifier said no;
     - [Refused]   the prover itself raised (e.g. a lookup input no
                   longer appears in the corrupted table) — equally
                   sound: no proof exists;
     - [Skipped]   the circuit has no site of that kind (asserted to
                   happen only where legitimate, e.g. a lookup-free
                   circuit);
     - [Accepted]  the verifier accepted the mutant — a soundness hole;
                   the suite fails if this ever happens.

   Everything is seeded and deterministic: mutation sites are chosen by
   fixed scans (first advice copy cell, first differing sigma rows,
   first fixed table column), inputs and prover randomness come from a
   pinned seed, so any failure replays exactly. `make soundness` runs
   this suite alone. *)

module Zoo = Zkml_models.Zoo
module Circuit = Zkml_plonkish.Circuit
module Expr = Zkml_plonkish.Expr
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Ipa = Zkml_commit.Ipa.Make (Sim61)

(* One pinned seed for the whole suite: inputs, prover randomness. *)
let seed = 1234L

(* Hermetic artifact cache: never read or pollute the user's
   ~/.cache/zkml from the test suite. *)
let () =
  Unix.putenv "ZKML_CACHE_DIR"
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "zkml-test-soundness-%d" (Unix.getpid ())))

type outcome = Accepted | Rejected | Refused of string | Skipped of string

let outcome_label = function
  | Accepted -> "ACCEPTED"
  | Rejected -> "rejected"
  | Refused m -> "refused: " ^ m
  | Skipped m -> "skipped: " ^ m

let check_sound name outcome =
  match outcome with
  | Accepted ->
      Alcotest.failf "%s: mutant ACCEPTED — soundness hole" name
  | Rejected | Refused _ -> ()
  | Skipped m -> Alcotest.failf "%s: mutation site unexpectedly missing (%s)" name m

module Mut (Scheme : Zkml_commit.Scheme_intf.S) = struct
  module Serve = Zkml_serve.Artifacts.Make (Scheme)
  module Pipe = Serve.Pipe
  module Proto = Pipe.Proto
  module F = Proto.F

  let bump x = F.add x F.one

  (* Prove with possibly-corrupted keys/advice, verify with the honest
     keys and instance. The prover refusing to produce a proof is as
     good as a rejection. *)
  let attempt params honest_keys ~instance prove =
    match prove () with
    | exception e -> Refused (Printexc.to_string e)
    | proof ->
        if Proto.verify params honest_keys ~instance proof then Accepted
        else Rejected

  let prove_with params keys ~instance ~advice =
    Proto.prove params keys ~instance
      ~advice:(fun _ -> Array.map Array.copy advice)
      ~rng:(Zkml_util.Rng.create seed)

  (* --- mutation 1: flip one copy-constrained advice cell ------------ *)

  let mutate_advice params keys (w : Pipe.witness) =
    let site =
      List.find_map
        (fun ((c1, r1), (c2, r2)) ->
          match (c1, c2) with
          | Circuit.Col_advice a, _ -> Some (a, r1)
          | _, Circuit.Col_advice a -> Some (a, r2)
          | _ -> None)
        keys.Proto.circuit.Circuit.copies
    in
    match site with
    | None -> Skipped "no advice cell under a copy constraint"
    | Some (col, row) ->
        let advice = Array.map Array.copy w.Pipe.w_advice in
        advice.(col).(row) <- bump advice.(col).(row);
        attempt params keys ~instance:w.Pipe.w_instance (fun () ->
            prove_with params keys ~instance:w.Pipe.w_instance ~advice)

  (* --- mutation 2: swap one permutation (sigma) pair ---------------- *)

  (* The prover builds its grand product from a wrong permutation; the
     verifier checks against the honest sigma polynomials. The swapped
     rows must hold *different* cell values (swapping labels between
     equal values leaves the product intact — that permutation is
     genuinely equivalent, not a soundness site) and different labels. *)
  let mutate_sigma params keys (w : Pipe.witness) =
    if Array.length keys.Proto.sigma_values = 0 then
      Skipped "circuit has no permutation argument"
    else begin
      let col_values = function
        | Circuit.Col_fixed f -> keys.Proto.fixed_values.(f)
        | Circuit.Col_advice a -> w.Pipe.w_advice.(a)
        | Circuit.Col_instance i -> w.Pipe.w_instance.(i)
      in
      let m = Array.length keys.Proto.perm_cols in
      (* first (column, row pair) with differing cell values, scanning
         deterministically; labels always differ (sigma is a
         permutation, so cell labels are globally distinct) *)
      let site =
        let found = ref None in
        let c = ref 0 in
        while !found = None && !c < m do
          let vals = col_values keys.Proto.perm_cols.(!c) in
          let n = Array.length keys.Proto.sigma_values.(!c) in
          let r = ref 1 in
          while !found = None && !r < n do
            if not (F.equal vals.(!r) vals.(0)) then found := Some (!c, 0, !r);
            incr r
          done;
          incr c
        done;
        !found
      in
      match site with
      | None -> Skipped "all permutation columns are constant"
      | Some (c, r1, r2) ->
          let sv = Array.map Array.copy keys.Proto.sigma_values in
          let t = sv.(c).(r1) in
          sv.(c).(r1) <- sv.(c).(r2);
          sv.(c).(r2) <- t;
          let bad_keys =
            {
              keys with
              Proto.sigma_values = sv;
              sigma_polys = Pipe.P.interpolate_many keys.Proto.domain sv;
              (* sigma_commits stay honest: the transcript matches, the
                 rejection must come from the permutation identity *)
            }
          in
          attempt params keys ~instance:w.Pipe.w_instance (fun () ->
              prove_with params bad_keys ~instance:w.Pipe.w_instance
                ~advice:w.Pipe.w_advice)
    end

  (* --- mutation 3: corrupt one lookup table column ------------------ *)

  (* Shift every entry of the first fixed column queried by a lookup's
     table expressions. The prover's permuted table multiset no longer
     matches what the verifier evaluates from the honest fixed
     polynomials (and any gate reading the column breaks too). *)
  let mutate_lookup params keys (w : Pipe.witness) =
    let table_col =
      List.find_map
        (fun (l : _ Circuit.lookup) ->
          List.find_map
            (fun e ->
              Expr.fold_queries
                (fun acc kind (q : Expr.query) ->
                  match (acc, kind) with
                  | None, Expr.KFixed -> Some q.Expr.col
                  | _ -> acc)
                None e)
            l.Circuit.tables)
        keys.Proto.circuit.Circuit.lookups
    in
    match table_col with
    | None -> Skipped "circuit has no lookups"
    | Some col ->
        let fv = Array.map Array.copy keys.Proto.fixed_values in
        fv.(col) <- Array.map bump fv.(col);
        let bad_keys =
          {
            keys with
            Proto.fixed_values = fv;
            fixed_polys = Pipe.P.interpolate_many keys.Proto.domain fv;
          }
        in
        attempt params keys ~instance:w.Pipe.w_instance (fun () ->
            prove_with params bad_keys ~instance:w.Pipe.w_instance
              ~advice:w.Pipe.w_advice)

  (* --- mutation 4: flip one proof byte ------------------------------ *)

  let mutate_proof_byte params keys (w : Pipe.witness) honest_bytes =
    let b = Bytes.of_string honest_bytes in
    let pos = Bytes.length b / 2 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
    let bytes = Bytes.to_string b in
    match
      Pipe.verify_verdict params keys ~instance_ints:w.Pipe.w_instance_ints
        bytes
    with
    | Proto.Accepted -> Accepted
    | Proto.Rejected -> Rejected
    | Proto.Malformed e -> Refused (Zkml_util.Err.to_string e)

  (* --- whole-model run ---------------------------------------------- *)

  let run params (m : Zoo.model) =
    let graph = m.Zoo.graph and cfg = m.Zoo.cfg in
    let entry, _ = Serve.prepare ~cfg params graph in
    let keys = entry.Serve.e_keys in
    let w = Serve.witness entry ~cfg graph (Zoo.sample_inputs ~seed m) in
    let honest =
      prove_with params keys ~instance:w.Pipe.w_instance ~advice:w.Pipe.w_advice
    in
    Alcotest.(check bool)
      (m.Zoo.name ^ " honest proof verifies")
      true
      (Proto.verify params keys ~instance:w.Pipe.w_instance honest);
    let honest_bytes = Proto.proof_to_bytes honest in
    let outcomes =
      [
        ("advice-flip", mutate_advice params keys w);
        ("sigma-swap", mutate_sigma params keys w);
        ("lookup-corrupt", mutate_lookup params keys w);
        ("proof-byte-flip", mutate_proof_byte params keys w honest_bytes);
      ]
    in
    List.iter
      (fun (what, outcome) ->
        let name = m.Zoo.name ^ "/" ^ what in
        (match outcome with
        | Skipped _
          when what = "lookup-corrupt"
               && keys.Proto.circuit.Circuit.lookups = [] ->
            (* the only legitimate skip: a circuit with no lookups *)
            ()
        | o -> check_sound name o);
        Printf.printf "  %-28s %s\n%!" name (outcome_label outcome))
      outcomes;
    (* batch context: a batch holding one mutant must reject while the
       all-honest batch accepts — the RLC'd final check hides nothing *)
    let flipped =
      let b = Bytes.of_string honest_bytes in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      Bytes.to_string b
    in
    let verdict batch =
      Pipe.verify_many_verdict params keys
        ~batch:(List.map (fun p -> (w.Pipe.w_instance_ints, p)) batch)
    in
    Alcotest.(check bool)
      (m.Zoo.name ^ " honest batch accepted")
      true
      (verdict [ honest_bytes; honest_bytes ] = Proto.Accepted);
    Alcotest.(check bool)
      (m.Zoo.name ^ " poisoned batch not accepted")
      false
      (verdict [ honest_bytes; flipped ] = Proto.Accepted)
end

module Mut_kzg = Mut (Kzg)
module Mut_ipa = Mut (Ipa)

let kzg_params = Kzg.setup ~max_size:(1 lsl 13) ~seed:"test-soundness"
let ipa_params = Ipa.setup ~max_size:(1 lsl 13) ~seed:"test-soundness"

let mutate_kzg names () =
  List.iter (fun n -> Mut_kzg.run kzg_params (Zoo.by_name n)) names

let mutate_ipa names () =
  List.iter (fun n -> Mut_ipa.run ipa_params (Zoo.by_name n)) names

(* --- split-and-aggregate mutants (PR 10) --------------------------- *)

(* Same discipline for the segmented proving path: prove mnist honestly
   at 4 segments, then hand the aggregate verdict classifier mutants
   that every per-segment proof alone cannot expose — a tampered seam
   digest, a bumped boundary value, segments spliced from two honest
   runs over different inputs (each segment proof is individually
   honest, so only the seam binding can catch the mix), and a dropped /
   duplicated segment. Zero accepted mutants. *)

module SPF = Zkml_serve.Seg_proof
module SB = Zkml_serve.Backends

let segmented_mutants () =
  let m = Zoo.mnist () in
  let kzg_keys = Hashtbl.create 8 and ipa_keys = Hashtbl.create 8 in
  let parse text =
    match SPF.of_string text with
    | Ok sp -> sp
    | Error e ->
        Alcotest.failf "segmented honest proof unparseable: %s"
          (Zkml_util.Err.to_string e)
  in
  let honest = parse (SPF.prove m SB.Kzg 1234 ~segments:4).SPF.p_text in
  let other = parse (SPF.prove m SB.Kzg 4321 ~segments:4).SPF.p_text in
  Alcotest.(check bool)
    "mnist-seg honest accepted" true
    (SPF.verdict ~kzg_keys ~ipa_keys m honest = `Accepted);
  let nseg = Array.length honest.SPF.sp_groups in
  Alcotest.(check bool) "mnist-seg is multi-segment" true (nseg > 1);
  Alcotest.(check bool)
    "mnist-seg has seams" true
    (Array.length honest.SPF.sp_seams > 0);
  let mutants =
    [
      ( "seam-digest-flip",
        let seams = Array.copy honest.SPF.sp_seams in
        let b = Bytes.of_string seams.(0) in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
        seams.(0) <- Bytes.to_string b;
        { honest with SPF.sp_seams = seams } );
      ( "boundary-value-bump",
        let groups = Array.copy honest.SPF.sp_groups in
        let g = groups.(nseg - 1) in
        let inst = Array.copy g.SPF.sg_instance in
        inst.(0) <- inst.(0) + 1;
        groups.(nseg - 1) <- { g with SPF.sg_instance = inst };
        { honest with SPF.sp_groups = groups } );
      ( "splice-honest-runs",
        let groups = Array.copy honest.SPF.sp_groups in
        groups.(0) <- other.SPF.sp_groups.(0);
        { honest with SPF.sp_groups = groups } );
      ( "proof-byte-flip",
        let groups = Array.copy honest.SPF.sp_groups in
        let g = groups.(0) in
        let b = Bytes.of_string g.SPF.sg_proof in
        let pos = Bytes.length b / 2 in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
        groups.(0) <- { g with SPF.sg_proof = Bytes.to_string b };
        { honest with SPF.sp_groups = groups } );
      ( "dropped-segment",
        { honest with SPF.sp_groups = Array.sub honest.SPF.sp_groups 0 (nseg - 1) } );
      ( "duplicated-segment",
        {
          honest with
          SPF.sp_groups =
            Array.append honest.SPF.sp_groups
              [| honest.SPF.sp_groups.(nseg - 1) |];
        } );
    ]
  in
  List.iter
    (fun (what, sp) ->
      let name = "mnist-seg/" ^ what in
      let outcome =
        match SPF.verdict ~kzg_keys ~ipa_keys m sp with
        | `Accepted -> Accepted
        | `Rejected -> Rejected
        | `Malformed e -> Refused (Zkml_util.Err.to_string e)
      in
      check_sound name outcome;
      Printf.printf "  %-28s %s\n%!" name (outcome_label outcome))
    mutants

let () =
  Alcotest.run "soundness"
    [
      ( "mutations",
        [
          Alcotest.test_case "kzg_small" `Quick
            (mutate_kzg [ "mnist"; "dlrm"; "twitter"; "gpt2" ]);
          Alcotest.test_case "ipa_small" `Quick (mutate_ipa [ "dlrm"; "gpt2" ]);
          Alcotest.test_case "kzg_big" `Slow
            (mutate_kzg [ "resnet18"; "mobilenet"; "vgg16"; "diffusion" ]);
        ] );
      ( "segmented",
        [ Alcotest.test_case "mnist_kzg_4seg" `Quick segmented_mutants ] );
    ]
