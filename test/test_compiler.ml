(* End-to-end compiler tests: models are compiled to circuits, proved,
   verified; the circuit's public outputs match the fixed-point
   executor; every logical layout choice produces a valid proof; and the
   optimizer behaves per Algorithm 1. *)

module T = Zkml_tensor.Tensor
module G = Zkml_nn.Graph
module Fx = Zkml_fixed.Fixed
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Pipe = Zkml_compiler.Pipeline.Make (Kzg)
module Opt = Zkml_compiler.Optimizer
module Spec = Zkml_compiler.Layout_spec

let cfg = { Fx.scale_bits = 6; table_bits = 11 }
let params = Kzg.setup ~max_size:(1 lsl 13) ~seed:"compiler-test"

let small_mlp () =
  let rng = Zkml_util.Rng.create 11L in
  let g = G.create "mlp" in
  let x = G.input g [| 1; 4 |] in
  let w1 = G.he_weight g rng [| 4; 6 |] ~label:"w1" in
  let b1 = G.zero_weight g [| 6 |] ~label:"b1" in
  let h = G.relu g (G.fully_connected g x w1 b1) in
  let w2 = G.he_weight g rng [| 6; 3 |] ~label:"w2" in
  let b2 = G.zero_weight g [| 3 |] ~label:"b2" in
  let y = G.softmax g (G.fully_connected g h w2 b2) in
  G.mark_output g y;
  g

let sample_input () = T.of_array [| 1; 4 |] [| 0.5; -0.25; 1.0; 0.125 |]

let test_end_to_end () =
  let g = small_mlp () in
  let result = Pipe.run ~cfg ~params g [ sample_input () ] in
  Alcotest.(check bool) "proof verifies" true result.Pipe.verified;
  Alcotest.(check bool) "nonempty proof" true (result.Pipe.proof_bytes > 500);
  (* circuit outputs = executor outputs (probabilities summing to ~SF) *)
  match result.Pipe.outputs with
  | [ probs ] ->
      let total = T.fold ( + ) 0 probs in
      Alcotest.(check bool)
        (Printf.sprintf "softmax outputs sum to ~SF (%d)" total)
        true
        (abs (total - Fx.sf cfg) <= 3)
  | _ -> Alcotest.fail "expected one output"

let test_all_layout_specs_prove () =
  let g = small_mlp () in
  List.iter
    (fun spec ->
      let result =
        Pipe.run ~cfg ~params ~specs:[ spec ] ~ncols_min:14 ~ncols_max:20 g
          [ sample_input () ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "spec %s verifies" (Spec.to_string spec))
        true result.Pipe.verified)
    Spec.all

let test_tampered_witness_rejected () =
  let g = small_mlp () in
  let input = sample_input () in
  let qinput = T.map (Fx.quantize cfg) input in
  let exec = Zkml_nn.Quant_exec.run cfg g ~inputs:[ qinput ] in
  let times = Pipe.calibrated params in
  let plan, _ =
    Opt.optimize ~times ~backend:Zkml_compiler.Costmodel.Kzg
      ~group_bytes:Kzg.G.size_bytes ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg g
      exec
  in
  let artifacts = Pipe.build params plan ~cfg g exec in
  let rng = Zkml_util.Rng.create 1L in
  (* honest proof first *)
  let proof = Pipe.prove params artifacts ~rng in
  Alcotest.(check bool) "honest ok" true (Pipe.verify params artifacts proof);
  (* tamper with one advice value *)
  let tampered =
    { artifacts with
      Pipe.advice =
        (let a = Array.map Array.copy artifacts.Pipe.advice in
         a.(0).(3) <- Zkml_ff.Fp61.add a.(0).(3) Zkml_ff.Fp61.one;
         a)
    }
  in
  let proof = Pipe.prove params tampered ~rng in
  Alcotest.(check bool)
    "tampered witness rejected" false
    (Pipe.verify params tampered proof)

let test_wrong_public_output_rejected () =
  let g = small_mlp () in
  let input = sample_input () in
  let qinput = T.map (Fx.quantize cfg) input in
  let exec = Zkml_nn.Quant_exec.run cfg g ~inputs:[ qinput ] in
  let times = Pipe.calibrated params in
  let plan, _ =
    Opt.optimize ~times ~backend:Zkml_compiler.Costmodel.Kzg
      ~group_bytes:Kzg.G.size_bytes ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg g
      exec
  in
  let artifacts = Pipe.build params plan ~cfg g exec in
  let rng = Zkml_util.Rng.create 1L in
  let proof = Pipe.prove params artifacts ~rng in
  (* claim a different public output *)
  let forged_instance =
    let i = Array.map Array.copy artifacts.Pipe.instance in
    let last = Array.length i.(0) - 1 in
    ignore last;
    (* the outputs sit at the end of the populated instance region;
       flip the first input cell instead, which is certainly populated *)
    i.(0).(0) <- Zkml_ff.Fp61.add i.(0).(0) Zkml_ff.Fp61.one;
    i
  in
  let forged = { artifacts with Pipe.instance = forged_instance } in
  Alcotest.(check bool)
    "forged public values rejected" false
    (Pipe.verify params forged proof)

let test_optimizer_row_exactness () =
  (* the counting-mode layouter and the building-mode layouter must agree
     on rows: finalize at the simulated k must succeed and the content
     row counts must be identical *)
  let g = small_mlp () in
  let input = sample_input () in
  let qinput = T.map (Fx.quantize cfg) input in
  let exec = Zkml_nn.Quant_exec.run cfg g ~inputs:[ qinput ] in
  List.iter
    (fun ncols ->
      let spec = Spec.default in
      let counted =
        Zkml_compiler.Lower.lower ~spec ~cfg ~ncols ~counting:true g exec
      in
      let built =
        Zkml_compiler.Lower.lower ~spec ~cfg ~ncols ~counting:false g exec
      in
      Alcotest.(check int)
        (Printf.sprintf "rows at ncols=%d" ncols)
        counted.Zkml_compiler.Lower.layouter.Zkml_compiler.Layouter.nrows
        built.Zkml_compiler.Lower.layouter.Zkml_compiler.Layouter.nrows)
    [ 5; 8; 13; 21 ]

let test_optimizer_monotone_rows () =
  (* more columns -> no more content rows (denser packing) *)
  let g = small_mlp () in
  let qinput = T.map (Fx.quantize cfg) (sample_input ()) in
  let exec = Zkml_nn.Quant_exec.run cfg g ~inputs:[ qinput ] in
  let rows ncols =
    let l =
      Zkml_compiler.Lower.lower ~spec:Spec.default ~cfg ~ncols ~counting:true g
        exec
    in
    l.Zkml_compiler.Lower.layouter.Zkml_compiler.Layouter.nrows
  in
  Alcotest.(check bool) "8 <= 4 cols" true (rows 8 <= rows 4);
  Alcotest.(check bool) "16 <= 8 cols" true (rows 16 <= rows 8);
  Alcotest.(check bool) "32 <= 16 cols" true (rows 32 <= rows 16)

let test_better_tiebreak () =
  let check name exp got = Alcotest.(check bool) name exp got in
  (* primary criteria *)
  check "time: lower cost wins" true
    (Opt.better Opt.Min_time (1.0, 500, 9) (2.0, 10, 5));
  check "size: smaller size wins" true
    (Opt.better Opt.Min_size (9.0, 10, 9) (1.0, 11, 5));
  (* two equal-cost candidates: Min_time breaks the tie by size, then
     k, so the chosen layout cannot depend on iteration order *)
  check "time tie: smaller size wins" true
    (Opt.better Opt.Min_time (1.0, 10, 9) (1.0, 11, 5));
  check "time tie: larger size loses" false
    (Opt.better Opt.Min_time (1.0, 11, 5) (1.0, 10, 9));
  check "time tie: equal size, smaller k wins" true
    (Opt.better Opt.Min_time (1.0, 10, 5) (1.0, 10, 6));
  check "time: identical candidate is not better" false
    (Opt.better Opt.Min_time (1.0, 10, 5) (1.0, 10, 5));
  (* two equal-size candidates: Min_size breaks the tie by cost, then k *)
  check "size tie: cheaper wins" true
    (Opt.better Opt.Min_size (1.0, 10, 9) (2.0, 10, 5));
  check "size tie: costlier loses" false
    (Opt.better Opt.Min_size (2.0, 10, 5) (1.0, 10, 9));
  check "size tie: equal cost, smaller k wins" true
    (Opt.better Opt.Min_size (1.0, 10, 5) (1.0, 10, 6));
  check "size: identical candidate is not better" false
    (Opt.better Opt.Min_size (1.0, 10, 5) (1.0, 10, 5))

let test_unpruned_not_worse () =
  let g = small_mlp () in
  let qinput = T.map (Fx.quantize cfg) (sample_input ()) in
  let exec = Zkml_nn.Quant_exec.run cfg g ~inputs:[ qinput ] in
  let times = Pipe.calibrated params in
  let common f =
    f ~times ~backend:Zkml_compiler.Costmodel.Kzg ~group_bytes:Kzg.G.size_bytes
      ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg g exec
  in
  let pruned, pruned_stats = common (Opt.optimize ?specs:None ?ncols_min:None ?ncols_max:None ?objective:None ?k_max:None) in
  let unpruned, unpruned_stats =
    common (Opt.optimize_unpruned ?specs:None ?ncols_min:None ?ncols_max:None ?objective:None ?k_max:None)
  in
  Alcotest.(check bool)
    "unpruned explores more" true
    (unpruned_stats.Opt.candidates > pruned_stats.Opt.candidates);
  Alcotest.(check bool)
    "unpruned cost <= pruned cost" true
    (unpruned.Opt.est_cost <= pruned.Opt.est_cost +. 1e-12)

let test_size_objective () =
  let g = small_mlp () in
  let r_time =
    Pipe.run ~cfg ~params ~objective:Opt.Min_time g [ sample_input () ]
  in
  let r_size =
    Pipe.run ~cfg ~params ~objective:Opt.Min_size g [ sample_input () ]
  in
  Alcotest.(check bool) "time-opt verifies" true r_time.Pipe.verified;
  Alcotest.(check bool) "size-opt verifies" true r_size.Pipe.verified;
  Alcotest.(check bool)
    (Printf.sprintf "size-opt proof (%d) <= time-opt proof (%d)"
       r_size.Pipe.proof_bytes r_time.Pipe.proof_bytes)
    true
    (r_size.Pipe.proof_bytes <= r_time.Pipe.proof_bytes)

(* a model with conv / pooling / residual add / layer-norm-free ops to
   exercise more gadgets end to end *)
let test_conv_model () =
  let rng = Zkml_util.Rng.create 31L in
  let g = G.create "convnet" in
  let x = G.input g [| 1; 6; 6; 1 |] in
  let w = G.he_weight g rng [| 3; 3; 1; 2 |] ~label:"w" in
  let b = G.zero_weight g [| 2 |] ~label:"b" in
  let c = G.relu g (G.conv2d ~stride:1 ~padding:Zkml_nn.Op.Same g x w b) in
  let p = G.max_pool2d g ~size:2 c in
  let q = G.avg_pool2d g ~size:3 p in
  let f = G.flatten g q in
  let w2 = G.he_weight g rng [| 2; 2 |] ~label:"w2" in
  let b2 = G.zero_weight g [| 2 |] ~label:"b2" in
  let y = G.fully_connected g f w2 b2 in
  G.mark_output g y;
  let input = T.init [| 1; 6; 6; 1 |] (fun i -> 0.1 *. float_of_int (i mod 7)) in
  let result = Pipe.run ~cfg ~params g [ input ] in
  Alcotest.(check bool) "conv model verifies" true result.Pipe.verified

let test_transformer_block () =
  (* batch_matmul + softmax + layer_norm + gelu: the GPT-style ops *)
  let rng = Zkml_util.Rng.create 37L in
  let g = G.create "attn" in
  let seq = 3 and d = 4 in
  let x = G.input g [| 1; seq; d |] in
  let wq = G.he_weight g rng [| d; d |] ~label:"wq" in
  let wk = G.he_weight g rng [| d; d |] ~label:"wk" in
  let wv = G.he_weight g rng [| d; d |] ~label:"wv" in
  let q = G.batch_matmul g x wq in
  let k = G.batch_matmul g x wk in
  let v = G.batch_matmul g x wv in
  let scores = G.batch_matmul ~transpose_b:true g q k in
  let attn = G.softmax g scores in
  let ctx = G.batch_matmul g attn v in
  let gamma = G.weight g (T.create [| d |] 1.0) ~label:"gamma" in
  let beta = G.weight g (T.create [| d |] 0.0) ~label:"beta" in
  let normed = G.layer_norm g (G.add_ g ctx x) gamma beta in
  let y = G.activation g Zkml_nn.Op.Gelu normed in
  G.mark_output g y;
  let input =
    T.init [| 1; seq; d |] (fun i -> 0.2 *. sin (float_of_int i))
  in
  let result = Pipe.run ~cfg ~params g [ input ] in
  Alcotest.(check bool) "transformer block verifies" true result.Pipe.verified

let () =
  Alcotest.run "compiler"
    [ ( "end_to_end",
        [ Alcotest.test_case "mlp" `Quick test_end_to_end;
          Alcotest.test_case "all_specs" `Slow test_all_layout_specs_prove;
          Alcotest.test_case "conv_model" `Slow test_conv_model;
          Alcotest.test_case "transformer_block" `Slow test_transformer_block
        ] );
      ( "soundness",
        [ Alcotest.test_case "tampered_witness" `Quick
            test_tampered_witness_rejected;
          Alcotest.test_case "wrong_public" `Quick
            test_wrong_public_output_rejected
        ] );
      ( "optimizer",
        [ Alcotest.test_case "row_exactness" `Quick test_optimizer_row_exactness;
          Alcotest.test_case "monotone_rows" `Quick test_optimizer_monotone_rows;
          Alcotest.test_case "better_tiebreak" `Quick test_better_tiebreak;
          Alcotest.test_case "unpruned" `Slow test_unpruned_not_worse;
          Alcotest.test_case "size_objective" `Slow test_size_objective
        ] )
    ]
