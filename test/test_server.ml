(* Daemon tests: byte-identity with the one-shot CLI pipeline,
   exactly-once verdict accounting for proofs rejected over the wire,
   admission-control backpressure on the bounded engine, and a clean
   wire-level shutdown.

   The socket tests run one in-process daemon on a unix socket in a
   hermetic temp dir; the backpressure test drives the Engine directly
   with the [job_hook] seam so a worker can be held mid-job. *)

module Zoo = Zkml_models.Zoo
module Err = Zkml_util.Err
module Metrics = Zkml_obs.Metrics
module B = Zkml_serve.Backends
module PF = Zkml_serve.Proof_file
module Wire = Zkml_serve.Wire
module Server = Zkml_serve.Server

let tmp_dir =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "zkml-test-server-%d" (Unix.getpid ()))

let () =
  (try Unix.mkdir tmp_dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Unix.putenv "ZKML_CACHE_DIR" tmp_dir

let mnist = lazy (Zoo.mnist ())

(* ------------------------------------------------------------------ *)
(* one in-process daemon shared by the socket tests *)

let addr = Server.Unix_sock (Filename.concat tmp_dir "daemon.sock")

let server_thread =
  lazy
    (let config =
       { Server.workers = 2; queue_capacity = 8; warm = []; job_hook = None }
     in
     Thread.create (fun () -> Server.run ~config addr) ())

let connect () =
  ignore (Lazy.force server_thread);
  let rec go tries =
    match Server.connect addr with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries > 0 ->
        Thread.delay 0.05;
        go (tries - 1)
  in
  go 200

let roundtrip req =
  let fd = connect () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      match Wire.roundtrip fd req with
      | Ok resp -> resp
      | Error e -> Alcotest.failf "roundtrip: %s" (Err.to_string e))

(* ------------------------------------------------------------------ *)
(* byte-identity: the daemon's proof text equals the CLI pipeline's *)

let daemon_prove_text seed =
  match
    roundtrip
      (Wire.Prove
         { tenant = "test"; backend = B.Kzg; model = "mnist";
           seeds = [ Int64.of_int seed ] })
  with
  | Wire.Proofs [ text ] -> text
  | Wire.Proofs l -> Alcotest.failf "expected 1 proof, got %d" (List.length l)
  | Wire.Verdict { code; detail } ->
      Alcotest.failf "prove answered verdict %d: %s" code detail
  | _ -> Alcotest.fail "prove answered a non-proof response"

let test_byte_identity () =
  let m = Lazy.force mnist in
  let reference, _, _ = PF.prove m B.Kzg 1234 in
  (* serve the same request under both worker-pool widths: proof bytes
     must not depend on how the proving fan-out is scheduled *)
  Zkml_util.Pool.set_jobs 1;
  let seq = daemon_prove_text 1234 in
  Zkml_util.Pool.set_jobs 4;
  let par = daemon_prove_text 1234 in
  Zkml_util.Pool.set_jobs 1;
  Alcotest.(check string) "daemon = CLI pipeline (jobs 1)" reference seq;
  Alcotest.(check string) "daemon = CLI pipeline (jobs 4)" reference par

(* ------------------------------------------------------------------ *)
(* soundness over the wire: a tampered proof is rejected, and the
   verifier's verdict counter moves exactly once *)

let rejected_count () =
  Metrics.counter_value
    ~labels:[ ("verdict", "rejected") ]
    (Metrics.snapshot ()) "zkml_verify_verdicts_total"

let test_tampered_proof_rejected_once () =
  let text = daemon_prove_text 77 in
  (* an honest proof round-trips to verdict 0 first *)
  (match
     roundtrip (Wire.Verify { tenant = "test"; model = "mnist"; proof = text })
   with
  | Wire.Verdict { code = 0; _ } -> ()
  | Wire.Verdict { code; detail } ->
      Alcotest.failf "honest proof answered %d: %s" code detail
  | _ -> Alcotest.fail "verify answered a non-verdict response");
  (* claim a different public instance than the proof commits to *)
  let tampered =
    match PF.of_string text with
    | Error e -> Alcotest.failf "reparse: %s" (Err.to_string e)
    | Ok pf ->
        pf.PF.pf_instance.(0) <- pf.PF.pf_instance.(0) + 1;
        PF.render pf
  in
  let before = rejected_count () in
  (match
     roundtrip
       (Wire.Verify { tenant = "test"; model = "mnist"; proof = tampered })
   with
  | Wire.Verdict { code = 1; _ } -> ()
  | Wire.Verdict { code; detail } ->
      Alcotest.failf "tampered proof answered %d (want 1): %s" code detail
  | _ -> Alcotest.fail "verify answered a non-verdict response");
  let after = rejected_count () in
  Alcotest.(check int)
    "zkml_verify_verdicts_total{verdict=rejected} moved exactly once" 1
    (int_of_float (after -. before))

(* ------------------------------------------------------------------ *)
(* malformed frames: answered with verdict 2, connection policy as
   documented (payload error keeps the connection, framing error drops) *)

let read_response fd =
  match Wire.read_frame fd with
  | Wire.Frame (kind, payload) -> Wire.response_of_payload kind payload
  | Wire.Eof -> Error (Err.make Err.Truncated "eof")
  | Wire.Fail e -> Error e

let test_malformed_keeps_connection () =
  let fd = connect () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (* a well-delimited frame whose payload is garbage *)
      Wire.write_all fd (Wire.encode_frame ~kind:0x02 "garbage payload");
      (match read_response fd with
      | Ok (Wire.Verdict { code = 2; _ }) -> ()
      | Ok _ -> Alcotest.fail "garbage payload must answer verdict 2"
      | Error e -> Alcotest.failf "read: %s" (Err.to_string e));
      (* the same connection still serves requests *)
      Wire.send_request fd Wire.Ping;
      match read_response fd with
      | Ok Wire.Pong -> ()
      | Ok _ -> Alcotest.fail "expected Pong after malformed payload"
      | Error e -> Alcotest.failf "read: %s" (Err.to_string e))

let test_bad_framing_drops_connection () =
  let fd = connect () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Wire.write_all fd "XKW1\x01\x00\x00\x00\x00";
      (match read_response fd with
      | Ok (Wire.Verdict { code = 2; _ }) -> ()
      | Ok _ -> Alcotest.fail "bad magic must answer verdict 2"
      | Error e -> Alcotest.failf "read: %s" (Err.to_string e));
      (* framing is unrecoverable: the daemon closes its end *)
      match Wire.read_frame fd with
      | Wire.Eof -> ()
      | Wire.Frame _ -> Alcotest.fail "connection must close after bad framing"
      | Wire.Fail _ -> ())

(* ------------------------------------------------------------------ *)
(* backpressure: capacity 2 + a held worker => the third submit is
   answered Overloaded immediately and the rejection counter moves *)

let rejected_total tenant =
  Metrics.counter_value
    ~labels:[ ("tenant", tenant) ]
    (Metrics.snapshot ()) "zkml_server_rejected_total"

let test_backpressure () =
  let gate = Mutex.create () in
  Mutex.lock gate;
  let config =
    {
      Server.workers = 1;
      queue_capacity = 2;
      warm = [];
      job_hook =
        Some
          (fun () ->
            (* park the worker until the test releases the gate *)
            Mutex.lock gate;
            Mutex.unlock gate);
    }
  in
  let engine = Server.Engine.create config in
  let t1 =
    match Server.Engine.submit engine ~tenant:"acme" Wire.Ping with
    | `Ticket tk -> tk
    | _ -> Alcotest.fail "first submit must be admitted"
  in
  let t2 =
    match Server.Engine.submit engine ~tenant:"acme" Wire.Ping with
    | `Ticket tk -> tk
    | _ -> Alcotest.fail "second submit must be admitted"
  in
  let before = rejected_total "acme" in
  (match Server.Engine.submit engine ~tenant:"acme" Wire.Ping with
  | `Overloaded -> ()
  | `Ticket _ -> Alcotest.fail "third submit over capacity must be rejected"
  | `Stopping -> Alcotest.fail "engine is not stopping");
  Alcotest.(check int) "zkml_server_rejected_total{tenant=acme} moved once" 1
    (int_of_float (rejected_total "acme" -. before));
  (* release the worker: both admitted jobs complete and answer *)
  Mutex.unlock gate;
  (match Server.Engine.await t1 with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "first ticket must answer Pong");
  (match Server.Engine.await t2 with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "second ticket must answer Pong");
  Server.Engine.shutdown engine;
  match Server.Engine.submit engine ~tenant:"acme" Wire.Ping with
  | `Stopping -> ()
  | _ -> Alcotest.fail "submit after shutdown must answer Stopping"

(* ------------------------------------------------------------------ *)
(* shutdown over the wire: Stopping comes back and the daemon thread
   actually exits (runs last — it takes the shared daemon down) *)

let test_shutdown () =
  (match roundtrip Wire.Shutdown with
  | Wire.Stopping -> ()
  | _ -> Alcotest.fail "Shutdown must answer Stopping");
  Thread.join (Lazy.force server_thread);
  match addr with
  | Server.Unix_sock path ->
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists path)
  | Server.Tcp _ -> ()

let () =
  Alcotest.run "server"
    [
      ( "engine",
        [ Alcotest.test_case "backpressure" `Quick test_backpressure ] );
      ( "daemon",
        [
          Alcotest.test_case "byte_identity" `Quick test_byte_identity;
          Alcotest.test_case "tampered_rejected_once" `Quick
            test_tampered_proof_rejected_once;
          Alcotest.test_case "malformed_keeps_connection" `Quick
            test_malformed_keeps_connection;
          Alcotest.test_case "bad_framing_drops_connection" `Quick
            test_bad_framing_drops_connection;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
    ]
