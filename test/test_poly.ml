module Make_suite (F : Zkml_ff.Field_intf.S) = struct
  module P = Zkml_poly.Polynomial.Make (F)

  let rng = Zkml_util.Rng.create 11L

  let check_eq msg a b = Alcotest.(check bool) msg true (F.equal a b)

  let test_ntt_roundtrip () =
    List.iter
      (fun k ->
        let d = P.Domain.create k in
        let coeffs = P.random rng d.n in
        let a = Array.copy coeffs in
        P.ntt d a;
        P.intt d a;
        Array.iteri (fun i c -> check_eq "roundtrip" c a.(i)) coeffs)
      [ 1; 2; 5; 8 ]

  let test_ntt_is_evaluation () =
    let d = P.Domain.create 4 in
    let coeffs = P.random rng d.n in
    let a = Array.copy coeffs in
    P.ntt d a;
    let roots = P.Domain.elements d in
    Array.iteri
      (fun i w -> check_eq "eval matches" (P.eval coeffs w) a.(i))
      roots

  let test_coset_ntt () =
    let d = P.Domain.create 5 in
    let coeffs = P.random rng 17 in
    let shift = F.generator in
    let evals = P.coset_ntt d ~shift coeffs in
    let roots = P.Domain.elements d in
    Array.iteri
      (fun i w ->
        check_eq "coset eval" (P.eval coeffs (F.mul shift w)) evals.(i))
      roots;
    let back = P.coset_intt d ~shift evals in
    Array.iteri (fun i c -> check_eq "coset roundtrip" c back.(i)) coeffs

  let test_mul () =
    (* (1 + x)(1 - x) = 1 - x^2 *)
    let p = [| F.one; F.one |] and q = [| F.one; F.neg F.one |] in
    let r = P.mul p q in
    check_eq "c0" F.one r.(0);
    check_eq "c1" F.zero r.(1);
    check_eq "c2" (F.neg F.one) r.(2);
    (* big product checked at a random point *)
    let p = P.random rng 100 and q = P.random rng 90 in
    let r = P.mul p q in
    let x = F.random rng in
    check_eq "big mul" (F.mul (P.eval p x) (P.eval q x)) (P.eval r x)

  let test_div_by_linear () =
    let p = P.random rng 33 in
    let z = F.random rng in
    let v = P.eval p z in
    (* (p - v) should be exactly divisible by (x - z) *)
    let shifted = Array.copy p in
    shifted.(0) <- F.sub shifted.(0) v;
    let q = P.div_by_linear shifted z in
    let x = F.random rng in
    check_eq "witness identity"
      (F.sub (P.eval p x) v)
      (F.mul (P.eval q x) (F.sub x z))

  let test_lagrange () =
    let d = P.Domain.create 4 in
    let x = F.random rng in
    let roots = P.Domain.elements d in
    (* sum_i l_i(x) = 1 *)
    let sum = ref F.zero in
    for i = 0 to d.n - 1 do
      sum := F.add !sum (P.Domain.eval_lagrange d i x)
    done;
    check_eq "partition of unity" F.one !sum;
    (* l_i(w^j) = delta_ij, checked by interpolation instead of direct
       division (x on the domain): interpolate indicator evals *)
    let evals = Array.make d.n F.zero in
    evals.(3) <- F.one;
    let li = P.interpolate d evals in
    check_eq "interp at root" F.one (P.eval li roots.(3));
    check_eq "interp elsewhere" F.zero (P.eval li roots.(7));
    check_eq "consistent with closed form"
      (P.Domain.eval_lagrange d 3 x)
      (P.eval li x);
    (* batched version agrees *)
    match P.Domain.eval_lagrange_many d [ 0; 3; 5 ] x with
    | [ a; b; c ] ->
        check_eq "many0" (P.Domain.eval_lagrange d 0 x) a;
        check_eq "many3" (P.Domain.eval_lagrange d 3 x) b;
        check_eq "many5" (P.Domain.eval_lagrange d 5 x) c
    | _ -> Alcotest.fail "eval_lagrange_many arity"

  let test_batch_apis () =
    (* the *_many entry points are defined as per-column maps of the
       singleton transforms — check that literally, above and below the
       pool's parallel cutoff *)
    List.iter
      (fun k ->
        let d = P.Domain.create k in
        let shift = F.generator in
        let cols = Array.init 5 (fun _ -> P.random rng d.n) in
        let expect_ntt =
          Array.map
            (fun c ->
              let a = Array.copy c in
              P.ntt d a;
              a)
            cols
        in
        let got_ntt = Array.map Array.copy cols in
        P.ntt_many d got_ntt;
        let check name exp got =
          Array.iteri
            (fun ci col ->
              Array.iteri
                (fun i v ->
                  check_eq (Printf.sprintf "%s k=%d col=%d i=%d" name k ci i)
                    v got.(ci).(i))
                col)
            exp
        in
        check "ntt_many" expect_ntt got_ntt;
        check "interpolate_many"
          (Array.map (P.interpolate d) cols)
          (P.interpolate_many d cols);
        check "coset_ntt_many"
          (Array.map (P.coset_ntt d ~shift) cols)
          (P.coset_ntt_many d ~shift cols);
        let evals = P.coset_ntt_many d ~shift cols in
        check "coset_intt_many"
          (Array.map (P.coset_intt d ~shift) evals)
          (P.coset_intt_many d ~shift evals))
      [ 4; 13 ]

  (* The cache-blocked transform against the stage-major reference, on
     every domain size up to the largest model domain (bench max_k =
     15), forward and inverse twiddles. The transforms must agree
     element-wise — the proof pipeline's byte-identity depends on it. *)
  let test_blocked_matches_reference () =
    List.iter
      (fun k ->
        let d = P.Domain.create k in
        let base = P.random rng d.n in
        List.iter
          (fun tw ->
            let a = Array.copy base and b = Array.copy base in
            P.ntt_core a tw;
            P.ntt_reference b tw;
            Array.iteri
              (fun i v ->
                check_eq (Printf.sprintf "blocked k=%d i=%d" k i) v a.(i))
              b)
          [ d.P.Domain.elements; d.P.Domain.elements_inv ])
      [ 0; 1; 2; 3; 5; 8; 10; 11; 12; 13; 15 ]

  (* The in-place transform must never write through the caller's
     element objects: inputs routinely share cells (Array.make) or are
     blitted from arrays the caller keeps. *)
  let test_ntt_preserves_inputs () =
    let d = P.Domain.create 8 in
    let base = P.random rng d.n in
    let snapshot = Array.map F.to_hex base in
    let a = Array.copy base in
    (* [a] shares element pointers with [base] *)
    P.ntt d a;
    Array.iteri
      (fun i v ->
        Alcotest.(check string)
          (Printf.sprintf "input %d intact" i)
          snapshot.(i) (F.to_hex v))
      base;
    (* shared-cell input (every entry the same object), checked against
       the allocating reference which cannot corrupt anything *)
    let expect = Array.make d.n base.(0) in
    P.ntt_reference expect d.P.Domain.elements;
    let got = Array.make d.n base.(0) in
    P.ntt d got;
    Array.iteri
      (fun i v -> check_eq (Printf.sprintf "shared-cell %d" i) v got.(i))
      expect

  let test_vanishing () =
    let d = P.Domain.create 6 in
    let roots = P.Domain.elements d in
    check_eq "vanishes on domain" F.zero
      (P.Domain.eval_vanishing d roots.(13));
    let x = F.random rng in
    check_eq "x^n - 1"
      (F.sub (F.pow_int x d.n) F.one)
      (P.Domain.eval_vanishing d x)

  let suite =
    [ Alcotest.test_case "ntt_roundtrip" `Quick test_ntt_roundtrip;
      Alcotest.test_case "ntt_is_evaluation" `Quick test_ntt_is_evaluation;
      Alcotest.test_case "coset_ntt" `Quick test_coset_ntt;
      Alcotest.test_case "mul" `Quick test_mul;
      Alcotest.test_case "div_by_linear" `Quick test_div_by_linear;
      Alcotest.test_case "lagrange" `Quick test_lagrange;
      Alcotest.test_case "batch_apis" `Quick test_batch_apis;
      Alcotest.test_case "blocked_matches_reference" `Quick
        test_blocked_matches_reference;
      Alcotest.test_case "ntt_preserves_inputs" `Quick
        test_ntt_preserves_inputs;
      Alcotest.test_case "vanishing" `Quick test_vanishing
    ]
end

module Fp61_suite = Make_suite (Zkml_ff.Fp61)
module Pasta_suite = Make_suite (Zkml_ff.Pasta.Fq)

let () =
  Alcotest.run "poly"
    [ ("fp61", Fp61_suite.suite); ("pasta_fq", Pasta_suite.suite) ]
