(* Equivalence tests for the compiled quotient evaluator (PR 5).

   The evaluator lowers the combined constraint polynomial into a flat
   register program once per circuit; the interpreter path
   (ZKML_EVAL=interp) stays available as a reference oracle. Three
   layers of checks:

   1. qcheck: random expression lists (every Expr constructor,
      rotations, challenges) compiled and run over random grids must
      match a direct Horner fold over Expr.eval, at ext factors 1/4.
   2. a small hand-built circuit with gates + lookup + copies proves
      byte-identically under interp/compiled at ZKML_JOBS=1 and 4.
   3. every zoo model proves byte-identically across the same 2x2
      matrix (small models Quick, big models Slow), and the compiled
      proof verifies.

   Everything is seeded, so failures replay exactly. *)

open Zkml_plonkish
module F = Zkml_ff.Fp61
module Ev = Evaluator.Make (F)
module Pool = Zkml_util.Pool
module Zoo = Zkml_models.Zoo
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Serve = Zkml_serve.Artifacts.Make (Kzg)
module Pipe = Serve.Pipe
module Proto = Pipe.Proto

(* Hermetic artifact cache, as in test_soundness. *)
let () =
  Unix.putenv "ZKML_CACHE_DIR"
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "zkml-test-evaluator-%d" (Unix.getpid ())))

let with_jobs j f =
  let saved = Pool.jobs () in
  Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

(* ZKML_EVAL can only be overwritten, not unset; "" selects the default
   (compiled) path, so restoring to "" is equivalent to never setting
   it. *)
let with_eval mode f =
  Unix.putenv "ZKML_EVAL" mode;
  Fun.protect ~finally:(fun () -> Unix.putenv "ZKML_EVAL" "") f

(* ------------------------------------------------------------------ *)
(* 1. qcheck: compiled program vs a direct Expr.eval fold.             *)

let nf = 2
let na = 3
let ni = 1
let nc = 2

let gen_expr : F.t Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self sz ->
         let leaf =
           oneof
             [
               map (fun i -> Expr.Const (F.of_int i)) (int_range (-20) 20);
               map2
                 (fun c r -> Expr.fixed ~rot:r c)
                 (int_range 0 (nf - 1)) (int_range (-2) 2);
               map2
                 (fun c r -> Expr.advice ~rot:r c)
                 (int_range 0 (na - 1)) (int_range (-2) 2);
               map2
                 (fun c r -> Expr.instance ~rot:r c)
                 (int_range 0 (ni - 1)) (int_range (-2) 2);
               map (fun i -> Expr.Challenge i) (int_range 0 (nc - 1));
             ]
         in
         if sz <= 1 then leaf
         else
           frequency
             [
               (2, leaf);
               ( 2,
                 map2 (fun a b -> Expr.Add (a, b)) (self (sz / 2))
                   (self (sz / 2)) );
               ( 2,
                 map2 (fun a b -> Expr.Sub (a, b)) (self (sz / 2))
                   (self (sz / 2)) );
               ( 2,
                 map2 (fun a b -> Expr.Mul (a, b)) (self (sz / 2))
                   (self (sz / 2)) );
               (1, map (fun e -> Expr.Neg e) (self (sz - 1)));
               ( 1,
                 map2
                   (fun e c -> Expr.Scaled (e, F.of_int c))
                   (self (sz - 1)) (int_range (-9) 9) );
             ])

let gen_case =
  let open QCheck.Gen in
  triple (list_size (int_range 1 3) gen_expr) (oneofl [ 1; 4 ]) int

let circuit_of polys : F.t Circuit.t =
  {
    Circuit.k = 3;
    num_fixed = nf;
    is_selector = Array.make nf false;
    advice_phases = Array.make na 0;
    num_instance = ni;
    num_challenges = nc;
    gates = [ { Circuit.gate_name = "random"; polys } ];
    lookups = [];
    copies = [];
    blinding = 2;
  }

let check_case (polys, factor, seed) =
  let circuit = circuit_of polys in
  let prog =
    Ev.compile circuit ~perm_cols:[||] ~deltas:[||] ~n_chunks:0 ~chunk:1
  in
  let ext_n = 8 * factor in
  let rng = Zkml_util.Rng.create (Int64.of_int seed) in
  let column () = Array.init ext_n (fun _ -> F.random rng) in
  let grid w = Array.init w (fun _ -> column ()) in
  let fixed = grid nf and advice = grid na and inst = grid ni in
  let bank = Array.concat [ fixed; advice; inst; grid 4 ] in
  let challenges = Array.init nc (fun _ -> F.random rng) in
  let theta = F.random rng
  and beta = F.random rng
  and gamma = F.random rng
  and y = F.random rng in
  let scalars = Ev.pack_scalars ~challenges ~theta ~beta ~gamma ~y in
  let out = Array.make ext_n F.zero in
  Ev.eval_rows_into prog ~bank ~scalars ~factor ~out ~lo:0 ~hi:ext_n;
  let wrap i r =
    let j = (i + (r * factor)) mod ext_n in
    if j < 0 then j + ext_n else j
  in
  let ok = ref true in
  for i = 0 to ext_n - 1 do
    let at g col r = g.(col).(wrap i r) in
    let value e =
      Expr.eval ~fixed_at:(at fixed) ~advice_at:(at advice)
        ~instance_at:(at inst)
        ~challenge:(fun c -> challenges.(c))
        ~add:F.add ~sub:F.sub ~mul:F.mul ~neg:F.neg
        ~scale:(fun c v -> F.mul c v)
        e
    in
    let expected =
      List.fold_left (fun acc p -> F.add (F.mul acc y) (value p)) F.zero polys
    in
    if not (F.equal out.(i) expected) then ok := false
  done;
  !ok

let qcheck_compiled_matches_interpreter =
  QCheck.Test.make ~count:200 ~name:"compiled program = Expr.eval fold"
    (QCheck.make gen_case) check_case

(* ------------------------------------------------------------------ *)
(* 2. compiler stats: CSE fires and the program shrinks.               *)

let test_compile_stats () =
  (* the same product appears in two polys of one gate, so hash-consing
     must dedup it; the shared [active]/boundary machinery plus folding
     keeps the op count strictly below the node count *)
  let shared = Expr.(Mul (advice 0, advice 1)) in
  let polys =
    Expr.
      [
        Mul (fixed 0, Sub (advice 2, shared));
        Mul (fixed 1, Sub (instance 0, shared));
      ]
  in
  let prog =
    Ev.compile (circuit_of polys) ~perm_cols:[||] ~deltas:[||] ~n_chunks:0
      ~chunk:1
  in
  Alcotest.(check bool) "CSE hits > 0" true (prog.Ev.p_cse_hits > 0);
  Alcotest.(check bool)
    "ops < graph nodes" true
    (Array.length prog.Ev.p_ops < prog.Ev.p_nodes);
  Alcotest.(check bool) "registers bounded" true
    (prog.Ev.p_nregs > 0 && prog.Ev.p_nregs <= Array.length prog.Ev.p_ops)

(* ------------------------------------------------------------------ *)
(* 3. small hand circuit (gates + lookup + copies), interp vs compiled
      at jobs 1 and 4 — the proof bytes must not move.                 *)

let hand_circuit : F.t Circuit.t =
  let open Expr in
  {
    Circuit.k = 5;
    num_fixed = 4;
    is_selector = [| true; false; false; true |];
    advice_phases = [| 0; 0; 0 |];
    num_instance = 1;
    num_challenges = 0;
    gates =
      [
        {
          Circuit.gate_name = "mul";
          polys = [ Mul (fixed 0, Sub (advice 2, Mul (advice 0, advice 1))) ];
        };
      ];
    lookups =
      [
        {
          Circuit.lookup_name = "relu";
          inputs = [ Mul (fixed 3, advice 0); Mul (fixed 3, advice 1) ];
          tables = [ fixed 1; fixed 2 ];
        };
      ];
    copies =
      [
        ((Circuit.Col_advice 2, 0), (Circuit.Col_instance 0, 0));
        ((Circuit.Col_advice 2, 0), (Circuit.Col_advice 0, 1));
      ];
    blinding = 5;
  }

let hand_n = 1 lsl 5

let hand_fixed () =
  let s_mul = Array.make hand_n F.zero in
  let t_in = Array.make hand_n F.zero in
  let t_out = Array.make hand_n F.zero in
  let s_lk = Array.make hand_n F.zero in
  s_mul.(0) <- F.one;
  s_mul.(1) <- F.one;
  List.iteri
    (fun row i ->
      t_in.(row) <- F.of_int i;
      t_out.(row) <- F.of_int (max 0 i))
    (List.init 17 (fun j -> j - 8));
  s_lk.(2) <- F.one;
  [| s_mul; t_in; t_out; s_lk |]

let hand_advice () =
  let a = Array.make hand_n F.zero in
  let b = Array.make hand_n F.zero in
  let c = Array.make hand_n F.zero in
  a.(0) <- F.of_int 3;
  b.(0) <- F.of_int 4;
  c.(0) <- F.of_int 12;
  a.(1) <- F.of_int 12;
  a.(2) <- F.of_int (-3);
  [| a; b; c |]

let hand_instance () =
  let col = Array.make hand_n F.zero in
  col.(0) <- F.of_int 12;
  [| col |]

let test_hand_circuit_identical () =
  let params = Kzg.setup ~max_size:64 ~seed:"test-evaluator" in
  let keys = Proto.keygen params hand_circuit ~fixed:(hand_fixed ()) in
  let adv = hand_advice () in
  let prove () =
    Proto.proof_to_bytes
      (Proto.prove params keys ~instance:(hand_instance ())
         ~advice:(fun _ -> Array.map Array.copy adv)
         ~rng:(Zkml_util.Rng.create 101L))
  in
  let reference = with_jobs 1 (fun () -> with_eval "interp" prove) in
  List.iter
    (fun (jobs, mode) ->
      let bytes = with_jobs jobs (fun () -> with_eval mode prove) in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d %s = interp/jobs=1" jobs
           (if mode = "interp" then "interp" else "compiled"))
        true
        (String.equal reference bytes))
    [ (1, ""); (4, "interp"); (4, "") ];
  let proof = Proto.prove params keys ~instance:(hand_instance ())
      ~advice:(fun _ -> Array.map Array.copy adv)
      ~rng:(Zkml_util.Rng.create 101L)
  in
  Alcotest.(check bool)
    "compiled proof verifies" true
    (Proto.verify params keys ~instance:(hand_instance ()) proof)

(* ------------------------------------------------------------------ *)
(* 4. zoo models end to end: interp/compiled x jobs 1/4.               *)

let zoo_params = lazy (Kzg.setup ~max_size:(1 lsl 13) ~seed:"test-evaluator")

let run_model name =
  let m = Zoo.by_name name in
  let params = Lazy.force zoo_params in
  let entry, _ = Serve.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph in
  let keys = entry.Serve.e_keys in
  let w =
    Serve.witness entry ~cfg:m.Zoo.cfg m.Zoo.graph
      (Zoo.sample_inputs ~seed:1234L m)
  in
  let prove () =
    Proto.prove params keys ~instance:w.Pipe.w_instance
      ~advice:(fun _ -> Array.map Array.copy w.Pipe.w_advice)
      ~rng:(Zkml_util.Rng.create 1234L)
  in
  let reference =
    with_jobs 1 (fun () -> with_eval "interp" (fun () ->
        let p = prove () in
        Alcotest.(check bool)
          (name ^ " interp proof verifies")
          true
          (Proto.verify params keys ~instance:w.Pipe.w_instance p);
        Proto.proof_to_bytes p))
  in
  List.iter
    (fun (jobs, mode, label) ->
      let bytes =
        with_jobs jobs (fun () ->
            with_eval mode (fun () -> Proto.proof_to_bytes (prove ())))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s byte-identical to interp/jobs=1" name label)
        true
        (String.equal reference bytes))
    [
      (1, "", "compiled/jobs=1");
      (4, "interp", "interp/jobs=4");
      (4, "", "compiled/jobs=4");
    ]

let zoo_small () = List.iter run_model [ "mnist"; "dlrm"; "twitter"; "gpt2" ]

let zoo_big () =
  List.iter run_model [ "resnet18"; "mobilenet"; "vgg16"; "diffusion" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "evaluator"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest ~long:false
            qcheck_compiled_matches_interpreter;
          Alcotest.test_case "compile_stats" `Quick test_compile_stats;
          Alcotest.test_case "hand_circuit" `Quick test_hand_circuit_identical;
          Alcotest.test_case "zoo_small" `Quick zoo_small;
          Alcotest.test_case "zoo_big" `Slow zoo_big;
        ] );
    ]
