(* Model-zoo tests: every paper model executes under both executors,
   lays out, serializes, and (for the fast subset) proves and verifies
   end to end, including the serialized-proof path used by the CLI. *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Zoo = Zkml_models.Zoo
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Ipa = Zkml_commit.Ipa.Make (Sim61)
module Pipe = Zkml_compiler.Pipeline.Make (Kzg)
module Pipe_ipa = Zkml_compiler.Pipeline.Make (Ipa)
module Opt = Zkml_compiler.Optimizer

let kzg_params = Kzg.setup ~max_size:(1 lsl 13) ~seed:"test-models"
let ipa_params = Ipa.setup ~max_size:(1 lsl 13) ~seed:"test-models"

let test_all_models_execute () =
  List.iter
    (fun m ->
      let inputs = Zoo.sample_inputs m in
      (* float executor runs *)
      let fv = Zkml_nn.Float_exec.run m.Zoo.graph ~inputs in
      Alcotest.(check bool)
        (m.Zoo.name ^ " float output finite")
        true
        (List.for_all
           (fun out -> T.fold (fun acc v -> acc && Float.is_finite v) true out)
           (List.map (fun id -> fv.(id)) (Zkml_nn.Graph.outputs m.Zoo.graph)));
      (* fixed-point executor runs without saturation *)
      let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
      let _ = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
      ())
    (Zoo.all ())

let test_all_models_lay_out () =
  List.iter
    (fun m ->
      let qinputs =
        List.map (T.map (Fx.quantize m.Zoo.cfg)) (Zoo.sample_inputs m)
      in
      let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
      let l =
        Zkml_compiler.Lower.lower ~spec:Zkml_compiler.Layout_spec.default
          ~cfg:m.Zoo.cfg ~ncols:16 ~counting:true m.Zoo.graph exec
      in
      let rows =
        l.Zkml_compiler.Lower.layouter.Zkml_compiler.Layouter.nrows
      in
      Alcotest.(check bool) (m.Zoo.name ^ " has rows") true (rows > 0))
    (Zoo.all ())

let test_all_models_serialize () =
  List.iter
    (fun m ->
      let text = Zkml_nn.Serialize.to_string m.Zoo.graph in
      let g = Zkml_nn.Serialize.of_string_exn text in
      Alcotest.(check int)
        (m.Zoo.name ^ " node count")
        (Zkml_nn.Graph.num_nodes m.Zoo.graph)
        (Zkml_nn.Graph.num_nodes g);
      (* reloaded graph computes the same quantized outputs *)
      let qinputs =
        List.map (T.map (Fx.quantize m.Zoo.cfg)) (Zoo.sample_inputs m)
      in
      let e1 = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
      let e2 = Zkml_nn.Quant_exec.run m.Zoo.cfg g ~inputs:qinputs in
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (m.Zoo.name ^ " same outputs")
            true
            (T.equal ( = ) a b))
        (Zkml_nn.Quant_exec.output_values e1 m.Zoo.graph)
        (Zkml_nn.Quant_exec.output_values e2 g))
    (Zoo.all ())

(* the small models prove quickly enough for the unit suite; the full
   Table 6/7 sweep lives in bench/main.exe *)
let prove_model backend m =
  match backend with
  | `Kzg ->
      let r =
        Pipe.run ~cfg:m.Zoo.cfg ~params:kzg_params m.Zoo.graph
          (Zoo.sample_inputs m)
      in
      r.Pipe.verified
  | `Ipa ->
      let r =
        Pipe_ipa.run ~cfg:m.Zoo.cfg ~params:ipa_params m.Zoo.graph
          (Zoo.sample_inputs m)
      in
      r.Pipe_ipa.verified

let test_small_models_prove_kzg () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Zoo.name ^ " kzg") true (prove_model `Kzg m))
    [ Zoo.mnist (); Zoo.dlrm (); Zoo.twitter (); Zoo.gpt2 () ]

let test_small_models_prove_ipa () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Zoo.name ^ " ipa") true (prove_model `Ipa m))
    [ Zoo.dlrm (); Zoo.gpt2 () ]

let test_big_models_prove () =
  List.iter
    (fun m ->
      Alcotest.(check bool) (m.Zoo.name ^ " kzg") true (prove_model `Kzg m))
    [ Zoo.resnet18 (); Zoo.mobilenet (); Zoo.vgg16 (); Zoo.diffusion () ]

(* serialized-proof path: prove, write bytes, rebuild keys from the
   public structure, parse, verify; then tamper and expect rejection *)
let test_proof_bytes_roundtrip () =
  let m = Zoo.dlrm () in
  let inputs = Zoo.sample_inputs m in
  let r = Pipe.run ~cfg:m.Zoo.cfg ~params:kzg_params m.Zoo.graph inputs in
  Alcotest.(check bool) "proves" true r.Pipe.verified;
  let bytes = Pipe.Proto.proof_to_bytes r.Pipe.proof in
  (* recover the public instance exactly as the CLI does *)
  let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
  let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
  let lowered =
    Zkml_compiler.Lower.lower_with ~spec_fn:r.Pipe.plan.Opt.spec_fn
      ~cfg:m.Zoo.cfg ~ncols:r.Pipe.plan.Opt.ncols ~counting:false m.Zoo.graph
      exec
  in
  let built =
    Zkml_compiler.Layouter.finalize lowered.Zkml_compiler.Lower.layouter
      ~blinding:Opt.blinding ~k:r.Pipe.plan.Opt.k
  in
  let instance_ints = built.Zkml_compiler.Layouter.instance_col in
  let keys =
    Pipe.rebuild_keys kzg_params ~spec:r.Pipe.plan.Opt.spec
      ~ncols:r.Pipe.plan.Opt.ncols ~k:r.Pipe.plan.Opt.k ~cfg:m.Zoo.cfg
      m.Zoo.graph
  in
  Alcotest.(check bool)
    "parsed proof verifies" true
    (Pipe.verify_bytes kzg_params keys ~instance_ints bytes);
  (* flip one byte *)
  let tampered = Bytes.of_string bytes in
  Bytes.set tampered 100 (Char.chr (Char.code (Bytes.get tampered 100) lxor 1));
  Alcotest.(check bool)
    "tampered proof rejected" false
    (Pipe.verify_bytes kzg_params keys ~instance_ints
       (Bytes.to_string tampered));
  (* claim a different public value *)
  let forged = Array.copy instance_ints in
  forged.(0) <- forged.(0) + 1;
  Alcotest.(check bool)
    "forged instance rejected" false
    (Pipe.verify_bytes kzg_params keys ~instance_ints:forged bytes);
  (* truncated proof is rejected, not a crash *)
  Alcotest.(check bool)
    "truncated proof rejected" false
    (Pipe.verify_bytes kzg_params keys ~instance_ints
       (String.sub bytes 0 (String.length bytes - 8)))

let test_stats_sane () =
  (* relative ordering of parameter counts mirrors the architectures *)
  let params name =
    (Zkml_nn.Stats.compute (Zoo.by_name name).Zoo.graph).Zkml_nn.Stats.params
  in
  Alcotest.(check bool) "vgg heaviest vision" true
    (params "vgg16" > params "resnet18");
  Alcotest.(check bool) "twitter > dlrm" true
    (params "twitter" > params "dlrm");
  let flops name =
    (Zkml_nn.Stats.compute (Zoo.by_name name).Zoo.graph).Zkml_nn.Stats.flops
  in
  Alcotest.(check bool) "conv nets dominate flops" true
    (flops "resnet18" > flops "gpt2")

let () =
  Alcotest.run "models"
    [ ( "executors",
        [ Alcotest.test_case "all_execute" `Quick test_all_models_execute;
          Alcotest.test_case "all_lay_out" `Quick test_all_models_lay_out;
          Alcotest.test_case "all_serialize" `Quick test_all_models_serialize;
          Alcotest.test_case "stats_sane" `Quick test_stats_sane
        ] );
      ( "proving",
        [ Alcotest.test_case "small_kzg" `Quick test_small_models_prove_kzg;
          Alcotest.test_case "small_ipa" `Quick test_small_models_prove_ipa;
          Alcotest.test_case "big_kzg" `Slow test_big_models_prove;
          Alcotest.test_case "proof_bytes_roundtrip" `Quick
            test_proof_bytes_roundtrip
        ] )
    ]
