(* Differential testing across the three executors.

   For every zoo model, over seeded random inputs:

   1. float-vs-quant: the fixed-point executor tracks the float executor
      on every output element within a fixed-point error bound (the
      paper's quantization argument, §5: scale-1/SF rounding per op, so
      output error is a small multiple of 1/SF).

   2. quant-vs-witness: the circuit witness is an *exact* encoding of
      the fixed-point execution — the public instance column exposes the
      quantized inputs first and the quantized outputs last, and both
      segments must equal the executor's values integer-for-integer. No
      proving needed: this pins the statement the prover later proves to
      the semantics the executors define.

   Seeds are pinned; a seed that drives an activation outside the
   model's lookup-table range (possible for the coarse default scale) is
   skipped deterministically — such inputs are unprovable by
   construction — and at least one seed must survive per model. *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Zoo = Zkml_models.Zoo
module FE = Zkml_nn.Float_exec
module QE = Zkml_nn.Quant_exec
module Opt = Zkml_compiler.Optimizer
module Spec = Zkml_compiler.Layout_spec
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Pipe = Zkml_compiler.Pipeline.Make (Kzg)

let seeds = [ 1234L; 1235L; 1236L ]

(* Empirically most zoo models stay within ~5/SF of the float executor
   (deepest model, worst seed); 8/SF leaves slack without losing the
   scale-linearity of the claim. The transformer (softmax + layernorm
   chains, both sensitive to scale-1/SF rounding of exp/rsqrt inputs)
   needs twice that. *)
let tolerance m cfg =
  let mult = if m.Zoo.name = "gpt2" then 16.0 else 8.0 in
  mult /. float_of_int (Fx.sf cfg)

let rec ceil_log2 n acc = if 1 lsl acc >= n then acc else ceil_log2 n (acc + 1)

(* A valid physical layout for witness building: default logical spec,
   16 advice columns, smallest row count that fits (bumped until the
   layouter accepts — lookup tables put their own floor on k). *)
let witness_for m exec inputs =
  let cfg = m.Zoo.cfg in
  let counted =
    Zkml_compiler.Lower.lower ~spec:Spec.default ~cfg ~ncols:16 ~counting:true
      m.Zoo.graph exec
  in
  let rows = counted.Zkml_compiler.Lower.layouter.Zkml_compiler.Layouter.nrows in
  let k0 = ceil_log2 (rows + Opt.blinding + 1) 1 in
  let rec try_k k =
    if k > 15 then Alcotest.failf "%s: no k <= 15 fits" m.Zoo.name
    else
      match
        Pipe.witness ~spec:Spec.default ~ncols:16 ~k ~cfg m.Zoo.graph inputs
      with
      | w -> w
      | exception
          ( Invalid_argument _ | Failure _
          | Zkml_compiler.Layouter.Layout_invalid _ ) ->
          try_k (k + 1)
  in
  try_k k0

let quant_exec m inputs =
  QE.run m.Zoo.cfg m.Zoo.graph
    ~inputs:(List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs)

(* float executor vs fixed-point executor, elementwise *)
let check_float_vs_quant m seed inputs exec =
  let fv = FE.run m.Zoo.graph ~inputs in
  let tol = tolerance m m.Zoo.cfg in
  List.iter
    (fun out ->
      let f = fv.(out) and q = exec.QE.values.(out) in
      T.iteri
        (fun i fx ->
          let qx = Fx.dequantize m.Zoo.cfg (T.get_flat q i) in
          if Float.abs (fx -. qx) > tol then
            Alcotest.failf
              "%s seed %Ld out %d elem %d: float %.5f vs quant %.5f exceeds \
               %.5f"
              m.Zoo.name seed out i fx qx tol)
        f)
    (Zkml_nn.Graph.outputs m.Zoo.graph)

(* instance column vs fixed-point executor, exact. The lowering exposes
   input cells first (graph-node order) and output cells last
   (Graph.outputs order), each tensor flattened row-major. *)
let check_witness_vs_quant m seed inputs exec =
  let w = witness_for m exec inputs in
  let ints = w.Pipe.w_instance_ints in
  let input_vals =
    Zkml_nn.Graph.nodes m.Zoo.graph |> Array.to_list
    |> List.concat_map (fun (n : Zkml_nn.Graph.node) ->
           match n.Zkml_nn.Graph.op with
           | Zkml_nn.Op.Input _ ->
               Array.to_list (T.data exec.QE.values.(n.Zkml_nn.Graph.id))
           | _ -> [])
  in
  let output_vals =
    List.concat_map
      (fun out -> Array.to_list (T.data exec.QE.values.(out)))
      (Zkml_nn.Graph.outputs m.Zoo.graph)
  in
  let ni = List.length input_vals and no = List.length output_vals in
  (* the exposed cells are the prefix of the (power-of-two padded)
     instance column; everything past them is zero padding *)
  Alcotest.(check bool)
    (Printf.sprintf "%s seed %Ld instance fits" m.Zoo.name seed)
    true
    (Array.length ints >= ni + no);
  for i = ni + no to Array.length ints - 1 do
    if ints.(i) <> 0 then
      Alcotest.failf "%s seed %Ld: nonzero instance padding at %d" m.Zoo.name
        seed i
  done;
  List.iteri
    (fun i v ->
      if ints.(i) <> v then
        Alcotest.failf "%s seed %Ld input cell %d: witness %d <> quant %d"
          m.Zoo.name seed i ints.(i) v)
    input_vals;
  List.iteri
    (fun i v ->
      if ints.(ni + i) <> v then
        Alcotest.failf "%s seed %Ld output cell %d: witness %d <> quant %d"
          m.Zoo.name seed i ints.(ni + i) v)
    output_vals

let run_model name =
  let m = Zoo.by_name name in
  let clean = ref 0 in
  List.iter
    (fun seed ->
      let inputs = Zoo.sample_inputs ~seed m in
      match quant_exec m inputs with
      | exception QE.Out_of_range _ ->
          (* this input saturates the lookup table: unprovable by
             construction, skipped deterministically *)
          ()
      | exec ->
          incr clean;
          check_float_vs_quant m seed inputs exec;
          check_witness_vs_quant m seed inputs exec)
    seeds;
  Alcotest.(check bool)
    (name ^ " has at least one clean seed")
    true (!clean >= 1)

let small = [ "mnist"; "dlrm"; "twitter"; "gpt2" ]
let big = [ "resnet18"; "mobilenet"; "vgg16"; "diffusion" ]

let () =
  Alcotest.run "differential"
    [
      ( "executors",
        [
          Alcotest.test_case "small" `Quick (fun () ->
              List.iter run_model small);
          Alcotest.test_case "big" `Slow (fun () -> List.iter run_model big);
        ] );
    ]
