(* Field axiom and algorithm tests, run over all three field
   instantiations via a functor. *)

module Make_suite (F : Zkml_ff.Field_intf.S) = struct
  module Extra = Zkml_ff.Field_extra.Make (F)

  let rng = Zkml_util.Rng.create 7L

  let arb =
    QCheck.make
      ~print:(fun x -> F.to_hex x)
      (QCheck.Gen.map (fun seed -> F.random (Zkml_util.Rng.create seed)) QCheck.Gen.int64)

  let check_eq msg a b = Alcotest.(check bool) msg true (F.equal a b)

  let test_basic_identities () =
    check_eq "0+0" F.zero (F.add F.zero F.zero);
    check_eq "1*1" F.one (F.mul F.one F.one);
    check_eq "1+(-1)" F.zero (F.add F.one (F.neg F.one));
    check_eq "2*3=6" (F.of_int 6) (F.mul (F.of_int 2) (F.of_int 3));
    check_eq "of_int neg" (F.neg (F.of_int 5)) (F.of_int (-5));
    check_eq "sub" (F.of_int 2) (F.sub (F.of_int 7) (F.of_int 5))

  let test_generator_order () =
    (* generator^((p-1)/2) must be -1 (it is a non-residue). *)
    let e = Extra.legendre F.generator in
    check_eq "legendre(g) = -1" (F.neg F.one) e

  let test_root_of_unity () =
    for k = 1 to min 12 F.two_adicity do
      let w = F.root_of_unity k in
      let full = F.pow_int w (1 lsl k) in
      check_eq (Printf.sprintf "w^(2^%d)=1" k) F.one full;
      let half = F.pow_int w (1 lsl (k - 1)) in
      check_eq (Printf.sprintf "w^(2^%d)=-1" (k - 1)) (F.neg F.one) half
    done

  let test_bytes_roundtrip () =
    for _ = 1 to 200 do
      let x = F.random rng in
      let s = F.to_bytes x in
      Alcotest.(check int) "size" F.size_bytes (String.length s);
      check_eq "roundtrip" x (F.of_bytes_exn s)
    done

  let test_sqrt () =
    for _ = 1 to 50 do
      let x = F.random rng in
      let sq = F.square x in
      match Extra.sqrt sq with
      | None -> Alcotest.fail "square has no root"
      | Some r -> check_eq "sqrt^2" sq (F.square r)
    done

  let test_batch_inv () =
    let xs =
      Array.init 37 (fun _ ->
          let rec nz () =
            let x = F.random rng in
            if F.is_zero x then nz () else x
          in
          nz ())
    in
    let invs = Extra.batch_inv xs in
    Array.iteri
      (fun i x -> check_eq "batch inv" F.one (F.mul x invs.(i)))
      xs

  let test_inv_zero () =
    Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
        ignore (F.inv F.zero))

  let prop_tests =
    let open QCheck in
    [ Test.make ~name:"add_comm" ~count:200 (pair arb arb) (fun (a, b) ->
          F.equal (F.add a b) (F.add b a));
      Test.make ~name:"mul_comm" ~count:200 (pair arb arb) (fun (a, b) ->
          F.equal (F.mul a b) (F.mul b a));
      Test.make ~name:"mul_assoc" ~count:200 (triple arb arb arb)
        (fun (a, b, c) ->
          F.equal (F.mul a (F.mul b c)) (F.mul (F.mul a b) c));
      Test.make ~name:"distrib" ~count:200 (triple arb arb arb)
        (fun (a, b, c) ->
          F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
      Test.make ~name:"inv" ~count:200 arb (fun a ->
          F.is_zero a || F.equal F.one (F.mul a (F.inv a)));
      Test.make ~name:"square" ~count:200 arb (fun a ->
          F.equal (F.square a) (F.mul a a));
      Test.make ~name:"sub_add" ~count:200 (pair arb arb) (fun (a, b) ->
          F.equal a (F.add (F.sub a b) b));
      Test.make ~name:"pow_int_7" ~count:50 arb (fun a ->
          F.equal (F.pow_int a 7)
            (F.mul a (F.mul (F.square a) (F.square (F.square a)))));
      Test.make ~name:"compare_refl" ~count:100 (pair arb arb) (fun (a, b) ->
          (F.compare a b = 0) = F.equal a b)
    ]

  (* [compare] must order by canonical residue, not by internal
     (Montgomery) representation: its sign has to match a lexicographic
     compare of the canonical limbs. The seed implementation got this
     wrong for the 4-limb fields. *)
  let canonical_cmp a b =
    let la = F.to_canonical_limbs a and lb = F.to_canonical_limbs b in
    let rec go i =
      if i < 0 then 0
      else
        let c = Int64.unsigned_compare la.(i) lb.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Array.length la - 1)

  let sign x = Stdlib.compare x 0

  let compare_props =
    let open QCheck in
    [ Test.make ~name:"compare_canonical" ~count:300 (pair arb arb)
        (fun (a, b) -> sign (F.compare a b) = sign (canonical_cmp a b));
      Test.make ~name:"compare_antisym" ~count:100 (pair arb arb)
        (fun (a, b) -> sign (F.compare a b) = -sign (F.compare b a))
    ]

  (* Destination-passing API: every [_into] op must agree with its
     allocating counterpart, including when the destination aliases an
     operand. For immutable representations the ops must refue loudly
     rather than silently misbehave. *)
  let into_props =
    let open QCheck in
    if not F.mutable_repr then
      [ Test.make ~name:"into_immutable_raises" ~count:10 (pair arb arb)
          (fun (a, b) ->
            let raises f =
              match f () with
              | () -> false
              | exception Invalid_argument _ -> true
            in
            raises (fun () -> F.add_into (F.scratch ()) a b)
            && raises (fun () -> F.mul_into (F.scratch ()) a b)
            && raises (fun () -> F.set (F.scratch ()) a))
      ]
    else
      [ Test.make ~name:"mul_into" ~count:300 (pair arb arb) (fun (a, b) ->
            let d = F.scratch () in
            F.mul_into d a b;
            F.equal d (F.mul a b));
        Test.make ~name:"add_into" ~count:300 (pair arb arb) (fun (a, b) ->
            let d = F.scratch () in
            F.add_into d a b;
            F.equal d (F.add a b));
        Test.make ~name:"sub_into" ~count:300 (pair arb arb) (fun (a, b) ->
            let d = F.scratch () in
            F.sub_into d a b;
            F.equal d (F.sub a b));
        Test.make ~name:"neg_into" ~count:300 arb (fun a ->
            let d = F.scratch () in
            F.neg_into d a;
            F.equal d (F.neg a));
        Test.make ~name:"square_into" ~count:300 arb (fun a ->
            let d = F.scratch () in
            F.square_into d a;
            F.equal d (F.square a));
        Test.make ~name:"mul_into_alias_left" ~count:300 (pair arb arb)
          (fun (a, b) ->
            let d = F.unshare a in
            F.mul_into d d b;
            F.equal d (F.mul a b));
        Test.make ~name:"mul_into_alias_right" ~count:300 (pair arb arb)
          (fun (a, b) ->
            let d = F.unshare b in
            F.mul_into d a d;
            F.equal d (F.mul a b));
        Test.make ~name:"mul_into_alias_both" ~count:300 arb (fun a ->
            let d = F.unshare a in
            F.mul_into d d d;
            F.equal d (F.square a));
        Test.make ~name:"add_into_alias" ~count:300 arb (fun a ->
            let d = F.unshare a in
            F.add_into d d d;
            F.equal d (F.add a a));
        Test.make ~name:"sub_into_alias" ~count:300 (pair arb arb)
          (fun (a, b) ->
            let d = F.unshare a in
            F.sub_into d d b;
            F.equal d (F.sub a b));
        Test.make ~name:"set_unshare" ~count:100 (pair arb arb)
          (fun (a, b) ->
            (* unshare detaches: writing the copy must not disturb the
               original *)
            let d = F.unshare a in
            F.set d b;
            F.equal d b && F.equal a (F.mul F.one a));
        Test.make ~name:"into_edge_cases" ~count:1
          (always ())
          (fun () ->
            let pm1 = F.neg F.one in
            List.for_all
              (fun (x, y) ->
                let d = F.scratch () in
                F.mul_into d x y;
                let ok_mul = F.equal d (F.mul x y) in
                F.add_into d x y;
                let ok_add = F.equal d (F.add x y) in
                F.sub_into d x y;
                ok_mul && ok_add && F.equal d (F.sub x y))
              [ (F.zero, F.zero); (F.zero, F.one); (F.one, F.zero);
                (pm1, pm1); (pm1, F.one); (F.one, pm1)
              ])
      ]

  let suite =
    [ Alcotest.test_case "basic_identities" `Quick test_basic_identities;
      Alcotest.test_case "generator_order" `Quick test_generator_order;
      Alcotest.test_case "root_of_unity" `Quick test_root_of_unity;
      Alcotest.test_case "bytes_roundtrip" `Quick test_bytes_roundtrip;
      Alcotest.test_case "sqrt" `Quick test_sqrt;
      Alcotest.test_case "batch_inv" `Quick test_batch_inv;
      Alcotest.test_case "inv_zero" `Quick test_inv_zero
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false)
        (prop_tests @ compare_props @ into_props)
end

module Fp61_suite = Make_suite (Zkml_ff.Fp61)
module Pasta_fp_suite = Make_suite (Zkml_ff.Pasta.Fp)
module Pasta_fq_suite = Make_suite (Zkml_ff.Pasta.Fq)

(* Cross-check Fp61 Montgomery arithmetic against a trusted slow path
   using OCaml native ints (p < 2^62 so add fits; mul checked via
   16-bit limb schoolbook). *)
let test_fp61_against_reference () =
  let p = 0x3A00000000000001 in
  let slow_mulmod a b =
    (* split b into four 16-bit limbs *)
    let r = ref 0 in
    for i = 3 downto 0 do
      let limb = (b lsr (16 * i)) land 0xFFFF in
      for _ = 1 to 16 do
        r := !r * 2 mod p
      done;
      r := (!r + (a * limb mod p)) mod p
    done;
    !r
  in
  (* a * limb with a < 2^62 and limb < 2^16 overflows 63-bit ints, so
     split a too. *)
  let slow_mulmod a b =
    ignore slow_mulmod;
    let a_lo = a land 0x7FFFFFFF and a_hi = a lsr 31 in
    let r = ref 0 in
    (* doubling that avoids 63-bit overflow: 2x mod p without forming 2x *)
    let double_mod x = if x < p - x then x + x else x - (p - x) in
    let add_shifted x shift =
      let x = ref (x mod p) in
      for _ = 1 to shift do
        x := double_mod !x
      done;
      (* r + x can exceed max_int; use the same overflow-safe form *)
      r := (if !r < p - !x then !r + !x else !r - (p - !x))
    in
    (* decompose b into 15-bit limbs so each partial product fits *)
    let rec limbs b shift =
      if b = 0 then ()
      else begin
        let limb = b land 0x7FFF in
        if limb <> 0 then begin
          add_shifted (a_lo * limb) shift;
          add_shifted (a_hi * limb) (shift + 31)
        end;
        limbs (b lsr 15) (shift + 15)
      end
    in
    limbs b 0;
    !r
  in
  let rng = Zkml_util.Rng.create 99L in
  for _ = 1 to 500 do
    let a = Zkml_util.Rng.int rng p and b = Zkml_util.Rng.int rng p in
    let expected = slow_mulmod a b in
    let got =
      Zkml_ff.Fp61.(
        to_canonical_limbs (mul (of_int a) (of_int b))).(0)
    in
    Alcotest.(check int64) "mulmod" (Int64.of_int expected) got
  done

(* The unrolled CIOS kernel against the original tuple-based reference
   multiplier kept in Limb4 for exactly this purpose. *)
let test_mul_ref_equiv () =
  let module Check (F : Zkml_ff.Limb4.S_EXT) (N : sig
    val name : string
  end) =
  struct
    let () =
      let rng = Zkml_util.Rng.create 2024L in
      for _ = 1 to 2000 do
        let a = F.random rng and b = F.random rng in
        Alcotest.(check bool)
          (N.name ^ " mul = mul_ref") true
          (F.equal (F.mul a b) (F.mul_ref a b))
      done;
      let pm1 = F.neg F.one in
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool)
            (N.name ^ " mul = mul_ref edge") true
            (F.equal (F.mul a b) (F.mul_ref a b)))
        [ (F.zero, F.zero); (F.one, F.one); (pm1, pm1); (pm1, F.one) ]
  end in
  let module _ =
    Check
      (Zkml_ff.Pasta.Fp)
      (struct
        let name = "fp"
      end)
  in
  let module _ =
    Check
      (Zkml_ff.Pasta.Fq)
      (struct
        let name = "fq"
      end)
  in
  ()

(* Multiprecision limb layer backing the GLV derivation: cross-check the
   ring ops against native ints on small values and internal identities
   (division, shifts) on multi-limb ones. *)
let limbs_tests =
  let module L = Zkml_ff.Limbs in
  let open QCheck in
  let small = Gen.map Int64.abs Gen.int64 in
  let arb_small = make ~print:Int64.to_string small in
  let arb_wide =
    make
      ~print:(fun a ->
        String.concat ","
          (Array.to_list (Array.map (Printf.sprintf "%Lx") a)))
      (Gen.map
         (fun (n, s) ->
           let st = Random.State.make [| Int64.to_int s |] in
           Array.init (1 + (abs n mod 5)) (fun _ -> Random.State.int64 st Int64.max_int))
         Gen.(pair int int64))
  in
  [ Test.make ~name:"limbs_add_small" ~count:500 (pair arb_small arb_small)
      (fun (a, b) ->
        let a = Int64.shift_right_logical a 2
        and b = Int64.shift_right_logical b 2 in
        L.compare (L.add [| a |] [| b |]) [| Int64.add a b |] = 0);
    Test.make ~name:"limbs_mul_small" ~count:500 (pair arb_small arb_small)
      (fun (a, b) ->
        let a = Int64.logand a 0xFFFFFFFFL and b = Int64.logand b 0xFFFFFFFFL in
        L.compare (L.mul [| a |] [| b |]) [| Int64.mul a b |] = 0);
    Test.make ~name:"limbs_sub_roundtrip" ~count:500 (pair arb_wide arb_wide)
      (fun (a, b) ->
        let s = L.add a b in
        L.compare (L.sub_exn s b) a = 0 && L.compare (L.sub_exn s a) b = 0);
    Test.make ~name:"limbs_div_rem" ~count:500 (pair arb_wide arb_wide)
      (fun (a, b) ->
        if L.is_zero b then true
        else begin
          let q, r = L.div_rem a b in
          L.compare r b < 0 && L.compare (L.add (L.mul q b) r) a = 0
        end);
    Test.make ~name:"limbs_shift_roundtrip" ~count:500 arb_wide (fun a ->
        List.for_all
          (fun k -> L.compare (L.shift_right (L.shift_left a k) k) a = 0)
          [ 1; 63; 64; 65; 200 ]);
    Test.make ~name:"limbs_bits" ~count:500 arb_wide (fun a ->
        let n = L.bits a in
        if L.is_zero a then n = 0
        else
          L.compare a (L.shift_left [| 1L |] n) < 0
          && L.compare a (L.shift_left [| 1L |] (n - 1)) >= 0);
    Test.make ~name:"limbs_compare_padding" ~count:200 arb_wide (fun a ->
        L.compare a (Array.append a [| 0L; 0L |]) = 0);
    Test.make ~name:"limbs_signed_ring" ~count:500 (pair arb_wide arb_wide)
      (fun (a, b) ->
        let module S = L.Signed in
        let sa = S.of_limbs a and sb = S.of_limbs ~neg:true b in
        (* (a - b) + b = a in sign-magnitude *)
        let d = S.add sa sb in
        let back = S.sub d sb in
        (not back.S.neg || S.is_zero back) && L.compare back.S.mag a = 0)
  ]

(* Known-answer test for the Pasta moduli: -1 serializes to p - 1. *)
let test_pasta_minus_one () =
  let open Zkml_ff in
  let hex = Pasta.Fp.to_hex (Pasta.Fp.neg Pasta.Fp.one) in
  Alcotest.(check string) "pallas p-1"
    "40000000000000000000000000000000224698fc094cf91b992d30ed00000000" hex;
  let hex = Pasta.Fq.to_hex (Pasta.Fq.neg Pasta.Fq.one) in
  Alcotest.(check string) "vesta q-1"
    "40000000000000000000000000000000224698fc0994a8dd8c46eb2100000000" hex

let () =
  Alcotest.run "ff"
    [ ("fp61", Fp61_suite.suite);
      ("pasta_fp", Pasta_fp_suite.suite);
      ("pasta_fq", Pasta_fq_suite.suite);
      ( "cross_checks",
        [ Alcotest.test_case "fp61_vs_reference" `Quick
            test_fp61_against_reference;
          Alcotest.test_case "pasta_minus_one" `Quick test_pasta_minus_one;
          Alcotest.test_case "mul_ref_equiv" `Quick test_mul_ref_equiv
        ] );
      ( "limbs",
        List.map (QCheck_alcotest.to_alcotest ~long:false) limbs_tests )
    ]
