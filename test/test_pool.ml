(* The domain pool: loop combinators, exception propagation, obs
   capture, and the headline guarantee — identical NTT/MSM/proof output
   at every job count. *)

module Pool = Zkml_util.Pool
module Obs = Zkml_obs.Obs

let with_jobs j f =
  let saved = Pool.jobs () in
  Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

(* every combinator test runs the parallel machinery for real *)
let par_jobs = 4

let test_empty_range () =
  with_jobs par_jobs @@ fun () ->
  let hits = ref 0 in
  Pool.parallel_for ~seq_below:0 0 (fun _ -> incr hits);
  Pool.parallel_for ~seq_below:0 (-3) (fun _ -> incr hits);
  Pool.parallel_for_ranges ~seq_below:0 0 (fun _ _ -> incr hits);
  Alcotest.(check int) "no iterations" 0 !hits;
  Alcotest.(check (array int)) "empty map" [||]
    (Pool.parallel_map_array (fun x -> x) [||]);
  Alcotest.(check int) "empty reduce" 7
    (Pool.parallel_reduce 0 ~init:7 ~map:(fun _ _ -> 0) ~combine:( + ))

let test_coverage_small_n () =
  (* n < jobs: every index exactly once *)
  with_jobs par_jobs @@ fun () ->
  List.iter
    (fun n ->
      let hits = Array.make (max n 1) 0 in
      Pool.parallel_for ~seq_below:0 n (fun i -> hits.(i) <- hits.(i) + 1);
      for i = 0 to n - 1 do
        Alcotest.(check int) (Printf.sprintf "n=%d i=%d" n i) 1 hits.(i)
      done)
    [ 1; 2; 3; 5; 100 ]

let test_ranges_partition () =
  with_jobs par_jobs @@ fun () ->
  let n = 1000 in
  let hits = Array.make n 0 in
  Pool.parallel_for_ranges ~seq_below:0 ~chunk:7 n (fun lo hi ->
      Alcotest.(check bool) "lo<hi" true (lo < hi);
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "i=%d" i) 1 h)
    hits

exception Boom

let test_exception_propagates () =
  List.iter
    (fun j ->
      with_jobs j @@ fun () ->
      match
        Pool.parallel_for ~seq_below:0 100 (fun i -> if i = 37 then raise Boom)
      with
      | () -> Alcotest.fail (Printf.sprintf "jobs=%d: no exception" j)
      | exception Boom -> ())
    [ 1; par_jobs ];
  (* the pool must survive a raising region *)
  with_jobs par_jobs @@ fun () ->
  let sum = ref 0 in
  Pool.parallel_reduce ~chunk:3 ~seq_below:0 10 ~init:0
    ~map:(fun lo hi ->
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + i
      done;
      !s)
    ~combine:( + )
  |> fun v -> sum := v;
  Alcotest.(check int) "pool alive after raise" 45 !sum

let test_map_and_reduce_match_sequential () =
  with_jobs par_jobs @@ fun () ->
  let a = Array.init 500 (fun i -> i) in
  Alcotest.(check (array int)) "map" (Array.map (fun x -> (x * x) + 1) a)
    (Pool.parallel_map_array (fun x -> (x * x) + 1) a);
  let expect = Array.fold_left ( + ) 0 a in
  List.iter
    (fun chunk ->
      Alcotest.(check int) (Printf.sprintf "reduce chunk=%d" chunk) expect
        (Pool.parallel_reduce ~chunk ~seq_below:0 500 ~init:0
           ~map:(fun lo hi ->
             let s = ref 0 in
             for i = lo to hi - 1 do
               s := !s + a.(i)
             done;
             !s)
           ~combine:( + )))
    [ 1; 13; 512 ]

let test_nested_no_deadlock () =
  with_jobs par_jobs @@ fun () ->
  let hits = Atomic.make 0 in
  Pool.parallel_for ~seq_below:0 8 (fun _ ->
      Pool.parallel_for ~seq_below:0 8 (fun _ ->
          ignore (Atomic.fetch_and_add hits 1)));
  Alcotest.(check int) "all inner iterations" 64 (Atomic.get hits)

let test_obs_capture () =
  with_jobs par_jobs @@ fun () ->
  let n = 64 in
  let (), report =
    Obs.with_enabled (fun () ->
        Obs.Span.with_ ~name:"outer" (fun () ->
            Pool.parallel_for ~seq_below:0 n (fun _ -> Obs.count "tick" 1)))
  in
  Alcotest.(check int)
    "ticks recorded across domains" n
    (int_of_float (Obs.counter_total report "tick"))

(* ------------------------------------------------------------------ *)
(* Determinism: kernel outputs and whole proofs are byte-identical at
   every job count. *)

module F = Zkml_ff.Fp61
module P = Zkml_poly.Polynomial.Make (F)
module G = Zkml_ec.Simulated.Make (F)
module M = Zkml_ec.Msm.Make (G)

let test_ntt_matches_across_jobs () =
  (* k=15 exceeds every sequential cutoff, so the parallel stage path
     really runs *)
  let k = 15 in
  let rng = Zkml_util.Rng.create 5L in
  let coeffs =
    with_jobs 1 (fun () ->
        let d = P.Domain.create k in
        P.random rng (P.Domain.size d))
  in
  let run j =
    with_jobs j @@ fun () ->
    let d = P.Domain.create k in
    let a = Array.copy coeffs in
    P.ntt d a;
    let c = P.coset_ntt d ~shift:F.generator coeffs in
    let back = P.coset_intt d ~shift:F.generator c in
    P.intt d a;
    (a, c, back)
  in
  let a1, c1, b1 = run 1 and a4, c4, b4 = run 4 in
  let eq name x y =
    Array.iteri
      (fun i v ->
        Alcotest.(check bool)
          (Printf.sprintf "%s[%d]" name i)
          true (F.equal v y.(i)))
      x
  in
  eq "ntt" a1 a4;
  eq "coset" c1 c4;
  eq "coset-roundtrip" b1 b4

let test_msm_matches_across_jobs () =
  let n = 300 in
  let rng = Zkml_util.Rng.create 9L in
  let points = Array.init n (fun _ -> G.mul G.generator (F.random rng)) in
  let scalars = Array.init n (fun _ -> F.random rng) in
  let r1 = with_jobs 1 (fun () -> M.msm points scalars) in
  let r4 = with_jobs 4 (fun () -> M.msm points scalars) in
  Alcotest.(check bool) "msm equal" true (G.equal r1 r4);
  let n1 = with_jobs 1 (fun () -> M.naive points scalars) in
  let n4 = with_jobs 4 (fun () -> M.naive points scalars) in
  Alcotest.(check bool) "naive equal" true (G.equal n1 n4);
  Alcotest.(check bool) "naive = pippenger" true (G.equal r1 n1)

(* Full prove/verify round-trip on a seed model: proof bytes must be
   identical at jobs=1 and jobs=4. *)
module Scheme = Zkml_commit.Kzg.Make (G)
module Pipe = Zkml_compiler.Pipeline.Make (Scheme)
module Zoo = Zkml_models.Zoo

let test_proof_bytes_across_jobs () =
  let m = Zoo.mnist () in
  let inputs = Zoo.sample_inputs m in
  let run j =
    with_jobs j @@ fun () ->
    let params = Scheme.setup ~max_size:(1 lsl 17) ~seed:"pool-test" in
    let r = Pipe.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs in
    Alcotest.(check bool)
      (Printf.sprintf "verified jobs=%d" j)
      true r.Pipe.verified;
    Pipe.Proto.proof_to_bytes r.Pipe.proof
  in
  let b1 = run 1 in
  let b4 = run 4 in
  Alcotest.(check int) "proof length" (String.length b1) (String.length b4);
  Alcotest.(check bool) "proof bytes identical" true (String.equal b1 b4)

let () =
  Alcotest.run "pool"
    [
      ( "combinators",
        [
          Alcotest.test_case "empty_range" `Quick test_empty_range;
          Alcotest.test_case "coverage_small_n" `Quick test_coverage_small_n;
          Alcotest.test_case "ranges_partition" `Quick test_ranges_partition;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "map_reduce" `Quick
            test_map_and_reduce_match_sequential;
          Alcotest.test_case "nested" `Quick test_nested_no_deadlock;
          Alcotest.test_case "obs_capture" `Quick test_obs_capture;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ntt_across_jobs" `Quick
            test_ntt_matches_across_jobs;
          Alcotest.test_case "msm_across_jobs" `Quick
            test_msm_matches_across_jobs;
          Alcotest.test_case "proof_bytes_across_jobs" `Slow
            test_proof_bytes_across_jobs;
        ] );
    ]
