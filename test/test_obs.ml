(* Tests for the tracing/metrics subsystem. All traces use an injected
   fake clock (exact binary fractions) so structure, durations and the
   serialized chrome-trace output are deterministic down to the byte. *)

module Obs = Zkml_obs.Obs

(* Fake clock: [tick] advances simulated time by an exact dyadic step. *)
let make_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun dt -> now := !now +. dt)

(* The reference trace used by several tests:
     prove [0.5 .. 1.25]
       ntt [0.75 .. 0.875]  ntt.size=512
       ntt [0.875 .. 0.9375]  ntt.size=256
       msm [0.9375 .. 1.1875]  msm.points=100
   plus gauge k=9; snapshot taken at t=1.25. *)
let record_reference () =
  let clock, tick = make_clock () in
  let (), report =
    Obs.with_enabled ~clock (fun () ->
        tick 0.5;
        Obs.Span.with_ ~name:"prove" (fun () ->
            tick 0.25;
            Obs.Span.with_ ~name:"ntt" (fun () ->
                Obs.count "ntt.size" 512;
                tick 0.125);
            Obs.Span.with_ ~name:"ntt" (fun () ->
                Obs.count "ntt.size" 256;
                tick 0.0625);
            Obs.Span.with_ ~name:"msm" (fun () ->
                Obs.count "msm.points" 100;
                tick 0.25);
            tick 0.0625);
        Obs.gauge_int "k" 9)
  in
  report

let test_nesting () =
  let report = record_reference () in
  Alcotest.(check (list string))
    "top-level spans" [ "prove" ]
    (List.map (fun n -> n.Obs.name) report.Obs.spans);
  let prove = List.hd report.Obs.spans in
  Alcotest.(check (list string))
    "children in execution order" [ "ntt"; "ntt"; "msm" ]
    (List.map (fun n -> n.Obs.name) prove.Obs.children);
  Alcotest.(check (float 0.0)) "prove start" 0.5 prove.Obs.start_s;
  Alcotest.(check (float 0.0)) "prove dur" 0.75 prove.Obs.dur_s;
  let starts = List.map (fun n -> n.Obs.start_s) prove.Obs.children in
  Alcotest.(check (list (float 0.0))) "child starts" [ 0.75; 0.875; 0.9375 ]
    starts;
  let durs = List.map (fun n -> n.Obs.dur_s) prove.Obs.children in
  Alcotest.(check (list (float 0.0))) "child durs" [ 0.125; 0.0625; 0.25 ] durs;
  Alcotest.(check (float 0.0)) "total" 1.25 report.Obs.total_s;
  Alcotest.(check (list (pair string (float 0.0))))
    "gauges" [ ("k", 9.0) ] report.Obs.gauges

let test_counters () =
  let report = record_reference () in
  Alcotest.(check (float 0.0))
    "ntt.size sums across spans" 768.0
    (Obs.counter_total report "ntt.size");
  Alcotest.(check (float 0.0))
    "msm.points" 100.0
    (Obs.counter_total report "msm.points");
  Alcotest.(check (float 0.0))
    "absent counter" 0.0
    (Obs.counter_total report "nope");
  let ntt =
    List.find (fun a -> a.Obs.agg_name = "ntt") (Obs.totals report)
  in
  Alcotest.(check int) "ntt calls" 2 ntt.Obs.agg_calls;
  Alcotest.(check (float 0.0)) "ntt aggregated time" 0.1875 ntt.Obs.agg_total_s;
  Alcotest.(check (list (pair string (float 0.0))))
    "ntt merged counters" [ ("ntt.size", 768.0) ] ntt.Obs.agg_counters;
  Alcotest.(check (float 0.0))
    "total_of under prove" 0.1875
    (Obs.total_of ~under:"prove" report "ntt");
  Alcotest.(check (float 0.0))
    "total_of absent subtree" 0.0
    (Obs.total_of ~under:"verify" report "ntt")

(* A span nested under a same-named ancestor must not be double counted
   in the per-name aggregation. *)
let test_same_name_suppression () =
  let clock, tick = make_clock () in
  let (), report =
    Obs.with_enabled ~clock (fun () ->
        Obs.Span.with_ ~name:"ntt" (fun () ->
            tick 0.25;
            Obs.Span.with_ ~name:"ntt" (fun () -> tick 0.5);
            tick 0.25))
  in
  let ntt =
    List.find (fun a -> a.Obs.agg_name = "ntt") (Obs.totals report)
  in
  Alcotest.(check int) "only the outer span counted" 1 ntt.Obs.agg_calls;
  Alcotest.(check (float 0.0)) "outer time only" 1.0 ntt.Obs.agg_total_s

let test_disabled_noop () =
  Obs.disable ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  (* every entry point must be a silent no-op and pass values through *)
  Alcotest.(check int) "span passthrough" 41
    (Obs.Span.with_ ~name:"x" (fun () -> 41));
  Obs.count "c" 1;
  Obs.countf "c" 1.0;
  Obs.gauge "g" 2.0;
  Obs.gauge_int "g" 2;
  Alcotest.(check bool) "no snapshot" true (Obs.snapshot () = None);
  (* exceptions propagate unchanged *)
  Alcotest.check_raises "raise passthrough" Exit (fun () ->
      Obs.Span.with_ ~name:"x" (fun () -> raise Exit));
  (* with_enabled restores the previous (disabled) state *)
  let v, report = Obs.with_enabled (fun () -> 7) in
  Alcotest.(check int) "with_enabled result" 7 v;
  Alcotest.(check bool) "report produced" true (report.Obs.total_s >= 0.0);
  Alcotest.(check bool) "sink restored" false (Obs.enabled ())

let test_span_exception_closes () =
  let clock, tick = make_clock () in
  let (), report =
    Obs.with_enabled ~clock (fun () ->
        (try
           Obs.Span.with_ ~name:"boom" (fun () ->
               tick 0.5;
               raise Exit)
         with Exit -> ());
        Obs.Span.with_ ~name:"after" (fun () -> tick 0.25))
  in
  Alcotest.(check (list string))
    "failed span closed, sibling at top level" [ "boom"; "after" ]
    (List.map (fun n -> n.Obs.name) report.Obs.spans);
  let boom = List.hd report.Obs.spans in
  Alcotest.(check (float 0.0)) "boom duration recorded" 0.5 boom.Obs.dur_s

let test_chrome_trace_bytes () =
  let report = record_reference () in
  let expected =
    String.concat ""
      [
        "[";
        "{\"name\":\"prove\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":500000,\"dur\":750000,\"pid\":1,\"tid\":1},";
        "{\"name\":\"ntt\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":750000,\"dur\":125000,\"pid\":1,\"tid\":1,";
        "\"args\":{\"ntt.size\":512}},";
        "{\"name\":\"ntt\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":875000,\"dur\":62500,\"pid\":1,\"tid\":1,";
        "\"args\":{\"ntt.size\":256}},";
        "{\"name\":\"msm\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":937500,\"dur\":250000,\"pid\":1,\"tid\":1,";
        "\"args\":{\"msm.points\":100}}";
        "]";
      ]
  in
  Alcotest.(check string) "byte-exact trace" expected (Obs.chrome_trace report)

let test_summary_json_shape () =
  let report = record_reference () in
  let s = Obs.summary_json report in
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true contains)
    [
      "\"total_s\":1.25";
      "\"gauges\":{\"k\":9}";
      "\"name\":\"ntt\",\"calls\":2";
      "\"children\":[]";
    ]

(* ------------------------------------------------------------------ *)
(* Metrics registry (always-on, domain-safe) *)

module Metrics = Zkml_obs.Metrics
module Log = Zkml_obs.Log
module Pool = Zkml_util.Pool

let get_hist snap name =
  match Metrics.find_series snap name with
  | Some (Metrics.Hist_v h) -> h
  | _ -> Alcotest.failf "histogram %s missing from snapshot" name

let test_metrics_basics () =
  Metrics.reset ();
  (* the registry records regardless of the trace sink *)
  Alcotest.(check bool) "trace sink disabled" false (Obs.enabled ());
  let c = Metrics.counter ~labels:[ ("a", "1") ] ~help:"h" "t_counter" in
  Metrics.add c 2.0;
  Metrics.inc ~labels:[ ("a", "1") ] "t_counter" 3.0;
  let g = Metrics.gauge "t_gauge" in
  Metrics.set g 7.0;
  Metrics.set g 5.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check (float 0.0))
    "counter accumulates through handle and one-shot" 5.0
    (Metrics.counter_value ~labels:[ ("a", "1") ] snap "t_counter");
  Alcotest.(check (float 0.0))
    "gauge is last-write-wins" 5.0
    (Metrics.counter_value snap "t_gauge");
  Alcotest.(check (float 0.0))
    "absent series reads 0" 0.0
    (Metrics.counter_value snap "t_no_such");
  (match Metrics.add c (-1.0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative counter add accepted");
  Metrics.reset ();
  Alcotest.(check (float 0.0))
    "reset zeroes in place" 0.0
    (Metrics.counter_value ~labels:[ ("a", "1") ] (Metrics.snapshot ())
       "t_counter")

let test_hist_boundaries () =
  (* spot values: 1.0 is the lower edge of [1, 1.125);
     0.75 = 1.5 * 2^-1 sits in [0.75, 0.8125). *)
  let upper_of v = Metrics.bucket_upper (Option.get (Metrics.bucket_index v)) in
  Alcotest.(check (float 0.0)) "upper(1.0)" 1.125 (upper_of 1.0);
  Alcotest.(check (float 0.0)) "upper(0.75)" 0.8125 (upper_of 0.75);
  (* out-of-domain values have no bucket *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "no bucket for %g" v)
        true
        (Metrics.bucket_index v = None))
    [ 0.0; -3.0; Float.nan; Float.infinity; 1e-10 ];
  (* huge values clamp into one shared top bucket *)
  Alcotest.(check bool)
    "top-edge clamp" true
    (Metrics.bucket_index 1e12 = Metrics.bucket_index 1e15);
  (* buckets tile [lower, upper): every value sits strictly below its
     bucket's upper bound and at/above the previous bucket's bound *)
  List.iter
    (fun v ->
      let i = Option.get (Metrics.bucket_index v) in
      Alcotest.(check bool)
        (Printf.sprintf "%g < upper" v)
        true
        (v < Metrics.bucket_upper i);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%g >= previous upper" v)
          true
          (v >= Metrics.bucket_upper (i - 1)))
    [ 1e-9; 0.001; 0.5; 0.9999; 1.0; 1.1249; 1.125; 3.14159; 42.0; 1e6 ]

let test_pool_merge () =
  let n = 1000 in
  let vals = Array.init n (fun i -> 0.001 *. float_of_int (i + 1)) in
  let h = Metrics.histogram "t_par_hist" in
  let c = Metrics.counter "t_par_counter" in
  (* sequential reference *)
  Metrics.reset ();
  Array.iter (Metrics.observe h) vals;
  let r = get_hist (Metrics.snapshot ()) "t_par_hist" in
  let ref_q =
    List.map (fun q -> Metrics.quantile r q) [ 0.5; 0.9; 0.99 ]
  in
  (* same observations from a 4-domain pool *)
  Metrics.reset ();
  let saved = Pool.jobs () in
  Pool.set_jobs 4;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) @@ fun () ->
  Pool.parallel_for ~chunk:16 ~seq_below:1 n (fun i ->
      Metrics.add c 1.0;
      Metrics.observe h vals.(i));
  let snap = Metrics.snapshot () in
  Alcotest.(check (float 0.0))
    "counter sums exactly across domains" (float_of_int n)
    (Metrics.counter_value snap "t_par_counter");
  let p = get_hist snap "t_par_hist" in
  Alcotest.(check int) "histogram count exact" n p.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "sum matches" r.Metrics.h_sum p.Metrics.h_sum;
  (* bucket assignment depends only on the value, so the cumulative
     bucket lists — and hence the quantiles — are identical regardless
     of interleaving *)
  Alcotest.(check bool)
    "bucket lists identical" true
    (r.Metrics.h_buckets = p.Metrics.h_buckets);
  List.iter2
    (fun q want ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%.0f deterministic" (q *. 100.))
        want (Metrics.quantile p q))
    [ 0.5; 0.9; 0.99 ] ref_q

(* Line-level check of the Prometheus text format: every line is a
   comment ("# HELP "/"# TYPE ") or a sample "name[{labels}] value";
   histogram le= bounds ascend and the +Inf bucket equals _count. *)
let test_prometheus_format () =
  Metrics.reset ();
  Metrics.inc ~labels:[ ("op", "x") ] ~help:"c" "t_prom_counter" 2.0;
  let h = Metrics.histogram ~labels:[ ("op", "x") ] ~help:"h" "t_prom_hist" in
  List.iter (Metrics.observe h) [ 0.1; 0.5; 0.5; 2.0 ];
  let s = Metrics.prometheus_string (Metrics.snapshot ()) in
  let name_ok name =
    name <> ""
    && String.for_all
         (fun ch ->
           (ch >= 'a' && ch <= 'z')
           || (ch >= 'A' && ch <= 'Z')
           || (ch >= '0' && ch <= '9')
           || ch = '_' || ch = ':')
         name
  in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  Alcotest.(check bool) "non-empty exposition" true (lines <> []);
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then
        Alcotest.(check bool)
          ("comment line: " ^ line)
          true
          (String.starts_with ~prefix:"# HELP " line
          || String.starts_with ~prefix:"# TYPE " line)
      else begin
        let sp = String.rindex line ' ' in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        (match float_of_string_opt value with
        | Some _ -> ()
        | None -> Alcotest.failf "unparseable sample value in %S" line);
        let series = String.sub line 0 sp in
        let name =
          match String.index_opt series '{' with
          | None -> series
          | Some lb ->
              Alcotest.(check bool)
                ("labels close: " ^ line)
                true
                (series.[String.length series - 1] = '}');
              String.sub series 0 lb
        in
        Alcotest.(check bool) ("metric name: " ^ name) true (name_ok name)
      end)
    lines;
  (* histogram invariants on the series we just wrote; [le] is appended
     after the series labels, so locate it by substring *)
  let le_of line =
    let n = String.length line in
    let rec find i =
      if i + 4 > n then Alcotest.failf "no le= label in %S" line
      else if String.sub line i 4 = "le=\"" then i + 4
      else find (i + 1)
    in
    let i = find 0 in
    let j = String.index_from line i '"' in
    String.sub line i (j - i)
  in
  let bucket_lines =
    List.filter (String.starts_with ~prefix:"t_prom_hist_bucket{") lines
  in
  Alcotest.(check bool) "has buckets" true (List.length bucket_lines >= 2);
  let les = List.map le_of bucket_lines in
  Alcotest.(check string) "last bucket is +Inf" "+Inf"
    (List.nth les (List.length les - 1));
  let finite = List.filter (fun l -> l <> "+Inf") les in
  let floats = List.map float_of_string finite in
  Alcotest.(check bool)
    "le bounds ascend" true
    (List.sort compare floats = floats);
  let value_of l =
    let sp = String.rindex l ' ' in
    float_of_string (String.sub l (sp + 1) (String.length l - sp - 1))
  in
  let count_line =
    match
      List.find_opt (String.starts_with ~prefix:"t_prom_hist_count") lines
    with
    | Some l -> l
    | None -> Alcotest.fail "missing t_prom_hist_count line"
  in
  let inf_line =
    match List.find_opt (fun l -> le_of l = "+Inf") bucket_lines with
    | Some l -> l
    | None -> Alcotest.fail "missing +Inf bucket line"
  in
  Alcotest.(check (float 0.0))
    "+Inf bucket equals _count" (value_of count_line) (value_of inf_line)

let test_log_sink () =
  let got = ref [] in
  Log.set_sink (Some (fun line -> got := line :: !got));
  Log.set_level Log.Debug;
  Fun.protect ~finally:(fun () ->
      Log.set_sink None;
      Log.set_level Log.Info)
  @@ fun () ->
  Log.event ~level:Log.Debug "t.event"
    [ ("s", Log.S "x\"y\n"); ("i", Log.I 3); ("f", Log.F 1.5);
      ("b", Log.B true) ];
  Log.event "t.plain" [];
  let lines = List.rev !got in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  let module J = Zkml_util.Json in
  let parse l =
    match J.of_string l with
    | Ok d -> d
    | Error e -> Alcotest.failf "log line not JSON (%s): %S" (Zkml_util.Err.to_string e) l
  in
  let d = parse (List.hd lines) in
  Alcotest.(check (option string)) "event" (Some "t.event") (J.mem_string "event" d);
  Alcotest.(check (option string)) "level" (Some "debug") (J.mem_string "level" d);
  Alcotest.(check (option string)) "escaped string field" (Some "x\"y\n")
    (J.mem_string "s" d);
  Alcotest.(check (option (float 0.0))) "int field" (Some 3.0) (J.mem_float "i" d);
  Alcotest.(check (option (float 0.0))) "float field" (Some 1.5) (J.mem_float "f" d);
  Alcotest.(check bool) "ts present" true (J.mem_float "ts" (parse (List.nth lines 1)) <> None)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting order and timing" `Quick test_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes;
        ] );
      ( "counters",
        [
          Alcotest.test_case "accumulation" `Quick test_counters;
          Alcotest.test_case "same-name suppression" `Quick
            test_same_name_suppression;
        ] );
      ( "disabled",
        [ Alcotest.test_case "no-op passthrough" `Quick test_disabled_noop ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace bytes" `Quick
            test_chrome_trace_bytes;
          Alcotest.test_case "summary json shape" `Quick
            test_summary_json_shape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, reset" `Quick
            test_metrics_basics;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_hist_boundaries;
          Alcotest.test_case "4-domain pool merge determinism" `Quick
            test_pool_merge;
          Alcotest.test_case "prometheus text format" `Quick
            test_prometheus_format;
        ] );
      ( "log",
        [ Alcotest.test_case "sink override and JSON lines" `Quick test_log_sink ] );
    ]
