(* Tests for the tracing/metrics subsystem. All traces use an injected
   fake clock (exact binary fractions) so structure, durations and the
   serialized chrome-trace output are deterministic down to the byte. *)

module Obs = Zkml_obs.Obs

(* Fake clock: [tick] advances simulated time by an exact dyadic step. *)
let make_clock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun dt -> now := !now +. dt)

(* The reference trace used by several tests:
     prove [0.5 .. 1.25]
       ntt [0.75 .. 0.875]  ntt.size=512
       ntt [0.875 .. 0.9375]  ntt.size=256
       msm [0.9375 .. 1.1875]  msm.points=100
   plus gauge k=9; snapshot taken at t=1.25. *)
let record_reference () =
  let clock, tick = make_clock () in
  let (), report =
    Obs.with_enabled ~clock (fun () ->
        tick 0.5;
        Obs.Span.with_ ~name:"prove" (fun () ->
            tick 0.25;
            Obs.Span.with_ ~name:"ntt" (fun () ->
                Obs.count "ntt.size" 512;
                tick 0.125);
            Obs.Span.with_ ~name:"ntt" (fun () ->
                Obs.count "ntt.size" 256;
                tick 0.0625);
            Obs.Span.with_ ~name:"msm" (fun () ->
                Obs.count "msm.points" 100;
                tick 0.25);
            tick 0.0625);
        Obs.gauge_int "k" 9)
  in
  report

let test_nesting () =
  let report = record_reference () in
  Alcotest.(check (list string))
    "top-level spans" [ "prove" ]
    (List.map (fun n -> n.Obs.name) report.Obs.spans);
  let prove = List.hd report.Obs.spans in
  Alcotest.(check (list string))
    "children in execution order" [ "ntt"; "ntt"; "msm" ]
    (List.map (fun n -> n.Obs.name) prove.Obs.children);
  Alcotest.(check (float 0.0)) "prove start" 0.5 prove.Obs.start_s;
  Alcotest.(check (float 0.0)) "prove dur" 0.75 prove.Obs.dur_s;
  let starts = List.map (fun n -> n.Obs.start_s) prove.Obs.children in
  Alcotest.(check (list (float 0.0))) "child starts" [ 0.75; 0.875; 0.9375 ]
    starts;
  let durs = List.map (fun n -> n.Obs.dur_s) prove.Obs.children in
  Alcotest.(check (list (float 0.0))) "child durs" [ 0.125; 0.0625; 0.25 ] durs;
  Alcotest.(check (float 0.0)) "total" 1.25 report.Obs.total_s;
  Alcotest.(check (list (pair string (float 0.0))))
    "gauges" [ ("k", 9.0) ] report.Obs.gauges

let test_counters () =
  let report = record_reference () in
  Alcotest.(check (float 0.0))
    "ntt.size sums across spans" 768.0
    (Obs.counter_total report "ntt.size");
  Alcotest.(check (float 0.0))
    "msm.points" 100.0
    (Obs.counter_total report "msm.points");
  Alcotest.(check (float 0.0))
    "absent counter" 0.0
    (Obs.counter_total report "nope");
  let ntt =
    List.find (fun a -> a.Obs.agg_name = "ntt") (Obs.totals report)
  in
  Alcotest.(check int) "ntt calls" 2 ntt.Obs.agg_calls;
  Alcotest.(check (float 0.0)) "ntt aggregated time" 0.1875 ntt.Obs.agg_total_s;
  Alcotest.(check (list (pair string (float 0.0))))
    "ntt merged counters" [ ("ntt.size", 768.0) ] ntt.Obs.agg_counters;
  Alcotest.(check (float 0.0))
    "total_of under prove" 0.1875
    (Obs.total_of ~under:"prove" report "ntt");
  Alcotest.(check (float 0.0))
    "total_of absent subtree" 0.0
    (Obs.total_of ~under:"verify" report "ntt")

(* A span nested under a same-named ancestor must not be double counted
   in the per-name aggregation. *)
let test_same_name_suppression () =
  let clock, tick = make_clock () in
  let (), report =
    Obs.with_enabled ~clock (fun () ->
        Obs.Span.with_ ~name:"ntt" (fun () ->
            tick 0.25;
            Obs.Span.with_ ~name:"ntt" (fun () -> tick 0.5);
            tick 0.25))
  in
  let ntt =
    List.find (fun a -> a.Obs.agg_name = "ntt") (Obs.totals report)
  in
  Alcotest.(check int) "only the outer span counted" 1 ntt.Obs.agg_calls;
  Alcotest.(check (float 0.0)) "outer time only" 1.0 ntt.Obs.agg_total_s

let test_disabled_noop () =
  Obs.disable ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  (* every entry point must be a silent no-op and pass values through *)
  Alcotest.(check int) "span passthrough" 41
    (Obs.Span.with_ ~name:"x" (fun () -> 41));
  Obs.count "c" 1;
  Obs.countf "c" 1.0;
  Obs.gauge "g" 2.0;
  Obs.gauge_int "g" 2;
  Alcotest.(check bool) "no snapshot" true (Obs.snapshot () = None);
  (* exceptions propagate unchanged *)
  Alcotest.check_raises "raise passthrough" Exit (fun () ->
      Obs.Span.with_ ~name:"x" (fun () -> raise Exit));
  (* with_enabled restores the previous (disabled) state *)
  let v, report = Obs.with_enabled (fun () -> 7) in
  Alcotest.(check int) "with_enabled result" 7 v;
  Alcotest.(check bool) "report produced" true (report.Obs.total_s >= 0.0);
  Alcotest.(check bool) "sink restored" false (Obs.enabled ())

let test_span_exception_closes () =
  let clock, tick = make_clock () in
  let (), report =
    Obs.with_enabled ~clock (fun () ->
        (try
           Obs.Span.with_ ~name:"boom" (fun () ->
               tick 0.5;
               raise Exit)
         with Exit -> ());
        Obs.Span.with_ ~name:"after" (fun () -> tick 0.25))
  in
  Alcotest.(check (list string))
    "failed span closed, sibling at top level" [ "boom"; "after" ]
    (List.map (fun n -> n.Obs.name) report.Obs.spans);
  let boom = List.hd report.Obs.spans in
  Alcotest.(check (float 0.0)) "boom duration recorded" 0.5 boom.Obs.dur_s

let test_chrome_trace_bytes () =
  let report = record_reference () in
  let expected =
    String.concat ""
      [
        "[";
        "{\"name\":\"prove\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":500000,\"dur\":750000,\"pid\":1,\"tid\":1},";
        "{\"name\":\"ntt\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":750000,\"dur\":125000,\"pid\":1,\"tid\":1,";
        "\"args\":{\"ntt.size\":512}},";
        "{\"name\":\"ntt\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":875000,\"dur\":62500,\"pid\":1,\"tid\":1,";
        "\"args\":{\"ntt.size\":256}},";
        "{\"name\":\"msm\",\"cat\":\"zkml\",\"ph\":\"X\",";
        "\"ts\":937500,\"dur\":250000,\"pid\":1,\"tid\":1,";
        "\"args\":{\"msm.points\":100}}";
        "]";
      ]
  in
  Alcotest.(check string) "byte-exact trace" expected (Obs.chrome_trace report)

let test_summary_json_shape () =
  let report = record_reference () in
  let s = Obs.summary_json report in
  List.iter
    (fun needle ->
      let contains =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true contains)
    [
      "\"total_s\":1.25";
      "\"gauges\":{\"k\":9}";
      "\"name\":\"ntt\",\"calls\":2";
      "\"children\":[]";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting order and timing" `Quick test_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes;
        ] );
      ( "counters",
        [
          Alcotest.test_case "accumulation" `Quick test_counters;
          Alcotest.test_case "same-name suppression" `Quick
            test_same_name_suppression;
        ] );
      ( "disabled",
        [ Alcotest.test_case "no-op passthrough" `Quick test_disabled_noop ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace bytes" `Quick
            test_chrome_trace_bytes;
          Alcotest.test_case "summary json shape" `Quick
            test_summary_json_shape;
        ] );
    ]
