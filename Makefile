.PHONY: all build test check fmt smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting + full test suite. ocamlformat is optional in the dev
# container, so fmt degrades to a no-op when it is not installed.
check: fmt test

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# Quick end-to-end sanity run: prove MNIST under the tracer, print the
# span tree and cost-model accuracy report, dump a chrome trace.
smoke: build
	dune exec bin/zkml_cli.exe -- profile mnist --trace /tmp/zkml-trace.json
	@echo "chrome trace written to /tmp/zkml-trace.json"

bench: build
	dune exec bench/main.exe -- table6 --json /tmp/zkml-bench.json

clean:
	dune clean
