.PHONY: all build test check check-constraints fmt smoke serve-smoke segments-smoke soundness fuzz bench bench-par bench-batch bench-quotient bench-kernels bench-ff bench-msm bench-serve bench-segments bench-regress clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting + full test suite, run sequentially AND with a 4-domain
# prover pool: proofs must be byte-identical at every job count. The
# suite includes the soundness mutation tests (test_soundness.ml), the
# executor differential tests (test_differential.ml) and the serving
# layer / batch verification tests (test_serve.ml).
# A short fixed-seed fuzz pass rides along in the suite (test/fuzz_inputs.ml);
# the long run is `make fuzz`.
# ocamlformat is optional in the dev container, so fmt degrades to a
# no-op when it is not installed.
check: fmt build
	ZKML_JOBS=1 dune runtest --force
	ZKML_JOBS=4 dune runtest --force
	$(MAKE) check-constraints
	$(MAKE) serve-smoke
	$(MAKE) segments-smoke
	-$(MAKE) bench-regress

# Under-constraint detector (hard gate): run the gadget isolation suite
# and every zoo model's compiled circuit through the randomized
# second-witness search over the typed constraint IR. Pinned seed, so a
# finding replays exactly; exits non-zero on any under-constrained cell
# or honest-witness violation.
check-constraints: build
	dune exec bin/zkml_cli.exe -- check-constraints --seed 1234

# Circuit-soundness mutation suite alone, pinned seed (1234 inside the
# suite): every mutated witness/key/proof must be rejected or refused —
# zero accepted mutants. Runs the slow big-model groups as well.
soundness: build
	dune exec test/test_soundness.exe

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# Quick end-to-end sanity run: prove MNIST under the tracer, print the
# span tree and cost-model accuracy report, dump a chrome trace.
smoke: build
	dune exec bin/zkml_cli.exe -- profile mnist --trace /tmp/zkml-trace.json
	@echo "chrome trace written to /tmp/zkml-trace.json"

# Serving-daemon smoke test: fork a unix-socket daemon, replay 30
# seeded mixed requests (proves, verifies of honest and tampered
# proofs, malformed frames, pings) at concurrency 3, then shut it down
# over the wire. The loadgen asserts every expected answer — tampered
# proofs must come back verdict 1, malformed frames verdict 2, the
# daemon must survive all of it and exit 0 — and itself exits non-zero
# on any miss, so this target is a hard gate in `make check`.
SERVE_SMOKE_SOCK ?= /tmp/zkml-serve-smoke-$(shell echo $$$$).sock
serve-smoke: build
	dune exec bin/zkml_cli.exe -- loadgen --spawn \
		--socket $(SERVE_SMOKE_SOCK) \
		--seed 9 --requests 30 --concurrency 3 --models mnist,dlrm

# Split-and-aggregate smoke test (hard gate in `make check`): prove
# mnist monolithically and at --segments 4, assert both are accepted
# and that seam-tampered / spliced / truncated variants are rejected
# with the documented verdicts. Exits non-zero on any miss.
segments-smoke: build
	dune exec bin/zkml_cli.exe -- segments-smoke

# Long deterministic malformed-input fuzz over the model-text,
# proof-file and wire-frame corpora. Seeded, so a failure reproduces
# exactly; exits non-zero if any mutant is accepted or any exception
# escapes.
fuzz: build
	dune exec bin/zkml_cli.exe -- fuzz --iters 2000 --seed 42

bench: build
	dune exec bench/main.exe -- table6 --json /tmp/zkml-bench.json

# Multicore prover scaling: prove a seed model at jobs=1/2/4, assert
# byte-identical proofs, write BENCH_PR2.json with the timings.
bench-par: build
	dune exec bench/main.exe -- par

# Serving-layer amortization: batch-of-8 prove/verify through the
# artifact cache vs 8 independent single runs (final-check counts
# included).
bench-batch: build
	dune exec bench/main.exe -- batch

# Quotient-evaluator comparison: prove every zoo model under
# ZKML_EVAL=interp and with the compiled evaluator, assert the proofs
# are byte-identical, write BENCH_PR5.json with rows/sec per model.
bench-quotient: build
	dune exec bench/main.exe -- quotient

# Field / MSM / NTT kernel microbenchmarks (PR 7): allocating vs
# in-place field arithmetic, Jacobian vs batch-affine+GLV Pippenger
# (paths asserted equal), stage-major vs cache-blocked NTT (asserted
# element-identical), plus the retuned window table. The full run
# regenerates the committed BENCH_PR7.json baseline.
bench-kernels: build
	dune exec bench/main.exe -- kernels

# Filtered kernel runs for quick iteration; they write a partial
# BENCH_PR7.json, so it goes to a scratch dir instead of clobbering
# the committed baseline (regenerate that with bench-kernels).
bench-ff: build
	ZKML_BENCH_DIR=_build/bench ZKML_BENCH_KERNELS=ff \
		dune exec bench/main.exe -- kernels

bench-msm: build
	ZKML_BENCH_DIR=_build/bench ZKML_BENCH_KERNELS=msm,ntt \
		dune exec bench/main.exe -- kernels

# Serving-daemon load benchmark: spawn a daemon, replay the full seeded
# mix and write the per-kind latency percentiles + proofs/sec to the
# committed BENCH_PR9.json baseline (schema {"bench":"serve",...}).
bench-serve: build
	dune exec bin/zkml_cli.exe -- loadgen --spawn \
		--socket /tmp/zkml-bench-serve-$(shell echo $$$$).sock \
		--seed 9 --requests 60 --concurrency 4 --models mnist,dlrm \
		--bench-out BENCH_PR9.json

# Split-and-aggregate proving benchmark: per model the monolithic vs
# 4-segment prove wall, aggregate verify wall and the row counts (peak
# segment rows must undercut the monolithic circuit). The full run
# regenerates the committed BENCH_PR10.json baseline.
bench-segments: build
	dune exec bench/main.exe -- segments

# Bench-regression gate: re-measure a reduced par + quotient sample
# plus the kernel microbenchmarks, a serving-daemon load sample and a
# split-and-aggregate proving sample into $(REGRESS_DIR) and compare
# per-key medians against the committed BENCH_PR2/PR5/PR7/PR9/PR10
# baselines. A key regresses when
# current > baseline * REGRESS_THRESHOLD. Warn-only by default (always
# exits 0); STRICT=1 makes a regression fail the target. Tune the
# sample with REGRESS_MODELS / REGRESS_JOBS.
REGRESS_DIR ?= _build/regress
REGRESS_MODELS ?= mnist,dlrm
REGRESS_JOBS ?= 1
REGRESS_THRESHOLD ?= 1.75
bench-regress: build
	ZKML_BENCH_DIR=$(REGRESS_DIR) ZKML_BENCH_JOBS=$(REGRESS_JOBS) \
		dune exec bench/main.exe -- par
	ZKML_BENCH_DIR=$(REGRESS_DIR) ZKML_BENCH_MODELS=$(REGRESS_MODELS) \
		dune exec bench/main.exe -- quotient
	ZKML_BENCH_DIR=$(REGRESS_DIR) \
		dune exec bench/main.exe -- kernels
	dune exec bin/zkml_cli.exe -- loadgen --spawn \
		--socket /tmp/zkml-regress-serve-$(shell echo $$$$).sock \
		--seed 9 --requests 30 --concurrency 3 --models $(REGRESS_MODELS) \
		--bench-out $(REGRESS_DIR)/BENCH_PR9.json
	ZKML_BENCH_DIR=$(REGRESS_DIR) ZKML_BENCH_MODELS=$(REGRESS_MODELS) \
		dune exec bench/main.exe -- segments
	dune exec bench/regress.exe -- --threshold $(REGRESS_THRESHOLD) \
		$(if $(STRICT),--strict,) \
		--baseline BENCH_PR2.json --current $(REGRESS_DIR)/BENCH_PR2.json \
		--baseline BENCH_PR5.json --current $(REGRESS_DIR)/BENCH_PR5.json \
		--baseline BENCH_PR7.json --current $(REGRESS_DIR)/BENCH_PR7.json \
		--baseline BENCH_PR9.json --current $(REGRESS_DIR)/BENCH_PR9.json \
		--baseline BENCH_PR10.json --current $(REGRESS_DIR)/BENCH_PR10.json

clean:
	dune clean
