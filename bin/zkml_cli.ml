(* The zkml command-line interface — the "simple bash interface" of the
   paper's Figure 3. Subcommands:

     zkml models                     list the built-in model zoo
     zkml stats MODEL                parameters / flops / layer count
     zkml export MODEL FILE          write the textual model format
     zkml optimize MODEL             run the layout optimizer, print the plan
     zkml prove MODEL -o PROOF       compile + prove; write a proof file
     zkml verify MODEL PROOF         recheck a proof file
     zkml calibrate                  print the measured op-cost profile
     zkml profile MODEL              traced proving run: span tree,
                                     chrome-trace export, cost-model
                                     accuracy report (paper 9.5)

   MODEL is a zoo name (see `zkml models`) or a path to a .zkml file.
   Setting ZKML_TRACE=<path> makes any subcommand record a chrome-trace
   of its whole execution to <path>. `--jobs N` (or ZKML_JOBS=N) sizes
   the prover's domain pool; proofs are byte-identical at every N. *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Zoo = Zkml_models.Zoo
module Opt = Zkml_compiler.Optimizer
module Spec = Zkml_compiler.Layout_spec
module Obs = Zkml_obs.Obs
module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Ipa = Zkml_commit.Ipa.Make (Sim61)
module Pipe_kzg = Zkml_compiler.Pipeline.Make (Kzg)
module Pipe_ipa = Zkml_compiler.Pipeline.Make (Ipa)

let srs_k = 15
let kzg_params = lazy (Kzg.setup ~max_size:(1 lsl srs_k) ~seed:"zkml-cli")
let ipa_params = lazy (Ipa.setup ~max_size:(1 lsl srs_k) ~seed:"zkml-cli")

let load_model name =
  if Sys.file_exists name then
    let graph = Zkml_nn.Serialize.load name in
    {
      Zoo.name = Filename.remove_extension (Filename.basename name);
      paper_name = name;
      graph;
      input_shapes =
        (Zkml_nn.Graph.nodes graph |> Array.to_list
        |> List.filter_map (fun (n : Zkml_nn.Graph.node) ->
               match n.Zkml_nn.Graph.op with
               | Zkml_nn.Op.Input { shape } -> Some shape
               | _ -> None));
      cfg = Zoo.default_cfg;
      description = "loaded from " ^ name;
    }
  else Zoo.by_name name

(* ------------------------------------------------------------------ *)
(* commands *)

let cmd_models () =
  List.iter
    (fun m ->
      Printf.printf "%-12s %-24s %s\n" m.Zoo.name m.Zoo.paper_name
        m.Zoo.description)
    (Zoo.all ());
  0

let cmd_stats model =
  let m = load_model model in
  let st = Zkml_nn.Stats.compute m.Zoo.graph in
  Printf.printf "model:       %s\n" m.Zoo.name;
  Printf.printf "parameters:  %d\n" st.Zkml_nn.Stats.params;
  Printf.printf "flops:       %d\n" st.Zkml_nn.Stats.flops;
  Printf.printf "graph nodes: %d\n" st.Zkml_nn.Stats.num_nodes;
  Printf.printf "fixed-point: scale 2^%d, table 2^%d\n"
    m.Zoo.cfg.Fx.scale_bits m.Zoo.cfg.Fx.table_bits;
  0

let cmd_export model path =
  let m = load_model model in
  Zkml_nn.Serialize.save m.Zoo.graph path;
  Printf.printf "wrote %s\n" path;
  0

let cmd_calibrate backend =
  let times =
    match backend with
    | "ipa" -> Pipe_ipa.calibrated (Lazy.force ipa_params)
    | _ -> Pipe_kzg.calibrated (Lazy.force kzg_params)
  in
  Printf.printf "backend %s op-cost profile (BenchmarkOperations):\n" backend;
  List.iter
    (fun (k, t) -> Printf.printf "  fft    2^%-2d %12.6f s\n" k t)
    times.Zkml_compiler.Costmodel.fft;
  List.iter
    (fun (k, t) -> Printf.printf "  msm    2^%-2d %12.6f s\n" k t)
    times.Zkml_compiler.Costmodel.msm;
  List.iter
    (fun (k, t) -> Printf.printf "  lookup 2^%-2d %12.6f s\n" k t)
    times.Zkml_compiler.Costmodel.lookup;
  Printf.printf "  field op    %12.3e s\n"
    times.Zkml_compiler.Costmodel.field_op;
  0

(* ------------------------------------------------------------------ *)
(* profile: traced proving run + cost-model accuracy (paper §9.5) *)

let print_accuracy rows =
  Printf.printf "\ncost-model accuracy (predicted vs measured, paper 9.5):\n";
  Printf.printf "  %-16s %12s %12s %8s\n" "op class" "predicted s" "measured s"
    "ratio";
  List.iter
    (fun (a : Zkml_compiler.Pipeline.op_accuracy) ->
      let ratio = Zkml_compiler.Pipeline.accuracy_ratio a in
      Printf.printf "  %-16s %12.4f %12.4f %8s\n" a.op a.predicted_s
        a.measured_s
        (if Float.is_nan ratio then "-" else Printf.sprintf "%.2fx" ratio))
    rows

let cmd_profile model backend trace_out =
  let m = load_model model in
  let inputs = Zoo.sample_inputs m in
  let run_traced () =
    match backend with
    | "ipa" ->
        let params = Lazy.force ipa_params in
        (* calibrate outside the trace so the report holds only the
           proving run *)
        ignore (Pipe_ipa.calibrated params);
        let r, report =
          Obs.with_enabled (fun () ->
              Pipe_ipa.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs)
        in
        ( r.Pipe_ipa.verified,
          r.Pipe_ipa.prove_s,
          Pipe_ipa.cost_accuracy params r.Pipe_ipa.plan report,
          report )
    | _ ->
        let params = Lazy.force kzg_params in
        ignore (Pipe_kzg.calibrated params);
        let r, report =
          Obs.with_enabled (fun () ->
              Pipe_kzg.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs)
        in
        ( r.Pipe_kzg.verified,
          r.Pipe_kzg.prove_s,
          Pipe_kzg.cost_accuracy params r.Pipe_kzg.plan report,
          report )
  in
  let verified, prove_s, accuracy, report = run_traced () in
  if not verified then failwith "profile: self-verification failed";
  Printf.printf "traced proving run of %s (%s backend):\n\n" m.Zoo.name backend;
  print_string (Obs.tree_string report);
  let span_prove = Obs.total_of report "prove" in
  Printf.printf
    "\ncoarse prove_s %.4f s; prove span total %.4f s (%.1f%% attributed)\n"
    prove_s span_prove
    (100.0 *. span_prove /. Float.max prove_s 1e-9);
  print_accuracy accuracy;
  (match trace_out with
  | Some path ->
      Obs.write_file path (Obs.chrome_trace report);
      Printf.printf "\nwrote chrome-trace to %s (open in about:tracing)\n" path
  | None -> ());
  0

let print_plan (plan : Opt.plan) =
  Printf.printf "logical layout:   %s\n" (Spec.to_string plan.Opt.spec);
  Printf.printf "advice columns:   %d\n" plan.Opt.ncols;
  Printf.printf "rows:             2^%d (content %d)\n" plan.Opt.k
    plan.Opt.summary.Zkml_compiler.Layouter.rows_content;
  Printf.printf "lookups:          %d (over %d tables)\n"
    plan.Opt.summary.Zkml_compiler.Layouter.lookup_count
    plan.Opt.summary.Zkml_compiler.Layouter.tables;
  Printf.printf "estimated cost:   %.3f s\n" plan.Opt.est_cost;
  Printf.printf "estimated proof:  %d bytes\n" plan.Opt.est_size

let cmd_optimize model backend objective =
  let m = load_model model in
  let objective =
    if objective = "size" then Opt.Min_size else Opt.Min_time
  in
  let inputs = Zoo.sample_inputs m in
  let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
  let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
  let plan, stats =
    match backend with
    | "ipa" ->
        let params = Lazy.force ipa_params in
        Opt.optimize ~objective ~times:(Pipe_ipa.calibrated params)
          ~backend:Zkml_compiler.Costmodel.Ipa ~group_bytes:Ipa.G.size_bytes
          ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg:m.Zoo.cfg m.Zoo.graph exec
    | _ ->
        let params = Lazy.force kzg_params in
        Opt.optimize ~objective ~times:(Pipe_kzg.calibrated params)
          ~backend:Zkml_compiler.Costmodel.Kzg ~group_bytes:Kzg.G.size_bytes
          ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg:m.Zoo.cfg m.Zoo.graph exec
  in
  Printf.printf "searched %d candidate layouts (%d invalid)\n"
    stats.Opt.candidates stats.Opt.pruned_invalid;
  print_plan plan;
  0

(* proof file format *)
let write_proof_file path ~backend ~(m : Zoo.model) ~(plan : Opt.plan)
    ~instance_ints ~proof_hex =
  let oc = open_out path in
  Printf.fprintf oc "zkml-proof v1\n";
  Printf.fprintf oc "model %s\n" m.Zoo.name;
  Printf.fprintf oc "backend %s\n" backend;
  Printf.fprintf oc "spec %s\n" (Spec.to_string plan.Opt.spec);
  Printf.fprintf oc "ncols %d\n" plan.Opt.ncols;
  Printf.fprintf oc "k %d\n" plan.Opt.k;
  Printf.fprintf oc "scale_bits %d\n" m.Zoo.cfg.Fx.scale_bits;
  Printf.fprintf oc "table_bits %d\n" m.Zoo.cfg.Fx.table_bits;
  Printf.fprintf oc "instance %s\n"
    (String.concat ","
       (List.map string_of_int (Array.to_list instance_ints)));
  Printf.fprintf oc "proof %s\n" proof_hex;
  close_out oc

type proof_file = {
  pf_backend : string;
  pf_spec : Spec.t;
  pf_ncols : int;
  pf_k : int;
  pf_cfg : Fx.config;
  pf_instance : int array;
  pf_proof : string;
}

let read_proof_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let fields =
    List.filter_map
      (fun line ->
        match String.index_opt line ' ' with
        | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
        | None -> None)
      (List.rev !lines)
  in
  let get k =
    try List.assoc k fields
    with Not_found -> failwith ("proof file missing field: " ^ k)
  in
  {
    pf_backend = get "backend";
    pf_spec = Spec.of_string (get "spec");
    pf_ncols = int_of_string (get "ncols");
    pf_k = int_of_string (get "k");
    pf_cfg =
      {
        Fx.scale_bits = int_of_string (get "scale_bits");
        table_bits = int_of_string (get "table_bits");
      };
    pf_instance =
      (let s = get "instance" in
       if s = "" then [||]
       else
         String.split_on_char ',' s |> List.map int_of_string |> Array.of_list);
    pf_proof = Zkml_util.Bytes_util.of_hex (get "proof");
  }

let cmd_prove model backend out seed =
  let m = load_model model in
  let inputs = Zoo.sample_inputs ~seed:(Int64.of_int seed) m in
  let instance_of_built (built : Zkml_compiler.Layouter.built) =
    built.Zkml_compiler.Layouter.instance_col
  in
  (match backend with
  | "ipa" ->
      let params = Lazy.force ipa_params in
      let r =
        Pipe_ipa.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs
          ~seed:(Int64.of_int seed)
      in
      if not r.Pipe_ipa.verified then failwith "self-verification failed";
      let bytes = Pipe_ipa.Proto.proof_to_bytes r.Pipe_ipa.proof in
      (* rebuild artifacts to recover the instance column *)
      let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
      let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
      let lowered =
        Zkml_compiler.Lower.lower_with ~spec_fn:r.Pipe_ipa.plan.Opt.spec_fn
          ~cfg:m.Zoo.cfg ~ncols:r.Pipe_ipa.plan.Opt.ncols ~counting:false
          m.Zoo.graph exec
      in
      let built =
        Zkml_compiler.Layouter.finalize lowered.Zkml_compiler.Lower.layouter
          ~blinding:Opt.blinding ~k:r.Pipe_ipa.plan.Opt.k
      in
      write_proof_file out ~backend ~m ~plan:r.Pipe_ipa.plan
        ~instance_ints:(instance_of_built built)
        ~proof_hex:(Zkml_util.Bytes_util.to_hex bytes);
      Printf.printf "proved %s with %s in %.2f s (%d B); wrote %s\n" m.Zoo.name
        backend r.Pipe_ipa.prove_s r.Pipe_ipa.proof_bytes out
  | _ ->
      let params = Lazy.force kzg_params in
      let r =
        Pipe_kzg.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs
          ~seed:(Int64.of_int seed)
      in
      if not r.Pipe_kzg.verified then failwith "self-verification failed";
      let bytes = Pipe_kzg.Proto.proof_to_bytes r.Pipe_kzg.proof in
      let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
      let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
      let lowered =
        Zkml_compiler.Lower.lower_with ~spec_fn:r.Pipe_kzg.plan.Opt.spec_fn
          ~cfg:m.Zoo.cfg ~ncols:r.Pipe_kzg.plan.Opt.ncols ~counting:false
          m.Zoo.graph exec
      in
      let built =
        Zkml_compiler.Layouter.finalize lowered.Zkml_compiler.Lower.layouter
          ~blinding:Opt.blinding ~k:r.Pipe_kzg.plan.Opt.k
      in
      write_proof_file out ~backend ~m ~plan:r.Pipe_kzg.plan
        ~instance_ints:(instance_of_built built)
        ~proof_hex:(Zkml_util.Bytes_util.to_hex bytes);
      Printf.printf "proved %s with %s in %.2f s (%d B); wrote %s\n" m.Zoo.name
        backend r.Pipe_kzg.prove_s r.Pipe_kzg.proof_bytes out);
  0

let cmd_verify model proof_path =
  let m = load_model model in
  let pf = read_proof_file proof_path in
  let ok =
    match pf.pf_backend with
    | "ipa" ->
        let params = Lazy.force ipa_params in
        let keys =
          Pipe_ipa.rebuild_keys params ~spec:pf.pf_spec ~ncols:pf.pf_ncols
            ~k:pf.pf_k ~cfg:pf.pf_cfg m.Zoo.graph
        in
        Pipe_ipa.verify_bytes params keys ~instance_ints:pf.pf_instance
          pf.pf_proof
    | _ ->
        let params = Lazy.force kzg_params in
        let keys =
          Pipe_kzg.rebuild_keys params ~spec:pf.pf_spec ~ncols:pf.pf_ncols
            ~k:pf.pf_k ~cfg:pf.pf_cfg m.Zoo.graph
        in
        Pipe_kzg.verify_bytes params keys ~instance_ints:pf.pf_instance
          pf.pf_proof
  in
  if ok then begin
    Printf.printf "proof VERIFIED against model %s (%s backend)\n" m.Zoo.name
      pf.pf_backend;
    0
  end
  else begin
    Printf.printf "proof REJECTED\n";
    1
  end

(* ------------------------------------------------------------------ *)
(* cmdliner wiring *)

open Cmdliner

let model_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"MODEL" ~doc:"Zoo model name or path to a .zkml file.")

let backend_arg =
  Arg.(
    value & opt string "kzg"
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"kzg or ipa.")

(* Worker-domain count for the parallel prover. The flag (or the
   ZKML_JOBS environment variable, which the pool also reads on its
   own) only changes wall-clock time: proof bytes are identical at
   every job count. *)
let jobs_term =
  let arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~env:(Cmd.Env.info "ZKML_JOBS")
          ~doc:
            "Worker domains for the parallel prover (default 1, i.e. \
             sequential). Output is bit-for-bit identical regardless of \
             $(docv).")
  in
  let apply = function
    | Some n -> Zkml_util.Pool.set_jobs n
    | None -> ()
  in
  Term.(const apply $ arg)

let models_cmd =
  Cmd.v (Cmd.info "models" ~doc:"List the built-in model zoo.")
    Term.(const cmd_models $ const ())

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print parameters, flops and node count.")
    Term.(const cmd_stats $ model_arg)

let export_cmd =
  let path =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialize a zoo model to the textual format.")
    Term.(const cmd_export $ model_arg $ path)

let calibrate_cmd =
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Benchmark FFT/MSM/lookup/field costs (cost-model inputs).")
    Term.(const (fun () b -> cmd_calibrate b) $ jobs_term $ backend_arg)

let optimize_cmd =
  let objective =
    Arg.(
      value & opt string "time"
      & info [ "objective" ] ~docv:"OBJ" ~doc:"time or size.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the circuit-layout optimizer (Algorithm 1).")
    Term.(
      const (fun () m b o -> cmd_optimize m b o)
      $ jobs_term $ model_arg $ backend_arg $ objective)

let profile_cmd =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a chrome-trace JSON of the proving run to $(docv).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a traced prove; print the span tree and the predicted-vs-actual \
          cost-model report (paper 9.5).")
    Term.(
      const (fun () m b t -> cmd_profile m b t)
      $ jobs_term $ model_arg $ backend_arg $ trace)

let prove_cmd =
  let out =
    Arg.(
      value & opt string "proof.zkp"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Proof output file.")
  in
  let seed =
    Arg.(
      value & opt int 1234
      & info [ "seed" ] ~docv:"SEED" ~doc:"Input sampling seed.")
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Compile, optimize, prove; write a proof file.")
    Term.(
      const (fun () m b o s -> cmd_prove m b o s)
      $ jobs_term $ model_arg $ backend_arg $ out $ seed)

let verify_cmd =
  let proof =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"PROOF" ~doc:"Proof file from `zkml prove`.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a proof file against a model.")
    Term.(const (fun () m p -> cmd_verify m p) $ jobs_term $ model_arg $ proof)

let main =
  Cmd.group
    (Cmd.info "zkml" ~version:"1.0.0"
       ~doc:"Optimizing compiler from ML models to ZK-SNARK circuits."
       ~envs:
         [
           Cmd.Env.info "ZKML_JOBS"
             ~doc:
               "Worker domains for the parallel prover (same as --jobs; \
                default 1). Proof bytes are identical at every job count.";
           Cmd.Env.info "ZKML_TRACE"
             ~doc:
               "If set to a path, record a chrome-trace of the whole \
                command there at exit.";
         ])
    [ models_cmd; stats_cmd; export_cmd; calibrate_cmd; optimize_cmd;
      prove_cmd; verify_cmd; profile_cmd ]

let () =
  (* ZKML_TRACE=<path>: trace any subcommand end to end and dump the
     chrome-trace at exit. *)
  (match Sys.getenv_opt "ZKML_TRACE" with
  | Some path when path <> "" ->
      Obs.enable ();
      at_exit (fun () ->
          match Obs.snapshot () with
          | Some report -> Obs.write_file path (Obs.chrome_trace report)
          | None -> ())
  | _ -> ());
  exit (Cmd.eval' main)
