(* The zkml command-line interface — the "simple bash interface" of the
   paper's Figure 3. Subcommands:

     zkml models                     list the built-in model zoo
     zkml stats MODEL                parameters / flops / layer count
     zkml export MODEL FILE          write the textual model format
     zkml optimize MODEL             run the layout optimizer, print the plan
     zkml prove MODEL -o PROOF       compile + prove; write a proof file
     zkml verify MODEL PROOF         recheck a proof file
     zkml batch-prove MODEL SEED...  one compile (artifact-cached), one
                                     proof per input seed
     zkml batch-verify MODEL PROOF...
                                     verify N proofs with a single
                                     batched final check
     zkml calibrate                  print the measured op-cost profile
     zkml profile MODEL              traced proving run: span tree,
                                     chrome-trace export, cost-model
                                     accuracy report (paper 9.5)
     zkml fuzz                       deterministic malformed-input fuzzing
                                     of the model / proof-file parsers
     zkml metrics [MODEL]            dump the always-on metrics registry
                                     (optionally after a cached prove+
                                     verify run of MODEL) as a summary,
                                     Prometheus text or JSON
     zkml serve                      persistent proving daemon: binary
                                     wire protocol over unix socket or
                                     loopback TCP, queued multi-tenant
                                     prove/verify jobs, admission control
     zkml loadgen                    seeded deterministic traffic replay
                                     against a daemon; asserts every
                                     answer, reports latency percentiles
                                     and proofs/sec

   `zkml verify` exits 0 when the proof is accepted, 1 when it parses
   but the verifier rejects it, and 2 with a one-line diagnostic when
   any input (model file, proof file, proof bytes) is malformed —
   malformed input never crashes the verifier (see DESIGN.md,
   "Untrusted inputs").

   MODEL is a zoo name (see `zkml models`) or a path to a .zkml file.
   Setting ZKML_TRACE=<path> makes any subcommand record a chrome-trace
   of its whole execution to <path>; ZKML_METRICS=<path> writes the
   metrics registry there at exit (Prometheus text, or JSON for .json
   paths) — the textfile-collector style of exposition; ZKML_LOG routes
   the structured event log. `--jobs N` (or ZKML_JOBS=N) sizes the
   prover's domain pool; proofs are byte-identical at every N. *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Zoo = Zkml_models.Zoo
module Opt = Zkml_compiler.Optimizer
module Spec = Zkml_compiler.Layout_spec
module Obs = Zkml_obs.Obs
module Metrics = Zkml_obs.Metrics
module Log = Zkml_obs.Log
(* The scheme instantiations and SRS parameters live in
   [Zkml_serve.Backends] so the daemon, the load generator and this CLI
   provably share one setup — byte-identical proofs across all three. *)
module B = Zkml_serve.Backends
module Kzg = B.Kzg
module Ipa = B.Ipa
module Serve_kzg = B.Serve_kzg
module Serve_ipa = B.Serve_ipa
module Pipe_kzg = B.Pipe_kzg
module Pipe_ipa = B.Pipe_ipa
module PF = Zkml_serve.Proof_file
module SPF = Zkml_serve.Seg_proof

module Err = Zkml_util.Err
module Fuzz = Zkml_util.Fuzz

let kzg_params = B.kzg_params
let ipa_params = B.ipa_params

(* The --backend flag's historical semantics: "ipa" selects IPA,
   anything else the KZG default. *)
let backend_of_flag s = if s = "ipa" then B.Ipa else B.Kzg

(* Models arrive from outside the process, so loading is total; the
   raising [load_model] below serves the subcommands whose failure mode
   is simply "print the error and die". *)
let load_model_result name =
  if Sys.file_exists name then
    match Zkml_nn.Serialize.of_file name with
    | Error e -> Error e
    | Ok graph ->
        Ok
          {
            Zoo.name = Filename.remove_extension (Filename.basename name);
            paper_name = name;
            graph;
            input_shapes =
              (Zkml_nn.Graph.nodes graph |> Array.to_list
              |> List.filter_map (fun (n : Zkml_nn.Graph.node) ->
                     match n.Zkml_nn.Graph.op with
                     | Zkml_nn.Op.Input { shape } -> Some shape
                     | _ -> None));
            cfg = Zoo.default_cfg;
            description = "loaded from " ^ name;
          }
  else Err.guard Err.Unknown_variant (fun () -> Zoo.by_name name)

let load_model name = Err.get_exn (load_model_result name)

(* ------------------------------------------------------------------ *)
(* commands *)

let cmd_models () =
  List.iter
    (fun m ->
      Printf.printf "%-12s %-24s %s\n" m.Zoo.name m.Zoo.paper_name
        m.Zoo.description)
    (Zoo.all ());
  0

let cmd_stats model =
  let m = load_model model in
  let st = Zkml_nn.Stats.compute m.Zoo.graph in
  Printf.printf "model:       %s\n" m.Zoo.name;
  Printf.printf "parameters:  %d\n" st.Zkml_nn.Stats.params;
  Printf.printf "flops:       %d\n" st.Zkml_nn.Stats.flops;
  Printf.printf "graph nodes: %d\n" st.Zkml_nn.Stats.num_nodes;
  Printf.printf "fixed-point: scale 2^%d, table 2^%d\n"
    m.Zoo.cfg.Fx.scale_bits m.Zoo.cfg.Fx.table_bits;
  0

let cmd_export model path =
  let m = load_model model in
  Zkml_nn.Serialize.save m.Zoo.graph path;
  Printf.printf "wrote %s\n" path;
  0

let cmd_calibrate backend =
  let times =
    match backend with
    | "ipa" -> Pipe_ipa.calibrated (Lazy.force ipa_params)
    | _ -> Pipe_kzg.calibrated (Lazy.force kzg_params)
  in
  Printf.printf "backend %s op-cost profile (BenchmarkOperations):\n" backend;
  List.iter
    (fun (k, t) -> Printf.printf "  fft    2^%-2d %12.6f s\n" k t)
    times.Zkml_compiler.Costmodel.fft;
  List.iter
    (fun (k, t) -> Printf.printf "  msm    2^%-2d %12.6f s\n" k t)
    times.Zkml_compiler.Costmodel.msm;
  List.iter
    (fun (k, t) -> Printf.printf "  lookup 2^%-2d %12.6f s\n" k t)
    times.Zkml_compiler.Costmodel.lookup;
  Printf.printf "  field op    %12.3e s\n"
    times.Zkml_compiler.Costmodel.field_op;
  0

(* ------------------------------------------------------------------ *)
(* profile: traced proving run + cost-model accuracy (paper §9.5) *)

let print_accuracy rows =
  Printf.printf "\ncost-model accuracy (predicted vs measured, paper 9.5):\n";
  Printf.printf "  %-16s %12s %12s %8s\n" "op class" "predicted s" "measured s"
    "ratio";
  List.iter
    (fun (a : Zkml_compiler.Pipeline.op_accuracy) ->
      let ratio = Zkml_compiler.Pipeline.accuracy_ratio a in
      Printf.printf "  %-16s %12.4f %12.4f %8s\n" a.op a.predicted_s
        a.measured_s
        (if Float.is_nan ratio then "-" else Printf.sprintf "%.2fx" ratio))
    rows

(* Segmented profile: trace a split-and-aggregate prove and attribute
   the ntt/msm/lookup/commit phase totals to each segment's labelled
   span, so cost-model accuracy is inspectable per segment. *)
let cmd_profile_segmented (m : Zoo.model) backend trace_out json segments =
  (match backend with
  | "ipa" -> ignore (Pipe_ipa.calibrated (Lazy.force ipa_params))
  | _ -> ignore (Pipe_kzg.calibrated (Lazy.force kzg_params)));
  let p, report =
    Obs.with_enabled (fun () ->
        SPF.prove m (backend_of_flag backend) 1234 ~segments)
  in
  if json then begin
    print_endline (Obs.summary_json report);
    (match trace_out with
    | Some path -> Obs.write_file path (Obs.chrome_trace report)
    | None -> ());
    0
  end
  else begin
    Printf.printf
      "traced segmented proving run of %s (%s backend, %d segments):\n\n"
      m.Zoo.name backend (List.length p.SPF.p_ks);
    print_string (Obs.tree_string report);
    Printf.printf
      "\nprove_s %.4f s; peak segment rows %d vs %d monolithic\n"
      p.SPF.p_prove_s p.SPF.p_peak_rows p.SPF.p_mono_rows;
    Printf.printf "\nper-segment phase breakdown (seconds):\n";
    Printf.printf "  %-12s %4s %10s %10s %10s %10s\n" "segment" "k" "ntt"
      "msm" "lookup" "total";
    List.iteri
      (fun i k ->
        let under = Printf.sprintf "segment-%d" i in
        let t name = Obs.total_of ~under report name in
        Printf.printf "  %-12s %4d %10.4f %10.4f %10.4f %10.4f\n" under k
          (t "ntt") (t "msm") (t "lookup") (Obs.total_of report under))
      p.SPF.p_ks;
    (match trace_out with
    | Some path ->
        Obs.write_file path (Obs.chrome_trace report);
        Printf.printf "\nwrote chrome-trace to %s (open in about:tracing)\n"
          path
    | None -> ());
    0
  end

let cmd_profile model backend trace_out json segments =
  let m = load_model model in
  if segments >= 1 then cmd_profile_segmented m backend trace_out json segments
  else
  let inputs = Zoo.sample_inputs m in
  let run_traced () =
    match backend with
    | "ipa" ->
        let params = Lazy.force ipa_params in
        (* calibrate outside the trace so the report holds only the
           proving run *)
        ignore (Pipe_ipa.calibrated params);
        let r, report =
          Obs.with_enabled (fun () ->
              Pipe_ipa.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs)
        in
        ( r.Pipe_ipa.verified,
          r.Pipe_ipa.prove_s,
          Pipe_ipa.cost_accuracy params r.Pipe_ipa.plan report,
          report )
    | _ ->
        let params = Lazy.force kzg_params in
        ignore (Pipe_kzg.calibrated params);
        let r, report =
          Obs.with_enabled (fun () ->
              Pipe_kzg.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs)
        in
        ( r.Pipe_kzg.verified,
          r.Pipe_kzg.prove_s,
          Pipe_kzg.cost_accuracy params r.Pipe_kzg.plan report,
          report )
  in
  let verified, prove_s, accuracy, report = run_traced () in
  if not verified then failwith "profile: self-verification failed";
  if json then begin
    (* scriptable profile: the summary JSON on stdout, nothing else *)
    print_endline (Obs.summary_json report);
    (match trace_out with
    | Some path -> Obs.write_file path (Obs.chrome_trace report)
    | None -> ());
    0
  end
  else begin
  Printf.printf "traced proving run of %s (%s backend):\n\n" m.Zoo.name backend;
  print_string (Obs.tree_string report);
  let span_prove = Obs.total_of report "prove" in
  Printf.printf
    "\ncoarse prove_s %.4f s; prove span total %.4f s (%.1f%% attributed)\n"
    prove_s span_prove
    (100.0 *. span_prove /. Float.max prove_s 1e-9);
  print_accuracy accuracy;
  (let g name = Obs.gauge_of report name in
   match (g "evaluator.ops", g "evaluator.nodes") with
   | Some ops, Some nodes ->
       Printf.printf
         "\ncompiled quotient evaluator: %.0f ops from %.0f expr nodes (%.0f \
          CSE hits), %.0f registers, %.0f interned constants\n"
         ops nodes
         (Option.value ~default:0.0 (g "evaluator.cse_hits"))
         (Option.value ~default:0.0 (g "evaluator.regs"))
         (Option.value ~default:0.0 (g "evaluator.consts"));
       let span = Obs.total_of report "quotient.compiled" in
       let rows = Obs.counter_total report "quotient.rows" in
       if span > 0.0 then
         Printf.printf
           "  quotient.compiled span %.4f s over %.0f rows (%.0f rows/s)\n" span
           rows
           (rows /. Float.max span 1e-9)
   | _ -> ());
  (match trace_out with
  | Some path ->
      Obs.write_file path (Obs.chrome_trace report);
      Printf.printf "\nwrote chrome-trace to %s (open in about:tracing)\n" path
  | None -> ());
  0
  end

let print_plan (plan : Opt.plan) =
  Printf.printf "logical layout:   %s\n" (Spec.to_string plan.Opt.spec);
  Printf.printf "advice columns:   %d\n" plan.Opt.ncols;
  Printf.printf "rows:             2^%d (content %d)\n" plan.Opt.k
    plan.Opt.summary.Zkml_compiler.Layouter.rows_content;
  Printf.printf "lookups:          %d (over %d tables)\n"
    plan.Opt.summary.Zkml_compiler.Layouter.lookup_count
    plan.Opt.summary.Zkml_compiler.Layouter.tables;
  Printf.printf "estimated cost:   %.3f s\n" plan.Opt.est_cost;
  Printf.printf "estimated proof:  %d bytes\n" plan.Opt.est_size

let cmd_optimize model backend objective =
  let m = load_model model in
  let objective =
    if objective = "size" then Opt.Min_size else Opt.Min_time
  in
  let inputs = Zoo.sample_inputs m in
  let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
  let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
  let plan, stats =
    match backend with
    | "ipa" ->
        let params = Lazy.force ipa_params in
        Opt.optimize ~objective ~times:(Pipe_ipa.calibrated params)
          ~backend:Zkml_compiler.Costmodel.Ipa ~group_bytes:Ipa.G.size_bytes
          ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg:m.Zoo.cfg m.Zoo.graph exec
    | _ ->
        let params = Lazy.force kzg_params in
        Opt.optimize ~objective ~times:(Pipe_kzg.calibrated params)
          ~backend:Zkml_compiler.Costmodel.Kzg ~group_bytes:Kzg.G.size_bytes
          ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg:m.Zoo.cfg m.Zoo.graph exec
  in
  Printf.printf "searched %d candidate layouts (%d invalid)\n"
    stats.Opt.candidates stats.Opt.pruned_invalid;
  print_plan plan;
  0

(* ------------------------------------------------------------------ *)
(* check-constraints: the under-constraint detector (DESIGN.md
   "Constraint IR & under-constraint checking") over the gadget
   isolation suite and the zoo models' compiled circuits. *)

module CC = Zkml_compiler.Constraint_check.Make (Zkml_ff.Fp61)

let cmd_check_constraints model backend seed =
  let seed64 = Int64.of_int seed in
  let failures = ref 0 in
  let report name (r : CC.report) =
    let issues = List.length r.CC.r_honest + List.length r.CC.r_findings in
    if issues = 0 then
      Printf.printf "  %-14s OK    (%d cells, %d second-witness candidates)\n"
        name r.CC.r_cells r.CC.r_candidates
    else begin
      incr failures;
      Printf.printf "  %-14s FAIL  (%d cells, %d candidates, %d issues)\n" name
        r.CC.r_cells r.CC.r_candidates issues;
      List.iter
        (fun v ->
          Printf.printf "    honest witness rejected: %s\n"
            (Zkml_plonkish.Cs.violation_to_string v))
        r.CC.r_honest;
      let shown, rest =
        let rec split k = function
          | x :: tl when k > 0 ->
              let a, b = split (k - 1) tl in
              (x :: a, b)
          | tl -> ([], tl)
        in
        split 20 r.CC.r_findings
      in
      List.iter (fun f -> Printf.printf "    %s\n" (CC.pp_finding f)) shown;
      if rest <> [] then
        Printf.printf "    ... and %d more under-constrained cells\n"
          (List.length rest)
    end
  in
  Printf.printf
    "== gadget isolation suite (scale_bits=5, table_bits=9, seed %d) ==\n" seed;
  let gcfg = { Fx.scale_bits = 5; table_bits = 9 } in
  List.iter
    (fun (name, r) -> report name r)
    (CC.gadget_suite ~seed:seed64 ~cfg:gcfg ());
  let models =
    match model with None -> Zoo.all () | Some name -> [ load_model name ]
  in
  Printf.printf "== zoo model circuits ==\n";
  List.iter
    (fun (m : Zoo.model) ->
      let inputs = Zoo.sample_inputs ~seed:seed64 m in
      let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
      let exec =
        Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs
      in
      let plan, _ =
        match backend with
        | "ipa" ->
            let params = Lazy.force ipa_params in
            Opt.optimize ~times:(Pipe_ipa.calibrated params)
              ~backend:Zkml_compiler.Costmodel.Ipa
              ~group_bytes:Ipa.G.size_bytes
              ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg:m.Zoo.cfg m.Zoo.graph
              exec
        | _ ->
            let params = Lazy.force kzg_params in
            Opt.optimize ~times:(Pipe_kzg.calibrated params)
              ~backend:Zkml_compiler.Costmodel.Kzg
              ~group_bytes:Kzg.G.size_bytes
              ~field_bytes:Zkml_ff.Fp61.size_bytes ~cfg:m.Zoo.cfg m.Zoo.graph
              exec
      in
      let lowered =
        Zkml_compiler.Lower.lower_with ~spec_fn:plan.Opt.spec_fn
          ~cfg:m.Zoo.cfg ~ncols:plan.Opt.ncols ~counting:false m.Zoo.graph exec
      in
      let built =
        Zkml_compiler.Layouter.finalize lowered.Zkml_compiler.Lower.layouter
          ~blinding:Opt.blinding ~k:plan.Opt.k
      in
      report m.Zoo.name (CC.check_built ~seed:seed64 built))
    models;
  if !failures = 0 then begin
    Printf.printf "constraint check clean: no under-constrained cells\n";
    0
  end
  else begin
    Printf.printf "constraint check FAILED: %d circuit(s) with issues\n"
      !failures;
    1
  end

let cmd_prove model backend out seed segments =
  let m = load_model model in
  if segments >= 1 then begin
    let p = SPF.prove m (backend_of_flag backend) seed ~segments in
    let oc = open_out out in
    output_string oc p.SPF.p_text;
    close_out oc;
    Printf.printf
      "proved %s with %s in %d segments (k %s; peak rows %d vs %d \
       monolithic) in %.2f s; wrote %s\n"
      m.Zoo.name backend (List.length p.SPF.p_ks)
      (String.concat "," (List.map string_of_int p.SPF.p_ks))
      p.SPF.p_peak_rows p.SPF.p_mono_rows p.SPF.p_prove_s out;
    Log.event "prove.done"
      [ ("model", Log.S m.Zoo.name); ("backend", Log.S backend);
        ("segments", Log.I (List.length p.SPF.p_ks));
        ("peak_rows", Log.I p.SPF.p_peak_rows);
        ("prove_s", Log.F p.SPF.p_prove_s); ("out", Log.S out) ];
    0
  end
  else begin
    let text, prove_s, proof_bytes =
      PF.prove m (backend_of_flag backend) seed
    in
    let oc = open_out out in
    output_string oc text;
    close_out oc;
    Printf.printf "proved %s with %s in %.2f s (%d B); wrote %s\n" m.Zoo.name
      backend prove_s proof_bytes out;
    Log.event "prove.done"
      [ ("model", Log.S m.Zoo.name); ("backend", Log.S backend);
        ("prove_s", Log.F prove_s); ("proof_bytes", Log.I proof_bytes);
        ("out", Log.S out) ];
    0
  end

(* Exit contract: 0 accepted, 1 well-formed-but-rejected, 2 malformed
   input (with a one-line diagnostic on stderr). Nothing an outsider
   puts in the model or proof file reaches the user as a backtrace. *)
let cmd_verify model proof_path =
  (* the proof file's first line selects the monolithic or the
     segmented format; both share the 0/1/2 exit contract *)
  let read_text path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | text -> Ok text
    | exception Sys_error msg ->
        Err.fail ~context:[ "proof-file" ] Err.Io_error msg
  in
  let outcome =
    match load_model_result model with
    | Error e -> `Malformed (Err.with_context "model" e)
    | Ok m -> (
        match read_text proof_path with
        | Error e -> `Malformed e
        | Ok text when SPF.looks_segmented text -> (
            match SPF.of_string text with
            | Error e -> `Malformed e
            | Ok sp -> (
                match
                  SPF.verdict ~kzg_keys:(Hashtbl.create 1)
                    ~ipa_keys:(Hashtbl.create 1) m sp
                with
                | `Accepted ->
                    `Accepted (m.Zoo.name, B.backend_name sp.SPF.sp_backend)
                | (`Rejected | `Malformed _) as v -> v))
        | Ok text -> (
            match PF.of_string text with
            | Error e -> `Malformed e
            | Ok pf -> (
                match
                  PF.verdict ~kzg_keys:(Hashtbl.create 1)
                    ~ipa_keys:(Hashtbl.create 1) m pf
                with
                | `Accepted ->
                    `Accepted (m.Zoo.name, B.backend_name pf.PF.pf_backend)
                | (`Rejected | `Malformed _) as v -> v)))
  in
  let log verdict exit_code =
    Log.event "verify.verdict"
      [ ("model", Log.S model); ("proof", Log.S proof_path);
        ("verdict", Log.S verdict); ("exit", Log.I exit_code) ];
    exit_code
  in
  match outcome with
  | `Accepted (name, backend) ->
      Printf.printf "proof VERIFIED against model %s (%s backend)\n" name
        backend;
      log "accepted" 0
  | `Rejected ->
      Printf.printf "proof REJECTED\n";
      log "rejected" 1
  | `Malformed e ->
      Printf.eprintf "malformed input: %s\n" (Err.to_string e);
      log "malformed" 2

(* ------------------------------------------------------------------ *)
(* batch-prove / batch-verify: the serving layer. One compile (loaded
   from the artifact cache after the first run), N proofs; one batched
   final check for N verifications. *)

let cmd_batch_prove model backend out_prefix seeds segments =
  if seeds = [] then begin
    Printf.eprintf "batch-prove: at least one input SEED is required\n";
    2
  end
  else if segments >= 1 then begin
    (* segmented batch: per-segment keys ride the artifact cache, so
       after the first seed every later proof skips keygen entirely *)
    let m = load_model model in
    let t0 = Zkml_util.Timer.default_clock () in
    let paths =
      List.map
        (fun seed ->
          let p = SPF.prove m (backend_of_flag backend) seed ~segments in
          let path = Printf.sprintf "%s-%d.zkp" out_prefix seed in
          let oc = open_out path in
          output_string oc p.SPF.p_text;
          close_out oc;
          path)
        seeds
    in
    let total_s = Zkml_util.Timer.default_clock () -. t0 in
    let n = List.length seeds in
    Printf.printf
      "proved %d inputs with %s in %d segments in %.2f s (%.2f s/proof \
       amortized)\n"
      n backend segments total_s
      (total_s /. float_of_int n);
    List.iter (fun p -> Printf.printf "wrote %s\n" p) paths;
    Log.event "batch_prove.done"
      [ ("model", Log.S m.Zoo.name); ("backend", Log.S backend);
        ("segments", Log.I segments); ("proofs", Log.I n);
        ("prove_s", Log.F total_s) ];
    0
  end
  else begin
    let m = load_model model in
    let jobs =
      List.map
        (fun s -> (Zoo.sample_inputs ~seed:(Int64.of_int s) m, Int64.of_int s))
        seeds
    in
    let write seed ~spec ~ncols ~k ~instance_ints ~proof_hex =
      let path = Printf.sprintf "%s-%d.zkp" out_prefix seed in
      let oc = open_out path in
      output_string oc
        (PF.to_string ~backend:(backend_of_flag backend) ~model_name:m.Zoo.name
           ~cfg:m.Zoo.cfg ~spec ~ncols ~k ~instance_ints ~proof_hex);
      close_out oc;
      path
    in
    let now = Zkml_util.Timer.default_clock in
    let t0 = now () in
    let status, prepare_s, prove_s, paths =
      match backend with
      | "ipa" ->
          let params = Lazy.force ipa_params in
          let entry, status =
            Serve_ipa.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph
          in
          let t1 = now () in
          let pairs =
            Serve_ipa.prove_batch params entry ~cfg:m.Zoo.cfg m.Zoo.graph jobs
          in
          let t2 = now () in
          let batch =
            List.map
              (fun (w, p) ->
                ( w.Pipe_ipa.w_instance_ints,
                  Pipe_ipa.Proto.proof_to_bytes p ))
              pairs
          in
          (match Serve_ipa.verify_batch params entry ~batch with
          | Pipe_ipa.Proto.Accepted -> ()
          | _ -> failwith "batch self-verification failed");
          let paths =
            List.map2
              (fun seed (w, p) ->
                write seed ~spec:entry.Serve_ipa.e_spec
                  ~ncols:entry.Serve_ipa.e_ncols ~k:entry.Serve_ipa.e_k
                  ~instance_ints:w.Pipe_ipa.w_instance_ints
                  ~proof_hex:
                    (Zkml_util.Bytes_util.to_hex
                       (Pipe_ipa.Proto.proof_to_bytes p)))
              seeds pairs
          in
          (status, t1 -. t0, t2 -. t1, paths)
      | _ ->
          let params = Lazy.force kzg_params in
          let entry, status =
            Serve_kzg.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph
          in
          let t1 = now () in
          let pairs =
            Serve_kzg.prove_batch params entry ~cfg:m.Zoo.cfg m.Zoo.graph jobs
          in
          let t2 = now () in
          let batch =
            List.map
              (fun (w, p) ->
                ( w.Pipe_kzg.w_instance_ints,
                  Pipe_kzg.Proto.proof_to_bytes p ))
              pairs
          in
          (match Serve_kzg.verify_batch params entry ~batch with
          | Pipe_kzg.Proto.Accepted -> ()
          | _ -> failwith "batch self-verification failed");
          let paths =
            List.map2
              (fun seed (w, p) ->
                write seed ~spec:entry.Serve_kzg.e_spec
                  ~ncols:entry.Serve_kzg.e_ncols ~k:entry.Serve_kzg.e_k
                  ~instance_ints:w.Pipe_kzg.w_instance_ints
                  ~proof_hex:
                    (Zkml_util.Bytes_util.to_hex
                       (Pipe_kzg.Proto.proof_to_bytes p)))
              seeds pairs
          in
          (status, t1 -. t0, t2 -. t1, paths)
    in
    let n = List.length seeds in
    (* aggregate hit/miss/corrupt across every lookup this process made
       (prepare above, plus any earlier ones), from the always-on
       registry rather than the single per-entry status *)
    let snap = Metrics.snapshot () in
    let cache st =
      int_of_float
        (Metrics.counter_value
           ~labels:[ ("status", st) ]
           snap "zkml_cache_lookups_total")
    in
    Printf.printf
      "artifact cache: %s (lookups: %d hit-mem, %d hit-disk, %d miss, %d \
       corrupt)\n"
      (Zkml_serve.Artifacts.status_string status)
      (cache "hit_mem") (cache "hit_disk") (cache "miss") (cache "corrupt");
    Printf.printf
      "proved %d inputs with %s in %.2f s (%.2f s/proof amortized; prepare \
       %.2f s%s)\n"
      n backend prove_s
      (prove_s /. float_of_int n)
      prepare_s
      (if Zkml_serve.Artifacts.is_hit status then ", compile skipped" else "");
    List.iter (fun p -> Printf.printf "wrote %s\n" p) paths;
    Log.event "batch_prove.done"
      [ ("model", Log.S m.Zoo.name); ("backend", Log.S backend);
        ("proofs", Log.I n); ("prepare_s", Log.F prepare_s);
        ("prove_s", Log.F prove_s);
        ("cache_hit", Log.B (Zkml_serve.Artifacts.is_hit status)) ];
    0
  end

(* Batched verification follows the `verify` exit contract: 0 when every
   proof in the batch is accepted, 1 when the batch is well-formed but
   some member is false (the RLC'd check does not localize which), 2
   when any input is malformed. All members must target the same
   circuit — that is what makes one final check sound. *)
let cmd_batch_verify model proof_paths =
  let outcome =
    match load_model_result model with
    | Error e -> `Malformed (Err.with_context "model" e)
    | Ok m -> (
        let rec parse acc i = function
          | [] -> Ok (List.rev acc)
          | path :: rest -> (
              match PF.read_file path with
              | Error e ->
                  Error (Err.with_context (Printf.sprintf "batch[%d]" i) e)
              | Ok pf -> parse (pf :: acc) (i + 1) rest)
        in
        match parse [] 0 proof_paths with
        | Error e -> `Malformed e
        | Ok [] ->
            `Malformed
              (Err.make Err.Missing_field "at least one PROOF is required")
        | Ok (first :: _ as pfs) ->
            let header (pf : PF.t) =
              ( pf.PF.pf_model, pf.PF.pf_backend, Spec.to_string pf.PF.pf_spec,
                pf.PF.pf_ncols, pf.PF.pf_k, pf.PF.pf_cfg )
            in
            if first.PF.pf_model <> m.Zoo.name then
              `Malformed
                (Err.make ~context:[ "proof-file" ] Err.Bad_field
                   (Printf.sprintf "proofs are for model %S, not %S"
                      first.PF.pf_model m.Zoo.name))
            else if
              not (List.for_all (fun pf -> header pf = header first) pfs)
            then
              `Malformed
                (Err.make ~context:[ "batch" ] Err.Bad_field
                   "batch members target different circuits; batched \
                    verification needs one shared layout")
            else begin
              let batch =
                List.map (fun pf -> (pf.PF.pf_instance, pf.PF.pf_proof)) pfs
              in
              let run () =
                match first.PF.pf_backend with
                | B.Ipa -> (
                    let params = Lazy.force ipa_params in
                    match
                      Serve_ipa.prepare_for_header ~spec:first.PF.pf_spec
                        ~ncols:first.PF.pf_ncols ~k:first.PF.pf_k
                        ~cfg:first.PF.pf_cfg params m.Zoo.graph
                    with
                    | Error e -> `Malformed (Err.with_context "rebuild-keys" e)
                    | Ok (entry, status) -> (
                        match Serve_ipa.verify_batch params entry ~batch with
                        | Pipe_ipa.Proto.Accepted -> `Accepted status
                        | Pipe_ipa.Proto.Rejected -> `Rejected
                        | Pipe_ipa.Proto.Malformed e -> `Malformed e))
                | B.Kzg -> (
                    let params = Lazy.force kzg_params in
                    match
                      Serve_kzg.prepare_for_header ~spec:first.PF.pf_spec
                        ~ncols:first.PF.pf_ncols ~k:first.PF.pf_k
                        ~cfg:first.PF.pf_cfg params m.Zoo.graph
                    with
                    | Error e -> `Malformed (Err.with_context "rebuild-keys" e)
                    | Ok (entry, status) -> (
                        match Serve_kzg.verify_batch params entry ~batch with
                        | Pipe_kzg.Proto.Accepted -> `Accepted status
                        | Pipe_kzg.Proto.Rejected -> `Rejected
                        | Pipe_kzg.Proto.Malformed e -> `Malformed e))
              in
              (* run traced so the batched-final-check count is visible *)
              let v, report = Obs.with_enabled run in
              `Verdict
                ( List.length pfs,
                  B.backend_name first.PF.pf_backend,
                  int_of_float (Obs.counter_total report "pcs.final_check"),
                  v )
            end)
  in
  let log n verdict exit_code =
    Log.event "batch_verify.verdict"
      [ ("model", Log.S model); ("proofs", Log.I n);
        ("verdict", Log.S verdict); ("exit", Log.I exit_code) ];
    exit_code
  in
  match outcome with
  | `Verdict (n, backend, checks, `Accepted status) ->
      Printf.printf "artifact cache: %s\n"
        (Zkml_serve.Artifacts.status_string status);
      Printf.printf
        "batch of %d proofs VERIFIED (%s backend, %d batched final check%s)\n"
        n backend checks
        (if checks = 1 then "" else "s");
      log n "accepted" 0
  | `Verdict (n, _, _, `Rejected) ->
      Printf.printf "batch of %d proofs REJECTED (at least one member false)\n"
        n;
      log n "rejected" 1
  | `Verdict (n, _, _, `Malformed e) ->
      Printf.eprintf "malformed input: %s\n" (Err.to_string e);
      log n "malformed" 2
  | `Malformed e ->
      Printf.eprintf "malformed input: %s\n" (Err.to_string e);
      log (List.length proof_paths) "malformed" 2

(* ------------------------------------------------------------------ *)
(* segments-smoke: the split-and-aggregate hard gate in `make check` *)

(* Prove mnist at --segments 1 and 4: both files must verify (and agree
   with each other on the model statement); a flipped seam digest must
   come back verdict 1; a dropped segment group verdict 2. Exits
   non-zero on any miss, like serve-smoke. *)
let cmd_segments_smoke () =
  let m = Zoo.by_name "mnist" in
  let kzg_keys = Hashtbl.create 8 and ipa_keys = Hashtbl.create 8 in
  let verdict_of text =
    match SPF.of_string text with
    | Error e -> `Malformed e
    | Ok sp -> SPF.verdict ~kzg_keys ~ipa_keys m sp
  in
  let verdict_name = function
    | `Accepted -> "accepted"
    | `Rejected -> "rejected"
    | `Malformed _ -> "malformed"
  in
  let failures = ref 0 in
  let expect name want got =
    let ok = want = verdict_name got in
    if not ok then incr failures;
    Printf.printf "  %-44s %-9s %s\n%!" name (verdict_name got)
      (if ok then "ok" else Printf.sprintf "FAIL (expected %s)" want)
  in
  Printf.printf "segments-smoke: proving mnist at --segments 1 and 4...\n%!";
  let p1 = SPF.prove m B.Kzg 1234 ~segments:1 in
  let p4 = SPF.prove m B.Kzg 1234 ~segments:4 in
  Printf.printf "  peak rows: %d (1 seg) / %d (4 segs)\n%!" p1.SPF.p_peak_rows
    p4.SPF.p_peak_rows;
  expect "honest --segments 1" "accepted" (verdict_of p1.SPF.p_text);
  expect "honest --segments 4" "accepted" (verdict_of p4.SPF.p_text);
  (match SPF.of_string p4.SPF.p_text with
  | Error e -> failwith (Err.to_string e)
  | Ok sp ->
      if Array.length sp.SPF.sp_seams = 0 then begin
        incr failures;
        Printf.printf "  FAIL: 4-segment mnist proof has no seams\n%!"
      end
      else begin
        (* seam-digest tamper: well-formed file, false statement *)
        let d = Bytes.of_string sp.SPF.sp_seams.(0) in
        Bytes.set d 0 (Char.chr (Char.code (Bytes.get d 0) lxor 1));
        let orig = sp.SPF.sp_seams.(0) in
        sp.SPF.sp_seams.(0) <- Bytes.to_string d;
        expect "seam-digest tamper" "rejected" (verdict_of (SPF.render sp));
        sp.SPF.sp_seams.(0) <- orig;
        (* seam-value tamper in a consumer segment's import region *)
        let g = sp.SPF.sp_groups.(1) in
        let inst = Array.copy g.SPF.sg_instance in
        inst.(0) <- inst.(0) + 1;
        let groups = Array.copy sp.SPF.sp_groups in
        groups.(1) <- { g with SPF.sg_instance = inst };
        expect "seam-value tamper" "rejected"
          (verdict_of (SPF.render { sp with SPF.sp_groups = groups }));
        (* dropped segment: framing no longer matches the derived plan *)
        let dropped =
          {
            sp with
            SPF.sp_groups =
              Array.sub sp.SPF.sp_groups 0
                (Array.length sp.SPF.sp_groups - 1);
          }
        in
        expect "dropped segment" "malformed" (verdict_of (SPF.render dropped))
      end);
  if !failures = 0 then begin
    Printf.printf "segments-smoke: ok\n";
    0
  end
  else begin
    Printf.eprintf "segments-smoke: %d FAILURES\n" !failures;
    1
  end

(* ------------------------------------------------------------------ *)
(* fuzz: deterministic malformed-input fuzzing of both parse surfaces *)

let log_fuzz_report label (r : Fuzz.report) =
  Log.event "fuzz.report"
    [ ("corpus", Log.S label); ("iters", Log.I r.Fuzz.iters);
      ("malformed", Log.I r.Fuzz.malformed);
      ("rejected", Log.I r.Fuzz.rejected); ("valid", Log.I r.Fuzz.valid);
      ("unchanged", Log.I r.Fuzz.unchanged);
      ("accepted", Log.I (List.length r.Fuzz.accepted_mutants));
      ("escaped", Log.I (List.length r.Fuzz.escaped)) ]

let cmd_fuzz iters seed =
  let rng = Zkml_util.Rng.create (Int64.of_int seed) in
  Printf.printf "fuzz: %d mutants per corpus, seed %d\n%!" iters seed;
  (* corpus 1: every zoo model in the textual format. No soundness claim
     here — a mutant is a failure only if parsing throws, or accepts
     input that breaks the canonical round-trip invariant. *)
  let model_corpus =
    List.map (fun m -> Zkml_nn.Serialize.to_string m.Zoo.graph) (Zoo.all ())
  in
  let classify_model text =
    match Zkml_nn.Serialize.of_string text with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok g -> (
        let canonical = Zkml_nn.Serialize.to_string g in
        match Zkml_nn.Serialize.of_string canonical with
        | Ok g2 when Zkml_nn.Serialize.to_string g2 = canonical -> Fuzz.Valid
        | _ -> Fuzz.Accepted)
  in
  let model_report =
    Fuzz.run ~text:true ~rng ~iters ~corpus:model_corpus
      ~classify:classify_model ()
  in
  List.iter print_endline (Fuzz.report_lines ~label:"models" model_report);
  log_fuzz_report "models" model_report;
  (* corpus 2: real proof files for the two smallest models, one per
     backend. Soundness claim: no mutant may verify. *)
  Printf.printf "building proof corpus (mnist/kzg, dlrm/ipa)...\n%!";
  let m_mnist = Zoo.by_name "mnist" and m_dlrm = Zoo.by_name "dlrm" in
  let p_mnist, _, _ = PF.prove m_mnist B.Kzg 1234 in
  let p_dlrm, _, _ = PF.prove m_dlrm B.Ipa 1234 in
  let kzg_keys = Hashtbl.create 16 and ipa_keys = Hashtbl.create 16 in
  let classify_proof text =
    match PF.of_string text with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok pf -> (
        let m =
          if pf.PF.pf_model = "mnist" then Some m_mnist
          else if pf.PF.pf_model = "dlrm" then Some m_dlrm
          else None
        in
        match m with
        | None -> Fuzz.Malformed "unknown model name"
        | Some m -> (
            match PF.verdict ~kzg_keys ~ipa_keys m pf with
            | `Accepted -> Fuzz.Accepted
            | `Rejected -> Fuzz.Rejected
            | `Malformed e -> Fuzz.Malformed (Err.to_string e)))
  in
  let proof_report =
    Fuzz.run ~text:true ~rng ~iters ~corpus:[ p_mnist; p_dlrm ]
      ~classify:classify_proof ()
  in
  List.iter print_endline (Fuzz.report_lines ~label:"proofs" proof_report);
  log_fuzz_report "proofs" proof_report;
  (* corpus 3: artifact-cache entries (the serving layer's disk format,
     binary mutators). The digest-guarded payload means every effective
     mutation must classify as malformed — Marshal never sees unverified
     bytes. Digesting a multi-megabyte payload per mutant is the cost,
     so this corpus runs at a capped iteration count. *)
  Printf.printf "building artifact-cache corpus (mnist/kzg)...\n%!";
  let cache_key, cache_text =
    let params = Lazy.force kzg_params in
    let entry, _ =
      Serve_kzg.prepare ~cfg:m_mnist.Zoo.cfg params m_mnist.Zoo.graph
    in
    let key = Serve_kzg.cache_key ~cfg:m_mnist.Zoo.cfg m_mnist.Zoo.graph in
    (key, Serve_kzg.entry_to_string ~key entry)
  in
  let classify_cache text =
    match Serve_kzg.entry_of_string ~key:cache_key text with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok _ ->
        (* strict: the digest + field checks admit only the exact
           canonical bytes, so any changed mutant that parses is a
           soundness failure *)
        if String.equal text cache_text then Fuzz.Valid else Fuzz.Accepted
  in
  let cache_report =
    Fuzz.run ~rng ~iters:(min iters 120) ~corpus:[ cache_text ]
      ~classify:classify_cache ()
  in
  List.iter print_endline
    (Fuzz.report_lines ~label:"artifact-cache" cache_report);
  log_fuzz_report "artifact-cache" cache_report;
  (* corpus 4: wire-protocol frames (the daemon's network surface,
     binary mutators). The encoding is canonical — fixed-width
     big-endian integers, exact length prefixes, a closed kind set and
     an end-of-payload check — so a decoded mutant must re-encode to
     the very same bytes; a mutant that decodes but re-encodes
     differently (e.g. a non-canonical length) would be a parser
     soundness failure. Truncated frames, over-cap lengths, zero/short
     lengths, duplicated headers and trailing bytes all land here via
     the generic mutators. *)
  let wire_corpus =
    let module W = Zkml_serve.Wire in
    List.map W.encode_request
      [ W.Ping;
        W.Prove
          { tenant = "fuzz"; backend = B.Kzg; model = "mnist";
            seeds = [ 1L; 2L; 3L ] };
        W.Prove_seg
          { tenant = "fuzz"; backend = B.Kzg; model = "mnist"; segments = 4;
            seeds = [ 1L; 2L ] };
        W.Verify { tenant = "fuzz"; model = "mnist"; proof = p_mnist };
        W.Shutdown ]
    @ List.map W.encode_response
        [ W.Pong; W.Proofs [ p_mnist; p_dlrm ];
          W.Verdict { code = 2; detail = "malformed input" }; W.Overloaded;
          W.Stopping ]
  in
  let classify_wire text =
    let module W = Zkml_serve.Wire in
    match W.decode_any text with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok v -> if String.equal (W.encode_any v) text then Fuzz.Valid else Fuzz.Accepted
  in
  let wire_report =
    Fuzz.run ~rng ~iters ~corpus:wire_corpus ~classify:classify_wire ()
  in
  List.iter print_endline (Fuzz.report_lines ~label:"wire" wire_report);
  log_fuzz_report "wire" wire_report;
  (* corpus 5: segmented proof files. Soundness claim: no mutant may be
     accepted, and an accepted (i.e. unchanged) file must re-render to
     itself — the canonical re-encode oracle over the seam digests and
     per-segment groups. *)
  Printf.printf "building segmented proof corpus (mnist/kzg, 3 segments)...\n%!";
  let p_seg = (SPF.prove m_mnist B.Kzg 1234 ~segments:3).SPF.p_text in
  let seg_kzg_keys = Hashtbl.create 16 and seg_ipa_keys = Hashtbl.create 16 in
  let classify_seg text =
    match SPF.of_string text with
    | Error e -> Fuzz.Malformed (Err.to_string e)
    | Ok sp ->
        if sp.SPF.sp_model <> "mnist" then Fuzz.Malformed "unknown model name"
        else if SPF.render sp <> text then
          (* parsed but not canonical: a parser soundness failure *)
          Fuzz.Accepted
        else begin
          match
            SPF.verdict ~kzg_keys:seg_kzg_keys ~ipa_keys:seg_ipa_keys m_mnist
              sp
          with
          | `Accepted -> if text = p_seg then Fuzz.Valid else Fuzz.Accepted
          | `Rejected -> Fuzz.Rejected
          | `Malformed e -> Fuzz.Malformed (Err.to_string e)
        end
  in
  let seg_report =
    Fuzz.run ~text:true ~rng ~iters:(min iters 250) ~corpus:[ p_seg ]
      ~classify:classify_seg ()
  in
  List.iter print_endline
    (Fuzz.report_lines ~label:"segmented-proofs" seg_report);
  log_fuzz_report "segmented-proofs" seg_report;
  if
    Fuzz.clean model_report && Fuzz.clean proof_report
    && Fuzz.clean cache_report && Fuzz.clean wire_report
    && Fuzz.clean seg_report
  then begin
    Printf.printf "fuzz: clean (0 escaped exceptions, 0 accepted mutants)\n";
    0
  end
  else begin
    Printf.eprintf "fuzz: FAILURES found\n";
    1
  end

(* ------------------------------------------------------------------ *)
(* metrics: dump the always-on registry, optionally after exercising a
   cached prove + batched verify so every pipeline instrument fires *)

let print_metrics_summary snap =
  let label_str = function
    | [] -> ""
    | ls ->
        "{"
        ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls)
        ^ "}"
  in
  List.iter
    (fun (f : Metrics.family_snap) ->
      List.iter
        (fun (srs : Metrics.series_snap) ->
          let name = f.Metrics.f_name ^ label_str srs.Metrics.s_labels in
          match srs.Metrics.s_value with
          | Metrics.Counter_v v | Metrics.Gauge_v v ->
              Printf.printf "%-52s %14s\n" name (Obs.json_float v)
          | Metrics.Hist_v h ->
              if h.Metrics.h_count > 0 then
                Printf.printf
                  "%-52s count %-6d sum %11.4f  p50 %9.3g  p90 %9.3g  p99 \
                   %9.3g\n"
                  name h.Metrics.h_count h.Metrics.h_sum
                  (Metrics.quantile h 0.50) (Metrics.quantile h 0.90)
                  (Metrics.quantile h 0.99))
        f.Metrics.f_series)
    snap

let cmd_metrics model backend seed fmt =
  (match model with
  | None -> ()
  | Some name ->
      (* one cached prove + one batched verify: exercises the phase
         histograms, cache counters, batch-size histograms, verdict and
         final-check counters in a single run. Progress goes to stderr
         so stdout stays machine-parseable. *)
      let m = load_model name in
      Printf.eprintf "collecting telemetry from a %s prove+verify run...\n%!"
        m.Zoo.name;
      let jobs =
        [ (Zoo.sample_inputs ~seed:(Int64.of_int seed) m, Int64.of_int seed) ]
      in
      (match backend with
      | "ipa" ->
          let params = Lazy.force ipa_params in
          let entry, _ = Serve_ipa.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph in
          let pairs =
            Serve_ipa.prove_batch params entry ~cfg:m.Zoo.cfg m.Zoo.graph jobs
          in
          let batch =
            List.map
              (fun (w, p) ->
                (w.Pipe_ipa.w_instance_ints, Pipe_ipa.Proto.proof_to_bytes p))
              pairs
          in
          (match Serve_ipa.verify_batch params entry ~batch with
          | Pipe_ipa.Proto.Accepted -> ()
          | _ -> failwith "metrics: self-verification failed")
      | _ ->
          let params = Lazy.force kzg_params in
          let entry, _ = Serve_kzg.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph in
          let pairs =
            Serve_kzg.prove_batch params entry ~cfg:m.Zoo.cfg m.Zoo.graph jobs
          in
          let batch =
            List.map
              (fun (w, p) ->
                (w.Pipe_kzg.w_instance_ints, Pipe_kzg.Proto.proof_to_bytes p))
              pairs
          in
          (match Serve_kzg.verify_batch params entry ~batch with
          | Pipe_kzg.Proto.Accepted -> ()
          | _ -> failwith "metrics: self-verification failed")));
  let snap = Metrics.snapshot () in
  (match fmt with
  | "prom" -> print_string (Metrics.prometheus_string snap)
  | "json" -> print_endline (Metrics.json_string snap)
  | _ -> print_metrics_summary snap);
  0

(* ------------------------------------------------------------------ *)
(* serve / loadgen: the proving daemon and its seeded traffic replayer *)

module Server = Zkml_serve.Server

let addr_of_flags socket port =
  match (socket, port) with
  | Some path, None -> Ok (Server.Unix_sock path)
  | None, Some p when p > 0 && p < 65536 -> Ok (Server.Tcp p)
  | None, Some _ -> Error "--port must be in 1..65535"
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"
  | None, None -> Error "one of --socket PATH or --port PORT is required"

(* --warm all / --warm mnist,dlrm → zoo names to pre-compile *)
let warm_names = function
  | "" -> []
  | "all" -> List.map (fun m -> m.Zoo.name) (Zoo.all ())
  | s -> List.filter (fun x -> x <> "") (String.split_on_char ',' s)

let cmd_serve socket port workers queue warm =
  match addr_of_flags socket port with
  | Error msg ->
      Printf.eprintf "serve: %s\n" msg;
      2
  | Ok addr ->
      if workers < 1 || queue < 1 then begin
        Printf.eprintf "serve: --workers and --queue must be positive\n";
        2
      end
      else begin
        let config =
          {
            Server.workers;
            queue_capacity = queue;
            warm = warm_names warm;
            job_hook = None;
          }
        in
        Printf.printf "zkml serve: listening on %s (%d worker(s), queue %d)\n%!"
          (Server.addr_string addr) workers queue;
        Server.run ~config addr;
        0
      end

let cmd_loadgen socket port spawn seed requests concurrency models bench
    bench_out workers queue =
  match addr_of_flags socket port with
  | Error msg ->
      Printf.eprintf "loadgen: %s\n" msg;
      2
  | Ok addr ->
      let models = warm_names (if models = "" then "mnist,dlrm" else models) in
      let unknown =
        List.filter
          (fun name ->
            match Err.guard Err.Unknown_variant (fun () -> Zoo.by_name name) with
            | Ok _ -> false
            | Error _ -> true)
          models
      in
      if unknown <> [] then begin
        Printf.eprintf "loadgen: unknown model(s): %s\n"
          (String.concat ", " unknown);
        2
      end
      else begin
        let bench_out =
          match (bench_out, bench) with
          | Some path, _ -> Some path
          | None, true ->
              let dir =
                match Sys.getenv_opt "ZKML_BENCH_DIR" with
                | Some d when d <> "" -> d
                | _ -> "."
              in
              (try Unix.mkdir dir 0o755
               with Unix.Unix_error (Unix.EEXIST, _, _) | Unix.Unix_error (Unix.ENOENT, _, _) -> ());
              Some (Filename.concat dir "BENCH_PR9.json")
          | None, false -> None
        in
        let opts =
          {
            Zkml_serve.Loadgen.lg_addr = addr;
            lg_seed = seed;
            lg_requests = requests;
            lg_concurrency = concurrency;
            lg_models = models;
            lg_spawn =
              (if spawn then
                 Some
                   {
                     Server.workers;
                     queue_capacity = queue;
                     (* warm everything the schedule can touch, so
                        measured latencies are serve-time, not
                        compile-time *)
                     warm = models;
                     job_hook = None;
                   }
               else None);
            lg_bench_out = bench_out;
          }
        in
        Zkml_serve.Loadgen.run opts
      end

(* ------------------------------------------------------------------ *)
(* cmdliner wiring *)

open Cmdliner

let model_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"MODEL" ~doc:"Zoo model name or path to a .zkml file.")

let backend_arg =
  Arg.(
    value & opt string "kzg"
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"kzg or ipa.")

(* Worker-domain count for the parallel prover. The flag (or the
   ZKML_JOBS environment variable, which the pool also reads on its
   own) only changes wall-clock time: proof bytes are identical at
   every job count. *)
let jobs_term =
  let arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~env:(Cmd.Env.info "ZKML_JOBS")
          ~doc:
            "Worker domains for the parallel prover (default 1, i.e. \
             sequential). Output is bit-for-bit identical regardless of \
             $(docv).")
  in
  let apply = function
    | Some n -> Zkml_util.Pool.set_jobs n
    | None -> ()
  in
  Term.(const apply $ arg)

(* --metrics-out FILE on the prove/verify/batch family: write the
   metrics snapshot at process exit. Format by extension: .json gets
   the JSON snapshot, anything else Prometheus text. *)
let metrics_out = ref None

let metrics_out_term =
  let arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry to $(docv) at exit (Prometheus \
             text exposition; JSON when $(docv) ends in .json).")
  in
  let apply = function Some _ as p -> metrics_out := p | None -> () in
  Term.(const apply $ arg)

(* --segments N on the prove family: 0 (the default) keeps the
   monolithic pipeline; N >= 1 switches to split-and-aggregate
   proving (N layer-boundary segments, seam-digest binding, one
   aggregated final check). *)
let segments_term =
  Arg.(
    value & opt int 0
    & info [ "segments" ] ~docv:"N"
        ~doc:
          "Prove in $(docv) independently-proved segments cut at layer \
           boundaries (0 = monolithic, the default). Segment proofs are \
           bound by seam digests over the shared boundary values and \
           verified with one aggregated final check; acceptance is \
           identical to the monolithic pipeline.")

let models_cmd =
  Cmd.v (Cmd.info "models" ~doc:"List the built-in model zoo.")
    Term.(const cmd_models $ const ())

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print parameters, flops and node count.")
    Term.(const cmd_stats $ model_arg)

let export_cmd =
  let path =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialize a zoo model to the textual format.")
    Term.(const cmd_export $ model_arg $ path)

let calibrate_cmd =
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Benchmark FFT/MSM/lookup/field costs (cost-model inputs).")
    Term.(const (fun () b -> cmd_calibrate b) $ jobs_term $ backend_arg)

let optimize_cmd =
  let objective =
    Arg.(
      value & opt string "time"
      & info [ "objective" ] ~docv:"OBJ" ~doc:"time or size.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Run the circuit-layout optimizer (Algorithm 1).")
    Term.(
      const (fun () m b o -> cmd_optimize m b o)
      $ jobs_term $ model_arg $ backend_arg $ objective)

let check_constraints_cmd =
  let model =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"Zoo model or .zkml path (default: all).")
  in
  let seed =
    Arg.(
      value & opt int 1234
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Deterministic seed for inputs and perturbation candidates.")
  in
  Cmd.v
    (Cmd.info "check-constraints"
       ~doc:
         "Run the under-constraint detector: every gadget in isolation plus \
          each zoo model's compiled circuit; perturb tracked advice cells \
          and search for a second witness the constraints accept. Exits 1 \
          if any cell is not pinned down.")
    Term.(
      const (fun () m b s -> cmd_check_constraints m b s)
      $ jobs_term $ model $ backend_arg $ seed)

let profile_cmd =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a chrome-trace JSON of the proving run to $(docv).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the profile report as summary JSON on stdout instead of \
             the pretty-printed tree (scriptable).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a traced prove; print the span tree and the predicted-vs-actual \
          cost-model report (paper 9.5). With --segments N, trace a \
          split-and-aggregate prove and print the per-segment phase \
          breakdown instead.")
    Term.(
      const (fun () () m b t j s -> cmd_profile m b t j s)
      $ jobs_term $ metrics_out_term $ model_arg $ backend_arg $ trace $ json
      $ segments_term)

let prove_cmd =
  let out =
    Arg.(
      value & opt string "proof.zkp"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Proof output file.")
  in
  let seed =
    Arg.(
      value & opt int 1234
      & info [ "seed" ] ~docv:"SEED" ~doc:"Input sampling seed.")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Compile, optimize, prove; write a proof file. With --segments N, \
          cut the circuit at layer boundaries into N independently-proved \
          segments bound by seam digests and write a `zkml-proof-seg v1` \
          file instead.")
    Term.(
      const (fun () () m b o s n -> cmd_prove m b o s n)
      $ jobs_term $ metrics_out_term $ model_arg $ backend_arg $ out $ seed
      $ segments_term)

let verify_cmd =
  let proof =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"PROOF" ~doc:"Proof file from `zkml prove`.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Verify a proof file against a model. Exits 0 when the proof is \
          accepted, 1 when it is well-formed but rejected, 2 when any input \
          is malformed.")
    Term.(
      const (fun () () m p -> cmd_verify m p)
      $ jobs_term $ metrics_out_term $ model_arg $ proof)

let batch_prove_cmd =
  let out =
    Arg.(
      value & opt string "proof"
      & info [ "o"; "out" ] ~docv:"PREFIX"
          ~doc:"Proof output prefix; writes $(docv)-<seed>.zkp per input.")
  in
  let seeds =
    Arg.(
      value & pos_right 0 int []
      & info [] ~docv:"SEED" ~doc:"Input sampling seeds, one proof each.")
  in
  Cmd.v
    (Cmd.info "batch-prove"
       ~doc:
         "Prove one input per SEED against a single compiled circuit. \
          Compilation artifacts (layout, keys, fixed commitments) are cached \
          per model content hash under ZKML_CACHE_DIR (default \
          ~/.cache/zkml), so a second run skips compilation. Proof bytes are \
          identical to `zkml prove` runs with the same seeds.")
    Term.(
      const (fun () () m b o s n -> cmd_batch_prove m b o s n)
      $ jobs_term $ metrics_out_term $ model_arg $ backend_arg $ out $ seeds
      $ segments_term)

let batch_verify_cmd =
  let proofs =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"PROOF" ~doc:"Proof files from `zkml prove`/`batch-prove`.")
  in
  Cmd.v
    (Cmd.info "batch-verify"
       ~doc:
         "Verify N proof files against one model with a single batched final \
          check (a random linear combination of the per-proof checks). Exits \
          0 when every proof is accepted, 1 when the batch is well-formed but \
          some member is false, 2 when any input is malformed. All members \
          must share the proof-file header (same circuit layout).")
    Term.(
      const (fun () () m p -> cmd_batch_verify m p)
      $ jobs_term $ metrics_out_term $ model_arg $ proofs)

let fuzz_cmd =
  let iters =
    Arg.(
      value & opt int 500
      & info [ "iters" ] ~docv:"N" ~doc:"Mutants per corpus.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Fuzz seed; a (seed, iters) pair replays exactly.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Deterministically fuzz the untrusted-input surface: mutate valid \
          model and proof files (truncation, bit flips, splices, \
          duplicated/reordered lines, numeric overflows) and check every \
          mutant is cleanly classified — no escaped exception, no accepted \
          mutant.")
    Term.(const (fun () i s -> cmd_fuzz i s) $ jobs_term $ iters $ seed)

let segments_smoke_cmd =
  Cmd.v
    (Cmd.info "segments-smoke"
       ~doc:
         "End-to-end smoke test for split-and-aggregate proving: prove \
          mnist monolithically and at --segments 4, check both are \
          accepted, then check a seam-tampered and a truncated variant \
          are rejected. Exits non-zero on any failure.")
    Term.(const (fun () -> cmd_segments_smoke ()) $ jobs_term)

let metrics_cmd =
  let model =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"MODEL"
          ~doc:
            "Optional zoo model (or .zkml path): run one cached prove and \
             one batched verify of it first, so the dump shows live \
             pipeline telemetry.")
  in
  let seed =
    Arg.(
      value & opt int 1234
      & info [ "seed" ] ~docv:"SEED" ~doc:"Input sampling seed.")
  in
  let fmt =
    Arg.(
      value & opt string "summary"
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: summary (human table with p50/p90/p99), prom \
             (Prometheus text exposition) or json.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump the always-on metrics registry: per-phase latency histograms \
          (ntt, msm, commit, quotient, opening), cache/verdict/batch \
          counters. With MODEL, exercises the full pipeline first.")
    Term.(
      const (fun () () m b s f -> cmd_metrics m b s f)
      $ jobs_term $ metrics_out_term $ model $ backend_arg $ seed $ fmt)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on (or connect to) a unix-domain socket at $(docv).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on (or connect to) loopback TCP port $(docv).")

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~env:(Cmd.Env.info "ZKML_SERVE_WORKERS")
          ~doc:"Proving worker threads draining the job queue.")
  in
  let queue =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~docv:"N"
          ~env:(Cmd.Env.info "ZKML_SERVE_QUEUE")
          ~doc:
            "Admission-control capacity: queued plus in-flight jobs. A \
             request arriving at a full queue is answered Overloaded \
             immediately, never parked.")
  in
  let warm =
    Arg.(
      value & opt string ""
      & info [ "warm" ] ~docv:"MODELS"
          ~env:(Cmd.Env.info "ZKML_SERVE_WARM")
          ~doc:
            "Comma-separated zoo models (or 'all') whose artifacts are \
             compiled before the listener opens, so first requests hit a \
             warm cache.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent proving daemon: a length-prefixed binary \
          protocol over a unix socket (--socket) or loopback TCP (--port); \
          prove and verify requests from concurrent tenants are queued, \
          proved by worker threads against the shared artifact cache, and \
          answered with the `verify` 0/1/2 verdict contract. Malformed \
          frames are answered with verdict 2 — the daemon never dies on \
          bad input. A Shutdown frame stops it cleanly.")
    Term.(
      const (fun () s p w q wa -> cmd_serve s p w q wa)
      $ jobs_term $ socket_arg $ port_arg $ workers $ queue $ warm)

let loadgen_cmd =
  let spawn =
    Arg.(
      value & flag
      & info [ "spawn" ]
          ~doc:
            "Fork the daemon on the given address first, drive it, shut it \
             down over the wire and check its exit status — a \
             self-contained smoke/bench run.")
  in
  let seed =
    Arg.(
      value & opt int 9
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Schedule seed; a (seed, requests, models) triple replays \
             exactly.")
  in
  let requests =
    Arg.(
      value & opt int 30
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Total requests: one warm-up prove per model, then a seeded \
             mixed schedule of proves, verifications (genuine and \
             tampered), pings and malformed frames.")
  in
  let concurrency =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let models =
    Arg.(
      value & opt string "mnist,dlrm"
      & info [ "models" ] ~docv:"MODELS"
          ~doc:"Comma-separated zoo models (or 'all') to draw traffic from.")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Write the serve benchmark (per-kind p50/p90/p99 latency, \
             proofs/sec) as BENCH_PR9.json under ZKML_BENCH_DIR (default \
             the current directory).")
  in
  let bench_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:"Write the serve benchmark JSON to $(docv) (overrides --bench).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker threads for the spawned daemon (with --spawn).")
  in
  let queue =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~docv:"N"
          ~doc:"Queue capacity for the spawned daemon (with --spawn).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a deterministic seeded mix of prove/verify/ping/malformed \
          traffic against a running daemon (or --spawn one), assert every \
          answer — proofs for proves, verdict 0/1/2 for \
          genuine/tampered/malformed — and report per-kind latency \
          percentiles and proofs/sec. Exits 1 if any request was \
          misanswered.")
    Term.(
      const (fun () s p sp se r c m b bo w q ->
          cmd_loadgen s p sp se r c m b bo w q)
      $ jobs_term $ socket_arg $ port_arg $ spawn $ seed $ requests
      $ concurrency $ models $ bench $ bench_out $ workers $ queue)

let main =
  Cmd.group
    (Cmd.info "zkml" ~version:"1.0.0"
       ~doc:"Optimizing compiler from ML models to ZK-SNARK circuits."
       ~envs:
         [
           Cmd.Env.info "ZKML_JOBS"
             ~doc:
               "Worker domains for the parallel prover (same as --jobs; \
                default 1). Proof bytes are identical at every job count.";
           Cmd.Env.info "ZKML_TRACE"
             ~doc:
               "If set to a path, record a chrome-trace of the whole \
                command there at exit.";
           Cmd.Env.info "ZKML_EVAL"
             ~doc:
               "Quotient evaluator selection: 'interp' forces the \
                reference AST interpreter; anything else (default) uses \
                the compiled register program. Proof bytes are identical \
                either way.";
           Cmd.Env.info "ZKML_METRICS"
             ~doc:
               "If set to a path, write the always-on metrics registry \
                there at exit (Prometheus text; JSON when the path ends \
                in .json) — textfile-collector style exposition.";
           Cmd.Env.info "ZKML_LOG"
             ~doc:
               "Structured JSON-lines event log destination: a file path \
                (append), 'stderr', or unset to disable.";
           Cmd.Env.info "ZKML_LOG_LEVEL"
             ~doc:
               "Event-log threshold: debug, info (default), warn or \
                error.";
           Cmd.Env.info "ZKML_SERVE_WORKERS"
             ~doc:
               "Proving worker threads for `zkml serve` (same as \
                --workers; default 2).";
           Cmd.Env.info "ZKML_SERVE_QUEUE"
             ~doc:
               "Admission-control capacity for `zkml serve` (same as \
                --queue; default 16): queued plus in-flight jobs before \
                new requests are answered Overloaded.";
           Cmd.Env.info "ZKML_SERVE_WARM"
             ~doc:
               "Models `zkml serve` pre-compiles before listening (same \
                as --warm): comma-separated zoo names or 'all'.";
           Cmd.Env.info "ZKML_SEGMENTS"
             ~doc:
               "If set to N >= 1, `zkml serve` answers Prove requests \
                with split-and-aggregate proving at N segments (the \
                wire Prove_seg request overrides per call).";
         ])
    [ models_cmd; stats_cmd; export_cmd; calibrate_cmd; optimize_cmd;
      prove_cmd; verify_cmd; batch_prove_cmd; batch_verify_cmd; profile_cmd;
      check_constraints_cmd; fuzz_cmd; segments_smoke_cmd; metrics_cmd;
      serve_cmd; loadgen_cmd ]

let write_metrics_file path =
  let snap = Metrics.snapshot () in
  let data =
    if Filename.check_suffix path ".json" then Metrics.json_string snap ^ "\n"
    else Metrics.prometheus_string snap
  in
  Obs.write_file path data

let () =
  (* ZKML_TRACE=<path>: trace any subcommand end to end and dump the
     chrome-trace at exit. *)
  (match Sys.getenv_opt "ZKML_TRACE" with
  | Some path when path <> "" ->
      Obs.enable ();
      at_exit (fun () ->
          match Obs.snapshot () with
          | Some report -> Obs.write_file path (Obs.chrome_trace report)
          | None -> ())
  | _ -> ());
  (* metrics exposition at exit: --metrics-out FILE and/or
     ZKML_METRICS=<path> (both may be set; each gets a copy) *)
  at_exit (fun () ->
      (match !metrics_out with
      | Some path when path <> "" -> write_metrics_file path
      | _ -> ());
      match Sys.getenv_opt "ZKML_METRICS" with
      | Some path when path <> "" && !metrics_out <> Some path ->
          write_metrics_file path
      | _ -> ());
  exit (Cmd.eval' main)
