(** Fixed-point arithmetic with a power-of-two scale factor. All tensor
    values inside circuits are integers x representing the real number
    x / 2^scale_bits (§4.1 of the paper: "we represent all values of the
    tensors as fixed-point numbers, where ZKML chooses the scale
    factor").

    The definitions here are the single source of truth for rounding
    semantics: the fixed-point executor, the gadget witness assignment
    and the lookup-table contents all call into this module, which is
    what makes the circuit output bit-identical to the executor
    output. *)

type config = {
  scale_bits : int;  (** SF = 2^scale_bits *)
  table_bits : int;
      (** lookup-table inputs span [-2^(table_bits-1), 2^(table_bits-1));
          also bounds the fixed-point precision of non-linearities *)
}

let default = { scale_bits = 6; table_bits = 11 }

let sf cfg = 1 lsl cfg.scale_bits

(** Rounded division exactly as the DivRound gadget constrains it:
    q = floor((2 num + den) / (2 den)), i.e. round-half-up, valid for
    negative numerators too (§5.1 "variable division"). Keeping the
    executor and the circuit on one formula makes their outputs
    bit-identical. *)
let round_div num den =
  assert (den > 0);
  let n2 = (2 * num) + den and d2 = 2 * den in
  if n2 >= 0 then n2 / d2 else -((-n2 + d2 - 1) / d2)

(** Lookup tables hold [2^table_bits - 16] entries rather than a full
    power of two: the circuit needs blinding rows below the table, and
    shaving the extremes lets a table of precision [table_bits] fit in a
    grid of only [2^table_bits] rows (one whole halving of the proving
    domain for table-dominated circuits). *)
let table_size cfg = (1 lsl cfg.table_bits) - 16

let table_min cfg = -(table_size cfg / 2)
let table_max cfg = (table_size cfg / 2) - 1

(* [int_of_float] on nan/inf is unspecified: a silent garbage integer
   here would make the executor and the lookup-table contents diverge
   without any constraint failing. Saturate infinities to the clamp
   bounds; nan has no meaningful fixed-point image, so it raises the
   typed error below. *)
exception Nan_input of string

let () =
  Printexc.register_printer (function
    | Nan_input what -> Some (Printf.sprintf "Zkml_fixed.Fixed.Nan_input(%s)" what)
    | _ -> None)

let quantize cfg x =
  if Float.is_nan x then raise (Nan_input "Fixed.quantize")
  else if x = Float.infinity then table_max cfg
  else if x = Float.neg_infinity then table_min cfg
  else int_of_float (Float.round (x *. float_of_int (sf cfg)))

let dequantize cfg q = float_of_int q /. float_of_int (sf cfg)

(** Rescale a double-scale product (SF^2) back to single scale. *)
let rescale cfg x = round_div x (sf cfg)

(** Saturate into the representable lookup range. *)
let clamp cfg x = max (table_min cfg) (min (table_max cfg) x)

(** The fixed-point image of a real function, as stored in lookup
    tables: input q (scale SF) -> round(f(q/SF) * SF). *)
let apply_real cfg f q =
  let y = f (dequantize cfg q) in
  if Float.is_nan y then raise (Nan_input "Fixed.apply_real")
  else if y = Float.infinity then table_max cfg
  else if y = Float.neg_infinity then table_min cfg
  else begin
    let scaled = y *. float_of_int (sf cfg) in
    (* scaled can still overflow for a huge finite [y] (e.g. exp);
       bound it so [int_of_float] only ever sees defined inputs *)
    let bound = float_of_int max_int /. 4.0 in
    let scaled = Float.max (-.bound) (Float.min bound scaled) in
    int_of_float (Float.round scaled)
  end

(** {1 The non-linearities used by the supported layers} *)

let relu x = if x > 0.0 then x else 0.0
let relu6 x = Float.min 6.0 (relu x)
let sigmoid x = 1.0 /. (1.0 +. exp (-.x))
let tanh' = Float.tanh
let elu ?(alpha = 1.0) x = if x >= 0.0 then x else alpha *. (exp x -. 1.0)

let gelu x =
  (* tanh approximation, as used by GPT-2 *)
  0.5 *. x
  *. (1.0 +. Float.tanh (0.7978845608028654 *. (x +. (0.044715 *. x *. x *. x))))

let softplus x = log (1.0 +. exp x)
let silu x = x *. sigmoid x
let exp' = exp
let rsqrt x = if x <= 0.0 then 0.0 else 1.0 /. sqrt x
let sqrt' x = if x <= 0.0 then 0.0 else sqrt x
let reciprocal x = if x = 0.0 then 0.0 else 1.0 /. x
