(** Fixed-point arithmetic with a power-of-two scale factor.

    All tensor values inside circuits are integers [x] representing the
    real number [x / 2^scale_bits] (§4.1 of the paper). This module is
    the single source of truth for rounding semantics: the fixed-point
    executor, the gadget witness assignment and the lookup-table
    contents all call into it, which is what makes the circuit output
    bit-identical to the executor output. *)

type config = {
  scale_bits : int;  (** SF = 2^scale_bits *)
  table_bits : int;
      (** lookup-table inputs span roughly
          [\[-2^(table_bits-1), 2^(table_bits-1))]; bounds the
          fixed-point precision of non-linearities (§5.1) *)
}

val default : config

val sf : config -> int
(** The scale factor [2^scale_bits]. *)

val round_div : int -> int -> int
(** [round_div num den] is [floor ((2 num + den) / (2 den))] — exactly
    the quotient the DivRound gadget constrains, valid for negative
    numerators. [den] must be positive. *)

exception Nan_input of string
(** Raised by {!quantize} and {!apply_real} when the real value is nan:
    nan has no fixed-point image, and letting it hit [int_of_float]
    (whose result is unspecified) would silently desynchronise the
    executor from the circuit's lookup tables. The payload names the
    raising entry point. *)

val quantize : config -> float -> int
(** Round a real to the nearest fixed-point integer. Infinities
    saturate to {!table_min}/{!table_max}; nan raises {!Nan_input}. *)

val dequantize : config -> int -> float

val rescale : config -> int -> int
(** Rescale a double-scale (SF^2) product back to single scale. *)

val table_size : config -> int
(** Number of lookup-table entries ([2^table_bits - 16]; the margin
    leaves room for the blinding rows so the table fits in a grid of
    [2^table_bits] rows). *)

val table_min : config -> int
val table_max : config -> int

val clamp : config -> int -> int
(** Saturate into the representable lookup range. *)

val apply_real : config -> (float -> float) -> int -> int
(** [apply_real cfg f q] is the fixed-point image of [f] as stored in
    lookup tables: [round (f (q / SF) * SF)]. An infinite [f] output
    saturates; a nan output raises {!Nan_input}. *)

(** {1 Non-linearities used by the supported layers} *)

val relu : float -> float
val relu6 : float -> float
val sigmoid : float -> float
val tanh' : float -> float
val elu : ?alpha:float -> float -> float
val gelu : float -> float
val softplus : float -> float
val silu : float -> float
val exp' : float -> float
val rsqrt : float -> float
val sqrt' : float -> float
val reciprocal : float -> float
