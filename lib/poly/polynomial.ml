(** Dense univariate polynomials and radix-2 NTT evaluation domains over a
    prime field. This is the computational core of the Plonkish prover:
    column polynomials live in coefficient form, constraint evaluation
    happens on a low-degree extension (a coset of a larger subgroup), and
    the quotient polynomial is recovered by inverse coset FFT. *)

module Make (F : Zkml_ff.Field_intf.S) = struct
  module Extra = Zkml_ff.Field_extra.Make (F)

  (** {1 Evaluation domains} *)

  module Domain = struct
    type t = {
      k : int;  (** log2 of the size *)
      n : int;  (** 2^k *)
      omega : F.t;  (** primitive n-th root of unity *)
      omega_inv : F.t;
      n_inv : F.t;
    }

    let create k =
      if k < 0 || k > F.two_adicity then
        invalid_arg "Domain.create: k exceeds field two-adicity";
      let n = 1 lsl k in
      let omega = F.root_of_unity k in
      { k; n; omega; omega_inv = F.inv omega; n_inv = F.inv (F.of_int n) }

    let size t = t.n

    (** All n-th roots in order: 1, w, w^2, ... *)
    let elements t =
      let r = Array.make t.n F.one in
      for i = 1 to t.n - 1 do
        r.(i) <- F.mul r.(i - 1) t.omega
      done;
      r

    (** x^n - 1 *)
    let eval_vanishing t x = F.sub (F.pow_int x t.n) F.one

    (** Lagrange basis polynomial l_i evaluated at an arbitrary point x
        (assumed outside the domain):
        l_i(x) = (w^i / n) * (x^n - 1) / (x - w^i). *)
    let eval_lagrange t i x =
      let wi = F.pow_int t.omega i in
      let num = F.mul (F.mul wi t.n_inv) (eval_vanishing t x) in
      F.div num (F.sub x wi)

    (** Evaluations of several Lagrange basis polys at one point, sharing
        a single batch inversion. *)
    let eval_lagrange_many t indices x =
      let wis = List.map (fun i -> F.pow_int t.omega i) indices in
      let denoms = Array.of_list (List.map (fun wi -> F.sub x wi) wis) in
      let invs = Extra.batch_inv denoms in
      let z = eval_vanishing t x in
      List.mapi
        (fun j wi -> F.mul (F.mul (F.mul wi t.n_inv) z) invs.(j))
        wis
  end

  (** {1 In-place NTT} *)

  let bit_reverse_permute a =
    let n = Array.length a in
    let j = ref 0 in
    for i = 1 to n - 1 do
      let bit = ref (n lsr 1) in
      while !j land !bit <> 0 do
        j := !j lxor !bit;
        bit := !bit lsr 1
      done;
      j := !j lor !bit;
      if i < !j then begin
        let t = a.(i) in
        a.(i) <- a.(!j);
        a.(!j) <- t
      end
    done

  let ntt_core a root =
    let n = Array.length a in
    assert (n land (n - 1) = 0);
    bit_reverse_permute a;
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let wlen = F.pow_int root (n / !len) in
      let i = ref 0 in
      while !i < n do
        let w = ref F.one in
        for j = 0 to half - 1 do
          let u = a.(!i + j) and v = F.mul a.(!i + j + half) !w in
          a.(!i + j) <- F.add u v;
          a.(!i + j + half) <- F.sub u v;
          w := F.mul !w wlen
        done;
        i := !i + !len
      done;
      len := !len * 2
    done

  (* Every forward/inverse/coset transform funnels through this leaf, so
     one instrumentation point covers the whole "fft" op class of the
     cost model. The disabled branch is a single ref read. *)
  let ntt_with_root a root =
    if Zkml_obs.Obs.enabled () then
      Zkml_obs.Obs.Span.with_ ~name:"ntt" (fun () ->
          Zkml_obs.Obs.count "ntt.size" (Array.length a);
          ntt_core a root)
    else ntt_core a root

  (** Forward NTT: coefficients -> evaluations over the domain, in place.
      [Array.length a] must equal the domain size. *)
  let ntt (d : Domain.t) a =
    assert (Array.length a = d.n);
    ntt_with_root a d.omega

  (** Inverse NTT: evaluations -> coefficients, in place. *)
  let intt (d : Domain.t) a =
    assert (Array.length a = d.n);
    ntt_with_root a d.omega_inv;
    for i = 0 to d.n - 1 do
      a.(i) <- F.mul a.(i) d.n_inv
    done

  (** Evaluate coefficient array [coeffs] (length <= d.n) on the coset
      [shift * H]; returns a fresh array of evaluations. *)
  let coset_ntt (d : Domain.t) ~shift coeffs =
    assert (Array.length coeffs <= d.n);
    let a = Array.make d.n F.zero in
    let s = ref F.one in
    for i = 0 to Array.length coeffs - 1 do
      a.(i) <- F.mul coeffs.(i) !s;
      s := F.mul !s shift
    done;
    ntt d a;
    a

  (** Inverse of {!coset_ntt}: evaluations on [shift * H] -> coefficients. *)
  let coset_intt (d : Domain.t) ~shift evals =
    assert (Array.length evals = d.n);
    let a = Array.copy evals in
    intt d a;
    let shift_inv = F.inv shift in
    let s = ref F.one in
    for i = 0 to d.n - 1 do
      a.(i) <- F.mul a.(i) !s;
      s := F.mul !s shift_inv
    done;
    a

  (** {1 Coefficient-form operations} *)

  type t = F.t array
  (** Coefficients, lowest degree first. Not necessarily normalized. *)

  let degree p =
    let rec go i = if i < 0 then -1 else if F.is_zero p.(i) then go (i - 1) else i in
    go (Array.length p - 1)

  let zero : t = [||]

  let add p q =
    let n = max (Array.length p) (Array.length q) in
    Array.init n (fun i ->
        let a = if i < Array.length p then p.(i) else F.zero in
        let b = if i < Array.length q then q.(i) else F.zero in
        F.add a b)

  let sub p q =
    let n = max (Array.length p) (Array.length q) in
    Array.init n (fun i ->
        let a = if i < Array.length p then p.(i) else F.zero in
        let b = if i < Array.length q then q.(i) else F.zero in
        F.sub a b)

  let scale c p = Array.map (F.mul c) p

  let mul p q =
    let dp = degree p and dq = degree q in
    if dp < 0 || dq < 0 then zero
    else begin
      let n = dp + dq + 1 in
      if n <= 64 then begin
        (* schoolbook for small products *)
        let r = Array.make n F.zero in
        for i = 0 to dp do
          if not (F.is_zero p.(i)) then
            for j = 0 to dq do
              r.(i + j) <- F.add r.(i + j) (F.mul p.(i) q.(j))
            done
        done;
        r
      end
      else begin
        let k =
          let rec go k = if 1 lsl k >= n then k else go (k + 1) in
          go 1
        in
        let d = Domain.create k in
        let pa = Array.make d.n F.zero and qa = Array.make d.n F.zero in
        Array.blit p 0 pa 0 (dp + 1);
        Array.blit q 0 qa 0 (dq + 1);
        ntt d pa;
        ntt d qa;
        for i = 0 to d.n - 1 do
          pa.(i) <- F.mul pa.(i) qa.(i)
        done;
        intt d pa;
        Array.sub pa 0 n
      end
    end

  let eval p x =
    let r = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      r := F.add (F.mul !r x) p.(i)
    done;
    !r

  (** Synthetic division by (X - z): returns the quotient; the remainder
      (= p(z)) is discarded, so this is exact when p(z) = 0 and otherwise
      implements the KZG witness polynomial (p(X) - p(z)) / (X - z). *)
  let div_by_linear p z =
    let n = Array.length p in
    if n = 0 then zero
    else begin
      let q = Array.make (max 1 (n - 1)) F.zero in
      let acc = ref F.zero in
      for i = n - 1 downto 1 do
        acc := F.add (F.mul !acc z) p.(i);
        q.(i - 1) <- !acc
      done;
      q
    end

  (** Interpolate through the domain from evaluations (fresh array). *)
  let interpolate (d : Domain.t) evals =
    let a = Array.copy evals in
    intt d a;
    a

  let random rng n = Array.init n (fun _ -> F.random rng)
end
