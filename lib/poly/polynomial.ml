(** Dense univariate polynomials and radix-2 NTT evaluation domains over a
    prime field. This is the computational core of the Plonkish prover:
    column polynomials live in coefficient form, constraint evaluation
    happens on a low-degree extension (a coset of a larger subgroup), and
    the quotient polynomial is recovered by inverse coset FFT. *)

module Make (F : Zkml_ff.Field_intf.S) = struct
  module Extra = Zkml_ff.Field_extra.Make (F)
  module Pool = Zkml_util.Pool

  (** [powers base n] = [| base^0; base^1; ...; base^(n-1) |]. Chunks are
      independent: each seeds with one [pow_int] then runs the usual
      multiplicative recurrence, so the values (canonical residues) are
      identical to the sequential chain at any job count. *)
  let powers base n =
    if n <= 0 then [||]
    else begin
      let r = Array.make n F.one in
      Pool.parallel_for_ranges ~seq_below:(1 lsl 14) n (fun lo hi ->
          (* seed this chunk, then recur strictly within it — never read
             r.(lo - 1), which belongs to a concurrent chunk *)
          if lo > 0 then r.(lo) <- F.pow_int base lo;
          for i = lo + 1 to hi - 1 do
            r.(i) <- F.mul r.(i - 1) base
          done);
      r
    end

  (** {1 Evaluation domains} *)

  module Domain = struct
    type t = {
      k : int;  (** log2 of the size *)
      n : int;  (** 2^k *)
      omega : F.t;  (** primitive n-th root of unity *)
      omega_inv : F.t;
      n_inv : F.t;
      elements : F.t array;
          (** omega^i for i < n; the forward NTT twiddles are the n/2
              prefix. Cached at creation — treat as read-only. *)
      elements_inv : F.t array;  (** omega_inv^i; inverse twiddles *)
    }

    let create k =
      if k < 0 || k > F.two_adicity then
        invalid_arg "Domain.create: k exceeds field two-adicity";
      let n = 1 lsl k in
      let omega = F.root_of_unity k in
      let omega_inv = F.inv omega in
      {
        k;
        n;
        omega;
        omega_inv;
        n_inv = F.inv (F.of_int n);
        elements = powers omega n;
        elements_inv = powers omega_inv n;
      }

    let size t = t.n

    (** All n-th roots in order: 1, w, w^2, ... Cached; do not mutate. *)
    let elements t = t.elements

    (** [coset_points t ~shift] is the table [shift * w^i] — the coset
        the quotient polynomial is evaluated on. Built from the cached
        root powers, chunked over the domain pool. *)
    let coset_points t ~shift =
      let r = Array.make t.n F.zero in
      Pool.parallel_for_ranges ~seq_below:(1 lsl 14) t.n (fun lo hi ->
          for i = lo to hi - 1 do
            r.(i) <- F.mul shift t.elements.(i)
          done);
      r

    (** x^n - 1 *)
    let eval_vanishing t x = F.sub (F.pow_int x t.n) F.one

    (** Lagrange basis polynomial l_i evaluated at an arbitrary point x
        (assumed outside the domain):
        l_i(x) = (w^i / n) * (x^n - 1) / (x - w^i). *)
    let eval_lagrange t i x =
      let wi = t.elements.(((i mod t.n) + t.n) mod t.n) in
      let num = F.mul (F.mul wi t.n_inv) (eval_vanishing t x) in
      F.div num (F.sub x wi)

    (** Evaluations of several Lagrange basis polys at one point, sharing
        a single batch inversion. *)
    let eval_lagrange_many t indices x =
      let wis =
        List.map (fun i -> t.elements.(((i mod t.n) + t.n) mod t.n)) indices
      in
      let denoms = Array.of_list (List.map (fun wi -> F.sub x wi) wis) in
      let invs = Extra.batch_inv denoms in
      let z = eval_vanishing t x in
      List.mapi
        (fun j wi -> F.mul (F.mul (F.mul wi t.n_inv) z) invs.(j))
        wis
  end

  (** {1 In-place NTT} *)

  let bit_reverse_permute a =
    let n = Array.length a in
    let j = ref 0 in
    for i = 1 to n - 1 do
      let bit = ref (n lsr 1) in
      while !j land !bit <> 0 do
        j := !j lxor !bit;
        bit := !bit lsr 1
      done;
      j := !j lor !bit;
      if i < !j then begin
        let t = a.(i) in
        a.(i) <- a.(!j);
        a.(!j) <- t
      end
    done

  (* [tw] is a twiddle table with tw.(i) = root^i, length >= n/2 (the
     domain's cached elements array). The classic per-block recurrence
     [w := w * wlen] is replaced by the table lookup
     [w = tw.(j * (n/len))], which removes the sequential dependency so
     each stage's butterflies can be chunked across domains. Butterfly
     pairs of one stage touch disjoint indices, so the writes race-free;
     values are canonical residues either way, hence bit-identical to
     the sequential transform at any job count.

     This stage-major loop is kept verbatim as the differential
     reference for the cache-blocked [ntt_core] below (test_poly checks
     them equal on every size up to the largest model domain). *)
  let ntt_reference a tw =
    let n = Array.length a in
    assert (n land (n - 1) = 0);
    bit_reverse_permute a;
    let len = ref 2 in
    while !len <= n do
      let len_ = !len in
      let half = len_ / 2 in
      let stride = n / len_ in
      (* butterfly b covers (block, j) = (b / half, b mod half) *)
      Pool.parallel_for_ranges ~seq_below:(1 lsl 13) ~chunk:(1 lsl 11) (n / 2)
        (fun lo hi ->
          let blk = ref (lo / half) and j = ref (lo mod half) in
          let idx = ref ((!blk * len_) + !j) in
          for _ = lo to hi - 1 do
            let w = tw.(!j * stride) in
            let u = a.(!idx) and v = F.mul a.(!idx + half) w in
            a.(!idx) <- F.add u v;
            a.(!idx + half) <- F.sub u v;
            incr j;
            incr idx;
            if !j = half then begin
              j := 0;
              incr blk;
              idx := !blk * len_
            end
          done);
      len := !len * 2
    done

  (* Elements per phase-1 block of the cache-blocked transform. A block
     of 2^11 four-limb elements is ~100 KB including boxing — resident
     in L2 across all ~11 early stages, where the stage-major loop would
     stream the whole array from memory once per stage. *)
  let ntt_block_log = 11

  (* Cache-blocked NTT. Two phases:

     - phase 1 runs every stage with butterfly span [len <= block size]
       one block at a time: a block's data is loaded once and all early
       stages run over it while it is cache-resident (blocks are aligned
       to [len], so a butterfly never crosses a block boundary, and the
       twiddle index [j * (n / len)] depends only on the position within
       the sub-block, not on the block offset);
     - phase 2 runs the remaining global stages stage-major, exactly
       like [ntt_reference].

     Both phases execute the same butterflies on the same indices with
     the same twiddles as the reference — only the traversal order over
     independent butterflies changes — so results are bit-identical.

     When the field exposes a mutable representation the butterflies run
     allocation-free on the in-place API. The entry pass below replaces
     every cell with [F.unshare] first: callers routinely build inputs
     with [Array.make n F.zero] (one shared buffer) or blit in
     coefficient arrays they still own, and the originals must not be
     written through. *)
  let ntt_core a tw =
    let n = Array.length a in
    assert (n land (n - 1) = 0);
    bit_reverse_permute a;
    if F.mutable_repr then
      for i = 0 to n - 1 do
        a.(i) <- F.unshare a.(i)
      done;
    if n >= 2 then begin
      let bsz = min n (1 lsl ntt_block_log) in
      let nblocks = n / bsz in
      if Zkml_obs.Obs.enabled () then Zkml_obs.Obs.count "ntt.blocks" nblocks;
      let seq_below = if n >= 1 lsl 13 then 2 else max_int in
      Pool.parallel_for ~chunk:1 ~seq_below nblocks (fun b ->
          let base = b * bsz in
          let tmp = F.scratch () in
          let len = ref 2 in
          while !len <= bsz do
            let len_ = !len in
            let half = len_ / 2 in
            let stride = n / len_ in
            let sb = ref base in
            while !sb < base + bsz do
              let s = !sb in
              if F.mutable_repr then
                for j = 0 to half - 1 do
                  let w = tw.(j * stride) in
                  let u = a.(s + j) and v = a.(s + j + half) in
                  F.mul_into tmp v w;
                  F.sub_into v u tmp;
                  F.add_into u u tmp
                done
              else
                for j = 0 to half - 1 do
                  let w = tw.(j * stride) in
                  let u = a.(s + j) and v = F.mul a.(s + j + half) w in
                  a.(s + j) <- F.add u v;
                  a.(s + j + half) <- F.sub u v
                done;
              sb := s + len_
            done;
            len := !len * 2
          done);
      let len = ref (2 * bsz) in
      while !len <= n do
        let len_ = !len in
        let half = len_ / 2 in
        let stride = n / len_ in
        Pool.parallel_for_ranges ~seq_below:(1 lsl 13) ~chunk:(1 lsl 11)
          (n / 2) (fun lo hi ->
            let tmp = F.scratch () in
            let blk = ref (lo / half) and j = ref (lo mod half) in
            let idx = ref ((!blk * len_) + !j) in
            if F.mutable_repr then
              for _ = lo to hi - 1 do
                let w = tw.(!j * stride) in
                let u = a.(!idx) and v = a.(!idx + half) in
                F.mul_into tmp v w;
                F.sub_into v u tmp;
                F.add_into u u tmp;
                incr j;
                incr idx;
                if !j = half then begin
                  j := 0;
                  incr blk;
                  idx := !blk * len_
                end
              done
            else
              for _ = lo to hi - 1 do
                let w = tw.(!j * stride) in
                let u = a.(!idx) and v = F.mul a.(!idx + half) w in
                a.(!idx) <- F.add u v;
                a.(!idx + half) <- F.sub u v;
                incr j;
                incr idx;
                if !j = half then begin
                  j := 0;
                  incr blk;
                  idx := !blk * len_
                end
              done);
        len := !len * 2
      done
    end

  (* Every forward/inverse/coset transform funnels through this leaf, so
     one instrumentation point covers the whole "fft" op class of the
     cost model. The disabled branch is a single ref read; the phase
     histogram is always on (pre-resolved handle, one mutex op per
     transform). *)
  let ntt_hist =
    Zkml_obs.Metrics.histogram
      ~labels:[ ("phase", "ntt") ]
      ~help:"Per-phase wall time of the proving/verifying pipeline"
      "zkml_phase_seconds"

  let ntt_with_table a tw =
    Zkml_obs.Metrics.time ntt_hist @@ fun () ->
    if Zkml_obs.Obs.enabled () then
      Zkml_obs.Obs.Span.with_ ~name:"ntt" (fun () ->
          Zkml_obs.Obs.count "ntt.size" (Array.length a);
          ntt_core a tw)
    else ntt_core a tw

  (** Forward NTT: coefficients -> evaluations over the domain, in place.
      [Array.length a] must equal the domain size. *)
  let ntt (d : Domain.t) a =
    assert (Array.length a = d.n);
    ntt_with_table a d.elements

  (** Inverse NTT: evaluations -> coefficients, in place. *)
  let intt (d : Domain.t) a =
    assert (Array.length a = d.n);
    ntt_with_table a d.elements_inv;
    (* after ntt_core every cell is a fresh unshared buffer, so the
       n_inv scaling may write in place *)
    Pool.parallel_for_ranges ~seq_below:(1 lsl 14) d.n (fun lo hi ->
        if F.mutable_repr then
          for i = lo to hi - 1 do
            F.mul_into a.(i) a.(i) d.n_inv
          done
        else
          for i = lo to hi - 1 do
            a.(i) <- F.mul a.(i) d.n_inv
          done)

  (** Evaluate coefficient array [coeffs] (length <= d.n) on the coset
      [shift * H]; returns a fresh array of evaluations. Passing a
      precomputed [?shift_pows] table (shift^i, length >= the coefficient
      count) lets batch callers share it across columns. *)
  let coset_ntt (d : Domain.t) ?shift_pows ~shift coeffs =
    let m = Array.length coeffs in
    assert (m <= d.n);
    let sp = match shift_pows with Some t -> t | None -> powers shift m in
    let a = Array.make d.n F.zero in
    Pool.parallel_for_ranges ~seq_below:(1 lsl 14) m (fun lo hi ->
        for i = lo to hi - 1 do
          a.(i) <- F.mul coeffs.(i) sp.(i)
        done);
    ntt d a;
    a

  (** Inverse of {!coset_ntt}: evaluations on [shift * H] -> coefficients. *)
  let coset_intt (d : Domain.t) ?shift_inv_pows ~shift evals =
    assert (Array.length evals = d.n);
    let a = Array.copy evals in
    intt d a;
    let sp =
      match shift_inv_pows with
      | Some t -> t
      | None -> powers (F.inv shift) d.n
    in
    Pool.parallel_for_ranges ~seq_below:(1 lsl 14) d.n (fun lo hi ->
        for i = lo to hi - 1 do
          a.(i) <- F.mul a.(i) sp.(i)
        done);
    a

  (** {1 Coefficient-form operations} *)

  type t = F.t array
  (** Coefficients, lowest degree first. Not necessarily normalized. *)

  let degree p =
    let rec go i = if i < 0 then -1 else if F.is_zero p.(i) then go (i - 1) else i in
    go (Array.length p - 1)

  let zero : t = [||]

  let add p q =
    let n = max (Array.length p) (Array.length q) in
    Array.init n (fun i ->
        let a = if i < Array.length p then p.(i) else F.zero in
        let b = if i < Array.length q then q.(i) else F.zero in
        F.add a b)

  let sub p q =
    let n = max (Array.length p) (Array.length q) in
    Array.init n (fun i ->
        let a = if i < Array.length p then p.(i) else F.zero in
        let b = if i < Array.length q then q.(i) else F.zero in
        F.sub a b)

  let scale c p = Array.map (F.mul c) p

  let mul p q =
    let dp = degree p and dq = degree q in
    if dp < 0 || dq < 0 then zero
    else begin
      let n = dp + dq + 1 in
      if n <= 64 then begin
        (* schoolbook for small products *)
        let r = Array.make n F.zero in
        for i = 0 to dp do
          if not (F.is_zero p.(i)) then
            for j = 0 to dq do
              r.(i + j) <- F.add r.(i + j) (F.mul p.(i) q.(j))
            done
        done;
        r
      end
      else begin
        let k =
          let rec go k = if 1 lsl k >= n then k else go (k + 1) in
          go 1
        in
        let d = Domain.create k in
        let pa = Array.make d.n F.zero and qa = Array.make d.n F.zero in
        Array.blit p 0 pa 0 (dp + 1);
        Array.blit q 0 qa 0 (dq + 1);
        ntt d pa;
        ntt d qa;
        for i = 0 to d.n - 1 do
          pa.(i) <- F.mul pa.(i) qa.(i)
        done;
        intt d pa;
        Array.sub pa 0 n
      end
    end

  let eval p x =
    let r = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      r := F.add (F.mul !r x) p.(i)
    done;
    !r

  (** Synthetic division by (X - z): returns the quotient; the remainder
      (= p(z)) is discarded, so this is exact when p(z) = 0 and otherwise
      implements the KZG witness polynomial (p(X) - p(z)) / (X - z). *)
  let div_by_linear p z =
    let n = Array.length p in
    if n = 0 then zero
    else begin
      let q = Array.make (max 1 (n - 1)) F.zero in
      let acc = ref F.zero in
      for i = n - 1 downto 1 do
        acc := F.add (F.mul !acc z) p.(i);
        q.(i - 1) <- !acc
      done;
      q
    end

  (** Interpolate through the domain from evaluations (fresh array). *)
  let interpolate (d : Domain.t) evals =
    let a = Array.copy evals in
    intt d a;
    a

  let random rng n = Array.init n (fun _ -> F.random rng)

  (** {1 Batch transforms}

      Whole column sets distributed over the pool, one column per task;
      the per-column transforms detect the enclosing parallel region and
      run their stages sequentially, so nesting is safe. Results are
      identical to mapping the singleton API. Domains below 2^12 stay
      sequential: a 4096-point NTT is microseconds of work, less than a
      pool-region dispatch costs. *)

  let col_seq_below (d : Domain.t) = if d.n >= 1 lsl 12 then 2 else max_int

  let ntt_many (d : Domain.t) arrays =
    Pool.parallel_for ~chunk:1 ~seq_below:(col_seq_below d)
      (Array.length arrays) (fun i -> ntt d arrays.(i))

  let intt_many (d : Domain.t) arrays =
    Pool.parallel_for ~chunk:1 ~seq_below:(col_seq_below d)
      (Array.length arrays) (fun i -> intt d arrays.(i))

  let interpolate_many (d : Domain.t) evals =
    Pool.parallel_map_array ~seq_below:(col_seq_below d) (interpolate d) evals

  (** [coset_ntt_many d ~shift columns] = per-column {!coset_ntt} with
      the shift-power table computed once and shared. *)
  let coset_ntt_many (d : Domain.t) ~shift columns =
    let m =
      Array.fold_left (fun acc c -> max acc (Array.length c)) 0 columns
    in
    let sp = powers shift m in
    Pool.parallel_map_array ~seq_below:(col_seq_below d)
      (fun c -> coset_ntt d ~shift_pows:sp ~shift c)
      columns

  let coset_intt_many (d : Domain.t) ~shift columns =
    let sp = powers (F.inv shift) d.n in
    Pool.parallel_map_array ~seq_below:(col_seq_below d)
      (fun c -> coset_intt d ~shift_inv_pows:sp ~shift c)
      columns
end
