(** Compiled quotient evaluator.

    The prover's dominant cost is evaluating the combined constraint
    polynomial — every gate, both lookup compressions and the
    permutation/lookup grand-product numerators, Horner-combined with
    powers of [y] — at each of the [ext_factor * n] rows of the
    extended coset. Walking the {!Expr.t} ASTs through closure-based
    {!Expr.eval} per row is allocation-heavy and blind to
    subexpressions shared across gadget instances, so this module
    lowers the whole combination once per circuit into a flat
    register-based linear program:

    - every arithmetic node is hash-consed, giving common-subexpression
      elimination across all gates, lookups and permutation chunks;
    - constants fold at compile time ([Neg]/[Scaled] chains collapse,
      multiplications by 0/1 and additions of 0 disappear);
    - a lowering pass fuses a single-use product into its consuming
      add/sub (three fused forms: [a*b + c], [c - a*b], [a*b - c]) —
      in particular every [acc*y + term] Horner step becomes one op;
    - column reads are resolved to a (bank column, rotation slot) pair;
      execution materializes each rotated column once per range with
      two wrap-around blits, so reads are direct array loads;
    - registers are assigned by linear scan over last uses, keeping the
      working set a handful of slots regardless of circuit size.

    The program is pure marshallable data (no closures), so it rides
    inside the proving keys through the [lib/serve] artifact cache and
    batch jobs compile once. Every rewrite above preserves the exact
    field values (canonical residues; field [add]/[mul] are
    commutative and [square x = mul x x]), so proofs are byte-identical
    to the interpreter path — which stays available as a reference
    oracle via [ZKML_EVAL=interp] and is asserted equivalent in
    [test_evaluator]. *)

module Make (F : Zkml_ff.Field_intf.S) = struct
  (** Operand of an instruction: a virtual register, an interned
      compile-time constant, a runtime scalar (transcript challenges and
      the combination randomness, see {!pack_scalars}) or a column cell
      at one of the program's distinct rotations. *)
  type src =
    | S_reg of int
    | S_const of int
    | S_scalar of int
    | S_cell of int * int  (* bank column, rotation slot *)

  type op =
    | Add of src * src
    | Sub of src * src
    | Mul of src * src
    | Square of src
    | Neg of src
    | Fma of src * src * src  (* a*b + c *)
    | Fms of src * src * src  (* c - a*b *)
    | Msc of src * src * src  (* a*b - c *)

  type prog = {
    p_rots : int array;  (** distinct rotations, slot order *)
    p_consts : F.t array;
    p_ops : op array;
    p_dst : int array;  (** destination register per instruction *)
    p_result : src;
    p_nregs : int;
    p_ncols : int;  (** expected width of the column bank *)
    p_nscalars : int;  (** num_challenges + theta/beta/gamma/y *)
    p_nodes : int;  (** graph nodes before dead-code elimination *)
    p_cse_hits : int;
  }

  (* ------------------------------------------------------------------ *)
  (* Column-bank layout. The prover hands [eval_rows_into] one array of
     extended-coset columns; the compiler and the prover agree on this
     order (it is exactly the concatenation the prover already builds
     for the batched coset NTT, plus the coset points). *)

  type layout = {
    ncols : int;
    c_fixed : int;
    c_advice : int;
    c_instance : int;
    c_sigma : int;
    c_perm_z : int;
    c_look_z : int;
    c_look_a : int;
    c_look_s : int;
    c_l0 : int;
    c_llast : int;
    c_lblind : int;
    c_point : int;
  }

  let layout (circuit : F.t Circuit.t) ~num_sigma ~n_chunks =
    let nl = List.length circuit.Circuit.lookups in
    let c_fixed = 0 in
    let c_advice = c_fixed + circuit.Circuit.num_fixed in
    let c_instance = c_advice + Circuit.num_advice circuit in
    let c_sigma = c_instance + circuit.Circuit.num_instance in
    let c_perm_z = c_sigma + num_sigma in
    let c_look_z = c_perm_z + n_chunks in
    let c_look_a = c_look_z + nl in
    let c_look_s = c_look_a + nl in
    let c_l0 = c_look_s + nl in
    {
      ncols = c_l0 + 4;
      c_fixed;
      c_advice;
      c_instance;
      c_sigma;
      c_perm_z;
      c_look_z;
      c_look_a;
      c_look_s;
      c_l0;
      c_llast = c_l0 + 1;
      c_lblind = c_l0 + 2;
      c_point = c_l0 + 3;
    }

  (** Runtime scalar layout: challenges first, then theta/beta/gamma/y. *)
  let pack_scalars ~(challenges : F.t array) ~theta ~beta ~gamma ~y =
    Array.append challenges [| theta; beta; gamma; y |]

  (* ------------------------------------------------------------------ *)
  (* Expression-graph builder: hash-consing + constant folding. Nodes
     are created in topological order; [b_cse] maps a structural op to
     the node that already computes it. *)

  type builder = {
    mutable b_nodes : op array;
    mutable b_len : int;
    b_cse : (op, src) Hashtbl.t;
    b_const_ix : (string, int) Hashtbl.t;  (* canonical bytes -> index *)
    mutable b_consts : F.t array;
    mutable b_nconsts : int;
    b_rot_ix : (int, int) Hashtbl.t;
    mutable b_rots : int array;
    mutable b_nrots : int;
    mutable b_cse_hits : int;
  }

  let builder () =
    {
      b_nodes = Array.make 64 (Neg (S_const 0));
      b_len = 0;
      b_cse = Hashtbl.create 256;
      b_const_ix = Hashtbl.create 16;
      b_consts = Array.make 8 F.zero;
      b_nconsts = 0;
      b_rot_ix = Hashtbl.create 8;
      b_rots = Array.make 4 0;
      b_nrots = 0;
      b_cse_hits = 0;
    }

  let const b v =
    let key = F.to_bytes v in
    match Hashtbl.find_opt b.b_const_ix key with
    | Some i -> S_const i
    | None ->
        if b.b_nconsts = Array.length b.b_consts then begin
          let bigger = Array.make (2 * b.b_nconsts) F.zero in
          Array.blit b.b_consts 0 bigger 0 b.b_nconsts;
          b.b_consts <- bigger
        end;
        let i = b.b_nconsts in
        b.b_consts.(i) <- v;
        b.b_nconsts <- i + 1;
        Hashtbl.add b.b_const_ix key i;
        S_const i

  let rot_slot b r =
    match Hashtbl.find_opt b.b_rot_ix r with
    | Some s -> s
    | None ->
        if b.b_nrots = Array.length b.b_rots then begin
          let bigger = Array.make (2 * b.b_nrots) 0 in
          Array.blit b.b_rots 0 bigger 0 b.b_nrots;
          b.b_rots <- bigger
        end;
        let s = b.b_nrots in
        b.b_rots.(s) <- r;
        b.b_nrots <- s + 1;
        Hashtbl.add b.b_rot_ix r s;
        s

  let cval b = function S_const i -> Some b.b_consts.(i) | _ -> None
  let def b = function S_reg i -> Some b.b_nodes.(i) | _ -> None

  let fresh b op =
    match Hashtbl.find_opt b.b_cse op with
    | Some s ->
        b.b_cse_hits <- b.b_cse_hits + 1;
        s
    | None ->
        if b.b_len = Array.length b.b_nodes then begin
          let bigger = Array.make (2 * b.b_len) (Neg (S_const 0)) in
          Array.blit b.b_nodes 0 bigger 0 b.b_len;
          b.b_nodes <- bigger
        end;
        let i = b.b_len in
        b.b_nodes.(i) <- op;
        b.b_len <- i + 1;
        let s = S_reg i in
        Hashtbl.add b.b_cse op s;
        s

  (* Canonical operand order for commutative ops, so [x+y] and [y+x]
     hash-cons to one node. [compare] on [src] is structural — any
     total order works, the choice never changes the computed value. *)
  let ordered x y = if compare x y <= 0 then (x, y) else (y, x)

  (* Smart constructors. Every rewrite maps to an identity of the field
     on canonical representatives, so the evaluated result is
     bit-for-bit the interpreter's. *)
  let rec add b x y =
    match (cval b x, cval b y) with
    | Some a, Some c -> const b (F.add a c)
    | Some a, None when F.is_zero a -> y
    | None, Some c when F.is_zero c -> x
    | _ -> (
        match (def b x, def b y) with
        | _, Some (Neg y') -> sub b x y'
        | Some (Neg x'), _ -> sub b y x'
        | _ ->
            let x, y = ordered x y in
            fresh b (Add (x, y)))

  and sub b x y =
    if x = y then const b F.zero
    else
      match (cval b x, cval b y) with
      | Some a, Some c -> const b (F.sub a c)
      | None, Some c when F.is_zero c -> x
      | Some a, None when F.is_zero a -> neg b y
      | _ -> (
          match def b y with
          | Some (Neg y') -> add b x y'
          | _ -> fresh b (Sub (x, y)))

  and neg b x =
    match cval b x with
    | Some v -> const b (F.neg v)
    | None -> (
        match def b x with Some (Neg x') -> x' | _ -> fresh b (Neg x))

  let mul b x y =
    match (cval b x, cval b y) with
    | Some a, Some c -> const b (F.mul a c)
    | Some a, _ when F.is_zero a -> const b F.zero
    | _, Some c when F.is_zero c -> const b F.zero
    | Some a, _ when F.equal a F.one -> y
    | _, Some c when F.equal c F.one -> x
    | _ ->
        if x = y then fresh b (Square x)
        else
          let x, y = ordered x y in
          fresh b (Mul (x, y))

  let square b x =
    match cval b x with
    | Some v -> const b (F.square v)
    | None -> fresh b (Square x)

  (* ------------------------------------------------------------------ *)
  (* Lowering: dead-code elimination from the root, single-use-product
     fusion, then linear-scan register assignment over last uses. *)

  let operands = function
    | Add (a, b) | Sub (a, b) | Mul (a, b) -> [ a; b ]
    | Square a | Neg a -> [ a ]
    | Fma (a, b, c) | Fms (a, b, c) | Msc (a, b, c) -> [ a; b; c ]

  let lower b lay root =
    let n = b.b_len in
    let live = Array.make (max 1 n) false in
    (match root with
    | S_reg r ->
        let stack = ref [ r ] in
        let rec drain () =
          match !stack with
          | [] -> ()
          | i :: rest ->
              stack := rest;
              if not live.(i) then begin
                live.(i) <- true;
                List.iter
                  (function S_reg j -> stack := j :: !stack | _ -> ())
                  (operands b.b_nodes.(i))
              end;
              drain ()
        in
        drain ()
    | _ -> ());
    (* graph-level use counts (the root counts as a use) decide which
       products are single-use and safe to fold into their consumer *)
    let uses = Array.make (max 1 n) 0 in
    let bump = function S_reg j -> uses.(j) <- uses.(j) + 1 | _ -> () in
    for i = 0 to n - 1 do
      if live.(i) then List.iter bump (operands b.b_nodes.(i))
    done;
    bump root;
    let fused = Array.make (max 1 n) false in
    let replaced = Array.make (max 1 n) None in
    let product m =
      if live.(m) && uses.(m) = 1 && not fused.(m) then
        match b.b_nodes.(m) with Mul (x, y) -> Some (x, y) | _ -> None
      else None
    in
    for i = 0 to n - 1 do
      if live.(i) then begin
        match b.b_nodes.(i) with
        | Add (S_reg m, o) when product m <> None ->
            let x, y = Option.get (product m) in
            fused.(m) <- true;
            replaced.(i) <- Some (Fma (x, y, o))
        | Add (o, S_reg m) when product m <> None ->
            let x, y = Option.get (product m) in
            fused.(m) <- true;
            replaced.(i) <- Some (Fma (x, y, o))
        | Sub (S_reg m, o) when product m <> None ->
            let x, y = Option.get (product m) in
            fused.(m) <- true;
            replaced.(i) <- Some (Msc (x, y, o))
        | Sub (o, S_reg m) when product m <> None ->
            let x, y = Option.get (product m) in
            fused.(m) <- true;
            replaced.(i) <- Some (Fms (x, y, o))
        | _ -> ()
      end
    done;
    let order = ref [] in
    for i = n - 1 downto 0 do
      if live.(i) && not fused.(i) then order := i :: !order
    done;
    let order = Array.of_list !order in
    let op_of i =
      match replaced.(i) with Some o -> o | None -> b.b_nodes.(i)
    in
    (* final use counts over the emitted sequence drive register reuse *)
    let remaining = Array.make (max 1 n) 0 in
    let bump2 = function
      | S_reg j -> remaining.(j) <- remaining.(j) + 1
      | _ -> ()
    in
    Array.iter (fun i -> List.iter bump2 (operands (op_of i))) order;
    bump2 root;
    let reg_of = Array.make (max 1 n) (-1) in
    let free = ref [] in
    let nregs = ref 0 in
    let nops = Array.length order in
    let ops = Array.make (max 1 nops) (Neg (S_const 0)) in
    let dst = Array.make (max 1 nops) 0 in
    Array.iteri
      (fun k i ->
        let op = op_of i in
        List.iter
          (function
            | S_reg j ->
                remaining.(j) <- remaining.(j) - 1;
                if remaining.(j) = 0 then free := reg_of.(j) :: !free
            | _ -> ())
          (operands op);
        let d =
          match !free with
          | r :: rest ->
              free := rest;
              r
          | [] ->
              let r = !nregs in
              incr nregs;
              r
        in
        reg_of.(i) <- d;
        ops.(k) <- op;
        dst.(k) <- d)
      order;
    let map_src = function S_reg i -> S_reg reg_of.(i) | s -> s in
    let map_op = function
      | Add (a, b) -> Add (map_src a, map_src b)
      | Sub (a, b) -> Sub (map_src a, map_src b)
      | Mul (a, b) -> Mul (map_src a, map_src b)
      | Square a -> Square (map_src a)
      | Neg a -> Neg (map_src a)
      | Fma (a, b, c) -> Fma (map_src a, map_src b, map_src c)
      | Fms (a, b, c) -> Fms (map_src a, map_src b, map_src c)
      | Msc (a, b, c) -> Msc (map_src a, map_src b, map_src c)
    in
    {
      p_rots = Array.sub b.b_rots 0 b.b_nrots;
      p_consts = Array.sub b.b_consts 0 b.b_nconsts;
      p_ops = Array.map map_op (Array.sub ops 0 nops);
      p_dst = Array.sub dst 0 nops;
      p_result = map_src root;
      p_nregs = !nregs;
      p_ncols = lay.ncols;
      p_nscalars = 0;  (* patched by compile *)
      p_nodes = n;
      p_cse_hits = b.b_cse_hits;
    }

  (* ------------------------------------------------------------------ *)
  (* Compilation: mirror [Protocol.combine_terms] term by term. The
     Horner accumulation over [y] is order-sensitive, so the emission
     sequence below must match the interpreter exactly: gates, then the
     five terms of each lookup, then the permutation boundary / chunk /
     last-row terms. *)

  let compile (circuit : F.t Circuit.t) ~(perm_cols : Circuit.any_col array)
      ~(deltas : F.t array) ~n_chunks ~chunk =
    let b = builder () in
    let u = Circuit.last_row circuit in
    let nc = circuit.Circuit.num_challenges in
    let lay = layout circuit ~num_sigma:(Array.length perm_cols) ~n_chunks in
    let theta = S_scalar nc
    and beta = S_scalar (nc + 1)
    and gamma = S_scalar (nc + 2)
    and y = S_scalar (nc + 3) in
    let cell col r = S_cell (col, rot_slot b r) in
    let fixed c r = cell (lay.c_fixed + c) r in
    let adv c r = cell (lay.c_advice + c) r in
    let inst c r = cell (lay.c_instance + c) r in
    let col_cell = function
      | Circuit.Col_fixed c -> fixed c 0
      | Circuit.Col_advice c -> adv c 0
      | Circuit.Col_instance c -> inst c 0
    in
    let one = const b F.one and zero = const b F.zero in
    let l0 = cell lay.c_l0 0
    and llast = cell lay.c_llast 0
    and lblind = cell lay.c_lblind 0
    and point = cell lay.c_point 0 in
    let active = sub b one (add b llast lblind) in
    let rec expr_src (e : F.t Expr.t) =
      match e with
      | Expr.Const v -> const b v
      | Expr.Fixed q -> fixed q.Expr.col q.Expr.rot
      | Expr.Advice q -> adv q.Expr.col q.Expr.rot
      | Expr.Instance q -> inst q.Expr.col q.Expr.rot
      | Expr.Challenge i -> S_scalar i
      | Expr.Neg e -> neg b (expr_src e)
      | Expr.Add (x, y) -> add b (expr_src x) (expr_src y)
      | Expr.Sub (x, y) -> sub b (expr_src x) (expr_src y)
      | Expr.Mul (x, y) -> mul b (expr_src x) (expr_src y)
      | Expr.Scaled (e, v) -> mul b (expr_src e) (const b v)
    in
    let acc = ref zero in
    let push v = acc := add b (mul b !acc y) v in
    let compress srcs =
      List.fold_left (fun a v -> add b (mul b a theta) v) zero srcs
    in
    (* 1. custom gates *)
    List.iter
      (fun g -> List.iter (fun p -> push (expr_src p)) g.Circuit.polys)
      circuit.Circuit.gates;
    (* 2. lookups *)
    List.iteri
      (fun li (l : F.t Circuit.lookup) ->
        let a = compress (List.map expr_src l.Circuit.inputs) in
        let s = compress (List.map expr_src l.Circuit.tables) in
        let z0 = cell (lay.c_look_z + li) 0
        and z1 = cell (lay.c_look_z + li) 1
        and a'0 = cell (lay.c_look_a + li) 0
        and a'm1 = cell (lay.c_look_a + li) (-1)
        and s'0 = cell (lay.c_look_s + li) 0 in
        push (mul b l0 (sub b z0 one));
        push
          (mul b active
             (sub b
                (mul b z1 (mul b (add b a'0 beta) (add b s'0 gamma)))
                (mul b z0 (mul b (add b a beta) (add b s gamma)))));
        push (mul b llast (sub b (square b z0) z0));
        push (mul b l0 (sub b a'0 s'0));
        push (mul b active (mul b (sub b a'0 s'0) (sub b a'0 a'm1))))
      circuit.Circuit.lookups;
    (* 3. permutation argument *)
    if n_chunks > 0 then begin
      push (mul b l0 (sub b one (cell lay.c_perm_z 0)));
      for j = 1 to n_chunks - 1 do
        push
          (mul b l0
             (sub b (cell (lay.c_perm_z + j) 0) (cell (lay.c_perm_z + j - 1) u)))
      done;
      let m = Array.length perm_cols in
      let rec chunks start =
        if start >= m then []
        else
          let len = min chunk (m - start) in
          Array.to_list (Array.init len (fun i -> start + i))
          :: chunks (start + len)
      in
      List.iteri
        (fun j cols ->
          let lhs = ref (cell (lay.c_perm_z + j) 1)
          and rhs = ref (cell (lay.c_perm_z + j) 0) in
          List.iter
            (fun mi ->
              let w = col_cell perm_cols.(mi) in
              lhs :=
                mul b !lhs
                  (add b w (add b (mul b beta (cell (lay.c_sigma + mi) 0)) gamma));
              rhs :=
                mul b !rhs
                  (add b w
                     (add b (mul b (mul b beta (const b deltas.(mi))) point) gamma)))
            cols;
          push (mul b active (sub b !lhs !rhs)))
        (chunks 0);
      let zl = cell (lay.c_perm_z + n_chunks - 1) 0 in
      push (mul b llast (sub b (square b zl) zl))
    end;
    let prog = lower b lay !acc in
    { prog with p_nscalars = nc + 4 }

  (* ------------------------------------------------------------------ *)
  (* Row-wise execution on the extended coset. *)

  (** [eval_rows_into p ~bank ~scalars ~factor ~out ~lo ~hi] evaluates
      the program at rows [lo..hi-1] of the coset, writing [out.(i)].
      [bank] columns follow {!layout} order (width [p.p_ncols], each of
      length [Array.length out]); rotations wrap as
      [(i + r*factor) mod ext_n]. Pure with disjoint writes per range,
      so ranges fan out over the domain pool; all scratch is per-call.

      Execution is blocked, not row-at-a-time: operands are resolved to
      plain arrays once per call (registers become block-wide buffers,
      constants and scalars broadcast into block buffers, each column
      read at a non-zero rotation materialized for the range by two
      wrap-around blits) and every instruction then runs over a whole
      block in a tight loop. This amortizes instruction dispatch across
      the block and keeps each element-step to array loads, one field
      op and one store — the per-row interpretive overhead is what made
      a naive register machine slower than the closure interpreter it
      replaces. Element results are unchanged: the same field ops run
      on the same values in the same order for every row. *)
  let eval_rows_into (p : prog) ~(bank : F.t array array)
      ~(scalars : F.t array) ~factor ~(out : F.t array) ~lo ~hi =
    if Array.length bank <> p.p_ncols then
      invalid_arg "Evaluator.eval_rows_into: bank width mismatch";
    if Array.length scalars <> p.p_nscalars then
      invalid_arg "Evaluator.eval_rows_into: scalar count mismatch";
    let ext_n = Array.length out in
    Array.iter
      (fun col ->
        if Array.length col <> ext_n then
          invalid_arg "Evaluator.eval_rows_into: bank column length mismatch")
      bank;
    let len = hi - lo in
    if len > 0 then begin
      let blk = min 256 len in
      let bcast v = Array.make blk v in
      let const_buf = Array.map bcast p.p_consts in
      let scal_buf = Array.map bcast scalars in
      (* Register buffers are written through in the mutable-repr path,
         so each cell must be a distinct scratch buffer — [Array.make]
         would share a single F.zero across the whole block. *)
      let regs =
        if F.mutable_repr then
          Array.init p.p_nregs (fun _ ->
              Array.init blk (fun _ -> F.scratch ()))
        else Array.init p.p_nregs (fun _ -> Array.make blk F.zero)
      in
      (* Offset modes per operand array: 0 = block-relative scratch
         (registers, broadcasts), 1 = the bank column itself (absolute
         row index; only rotation 0 reads it directly), 2 = a
         range-relative rotated view. *)
      let rot_view : (int * int, F.t array) Hashtbl.t = Hashtbl.create 8 in
      let resolve = function
        | S_reg r -> (regs.(r), 0)
        | S_const c -> (const_buf.(c), 0)
        | S_scalar s -> (scal_buf.(s), 0)
        | S_cell (col, slot) ->
            let r = p.p_rots.(slot) in
            if r = 0 then (bank.(col), 1)
            else
              let a =
                match Hashtbl.find_opt rot_view (col, slot) with
                | Some a -> a
                | None ->
                    let src = bank.(col) in
                    let a = Array.make len F.zero in
                    let s = (lo + (r * factor)) mod ext_n in
                    let start = if s < 0 then s + ext_n else s in
                    let first = min len (ext_n - start) in
                    Array.blit src start a 0 first;
                    if first < len then Array.blit src 0 a first (len - first);
                    Hashtbl.add rot_view (col, slot) a;
                    a
              in
              (a, 2)
      in
      let nops = Array.length p.p_ops in
      let dummy : F.t array = [||] in
      let mk () = (Array.make (max 1 nops) dummy, Array.make (max 1 nops) 0) in
      let a_arr, a_md = mk () in
      let b_arr, b_md = mk () in
      let c_arr, c_md = mk () in
      let code = Array.make (max 1 nops) 0 in
      Array.iteri
        (fun k op ->
          let put (arr, md) s =
            let a, m = resolve s in
            arr.(k) <- a;
            md.(k) <- m
          in
          let a = (a_arr, a_md) and b = (b_arr, b_md) and c = (c_arr, c_md) in
          match op with
          | Add (x, y) -> code.(k) <- 0; put a x; put b y
          | Sub (x, y) -> code.(k) <- 1; put a x; put b y
          | Mul (x, y) -> code.(k) <- 2; put a x; put b y
          | Square x -> code.(k) <- 3; put a x
          | Neg x -> code.(k) <- 4; put a x
          | Fma (x, y, z) -> code.(k) <- 5; put a x; put b y; put c z
          | Fms (x, y, z) -> code.(k) <- 6; put a x; put b y; put c z
          | Msc (x, y, z) -> code.(k) <- 7; put a x; put b y; put c z)
        p.p_ops;
      let res_arr, res_md = resolve p.p_result in
      (* Unsafe indexing below is bounds-checked by construction: mode-0
         buffers have length [blk >= bl], mode-1 columns length [ext_n >
         cur_lo + bl - 1] (validated above), mode-2 views length [len >=
         pos + bl]. *)
      let pos = ref 0 in
      if F.mutable_repr then begin
        (* Allocation-free variant: every opcode writes its destination
           register cell in place. Register cells are private scratch
           buffers (above) and never alias bank columns, broadcasts or
           rotated views, which are only ever read; the one temporary
           needed by the fused multiply opcodes is reused across the
           whole call. Results are copied out through [F.unshare] — when
           the program result is a register, handing out the buffer
           itself would let the next block's writes corrupt earlier
           rows. *)
        let tmp = F.scratch () in
        while !pos < len do
          let bl = min blk (len - !pos) in
          let cur_lo = lo + !pos in
          let off m = if m = 0 then 0 else if m = 1 then cur_lo else !pos in
          for k = 0 to nops - 1 do
            let d = regs.(Array.unsafe_get p.p_dst k) in
            let a = Array.unsafe_get a_arr k
            and ao = off (Array.unsafe_get a_md k) in
            match Array.unsafe_get code k with
            | 0 ->
                let b = Array.unsafe_get b_arr k
                and bo = off (Array.unsafe_get b_md k) in
                for t = 0 to bl - 1 do
                  F.add_into (Array.unsafe_get d t)
                    (Array.unsafe_get a (ao + t))
                    (Array.unsafe_get b (bo + t))
                done
            | 1 ->
                let b = Array.unsafe_get b_arr k
                and bo = off (Array.unsafe_get b_md k) in
                for t = 0 to bl - 1 do
                  F.sub_into (Array.unsafe_get d t)
                    (Array.unsafe_get a (ao + t))
                    (Array.unsafe_get b (bo + t))
                done
            | 2 ->
                let b = Array.unsafe_get b_arr k
                and bo = off (Array.unsafe_get b_md k) in
                for t = 0 to bl - 1 do
                  F.mul_into (Array.unsafe_get d t)
                    (Array.unsafe_get a (ao + t))
                    (Array.unsafe_get b (bo + t))
                done
            | 3 ->
                for t = 0 to bl - 1 do
                  F.square_into (Array.unsafe_get d t)
                    (Array.unsafe_get a (ao + t))
                done
            | 4 ->
                for t = 0 to bl - 1 do
                  F.neg_into (Array.unsafe_get d t)
                    (Array.unsafe_get a (ao + t))
                done
            | _ ->
                let b = Array.unsafe_get b_arr k
                and bo = off (Array.unsafe_get b_md k) in
                let c = Array.unsafe_get c_arr k
                and co = off (Array.unsafe_get c_md k) in
                let kind = Array.unsafe_get code k in
                for t = 0 to bl - 1 do
                  F.mul_into tmp
                    (Array.unsafe_get a (ao + t))
                    (Array.unsafe_get b (bo + t));
                  let dt = Array.unsafe_get d t in
                  let cv = Array.unsafe_get c (co + t) in
                  if kind = 5 then F.add_into dt tmp cv
                  else if kind = 6 then F.sub_into dt cv tmp
                  else F.sub_into dt tmp cv
                done
          done;
          let ro = off res_md in
          for t = 0 to bl - 1 do
            out.(cur_lo + t) <- F.unshare (Array.unsafe_get res_arr (ro + t))
          done;
          pos := !pos + bl
        done
      end
      else
      while !pos < len do
        let bl = min blk (len - !pos) in
        let cur_lo = lo + !pos in
        let off m = if m = 0 then 0 else if m = 1 then cur_lo else !pos in
        for k = 0 to nops - 1 do
          let d = regs.(Array.unsafe_get p.p_dst k) in
          let a = Array.unsafe_get a_arr k
          and ao = off (Array.unsafe_get a_md k) in
          match Array.unsafe_get code k with
          | 0 ->
              let b = Array.unsafe_get b_arr k
              and bo = off (Array.unsafe_get b_md k) in
              for t = 0 to bl - 1 do
                Array.unsafe_set d t
                  (F.add (Array.unsafe_get a (ao + t))
                     (Array.unsafe_get b (bo + t)))
              done
          | 1 ->
              let b = Array.unsafe_get b_arr k
              and bo = off (Array.unsafe_get b_md k) in
              for t = 0 to bl - 1 do
                Array.unsafe_set d t
                  (F.sub (Array.unsafe_get a (ao + t))
                     (Array.unsafe_get b (bo + t)))
              done
          | 2 ->
              let b = Array.unsafe_get b_arr k
              and bo = off (Array.unsafe_get b_md k) in
              for t = 0 to bl - 1 do
                Array.unsafe_set d t
                  (F.mul (Array.unsafe_get a (ao + t))
                     (Array.unsafe_get b (bo + t)))
              done
          | 3 ->
              for t = 0 to bl - 1 do
                Array.unsafe_set d t (F.square (Array.unsafe_get a (ao + t)))
              done
          | 4 ->
              for t = 0 to bl - 1 do
                Array.unsafe_set d t (F.neg (Array.unsafe_get a (ao + t)))
              done
          | _ ->
              let b = Array.unsafe_get b_arr k
              and bo = off (Array.unsafe_get b_md k) in
              let c = Array.unsafe_get c_arr k
              and co = off (Array.unsafe_get c_md k) in
              let kind = Array.unsafe_get code k in
              for t = 0 to bl - 1 do
                let prod =
                  F.mul (Array.unsafe_get a (ao + t))
                    (Array.unsafe_get b (bo + t))
                in
                let cv = Array.unsafe_get c (co + t) in
                Array.unsafe_set d t
                  (if kind = 5 then F.add prod cv
                   else if kind = 6 then F.sub cv prod
                   else F.sub prod cv)
              done
        done;
        let ro = off res_md in
        for t = 0 to bl - 1 do
          out.(cur_lo + t) <- Array.unsafe_get res_arr (ro + t)
        done;
        pos := !pos + bl
      done
    end
end
