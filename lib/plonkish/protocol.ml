(** The proving protocol: keygen, prover and verifier for {!Circuit}
    descriptions, functorized over the polynomial commitment scheme so
    that the KZG and IPA backends (paper Tables 6 and 7) share all code.

    The protocol follows halo2: commit advice (in phases, squeezing the
    circuit challenges in between), run the permuted lookup argument and
    the chunked permutation argument, combine every constraint with
    powers of [y] into the quotient polynomial computed on an extended
    coset, then evaluate everything at a random point [x] and batch the
    openings per rotation. *)

module Make (Scheme : Zkml_commit.Scheme_intf.S) = struct
  module G = Scheme.G
  module F = G.Scalar
  module P = Zkml_poly.Polynomial.Make (F)
  module Extra = Zkml_ff.Field_extra.Make (F)
  module T = Zkml_transcript.Transcript
  module Ch = Zkml_transcript.Transcript.Challenge (F)
  module Obs = Zkml_obs.Obs
  module Metrics = Zkml_obs.Metrics
  module Ev = Evaluator.Make (F)

  type circuit = F.t Circuit.t

  (* ------------------------------------------------------------------ *)
  (* Keys *)

  type keys = {
    circuit : circuit;
    domain : P.Domain.t;
    fixed_values : F.t array array;
    fixed_polys : F.t array array;
    fixed_commits : G.t array;
    perm_cols : Circuit.any_col array;
    sigma_values : F.t array array;  (* per perm column: permuted labels *)
    sigma_polys : F.t array array;
    sigma_commits : G.t array;
    deltas : F.t array;  (* identity coset shifts, delta^m per perm col *)
    d_max : int;
    ext_factor : int;
    ext_domain : P.Domain.t;
    n_chunks : int;
    chunk : int;
    eval_prog : Ev.prog;
        (** the whole quotient combination compiled to a flat register
            program (see {!Evaluator}); pure data, cached with the keys *)
    rot_omegas : (int * F.t) array;
        (** rotation r -> omega^r (inverse powers for r < 0, all
            inverted by one batched inversion at keygen) *)
  }

  let next_pow2 x =
    let rec go k = if k >= x then k else go (2 * k) in
    go 1

  module Pool = Zkml_util.Pool

  (* Union-find for copy-constraint equivalence classes. *)
  let build_sigma (circuit : circuit) (perm_cols : Circuit.any_col array)
      ~n ~omega_pows ~deltas =
    let m = Array.length perm_cols in
    let col_index c =
      let rec find i = if perm_cols.(i) = c then i else find (i + 1) in
      find 0
    in
    let total = m * n in
    let parent = Array.init total (fun i -> i) in
    let rec find i = if parent.(i) = i then i else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end
    in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    List.iter
      (fun ((c1, r1), (c2, r2)) ->
        union ((col_index c1 * n) + r1) ((col_index c2 * n) + r2))
      circuit.Circuit.copies;
    (* Collect members per class and rotate each cycle by one. *)
    let classes = Hashtbl.create 64 in
    for i = 0 to total - 1 do
      let r = find i in
      Hashtbl.replace classes r (i :: (try Hashtbl.find classes r with Not_found -> []))
    done;
    (* identity labels: omega_pows is the domain's cached elements *)
    let label cell =
      let c = cell / n and r = cell mod n in
      F.mul deltas.(c) omega_pows.(r)
    in
    let sigma = Array.init m (fun c -> Array.init n (fun r -> label ((c * n) + r))) in
    Hashtbl.iter
      (fun _ members ->
        match members with
        | [] | [ _ ] -> ()
        | first :: _ ->
            let arr = Array.of_list members in
            let len = Array.length arr in
            ignore first;
            for i = 0 to len - 1 do
              let cell = arr.(i) and next = arr.((i + 1) mod len) in
              sigma.(cell / n).(cell mod n) <- label next
            done)
      classes;
    sigma

  let column_rotations (circuit : circuit) =
    (* per-kind map: column -> sorted rotation list (always includes 0) *)
    let fixed_rots = Array.make circuit.num_fixed [ 0 ] in
    let advice_rots = Array.make (Circuit.num_advice circuit) [ 0 ] in
    let instance_rots = Array.make circuit.num_instance [ 0 ] in
    let add arr (q : Expr.query) =
      if not (List.mem q.rot arr.(q.col)) then arr.(q.col) <- q.rot :: arr.(q.col)
    in
    let visit e =
      ignore
        (Expr.fold_queries
           (fun () kind q ->
             (match kind with
             | Expr.KFixed -> add fixed_rots q
             | Expr.KAdvice -> add advice_rots q
             | Expr.KInstance -> add instance_rots q);
             ())
           () e)
    in
    List.iter (fun g -> List.iter visit g.Circuit.polys) circuit.gates;
    List.iter
      (fun l ->
        List.iter visit l.Circuit.inputs;
        List.iter visit l.Circuit.tables)
      circuit.lookups;
    let sort a = Array.map (List.sort compare) a in
    (sort fixed_rots, sort advice_rots, sort instance_rots)

  let keygen scheme_params (circuit : circuit) ~(fixed : F.t array array) =
    Obs.Span.with_ ~name:"keygen" @@ fun () ->
    Obs.count "keygen.fixed_cols" circuit.num_fixed;
    let n = Circuit.n circuit in
    let domain = P.Domain.create circuit.k in
    if Array.length fixed <> circuit.num_fixed then
      invalid_arg "keygen: fixed column count mismatch";
    Array.iter
      (fun col ->
        if Array.length col <> n then invalid_arg "keygen: fixed column length")
      fixed;
    let fixed_polys = P.interpolate_many domain fixed in
    let fixed_commits = Scheme.commit_many scheme_params fixed_polys in
    let perm_cols = Circuit.permutation_columns circuit in
    let m = Array.length perm_cols in
    let deltas = Array.make (max m 1) F.one in
    for i = 1 to m - 1 do
      deltas.(i) <- F.mul deltas.(i - 1) F.generator
    done;
    let sigma_values =
      if m = 0 then [||]
      else
        build_sigma circuit perm_cols ~n
          ~omega_pows:(P.Domain.elements domain) ~deltas
    in
    let sigma_polys = P.interpolate_many domain sigma_values in
    let sigma_commits = Scheme.commit_many scheme_params sigma_polys in
    let d_max = Circuit.max_degree circuit in
    let chunk = Circuit.permutation_chunk circuit in
    let n_chunks = if m = 0 then 0 else (m + chunk - 1) / chunk in
    let ext_factor = next_pow2 d_max in
    let ext_domain = P.Domain.create (circuit.k + (let rec lg x = if x <= 1 then 0 else 1 + lg (x / 2) in lg ext_factor)) in
    let eval_prog =
      (* lower the whole quotient combination once; the program rides in
         the keys (and hence the serve artifact cache) *)
      let p = Ev.compile circuit ~perm_cols ~deltas ~n_chunks ~chunk in
      Obs.gauge_int "evaluator.ops" (Array.length p.Ev.p_ops);
      Obs.gauge_int "evaluator.nodes" p.Ev.p_nodes;
      Obs.gauge_int "evaluator.cse_hits" p.Ev.p_cse_hits;
      Obs.gauge_int "evaluator.regs" p.Ev.p_nregs;
      Obs.gauge_int "evaluator.consts" (Array.length p.Ev.p_consts);
      p
    in
    let rot_omegas =
      (* every rotation the opening plan or an expression can query:
         column rotations, the lookup shifts {1, -1}, the permutation
         shifts {1, u} and 0. One batched inversion covers all negative
         rotations. *)
      let u = Circuit.last_row circuit in
      let rots = ref [ 0 ] in
      let add r = if not (List.mem r !rots) then rots := r :: !rots in
      let fixed_rots, advice_rots, instance_rots = column_rotations circuit in
      Array.iter (List.iter add) fixed_rots;
      Array.iter (List.iter add) advice_rots;
      Array.iter (List.iter add) instance_rots;
      if circuit.lookups <> [] then begin
        add 1;
        add (-1)
      end;
      if n_chunks > 0 then begin
        add 1;
        add u
      end;
      let rots = Array.of_list (List.sort compare !rots) in
      let negs = Array.of_list (List.filter (fun r -> r < 0) (Array.to_list rots)) in
      let neg_inv =
        Extra.batch_inv (Array.map (fun r -> F.pow_int domain.omega (-r)) negs)
      in
      Array.map
        (fun r ->
          if r >= 0 then (r, F.pow_int domain.omega r)
          else begin
            let j = ref 0 in
            Array.iteri (fun i r' -> if r' = r then j := i) negs;
            (r, neg_inv.(!j))
          end)
        rots
    in
    {
      circuit;
      domain;
      fixed_values = fixed;
      fixed_polys;
      fixed_commits;
      perm_cols;
      sigma_values;
      sigma_polys;
      sigma_commits;
      deltas;
      d_max;
      ext_factor;
      ext_domain;
      n_chunks;
      chunk;
      eval_prog;
      rot_omegas;
    }

  (** Rotation multiplier [omega^r] from the precomputed per-keys table
      (negative rotations were inverted together at keygen); falls back
      to direct computation for a rotation outside the table. *)
  let omega_rot keys r =
    let tbl = keys.rot_omegas in
    let n_tbl = Array.length tbl in
    let rec find i =
      if i = n_tbl then
        if r >= 0 then F.pow_int keys.domain.omega r
        else F.inv (F.pow_int keys.domain.omega (-r))
      else
        let r', v = tbl.(i) in
        if r' = r then v else find (i + 1)
    in
    find 0

  (** The opening point for rotation [r]: [x * omega^r]. *)
  let point_of_rot keys x r = F.mul x (omega_rot keys r)

  (* ------------------------------------------------------------------ *)
  (* Opening plan: which polynomial is opened at which rotation, in a
     deterministic order shared by prover and verifier. *)

  type source =
    | Src_fixed of int
    | Src_advice of int
    | Src_sigma of int
    | Src_perm_z of int
    | Src_look_a of int
    | Src_look_s of int
    | Src_look_z of int
    | Src_h of int

  let opening_plan keys =
    let circuit = keys.circuit in
    let fixed_rots, advice_rots, _ = column_rotations circuit in
    let u = Circuit.last_row circuit in
    let plan = ref [] in
    let push src rot = plan := (src, rot) :: !plan in
    Array.iteri (fun i rots -> List.iter (fun r -> push (Src_fixed i) r) rots) fixed_rots;
    Array.iteri (fun i rots -> List.iter (fun r -> push (Src_advice i) r) rots) advice_rots;
    Array.iteri (fun i _ -> push (Src_sigma i) 0) keys.sigma_polys;
    for j = 0 to keys.n_chunks - 1 do
      push (Src_perm_z j) 0;
      push (Src_perm_z j) 1;
      if j < keys.n_chunks - 1 then push (Src_perm_z j) u
    done;
    List.iteri
      (fun li _ ->
        push (Src_look_z li) 0;
        push (Src_look_z li) 1;
        push (Src_look_a li) 0;
        push (Src_look_a li) (-1);
        push (Src_look_s li) 0)
      circuit.lookups;
    for j = 0 to keys.ext_factor - 1 do
      push (Src_h j) 0
    done;
    List.rev !plan

  (* ------------------------------------------------------------------ *)
  (* Shared constraint-term combination. The [ctx] callbacks abstract
     whether we are on the extended coset (prover) or at the point x
     (verifier); keeping this in one function guarantees the two sides
     agree on the term order and formulas. *)

  type ctx = {
    c_fixed : int -> int -> F.t;
    c_advice : int -> int -> F.t;
    c_instance : int -> int -> F.t;
    c_challenge : int -> F.t;
    c_col : Circuit.any_col -> F.t;  (* at rotation 0 *)
    c_sigma : int -> F.t;
    c_perm_z : int -> [ `R0 | `R1 | `Ru ] -> F.t;
    c_look : int -> [ `Z0 | `Z1 | `A0 | `Am1 | `S0 ] -> F.t;
    c_l0 : F.t;
    c_llast : F.t;
    c_lblind : F.t;
    c_point : F.t;  (* the evaluation point (coset point or x) *)
  }

  let eval_expr ctx e =
    Expr.eval ~fixed_at:ctx.c_fixed ~advice_at:ctx.c_advice
      ~instance_at:ctx.c_instance ~challenge:ctx.c_challenge ~add:F.add
      ~sub:F.sub ~mul:F.mul ~neg:F.neg ~scale:F.mul e

  let compress theta values =
    List.fold_left (fun acc v -> F.add (F.mul acc theta) v) F.zero values

  (* Chunked permutation column list. *)
  let perm_chunks keys =
    let m = Array.length keys.perm_cols in
    let rec go start =
      if start >= m then []
      else begin
        let len = min keys.chunk (m - start) in
        Array.to_list (Array.init len (fun i -> start + i)) :: go (start + len)
      end
    in
    go 0

  let combine_terms keys ~beta ~gamma ~theta ~y ctx =
    let circuit = keys.circuit in
    let acc = ref F.zero in
    let push v = acc := F.add (F.mul !acc y) v in
    let active = F.sub F.one (F.add ctx.c_llast ctx.c_lblind) in
    (* 1. custom gates *)
    List.iter
      (fun g -> List.iter (fun p -> push (eval_expr ctx p)) g.Circuit.polys)
      circuit.gates;
    (* 2. lookups *)
    List.iteri
      (fun li (l : F.t Circuit.lookup) ->
        let a = compress theta (List.map (eval_expr ctx) l.inputs) in
        let s = compress theta (List.map (eval_expr ctx) l.tables) in
        let z0 = ctx.c_look li `Z0
        and z1 = ctx.c_look li `Z1
        and a'0 = ctx.c_look li `A0
        and a'm1 = ctx.c_look li `Am1
        and s'0 = ctx.c_look li `S0 in
        push (F.mul ctx.c_l0 (F.sub z0 F.one));
        push
          (F.mul active
             (F.sub
                (F.mul z1 (F.mul (F.add a'0 beta) (F.add s'0 gamma)))
                (F.mul z0 (F.mul (F.add a beta) (F.add s gamma)))));
        push (F.mul ctx.c_llast (F.sub (F.square z0) z0));
        push (F.mul ctx.c_l0 (F.sub a'0 s'0));
        push (F.mul active (F.mul (F.sub a'0 s'0) (F.sub a'0 a'm1))))
      circuit.lookups;
    (* 3. permutation argument *)
    if keys.n_chunks > 0 then begin
      push (F.mul ctx.c_l0 (F.sub F.one (ctx.c_perm_z 0 `R0)));
      for j = 1 to keys.n_chunks - 1 do
        push
          (F.mul ctx.c_l0
             (F.sub (ctx.c_perm_z j `R0) (ctx.c_perm_z (j - 1) `Ru)))
      done;
      List.iteri
        (fun j cols ->
          let lhs = ref (ctx.c_perm_z j `R1) and rhs = ref (ctx.c_perm_z j `R0) in
          List.iter
            (fun m ->
              let w = ctx.c_col keys.perm_cols.(m) in
              lhs := F.mul !lhs (F.add w (F.add (F.mul beta (ctx.c_sigma m)) gamma));
              rhs :=
                F.mul !rhs
                  (F.add w
                     (F.add (F.mul (F.mul beta keys.deltas.(m)) ctx.c_point) gamma)))
            cols;
          push (F.mul active (F.sub !lhs !rhs)))
        (perm_chunks keys);
      let zl = ctx.c_perm_z (keys.n_chunks - 1) `R0 in
      push (F.mul ctx.c_llast (F.sub (F.square zl) zl))
    end;
    !acc

  (* ------------------------------------------------------------------ *)
  (* Proof representation *)

  type proof = {
    adv_commits : G.t array;
    look_a_commits : G.t array;
    look_s_commits : G.t array;
    perm_z_commits : G.t array;
    look_z_commits : G.t array;
    h_commits : G.t array;
    evals : F.t array;  (* in opening_plan order *)
    openings : Scheme.proof array;  (* per distinct rotation *)
  }

  let proof_to_bytes proof =
    let buf = Buffer.create 4096 in
    let add_commits cs = Array.iter (fun c -> Buffer.add_string buf (G.to_bytes c)) cs in
    add_commits proof.adv_commits;
    add_commits proof.look_a_commits;
    add_commits proof.look_s_commits;
    add_commits proof.perm_z_commits;
    add_commits proof.look_z_commits;
    add_commits proof.h_commits;
    Array.iter (fun e -> Buffer.add_string buf (F.to_bytes e)) proof.evals;
    Array.iter
      (fun o -> Buffer.add_string buf (Scheme.proof_to_bytes o))
      proof.openings;
    Buffer.contents buf

  let proof_size_bytes proof = String.length (proof_to_bytes proof)

  (* ------------------------------------------------------------------ *)
  (* Transcript bootstrap shared by prover and verifier *)

  let init_transcript keys ~instance =
    let t = T.create "zkml-plonkish" in
    Array.iter
      (fun c -> T.absorb_bytes t ~label:"fixed" (G.to_bytes c))
      keys.fixed_commits;
    Array.iter
      (fun c -> T.absorb_bytes t ~label:"sigma" (G.to_bytes c))
      keys.sigma_commits;
    Array.iter (fun col -> Ch.absorb_scalars t ~label:"instance" (Array.to_list col)) instance;
    t

  (* Distinct rotations in plan order of first appearance. *)
  let distinct_rotations plan =
    List.fold_left
      (fun acc (_, r) -> if List.mem r acc then acc else r :: acc)
      [] plan
    |> List.rev

  module Err = Zkml_util.Err

  (** Parse a proof produced by {!proof_to_bytes}; all counts are
      derived from the verification keys. Total over adversarial bytes:
      a proof truncated at any point, a non-canonical field or group
      encoding, or trailing garbage all come back as a typed
      [Error _] carrying the byte offset — never as an exception. *)
  let proof_of_bytes scheme_params keys s =
    let open Err in
    let circuit = keys.circuit in
    let num_adv = Circuit.num_advice circuit in
    let num_lookups = List.length circuit.lookups in
    let plan = opening_plan keys in
    let r = Reader.of_string s in
    let read_many what k decode_one =
      let rec go acc i =
        if i = k then Ok (Array.of_list (List.rev acc))
        else
          let* v = decode_one (Printf.sprintf "%s[%d]" what i) in
          go (v :: acc) (i + 1)
      in
      go [] 0
    in
    let read_gs what k =
      read_many what k (fun w -> Reader.decode r ~what:w G.size_bytes G.of_bytes_exn)
    in
    let result =
      let* adv_commits = read_gs "advice commit" num_adv in
      let* look_a_commits = read_gs "lookup input commit" num_lookups in
      let* look_s_commits = read_gs "lookup table commit" num_lookups in
      let* perm_z_commits = read_gs "permutation z commit" keys.n_chunks in
      let* look_z_commits = read_gs "lookup z commit" num_lookups in
      let* h_commits = read_gs "quotient commit" keys.ext_factor in
      let* evals =
        read_many "evaluation" (List.length plan) (fun w ->
            Reader.decode r ~what:w F.size_bytes F.of_bytes_exn)
      in
      let* openings =
        read_many "opening" (List.length (distinct_rotations plan)) (fun w ->
            in_context w (Scheme.read_proof scheme_params r))
      in
      let* () = Reader.expect_end r ~what:"proof" in
      Ok
        {
          adv_commits;
          look_a_commits;
          look_s_commits;
          perm_z_commits;
          look_z_commits;
          h_commits;
          evals;
          openings;
        }
    in
    in_context "proof" result

  let proof_of_bytes_exn scheme_params keys s =
    Err.get_exn (proof_of_bytes scheme_params keys s)


  (* ------------------------------------------------------------------ *)
  (* Prover *)

  let rot_index ~ext_n ~factor i rot =
    let j = (i + (rot * factor)) mod ext_n in
    if j < 0 then j + ext_n else j

  let prove scheme_params keys ~(instance : F.t array array)
      ~(advice : F.t array -> F.t array array) ~rng =
    Metrics.phase "prove" @@ fun () ->
    Metrics.inc ~help:"Proofs produced" "zkml_proofs_total" 1.0;
    Obs.Span.with_ ~name:"prove" @@ fun () ->
    let circuit = keys.circuit in
    let n = Circuit.n circuit in
    let u = Circuit.last_row circuit in
    let transcript = init_transcript keys ~instance in
    let num_adv = Circuit.num_advice circuit in
    let adv_polys, adv_commits, challenges, advice_grid =
      Metrics.phase "commit" @@ fun () ->
      Obs.Span.with_ ~name:"advice-commit" @@ fun () ->
      Obs.count "advice.cols" num_adv;
      (* --- phase 0 advice --- *)
      let advice0 = advice [||] in
      if Array.length advice0 <> num_adv then
        invalid_arg "prove: advice column count mismatch";
      (* blinding rows *)
      let blind_grid g =
        Array.iter
          (fun col ->
            for r = u to n - 1 do
              col.(r) <- F.random rng
            done)
          g
      in
      blind_grid advice0;
      let adv_polys = Array.make num_adv [||] in
      let adv_commits = Array.make num_adv G.zero in
      let commit_phase ph grid =
        (* interpolate + commit the phase's columns as one parallel
           batch, then absorb in ascending column order — the same
           transcript sequence as the sequential loop *)
        let idxs = ref [] in
        for i = num_adv - 1 downto 0 do
          if circuit.advice_phases.(i) = ph then idxs := i :: !idxs
        done;
        let idxs = Array.of_list !idxs in
        let polys =
          P.interpolate_many keys.domain (Array.map (fun i -> grid.(i)) idxs)
        in
        let commits = Scheme.commit_many scheme_params polys in
        Array.iteri
          (fun j i ->
            adv_polys.(i) <- polys.(j);
            adv_commits.(i) <- commits.(j);
            T.absorb_bytes transcript ~label:"advice"
              (G.to_bytes adv_commits.(i)))
          idxs
      in
      commit_phase 0 advice0;
      let challenges =
        Array.init circuit.num_challenges (fun _ ->
            Ch.squeeze_nonzero transcript ~label:"challenge")
      in
      let advice_grid =
        if circuit.num_challenges = 0 && Array.for_all (fun p -> p = 0) circuit.advice_phases
        then advice0
        else begin
          let g = advice challenges in
          (* phase-0 columns must be reproduced identically: reuse the
             blinded versions committed above; blind only phase-1 columns *)
          for i = 0 to num_adv - 1 do
            if circuit.advice_phases.(i) = 0 then g.(i) <- advice0.(i)
            else
              for r = u to n - 1 do
                g.(i).(r) <- F.random rng
              done
          done;
          g
        end
      in
      if Array.exists (fun p -> p = 1) circuit.advice_phases then
        commit_phase 1 advice_grid;
      (adv_polys, adv_commits, challenges, advice_grid)
    in
    (* --- lookups: compress, permute, commit --- *)
    let theta = Ch.squeeze_nonzero transcript ~label:"theta" in
    let inst_cols = instance in
    let cell_ctx row =
      let at grid col rot =
        let r = (row + rot) mod n in
        let r = if r < 0 then r + n else r in
        grid.(col).(r)
      in
      {
        c_fixed = at keys.fixed_values;
        c_advice = at advice_grid;
        c_instance = at inst_cols;
        c_challenge = (fun i -> challenges.(i));
        c_col =
          (function
          | Circuit.Col_fixed i -> keys.fixed_values.(i).(row)
          | Circuit.Col_advice i -> advice_grid.(i).(row)
          | Circuit.Col_instance i -> inst_cols.(i).(row));
        c_sigma = (fun _ -> F.zero);
        c_perm_z = (fun _ _ -> F.zero);
        c_look = (fun _ _ -> F.zero);
        c_l0 = F.zero;
        c_llast = F.zero;
        c_lblind = F.zero;
        c_point = F.zero;
      }
    in
    let lookups = Array.of_list circuit.lookups in
    let num_lookups = Array.length lookups in
    let look_a = Array.make num_lookups [||] (* compressed inputs, n rows *)
    and look_s = Array.make num_lookups [||]
    and look_a' = Array.make num_lookups [||]
    and look_s' = Array.make num_lookups [||] in
    for li = 0 to num_lookups - 1 do
      Obs.Span.with_ ~name:"lookup" @@ fun () ->
      Obs.count "lookup.rows" u;
      let l = lookups.(li) in
      let a = Array.make n F.zero and s = Array.make n F.zero in
      (* per-row compression is pure and writes disjoint rows *)
      Pool.parallel_for_ranges ~seq_below:1024 n (fun lo hi ->
          for row = lo to hi - 1 do
            let ctx = cell_ctx row in
            a.(row) <-
              compress theta (List.map (eval_expr ctx) l.Circuit.inputs);
            s.(row) <-
              compress theta (List.map (eval_expr ctx) l.Circuit.tables)
          done);
      (* permute over usable rows 0..u-1 *)
      let a_u = Array.sub a 0 u and s_u = Array.sub s 0 u in
      let a_sorted = Array.copy a_u in
      Array.sort F.compare a_sorted;
      (* multiset of table values *)
      let s_sorted = Array.copy s_u in
      Array.sort F.compare s_sorted;
      let s' = Array.make u F.zero in
      let used = Array.make u false in
      (* two-pointer: for each new value in a_sorted find it in s_sorted *)
      let sp = ref 0 in
      let fill_later = ref [] in
      for i = 0 to u - 1 do
        if i = 0 || not (F.equal a_sorted.(i) a_sorted.(i - 1)) then begin
          (* advance sp to the first unused s equal to a_sorted.(i) *)
          let rec seek j =
            if j >= u then
              invalid_arg
                (Printf.sprintf "prove: lookup '%s' input not in table"
                   l.Circuit.lookup_name)
            else if (not used.(j)) && F.equal s_sorted.(j) a_sorted.(i) then j
            else seek (j + 1)
          in
          let j = seek !sp in
          sp := j;
          used.(j) <- true;
          s'.(i) <- s_sorted.(j)
        end
        else fill_later := i :: !fill_later
      done;
      (* fill remaining slots with unused table values *)
      let unused = ref [] in
      for j = u - 1 downto 0 do
        if not used.(j) then unused := s_sorted.(j) :: !unused
      done;
      List.iter
        (fun i ->
          match !unused with
          | v :: rest ->
              s'.(i) <- v;
              unused := rest
          | [] -> assert false)
        !fill_later;
      let a_full = Array.make n F.zero and s_full = Array.make n F.zero in
      Array.blit a_sorted 0 a_full 0 u;
      Array.blit s' 0 s_full 0 u;
      for r = u to n - 1 do
        a_full.(r) <- F.random rng;
        s_full.(r) <- F.random rng
      done;
      look_a.(li) <- a;
      look_s.(li) <- s;
      look_a'.(li) <- a_full;
      look_s'.(li) <- s_full
    done;
    let look_a_polys, look_s_polys, look_a_commits, look_s_commits =
      Metrics.phase "commit" @@ fun () ->
      Obs.Span.with_ ~name:"lookup-commit" @@ fun () ->
      (* one batch over inputs and tables together *)
      let polys =
        P.interpolate_many keys.domain (Array.append look_a' look_s')
      in
      let commits = Scheme.commit_many scheme_params polys in
      let look_a_polys = Array.sub polys 0 num_lookups in
      let look_s_polys = Array.sub polys num_lookups num_lookups in
      let look_a_commits = Array.sub commits 0 num_lookups in
      let look_s_commits = Array.sub commits num_lookups num_lookups in
      (look_a_polys, look_s_polys, look_a_commits, look_s_commits)
    in
    for li = 0 to num_lookups - 1 do
      T.absorb_bytes transcript ~label:"look-a" (G.to_bytes look_a_commits.(li));
      T.absorb_bytes transcript ~label:"look-s" (G.to_bytes look_s_commits.(li))
    done;
    let beta = Ch.squeeze_nonzero transcript ~label:"beta" in
    let gamma = Ch.squeeze_nonzero transcript ~label:"gamma" in
    (* --- permutation grand products --- *)
    let perm_z_polys, look_z_polys, perm_z_commits, look_z_commits =
      Obs.Span.with_ ~name:"grand-products" @@ fun () ->
      Obs.count "perm.cols" (Array.length keys.perm_cols);
      Obs.count "perm.chunks" keys.n_chunks;
    let omega_pows = P.Domain.elements keys.domain in
    let col_value c row =
      match c with
      | Circuit.Col_fixed i -> keys.fixed_values.(i).(row)
      | Circuit.Col_advice i -> advice_grid.(i).(row)
      | Circuit.Col_instance i -> inst_cols.(i).(row)
    in
    let chunks = Array.of_list (perm_chunks keys) in
    let ncs = Array.length chunks in
    let perm_z = Array.make keys.n_chunks [||] in
    (* Per-row numerator and denominator products of every chunk are
       independent: compute them in one parallel pass over all
       (chunk, row) pairs, then invert every denominator of the whole
       argument with a single batched inversion — O(1) field inversions
       total instead of one batch per chunk. Only the short prefix
       recurrence over z and the blinding draws stay sequential, which
       keeps the rng order (hence the proof bytes) identical. *)
    let denoms = Array.make (max 1 (ncs * u)) F.one in
    let nums = Array.make (max 1 (ncs * u)) F.one in
    if ncs > 0 then
      Pool.parallel_for_ranges ~seq_below:2048 (ncs * u) (fun lo hi ->
          for t = lo to hi - 1 do
            let j = t / u and row = t mod u in
            let d = ref F.one and nm = ref F.one in
            List.iter
              (fun m ->
                let w = col_value keys.perm_cols.(m) row in
                d :=
                  F.mul !d
                    (F.add w
                       (F.add (F.mul beta keys.sigma_values.(m).(row)) gamma));
                nm :=
                  F.mul !nm
                    (F.add w
                       (F.add
                          (F.mul (F.mul beta keys.deltas.(m)) omega_pows.(row))
                          gamma)))
              chunks.(j);
            denoms.(t) <- !d;
            nums.(t) <- !nm
          done);
    let inv_denoms =
      if ncs = 0 then [||] else Extra.batch_inv (Array.sub denoms 0 (ncs * u))
    in
    let carry = ref F.one in
    Array.iteri
      (fun j _cols ->
        let z = Array.make n F.zero in
        z.(0) <- !carry;
        for row = 0 to u - 1 do
          let t = (j * u) + row in
          z.(row + 1) <- F.mul z.(row) (F.mul nums.(t) inv_denoms.(t))
        done;
        carry := z.(u);
        for r = u + 1 to n - 1 do
          z.(r) <- F.random rng
        done;
        perm_z.(j) <- z)
      chunks;
    (* --- lookup grand products --- *)
    let look_z = Array.make num_lookups [||] in
    for li = 0 to num_lookups - 1 do
      let z = Array.make n F.zero in
      z.(0) <- F.one;
      let denoms =
        Array.init u (fun row ->
            F.mul
              (F.add look_a'.(li).(row) beta)
              (F.add look_s'.(li).(row) gamma))
      in
      let inv_denoms = Extra.batch_inv denoms in
      for row = 0 to u - 1 do
        let num =
          F.mul (F.add look_a.(li).(row) beta) (F.add look_s.(li).(row) gamma)
        in
        z.(row + 1) <- F.mul z.(row) (F.mul num inv_denoms.(row))
      done;
      for r = u + 1 to n - 1 do
        z.(r) <- F.random rng
      done;
      look_z.(li) <- z
    done;
    let z_polys = P.interpolate_many keys.domain (Array.append perm_z look_z) in
    let z_commits = Scheme.commit_many scheme_params z_polys in
    let perm_z_polys = Array.sub z_polys 0 keys.n_chunks in
    let look_z_polys = Array.sub z_polys keys.n_chunks num_lookups in
    let perm_z_commits = Array.sub z_commits 0 keys.n_chunks in
    let look_z_commits = Array.sub z_commits keys.n_chunks num_lookups in
      (perm_z_polys, look_z_polys, perm_z_commits, look_z_commits)
    in
    Array.iter
      (fun c -> T.absorb_bytes transcript ~label:"perm-z" (G.to_bytes c))
      perm_z_commits;
    Array.iter
      (fun c -> T.absorb_bytes transcript ~label:"look-z" (G.to_bytes c))
      look_z_commits;
    let y = Ch.squeeze_nonzero transcript ~label:"y" in
    (* --- quotient on the extended coset --- *)
    let h_pieces, h_commits =
      Obs.Span.with_ ~name:"quotient" @@ fun () ->
      Obs.count "quotient.pieces" keys.ext_factor;
    let ext_n = P.Domain.size keys.ext_domain in
    let factor = keys.ext_factor in
    let shift = F.generator in
    let inst_polys = P.interpolate_many keys.domain inst_cols in
    (* indicator columns for l0 / llast / lblind, interpolated as part
       of the same batch *)
    let indicator rows =
      let v = Array.make n F.zero in
      List.iter (fun r -> v.(r) <- F.one) rows;
      v
    in
    let ind_polys =
      P.interpolate_many keys.domain
        [|
          indicator [ 0 ];
          indicator [ u ];
          indicator (List.init (n - u - 1) (fun i -> u + 1 + i));
        |]
    in
    (* every column set extends to the coset in one parallel batch *)
    let all_polys =
      Array.concat
        [
          keys.fixed_polys;
          adv_polys;
          inst_polys;
          keys.sigma_polys;
          perm_z_polys;
          look_z_polys;
          look_a_polys;
          look_s_polys;
          ind_polys;
        ]
    in
    let all_ext = P.coset_ntt_many keys.ext_domain ~shift all_polys in
    let off = ref 0 in
    let take k =
      let r = Array.sub all_ext !off k in
      off := !off + k;
      r
    in
    let fixed_ext = take (Array.length keys.fixed_polys) in
    let adv_ext = take (Array.length adv_polys) in
    let inst_ext = take (Array.length inst_polys) in
    let sigma_ext = take (Array.length keys.sigma_polys) in
    let perm_z_ext = take (Array.length perm_z_polys) in
    let look_z_ext = take (Array.length look_z_polys) in
    let look_a'_ext = take (Array.length look_a_polys) in
    let look_s'_ext = take (Array.length look_s_polys) in
    (* A and S (unpermuted, uncommitted) are expressions; evaluate their
       compressed forms through the generic ctx below. *)
    let l0_ext = all_ext.(!off)
    and llast_ext = all_ext.(!off + 1)
    and lblind_ext = all_ext.(!off + 2) in
    let coset_points = P.Domain.coset_points keys.ext_domain ~shift in
    let quotient_evals = Array.make ext_n F.zero in
    let use_interp =
      match Sys.getenv_opt "ZKML_EVAL" with Some "interp" -> true | _ -> false
    in
    (if use_interp then (
       (* Reference oracle: walk the Expr.t ASTs through closures for
          every row. Kept selectable via ZKML_EVAL=interp so tests can
          assert the compiled program is byte-identical. *)
       Metrics.phase "quotient_interp" @@ fun () ->
       Obs.Span.with_ ~name:"quotient.interp" @@ fun () ->
       Obs.count "quotient.rows" ext_n;
       let rot = rot_index ~ext_n ~factor in
       Pool.parallel_for_ranges ~seq_below:256 ext_n (fun row_lo row_hi ->
           for i = row_lo to row_hi - 1 do
             let ctx =
               {
                 c_fixed = (fun col r -> fixed_ext.(col).(rot i r));
                 c_advice = (fun col r -> adv_ext.(col).(rot i r));
                 c_instance = (fun col r -> inst_ext.(col).(rot i r));
                 c_challenge = (fun idx -> challenges.(idx));
                 c_col =
                   (function
                   | Circuit.Col_fixed c -> fixed_ext.(c).(i)
                   | Circuit.Col_advice c -> adv_ext.(c).(i)
                   | Circuit.Col_instance c -> inst_ext.(c).(i));
                 c_sigma = (fun m -> sigma_ext.(m).(i));
                 c_perm_z =
                   (fun j r ->
                     match r with
                     | `R0 -> perm_z_ext.(j).(i)
                     | `R1 -> perm_z_ext.(j).(rot i 1)
                     | `Ru -> perm_z_ext.(j).(rot i u));
                 c_look =
                   (fun li what ->
                     match what with
                     | `Z0 -> look_z_ext.(li).(i)
                     | `Z1 -> look_z_ext.(li).(rot i 1)
                     | `A0 -> look_a'_ext.(li).(i)
                     | `Am1 -> look_a'_ext.(li).(rot i (-1))
                     | `S0 -> look_s'_ext.(li).(i));
                 c_l0 = l0_ext.(i);
                 c_llast = llast_ext.(i);
                 c_lblind = lblind_ext.(i);
                 c_point = coset_points.(i);
               }
             in
             quotient_evals.(i) <- combine_terms keys ~beta ~gamma ~theta ~y ctx
           done))
     else
       (* Compiled path: run the flat register program from keygen over
          the extended-coset column bank — no per-row closures, no AST
          walks. The bank layout matches Evaluator.layout: the all_ext
          concatenation above, with the coset points as the last
          column. *)
       Metrics.phase "quotient_compiled" @@ fun () ->
       Obs.Span.with_ ~name:"quotient.compiled" @@ fun () ->
       Obs.count "quotient.rows" ext_n;
       let bank = Array.append all_ext [| coset_points |] in
       let scalars = Ev.pack_scalars ~challenges ~theta ~beta ~gamma ~y in
       Pool.parallel_for_ranges ~seq_below:256 ext_n (fun lo hi ->
           Ev.eval_rows_into keys.eval_prog ~bank ~scalars ~factor
             ~out:quotient_evals ~lo ~hi));
    (* divide by Z_H(X) = X^n - 1 on the coset: the values cycle with
       period [factor]. *)
    let zh = Array.init factor (fun i -> F.sub (F.pow_int coset_points.(i) n) F.one) in
    let zh_inv = Extra.batch_inv zh in
    Pool.parallel_for_ranges ~seq_below:(1 lsl 14) ext_n (fun lo hi ->
        for i = lo to hi - 1 do
          quotient_evals.(i) <- F.mul quotient_evals.(i) zh_inv.(i mod factor)
        done);
    let h_coeffs = P.coset_intt keys.ext_domain ~shift quotient_evals in
    let h_pieces =
      Array.init factor (fun j ->
          Array.sub h_coeffs (j * n) n)
    in
    let h_commits = Scheme.commit_many scheme_params h_pieces in
      (h_pieces, h_commits)
    in
    Array.iter
      (fun c -> T.absorb_bytes transcript ~label:"h" (G.to_bytes c))
      h_commits;
    let x = Ch.squeeze_nonzero transcript ~label:"x" in
    (* --- evaluations --- *)
    let plan = opening_plan keys in
    let poly_of_source = function
      | Src_fixed i -> keys.fixed_polys.(i)
      | Src_advice i -> adv_polys.(i)
      | Src_sigma i -> keys.sigma_polys.(i)
      | Src_perm_z j -> perm_z_polys.(j)
      | Src_look_a li -> look_a_polys.(li)
      | Src_look_s li -> look_s_polys.(li)
      | Src_look_z li -> look_z_polys.(li)
      | Src_h j -> h_pieces.(j)
    in
    let evals =
      Obs.Span.with_ ~name:"evals" @@ fun () ->
      Obs.count "proof.evals" (List.length plan);
      Pool.parallel_map_array
        (fun (src, r) -> P.eval (poly_of_source src) (point_of_rot keys x r))
        (Array.of_list plan)
    in
    Ch.absorb_scalars transcript ~label:"evals" (Array.to_list evals);
    (* --- multi-open: batch per distinct rotation --- *)
    let v = Ch.squeeze_nonzero transcript ~label:"multiopen-v" in
    let rotations = distinct_rotations plan in
    let openings =
      Obs.Span.with_ ~name:"multiopen" @@ fun () ->
      List.map
        (fun rot_r ->
          let group = List.filter (fun (_, r) -> r = rot_r) plan in
          let combined = ref P.zero in
          let vi = ref F.one in
          List.iter
            (fun (src, _) ->
              combined := P.add !combined (P.scale !vi (poly_of_source src));
              vi := F.mul !vi v)
            group;
          let _, pf =
            Scheme.open_at scheme_params transcript !combined
              (point_of_rot keys x rot_r)
          in
          pf)
        rotations
      |> Array.of_list
    in
    ignore x;
    {
      adv_commits;
      look_a_commits;
      look_s_commits;
      perm_z_commits;
      look_z_commits;
      h_commits;
      evals;
      openings;
    }

  (* ------------------------------------------------------------------ *)
  (* Batch proving: one cached circuit, many witnesses. The keys carry
     the domain (with its twiddle tables) and the fixed/sigma artifacts,
     so everything input-independent is computed once; each job's proof
     is bit-for-bit what a standalone [prove] call would produce. *)

  type prove_job = {
    job_instance : F.t array array;
    job_advice : F.t array -> F.t array array;
    job_rng : Zkml_util.Rng.t;
  }

  let prove_many scheme_params keys jobs =
    Obs.Span.with_ ~name:"prove_many" @@ fun () ->
    Obs.count "batch.proofs" (List.length jobs);
    Metrics.observe_in
      ~labels:[ ("op", "prove") ]
      ~help:"Batch sizes seen by prove_many/verify_many" "zkml_batch_size"
      (float_of_int (List.length jobs));
    List.map
      (fun job ->
        prove scheme_params keys ~instance:job.job_instance
          ~advice:job.job_advice ~rng:job.job_rng)
      jobs

  (* ------------------------------------------------------------------ *)
  (* Verifier. [verify_collect] replays the transcript and evaluates
     every scalar-level check (structure, quotient identity), reducing
     the proof to its per-rotation deferred opening claims; [verify]
     evaluates each claim as its own final check, [verify_many] RLCs the
     claims of a whole batch into one. *)

  let verify_collect scheme_params keys ~(instance : F.t array array) proof =
    let circuit = keys.circuit in
    let n = Circuit.n circuit in
    let u = Circuit.last_row circuit in
    let transcript = init_transcript keys ~instance in
    let num_adv = Circuit.num_advice circuit in
    if Array.length proof.adv_commits <> num_adv then None
    else begin
      (* replay transcript *)
      for i = 0 to num_adv - 1 do
        if circuit.advice_phases.(i) = 0 then
          T.absorb_bytes transcript ~label:"advice"
            (G.to_bytes proof.adv_commits.(i))
      done;
      let challenges =
        Array.init circuit.num_challenges (fun _ ->
            Ch.squeeze_nonzero transcript ~label:"challenge")
      in
      if Array.exists (fun p -> p = 1) circuit.advice_phases then
        for i = 0 to num_adv - 1 do
          if circuit.advice_phases.(i) = 1 then
            T.absorb_bytes transcript ~label:"advice"
              (G.to_bytes proof.adv_commits.(i))
        done;
      let theta = Ch.squeeze_nonzero transcript ~label:"theta" in
      let num_lookups = List.length circuit.lookups in
      for li = 0 to num_lookups - 1 do
        T.absorb_bytes transcript ~label:"look-a"
          (G.to_bytes proof.look_a_commits.(li));
        T.absorb_bytes transcript ~label:"look-s"
          (G.to_bytes proof.look_s_commits.(li))
      done;
      let beta = Ch.squeeze_nonzero transcript ~label:"beta" in
      let gamma = Ch.squeeze_nonzero transcript ~label:"gamma" in
      Array.iter
        (fun c -> T.absorb_bytes transcript ~label:"perm-z" (G.to_bytes c))
        proof.perm_z_commits;
      Array.iter
        (fun c -> T.absorb_bytes transcript ~label:"look-z" (G.to_bytes c))
        proof.look_z_commits;
      let y = Ch.squeeze_nonzero transcript ~label:"y" in
      Array.iter
        (fun c -> T.absorb_bytes transcript ~label:"h" (G.to_bytes c))
        proof.h_commits;
      let x = Ch.squeeze_nonzero transcript ~label:"x" in
      Ch.absorb_scalars transcript ~label:"evals" (Array.to_list proof.evals);
      let v = Ch.squeeze_nonzero transcript ~label:"multiopen-v" in
      (* eval lookup table: (source, rot) -> value *)
      let plan = opening_plan keys in
      if List.length plan <> Array.length proof.evals then None
      else begin
        let eval_map = Hashtbl.create 64 in
        List.iteri
          (fun i (src, r) -> Hashtbl.replace eval_map (src, r) proof.evals.(i))
          plan;
        let get src r =
          match Hashtbl.find_opt eval_map (src, r) with
          | Some vv -> vv
          | None -> invalid_arg "verify: missing evaluation"
        in
        (* instance evaluations computed locally *)
        let _, _, instance_rots = column_rotations circuit in
        let inst_evals = Hashtbl.create 16 in
        let inst_polys = P.interpolate_many keys.domain instance in
        Array.iteri
          (fun col rots ->
            let poly = inst_polys.(col) in
            List.iter
              (fun r ->
                let pt = point_of_rot keys x r in
                Hashtbl.replace inst_evals (col, r) (P.eval poly pt))
              rots)
          instance_rots;
        (* Lagrange values at x *)
        let l0 = P.Domain.eval_lagrange keys.domain 0 x in
        let llast = P.Domain.eval_lagrange keys.domain u x in
        let lblind =
          let idx = List.init (n - u - 1) (fun i -> u + 1 + i) in
          List.fold_left F.add F.zero
            (P.Domain.eval_lagrange_many keys.domain idx x)
        in
        let ctx =
          {
            c_fixed = (fun col r -> get (Src_fixed col) r);
            c_advice = (fun col r -> get (Src_advice col) r);
            c_instance =
              (fun col r ->
                match Hashtbl.find_opt inst_evals (col, r) with
                | Some vv -> vv
                | None -> invalid_arg "verify: missing instance eval");
            c_challenge = (fun i -> challenges.(i));
            c_col =
              (function
              | Circuit.Col_fixed c -> get (Src_fixed c) 0
              | Circuit.Col_advice c -> get (Src_advice c) 0
              | Circuit.Col_instance c -> (
                  match Hashtbl.find_opt inst_evals (c, 0) with
                  | Some vv -> vv
                  | None -> invalid_arg "verify: missing instance eval"));
            c_sigma = (fun m -> get (Src_sigma m) 0);
            c_perm_z =
              (fun j r ->
                match r with
                | `R0 -> get (Src_perm_z j) 0
                | `R1 -> get (Src_perm_z j) 1
                | `Ru -> get (Src_perm_z j) u);
            c_look =
              (fun li what ->
                match what with
                | `Z0 -> get (Src_look_z li) 0
                | `Z1 -> get (Src_look_z li) 1
                | `A0 -> get (Src_look_a li) 0
                | `Am1 -> get (Src_look_a li) (-1)
                | `S0 -> get (Src_look_s li) 0);
            c_l0 = l0;
            c_llast = llast;
            c_lblind = lblind;
            c_point = x;
          }
        in
        let expected = combine_terms keys ~beta ~gamma ~theta ~y ctx in
        let xn = F.pow_int x n in
        let h_at_x =
          let acc = ref F.zero in
          for j = keys.ext_factor - 1 downto 0 do
            acc := F.add (F.mul !acc xn) (get (Src_h j) 0)
          done;
          !acc
        in
        let identity_ok =
          F.equal expected (F.mul h_at_x (F.sub xn F.one))
        in
        if not identity_ok then None
        else begin
          (* reduce the batched openings to deferred claims *)
          let commitment_of = function
            | Src_fixed i -> keys.fixed_commits.(i)
            | Src_advice i -> proof.adv_commits.(i)
            | Src_sigma i -> keys.sigma_commits.(i)
            | Src_perm_z j -> proof.perm_z_commits.(j)
            | Src_look_a li -> proof.look_a_commits.(li)
            | Src_look_s li -> proof.look_s_commits.(li)
            | Src_look_z li -> proof.look_z_commits.(li)
            | Src_h j -> proof.h_commits.(j)
          in
          let rotations = distinct_rotations plan in
          if List.length rotations <> Array.length proof.openings then None
          else begin
            let deferred = ref [] and ok = ref true in
            List.iteri
              (fun idx rot_r ->
                let group = List.filter (fun (_, r) -> r = rot_r) plan in
                let combined_c = ref G.zero and combined_e = ref F.zero in
                let vi = ref F.one in
                List.iter
                  (fun (src, r) ->
                    combined_c :=
                      Scheme.add_commitment !combined_c
                        (Scheme.scale_commitment (commitment_of src) !vi);
                    combined_e := F.add !combined_e (F.mul (get src r) !vi);
                    vi := F.mul !vi v)
                  group;
                let pt = point_of_rot keys x rot_r in
                match
                  Scheme.verify_deferred scheme_params transcript !combined_c
                    ~point:pt ~value:!combined_e proof.openings.(idx)
                with
                | Some d -> deferred := d :: !deferred
                | None -> ok := false)
              rotations;
            if !ok then Some (List.rev !deferred) else None
          end
        end
      end
    end

  let verify scheme_params keys ~(instance : F.t array array) proof =
    Metrics.phase "verify" @@ fun () ->
    Obs.Span.with_ ~name:"verify" @@ fun () ->
    match verify_collect scheme_params keys ~instance proof with
    | None -> false
    | Some deferred ->
        (* one final check per distinct rotation, exactly the historical
           sequential-verification cost *)
        List.for_all
          (fun d ->
            Scheme.deferred_check scheme_params
              ~next_coeff:(fun () -> F.one)
              [ d ])
          deferred

  (** Verify a batch of proofs over one circuit with a single deferred
      final check: every per-proof transcript is replayed and every
      scalar check evaluated as usual, but the opening claims of the
      whole batch are combined by a random linear combination whose
      coefficients are squeezed from a transcript that absorbed every
      (instance, proof) pair — so one group equation (one simulated
      pairing for KZG, one size-n MSM for IPA) covers the batch. The
      check localizes nothing: a batch with any false member rejects as
      a whole. *)
  let verify_many scheme_params keys ~(batch : (F.t array array * proof) list)
      =
    Obs.Span.with_ ~name:"verify_many" @@ fun () ->
    Obs.count "batch.verified" (List.length batch);
    Metrics.observe_in
      ~labels:[ ("op", "verify") ]
      ~help:"Batch sizes seen by prove_many/verify_many" "zkml_batch_size"
      (float_of_int (List.length batch));
    let collected =
      List.map
        (fun (instance, proof) ->
          verify_collect scheme_params keys ~instance proof)
        batch
    in
    if List.exists (fun c -> c = None) collected then false
    else begin
      let deferred =
        List.concat_map (function Some ds -> ds | None -> []) collected
      in
      (* RLC coefficients bound to the full batch statement *)
      let bt = T.create "zkml-batch-verify" in
      List.iter
        (fun (instance, proof) ->
          Array.iter
            (fun col ->
              Ch.absorb_scalars bt ~label:"instance" (Array.to_list col))
            instance;
          T.absorb_bytes bt ~label:"proof"
            (Zkml_util.Sha256.digest (proof_to_bytes proof)))
        batch;
      deferred = []
      || Scheme.deferred_check scheme_params
           ~next_coeff:(fun () -> Ch.squeeze_nonzero bt ~label:"batch-rlc")
           deferred
    end

  (* ------------------------------------------------------------------ *)
  (* Never-raising verification of untrusted proof bytes *)

  (** Three-way outcome: [Malformed] means the bytes never were a proof
      (parse-level failure, with the reason); [Rejected] means a
      structurally valid proof that does not verify; [Accepted] means it
      verifies. The CLI maps these to exit codes 2 / 1 / 0. *)
  type verdict = Accepted | Rejected | Malformed of Err.t

  let verdict_string = function
    | Accepted -> "accepted"
    | Rejected -> "rejected"
    | Malformed e -> "malformed: " ^ Err.to_string e

  (* Verdict-by-code tally: the single library-level counting point for
     proof judgements on untrusted bytes (the pipeline adds its own
     instance-level malformed short-circuits; see Pipeline). *)
  let tally_verdict v =
    let code =
      match v with
      | Accepted -> "accepted"
      | Rejected -> "rejected"
      | Malformed _ -> "malformed"
    in
    Metrics.inc
      ~labels:[ ("verdict", code) ]
      ~help:"Verifier verdicts on untrusted proof bytes"
      "zkml_verify_verdicts_total" 1.0;
    v

  let verify_bytes scheme_params keys ~instance bytes =
    tally_verdict
    @@ match proof_of_bytes scheme_params keys bytes with
    | Error e -> Malformed e
    | Ok proof -> (
        (* [verify] on a structurally complete proof has no raising
           paths left, but a verifier judging adversarial input must not
           depend on that invariant: classify any internal raise instead
           of propagating it. *)
        match
          Err.guard Err.Invalid_encoding (fun () ->
              verify scheme_params keys ~instance proof)
        with
        | Ok true -> Accepted
        | Ok false -> Rejected
        | Error e -> Malformed (Err.with_context "verify" e))

  (** Batched {!verify_bytes}: parse every proof, then judge the batch
      with {!verify_many}. Total over adversarial bytes — any parse
      failure surfaces as [Malformed] (tagged with the failing member's
      index), a structurally valid batch that fails the combined check
      as [Rejected]. *)
  let verify_many_bytes scheme_params keys
      ~(batch : (F.t array array * string) list) =
    let rec parse acc i = function
      | [] -> Ok (List.rev acc)
      | (instance, bytes) :: rest -> (
          match proof_of_bytes scheme_params keys bytes with
          | Error e ->
              Error (Err.with_context (Printf.sprintf "batch[%d]" i) e)
          | Ok proof -> parse ((instance, proof) :: acc) (i + 1) rest)
    in
    tally_verdict
    @@ match parse [] 0 batch with
    | Error e -> Malformed e
    | Ok parsed -> (
        match
          Err.guard Err.Invalid_encoding (fun () ->
              verify_many scheme_params keys ~batch:parsed)
        with
        | Ok true -> Accepted
        | Ok false -> Rejected
        | Error e -> Malformed (Err.with_context "verify_many" e))

  (* ------------------------------------------------------------------ *)
  (* Split-and-aggregate: a model cut into segments, each its own
     circuit with its own (smaller) keys. [prove_segmented] mirrors
     [prove_many] but carries per-segment keys and wraps each segment in
     a labelled span, so profiles attribute ntt/msm/commit/quotient time
     per segment; [verify_segmented] folds every segment's deferred
     opening claims into a single RLC final check — one group equation
     regardless of segment count. The claims live at the commitment-
     scheme level over the shared SRS, so combining across different
     circuits is exactly as sound as [verify_many]'s combination across
     proofs. *)

  let segment_seconds phase =
    Metrics.histogram
      ~labels:[ ("phase", phase) ]
      ~help:"Per-segment wall-clock by phase" "zkml_segment_seconds"

  let prove_segmented scheme_params (jobs : (keys * prove_job) list) =
    Obs.Span.with_ ~name:"prove_segmented" @@ fun () ->
    Obs.count "segments.proved" (List.length jobs);
    Metrics.observe_in
      ~labels:[ ("op", "prove") ]
      ~help:"Batch sizes seen by prove_many/verify_many" "zkml_batch_size"
      (float_of_int (List.length jobs));
    let h = segment_seconds "prove" in
    List.mapi
      (fun i (keys, job) ->
        Obs.Span.with_ ~name:(Printf.sprintf "segment-%d" i) @@ fun () ->
        Metrics.time h @@ fun () ->
        prove scheme_params keys ~instance:job.job_instance
          ~advice:job.job_advice ~rng:job.job_rng)
      jobs

  (** Verify one proof per segment with a single deferred final check:
      each segment's transcript is replayed against its own keys and
      every scalar check evaluated as usual, then the opening claims of
      all segments are combined by an RLC whose coefficients are
      squeezed from a transcript bound to every (instance, proof) pair.
      Seam equality between segment instances is the caller's check
      (see Seg_proof) — this function judges only the proofs. *)
  let verify_segmented scheme_params
      ~(batch : (keys * F.t array array * proof) list) =
    Obs.Span.with_ ~name:"verify_segmented" @@ fun () ->
    Obs.count "segments.verified" (List.length batch);
    let h = segment_seconds "verify" in
    let collected =
      List.map
        (fun (keys, instance, proof) ->
          Metrics.time h @@ fun () ->
          verify_collect scheme_params keys ~instance proof)
        batch
    in
    if List.exists (fun c -> c = None) collected then false
    else begin
      let deferred =
        List.concat_map (function Some ds -> ds | None -> []) collected
      in
      (* RLC coefficients bound to the full multi-segment statement *)
      let bt = T.create "zkml-segment-verify" in
      List.iter
        (fun (_, instance, proof) ->
          Array.iter
            (fun col ->
              Ch.absorb_scalars bt ~label:"instance" (Array.to_list col))
            instance;
          T.absorb_bytes bt ~label:"proof"
            (Zkml_util.Sha256.digest (proof_to_bytes proof)))
        batch;
      deferred = []
      || Scheme.deferred_check scheme_params
           ~next_coeff:(fun () -> Ch.squeeze_nonzero bt ~label:"segment-rlc")
           deferred
    end

  (** {!verify_segmented} over untrusted proof bytes: total, with the
      failing segment's index in the error context. *)
  let verify_segmented_bytes scheme_params
      ~(batch : (keys * F.t array array * string) list) =
    let rec parse acc i = function
      | [] -> Ok (List.rev acc)
      | (keys, instance, bytes) :: rest -> (
          match proof_of_bytes scheme_params keys bytes with
          | Error e ->
              Error (Err.with_context (Printf.sprintf "segment[%d]" i) e)
          | Ok proof -> parse ((keys, instance, proof) :: acc) (i + 1) rest)
    in
    tally_verdict
    @@ match parse [] 0 batch with
    | Error e -> Malformed e
    | Ok parsed -> (
        match
          Err.guard Err.Invalid_encoding (fun () ->
              verify_segmented scheme_params ~batch:parsed)
        with
        | Ok true -> Accepted
        | Ok false -> Rejected
        | Error e -> Malformed (Err.with_context "verify_segmented" e))
end
