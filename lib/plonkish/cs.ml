(** Typed constraint IR.

    {!Circuit} is the untyped wire format the protocol consumes: a bag
    of polynomial expressions that must vanish, with selector gating,
    lookup defaults and table references all pre-flattened into the
    expression trees. This module is the typed source of truth the
    compiler emits instead (the koika [interp_circuit] idiom: a typed
    circuit datatype plus a reference interpreter):

    - a {!gate} is a named selector column plus a list of {e ungated}
      constraint bodies — the semantics "on every row where the selector
      is 1, each body evaluates to 0" is carried by the type, not by an
      [E.Mul (sel, body)] convention;
    - a {!lookup} names its selector, its typed inputs (plainly gated or
      gated-with-default) and the {e fixed table columns} it reads — not
      arbitrary expressions, so a checker can enumerate table rows;
    - copies are cell pairs, as in {!Circuit}.

    {!to_circuit} erases the types back into exactly the expression
    trees the legacy emission produced (structurally identical ASTs), so
    keys, transcripts and proofs are byte-for-byte unchanged.

    {!Check} is a total reference evaluator for the IR, independent of
    the quotient machinery in {!Evaluator}: it walks every constraint on
    every row directly (the denotational reading of the circuit as
    equality constraints) and returns the list of violations. The
    under-constraint detector in [lib/compiler] is built on it. *)

type cell = Circuit.any_col * int

(** A custom gate: on every row, [sel * body = 0] for each body. The
    selector column is 0/1-valued, so the bodies must vanish on every
    row the selector covers. *)
type 'f gate = {
  g_name : string;
  g_sel : int;  (** fixed (selector) column *)
  g_bodies : 'f Expr.t list;  (** un-gated constraint bodies *)
}

(** A lookup input, typed by its behaviour on rows where the selector is
    0 (rows owned by other gadget kinds, padding rows): *)
type 'f lookup_input =
  | Li_gated of 'f Expr.t
      (** [sel * e]: reads as [e] on active rows and as [0] on disabled
          rows — the table must therefore contain 0 in this coordinate *)
  | Li_gated_default of 'f Expr.t * 'f
      (** [sel * e + (1 - sel) * d]: reads as [e] on active rows and as
          the default [d] on disabled rows *)

(** A lookup argument: on every usable row, the tuple of evaluated
    inputs must equal the tuple of table-column entries of {e some}
    usable row. *)
type 'f lookup = {
  l_name : string;
  l_sel : int;  (** fixed (selector) column gating the inputs *)
  l_inputs : 'f lookup_input list;
  l_tables : int list;  (** fixed table columns, one per input *)
}

type 'f t = {
  cs_num_fixed : int;
  cs_num_advice : int;
  cs_num_instance : int;
  cs_gates : 'f gate list;
  cs_lookups : 'f lookup list;
  cs_copies : (cell * cell) list;
}

(* ------------------------------------------------------------------ *)
(* Erasure to the wire-format circuit pieces. The reconstructed ASTs
   must match the legacy emission *structurally* (same constructors in
   the same places), because expression identity feeds the compiled
   evaluator's CSE and the degree computation. *)

let sel_expr sel = Expr.Fixed { Expr.col = sel; rot = 0 }

let gate_poly ~sel body = Expr.Mul (sel_expr sel, body)

let lookup_input_expr ~one ~sel = function
  | Li_gated e -> Expr.Mul (sel_expr sel, e)
  | Li_gated_default (e, d) ->
      Expr.Add
        ( Expr.Mul (sel_expr sel, e),
          Expr.Mul (Expr.Sub (Expr.Const one, sel_expr sel), Expr.Const d) )

let to_gate (g : 'f gate) : 'f Circuit.gate =
  {
    Circuit.gate_name = g.g_name;
    polys = List.map (gate_poly ~sel:g.g_sel) g.g_bodies;
  }

let to_lookup ~one (l : 'f lookup) : 'f Circuit.lookup =
  {
    Circuit.lookup_name = l.l_name;
    inputs = List.map (lookup_input_expr ~one ~sel:l.l_sel) l.l_inputs;
    tables = List.map (fun c -> Expr.Fixed { Expr.col = c; rot = 0 }) l.l_tables;
  }

(** The value an input takes on a row where the selector is 0. *)
let disabled_value ~zero = function
  | Li_gated _ -> zero
  | Li_gated_default (_, d) -> d

let map_input f = function
  | Li_gated e -> Li_gated (Expr.map_const f e)
  | Li_gated_default (e, d) -> Li_gated_default (Expr.map_const f e, f d)

let map_const f t =
  {
    t with
    cs_gates =
      List.map
        (fun g -> { g with g_bodies = List.map (Expr.map_const f) g.g_bodies })
        t.cs_gates;
    cs_lookups =
      List.map
        (fun l -> { l with l_inputs = List.map (map_input f) l.l_inputs })
        t.cs_lookups;
  }

(* ------------------------------------------------------------------ *)
(* Reference checker *)

type violation =
  | V_gate of { gate : string; body : int; row : int }
      (** [body]-th constraint of [gate] does not vanish at [row] *)
  | V_lookup of { lookup : string; row : int }
      (** the input tuple at [row] is not a usable table row *)
  | V_lookup_default of { lookup : string }
      (** the disabled-row tuple (the inputs' defaults) is missing from
          the table, so every row not owned by the gadget is
          unsatisfiable *)
  | V_copy of { a : cell; b : cell }  (** copied cells hold different values *)
  | V_structure of { what : string }
      (** malformed IR: a query outside the declared grids *)

let pp_col = function
  | Circuit.Col_fixed i -> Printf.sprintf "fixed[%d]" i
  | Circuit.Col_advice i -> Printf.sprintf "advice[%d]" i
  | Circuit.Col_instance i -> Printf.sprintf "instance[%d]" i

let violation_to_string = function
  | V_gate { gate; body; row } ->
      Printf.sprintf "gate '%s' constraint %d violated at row %d" gate body row
  | V_lookup { lookup; row } ->
      Printf.sprintf "lookup '%s' input tuple at row %d not in table" lookup row
  | V_lookup_default { lookup } ->
      Printf.sprintf "lookup '%s': disabled-row default tuple not in table"
        lookup
  | V_copy { a = ca, ra; b = cb, rb } ->
      Printf.sprintf "copy constraint violated: %s row %d <> %s row %d"
        (pp_col ca) ra (pp_col cb) rb
  | V_structure { what } -> Printf.sprintf "malformed constraint system: %s" what

(** Total reference interpreter over any field. Evaluates the
    denotational semantics of the IR directly: gates on all [n] rows
    (blinding rows are covered because selectors vanish there), lookups
    and copies on the usable-row prefix, mirroring the protocol's
    active-row factor. Never raises — structural problems come back as
    {!V_structure}. *)
module Check (F : sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val to_bytes : t -> string
end) =
struct
  exception Bad_structure of string

  type grids = {
    n : int;  (** 2^k rows *)
    usable : int;  (** rows [0, usable) carry content and tables *)
    fixed : F.t array array;
    advice : F.t array array;
    instance : F.t array array;
  }

  let cell_at g (col, row) =
    let grab grid i what =
      if i < 0 || i >= Array.length grid then
        raise (Bad_structure (Printf.sprintf "%s column %d out of range" what i))
      else grid.(i).(row)
    in
    match col with
    | Circuit.Col_fixed i -> grab g.fixed i "fixed"
    | Circuit.Col_advice i -> grab g.advice i "advice"
    | Circuit.Col_instance i -> grab g.instance i "instance"

  let eval_at g ~row e =
    let at grid what (col : int) rot =
      if col < 0 || col >= Array.length grid then
        raise
          (Bad_structure (Printf.sprintf "%s column %d out of range" what col))
      else begin
        let r = (row + rot) mod g.n in
        let r = if r < 0 then r + g.n else r in
        grid.(col).(r)
      end
    in
    Expr.eval ~fixed_at:(at g.fixed "fixed") ~advice_at:(at g.advice "advice")
      ~instance_at:(at g.instance "instance")
      ~challenge:(fun _ -> raise (Bad_structure "challenge in compiler IR"))
      ~add:F.add ~sub:F.sub ~mul:F.mul ~neg:F.neg ~scale:F.mul e

  (* Lookup membership works on serialized tuples so collision-free
     hashing needs nothing from the field beyond [to_bytes]. *)
  let tuple_key vs = String.concat "|" (List.map F.to_bytes vs)

  let table_rows g (l : F.t lookup) =
    let set = Hashtbl.create 256 in
    for row = 0 to g.usable - 1 do
      let tup = List.map (fun c -> cell_at g (Circuit.Col_fixed c, row)) l.l_tables in
      Hashtbl.replace set (tuple_key tup) ()
    done;
    set

  let input_value g ~row ~sel input =
    let s = cell_at g (Circuit.Col_fixed sel, row) in
    match input with
    | Li_gated e -> F.mul s (eval_at g ~row e)
    | Li_gated_default (e, d) ->
        F.add (F.mul s (eval_at g ~row e)) (F.mul (F.sub F.one s) d)

  (** Check one gate on one row. *)
  let gate_holds_at g (gate : F.t gate) ~row =
    let s = cell_at g (Circuit.Col_fixed gate.g_sel, row) in
    if F.is_zero s then `Ok
    else begin
      let rec go i = function
        | [] -> `Ok
        | b :: rest ->
            if F.is_zero (F.mul s (eval_at g ~row b)) then go (i + 1) rest
            else `Violated i
      in
      go 0 gate.g_bodies
    end

  (** Check one lookup's input tuple on one row against a precomputed
      table-row set. *)
  let lookup_holds_at g (l : F.t lookup) ~table ~row =
    let tup = List.map (input_value g ~row ~sel:l.l_sel) l.l_inputs in
    Hashtbl.mem table (tuple_key tup)

  (** Static check: the all-defaults tuple must be a table row, or every
      row not owned by the gadget is unsatisfiable (and a malicious
      table could make them spuriously pass; see lower.ml
      [add_range_lookup]). *)
  let defaults_in_table (l : F.t lookup) ~table =
    let tup = List.map (disabled_value ~zero:F.zero) l.l_inputs in
    Hashtbl.mem table (tuple_key tup)

  let check (cs : F.t t) (g : grids) : violation list =
    let out = ref [] in
    let push v = out := v :: !out in
    (try
       (* gates: every row of the domain (selectors vanish outside the
          rows their kind owns, including blinding rows) *)
       List.iter
         (fun gate ->
           for row = 0 to g.n - 1 do
             match gate_holds_at g gate ~row with
             | `Ok -> ()
             | `Violated body -> push (V_gate { gate = gate.g_name; body; row })
           done)
         cs.cs_gates;
       (* lookups: the protocol's active-row factor covers [0, usable) *)
       List.iter
         (fun l ->
           let table = table_rows g l in
           if not (defaults_in_table l ~table) then
             push (V_lookup_default { lookup = l.l_name });
           for row = 0 to g.usable - 1 do
             if not (lookup_holds_at g l ~table ~row) then
               push (V_lookup { lookup = l.l_name; row })
           done)
         cs.cs_lookups;
       (* copies (the permutation argument's semantics over usable rows) *)
       List.iter
         (fun (a, b) ->
           if not (F.equal (cell_at g a) (cell_at g b)) then
             push (V_copy { a; b }))
         cs.cs_copies
     with Bad_structure what -> push (V_structure { what }));
    List.rev !out

  let accepts cs g = check cs g = []
end
