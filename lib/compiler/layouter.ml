(** The circuit layouter: packs gadget instances into grid rows for a
    given number of advice columns. One code path serves both the
    optimizer's row-exact circuit simulation (§7.3 — [counting = true],
    values and copies are not recorded) and the final circuit
    construction, so the simulated row counts are exact by construction.

    Everything here is field-independent ([int] values and [int]
    expression constants); the pipeline maps into the field at the end.
    Layout conventions per gadget are documented on their [emit_]
    functions in {!Lower}. *)

module Fx = Zkml_fixed.Fixed
module C = Zkml_plonkish.Circuit
module Cs = Zkml_plonkish.Cs
module E = Zkml_plonkish.Expr
module Vec = Zkml_util.Vec

exception Layout_invalid of string

(** Reference to a grid cell holding a value. *)
type cref =
  | Adv of int * int  (** advice (col, row) *)
  | Fix of int * int  (** fixed constants (col, row) *)

type fixed_content =
  | Selector of int list ref  (** rows where the selector is 1 *)
  | Table_col of int array
  | Constants

type t = {
  ncols : int;
  cfg : Fx.config;
  counting : bool;
  advice : int Vec.t array;
  mutable nrows : int;
  open_lanes : (string, int * int ref) Hashtbl.t;
  mutable num_fixed : int;
  fixed_meta : (int * fixed_content) Vec.t;  (* (is_selector as 0/1 via content) *)
  selector_cols : (string, int) Hashtbl.t;
  table_cols : (string, int) Hashtbl.t;  (* first column of the table *)
  mutable gates : int Cs.gate list;  (* typed IR, reverse order *)
  mutable lookups : int Cs.lookup list;
  mutable num_lookup_tables : int;
  mutable copies : (cref * cref) list;
  instance : int Vec.t;
  mutable instance_copies : (cref * int) list;  (* cell = instance row *)
  constants : (int, int) Hashtbl.t;  (* value -> row in constants column *)
  const_values : int Vec.t;
  row_kinds : string Vec.t;  (* gadget kind owning each content row *)
  tracked : (int * int, unit) Hashtbl.t;
      (* semantic advice cells (col, row): gadget outputs, auxiliary
         witnesses and io cells — the cells the constraint system is
         supposed to pin down, and so the under-constraint detector's
         perturbation targets. Operand placements that merely *claim* a
         fresh cell (weights: existentially quantified) and lane
         prefills (dead filler) are written with [~track:false]. *)
}

let create ~ncols ~cfg ~counting =
  if ncols < 4 then raise (Layout_invalid "need at least 4 advice columns");
  let t =
    {
      ncols;
      cfg;
      counting;
      advice = Array.init ncols (fun _ -> Vec.create 0);
      nrows = 0;
      open_lanes = Hashtbl.create 16;
      num_fixed = 0;
      fixed_meta = Vec.create (0, Constants);
      selector_cols = Hashtbl.create 16;
      table_cols = Hashtbl.create 16;
      gates = [];
      lookups = [];
      num_lookup_tables = 0;
      copies = [];
      instance = Vec.create 0;
      instance_copies = [];
      constants = Hashtbl.create 16;
      const_values = Vec.create 0;
      row_kinds = Vec.create "";
      tracked = Hashtbl.create 256;
    }
  in
  (* column 0 is the shared constants column *)
  Vec.push t.fixed_meta (0, Constants);
  t.num_fixed <- 1;
  ignore (Hashtbl.add t.constants 0 0);
  Vec.push t.const_values 0;
  t

let sf t = Fx.sf t.cfg

(** Row index of a shared constant in the constants column. *)
let constant t v =
  match Hashtbl.find_opt t.constants v with
  | Some row -> row
  | None ->
      let row = Vec.length t.const_values in
      Vec.push t.const_values v;
      Hashtbl.add t.constants v row;
      row

let constant_cell t v = Fix (0, constant t v)

let new_selector t kind =
  let col = t.num_fixed in
  t.num_fixed <- col + 1;
  Vec.push t.fixed_meta (1, Selector (ref []));
  Hashtbl.add t.selector_cols kind col;
  col

let new_table t key cols =
  let first = t.num_fixed in
  Array.iter
    (fun content ->
      Vec.push t.fixed_meta (0, Table_col content);
      t.num_fixed <- t.num_fixed + 1)
    cols;
  Hashtbl.add t.table_cols key first;
  t.num_lookup_tables <- t.num_lookup_tables + 1;
  first

(** Install a custom gate for the typed IR: on every row,
    [sel * body = 0] for each of [bodies]. *)
let add_gate t ~sel name bodies =
  t.gates <- { Cs.g_name = name; g_sel = sel; g_bodies = bodies } :: t.gates

let table_column t col =
  match Vec.get t.fixed_meta col with
  | _, Table_col content -> content
  | _ ->
      raise
        (Layout_invalid
           (Printf.sprintf "lookup table column %d is not a table" col))

(** Install a lookup argument: typed inputs against the table columns
    [tables]. Statically checks that the tuple of disabled-row defaults
    (0 for {!Cs.Li_gated}, [d] for {!Cs.Li_gated_default}) is a real
    table row — the selector only covers rows the gadget owns, so every
    other usable row (other kinds' rows, padding) looks the defaults up,
    and a table missing that tuple would make those rows unprovable. *)
let add_lookup t ~sel name inputs tables =
  if List.length inputs <> List.length tables then
    raise
      (Layout_invalid (Printf.sprintf "lookup '%s': input/table arity" name));
  let defaults = List.map (Cs.disabled_value ~zero:0) inputs in
  let cols = List.map (table_column t) tables in
  (match cols with
  | [] -> ()
  | first :: _ ->
      let rows =
        List.fold_left (fun m c -> min m (Array.length c)) (Array.length first)
          cols
      in
      let ok = ref false in
      for r = 0 to rows - 1 do
        if (not !ok) && List.for_all2 (fun d c -> c.(r) = d) defaults cols then
          ok := true
      done;
      if not !ok then
        raise
          (Layout_invalid
             (Printf.sprintf
                "lookup '%s': disabled-row default tuple not in table" name)));
  t.lookups <-
    { Cs.l_name = name; l_sel = sel; l_inputs = inputs; l_tables = tables }
    :: t.lookups

(** Allocate a lane of [width] cells for gadget [kind]. On the kind's
    first use, [register sel_col lanes] must install its gates, lookups
    and tables. When a fresh row is opened, [prefill ~row ~base] is
    called once per lane so that unused lanes hold values satisfying the
    kind's constraints (the selector covers the whole row). Returns
    [(row, base_col)]. *)
let alloc_lane ?(prefill = fun ~row:_ ~base:_ -> ()) t ~kind ~width ~register =
  if width > t.ncols then
    raise (Layout_invalid (Printf.sprintf "%s needs %d columns" kind width));
  let lanes = t.ncols / width in
  let sel_col =
    match Hashtbl.find_opt t.selector_cols kind with
    | Some c -> c
    | None ->
        let c = new_selector t kind in
        register c lanes;
        c
  in
  let row, lane =
    match Hashtbl.find_opt t.open_lanes kind with
    | Some (row, used) when !used < lanes ->
        let l = !used in
        incr used;
        (row, l)
    | _ ->
        let row = t.nrows in
        t.nrows <- row + 1;
        Hashtbl.replace t.open_lanes kind (row, ref 1);
        (match Vec.get t.fixed_meta sel_col with
        | _, Selector rows -> rows := row :: !rows
        | _ -> assert false);
        if not t.counting then begin
          Vec.set t.row_kinds row kind;
          for l = 0 to lanes - 1 do
            prefill ~row ~base:(l * width)
          done
        end;
        (row, 0)
  in
  (row, lane * width)

(** Write a freshly computed value into an advice cell. [track] (default
    true) marks the cell as one the constraint system must pin down;
    pass [~track:false] for cells the circuit semantics leaves free
    (fresh operand claims, lane prefill). *)
let put ?(track = true) t ~row ~col ~value =
  if not t.counting then begin
    Vec.set t.advice.(col) row value;
    if track then Hashtbl.replace t.tracked (col, row) ()
  end;
  Adv (col, row)

(** Write an operand: the value plus, when it already lives in a cell, a
    copy constraint tying the two cells together. *)
let put_operand t ~row ~col (value, source) =
  let cell = put t ~row ~col ~value in
  (if not t.counting then
     match source with
     | Some src -> t.copies <- (cell, src) :: t.copies
     | None -> ());
  cell

(** Append a public value to the instance column, copy-tied to [cell]. *)
let expose t cell value =
  let irow = Vec.length t.instance in
  Vec.push t.instance value;
  if not t.counting then t.instance_copies <- (cell, irow) :: t.instance_copies

(** {1 Finalization} *)

type built = {
  circuit : int C.t;
  cs : int Cs.t;  (** the typed IR the circuit was erased from *)
  fixed : int array array;
  advice : int array array;
  instance_col : int array;
  rows_content : int;
  table_rows : int;
  copies_count : int;
  row_kinds : string array;
      (** gadget kind owning each content row ([""] past the content) *)
  tracked : (int * int) array;
      (** semantic advice cells (col, row), sorted by (row, col) *)
}

let ceil_log2 x =
  let rec go k = if 1 lsl k >= x then k else go (k + 1) in
  go 0

let table_rows t =
  let m = ref (Vec.length t.const_values) in
  for i = 0 to Vec.length t.fixed_meta - 1 do
    match Vec.get t.fixed_meta i with
    | _, Table_col c -> m := max !m (Array.length c)
    | _ -> ()
  done;
  !m

(** Smallest k whose 2^k rows hold the content, the tables, the public
    values and the blinding region (the paper's FindOptimalK). *)
let optimal_k t ~blinding =
  let needed = max t.nrows (max (table_rows t) (Vec.length t.instance)) in
  ceil_log2 (needed + blinding + 1)

let finalize t ~blinding ~k =
  Zkml_obs.Obs.Span.with_ ~name:"layout" @@ fun () ->
  Zkml_obs.Obs.count "layout.rows" t.nrows;
  Zkml_obs.Obs.count "layout.cols" t.ncols;
  let n = 1 lsl k in
  let u = n - blinding - 1 in
  if max t.nrows (max (table_rows t) (Vec.length t.instance)) > u then
    raise (Layout_invalid "content does not fit in 2^k rows");
  let fixed =
    Array.init t.num_fixed (fun i ->
        match Vec.get t.fixed_meta i with
        | _, Constants -> Vec.to_padded_array t.const_values n
        | _, Selector rows ->
            let col = Array.make n 0 in
            List.iter (fun r -> col.(r) <- 1) !rows;
            col
        | _, Table_col content ->
            let col = Array.make n 0 in
            Array.blit content 0 col 0 (Array.length content);
            (* pad with the last real entry so padding rows do not add a
               spurious (0, 0, ...) tuple to the table *)
            let last = content.(Array.length content - 1) in
            for r = Array.length content to n - 1 do
              col.(r) <- last
            done;
            col)
  in
  let advice = Array.map (fun v -> Vec.to_padded_array v n) t.advice in
  let instance_col = Vec.to_padded_array t.instance n in
  let col_of = function
    | Adv (c, _) -> C.Col_advice c
    | Fix (c, _) -> C.Col_fixed c
  in
  let row_of = function Adv (_, r) -> r | Fix (_, r) -> r in
  let copies =
    List.map
      (fun (a, b) -> ((col_of a, row_of a), (col_of b, row_of b)))
      t.copies
    @ List.map
        (fun (cell, irow) ->
          ((col_of cell, row_of cell), (C.Col_instance 0, irow)))
        t.instance_copies
  in
  let is_selector =
    Array.init t.num_fixed (fun i -> fst (Vec.get t.fixed_meta i) = 1)
  in
  let cs : int Cs.t =
    {
      Cs.cs_num_fixed = t.num_fixed;
      cs_num_advice = t.ncols;
      cs_num_instance = 1;
      cs_gates = List.rev t.gates;
      cs_lookups = List.rev t.lookups;
      cs_copies = copies;
    }
  in
  let circuit : int C.t =
    {
      C.k;
      num_fixed = t.num_fixed;
      is_selector;
      advice_phases = Array.make t.ncols 0;
      num_instance = 1;
      num_challenges = 0;
      gates = List.map Cs.to_gate cs.Cs.cs_gates;
      lookups = List.map (Cs.to_lookup ~one:1) cs.Cs.cs_lookups;
      copies;
      blinding;
    }
  in
  let row_kinds =
    Array.init t.nrows (fun r ->
        if r < Vec.length t.row_kinds then Vec.get t.row_kinds r else "")
  in
  let tracked =
    let cells = Hashtbl.fold (fun c () acc -> c :: acc) t.tracked [] in
    let a = Array.of_list cells in
    Array.sort
      (fun (c1, r1) (c2, r2) -> compare (r1, c1) (r2, c2))
      a;
    a
  in
  {
    circuit;
    cs;
    fixed;
    advice;
    instance_col;
    rows_content = t.nrows;
    table_rows = table_rows t;
    copies_count = List.length copies;
    row_kinds;
    tracked;
  }

(** Layout statistics for cost estimation, available in counting mode
    (before any k is chosen). *)
type summary = {
  rows_content : int;
  tables : int;
  lookup_count : int;
  advice_cols : int;
  fixed_cols : int;
  selector_cols_count : int;
  gate_count : int;
  max_gate_degree : int;
  table_rows_needed : int;
}

let summary t =
  let max_deg =
    List.fold_left
      (fun acc g ->
        let g = Cs.to_gate g in
        List.fold_left (fun a p -> max a (E.degree p)) acc g.C.polys)
      3 t.gates
  in
  let max_deg =
    List.fold_left
      (fun acc l -> max acc (C.lookup_degree (Cs.to_lookup ~one:1 l)))
      max_deg t.lookups
  in
  {
    rows_content = t.nrows;
    tables = t.num_lookup_tables;
    lookup_count = List.length t.lookups;
    advice_cols = t.ncols;
    fixed_cols = t.num_fixed;
    selector_cols_count = Hashtbl.length t.selector_cols;
    gate_count = List.length t.gates;
    max_gate_degree = max_deg;
    table_rows_needed = table_rows t;
  }
