(** The circuit-layout optimizer (Algorithm 1): enumerate logical
    layouts, instantiate physical layouts across a column range via the
    row-exact simulator, pick the cheapest by estimated cost. *)

type objective = Min_time | Min_size

type plan = {
  spec : Layout_spec.t;
  spec_fn : int -> Layout_spec.t;  (** per-node (= [spec] when pruned) *)
  ncols : int;
  k : int;
  est_cost : float;
  est_size : int;
  summary : Layouter.summary;
}

type search_stats = { mutable candidates : int; mutable pruned_invalid : int }

let blinding = 5

let evaluate ?(k_max = max_int) ~times ~backend ~group_bytes ~field_bytes ~cfg
    ~spec_fn graph exec ncols =
  Zkml_obs.Obs.count "optimizer.candidates" 1;
  match
    Lower.lower_with ~spec_fn ~cfg ~ncols ~counting:true graph exec
  with
  | exception Layouter.Layout_invalid _ -> None
  | exception Lower.Unsupported _ -> None
  | lowered ->
      let ly = lowered.Lower.layouter in
      let k = Layouter.optimal_k ly ~blinding in
      if k > k_max then None
      else
      let summary = Layouter.summary ly in
      let est_cost = Costmodel.estimate_time times ~backend ~k summary in
      let est_size =
        Costmodel.estimate_size ~backend ~k ~group_bytes ~field_bytes summary
      in
      Some (k, est_cost, est_size, summary)

(* Strictly better under the objective. Ties on the primary criterion
   are broken deterministically — Min_time by (size, k), Min_size by
   (cost, k) — so the chosen layout does not depend on the candidate
   iteration order. *)
let better objective (cost, size, k) (cost', size', k') =
  match objective with
  | Min_time ->
      cost < cost'
      || (cost = cost' && (size < size' || (size = size' && k < k')))
  | Min_size ->
      size < size'
      || (size = size' && (cost < cost' || (cost = cost' && k < k')))

(** Pruned search (the default, §7.2): one gadget choice per layer class
    for the whole model; sweep the column count. *)
let optimize ?(specs = Layout_spec.all) ?(ncols_min = 4) ?(ncols_max = 40)
    ?(objective = Min_time) ?k_max ~times ~backend ~group_bytes ~field_bytes
    ~cfg graph exec =
  Zkml_obs.Obs.Span.with_ ~name:"optimize" @@ fun () ->
  let stats = { candidates = 0; pruned_invalid = 0 } in
  let best = ref None in
  List.iter
    (fun spec ->
      for ncols = ncols_min to ncols_max do
        stats.candidates <- stats.candidates + 1;
        match
          evaluate ?k_max ~times ~backend ~group_bytes ~field_bytes ~cfg
            ~spec_fn:(fun _ -> spec) graph exec ncols
        with
        | None -> stats.pruned_invalid <- stats.pruned_invalid + 1
        | Some (k, est_cost, est_size, summary) ->
            let plan =
              {
                spec;
                spec_fn = (fun _ -> spec);
                ncols;
                k;
                est_cost;
                est_size;
                summary;
              }
            in
            (match !best with
            | None -> best := Some plan
            | Some b ->
                if
                  better objective (est_cost, est_size, k)
                    (b.est_cost, b.est_size, b.k)
                then best := Some plan)
      done)
    specs;
  match !best with
  | Some plan -> (plan, stats)
  | None -> failwith "Optimizer.optimize: no valid layout found"

(** Non-pruned search (Table 12): per-layer gadget choices explored by
    coordinate descent from the pruned optimum — strictly more
    configurations are simulated, at higher optimizer cost. *)
let optimize_unpruned ?(specs = Layout_spec.all) ?(ncols_min = 4)
    ?(ncols_max = 40) ?(objective = Min_time) ?k_max ~times ~backend
    ~group_bytes ~field_bytes ~cfg graph exec =
  let (seed_plan : plan), stats =
    optimize ~specs ~ncols_min ~ncols_max ~objective ?k_max ~times ~backend
      ~group_bytes ~field_bytes ~cfg graph exec
  in
  let num_nodes = Zkml_nn.Graph.num_nodes graph in
  let assignment = Array.make num_nodes seed_plan.spec in
  let current = ref seed_plan in
  let improved = ref true in
  while !improved do
    improved := false;
    for node = 0 to num_nodes - 1 do
      List.iter
        (fun candidate ->
          if candidate <> assignment.(node) then begin
            stats.candidates <- stats.candidates + 1;
            let old = assignment.(node) in
            assignment.(node) <- candidate;
            (* snapshot so stored plans are immune to later mutation *)
            let snapshot = Array.copy assignment in
            let spec_fn i = snapshot.(i) in
            match
              evaluate ?k_max ~times ~backend ~group_bytes ~field_bytes ~cfg
                ~spec_fn graph exec !current.ncols
            with
            | None ->
                stats.pruned_invalid <- stats.pruned_invalid + 1;
                assignment.(node) <- old
            | Some (k, est_cost, est_size, summary) ->
                if
                  better objective (est_cost, est_size, k)
                    (!current.est_cost, !current.est_size, !current.k)
                then begin
                  current :=
                    {
                      !current with
                      spec_fn;
                      k;
                      est_cost;
                      est_size;
                      summary;
                    };
                  improved := true
                end
                else assignment.(node) <- old
          end)
        specs
    done
  done;
  (!current, stats)
