(** Graph-to-circuit lowering: walks the dataflow graph, consuming the
    fixed-point executor's values, and emits gadget rows through the
    {!Layouter}. Implements the paper's gadget library (§5) and the
    layer compositions (§6), parameterized by the logical layout choices
    in {!Layout_spec}.

    Layout conventions (base column [b] inside a lane):
    - dot (plain):      x_1..x_m | y_1..y_m | z        (m = (ncols-1)/2)
    - dot (bias):       x_1..x_m | y_1..y_m | b | z    (m = (ncols-2)/2)
    - sum:              x_1..x_{ncols-1} | z
    - add/sub lanes:    a | b | c          with  c = a +- b
    - mul/sqdiff lanes: a | b | p
    - square/neg/acts:  a | p
    - divround lanes:   a | q | r          (q = Round(a / c), c fixed)
    - vardiv lanes:     a | b | y | r      (y = Round(a*SF / b))
    - max/min lanes:    a | b | c          plus two range lookups
    - bit-decomposed ReLU: x | y | b_0..b_{tb-1} *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Cs = Zkml_plonkish.Cs
module E = Zkml_plonkish.Expr
module L = Layouter

exception Unsupported of string

(** An operand: its integer value plus where it lives (if anywhere). *)
type opnd = {
  v : int;
  slot : L.cref option ref option;
      (** shared cell slot of a tensor element; filled at first use *)
  cell : L.cref option;  (** direct cell (gadget intermediate / constant) *)
}

let of_cell v cell = { v; cell = Some cell; slot = None }
let fresh v = { v; cell = None; slot = None }

let const_opnd ly c = { v = c; cell = Some (L.constant_cell ly c); slot = None }

(** Place an operand at (row, col): writes the value and adds the copy
    constraint against its existing cell, or claims the slot. Slot
    claims and free placements are written [~track:false]: a fresh
    operand cell (a weight, or a literal with no home) is existentially
    quantified by the statement, not a value the constraints must pin
    down. Copy-tied placements are tracked — the permutation argument
    pins them to their source. *)
let place ly ~row ~col o =
  match o.cell with
  | Some c -> ignore (L.put_operand ly ~row ~col (o.v, Some c))
  | None -> (
      match o.slot with
      | None -> ignore (L.put ly ~track:false ~row ~col ~value:o.v)
      | Some slot -> (
          match !slot with
          | Some c -> ignore (L.put_operand ly ~row ~col (o.v, Some c))
          | None ->
              let cell = L.put ly ~track:false ~row ~col ~value:o.v in
              slot := Some cell))

(** Write a gadget output cell. *)
let output ly ~row ~col v = of_cell v (L.put ly ~row ~col ~value:v)

let adv = E.advice

(* ------------------------------------------------------------------ *)
(* Tables *)

let range_table ly =
  match Hashtbl.find_opt ly.L.table_cols "range" with
  | Some c -> c
  | None ->
      let n = Fx.table_size ly.L.cfg in
      L.new_table ly "range" [| Array.init n (fun i -> i) |]

let act_table ly name fn =
  let key = "act_" ^ name in
  match Hashtbl.find_opt ly.L.table_cols key with
  | Some c -> c
  | None ->
      let lo = Fx.table_min ly.L.cfg and hi = Fx.table_max ly.L.cfg in
      let n = hi - lo + 1 in
      let t_in = Array.init n (fun i -> lo + i) in
      let t_out = Array.init n (fun i -> Fx.apply_real ly.L.cfg fn (lo + i)) in
      L.new_table ly key [| t_in; t_out |]

(* A range lookup on an input expression gated by selector [sel]. The
   plainly-gated input reads 0 on disabled rows, so Layouter.add_lookup
   verifies 0 is present in the range table (it is: entry 0). *)
let add_range_lookup ly ~name ~sel expr =
  let rcol = range_table ly in
  L.add_lookup ly ~sel name [ Cs.Li_gated expr ] [ rcol ]

(* ------------------------------------------------------------------ *)
(* Core gadgets *)

(** Sum of a list of operands: z = sum x_i, chunked into rows of
    ncols - 1 addends (paper §5.2 "Sum"). *)
let rec emit_sum ly (xs : opnd list) : opnd =
  match xs with
  | [] -> const_opnd ly 0
  | [ x ] -> x
  | xs ->
      let width = ly.L.ncols in
      let m = width - 1 in
      let register s_col _lanes =
        let terms = List.init m (fun i -> adv i) in
        let total = List.fold_left (fun acc t -> E.Add (acc, t)) (E.Const 0) terms in
        L.add_gate ly ~sel:s_col "sum" [ E.Sub (adv m, total) ]
      in
      let rec chunks acc = function
        | [] -> List.rev acc
        | xs ->
            let rec take k = function
              | [] -> ([], [])
              | x :: rest when k > 0 ->
                  let taken, remain = take (k - 1) rest in
                  (x :: taken, remain)
              | rest -> ([], rest)
            in
            let taken, remain = take m xs in
            chunks (taken :: acc) remain
      in
      let partials =
        List.map
          (fun chunk ->
            let row, base = L.alloc_lane ly ~kind:"sum" ~width ~register in
            List.iteri (fun i x -> place ly ~row ~col:(base + i) x) chunk;
            let v = List.fold_left (fun acc x -> acc + x.v) 0 chunk in
            output ly ~row ~col:(base + m) v)
          (chunks [] xs)
      in
      emit_sum ly partials

(** Plain dot product (paper §5.2): z = sum x_i * y_i, chunked; partial
    results combined with the sum gadget. *)
let emit_dot_plain ly (pairs : (opnd * opnd) list) : opnd =
  let width = ly.L.ncols in
  let m = (width - 1) / 2 in
  if m < 1 then raise (L.Layout_invalid "dot needs >= 3 columns");
  let register s_col _lanes =
    let prods = List.init m (fun i -> E.Mul (adv i, adv (m + i))) in
    let total = List.fold_left (fun acc t -> E.Add (acc, t)) (E.Const 0) prods in
    L.add_gate ly ~sel:s_col "dot_plain" [ E.Sub (adv (2 * m), total) ]
  in
  let rec chunks acc = function
    | [] -> List.rev acc
    | ps ->
        let rec take k = function
          | [] -> ([], [])
          | p :: rest when k > 0 ->
              let t, r = take (k - 1) rest in
              (p :: t, r)
          | rest -> ([], rest)
        in
        let t, r = take m ps in
        chunks (t :: acc) r
  in
  let partials =
    List.map
      (fun chunk ->
        let row, base = L.alloc_lane ly ~kind:"dot_plain" ~width ~register in
        List.iteri
          (fun i (x, y) ->
            place ly ~row ~col:(base + i) x;
            place ly ~row ~col:(base + m + i) y)
          chunk;
        let v = List.fold_left (fun acc (x, y) -> acc + (x.v * y.v)) 0 chunk in
        output ly ~row ~col:(base + (2 * m)) v)
      (chunks [] pairs)
  in
  emit_sum ly partials

(** Dot product with bias accumulation (paper §5.2 "Dot product with
    bias"): the first row seeds the accumulator with SF * bias, each
    following row carries the previous partial in the bias slot, so no
    separate sum gadget is needed. *)
let emit_dot_bias ly (pairs : (opnd * opnd) list) (bias : opnd) : opnd =
  let width = ly.L.ncols in
  let m = (width - 2) / 2 in
  if m < 1 then raise (L.Layout_invalid "dot_bias needs >= 4 columns");
  let sf = L.sf ly in
  let register_first s_col _ =
    let prods = List.init m (fun i -> E.Mul (adv i, adv (m + i))) in
    let total = List.fold_left (fun acc t -> E.Add (acc, t)) (E.Const 0) prods in
    L.add_gate ly ~sel:s_col "dot_bias_first"
      [ E.Sub (adv ((2 * m) + 1), E.Add (E.Scaled (adv (2 * m), sf), total)) ]
  in
  let register_acc s_col _ =
    let prods = List.init m (fun i -> E.Mul (adv i, adv (m + i))) in
    let total = List.fold_left (fun acc t -> E.Add (acc, t)) (E.Const 0) prods in
    L.add_gate ly ~sel:s_col "dot_bias_acc"
      [ E.Sub (adv ((2 * m) + 1), E.Add (adv (2 * m), total)) ]
  in
  let rec chunks acc = function
    | [] -> List.rev acc
    | ps ->
        let rec take k = function
          | [] -> ([], [])
          | p :: rest when k > 0 ->
              let t, r = take (k - 1) rest in
              (p :: t, r)
          | rest -> ([], rest)
        in
        let t, r = take m ps in
        chunks (t :: acc) r
  in
  let emit_row ~kind ~register carry chunk =
    let row, base = L.alloc_lane ly ~kind ~width ~register in
    List.iteri
      (fun i (x, y) ->
        place ly ~row ~col:(base + i) x;
        place ly ~row ~col:(base + m + i) y)
      chunk;
    place ly ~row ~col:(base + (2 * m)) carry;
    let prod = List.fold_left (fun acc (x, y) -> acc + (x.v * y.v)) 0 chunk in
    let v =
      match kind with
      | "dot_bias_first" -> (carry.v * sf) + prod
      | _ -> carry.v + prod
    in
    output ly ~row ~col:(base + (2 * m) + 1) v
  in
  match chunks [] pairs with
  | [] ->
      (* no products: accumulator is just SF * bias; use one first-row *)
      emit_row ~kind:"dot_bias_first" ~register:register_first bias []
  | first :: rest ->
      let acc = ref (emit_row ~kind:"dot_bias_first" ~register:register_first bias first) in
      List.iter
        (fun chunk ->
          acc := emit_row ~kind:"dot_bias_acc" ~register:register_acc !acc chunk)
        rest;
      !acc

(** Rounded division by a positive constant (rescaling; paper §5.1):
    q = floor((2a + c) / 2c), constrained by 2a + c = 2c q + r with two
    range lookups bounding r in [0, 2c). *)
let emit_divround ly (x : opnd) ~divisor : opnd =
  assert (divisor > 0);
  let kind = Printf.sprintf "divround_%d" divisor in
  let width = 3 in
  let register s_col lanes =
    let bodies =
      List.init lanes (fun j ->
          let b = j * width in
          E.Sub
            ( E.Add (E.Scaled (adv b, 2), E.Const divisor),
              E.Add (E.Scaled (adv (b + 1), 2 * divisor), adv (b + 2)) ))
    in
    L.add_gate ly ~sel:s_col kind bodies;
    for j = 0 to lanes - 1 do
      let b = j * width in
      add_range_lookup ly ~name:(kind ^ "-r") ~sel:s_col (adv (b + 2));
      add_range_lookup ly ~name:(kind ^ "-rhi") ~sel:s_col
        (E.Sub (E.Const ((2 * divisor) - 1), adv (b + 2)))
    done
  in
  (* unused lanes must satisfy 2a + c = 2c q + r: a=0, q=0 forces r=c *)
  let prefill ~row ~base =
    ignore (L.put ly ~track:false ~row ~col:(base + 2) ~value:divisor)
  in
  let row, base = L.alloc_lane ly ~kind ~width ~register ~prefill in
  place ly ~row ~col:base x;
  let q = Fx.round_div x.v divisor in
  let r = (2 * x.v) + divisor - (q * 2 * divisor) in
  ignore (L.put ly ~row ~col:(base + 2) ~value:r);
  output ly ~row ~col:(base + 1) q

(** Variable division (paper §5.1): y = Round(a * SF / b) with b secret,
    constrained by 2 SF a + b = 2 y b + r, r in [0, 2b). *)
let emit_vardiv ly (num : opnd) (den : opnd) : opnd =
  let sf = L.sf ly in
  let kind = "vardiv" in
  let width = 4 in
  let register s_col lanes =
    let bodies =
      List.init lanes (fun j ->
          let b = j * width in
          E.Sub
            ( E.Add (E.Scaled (adv b, 2 * sf), adv (b + 1)),
              E.Add (E.Scaled (E.Mul (adv (b + 2), adv (b + 1)), 2), adv (b + 3))
            ))
    in
    L.add_gate ly ~sel:s_col kind bodies;
    for j = 0 to lanes - 1 do
      let b = j * width in
      add_range_lookup ly ~name:"vardiv-r" ~sel:s_col (adv (b + 3));
      add_range_lookup ly ~name:"vardiv-rhi" ~sel:s_col
        (E.Sub (E.Sub (E.Scaled (adv (b + 1), 2), E.Const 1), adv (b + 3)))
    done
  in
  (* unused lanes: a=0, b=1, y=0 forces r=1 and keeps 2b-1-r = 0 in range *)
  let prefill ~row ~base =
    ignore (L.put ly ~track:false ~row ~col:(base + 1) ~value:1);
    ignore (L.put ly ~track:false ~row ~col:(base + 3) ~value:1)
  in
  let row, base = L.alloc_lane ly ~kind ~width ~register ~prefill in
  place ly ~row ~col:base num;
  place ly ~row ~col:(base + 1) den;
  let d = max 1 den.v in
  let y = Fx.round_div (num.v * sf) d in
  let r = (2 * sf * num.v) + den.v - (2 * y * den.v) in
  ignore (L.put ly ~row ~col:(base + 3) ~value:r);
  output ly ~row ~col:(base + 2) y

type binary_kind = Badd | Bsub | Bmul_raw | Bsqdiff_raw | Bmax | Bmin

let binary_name = function
  | Badd -> "add"
  | Bsub -> "sub"
  | Bmul_raw -> "mul_raw"
  | Bsqdiff_raw -> "sqdiff_raw"
  | Bmax -> "max"
  | Bmin -> "min"

(** Packed custom binary gadgets: lanes of (a, b, c). *)
let emit_binary_custom ly kind (a : opnd) (b : opnd) : opnd =
  let name = binary_name kind in
  let width = 3 in
  let register s_col lanes =
    let bodies =
      List.init lanes (fun j ->
          let base = j * width in
          let a = adv base and b = adv (base + 1) and c = adv (base + 2) in
          match kind with
          | Badd -> E.Sub (c, E.Add (a, b))
          | Bsub -> E.Sub (c, E.Sub (a, b))
          | Bmul_raw -> E.Sub (c, E.Mul (a, b))
          | Bsqdiff_raw -> E.Sub (c, E.Mul (E.Sub (a, b), E.Sub (a, b)))
          | Bmax | Bmin -> E.Mul (E.Sub (c, a), E.Sub (c, b)))
    in
    L.add_gate ly ~sel:s_col name bodies;
    match kind with
    | Bmax ->
        for j = 0 to lanes - 1 do
          let base = j * width in
          add_range_lookup ly ~name:"max-ca" ~sel:s_col
            (E.Sub (adv (base + 2), adv base));
          add_range_lookup ly ~name:"max-cb" ~sel:s_col
            (E.Sub (adv (base + 2), adv (base + 1)))
        done
    | Bmin ->
        for j = 0 to lanes - 1 do
          let base = j * width in
          add_range_lookup ly ~name:"min-ac" ~sel:s_col
            (E.Sub (adv base, adv (base + 2)));
          add_range_lookup ly ~name:"min-bc" ~sel:s_col
            (E.Sub (adv (base + 1), adv (base + 2)))
        done
    | _ -> ()
  in
  let row, base = L.alloc_lane ly ~kind:name ~width ~register in
  place ly ~row ~col:base a;
  place ly ~row ~col:(base + 1) b;
  let v =
    match kind with
    | Badd -> a.v + b.v
    | Bsub -> a.v - b.v
    | Bmul_raw -> a.v * b.v
    | Bsqdiff_raw -> (a.v - b.v) * (a.v - b.v)
    | Bmax -> max a.v b.v
    | Bmin -> min a.v b.v
  in
  output ly ~row ~col:(base + 2) v

(** The via-dot alternatives (§5.1: "repurposing the dot product
    gadget"): additions/multiplications expressed as tiny dot products. *)
let emit_binary ly ~(spec : Layout_spec.t) kind a b =
  match (spec.arith, kind) with
  | Layout_spec.Custom_arith, _ | _, (Bmax | Bmin) ->
      emit_binary_custom ly kind a b
  | Layout_spec.Via_dot, Badd ->
      emit_dot_plain ly [ (a, const_opnd ly 1); (b, const_opnd ly 1) ]
  | Layout_spec.Via_dot, Bsub ->
      emit_dot_plain ly [ (a, const_opnd ly 1); (b, const_opnd ly (-1)) ]
  | Layout_spec.Via_dot, Bmul_raw -> emit_dot_plain ly [ (a, b) ]
  | Layout_spec.Via_dot, Bsqdiff_raw ->
      let d = emit_dot_plain ly [ (a, const_opnd ly 1); (b, const_opnd ly (-1)) ] in
      emit_dot_plain ly [ (d, d) ]

let emit_neg ly ~spec a =
  emit_binary ly ~spec Bsub (const_opnd ly 0) a

let emit_square ly ~(spec : Layout_spec.t) a =
  match spec.arith with
  | Layout_spec.Via_dot -> emit_dot_plain ly [ (a, a) ]
  | Layout_spec.Custom_arith ->
      let width = 2 in
      let register s_col lanes =
        let bodies =
          List.init lanes (fun j ->
              let b = j * width in
              E.Sub (adv (b + 1), E.Mul (adv b, adv b)))
        in
        L.add_gate ly ~sel:s_col "square_raw" bodies
      in
      let row, base = L.alloc_lane ly ~kind:"square_raw" ~width ~register in
      place ly ~row ~col:base a;
      output ly ~row ~col:(base + 1) (a.v * a.v)

(** Pointwise non-linearity via a two-column lookup table (paper §5.2
    "ReLU" and §5.1 "pointwise non-linearities"). *)
let emit_act_lookup ly name fn (x : opnd) : opnd =
  let tcol = act_table ly name fn in
  let kind = "act_" ^ name in
  let width = 2 in
  let d1 = Fx.apply_real ly.L.cfg fn 0 in
  let register s_col lanes =
    (* gated-with-default inputs: disabled rows read the valid table
       pair (0, f(0)) — d1 may be nonzero, so plain gating would not do *)
    for j = 0 to lanes - 1 do
      let b = j * width in
      L.add_lookup ly ~sel:s_col kind
        [ Cs.Li_gated_default (adv b, 0); Cs.Li_gated_default (adv (b + 1), d1) ]
        [ tcol; tcol + 1 ]
    done
  in
  (* unused lanes must hold a valid table pair: (0, f(0)) *)
  let prefill ~row ~base =
    ignore (L.put ly ~track:false ~row ~col:(base + 1) ~value:d1)
  in
  let row, base = L.alloc_lane ly ~kind ~width ~register ~prefill in
  place ly ~row ~col:base x;
  if x.v < Fx.table_min ly.L.cfg || x.v > Fx.table_max ly.L.cfg then
    raise
      (Unsupported
         (Printf.sprintf "%s input %d outside lookup range; increase table_bits"
            name x.v));
  output ly ~row ~col:(base + 1) (Fx.apply_real ly.L.cfg fn x.v)

(** Bit-decomposition ReLU (§3's running example, the prior-work
    representation): offset-binary decomposition plus a sign-bit
    multiplication, no lookup tables. *)
let emit_relu_bitdecomp ly (x : opnd) : opnd =
  let tb = ly.L.cfg.Fx.table_bits in
  let width = tb + 2 in
  let kind = "relu_bits" in
  let register s_col lanes =
    let bodies =
      List.concat
        (List.init lanes (fun j ->
             let base = j * width in
             let bit i = adv (base + 2 + i) in
             (* one explicit booleanity constraint per decomposition bit,
                per lane — every bit cell the kind occupies on a row *)
             let booleans =
               List.init tb (fun i -> E.Mul (bit i, E.Sub (bit i, E.Const 1)))
             in
             let weighted =
               List.init tb (fun i -> E.Scaled (bit i, 1 lsl i))
             in
             let total =
               List.fold_left (fun acc t -> E.Add (acc, t)) (E.Const 0) weighted
             in
             let recompose =
               E.Sub (E.Add (adv base, E.Const (1 lsl (tb - 1))), total)
             in
             let relu =
               E.Sub (adv (base + 1), E.Mul (adv base, bit (tb - 1)))
             in
             booleans @ [ recompose; relu ]))
    in
    L.add_gate ly ~sel:s_col kind bodies
  in
  (* unused lanes: x=0 has offset 2^(tb-1), i.e. only the sign bit set *)
  let prefill ~row ~base =
    ignore (L.put ly ~track:false ~row ~col:(base + 2 + (tb - 1)) ~value:1)
  in
  let row, base = L.alloc_lane ly ~kind ~width ~register ~prefill in
  place ly ~row ~col:base x;
  let offset = x.v + (1 lsl (tb - 1)) in
  if offset < 0 || offset >= 1 lsl tb then
    raise
      (Unsupported
         (Printf.sprintf "bitdecomp relu input %d out of range" x.v));
  for i = 0 to tb - 1 do
    ignore (L.put ly ~row ~col:(base + 2 + i) ~value:((offset lsr i) land 1))
  done;
  output ly ~row ~col:(base + 1) (max 0 x.v)

(** Maximum of a list via a tree of max gadgets (used by softmax and max
    pooling). *)
let rec emit_max_tree ly ~spec = function
  | [] -> invalid_arg "emit_max_tree: empty"
  | [ x ] -> x
  | xs ->
      let rec pair_up = function
        | a :: b :: rest -> emit_binary ly ~spec Bmax a b :: pair_up rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      emit_max_tree ly ~spec (pair_up xs)

(* ------------------------------------------------------------------ *)
(* Composite layers (§6) *)

(** The paper's high-performance softmax (§6.1): subtract the row max,
    scaled-exponential lookups, sum, then variable division with the
    numerator pre-scaled by SF to avoid catastrophic rounding. *)
let emit_softmax ly ~spec (xs : opnd list) : opnd list =
  let m = emit_max_tree ly ~spec xs in
  let shifted = List.map (fun x -> emit_binary ly ~spec Bsub x m) xs in
  let exps =
    List.map (fun s -> emit_act_lookup ly "exp" Fx.exp' s) shifted
  in
  let total = emit_sum ly exps in
  List.map (fun e -> emit_vardiv ly e total) exps

(** Linear-layer accumulation: pairs of (activation, weight) operands
    plus an optional bias, rescaled back to single-scale at the end. *)
let emit_linear ly ~(spec : Layout_spec.t) (pairs : (opnd * opnd) list)
    ~(bias : opnd option) : opnd =
  let sf = L.sf ly in
  let acc =
    match spec.linear with
    | Layout_spec.Dot_bias ->
        let b = match bias with Some b -> b | None -> const_opnd ly 0 in
        emit_dot_bias ly pairs b
    | Layout_spec.Dot_plain ->
        let pairs =
          match bias with
          | Some b -> (b, const_opnd ly sf) :: pairs
          | None -> pairs
        in
        emit_dot_plain ly pairs
  in
  emit_divround ly acc ~divisor:sf

(** Elementwise multiply with rescale. *)
let emit_mul ly ~spec a b =
  emit_divround ly (emit_binary ly ~spec Bmul_raw a b) ~divisor:(L.sf ly)

(* ------------------------------------------------------------------ *)
(* Graph walk *)

type lowered = {
  layouter : L.t;
  node_cells : L.cref option ref array array;  (** per node, flat *)
}

let zip_opnds values refs =
  let data = T.data values and rdata = T.data refs in
  T.of_array (T.shape values)
    (Array.init (Array.length data) (fun i ->
         { v = data.(i); slot = Some rdata.(i); cell = None }))

(** Lower a whole graph. [exec] must come from {!Zkml_nn.Quant_exec.run}
    on the same graph and inputs. *)
let lower_with ~(spec_fn : int -> Layout_spec.t) ~cfg ~ncols ~counting graph
    (exec : Zkml_nn.Quant_exec.t) : lowered =
  let ly = L.create ~ncols ~cfg ~counting in
  let nodes = Zkml_nn.Graph.nodes graph in
  let num_nodes = Array.length nodes in
  let node_cells = Array.make num_nodes [||] in
  let zero_slot = ref (Some (L.constant_cell ly 0)) in
  (* ref-tensor for a node (shared slots so views alias weights) *)
  let ref_tensor id =
    T.of_array (T.shape exec.Zkml_nn.Quant_exec.values.(id)) node_cells.(id)
  in
  let opnd_tensor id = zip_opnds exec.Zkml_nn.Quant_exec.values.(id) (ref_tensor id) in
  let fresh_refs id =
    node_cells.(id) <-
      Array.init (T.numel exec.Zkml_nn.Quant_exec.values.(id)) (fun _ -> ref None)
  in
  let store_outputs id (outs : opnd array) =
    (* passthrough outputs (no fresh cell) share the producer's slot so
       aliasing and copy constraints survive no-op reductions *)
    node_cells.(id) <-
      Array.map
        (fun o ->
          match o.cell with
          | Some c -> ref (Some c)
          | None -> ( match o.slot with Some r -> r | None -> ref None))
        outs
  in
  (* lower an elementwise / rowwise op producing one opnd per element *)
  let sf = L.sf ly in
  Array.iter
    (fun (node : Zkml_nn.Graph.node) ->
      let id = node.Zkml_nn.Graph.id in
      let spec = spec_fn id in
      let inp = node.Zkml_nn.Graph.inputs in
      let values = exec.Zkml_nn.Quant_exec.values in
      let out_numel = T.numel values.(id) in
      match node.Zkml_nn.Graph.op with
      | Zkml_nn.Op.Input _ ->
          (* materialize inputs into packed rows and expose them publicly *)
          fresh_refs id;
          let register _ _ = () in
          let vals = T.data values.(id) in
          Array.iteri
            (fun i v ->
              let row, col = L.alloc_lane ly ~kind:"io_load" ~width:1 ~register in
              let cell = L.put ly ~row ~col ~value:v in
              node_cells.(id).(i) := Some cell;
              L.expose ly cell v)
            vals
      | Zkml_nn.Op.Weight _ ->
          (* weights materialize lazily at first use *)
          fresh_refs id
      | Zkml_nn.Op.Conv2d { stride; padding } ->
          let x = opnd_tensor inp.(0)
          and w = opnd_tensor inp.(1)
          and b = opnd_tensor inp.(2) in
          let b_wrapped = T.map (fun o -> (Some o, [])) b in
          let sym =
            Zkml_nn.Float_exec.conv2d_generic ~zero:(None, [])
              ~madd:(fun (bias, pairs) a b -> (bias, (a, b) :: pairs))
              ~stride ~padding x w b_wrapped
          in
          let outs =
            Array.map
              (fun (bias, pairs) -> emit_linear ly ~spec pairs ~bias)
              (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Depthwise_conv2d { stride; padding } ->
          let x = opnd_tensor inp.(0)
          and w = opnd_tensor inp.(1)
          and b = opnd_tensor inp.(2) in
          let b_wrapped = T.map (fun o -> (Some o, [])) b in
          let sym =
            Zkml_nn.Float_exec.depthwise_conv2d_generic ~zero:(None, [])
              ~madd:(fun (bias, pairs) a b -> (bias, (a, b) :: pairs))
              ~stride ~padding x w b_wrapped
          in
          let outs =
            Array.map
              (fun (bias, pairs) -> emit_linear ly ~spec pairs ~bias)
              (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Fully_connected ->
          let x = opnd_tensor inp.(0)
          and w = opnd_tensor inp.(1)
          and b = opnd_tensor inp.(2) in
          let sym =
            Zkml_nn.Float_exec.batch_matmul_generic ~zero:[]
              ~madd:(fun pairs a b -> (a, b) :: pairs)
              ~transpose_b:false x w
          in
          let bdata = T.data b in
          let nb = Array.length bdata in
          let outs =
            Array.mapi
              (fun i pairs ->
                emit_linear ly ~spec pairs ~bias:(Some bdata.(i mod nb)))
              (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Batch_matmul { transpose_b } ->
          let a = opnd_tensor inp.(0) and b = opnd_tensor inp.(1) in
          let sym =
            Zkml_nn.Float_exec.batch_matmul_generic ~zero:[]
              ~madd:(fun pairs x y -> (x, y) :: pairs)
              ~transpose_b a b
          in
          let outs =
            Array.map (fun pairs -> emit_linear ly ~spec pairs ~bias:None) (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Avg_pool2d { size; stride } ->
          let x = opnd_tensor inp.(0) in
          let sym =
            Zkml_nn.Float_exec.pool_generic
              ~combine:(fun acc o -> o :: acc)
              ~finalize:(fun acc _ -> acc)
              ~init:[] ~size ~stride x
          in
          let outs =
            Array.map
              (fun window ->
                let total = emit_sum ly window in
                emit_divround ly total ~divisor:(List.length window))
              (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Max_pool2d { size; stride } ->
          let x = opnd_tensor inp.(0) in
          let sym =
            Zkml_nn.Float_exec.pool_generic
              ~combine:(fun acc o -> o :: acc)
              ~finalize:(fun acc _ -> acc)
              ~init:[] ~size ~stride x
          in
          let outs =
            Array.map (fun w -> emit_max_tree ly ~spec w) (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Global_avg_pool ->
          let x = opnd_tensor inp.(0) in
          let s = T.shape x in
          let sym =
            Zkml_nn.Float_exec.pool_generic
              ~combine:(fun acc o -> o :: acc)
              ~finalize:(fun acc _ -> acc)
              ~init:[] ~size:s.(1) ~stride:s.(1) x
          in
          let outs =
            Array.map
              (fun window ->
                let total = emit_sum ly window in
                emit_divround ly total ~divisor:(List.length window))
              (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Add | Zkml_nn.Op.Sub | Zkml_nn.Op.Maximum | Zkml_nn.Op.Minimum
        ->
          let kind =
            match node.Zkml_nn.Graph.op with
            | Zkml_nn.Op.Add -> Badd
            | Zkml_nn.Op.Sub -> Bsub
            | Zkml_nn.Op.Maximum -> Bmax
            | _ -> Bmin
          in
          let a = opnd_tensor inp.(0) and b = opnd_tensor inp.(1) in
          let sym = Zkml_nn.Float_exec.broadcast2 (fun x y -> (x, y)) a b in
          let outs =
            Array.map (fun (x, y) -> emit_binary ly ~spec kind x y) (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Mul ->
          let a = opnd_tensor inp.(0) and b = opnd_tensor inp.(1) in
          let sym = Zkml_nn.Float_exec.broadcast2 (fun x y -> (x, y)) a b in
          let outs =
            Array.map (fun (x, y) -> emit_mul ly ~spec x y) (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Div ->
          let a = opnd_tensor inp.(0) and b = opnd_tensor inp.(1) in
          let sym = Zkml_nn.Float_exec.broadcast2 (fun x y -> (x, y)) a b in
          let outs =
            Array.map (fun (x, y) -> emit_vardiv ly x y) (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Squared_difference ->
          let a = opnd_tensor inp.(0) and b = opnd_tensor inp.(1) in
          let sym = Zkml_nn.Float_exec.broadcast2 (fun x y -> (x, y)) a b in
          let outs =
            Array.map
              (fun (x, y) ->
                emit_divround ly (emit_binary ly ~spec Bsqdiff_raw x y) ~divisor:sf)
              (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Neg ->
          let outs = Array.map (fun x -> emit_neg ly ~spec x) (T.data (opnd_tensor inp.(0))) in
          store_outputs id outs
      | Zkml_nn.Op.Square ->
          let outs =
            Array.map
              (fun x -> emit_divround ly (emit_square ly ~spec x) ~divisor:sf)
              (T.data (opnd_tensor inp.(0)))
          in
          store_outputs id outs
      | Zkml_nn.Op.Reduce_sum { axis } ->
          let x = opnd_tensor inp.(0) in
          let sym =
            Zkml_nn.Float_exec.reduce_generic
              ~combine:(fun acc o -> o :: acc)
              ~finalize:(fun acc _ -> acc)
              ~init:[] ~axis x
          in
          let outs = Array.map (fun xs -> emit_sum ly xs) (T.data sym) in
          store_outputs id outs
      | Zkml_nn.Op.Reduce_mean { axis } ->
          let x = opnd_tensor inp.(0) in
          let xs_shape = T.shape x in
          let d =
            xs_shape.(Zkml_nn.Float_exec.normalize_axis (Array.length xs_shape) axis)
          in
          let sym =
            Zkml_nn.Float_exec.reduce_generic
              ~combine:(fun acc o -> o :: acc)
              ~finalize:(fun acc _ -> acc)
              ~init:[] ~axis x
          in
          let outs =
            Array.map
              (fun xs -> emit_divround ly (emit_sum ly xs) ~divisor:d)
              (T.data sym)
          in
          store_outputs id outs
      | Zkml_nn.Op.Reduce_max { axis } ->
          let x = opnd_tensor inp.(0) in
          let sym =
            Zkml_nn.Float_exec.reduce_generic
              ~combine:(fun acc o -> o :: acc)
              ~finalize:(fun acc _ -> acc)
              ~init:[] ~axis x
          in
          let outs = Array.map (fun xs -> emit_max_tree ly ~spec xs) (T.data sym) in
          store_outputs id outs
      | Zkml_nn.Op.Activation Zkml_nn.Op.Relu when spec.relu = Layout_spec.Bitdecomp_relu ->
          let outs =
            Array.map (fun x -> emit_relu_bitdecomp ly x) (T.data (opnd_tensor inp.(0)))
          in
          store_outputs id outs
      | Zkml_nn.Op.Activation a ->
          let name = Zkml_nn.Op.activation_name a in
          let fn = Zkml_nn.Op.activation_fn a in
          let outs =
            Array.map
              (fun x -> emit_act_lookup ly name fn x)
              (T.data (opnd_tensor inp.(0)))
          in
          store_outputs id outs
      | Zkml_nn.Op.Softmax ->
          let x = opnd_tensor inp.(0) in
          let s = T.shape x in
          let d = s.(Array.length s - 1) in
          let rows = T.numel x / d in
          let data = T.data x in
          let outs = Array.make out_numel (const_opnd ly 0) in
          for r = 0 to rows - 1 do
            let xs = List.init d (fun j -> data.((r * d) + j)) in
            List.iteri
              (fun j o -> outs.((r * d) + j) <- o)
              (emit_softmax ly ~spec xs)
          done;
          store_outputs id outs
      | Zkml_nn.Op.Layer_norm { eps } ->
          let x = opnd_tensor inp.(0)
          and gamma = opnd_tensor inp.(1)
          and beta = opnd_tensor inp.(2) in
          let s = T.shape x in
          let d = s.(Array.length s - 1) in
          let rows = T.numel x / d in
          let data = T.data x in
          let gdata = T.data gamma and bdata = T.data beta in
          let eps_q = Fx.quantize cfg eps in
          let outs = Array.make out_numel (const_opnd ly 0) in
          for r = 0 to rows - 1 do
            let xs = List.init d (fun j -> data.((r * d) + j)) in
            let mean = emit_divround ly (emit_sum ly xs) ~divisor:d in
            let devs = List.map (fun x -> emit_binary ly ~spec Bsub x mean) xs in
            let sqs =
              List.map
                (fun dv -> emit_divround ly (emit_square ly ~spec dv) ~divisor:sf)
                devs
            in
            let var = emit_divround ly (emit_sum ly sqs) ~divisor:d in
            let var_eps = emit_binary ly ~spec Badd var (const_opnd ly eps_q) in
            let inv = emit_act_lookup ly "rsqrt" Fx.rsqrt var_eps in
            List.iteri
              (fun j dv ->
                let normalized = emit_mul ly ~spec dv inv in
                let scaled = emit_mul ly ~spec normalized gdata.(j) in
                outs.((r * d) + j) <- emit_binary ly ~spec Badd scaled bdata.(j))
              devs
          done;
          store_outputs id outs
      | Zkml_nn.Op.Batch_norm ->
          let x = opnd_tensor inp.(0)
          and scale = opnd_tensor inp.(1)
          and shift = opnd_tensor inp.(2) in
          let scaled =
            Zkml_nn.Float_exec.broadcast2 (fun a b -> (a, b)) x scale
          in
          let partial =
            T.map (fun (a, b) -> emit_mul ly ~spec a b) scaled
          in
          let final = Zkml_nn.Float_exec.broadcast2 (fun a b -> (a, b)) partial shift in
          let outs = Array.map (fun (a, b) -> emit_binary ly ~spec Badd a b) (T.data final) in
          store_outputs id outs
      (* shape operations: free — just rearrange cell references *)
      | Zkml_nn.Op.Reshape { shape } ->
          node_cells.(id) <- T.data (T.reshape (ref_tensor inp.(0)) shape)
      | Zkml_nn.Op.Transpose { perm } ->
          node_cells.(id) <- T.data (T.transpose (ref_tensor inp.(0)) perm)
      | Zkml_nn.Op.Concat { axis } ->
          node_cells.(id) <-
            T.data
              (T.concat axis (Array.to_list (Array.map ref_tensor inp)))
      | Zkml_nn.Op.Slice { starts; sizes } ->
          node_cells.(id) <- T.data (T.slice (ref_tensor inp.(0)) ~starts ~sizes)
      | Zkml_nn.Op.Pad { pads } ->
          node_cells.(id) <-
            T.data (T.pad (ref_tensor inp.(0)) ~pads ~value:zero_slot)
      | Zkml_nn.Op.Flatten ->
          let x = ref_tensor inp.(0) in
          node_cells.(id) <- T.data (T.reshape x [| (T.shape x).(0); -1 |])
      | Zkml_nn.Op.Squeeze _ | Zkml_nn.Op.Expand_dims _ ->
          node_cells.(id) <- node_cells.(inp.(0))
      | Zkml_nn.Op.Gather { indices; axis } ->
          node_cells.(id) <-
            T.data
              (Zkml_nn.Float_exec.gather_generic ~indices ~axis
                 (ref_tensor inp.(0))))
    nodes;
  (* expose outputs as public values *)
  List.iter
    (fun out_id ->
      let vals = T.data exec.Zkml_nn.Quant_exec.values.(out_id) in
      Array.iteri
        (fun i slot ->
          match !slot with
          | Some cell -> L.expose ly cell vals.(i)
          | None ->
              (* output element never materialized (can happen for pure
                 weight passthrough): load it now *)
              let row, col =
                L.alloc_lane ly ~kind:"io_load" ~width:1 ~register:(fun _ _ -> ())
              in
              let cell = L.put ly ~row ~col ~value:vals.(i) in
              slot := Some cell;
              L.expose ly cell vals.(i))
        node_cells.(out_id))
    (Zkml_nn.Graph.outputs graph);
  { layouter = ly; node_cells }

(** Lower with a single logical layout for every layer (the optimizer's
    pruned search, §7.2). *)
let lower ~spec ~cfg ~ncols ~counting graph exec =
  lower_with ~spec_fn:(fun _ -> spec) ~cfg ~ncols ~counting graph exec
