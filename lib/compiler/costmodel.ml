(** Cost estimation (§7.4). Proving cost is dominated by FFTs, MSMs,
    lookup-table construction and residual field arithmetic; the model
    combines per-operation timings measured once on the proving hardware
    (Algorithm 1's [BenchmarkOperations]) with the operation counts
    derived from a physical layout — equations (1) and (2) of the
    paper. *)

type backend = Kzg | Ipa

type op_times = {
  fft : (int * float) list;  (** measured (k, seconds per FFT of 2^k) *)
  msm : (int * float) list;
  lookup : (int * float) list;  (** table construction of 2^k entries *)
  field_op : float;  (** one multiply-add *)
}

let ceil_log2 x =
  let rec go k = if 1 lsl k >= x then k else go (k + 1) in
  go 0

(** Interpolate/extrapolate a measured curve at size 2^k. FFT-like costs
    scale as n log n, MSM and table costs roughly linearly in n; using
    the n log n rule for all three is accurate enough for ranking (the
    §9.5 experiment validates this). *)
let at_k curve k =
  let nlogn kk = float_of_int ((1 lsl kk) * max 1 kk) in
  match curve with
  | [] -> invalid_arg "Costmodel.at_k: empty curve"
  | curve -> (
      match List.assoc_opt k curve with
      | Some t -> t
      | None ->
          (* nearest measured k, scaled *)
          let kk, t =
            List.fold_left
              (fun (bk, bt) (ck, ct) ->
                if abs (ck - k) < abs (bk - k) then (ck, ct) else (bk, bt))
              (List.hd curve) curve
          in
          t *. nlogn k /. nlogn kk)

(** Measure the hardware profile once for a given field/group backend.
    The closures are supplied by the pipeline so this module stays
    independent of the functorized crypto code. *)
let benchmark ~fft_run ~msm_run ~lookup_run ~field_run ~ks =
  let measure run k =
    (Zkml_util.Timer.median_of 3 (fun () -> run k)).Zkml_util.Timer.median
  in
  {
    fft = List.map (fun k -> (k, measure fft_run k)) ks;
    msm = List.map (fun k -> (k, measure msm_run k)) ks;
    lookup = List.map (fun k -> (k, measure lookup_run k)) ks;
    field_op =
      (let n = 200_000 in
       (Zkml_util.Timer.median_of 3 (fun () -> field_run n))
         .Zkml_util.Timer.median
       /. float_of_int n);
  }

(** Operation counts for a physical layout, following eq. (2). *)
type counts = {
  n_fft : float;
  n_fft' : float;
  n_msm : float;
  n_lookup : int;
  d_max : int;
  ext_factor : int;
  terms : int;  (** quotient terms, for the residual field-op estimate *)
}

let counts_of_summary ~backend (s : Layouter.summary) =
  let d = max 3 s.Layouter.max_gate_degree in
  let n_i = 1 (* one instance column *) in
  let n_a = s.Layouter.advice_cols in
  let n_lk = s.Layouter.lookup_count in
  (* permutation: every advice column, the instance column and the
     constants column participate in copies *)
  let n_pm = n_a + 2 in
  let n_fft =
    float_of_int n_i +. float_of_int n_a
    +. (float_of_int n_lk *. 3.0)
    +. (float_of_int (n_pm + d - 3) /. float_of_int (d - 2))
  in
  let ext_factor = 1 lsl ceil_log2 d in
  let n_msm =
    n_fft +. float_of_int (match backend with Kzg -> d - 1 | Ipa -> d)
  in
  {
    n_fft;
    n_fft' = n_fft +. 1.0;
    n_msm;
    n_lookup = n_lk;
    d_max = d;
    ext_factor;
    terms = s.Layouter.gate_count + (5 * n_lk) + ((n_pm + d - 3) / (d - 2)) + 3;
  }

(** Predicted seconds split by op class — the quantities the §9.5
    accuracy experiment compares against measured span totals. *)
type breakdown = {
  b_fft : float;
  b_msm : float;
  b_lookup : float;
  b_residual : float;
}

let breakdown_total b = b.b_fft +. b.b_msm +. b.b_lookup +. b.b_residual

(** Equation (1) plus the MSM, lookup and residual terms, per op class,
    for a circuit with 2^k rows. *)
let estimate_breakdown times ~backend ~k (s : Layouter.summary) =
  let c = counts_of_summary ~backend s in
  let k' = k + ceil_log2 c.ext_factor in
  let c_fft = (c.n_fft *. at_k times.fft k) +. (c.n_fft' *. at_k times.fft k') in
  let c_msm = c.n_msm *. at_k times.msm k in
  let c_lookup = float_of_int c.n_lookup *. at_k times.lookup k in
  let ext_n = float_of_int ((1 lsl k) * c.ext_factor) in
  let c_residual = ext_n *. float_of_int c.terms *. times.field_op *. 2.0 in
  { b_fft = c_fft; b_msm = c_msm; b_lookup = c_lookup; b_residual = c_residual }

(** Estimated proving seconds: the sum of the per-class breakdown. *)
let estimate_time times ~backend ~k (s : Layouter.summary) =
  breakdown_total (estimate_breakdown times ~backend ~k s)

(** Estimated proof size in bytes, from the same structural counts (for
    the size-optimization objective, Table 14). *)
let estimate_size ~backend ~k ~group_bytes ~field_bytes (s : Layouter.summary) =
  let c = counts_of_summary ~backend s in
  let perm_chunks = (s.Layouter.advice_cols + 2 + c.d_max - 3) / (c.d_max - 2) in
  let commitments =
    s.Layouter.advice_cols + (3 * c.n_lookup) + perm_chunks + c.ext_factor
  in
  let evals =
    s.Layouter.fixed_cols + s.Layouter.advice_cols
    + (s.Layouter.advice_cols + 2) (* sigmas *)
    + (3 * perm_chunks)
    + (5 * c.n_lookup) + c.ext_factor
  in
  let opening =
    match backend with
    | Kzg -> 4 * group_bytes
    | Ipa -> 4 * (((2 * k) + 2) * group_bytes)
  in
  (commitments * group_bytes) + (evals * field_bytes) + opening
