(** Split-and-aggregate planning: cut a model graph at layer boundaries
    into N contiguous segments, each compiled to its own (smaller)
    plonkish circuit. Inter-segment values become "seams": the producing
    segment re-exposes them as public outputs, every consuming segment
    re-imports them as public inputs, and the aggregate verifier checks
    that all public copies agree (plus a digest binding carried in the
    proof file). Planning is deterministic — prover and verifier derive
    the identical plan from (graph, spec, ncols, cfg, segments), so the
    plan itself never travels with the proof. *)

module G = Zkml_nn.Graph
module Op = Zkml_nn.Op
module T = Zkml_tensor.Tensor

(* Wire-format bound: segment counts live in a u8 with headroom, and a
   16-way split already exceeds the useful parallelism of one host. *)
let max_segments = 16

type seg = {
  sg_index : int;
  sg_graph : G.t;  (** imports as Input nodes first, then the chunk *)
  sg_imports : int list;  (** full-graph node ids, ascending *)
  sg_exports : int list;  (** full-graph node ids, ascending *)
  sg_import_off : (int * int) list;  (** full id -> instance offset *)
  sg_export_off : (int * int) list;  (** full id -> instance offset *)
  sg_inst_len : int;  (** imports + exports, in field elements *)
  sg_rows : int;  (** content rows (counting lower) *)
  sg_k : int;  (** minimal k for this segment *)
}

type seam = {
  sm_node : int;  (** full-graph node id of the crossing value *)
  sm_numel : int;
  sm_src : int * int;  (** canonical copy: (segment, instance offset) *)
  sm_dsts : (int * int) list;  (** every other public copy *)
}

type plan = { p_segments : seg array; p_seams : seam array }

let is_compute (n : G.node) =
  match n.G.op with Op.Input _ | Op.Weight _ -> false | _ -> true

(* Contiguous weight-balanced chunking of the compute nodes: chunk
   boundaries fall where the running output-numel crosses the
   proportional share, every chunk keeps at least one node. *)
let chunk_bounds weights n =
  let m = Array.length weights in
  let total = max 1 (Array.fold_left ( + ) 0 weights) in
  let bounds = Array.make (n + 1) 0 in
  let i = ref 0 in
  let cum = ref 0 in
  for j = 0 to n - 1 do
    let limit = m - (n - 1 - j) in
    (* at least one node per chunk *)
    cum := !cum + weights.(!i);
    incr i;
    while !i < limit && !cum * n < total * (j + 1) do
      cum := !cum + weights.(!i);
      incr i
    done;
    bounds.(j + 1) <- !i
  done;
  bounds.(n) <- m;
  bounds

let plan ~spec ~ncols ~cfg ~segments graph =
  let nodes = G.nodes graph in
  (* Shapes of every intermediate value, from a structure-only run. *)
  let shape_exec =
    Zkml_nn.Quant_exec.run ~saturate:true cfg graph
      ~inputs:
        (Array.to_list nodes
        |> List.filter_map (fun (n : G.node) ->
               match n.G.op with
               | Op.Input { shape } -> Some (T.create shape 0)
               | _ -> None))
  in
  let numel id = T.numel shape_exec.Zkml_nn.Quant_exec.values.(id) in
  let shape id = T.shape shape_exec.Zkml_nn.Quant_exec.values.(id) in
  let compute = Array.of_list (List.filter is_compute (Array.to_list nodes)) in
  let m = Array.length compute in
  if m = 0 then invalid_arg "Segment.plan: graph has no compute nodes";
  let n = max 1 (min segments (min max_segments m)) in
  let bounds = chunk_bounds (Array.map (fun c -> numel c.G.id) compute) n in
  let chunk_of = Array.make (Array.length nodes) (-1) in
  for j = 0 to n - 1 do
    for i = bounds.(j) to bounds.(j + 1) - 1 do
      chunk_of.(compute.(i).G.id) <- j
    done
  done;
  (* Model outputs must be compute nodes: an Input/Weight output would
     have no producing segment to export it from. *)
  List.iter
    (fun id ->
      if chunk_of.(id) < 0 then
        invalid_arg "Segment.plan: model output is not a compute node")
    (G.outputs graph);
  let consumer_chunks = Array.make (Array.length nodes) [] in
  Array.iter
    (fun (nd : G.node) ->
      if is_compute nd then
        Array.iter
          (fun src ->
            let c = chunk_of.(nd.G.id) in
            if not (List.mem c consumer_chunks.(src)) then
              consumer_chunks.(src) <- consumer_chunks.(src) @ [ c ])
          nd.G.inputs)
    nodes;
  (* Imports of chunk j: values produced outside j that j consumes —
     full-graph Inputs and earlier-chunk compute nodes. Weights are not
     imported; each segment embeds its own copy of the tensor (weight
     lowering is position-independent, so copies cost nothing extra).
     Inputs nobody consumes still belong to the public statement: they
     are assigned to segment 0. *)
  let imports = Array.make n [] in
  Array.iteri
    (fun id (nd : G.node) ->
      match nd.G.op with
      | Op.Weight _ -> ()
      | Op.Input _ ->
          let cs = consumer_chunks.(id) in
          let cs = if cs = [] then [ 0 ] else cs in
          List.iter (fun c -> imports.(c) <- imports.(c) @ [ id ]) cs
      | _ ->
          List.iter
            (fun c ->
              if c > chunk_of.(id) then imports.(c) <- imports.(c) @ [ id ])
            consumer_chunks.(id))
    nodes;
  let imports = Array.map (List.sort_uniq compare) imports in
  (* Exports of chunk j: compute nodes consumed by a later chunk, plus
     the model outputs that live in j. *)
  let exports = Array.make n [] in
  Array.iter
    (fun (c : G.node) ->
      let id = c.G.id in
      let j = chunk_of.(id) in
      let crosses = List.exists (fun c' -> c' > j) consumer_chunks.(id) in
      if crosses || List.mem id (G.outputs graph) then
        exports.(j) <- exports.(j) @ [ id ])
    compute;
  let exports = Array.map (List.sort_uniq compare) exports in
  let offsets ids =
    let off = ref 0 in
    List.map
      (fun id ->
        let o = !off in
        off := o + numel id;
        (id, o))
      ids
  in
  let segs =
    Array.init n (fun j ->
        let sg = G.create (Printf.sprintf "%s.seg%d" (G.name graph) j) in
        (* full-graph id -> id inside the segment graph *)
        let local = Hashtbl.create 32 in
        List.iter
          (fun id -> Hashtbl.replace local id (G.input sg (shape id)))
          imports.(j);
        let local_of src =
          match Hashtbl.find_opt local src with
          | Some l -> l
          | None -> (
              (* only Weight producers materialize lazily *)
              match (G.node graph src).G.op with
              | Op.Weight { tensor } ->
                  let l =
                    G.add ~label:(G.node graph src).G.label sg
                      (Op.Weight { tensor }) [||]
                  in
                  Hashtbl.replace local src l;
                  l
              | _ ->
                  invalid_arg "Segment.plan: consumed value has no segment")
        in
        for i = bounds.(j) to bounds.(j + 1) - 1 do
          let nd = compute.(i) in
          let l =
            G.add ~label:nd.G.label sg nd.G.op
              (Array.map local_of nd.G.inputs)
          in
          Hashtbl.replace local nd.G.id l
        done;
        List.iter (fun id -> G.mark_output sg (Hashtbl.find local id))
          exports.(j);
        let import_off = offsets imports.(j) in
        let import_len =
          List.fold_left (fun a id -> a + numel id) 0 imports.(j)
        in
        let export_off =
          List.map (fun (id, o) -> (id, o + import_len))
            (offsets exports.(j))
        in
        let inst_len =
          import_len
          + List.fold_left (fun a id -> a + numel id) 0 exports.(j)
        in
        let seg_exec =
          Zkml_nn.Quant_exec.run ~saturate:true cfg sg
            ~inputs:(List.map (fun id -> T.create (shape id) 0) imports.(j))
        in
        let lowered =
          Lower.lower ~spec ~cfg ~ncols ~counting:true sg seg_exec
        in
        let ly = lowered.Lower.layouter in
        {
          sg_index = j;
          sg_graph = sg;
          sg_imports = imports.(j);
          sg_exports = exports.(j);
          sg_import_off = import_off;
          sg_export_off = export_off;
          sg_inst_len = inst_len;
          sg_rows = (Layouter.summary ly).Layouter.rows_content;
          sg_k = Layouter.optimal_k ly ~blinding:Optimizer.blinding;
        })
  in
  (* Seams: one per value with more than one public copy. The canonical
     copy of a compute node is its export slot; of a full-graph Input,
     its first import slot. *)
  let seams = ref [] in
  Array.iteri
    (fun id (nd : G.node) ->
      let copies =
        Array.to_list segs
        |> List.concat_map (fun s ->
               let at l = List.assoc_opt id l in
               List.filter_map
                 (fun o -> Option.map (fun off -> (s.sg_index, off)) o)
                 [ at s.sg_export_off; at s.sg_import_off ])
      in
      match copies with
      | [] | [ _ ] -> ()
      | src :: dsts ->
          ignore nd;
          seams :=
            { sm_node = id; sm_numel = numel id; sm_src = src; sm_dsts = dsts }
            :: !seams)
    nodes;
  { p_segments = segs; p_seams = Array.of_list (List.rev !seams) }

(** Largest per-segment content-row count — the peak memory proxy the
    bench reports against the monolithic row count. *)
let peak_rows plan =
  Array.fold_left (fun a s -> max a s.sg_rows) 0 plan.p_segments

(** Slice one seam copy out of a segment's (padded) integer instance
    column. Returns [None] when the column is too short — a malformed
    proof file, never an internal error. *)
let slice_copy (inst : int array) ~off ~numel =
  if off < 0 || numel < 0 || off + numel > Array.length inst then None
  else Some (Array.sub inst off numel)
