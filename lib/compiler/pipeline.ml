(** End-to-end pipeline tying the compiler to the proving system:
    quantize + execute, optimize the layout, build the circuit, keygen,
    prove and verify — the "bash interface" layer of the paper's Figure
    3, functorized over the commitment backend. *)

(** One row of the cost-model accuracy report (paper §9.5): predicted
    seconds for an op class vs the measured span total from a traced
    proving run. *)
type op_accuracy = {
  op : string;
  predicted_s : float;
  measured_s : float;
}

let accuracy_ratio a =
  if a.measured_s > 0.0 then a.predicted_s /. a.measured_s else nan

module Make (Scheme : Zkml_commit.Scheme_intf.S) = struct
  module Proto = Zkml_plonkish.Protocol.Make (Scheme)
  module F = Proto.F
  module P = Proto.P
  module M = Zkml_ec.Msm.Make (Scheme.G)
  module T = Zkml_tensor.Tensor
  module Fx = Zkml_fixed.Fixed

  let backend_name = Scheme.name

  (* ------------------------------------------------------------------ *)
  (* Hardware calibration (BenchmarkOperations, run once per backend) *)

  (* Calibration workloads draw their inputs from a fixed-seed rng so
     the measured kernels run on representative (non-structured) data
     rather than small consecutive integers. *)
  let calibrate ?(ks = [ 8; 10; 12 ]) params =
    let rng = Zkml_util.Rng.create 77L in
    Costmodel.benchmark ~ks
      ~fft_run:(fun k ->
        let d = P.Domain.create k in
        let a = Array.init (P.Domain.size d) (fun _ -> F.random rng) in
        P.ntt d a)
      ~msm_run:(fun k ->
        let n = 1 lsl k in
        let coeffs = Array.init n (fun _ -> F.random rng) in
        ignore (Scheme.commit params coeffs))
      ~lookup_run:(fun k ->
        let n = 1 lsl k in
        let a = Array.init n (fun _ -> F.of_int (Zkml_util.Rng.int rng n)) in
        Array.sort F.compare a)
      ~field_run:(fun n ->
        let x = ref (F.random rng) in
        for _ = 1 to n do
          x := F.add (F.mul !x !x) F.one
        done;
        ignore !x)

  let times_cache : (string, Costmodel.op_times) Hashtbl.t = Hashtbl.create 4

  let calibrated params =
    match Hashtbl.find_opt times_cache Scheme.name with
    | Some t -> t
    | None ->
        let t =
          Zkml_obs.Obs.Span.with_ ~name:"calibrate" (fun () ->
              calibrate params)
        in
        Hashtbl.add times_cache Scheme.name t;
        t

  let backend = if Scheme.name = "kzg" then Costmodel.Kzg else Costmodel.Ipa

  (* ------------------------------------------------------------------ *)
  (* Build: turn a plan into field-typed circuit + witness *)

  type artifacts = {
    keys : Proto.keys;
    advice : F.t array array;
    instance : F.t array array;
    plan : Optimizer.plan;
    built : Layouter.built;
  }

  let to_field_circuit (c : int Zkml_plonkish.Circuit.t) : Proto.circuit =
    {
      Zkml_plonkish.Circuit.k = c.k;
      num_fixed = c.num_fixed;
      is_selector = c.is_selector;
      advice_phases = c.advice_phases;
      num_instance = c.num_instance;
      num_challenges = c.num_challenges;
      gates =
        List.map
          (fun (g : int Zkml_plonkish.Circuit.gate) ->
            {
              Zkml_plonkish.Circuit.gate_name = g.gate_name;
              polys = List.map (Zkml_plonkish.Expr.map_const F.of_int) g.polys;
            })
          c.gates;
      lookups =
        List.map
          (fun (l : int Zkml_plonkish.Circuit.lookup) ->
            {
              Zkml_plonkish.Circuit.lookup_name = l.lookup_name;
              inputs = List.map (Zkml_plonkish.Expr.map_const F.of_int) l.inputs;
              tables = List.map (Zkml_plonkish.Expr.map_const F.of_int) l.tables;
            })
          c.lookups;
      copies = c.copies;
      blinding = c.blinding;
    }

  let build params (plan : Optimizer.plan) ~cfg graph exec =
    let lowered =
      Lower.lower_with ~spec_fn:plan.Optimizer.spec_fn ~cfg
        ~ncols:plan.Optimizer.ncols ~counting:false graph exec
    in
    let built =
      Layouter.finalize lowered.Lower.layouter ~blinding:Optimizer.blinding
        ~k:plan.Optimizer.k
    in
    let circuit = to_field_circuit built.Layouter.circuit in
    let to_f = Array.map (fun col -> Array.map F.of_int col) in
    let fixed = to_f built.Layouter.fixed in
    let advice = to_f built.Layouter.advice in
    let instance = [| Array.map F.of_int built.Layouter.instance_col |] in
    let keys = Proto.keygen params circuit ~fixed in
    { keys; advice; instance; plan; built }

  let prove params artifacts ~rng =
    Proto.prove params artifacts.keys ~instance:artifacts.instance
      ~advice:(fun _ -> Array.map Array.copy artifacts.advice)
      ~rng

  let verify params artifacts proof =
    Proto.verify params artifacts.keys ~instance:artifacts.instance proof

  (* ------------------------------------------------------------------ *)
  (* Verification from serialized artifacts (CLI support). The circuit
     structure depends only on shapes and the plan, so a verifier can
     rebuild the keys from the public model file without the witness. *)

  let zero_inputs graph =
    Zkml_nn.Graph.nodes graph |> Array.to_list
    |> List.filter_map (fun (n : Zkml_nn.Graph.node) ->
           match n.Zkml_nn.Graph.op with
           | Zkml_nn.Op.Input { shape } -> Some (T.create shape 0)
           | _ -> None)

  (** Rebuild proving/verifying keys for a fixed physical layout using a
      dummy (all-zero) execution: structure only, no witness. *)
  let rebuild_keys params ~spec ~ncols ~k ~cfg graph =
    let exec =
      Zkml_nn.Quant_exec.run ~saturate:true cfg graph
        ~inputs:(zero_inputs graph)
    in
    let lowered = Lower.lower ~spec ~cfg ~ncols ~counting:false graph exec in
    let built =
      Layouter.finalize lowered.Lower.layouter ~blinding:Optimizer.blinding ~k
    in
    let circuit = to_field_circuit built.Layouter.circuit in
    let fixed =
      Array.map (fun col -> Array.map F.of_int col) built.Layouter.fixed
    in
    Proto.keygen params circuit ~fixed

  (** Build the per-input witness for a fixed physical layout: advice
      grid, field-typed instance column, and the raw centered-integer
      instance values (what proof files carry). Input-dependent only —
      the circuit structure and keys are those of {!rebuild_keys} for
      the same layout. *)
  type witness = {
    w_advice : F.t array array;
    w_instance : F.t array array;
    w_instance_ints : int array;
  }

  let witness ~spec ~ncols ~k ~cfg graph inputs =
    Zkml_obs.Obs.Span.with_ ~name:"witness" @@ fun () ->
    let qinputs = List.map (T.map (Fx.quantize cfg)) inputs in
    let exec = Zkml_nn.Quant_exec.run cfg graph ~inputs:qinputs in
    let lowered = Lower.lower ~spec ~cfg ~ncols ~counting:false graph exec in
    let built =
      Layouter.finalize lowered.Lower.layouter ~blinding:Optimizer.blinding ~k
    in
    {
      w_advice =
        Array.map (fun col -> Array.map F.of_int col) built.Layouter.advice;
      w_instance = [| Array.map F.of_int built.Layouter.instance_col |];
      w_instance_ints = built.Layouter.instance_col;
    }

  (** {!witness} for callers that already hold quantized integer
      tensors — the segmented prover feeds exact intermediate values of
      the full-model execution into each segment, so no re-quantization
      may happen here. *)
  let witness_ints ~spec ~ncols ~k ~cfg graph (qinputs : int T.t list) =
    Zkml_obs.Obs.Span.with_ ~name:"witness" @@ fun () ->
    let exec = Zkml_nn.Quant_exec.run cfg graph ~inputs:qinputs in
    let lowered = Lower.lower ~spec ~cfg ~ncols ~counting:false graph exec in
    let built =
      Layouter.finalize lowered.Lower.layouter ~blinding:Optimizer.blinding ~k
    in
    {
      w_advice =
        Array.map (fun col -> Array.map F.of_int col) built.Layouter.advice;
      w_instance = [| Array.map F.of_int built.Layouter.instance_col |];
      w_instance_ints = built.Layouter.instance_col;
    }

  let instance_col_of_ints keys instance_ints =
    let module Err = Zkml_util.Err in
    let n = 1 lsl keys.Proto.circuit.Zkml_plonkish.Circuit.k in
    if Array.length instance_ints > n then
      Error
        (Err.make ~context:[ "instance" ] Err.Out_of_range
           (Printf.sprintf "%d public values for a circuit with %d rows"
              (Array.length instance_ints) n))
    else begin
      let col = Array.make n F.zero in
      Array.iteri (fun i v -> col.(i) <- F.of_int v) instance_ints;
      Ok [| col |]
    end

  (** Classify serialized proof bytes against keys and the public values
      (the instance column as centered integers). Total: malformed bytes
      come back as {!Proto.Malformed}, never as an exception. *)
  (* Instance-level parse failures never reach [Proto.verify_bytes], so
     they are tallied here; together the two sites count every judgement
     exactly once. *)
  let tally_malformed v =
    Zkml_obs.Metrics.inc
      ~labels:[ ("verdict", "malformed") ]
      ~help:"Verifier verdicts on untrusted proof bytes"
      "zkml_verify_verdicts_total" 1.0;
    v

  let verify_verdict params keys ~instance_ints bytes =
    match instance_col_of_ints keys instance_ints with
    | Error e -> tally_malformed (Proto.Malformed e)
    | Ok instance -> Proto.verify_bytes params keys ~instance bytes

  (** Batched {!verify_verdict}: one RLC'd final check for the whole
      batch (see {!Proto.verify_many}); any malformed member classifies
      the batch as [Malformed], and the combined check localizes nothing
      — one false proof rejects the batch. *)
  let verify_many_verdict params keys
      ~(batch : (int array * string) list) =
    let module Err = Zkml_util.Err in
    let rec cols acc i = function
      | [] -> Ok (List.rev acc)
      | (instance_ints, bytes) :: rest -> (
          match instance_col_of_ints keys instance_ints with
          | Error e ->
              Error (Err.with_context (Printf.sprintf "batch[%d]" i) e)
          | Ok instance -> cols ((instance, bytes) :: acc) (i + 1) rest)
    in
    match cols [] 0 batch with
    | Error e -> tally_malformed (Proto.Malformed e)
    | Ok batch -> Proto.verify_many_bytes params keys ~batch

  (** Boolean view of {!verify_verdict} for callers that only care
      whether the proof is accepted. *)
  let verify_bytes params keys ~instance_ints bytes =
    match verify_verdict params keys ~instance_ints bytes with
    | Proto.Accepted -> true
    | Proto.Rejected | Proto.Malformed _ -> false

  (* ------------------------------------------------------------------ *)
  (* One-call convenience used by examples, tests and benches *)

  type result = {
    plan : Optimizer.plan;
    proof : Proto.proof;
    verified : bool;
    proof_bytes : int;
    optimize_s : float;
    keygen_s : float;
    prove_s : float;
    verify_s : float;
    outputs : int T.t list;  (** fixed-point model outputs *)
  }

  (** Compare {!Costmodel} predictions against the measured span totals
      of a traced proving run (the report must come from a run executed
      with the sink enabled). Only spans under "prove" count, matching
      what equation (1) predicts; the residual class is the prover time
      not attributed to ntt/msm/lookup spans. *)
  let cost_accuracy params (plan : Optimizer.plan) report =
    let module Obs = Zkml_obs.Obs in
    let times = calibrated params in
    let b =
      Costmodel.estimate_breakdown times ~backend ~k:plan.Optimizer.k
        plan.Optimizer.summary
    in
    let m_ntt = Obs.total_of ~under:"prove" report "ntt" in
    let m_msm = Obs.total_of ~under:"prove" report "msm" in
    let m_lookup = Obs.total_of ~under:"prove" report "lookup" in
    let m_prove = Obs.total_of report "prove" in
    let m_residual = Float.max 0.0 (m_prove -. m_ntt -. m_msm -. m_lookup) in
    [
      { op = "ntt"; predicted_s = b.Costmodel.b_fft; measured_s = m_ntt };
      { op = "msm"; predicted_s = b.Costmodel.b_msm; measured_s = m_msm };
      {
        op = "lookup";
        predicted_s = b.Costmodel.b_lookup;
        measured_s = m_lookup;
      };
      {
        op = "field-residual";
        predicted_s = b.Costmodel.b_residual;
        measured_s = m_residual;
      };
      {
        op = "total-prove";
        predicted_s = Costmodel.breakdown_total b;
        measured_s = m_prove;
      };
    ]

  let required_srs_size plan =
    (* quotient pieces are the largest committed polynomials: n each *)
    1 lsl plan.Optimizer.k

  let run ?(cfg = Fx.default) ?(objective = Optimizer.Min_time) ?specs
      ?(ncols_min = 4) ?(ncols_max = 40) ?(seed = 42L) ~params graph inputs =
    let qinputs = List.map (T.map (Fx.quantize cfg)) inputs in
    let exec = Zkml_nn.Quant_exec.run cfg graph ~inputs:qinputs in
    let times = calibrated params in
    let k_max =
      let rec lg n acc = if n <= 1 then acc else lg (n / 2) (acc + 1) in
      lg (Scheme.max_size params) 0
    in
    let (plan, _), optimize_s =
      Zkml_util.Timer.time (fun () ->
          Optimizer.optimize ?specs ~ncols_min ~ncols_max ~objective ~k_max
            ~times ~backend ~group_bytes:Scheme.G.size_bytes
            ~field_bytes:F.size_bytes ~cfg graph exec)
    in
    if required_srs_size plan > Scheme.max_size params then
      failwith
        (Printf.sprintf
           "SRS too small: circuit needs 2^%d rows, params support %d"
           plan.Optimizer.k (Scheme.max_size params));
    let artifacts, keygen_s =
      Zkml_util.Timer.time (fun () ->
          Zkml_obs.Obs.Span.with_ ~name:"build" (fun () ->
              build params plan ~cfg graph exec))
    in
    let rng = Zkml_util.Rng.create seed in
    let proof, prove_s =
      Zkml_util.Timer.time (fun () -> prove params artifacts ~rng)
    in
    let verified, verify_s =
      Zkml_util.Timer.time (fun () -> verify params artifacts proof)
    in
    Zkml_obs.Obs.gauge_int "k" plan.Optimizer.k;
    Zkml_obs.Obs.gauge_int "ncols" plan.Optimizer.ncols;
    Zkml_obs.Obs.gauge_int "proof.bytes" (Proto.proof_size_bytes proof);
    {
      plan;
      proof;
      verified;
      proof_bytes = Proto.proof_size_bytes proof;
      optimize_s;
      keygen_s;
      prove_s;
      verify_s;
      outputs = Zkml_nn.Quant_exec.output_values exec graph;
    }
end
