(** Automated under-constraint detection over the typed constraint IR.

    A gadget is sound only if its constraints pin down every cell it is
    responsible for: given the (copy-tied) operands, the outputs and
    auxiliary witness cells must be uniquely determined, or a malicious
    prover can substitute a second witness and prove a wrong inference
    result. The layouter records exactly those cells
    ({!Layouter.built.tracked}: gadget outputs, auxiliary witnesses like
    division remainders and decomposition bits, io cells), and this
    module runs a randomized second-witness search against them: perturb
    one tracked cell at a time through a battery of candidate values
    (the PR 4 soundness-mutation battery, extended with ±1 / 0 / negate
    / random candidates) and re-check every constraint touching the
    cell with the {!Cs.Check} reference evaluator. A cell that survives
    some perturbation is {e under-constrained}: the perturbed grid is a
    second witness for the same instance, and the cell is reported with
    both witness values.

    What this does and does not guarantee is documented in DESIGN.md
    ("Constraint IR & under-constraint checking"): single-cell
    perturbations cannot exhibit second witnesses that require moving
    several cells at once, and untracked cells (weights — existentially
    quantified — and dead lane-prefill cells) are out of scope by
    design. *)

module C = Zkml_plonkish.Circuit
module Cs = Zkml_plonkish.Cs
module E = Zkml_plonkish.Expr
module Fx = Zkml_fixed.Fixed
module L = Layouter
module Metrics = Zkml_obs.Metrics

module Make (F : Zkml_ff.Field_intf.S) = struct
  module Chk = Cs.Check (F)

  type finding = {
    f_gadget : string;  (** gadget kind owning the row *)
    f_col : int;  (** advice column *)
    f_row : int;
    f_original : F.t;  (** the honest witness's cell value *)
    f_alternative : F.t;
        (** a second value accepted by every constraint — the two
            witnesses differ in exactly this cell *)
  }

  type report = {
    r_honest : Cs.violation list;
        (** reference-checker violations of the honest witness itself
            (non-empty means the gadget's constraints are wrong, not
            just incomplete) *)
    r_cells : int;  (** tracked cells perturbed *)
    r_candidates : int;  (** candidate second witnesses tried *)
    r_findings : finding list;
  }

  let pp_finding f =
    Printf.sprintf
      "under-constrained cell in gadget '%s': advice[%d] row %d — honest \
       witness has %s, second witness has %s (all other cells identical)"
      (if f.f_gadget = "" then "?" else f.f_gadget)
      f.f_col f.f_row (F.to_hex f.f_original) (F.to_hex f.f_alternative)

  let clean r = r.r_honest = [] && r.r_findings = []

  (** Exhaustive single-cell second-witness search over the tracked
      cells of a finalized layout. Deterministic for a given [seed]. *)
  let check_built ?(seed = 1234L) (built : L.built) : report =
    let circuit = built.L.circuit in
    let n = 1 lsl circuit.C.k in
    let usable = C.last_row circuit in
    let grids =
      {
        Chk.n;
        usable;
        fixed = Array.map (Array.map F.of_int) built.L.fixed;
        advice = Array.map (Array.map F.of_int) built.L.advice;
        instance = [| Array.map F.of_int built.L.instance_col |];
      }
    in
    let cs = Cs.map_const F.of_int built.L.cs in
    (* the honest witness must satisfy the reference semantics before
       perturbations mean anything *)
    let honest = Chk.check cs grids in
    let gates = Array.of_list cs.Cs.cs_gates in
    let lookups = Array.of_list cs.Cs.cs_lookups in
    let tables = Array.map (fun l -> Chk.table_rows grids l) lookups in
    (* query indexes: advice column -> constraints reading it (with the
       rotation, so the affected row can be recovered) *)
    let gate_idx : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    let lookup_idx : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    let index tbl i e =
      ignore
        (E.fold_queries
           (fun () kind (q : E.query) ->
             if kind = E.KAdvice then begin
               let prev =
                 Option.value ~default:[] (Hashtbl.find_opt tbl q.E.col)
               in
               if not (List.mem (i, q.E.rot) prev) then
                 Hashtbl.replace tbl q.E.col ((i, q.E.rot) :: prev)
             end)
           () e)
    in
    Array.iteri
      (fun i (g : F.t Cs.gate) -> List.iter (index gate_idx i) g.Cs.g_bodies)
      gates;
    Array.iteri
      (fun i (l : F.t Cs.lookup) ->
        List.iter
          (function
            | Cs.Li_gated e | Cs.Li_gated_default (e, _) -> index lookup_idx i e)
          l.Cs.l_inputs)
      lookups;
    let copy_idx : (int * int, (Cs.cell * Cs.cell) list) Hashtbl.t =
      Hashtbl.create 256
    in
    List.iter
      (fun ((a, b) as pair) ->
        let note = function
          | C.Col_advice col, row ->
              let prev =
                Option.value ~default:[]
                  (Hashtbl.find_opt copy_idx (col, row))
              in
              Hashtbl.replace copy_idx (col, row) (pair :: prev)
          | _ -> ()
        in
        note a;
        note b)
      cs.Cs.cs_copies;
    (* does the (mutated) grid satisfy every constraint that can see
       advice cell (col, row)? *)
    let cell_still_accepted ~col ~row =
      let wrap r = ((r mod n) + n) mod n in
      List.for_all
        (fun (gi, rot) ->
          Chk.gate_holds_at grids gates.(gi) ~row:(wrap (row - rot)) = `Ok)
        (Option.value ~default:[] (Hashtbl.find_opt gate_idx col))
      && List.for_all
           (fun (li, rot) ->
             let r = wrap (row - rot) in
             r >= usable
             || Chk.lookup_holds_at grids lookups.(li) ~table:tables.(li)
                  ~row:r)
           (Option.value ~default:[] (Hashtbl.find_opt lookup_idx col))
      && List.for_all
           (fun (a, b) -> F.equal (Chk.cell_at grids a) (Chk.cell_at grids b))
           (Option.value ~default:[] (Hashtbl.find_opt copy_idx (col, row)))
    in
    let rng = Zkml_util.Rng.create seed in
    let candidates_tried = ref 0 in
    let findings = ref [] in
    Array.iter
      (fun (col, row) ->
        let v = grids.Chk.advice.(col).(row) in
        let candidates =
          [
            F.add v F.one;
            F.sub v F.one;
            F.zero;
            F.neg v;
            F.random rng;
            F.random rng;
          ]
        in
        let found = ref None in
        List.iter
          (fun cand ->
            if !found = None && not (F.equal cand v) then begin
              incr candidates_tried;
              grids.Chk.advice.(col).(row) <- cand;
              if cell_still_accepted ~col ~row then found := Some cand;
              grids.Chk.advice.(col).(row) <- v
            end)
          candidates;
        match !found with
        | None -> ()
        | Some alt ->
            let gadget =
              if row < Array.length built.L.row_kinds then
                built.L.row_kinds.(row)
              else ""
            in
            findings :=
              {
                f_gadget = gadget;
                f_col = col;
                f_row = row;
                f_original = v;
                f_alternative = alt;
              }
              :: !findings)
      built.L.tracked;
    let report =
      {
        r_honest = honest;
        r_cells = Array.length built.L.tracked;
        r_candidates = !candidates_tried;
        r_findings = List.rev !findings;
      }
    in
    Metrics.inc "zkml_constraint_check_cells_total"
      ~help:"Tracked advice cells perturbed by the under-constraint detector"
      (float_of_int report.r_cells);
    Metrics.inc "zkml_constraint_check_candidates_total"
      ~help:"Candidate second witnesses tried by the under-constraint detector"
      (float_of_int report.r_candidates);
    Metrics.inc "zkml_constraint_check_violations_total"
      ~help:
        "Under-constrained cells found plus honest-witness constraint \
         violations"
      (float_of_int (List.length report.r_findings + List.length honest));
    report

  (** {1 Gadget isolation suite} *)

  let blinding = Optimizer.blinding

  let check_gadget ?seed ~cfg ~ncols emit : report =
    let ly = L.create ~ncols ~cfg ~counting:false in
    emit ly;
    let k = L.optimal_k ly ~blinding in
    let built = L.finalize ly ~blinding ~k in
    let r = check_built ?seed built in
    Metrics.inc "zkml_constraint_check_gadgets_total"
      ~help:"Gadget circuits checked in isolation" 1.;
    r

  (* Every gadget from the §5 library emitted in isolation with pinned
     (constant-copied) operands, several instances per gadget so packing
     and lane prefill are exercised. Mirrors test_gadgets coverage. *)
  let gadget_suite ?seed ~cfg () : (string * report) list =
    let spec = Layout_spec.default in
    let via = { Layout_spec.default with Layout_spec.arith = Layout_spec.Via_dot } in
    let c ly v = Lower.const_opnd ly v in
    let expose_out ly (o : Lower.opnd) =
      match o.Lower.cell with
      | Some cell -> L.expose ly cell o.Lower.v
      | None -> ()
    in
    let tb = cfg.Fx.table_bits in
    let cases =
      [
        ( "sum",
          9,
          fun ly ->
            expose_out ly
              (Lower.emit_sum ly
                 (List.map (c ly) [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5 ])) );
        ( "dot_plain",
          9,
          fun ly ->
            expose_out ly
              (Lower.emit_dot_plain ly
                 (List.map
                    (fun (a, b) -> (c ly a, c ly b))
                    [ (2, 3); (4, 5); (6, 7); (1, 8); (3, 3) ])) );
        ( "dot_bias",
          10,
          fun ly ->
            expose_out ly
              (Lower.emit_dot_bias ly
                 (List.map
                    (fun (a, b) -> (c ly a, c ly b))
                    [ (2, 3); (4, 5); (6, 7); (1, 8); (3, 3) ])
                 (c ly 2)) );
        ( "divround",
          9,
          fun ly ->
            List.iter
              (fun v ->
                expose_out ly (Lower.emit_divround ly (c ly v) ~divisor:7))
              [ 0; 13; -9; 20 ] );
        ( "vardiv",
          8,
          fun ly ->
            List.iter
              (fun (a, b) ->
                expose_out ly (Lower.emit_vardiv ly (c ly a) (c ly b)))
              [ (10, 3); (0, 1); (-4, 5) ] );
        ( "add",
          9,
          fun ly ->
            expose_out ly (Lower.emit_binary_custom ly Lower.Badd (c ly 5) (c ly 7))
        );
        ( "sub",
          9,
          fun ly ->
            expose_out ly (Lower.emit_binary_custom ly Lower.Bsub (c ly 5) (c ly 9))
        );
        ( "mul_raw",
          9,
          fun ly ->
            expose_out ly
              (Lower.emit_binary_custom ly Lower.Bmul_raw (c ly (-4)) (c ly 7)) );
        ( "sqdiff_raw",
          9,
          fun ly ->
            expose_out ly
              (Lower.emit_binary_custom ly Lower.Bsqdiff_raw (c ly 3) (c ly 8)) );
        ( "max",
          9,
          fun ly ->
            List.iter
              (fun (a, b) ->
                expose_out ly
                  (Lower.emit_binary_custom ly Lower.Bmax (c ly a) (c ly b)))
              [ (3, 9); (9, 3); (4, 4); (-2, -7) ] );
        ( "min",
          9,
          fun ly ->
            List.iter
              (fun (a, b) ->
                expose_out ly
                  (Lower.emit_binary_custom ly Lower.Bmin (c ly a) (c ly b)))
              [ (3, 9); (9, 3); (4, 4); (-2, -7) ] );
        ( "add_via_dot",
          9,
          fun ly ->
            expose_out ly (Lower.emit_binary ly ~spec:via Lower.Badd (c ly 5) (c ly 7))
        );
        ( "square_raw",
          8,
          fun ly -> expose_out ly (Lower.emit_square ly ~spec (c ly 6)) );
        ( "act_relu",
          8,
          fun ly ->
            List.iter
              (fun v -> expose_out ly (Lower.emit_act_lookup ly "relu" Fx.relu (c ly v)))
              [ -3; 0; 5 ] );
        ( "act_exp",
          8,
          fun ly ->
            List.iter
              (fun v -> expose_out ly (Lower.emit_act_lookup ly "exp" Fx.exp' (c ly v)))
              [ -7; 0; 2 ] );
        ( "relu_bits",
          2 * (tb + 2),
          fun ly ->
            List.iter
              (fun v -> expose_out ly (Lower.emit_relu_bitdecomp ly (c ly v)))
              [ -5; 0; 7 ] );
        ( "max_tree",
          9,
          fun ly ->
            expose_out ly
              (Lower.emit_max_tree ly ~spec (List.map (c ly) [ 4; -2; 9; 9; 1 ]))
        );
        ( "softmax",
          9,
          fun ly ->
            List.iter (expose_out ly)
              (Lower.emit_softmax ly ~spec (List.map (c ly) [ 1; 5; 3 ])) );
      ]
    in
    List.map
      (fun (name, ncols, emit) -> (name, check_gadget ?seed ~cfg ~ncols emit))
      cases
end
