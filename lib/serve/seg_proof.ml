(** The `zkml-proof-seg v1` file format: writer, total parser, the
    split-and-aggregate prover and the aggregate verdict classifier.

    A segmented proof carries one (k, instance, proof) group per
    segment plus one digest per seam. The segmentation plan itself never
    travels: prover and verifier both derive it deterministically from
    (model graph, spec, ncols, cfg, segment count), so a file claiming a
    plan the model does not produce is [`Malformed]. Seam tampering —
    editing a digest, splicing groups from two honest runs, feeding a
    consumer segment different values than the producer exposed — is a
    well-formed-but-false statement and classifies as [`Rejected]
    (verdict 1). Like {!Proof_file}, the format is line-oriented and
    strict: fields in writer order, canonical decimals, lowercase hex,
    trailing newline mandatory — parsing then re-rendering an accepted
    file reproduces it byte-for-byte (the fuzz oracle). *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Zoo = Zkml_models.Zoo
module Opt = Zkml_compiler.Optimizer
module Seg = Zkml_compiler.Segment
module Spec = Zkml_compiler.Layout_spec
module Err = Zkml_util.Err
module Obs = Zkml_obs.Obs
module Metrics = Zkml_obs.Metrics
module B = Backends

type seg_group = { sg_k : int; sg_instance : int array; sg_proof : string }

type t = {
  sp_model : string;
  sp_backend : Backends.backend;
  sp_spec : Spec.t;
  sp_ncols : int;
  sp_cfg : Fx.config;
  sp_seams : string array;  (** raw 32-byte seam digests, plan order *)
  sp_groups : seg_group array;  (** one per segment, segment order *)
}

let magic = "zkml-proof-seg v1"
let max_seams = 4096

let seam_digest (slice : int array) =
  Zkml_util.Sha256.digest
    (String.concat "," (List.map string_of_int (Array.to_list slice)))

let to_string ~backend ~model_name ~(cfg : Fx.config) ~spec ~ncols
    ~(seams : string array) ~(groups : seg_group array) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "%s\n" magic;
  Printf.bprintf buf "model %s\n" model_name;
  Printf.bprintf buf "backend %s\n" (Backends.backend_name backend);
  Printf.bprintf buf "spec %s\n" (Spec.to_string spec);
  Printf.bprintf buf "ncols %d\n" ncols;
  Printf.bprintf buf "scale_bits %d\n" cfg.Fx.scale_bits;
  Printf.bprintf buf "table_bits %d\n" cfg.Fx.table_bits;
  Printf.bprintf buf "segments %d\n" (Array.length groups);
  Printf.bprintf buf "seams %d\n" (Array.length seams);
  Array.iteri
    (fun i d ->
      Printf.bprintf buf "seam %d %s\n" i (Zkml_util.Bytes_util.to_hex d))
    seams;
  Array.iteri
    (fun i g ->
      Printf.bprintf buf "segment %d\n" i;
      Printf.bprintf buf "k %d\n" g.sg_k;
      Printf.bprintf buf "instance %s\n"
        (String.concat ","
           (List.map string_of_int (Array.to_list g.sg_instance)));
      Printf.bprintf buf "proof %s\n" (Zkml_util.Bytes_util.to_hex g.sg_proof))
    groups;
  Buffer.contents buf

(** Canonical text of a parsed (or deliberately edited) record — the
    inverse of {!of_string} on well-formed files. *)
let render sp =
  to_string ~backend:sp.sp_backend ~model_name:sp.sp_model ~cfg:sp.sp_cfg
    ~spec:sp.sp_spec ~ncols:sp.sp_ncols ~seams:sp.sp_seams ~groups:sp.sp_groups

(* [Bytes_util.of_hex] also accepts uppercase digits; the canonical
   format is lowercase-only, so hex fields are validated by hand first —
   otherwise an uppercase mutant would decode yet re-render differently,
   breaking the accepted ⇒ re-encodes-to-itself oracle. *)
let strict_hex ~ln ~what v =
  let open Err in
  let ok =
    String.length v > 0
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
         v
  in
  if not ok then
    failf ~offset:(Line ln) Invalid_encoding "%s: invalid lowercase hex" what
  else
    guard ~offset:(Line ln) Invalid_encoding (fun () ->
        Zkml_util.Bytes_util.of_hex v)

(* Total parser: a strict line cursor in writer order. Any deviation —
   missing line, wrong key, non-canonical number, out-of-sequence seam
   or segment index — is a typed error with the offending line. *)
let of_string text =
  let open Err in
  in_context "seg-proof-file"
  @@
  let n = String.length text in
  if n = 0 || text.[n - 1] <> '\n' then
    fail Truncated "file does not end with a newline"
  else begin
    let lines = Array.of_list (String.split_on_char '\n' text) in
    let nlines = Array.length lines - 1 in
    (* drop the final newline's empty tail *)
    let pos = ref 0 in
    let next what =
      if !pos >= nlines then failf Truncated "missing %s line" what
      else begin
        let ln = !pos + 1 in
        let line = lines.(!pos) in
        incr pos;
        Ok (ln, line)
      end
    in
    let field what =
      let* ln, line = next what in
      match String.index_opt line ' ' with
      | None ->
          failf ~offset:(Line ln) Bad_field "expected '%s <value>', got %S"
            what
            (String.sub line 0 (min 24 (String.length line)))
      | Some i ->
          let k = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          if k = what then Ok (ln, v)
          else
            failf ~offset:(Line ln) Bad_field "expected field %s, got %S" what
              k
    in
    let int_get what ~min ~max =
      let* ln, v = field what in
      bounded_int_field ~offset:(Line ln) ~what ~min ~max v
    in
    let* hln, header = next "header" in
    let* () =
      if header = magic then Ok ()
      else failf ~offset:(Line hln) Bad_header "expected %S" magic
    in
    let* _, sp_model = field "model" in
    let* bln, backend_s = field "backend" in
    let* sp_backend =
      match Backends.backend_of_string backend_s with
      | Some b -> Ok b
      | None ->
          failf ~offset:(Line bln) Unknown_variant "backend %S" backend_s
    in
    let* sln, spec_s = field "spec" in
    let* sp_spec =
      guard ~offset:(Line sln) Bad_field (fun () -> Spec.of_string spec_s)
    in
    let* sp_ncols = int_get "ncols" ~min:1 ~max:256 in
    let* scale_bits = int_get "scale_bits" ~min:1 ~max:30 in
    let* table_bits = int_get "table_bits" ~min:1 ~max:20 in
    let* segments = int_get "segments" ~min:1 ~max:Seg.max_segments in
    let* seams = int_get "seams" ~min:0 ~max:max_seams in
    let rec seam_lines acc i =
      if i = seams then Ok (List.rev acc)
      else
        let* ln, v = field "seam" in
        match String.index_opt v ' ' with
        | None -> failf ~offset:(Line ln) Bad_field "expected 'seam <i> <hex>'"
        | Some sp ->
            let idx = String.sub v 0 sp in
            let hex = String.sub v (sp + 1) (String.length v - sp - 1) in
            let* () =
              if idx = string_of_int i then Ok ()
              else
                failf ~offset:(Line ln) Bad_field "seam index %S, expected %d"
                  idx i
            in
            let* () =
              if String.length hex = 64 then Ok ()
              else
                failf ~offset:(Line ln) Invalid_encoding
                  "seam digest must be 64 hex chars"
            in
            let* d = strict_hex ~ln ~what:"seam" hex in
            seam_lines (d :: acc) (i + 1)
    in
    let* seam_list = seam_lines [] 0 in
    let rec group_lines acc i =
      if i = segments then Ok (List.rev acc)
      else
        let* ln, v = field "segment" in
        let* () =
          if v = string_of_int i then Ok ()
          else
            failf ~offset:(Line ln) Bad_field "segment index %S, expected %d" v
              i
        in
        let* sg_k = int_get "k" ~min:1 ~max:B.srs_k in
        let* iln, inst_s = field "instance" in
        let* inst =
          if inst_s = "" then Ok []
          else
            map_list
              (int_field ~offset:(Line iln) ~what:"instance")
              (String.split_on_char ',' inst_s)
        in
        let* () =
          if List.length inst > 1 lsl B.srs_k then
            failf ~offset:(Line iln) Out_of_range
              "instance holds %d values; SRS caps circuits at %d rows"
              (List.length inst) (1 lsl B.srs_k)
          else Ok ()
        in
        let* pln, hex = field "proof" in
        let* sg_proof = strict_hex ~ln:pln ~what:"proof" hex in
        group_lines
          ({ sg_k; sg_instance = Array.of_list inst; sg_proof } :: acc)
          (i + 1)
    in
    let* group_list = group_lines [] 0 in
    let* () =
      if !pos = nlines then Ok ()
      else
        failf
          ~offset:(Line (!pos + 1))
          Trailing_data "unexpected line after last segment"
    in
    Ok
      {
        sp_model;
        sp_backend;
        sp_spec;
        sp_ncols;
        sp_cfg = { Fx.scale_bits; table_bits };
        sp_seams = Array.of_list seam_list;
        sp_groups = Array.of_list group_list;
      }
  end

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error m ->
      Err.fail ~context:[ "seg-proof-file" ] Err.Io_error m

(** Sniff: does this text claim to be a segmented proof file? Used by
    `zkml verify` and the daemon to dispatch between the two formats. *)
let looks_segmented text =
  let ml = String.length magic in
  String.length text > ml
  && String.sub text 0 ml = magic
  && text.[ml] = '\n'

(* ------------------------------------------------------------------ *)
(* Prover *)

type proved = {
  p_text : string;
  p_prove_s : float;
  p_peak_rows : int;  (** largest per-segment content-row count *)
  p_mono_rows : int;  (** content rows of the monolithic circuit *)
  p_ks : int list;  (** per-segment k actually used *)
}

let witness_seconds =
  lazy
    (Metrics.histogram
       ~labels:[ ("phase", "witness") ]
       ~help:"Per-segment wall-clock by phase" "zkml_segment_seconds")

(* Layout search shared with the monolithic path: same optimizer, same
   calibrated cost model, so spec/ncols match what `zkml prove` would
   pick for this model — segments only shrink k. *)
let plan_for ~times ~backend ~group_bytes ~field_bytes (m : Zoo.model) exec =
  let plan, _ =
    Opt.optimize ~k_max:B.srs_k ~times ~backend ~group_bytes ~field_bytes
      ~cfg:m.Zoo.cfg m.Zoo.graph exec
  in
  plan

(** Prove [m] under [backend] at [segments] segments; returns the
    rendered file plus the measurements the bench reports. The effective
    segment count may be lower for tiny graphs (see {!Seg.plan}). *)
let prove (m : Zoo.model) backend seed ~segments =
  let cfg = m.Zoo.cfg in
  let inputs = Zoo.sample_inputs ~seed:(Int64.of_int seed) m in
  let qinputs = List.map (T.map (Fx.quantize cfg)) inputs in
  let exec = Zkml_nn.Quant_exec.run cfg m.Zoo.graph ~inputs:qinputs in
  let finish ~spec ~ncols ~splan ~mono_rows ~ks ~groups ~prove_s =
    let seams =
      Array.map
        (fun (sm : Seg.seam) ->
          let si, off = sm.Seg.sm_src in
          match
            Seg.slice_copy groups.(si).sg_instance ~off ~numel:sm.Seg.sm_numel
          with
          | Some slice -> seam_digest slice
          | None -> failwith "seam outside instance column")
        splan.Seg.p_seams
    in
    let peak = Seg.peak_rows splan in
    Obs.count "segments.peak_rows" peak;
    Metrics.set_gauge
      ~help:"Content rows of the largest segment in the last segmented prove"
      "zkml_segment_peak_rows" (float_of_int peak);
    {
      p_text =
        to_string ~backend ~model_name:m.Zoo.name ~cfg ~spec ~ncols ~seams
          ~groups;
      p_prove_s = prove_s;
      p_peak_rows = peak;
      p_mono_rows = mono_rows;
      p_ks = ks;
    }
  in
  match backend with
  | Backends.Kzg ->
      let params = Lazy.force B.kzg_params in
      let times = B.Pipe_kzg.calibrated params in
      let plan =
        plan_for ~times ~backend:B.Pipe_kzg.backend
          ~group_bytes:B.Kzg.G.size_bytes ~field_bytes:B.Pipe_kzg.F.size_bytes
          m exec
      in
      let spec = plan.Opt.spec and ncols = plan.Opt.ncols in
      let splan = Seg.plan ~spec ~ncols ~cfg ~segments m.Zoo.graph in
      let prepared =
        Array.map
          (fun (sg : Seg.seg) ->
            Obs.Span.with_
              ~name:(Printf.sprintf "segment-%d" sg.Seg.sg_index)
            @@ fun () ->
            let rec keys_at k =
              if k > B.srs_k then
                failwith "segment does not fit the SRS at any k"
              else
                match
                  B.Serve_kzg.prepare_for_header ~spec ~ncols ~k ~cfg params
                    sg.Seg.sg_graph
                with
                | Ok (entry, _) -> (entry, k)
                | Error _ -> keys_at (k + 1)
            in
            let entry, k = keys_at sg.Seg.sg_k in
            let w =
              Metrics.time (Lazy.force witness_seconds) @@ fun () ->
              B.Pipe_kzg.witness_ints ~spec ~ncols ~k ~cfg sg.Seg.sg_graph
                (List.map
                   (fun id -> exec.Zkml_nn.Quant_exec.values.(id))
                   sg.Seg.sg_imports)
            in
            (sg, entry, k, w))
          splan.Seg.p_segments
      in
      let jobs =
        Array.to_list prepared
        |> List.mapi (fun i (_, entry, _, w) ->
               ( entry.B.Serve_kzg.e_keys,
                 {
                   B.Pipe_kzg.Proto.job_instance = w.B.Pipe_kzg.w_instance;
                   job_advice =
                     (fun _ -> Array.map Array.copy w.B.Pipe_kzg.w_advice);
                   job_rng =
                     Zkml_util.Rng.create
                       (Int64.add (Int64.of_int seed) (Int64.of_int i));
                 } ))
      in
      let proofs, prove_s =
        Zkml_util.Timer.time (fun () ->
            B.Pipe_kzg.Proto.prove_segmented params jobs)
      in
      let ok =
        B.Pipe_kzg.Proto.verify_segmented params
          ~batch:
            (List.map2
               (fun (keys, job) proof ->
                 (keys, job.B.Pipe_kzg.Proto.job_instance, proof))
               jobs proofs)
      in
      if not ok then failwith "segmented self-verification failed";
      let groups =
        Array.of_list
          (List.map2
             (fun (_, _, k, w) proof ->
               {
                 sg_k = k;
                 sg_instance = w.B.Pipe_kzg.w_instance_ints;
                 sg_proof = B.Pipe_kzg.Proto.proof_to_bytes proof;
               })
             (Array.to_list prepared) proofs)
      in
      finish ~spec ~ncols ~splan
        ~mono_rows:plan.Opt.summary.Zkml_compiler.Layouter.rows_content
        ~ks:(Array.to_list (Array.map (fun (_, _, k, _) -> k) prepared))
        ~groups ~prove_s
  | Backends.Ipa ->
      let params = Lazy.force B.ipa_params in
      let times = B.Pipe_ipa.calibrated params in
      let plan =
        plan_for ~times ~backend:B.Pipe_ipa.backend
          ~group_bytes:B.Ipa.G.size_bytes ~field_bytes:B.Pipe_ipa.F.size_bytes
          m exec
      in
      let spec = plan.Opt.spec and ncols = plan.Opt.ncols in
      let splan = Seg.plan ~spec ~ncols ~cfg ~segments m.Zoo.graph in
      let prepared =
        Array.map
          (fun (sg : Seg.seg) ->
            Obs.Span.with_
              ~name:(Printf.sprintf "segment-%d" sg.Seg.sg_index)
            @@ fun () ->
            let rec keys_at k =
              if k > B.srs_k then
                failwith "segment does not fit the SRS at any k"
              else
                match
                  B.Serve_ipa.prepare_for_header ~spec ~ncols ~k ~cfg params
                    sg.Seg.sg_graph
                with
                | Ok (entry, _) -> (entry, k)
                | Error _ -> keys_at (k + 1)
            in
            let entry, k = keys_at sg.Seg.sg_k in
            let w =
              Metrics.time (Lazy.force witness_seconds) @@ fun () ->
              B.Pipe_ipa.witness_ints ~spec ~ncols ~k ~cfg sg.Seg.sg_graph
                (List.map
                   (fun id -> exec.Zkml_nn.Quant_exec.values.(id))
                   sg.Seg.sg_imports)
            in
            (sg, entry, k, w))
          splan.Seg.p_segments
      in
      let jobs =
        Array.to_list prepared
        |> List.mapi (fun i (_, entry, _, w) ->
               ( entry.B.Serve_ipa.e_keys,
                 {
                   B.Pipe_ipa.Proto.job_instance = w.B.Pipe_ipa.w_instance;
                   job_advice =
                     (fun _ -> Array.map Array.copy w.B.Pipe_ipa.w_advice);
                   job_rng =
                     Zkml_util.Rng.create
                       (Int64.add (Int64.of_int seed) (Int64.of_int i));
                 } ))
      in
      let proofs, prove_s =
        Zkml_util.Timer.time (fun () ->
            B.Pipe_ipa.Proto.prove_segmented params jobs)
      in
      let ok =
        B.Pipe_ipa.Proto.verify_segmented params
          ~batch:
            (List.map2
               (fun (keys, job) proof ->
                 (keys, job.B.Pipe_ipa.Proto.job_instance, proof))
               jobs proofs)
      in
      if not ok then failwith "segmented self-verification failed";
      let groups =
        Array.of_list
          (List.map2
             (fun (_, _, k, w) proof ->
               {
                 sg_k = k;
                 sg_instance = w.B.Pipe_ipa.w_instance_ints;
                 sg_proof = B.Pipe_ipa.Proto.proof_to_bytes proof;
               })
             (Array.to_list prepared) proofs)
      in
      finish ~spec ~ncols ~splan
        ~mono_rows:plan.Opt.summary.Zkml_compiler.Layouter.rows_content
        ~ks:(Array.to_list (Array.map (fun (_, _, k, _) -> k) prepared))
        ~groups ~prove_s

(* ------------------------------------------------------------------ *)
(* Verdict *)

(* Early (pre-protocol) judgements tally through the same counter the
   protocol layer uses, so every segmented verdict is counted exactly
   once. *)
let tally code v =
  Metrics.inc
    ~labels:[ ("verdict", code) ]
    ~help:"Verifier verdicts on untrusted proof bytes"
    "zkml_verify_verdicts_total" 1.0;
  v

let malformed msg =
  tally "malformed"
    (`Malformed (Err.make ~context:[ "seg-proof-file" ] Err.Bad_field msg))

(* Structure against the derived plan: segment and seam counts must
   match, every seam slice must exist. Mismatched counts mean the file
   was never a proof for this model at this segmentation — malformed
   framing — whereas wrong seam *values* are a false statement. *)
let structural_and_seam_check splan sp =
  let nseg = Array.length splan.Seg.p_segments in
  if Array.length sp.sp_groups <> nseg then
    `Structural
      (Printf.sprintf "file carries %d segments; the model splits into %d"
         (Array.length sp.sp_groups) nseg)
  else if Array.length sp.sp_seams <> Array.length splan.Seg.p_seams then
    `Structural
      (Printf.sprintf "file carries %d seams; the plan has %d"
         (Array.length sp.sp_seams)
         (Array.length splan.Seg.p_seams))
  else begin
    let verdict = ref `Seams_ok in
    Array.iteri
      (fun j (sm : Seg.seam) ->
        if !verdict = `Seams_ok then begin
          let slice_at (si, off) =
            Seg.slice_copy sp.sp_groups.(si).sg_instance ~off
              ~numel:sm.Seg.sm_numel
          in
          match slice_at sm.Seg.sm_src with
          | None ->
              verdict :=
                `Structural
                  (Printf.sprintf "seam %d outside segment instance" j)
          | Some src ->
              if seam_digest src <> sp.sp_seams.(j) then
                verdict := `Seam_false
              else
                List.iter
                  (fun dst ->
                    match slice_at dst with
                    | None ->
                        verdict :=
                          `Structural
                            (Printf.sprintf "seam %d outside segment instance"
                               j)
                    | Some d -> if d <> src then verdict := `Seam_false)
                  sm.Seg.sm_dsts
        end)
      splan.Seg.p_seams;
    !verdict
  end

(** Classify a parsed segmented proof file against a model: [`Accepted],
    [`Rejected] (well-formed but false — includes any seam violation) or
    [`Malformed of Err.t]. Total. [kzg_keys]/[ipa_keys] memoize rebuilt
    per-segment keys across calls (the fuzzer's mutants share headers). *)
let verdict ~kzg_keys ~ipa_keys (m : Zoo.model) sp =
  if sp.sp_model <> m.Zoo.name then
    tally "malformed"
      (`Malformed
         (Err.make ~context:[ "seg-proof-file" ] Err.Bad_field
            (Printf.sprintf "proof is for model %S, not %S" sp.sp_model
               m.Zoo.name)))
  else begin
    let segments = Array.length sp.sp_groups in
    match
      Err.guard Err.Bad_field (fun () ->
          Seg.plan ~spec:sp.sp_spec ~ncols:sp.sp_ncols ~cfg:sp.sp_cfg ~segments
            m.Zoo.graph)
    with
    | Error e ->
        tally "malformed" (`Malformed (Err.with_context "segment-plan" e))
    | Ok splan -> (
        match structural_and_seam_check splan sp with
        | `Structural msg -> malformed msg
        | `Seam_false -> tally "rejected" `Rejected
        | `Seams_ok -> (
            let header i k =
              Printf.sprintf "seg|%s|%s|%s|%d|%d|%d|%d|%d/%d" m.Zoo.name
                (Backends.backend_name sp.sp_backend)
                (Spec.to_string sp.sp_spec) sp.sp_ncols k
                sp.sp_cfg.Fx.scale_bits sp.sp_cfg.Fx.table_bits i segments
            in
            let memo cache key rebuild =
              match Hashtbl.find_opt cache key with
              | Some keys -> keys
              | None ->
                  let keys = Err.guard Err.Bad_field rebuild in
                  Hashtbl.add cache key keys;
                  keys
            in
            match sp.sp_backend with
            | Backends.Kzg -> (
                let params = Lazy.force B.kzg_params in
                let rec build acc i =
                  if i = segments then Ok (List.rev acc)
                  else
                    let sg = splan.Seg.p_segments.(i) in
                    let g = sp.sp_groups.(i) in
                    match
                      memo kzg_keys
                        (header i g.sg_k)
                        (fun () ->
                          B.Pipe_kzg.rebuild_keys params ~spec:sp.sp_spec
                            ~ncols:sp.sp_ncols ~k:g.sg_k ~cfg:sp.sp_cfg
                            sg.Seg.sg_graph)
                    with
                    | Error e -> Error (Err.with_context "rebuild-keys" e)
                    | Ok keys -> (
                        match
                          B.Pipe_kzg.instance_col_of_ints keys g.sg_instance
                        with
                        | Error e -> Error e
                        | Ok instance ->
                            build ((keys, instance, g.sg_proof) :: acc) (i + 1)
                        )
                in
                match build [] 0 with
                | Error e -> tally "malformed" (`Malformed e)
                | Ok batch -> (
                    match
                      B.Pipe_kzg.Proto.verify_segmented_bytes params ~batch
                    with
                    | B.Pipe_kzg.Proto.Accepted -> `Accepted
                    | B.Pipe_kzg.Proto.Rejected -> `Rejected
                    | B.Pipe_kzg.Proto.Malformed e -> `Malformed e))
            | Backends.Ipa -> (
                let params = Lazy.force B.ipa_params in
                let rec build acc i =
                  if i = segments then Ok (List.rev acc)
                  else
                    let sg = splan.Seg.p_segments.(i) in
                    let g = sp.sp_groups.(i) in
                    match
                      memo ipa_keys
                        (header i g.sg_k)
                        (fun () ->
                          B.Pipe_ipa.rebuild_keys params ~spec:sp.sp_spec
                            ~ncols:sp.sp_ncols ~k:g.sg_k ~cfg:sp.sp_cfg
                            sg.Seg.sg_graph)
                    with
                    | Error e -> Error (Err.with_context "rebuild-keys" e)
                    | Ok keys -> (
                        match
                          B.Pipe_ipa.instance_col_of_ints keys g.sg_instance
                        with
                        | Error e -> Error e
                        | Ok instance ->
                            build ((keys, instance, g.sg_proof) :: acc) (i + 1)
                        )
                in
                match build [] 0 with
                | Error e -> tally "malformed" (`Malformed e)
                | Ok batch -> (
                    match
                      B.Pipe_ipa.Proto.verify_segmented_bytes params ~batch
                    with
                    | B.Pipe_ipa.Proto.Accepted -> `Accepted
                    | B.Pipe_ipa.Proto.Rejected -> `Rejected
                    | B.Pipe_ipa.Proto.Malformed e -> `Malformed e))))
  end
