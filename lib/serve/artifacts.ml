(** The serving layer's per-model artifact cache.

    A proving service re-proves the same fixed model for a stream of
    inputs, but everything the optimizer and keygen produce — the layout
    plan, the compiled circuit, the fixed/selector column commitments,
    the permutation sigmas, the verifying key — depends only on the
    model and its fixed-point config, not on the input. This module
    caches that bundle, keyed by a content hash of the serialized model
    plus the layout-relevant config, so the Nth proof (or verification)
    for a model skips compilation and fixed-commitment work entirely.

    Two cache levels:
    - an in-process LRU (capacity {!mem_capacity}) holding deserialized
      entries, hit on repeated calls within one process;
    - a disk cache under [ZKML_CACHE_DIR] (default
      [$XDG_CACHE_HOME/zkml], falling back to [~/.cache/zkml]), hit on
      the second run of a CLI command.

    Disk entries carry a header and a SHA-256 digest of the marshalled
    payload; loading is total — a truncated, bit-flipped or otherwise
    corrupt cache file surfaces as a typed {!Zkml_util.Err.t} (and the
    caller falls back to recompiling), never as an exception or a
    silently wrong key set. Invalidation is by key: any change to the
    model bytes, the fixed-point config, the backend or the cache format
    version changes the hash and orphans the old entry. *)

module Spec = Zkml_compiler.Layout_spec
module Optimizer = Zkml_compiler.Optimizer
module Fx = Zkml_fixed.Fixed
module Err = Zkml_util.Err
module Obs = Zkml_obs.Obs

open Err

(* Bumping this invalidates every cached artifact (the version feeds the
   content hash as well as the file header). *)
let cache_version = "zkml-artifact v4"

let cache_dir () =
  match Sys.getenv_opt "ZKML_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "zkml"
      | _ ->
          let home = Option.value (Sys.getenv_opt "HOME") ~default:"." in
          Filename.concat (Filename.concat home ".cache") "zkml")

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** Where a [prepare]d entry came from. *)
type status =
  | Hit_mem  (** in-process LRU *)
  | Hit_disk  (** disk cache *)
  | Miss  (** no cached entry; compiled from scratch *)
  | Corrupt of Err.t
      (** a disk entry existed but failed validation; recompiled and
          overwritten *)

let status_string = function
  | Hit_mem -> "hit (memory)"
  | Hit_disk -> "hit (disk)"
  | Miss -> "miss (compiled)"
  | Corrupt e -> "corrupt (recompiled): " ^ Err.to_string e

let is_hit = function Hit_mem | Hit_disk -> true | Miss | Corrupt _ -> false

(* Stable short code for metric labels / log fields (unlike
   [status_string], which is a human-facing diagnostic). *)
let status_code = function
  | Hit_mem -> "hit_mem"
  | Hit_disk -> "hit_disk"
  | Miss -> "miss"
  | Corrupt _ -> "corrupt"

(* Every lookup lands here exactly once: counter for the exposition,
   debug event for the log. *)
let tally_status status =
  let code = status_code status in
  Zkml_obs.Metrics.inc
    ~labels:[ ("status", code) ]
    ~help:"Artifact-cache lookups by result" "zkml_cache_lookups_total" 1.0;
  Zkml_obs.Log.event ~level:Zkml_obs.Log.Debug "cache.lookup"
    [ ("status", Zkml_obs.Log.S code) ]

module Make (Scheme : Zkml_commit.Scheme_intf.S) = struct
  module Pipe = Zkml_compiler.Pipeline.Make (Scheme)
  module Proto = Pipe.Proto

  (** Everything input-independent about proving one model: the layout
      the optimizer chose and the full key set (circuit, fixed/sigma
      values, polys and commitments, extended domain). *)
  type entry = {
    e_spec : Spec.t;
    e_ncols : int;
    e_k : int;
    e_keys : Proto.keys;
  }

  (* ---------------------------------------------------------------- *)
  (* Cache keys. [params_id] names the SRS (setup seed + size) so two
     processes with different parameters never share artifacts —
     commitments are SRS-specific. *)

  let hash_parts parts = Zkml_util.Sha256.hex_digest (String.concat "\x00" parts)

  let cache_key ?(params_id = "default") ~(cfg : Fx.config) graph =
    hash_parts
      [
        cache_version; Scheme.name; params_id; "model";
        string_of_int cfg.Fx.scale_bits; string_of_int cfg.Fx.table_bits;
        Zkml_nn.Serialize.to_string graph;
      ]

  (* A verifier rebuilding keys for a proof-file header caches under the
     explicit layout instead of the optimizer's choice, so proofs from
     older plans stay cheap to re-verify. *)
  let header_key ?(params_id = "default") ~spec ~ncols ~k ~(cfg : Fx.config)
      graph =
    hash_parts
      [
        cache_version; Scheme.name; params_id; "header"; Spec.to_string spec;
        string_of_int ncols; string_of_int k;
        string_of_int cfg.Fx.scale_bits; string_of_int cfg.Fx.table_bits;
        Zkml_nn.Serialize.to_string graph;
      ]

  (* ---------------------------------------------------------------- *)
  (* In-process LRU *)

  let mem_capacity = 8
  let lru : (string * entry) list ref = ref []

  let mem_find key =
    match List.assoc_opt key !lru with
    | None -> None
    | Some e ->
        lru := (key, e) :: List.remove_assoc key !lru;
        Some e

  let mem_add key e =
    let rest = List.remove_assoc key !lru in
    let rest =
      if List.length rest >= mem_capacity then
        List.filteri (fun i _ -> i < mem_capacity - 1) rest
      else rest
    in
    lru := (key, e) :: rest

  let reset_memory () = lru := []

  (* ---------------------------------------------------------------- *)
  (* Disk format: a line-oriented header followed by the marshalled
     entry, length-prefixed and digest-protected:

       zkml-artifact v1
       backend <name>
       key <hex>
       payload <length> <sha256-hex>
       <length raw bytes>

     Marshal is not robust against hostile or damaged bytes, so the
     payload is only unmarshalled after its length and digest check out;
     every earlier failure is a typed [Err.t]. *)

  let path_for key = Filename.concat (cache_dir ()) (key ^ ".zka")

  let entry_to_string ~key (e : entry) =
    let payload = Marshal.to_string (e.e_spec, e.e_ncols, e.e_k, e.e_keys) [] in
    String.concat ""
      [
        cache_version; "\n";
        "backend "; Scheme.name; "\n";
        "key "; key; "\n";
        Printf.sprintf "payload %d %s\n" (String.length payload)
          (Zkml_util.Sha256.hex_digest payload);
        payload;
      ]

  let entry_of_string ~key text : (entry, Err.t) result =
    in_context "artifact-cache"
    @@
    (* split the first [n] header lines off without touching the binary
       payload *)
    let next_line pos what =
      match String.index_from_opt text pos '\n' with
      | None -> fail Truncated ("missing line: " ^ what)
      | Some nl -> Ok (String.sub text pos (nl - pos), nl + 1)
    in
    let field ~ln line what =
      let prefix = what ^ " " in
      let pl = String.length prefix in
      if String.length line >= pl && String.sub line 0 pl = prefix then
        Ok (String.sub line pl (String.length line - pl))
      else failf ~offset:(Line ln) Bad_field "expected '%s <value>'" what
    in
    let* magic, pos = next_line 0 "magic" in
    let* () =
      if magic = cache_version then Ok ()
      else
        failf ~offset:(Line 1) Bad_header "expected %S, got %S" cache_version
          (String.sub magic 0 (min 24 (String.length magic)))
    in
    let* bline, pos = next_line pos "backend" in
    let* backend = field ~ln:2 bline "backend" in
    let* () =
      if backend = Scheme.name then Ok ()
      else
        failf ~offset:(Line 2) Bad_field "entry is for backend %S, not %S"
          backend Scheme.name
    in
    let* kline, pos = next_line pos "key" in
    let* stored_key = field ~ln:3 kline "key" in
    let* () =
      if stored_key = key then Ok ()
      else
        fail ~offset:(Line 3) Bad_field
          "entry key does not match its file name"
    in
    let* pline, pos = next_line pos "payload" in
    let* pfield = field ~ln:4 pline "payload" in
    let* len, digest =
      match String.index_opt pfield ' ' with
      | Some i ->
          let* len =
            bounded_int_field ~offset:(Line 4) ~what:"payload length" ~min:0
              ~max:max_int (String.sub pfield 0 i)
          in
          Ok (len, String.sub pfield (i + 1) (String.length pfield - i - 1))
      | None ->
          fail ~offset:(Line 4) Bad_field "expected 'payload <len> <sha256>'"
    in
    let* () =
      if String.length text - pos < len then
        failf ~offset:(Byte pos) Truncated
          "payload holds %d of %d bytes" (String.length text - pos) len
      else if String.length text - pos > len then
        failf ~offset:(Byte (pos + len)) Trailing_data
          "%d bytes after payload" (String.length text - pos - len)
      else Ok ()
    in
    let payload = String.sub text pos len in
    let* () =
      if Zkml_util.Sha256.hex_digest payload = digest then Ok ()
      else fail ~offset:(Byte pos) Invalid_encoding "payload digest mismatch"
    in
    (* digest verified: the bytes are exactly what [entry_to_string]
       wrote, so unmarshalling is safe; guard anyway so a version skew
       inside the payload classifies instead of crashing *)
    let* spec, ncols, k, keys =
      guard ~offset:(Byte pos) Invalid_encoding (fun () ->
          (Marshal.from_string payload 0
            : Spec.t * int * int * Proto.keys))
    in
    Ok { e_spec = spec; e_ncols = ncols; e_k = k; e_keys = keys }

  (** [None] when no cache file exists; [Some (Error _)] for a file that
      failed validation. Never raises: filesystem errors surface as
      [Io_error]. *)
  let load_entry key : (entry, Err.t) result option =
    let path = path_for key in
    if not (Sys.file_exists path) then None
    else
      Some
        (match
           let ic = open_in_bin path in
           Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic))
         with
        | text -> entry_of_string ~key text
        | exception Sys_error m ->
            Err.fail ~context:[ "artifact-cache" ] Io_error m)

  (** Atomic best-effort write (temp file + rename), so a concurrent
      reader never observes a torn entry. *)
  let store_entry key (e : entry) : (unit, Err.t) result =
    match
      let dir = cache_dir () in
      mkdir_p dir;
      let path = path_for key in
      let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (entry_to_string ~key e));
      Sys.rename tmp path
    with
    | () -> Ok ()
    | exception Sys_error m ->
        Err.fail ~context:[ "artifact-cache" ] Io_error m
    | exception Unix.Unix_error (err, _, _) ->
        Err.fail ~context:[ "artifact-cache" ] Io_error
          (Unix.error_message err)

  (* ---------------------------------------------------------------- *)
  (* Compilation (cache miss path) *)

  let log2_floor n =
    let rec go n acc = if n <= 1 then acc else go (n / 2) (acc + 1) in
    go n 0

  let compile params ~objective ~(cfg : Fx.config) graph =
    Obs.Span.with_ ~name:"serve.compile" @@ fun () ->
    (* the layout depends only on shapes, so a zero-input execution
       drives the optimizer — the cache key must not depend on inputs *)
    let exec =
      Zkml_nn.Quant_exec.run ~saturate:true cfg graph
        ~inputs:(Pipe.zero_inputs graph)
    in
    let times = Pipe.calibrated params in
    let plan, _ =
      Optimizer.optimize ~ncols_min:4 ~ncols_max:40 ~objective
        ~k_max:(log2_floor (Scheme.max_size params))
        ~times ~backend:Pipe.backend ~group_bytes:Scheme.G.size_bytes
        ~field_bytes:Proto.F.size_bytes ~cfg graph exec
    in
    let keys =
      Pipe.rebuild_keys params ~spec:plan.Optimizer.spec
        ~ncols:plan.Optimizer.ncols ~k:plan.Optimizer.k ~cfg graph
    in
    {
      e_spec = plan.Optimizer.spec;
      e_ncols = plan.Optimizer.ncols;
      e_k = plan.Optimizer.k;
      e_keys = keys;
    }

  (* Common LRU -> disk -> build sequence with hit/miss counters. *)
  let lookup_or key build =
    match mem_find key with
    | Some e ->
        Obs.count "cache.hit.mem" 1;
        tally_status Hit_mem;
        (e, Hit_mem)
    | None -> (
        let finish status e =
          (* cache write is best-effort: a read-only cache dir degrades
             to recompilation, not failure *)
          ignore (store_entry key e : (unit, Err.t) result);
          mem_add key e;
          (e, status)
        in
        match load_entry key with
        | Some (Ok e) ->
            Obs.count "cache.hit.disk" 1;
            tally_status Hit_disk;
            mem_add key e;
            (e, Hit_disk)
        | Some (Error err) ->
            Obs.count "cache.corrupt" 1;
            tally_status (Corrupt err);
            finish (Corrupt err) (build ())
        | None ->
            Obs.count "cache.miss" 1;
            tally_status Miss;
            finish Miss (build ()))

  (** The serving entry point: artifacts for proving [graph], from the
      fastest cache level that has them (compiling and populating both
      levels otherwise). *)
  let prepare ?(objective = Optimizer.Min_time) ?params_id ~(cfg : Fx.config)
      params graph =
    Obs.Span.with_ ~name:"serve.prepare" @@ fun () ->
    lookup_or
      (cache_key ?params_id ~cfg graph)
      (fun () -> compile params ~objective ~cfg graph)

  (** Artifacts for verifying against an explicit proof-file header.
      Total: a hostile header that breaks circuit rebuilding comes back
      as a typed error, and nothing is cached for it. *)
  let prepare_for_header ?params_id ~spec ~ncols ~k ~(cfg : Fx.config) params
      graph : (entry * status, Err.t) result =
    Obs.Span.with_ ~name:"serve.prepare" @@ fun () ->
    let key = header_key ?params_id ~spec ~ncols ~k ~cfg graph in
    match mem_find key with
    | Some e ->
        Obs.count "cache.hit.mem" 1;
        tally_status Hit_mem;
        Ok (e, Hit_mem)
    | None -> (
        let build status =
          let* keys =
            Err.guard Err.Bad_field (fun () ->
                Pipe.rebuild_keys params ~spec ~ncols ~k ~cfg graph)
          in
          let e = { e_spec = spec; e_ncols = ncols; e_k = k; e_keys = keys } in
          ignore (store_entry key e : (unit, Err.t) result);
          mem_add key e;
          Ok (e, status)
        in
        match load_entry key with
        | Some (Ok e) ->
            Obs.count "cache.hit.disk" 1;
            tally_status Hit_disk;
            mem_add key e;
            Ok (e, Hit_disk)
        | Some (Error err) ->
            Obs.count "cache.corrupt" 1;
            tally_status (Corrupt err);
            build (Corrupt err)
        | None ->
            Obs.count "cache.miss" 1;
            tally_status Miss;
            build Miss)

  (* ---------------------------------------------------------------- *)
  (* Batch proving / verification against a cached entry *)

  let witness entry ~cfg graph inputs =
    Pipe.witness ~spec:entry.e_spec ~ncols:entry.e_ncols ~k:entry.e_k ~cfg
      graph inputs

  (** Prove one witness per input list, sharing the cached keys (and
      through them the domain and twiddle tables) across the batch.
      [seeds] gives each proof its blinding rng; proofs are bit-for-bit
      what standalone [prove] calls would produce. *)
  let prove_batch params entry ~cfg graph (jobs : (float Zkml_tensor.Tensor.t list * int64) list) =
    let witnesses =
      List.map (fun (inputs, _) -> witness entry ~cfg graph inputs) jobs
    in
    let proofs =
      Proto.prove_many params entry.e_keys
        (List.map2
           (fun w (_, seed) ->
             {
               Proto.job_instance = w.Pipe.w_instance;
               job_advice =
                 (fun _ -> Array.map Array.copy w.Pipe.w_advice);
               job_rng = Zkml_util.Rng.create seed;
             })
           witnesses jobs)
    in
    List.map2 (fun w p -> (w, p)) witnesses proofs

  let verify_batch params entry ~(batch : (int array * string) list) =
    Pipe.verify_many_verdict params entry.e_keys ~batch
end
