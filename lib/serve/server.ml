(** The persistent proving daemon behind `zkml serve`.

    Layered so the interesting policy is testable without sockets:

    - {!Engine}: a bounded job queue drained by worker threads.
      Admission control counts outstanding work (queued + running);
      a submit over capacity is answered [Overloaded] immediately —
      the 429 of the wire protocol — and never blocks the caller.
      Proving inside a worker still fans out over the {!Zkml_util.Pool}
      domains, so one request can use every core while admission
      stays bounded.
    - the socket layer: one acceptor (unix socket or loopback TCP),
      one thread per connection, one request in flight per connection.
      Framing-level corruption (bad magic, oversized length, mid-frame
      EOF) is answered with verdict 2 and the connection closed — the
      stream cannot be resynchronized; payload-level decode errors are
      answered with verdict 2 on a connection that stays usable.

    Per-tenant observability: every request lands in
    [zkml_server_requests_total{tenant,kind,outcome}], latencies in
    [zkml_server_request_seconds{kind}], rejections in
    [zkml_server_rejected_total{tenant}], and the queue depth in the
    [zkml_server_queue_depth] gauge, all through the always-on
    registry (lib/obs). *)

module Zoo = Zkml_models.Zoo
module Err = Zkml_util.Err
module Metrics = Zkml_obs.Metrics
module Log = Zkml_obs.Log
module B = Backends

type config = {
  workers : int;  (** worker threads draining the job queue *)
  queue_capacity : int;  (** max outstanding (queued + running) jobs *)
  warm : string list;  (** zoo models to pre-compile before listening *)
  job_hook : (unit -> unit) option;
      (** test seam: runs in the worker after a job is claimed, before
          it is processed — lets tests hold a worker mid-job *)
}

let default_config =
  { workers = 2; queue_capacity = 16; warm = []; job_hook = None }

type addr = Unix_sock of string | Tcp of int

let addr_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp p -> Printf.sprintf "tcp:127.0.0.1:%d" p

(* Tenant strings come off the wire, and metric label sets live for the
   process lifetime — so hostile tenants must not mint unbounded or
   unprintable label values. *)
let sanitize_tenant t =
  if t = "" then "anon"
  else
    String.map
      (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '.')
      (if String.length t > 32 then String.sub t 0 32 else t)

let request_kind = function
  | Wire.Ping -> "ping"
  | Wire.Prove _ -> "prove"
  | Wire.Prove_seg _ -> "prove_seg"
  | Wire.Verify _ -> "verify"
  | Wire.Shutdown -> "shutdown"

let response_outcome = function
  | Wire.Pong | Wire.Proofs _ -> "ok"
  | Wire.Verdict { code = 0; _ } -> "accepted"
  | Wire.Verdict { code = 1; _ } -> "rejected"
  | Wire.Verdict _ -> "malformed"
  | Wire.Overloaded -> "overloaded"
  | Wire.Stopping -> "stopping"

(* ------------------------------------------------------------------ *)
(* request processing (worker side) *)

(* The artifact cache's in-process LRU is a plain list ref, and
   [prepare] may run the optimizer + keygen; both are serialized under
   one lock. Proving and verifying against an immutable entry runs
   outside it, so distinct requests overlap everywhere but compilation. *)
let prepare_mu = Mutex.create ()

let zoo_model name =
  match Err.guard Err.Unknown_variant (fun () -> Zoo.by_name name) with
  | Ok m -> Ok m
  | Error e -> Error (Err.with_context "model" e)

(* Split-and-aggregate prove. [Seg_proof.prove] interleaves artifact-
   cache lookups (per-segment keys) with proving, so the whole call runs
   under [prepare_mu] — segmented proves serialize against each other
   and against compilation, while each segment's prover still fans out
   over the domain pool. *)
let handle_prove_seg ~backend ~model ~segments ~seeds =
  match zoo_model model with
  | Error e -> Wire.Verdict { code = 2; detail = Err.to_string e }
  | Ok m ->
      Wire.Proofs
        (List.map
           (fun seed ->
             let p =
               Mutex.protect prepare_mu (fun () ->
                   Seg_proof.prove m backend (Int64.to_int seed) ~segments)
             in
             p.Seg_proof.p_text)
           seeds)

(* ZKML_SEGMENTS=<n> reroutes plain Prove requests through the
   segmented prover, so existing clients opt in by environment. *)
let env_segments () =
  match Sys.getenv_opt "ZKML_SEGMENTS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)
  | None -> None

let handle_prove ~backend ~model ~seeds =
  match zoo_model model with
  | Error e -> Wire.Verdict { code = 2; detail = Err.to_string e }
  | Ok m -> (
      let jobs = List.map (fun s -> (Zoo.sample_inputs ~seed:s m, s)) seeds in
      let texts entry_spec entry_ncols entry_k pairs instance_of hex_of =
        List.map
          (fun pair ->
            Proof_file.to_string ~backend ~model_name:m.Zoo.name ~cfg:m.Zoo.cfg
              ~spec:entry_spec ~ncols:entry_ncols ~k:entry_k
              ~instance_ints:(instance_of pair) ~proof_hex:(hex_of pair))
          pairs
      in
      match backend with
      | B.Ipa ->
          let params = Lazy.force B.ipa_params in
          let entry, _ =
            Mutex.protect prepare_mu (fun () ->
                B.Serve_ipa.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph)
          in
          let pairs =
            B.Serve_ipa.prove_batch params entry ~cfg:m.Zoo.cfg m.Zoo.graph
              jobs
          in
          Wire.Proofs
            (texts entry.B.Serve_ipa.e_spec entry.B.Serve_ipa.e_ncols
               entry.B.Serve_ipa.e_k pairs
               (fun (w, _) -> w.B.Pipe_ipa.w_instance_ints)
               (fun (_, p) ->
                 Zkml_util.Bytes_util.to_hex
                   (B.Pipe_ipa.Proto.proof_to_bytes p)))
      | B.Kzg ->
          let params = Lazy.force B.kzg_params in
          let entry, _ =
            Mutex.protect prepare_mu (fun () ->
                B.Serve_kzg.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph)
          in
          let pairs =
            B.Serve_kzg.prove_batch params entry ~cfg:m.Zoo.cfg m.Zoo.graph
              jobs
          in
          Wire.Proofs
            (texts entry.B.Serve_kzg.e_spec entry.B.Serve_kzg.e_ncols
               entry.B.Serve_kzg.e_k pairs
               (fun (w, _) -> w.B.Pipe_kzg.w_instance_ints)
               (fun (_, p) ->
                 Zkml_util.Bytes_util.to_hex
                   (B.Pipe_kzg.Proto.proof_to_bytes p))))

(* Verify through the artifact cache ([prepare_for_header]) so repeat
   verifications of one circuit skip keygen. The pipeline's
   [verify_verdict] tallies zkml_verify_verdicts_total exactly once per
   judgement; pre-pipeline failures (unknown model, parse error, header
   rebuild failure) are the daemon's own malformed answers and do not
   touch the verifier's verdict counter. *)
(* Segmented-verify memoization: rebuilt per-segment keys are shared
   across requests. The tables (and the segment-plan derivation inside
   [Seg_proof.verdict]) are not thread-safe, so the whole verdict runs
   under [prepare_mu]. *)
let seg_kzg_keys = Hashtbl.create 16
let seg_ipa_keys = Hashtbl.create 16

let handle_verify_seg ~model ~proof =
  match zoo_model model with
  | Error e -> Wire.Verdict { code = 2; detail = Err.to_string e }
  | Ok m -> (
      match Seg_proof.of_string proof with
      | Error e -> Wire.Verdict { code = 2; detail = Err.to_string e }
      | Ok sp -> (
          match
            Mutex.protect prepare_mu (fun () ->
                Seg_proof.verdict ~kzg_keys:seg_kzg_keys
                  ~ipa_keys:seg_ipa_keys m sp)
          with
          | `Accepted -> Wire.Verdict { code = 0; detail = "" }
          | `Rejected -> Wire.Verdict { code = 1; detail = "" }
          | `Malformed e ->
              Wire.Verdict { code = 2; detail = Err.to_string e }))

let handle_verify ~model ~proof =
  if Seg_proof.looks_segmented proof then handle_verify_seg ~model ~proof
  else
  match zoo_model model with
  | Error e -> Wire.Verdict { code = 2; detail = Err.to_string e }
  | Ok m -> (
      match Proof_file.of_string proof with
      | Error e -> Wire.Verdict { code = 2; detail = Err.to_string e }
      | Ok pf ->
          if pf.Proof_file.pf_model <> m.Zoo.name then
            Wire.Verdict
              {
                code = 2;
                detail =
                  Printf.sprintf "proof-file: proof is for model %S, not %S"
                    pf.Proof_file.pf_model m.Zoo.name;
              }
          else begin
            let open Proof_file in
            let verdict prepare verify =
              match Mutex.protect prepare_mu prepare with
              | Error e ->
                  Wire.Verdict
                    {
                      code = 2;
                      detail = Err.to_string (Err.with_context "rebuild-keys" e);
                    }
              | Ok (entry, _status) -> verify entry
            in
            match pf.pf_backend with
            | B.Ipa ->
                let params = Lazy.force B.ipa_params in
                verdict
                  (fun () ->
                    B.Serve_ipa.prepare_for_header ~spec:pf.pf_spec
                      ~ncols:pf.pf_ncols ~k:pf.pf_k ~cfg:pf.pf_cfg params
                      m.Zoo.graph)
                  (fun entry ->
                    match
                      B.Pipe_ipa.verify_verdict params
                        entry.B.Serve_ipa.e_keys ~instance_ints:pf.pf_instance
                        pf.pf_proof
                    with
                    | B.Pipe_ipa.Proto.Accepted ->
                        Wire.Verdict { code = 0; detail = "" }
                    | B.Pipe_ipa.Proto.Rejected ->
                        Wire.Verdict { code = 1; detail = "" }
                    | B.Pipe_ipa.Proto.Malformed e ->
                        Wire.Verdict { code = 2; detail = Err.to_string e })
            | B.Kzg ->
                let params = Lazy.force B.kzg_params in
                verdict
                  (fun () ->
                    B.Serve_kzg.prepare_for_header ~spec:pf.pf_spec
                      ~ncols:pf.pf_ncols ~k:pf.pf_k ~cfg:pf.pf_cfg params
                      m.Zoo.graph)
                  (fun entry ->
                    match
                      B.Pipe_kzg.verify_verdict params
                        entry.B.Serve_kzg.e_keys ~instance_ints:pf.pf_instance
                        pf.pf_proof
                    with
                    | B.Pipe_kzg.Proto.Accepted ->
                        Wire.Verdict { code = 0; detail = "" }
                    | B.Pipe_kzg.Proto.Rejected ->
                        Wire.Verdict { code = 1; detail = "" }
                    | B.Pipe_kzg.Proto.Malformed e ->
                        Wire.Verdict { code = 2; detail = Err.to_string e })
          end)

(* Total: no request — however hostile — kills a worker. Anything that
   escapes the typed paths above is answered as malformed. *)
let process req =
  match
    match req with
    | Wire.Ping -> Wire.Pong
    | Wire.Shutdown -> Wire.Stopping
    | Wire.Prove { backend; model; seeds; _ } -> (
        match env_segments () with
        | Some segments -> handle_prove_seg ~backend ~model ~segments ~seeds
        | None -> handle_prove ~backend ~model ~seeds)
    | Wire.Prove_seg { backend; model; segments; seeds; _ } ->
        handle_prove_seg ~backend ~model ~segments ~seeds
    | Wire.Verify { model; proof; _ } -> handle_verify ~model ~proof
  with
  | resp -> resp
  | exception Err.Error e -> Wire.Verdict { code = 2; detail = Err.to_string e }
  | exception exn ->
      Wire.Verdict { code = 2; detail = "internal: " ^ Printexc.to_string exn }

(* ------------------------------------------------------------------ *)
(* the bounded-queue engine *)

module Engine = struct
  type ticket = {
    t_mu : Mutex.t;
    t_cv : Condition.t;
    mutable t_resp : Wire.response option;
    t_req : Wire.request;
    t_tenant : string;
    t_submitted : float;
  }

  type t = {
    cfg : config;
    mu : Mutex.t;
    cv : Condition.t;
    q : ticket Queue.t;
    mutable outstanding : int;
    mutable closed : bool;
    mutable threads : Thread.t list;
  }

  let queue_gauge = Metrics.gauge ~help:"Jobs queued or running" "zkml_server_queue_depth"

  let complete tk resp =
    Mutex.protect tk.t_mu (fun () ->
        tk.t_resp <- Some resp;
        Condition.broadcast tk.t_cv)

  (** Block until the job's worker answers. *)
  let await tk =
    Mutex.protect tk.t_mu (fun () ->
        let rec go () =
          match tk.t_resp with
          | Some resp -> resp
          | None ->
              Condition.wait tk.t_cv tk.t_mu;
              go ()
        in
        go ())

  let worker_loop t =
    let rec next () =
      let claimed =
        Mutex.protect t.mu (fun () ->
            let rec wait () =
              if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
              else if t.closed then None
              else begin
                Condition.wait t.cv t.mu;
                wait ()
              end
            in
            wait ())
      in
      match claimed with
      | None -> ()
      | Some tk ->
          (match t.cfg.job_hook with Some h -> h () | None -> ());
          let resp = process tk.t_req in
          Mutex.protect t.mu (fun () ->
              t.outstanding <- t.outstanding - 1;
              Metrics.set queue_gauge (float_of_int t.outstanding));
          let kind = request_kind tk.t_req in
          let dt = Zkml_obs.Mclock.elapsed_s ~since:tk.t_submitted in
          Metrics.observe_in
            ~labels:[ ("kind", kind) ]
            ~help:"Request latency from admission to response"
            "zkml_server_request_seconds" dt;
          Metrics.inc
            ~labels:
              [ ("tenant", tk.t_tenant); ("kind", kind);
                ("outcome", response_outcome resp) ]
            ~help:"Requests answered, by tenant/kind/outcome"
            "zkml_server_requests_total" 1.0;
          Log.event ~level:Log.Debug "server.request"
            [ ("tenant", Log.S tk.t_tenant); ("kind", Log.S kind);
              ("outcome", Log.S (response_outcome resp));
              ("seconds", Log.F dt) ];
          complete tk resp;
          next ()
    in
    next ()

  let create cfg =
    let t =
      {
        cfg;
        mu = Mutex.create ();
        cv = Condition.create ();
        q = Queue.create ();
        outstanding = 0;
        closed = false;
        threads = [];
      }
    in
    t.threads <-
      List.init (max 1 cfg.workers) (fun _ -> Thread.create worker_loop t);
    t

  (** Admission control: immediate [`Overloaded] over capacity — the
      caller never blocks on a full queue. *)
  let submit t ~tenant req =
    let tenant = sanitize_tenant tenant in
    let decision =
      Mutex.protect t.mu (fun () ->
          if t.closed then `Stopping
          else if t.outstanding >= t.cfg.queue_capacity then `Overloaded
          else begin
            let tk =
              {
                t_mu = Mutex.create ();
                t_cv = Condition.create ();
                t_resp = None;
                t_req = req;
                t_tenant = tenant;
                t_submitted = Zkml_obs.Mclock.now_s ();
              }
            in
            t.outstanding <- t.outstanding + 1;
            Metrics.set queue_gauge (float_of_int t.outstanding);
            Queue.push tk t.q;
            Condition.signal t.cv;
            `Ticket tk
          end)
    in
    (match decision with
    | `Overloaded ->
        Metrics.inc
          ~labels:[ ("tenant", tenant) ]
          ~help:"Requests rejected by admission control"
          "zkml_server_rejected_total" 1.0;
        Log.event ~level:Log.Warn "server.reject" [ ("tenant", Log.S tenant) ]
    | _ -> ());
    decision

  (** Stop accepting, drain the queue, join the workers. Outstanding
      jobs complete and their awaiters get answers. *)
  let shutdown t =
    Mutex.protect t.mu (fun () ->
        t.closed <- true;
        Condition.broadcast t.cv);
    List.iter Thread.join t.threads
end

(* ------------------------------------------------------------------ *)
(* cache warming *)

let warm_models names =
  List.iter
    (fun name ->
      match zoo_model name with
      | Error e ->
          Log.event ~level:Log.Warn "server.warm"
            [ ("model", Log.S name); ("error", Log.S (Err.to_string e)) ]
      | Ok m ->
          let params = Lazy.force B.kzg_params in
          let t0 = Zkml_obs.Mclock.now_s () in
          let _, status =
            Mutex.protect prepare_mu (fun () ->
                B.Serve_kzg.prepare ~cfg:m.Zoo.cfg params m.Zoo.graph)
          in
          Log.event "server.warm"
            [ ("model", Log.S name);
              ("status", Log.S (Artifacts.status_code status));
              ("seconds", Log.F (Zkml_obs.Mclock.elapsed_s ~since:t0)) ])
    names

(* ------------------------------------------------------------------ *)
(* socket layer *)

let listen_socket addr =
  match addr with
  | Unix_sock path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (* loopback only: the daemon speaks an unauthenticated protocol *)
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

(** Client-side connect to a daemon address (used by the load generator,
    the tests, and the daemon's own shutdown wake-up). *)
let connect addr =
  match addr with
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      fd

type conn_state = {
  cs_engine : Engine.t;
  cs_stop : unit -> unit;
  cs_fds : Unix.file_descr list ref;
  cs_fds_mu : Mutex.t;
}

let conn_loop st fd =
  let send resp = try Wire.send_response fd resp with _ -> () in
  let rec loop () =
    match Wire.read_frame fd with
    | Wire.Eof -> ()
    | Wire.Fail e ->
        (* framing broken: answer, then drop the connection — there is
           no frame boundary left to resynchronize on *)
        Metrics.inc
          ~labels:[ ("kind", "frame"); ("tenant", "anon"); ("outcome", "malformed") ]
          ~help:"Requests answered, by tenant/kind/outcome"
          "zkml_server_requests_total" 1.0;
        send (Wire.Verdict { code = 2; detail = Err.to_string e })
    | Wire.Frame (kind, payload) -> (
        match Wire.request_of_payload kind payload with
        | Error e ->
            (* the frame itself was well-delimited: answer malformed
               and keep serving this connection *)
            Metrics.inc
              ~labels:
                [ ("kind", "frame"); ("tenant", "anon");
                  ("outcome", "malformed") ]
              ~help:"Requests answered, by tenant/kind/outcome"
              "zkml_server_requests_total" 1.0;
            send (Wire.Verdict { code = 2; detail = Err.to_string e });
            loop ()
        | Ok Wire.Ping ->
            Metrics.inc
              ~labels:[ ("kind", "ping"); ("tenant", "anon"); ("outcome", "ok") ]
              ~help:"Requests answered, by tenant/kind/outcome"
              "zkml_server_requests_total" 1.0;
            send Wire.Pong;
            loop ()
        | Ok Wire.Shutdown ->
            send Wire.Stopping;
            st.cs_stop ()
        | Ok
            ((Wire.Prove { tenant; _ } | Wire.Prove_seg { tenant; _ }
             | Wire.Verify { tenant; _ }) as req) ->
            (match Engine.submit st.cs_engine ~tenant req with
            | `Ticket tk -> send (Engine.await tk)
            | `Overloaded -> send Wire.Overloaded
            | `Stopping -> send Wire.Stopping);
            loop ())
  in
  (try loop () with _ -> ());
  (try Unix.close fd with _ -> ());
  Mutex.protect st.cs_fds_mu (fun () ->
      st.cs_fds := List.filter (fun f -> f <> fd) !(st.cs_fds))

(** Run the daemon: warm the artifact cache, listen on [addr], serve
    until a [Shutdown] request arrives, then drain and return. Blocks
    the calling thread for the server's lifetime. *)
let run ?(config = default_config) addr =
  (* a peer closing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  warm_models config.warm;
  let engine = Engine.create config in
  let listener = listen_socket addr in
  let stopping = Atomic.make false in
  let stop () =
    if Atomic.compare_and_set stopping false true then
      (* Wake the accept loop. Closing the listener fd would NOT unblock
         a thread already parked in accept(2) on Linux — a throwaway
         self-connection always does. The loop sees the flag, drops the
         wake-up connection and exits; the listener is closed there, on
         the thread that owns it. *)
      try Unix.close (connect addr) with _ -> ()
  in
  let st =
    { cs_engine = engine; cs_stop = stop; cs_fds = ref []; cs_fds_mu = Mutex.create () }
  in
  Log.event "server.start"
    [ ("addr", Log.S (addr_string addr));
      ("workers", Log.I config.workers);
      ("queue", Log.I config.queue_capacity);
      ("warmed", Log.I (List.length config.warm)) ];
  let conn_threads = ref [] in
  let rec accept_loop () =
    match Unix.accept listener with
    | client, _ when Atomic.get stopping ->
        (* the stop() wake-up connection (or a late arrival) *)
        (try Unix.close client with _ -> ())
    | client, _ ->
        Metrics.inc ~help:"Accepted connections" "zkml_server_connections_total"
          1.0;
        Mutex.protect st.cs_fds_mu (fun () -> st.cs_fds := client :: !(st.cs_fds));
        conn_threads := Thread.create (conn_loop st) client :: !conn_threads;
        accept_loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when Atomic.get stopping ->
        ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (try Unix.close listener with _ -> ());
  (* teardown: no new jobs (engine refuses), existing jobs drain, idle
     connections are unblocked by shutting their sockets down *)
  Engine.shutdown engine;
  Mutex.protect st.cs_fds_mu (fun () ->
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
        !(st.cs_fds));
  List.iter Thread.join !conn_threads;
  (match addr with
  | Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ());
  Log.event "server.stop" [ ("addr", Log.S (addr_string addr)) ]
