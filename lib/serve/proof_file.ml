(** The `zkml-proof v1` file format: writer, total parser, prover and
    verdict classifier.

    One implementation serves every entry point — `zkml prove`/`verify`,
    the batch commands, the fuzz harness, the proving daemon and the
    load generator — so "byte-identical proof files" is a property of
    this module, not a convention between copies. The format is
    line-oriented and strict: fields appear exactly once in writer
    order, numbers are canonical decimals, the file ends in a newline
    (see DESIGN.md "Untrusted inputs"). *)

module T = Zkml_tensor.Tensor
module Fx = Zkml_fixed.Fixed
module Zoo = Zkml_models.Zoo
module Opt = Zkml_compiler.Optimizer
module Spec = Zkml_compiler.Layout_spec
module Err = Zkml_util.Err
module B = Backends

type t = {
  pf_model : string;
  pf_backend : Backends.backend;
  pf_spec : Spec.t;
  pf_ncols : int;
  pf_k : int;
  pf_cfg : Fx.config;
  pf_instance : int array;
  pf_proof : string;
}

(* Sanity bounds on header fields, so a hostile header cannot demand a
   huge circuit rebuild before the proof is even looked at. The zoo's
   real plans sit far inside all of them. *)
let max_ncols = 256
let max_scale_bits = 30
let max_table_bits = 20

let to_string ~backend ~model_name ~(cfg : Fx.config) ~spec ~ncols ~k
    ~instance_ints ~proof_hex =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "zkml-proof v1\n";
  Printf.bprintf buf "model %s\n" model_name;
  Printf.bprintf buf "backend %s\n" (Backends.backend_name backend);
  Printf.bprintf buf "spec %s\n" (Spec.to_string spec);
  Printf.bprintf buf "ncols %d\n" ncols;
  Printf.bprintf buf "k %d\n" k;
  Printf.bprintf buf "scale_bits %d\n" cfg.Fx.scale_bits;
  Printf.bprintf buf "table_bits %d\n" cfg.Fx.table_bits;
  Printf.bprintf buf "instance %s\n"
    (String.concat "," (List.map string_of_int (Array.to_list instance_ints)));
  Printf.bprintf buf "proof %s\n" proof_hex;
  Buffer.contents buf

(** Canonical text of a parsed (or deliberately edited) record — the
    inverse of {!of_string} on well-formed files. *)
let render pf =
  to_string ~backend:pf.pf_backend ~model_name:pf.pf_model ~cfg:pf.pf_cfg
    ~spec:pf.pf_spec ~ncols:pf.pf_ncols ~k:pf.pf_k
    ~instance_ints:pf.pf_instance
    ~proof_hex:(Zkml_util.Bytes_util.to_hex pf.pf_proof)

(* Total parser for the proof-file format. Line-oriented and strict:
   the file must end with a newline (so byte-level truncation is always
   detectable — [proof] is the last line), every line is a known
   [key value] pair, no key repeats, every numeric field is bounded. *)
let of_string text =
  let open Err in
  in_context "proof-file"
  @@
  let n = String.length text in
  if n = 0 || text.[n - 1] <> '\n' then
    fail Truncated "file does not end with a newline"
  else
    match String.split_on_char '\n' text with
    | [] -> fail Bad_header "empty file"
    | header :: rest ->
        let* () =
          if header = "zkml-proof v1" then Ok ()
          else fail ~offset:(Line 1) Bad_header "expected 'zkml-proof v1'"
        in
        (* fields must appear exactly once, in the writer's order — a
           key-value map would classify reordered lines as equal to the
           original, hiding tampering from byte-level comparison *)
        let known =
          [ "model"; "backend"; "spec"; "ncols"; "k"; "scale_bits";
            "table_bits"; "instance"; "proof" ]
        in
        let rec collect ln expect acc = function
          | [] | [ "" ] -> (
              (* the final newline's empty tail *)
              match expect with
              | [] -> Ok (List.rev acc)
              | k :: _ -> failf Missing_field "missing field %s" k)
          | "" :: _ -> fail ~offset:(Line ln) Bad_field "blank line"
          | line :: rest -> (
              match String.index_opt line ' ' with
              | None ->
                  failf ~offset:(Line ln) Bad_field
                    "expected '<key> <value>', got %S"
                    (String.sub line 0 (min 24 (String.length line)))
              | Some i -> (
                  let k = String.sub line 0 i in
                  let v =
                    String.sub line (i + 1) (String.length line - i - 1)
                  in
                  match expect with
                  | e :: expect' when k = e ->
                      collect (ln + 1) expect' ((k, (ln, v)) :: acc) rest
                  | [] ->
                      failf ~offset:(Line ln) Trailing_data
                        "unexpected line after proof"
                  | e :: _ ->
                      if List.mem_assoc k acc then
                        failf ~offset:(Line ln) Duplicate_field
                          "field %s repeated" k
                      else if List.mem k known then
                        failf ~offset:(Line ln) Bad_field
                          "field %s out of order (expected %s)" k e
                      else failf ~offset:(Line ln) Unknown_variant "field %S" k))
        in
        let* fields = collect 2 known [] rest in
        let get k = Ok (List.assoc k fields) in
        let int_get what ~min ~max =
          let* ln, v = get what in
          bounded_int_field ~offset:(Line ln) ~what ~min ~max v
        in
        let* _, pf_model = get "model" in
        let* bln, backend_s = get "backend" in
        let* pf_backend =
          match Backends.backend_of_string backend_s with
          | Some b -> Ok b
          | None -> failf ~offset:(Line bln) Unknown_variant "backend %S" backend_s
        in
        let* sln, spec_s = get "spec" in
        let* pf_spec =
          guard ~offset:(Line sln) Bad_field (fun () -> Spec.of_string spec_s)
        in
        let* pf_ncols = int_get "ncols" ~min:1 ~max:max_ncols in
        let* pf_k = int_get "k" ~min:1 ~max:B.srs_k in
        let* scale_bits = int_get "scale_bits" ~min:1 ~max:max_scale_bits in
        let* table_bits = int_get "table_bits" ~min:1 ~max:max_table_bits in
        let* iln, inst_s = get "instance" in
        let* inst =
          if inst_s = "" then Ok []
          else
            map_list
              (int_field ~offset:(Line iln) ~what:"instance")
              (String.split_on_char ',' inst_s)
        in
        let* () =
          if List.length inst > 1 lsl B.srs_k then
            failf ~offset:(Line iln) Out_of_range
              "instance holds %d values; SRS caps circuits at %d rows"
              (List.length inst) (1 lsl B.srs_k)
          else Ok ()
        in
        let* pln, hex = get "proof" in
        let* pf_proof =
          guard ~offset:(Line pln) Invalid_encoding (fun () ->
              Zkml_util.Bytes_util.of_hex hex)
        in
        Ok
          {
            pf_model;
            pf_backend;
            pf_spec;
            pf_ncols;
            pf_k;
            pf_cfg = { Fx.scale_bits; table_bits };
            pf_instance = Array.of_list inst;
            pf_proof;
          }

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error m -> Err.fail ~context:[ "proof-file" ] Err.Io_error m

(* Prove and render the proof file; shared by `zkml prove`, the fuzz
   corpus builder and the daemon determinism tests. Returns (file text,
   prove seconds, proof bytes). *)
let prove (m : Zoo.model) backend seed =
  let inputs = Zoo.sample_inputs ~seed:(Int64.of_int seed) m in
  (* rebuild artifacts to recover the instance column *)
  let instance_for spec_fn ncols k =
    let qinputs = List.map (T.map (Fx.quantize m.Zoo.cfg)) inputs in
    let exec = Zkml_nn.Quant_exec.run m.Zoo.cfg m.Zoo.graph ~inputs:qinputs in
    let lowered =
      Zkml_compiler.Lower.lower_with ~spec_fn ~cfg:m.Zoo.cfg ~ncols
        ~counting:false m.Zoo.graph exec
    in
    let built =
      Zkml_compiler.Layouter.finalize lowered.Zkml_compiler.Lower.layouter
        ~blinding:Opt.blinding ~k
    in
    built.Zkml_compiler.Layouter.instance_col
  in
  match backend with
  | Backends.Ipa ->
      let params = Lazy.force B.ipa_params in
      let r =
        B.Pipe_ipa.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs
          ~seed:(Int64.of_int seed)
      in
      if not r.B.Pipe_ipa.verified then failwith "self-verification failed";
      let bytes = B.Pipe_ipa.Proto.proof_to_bytes r.B.Pipe_ipa.proof in
      let plan = r.B.Pipe_ipa.plan in
      let instance_ints =
        instance_for plan.Opt.spec_fn plan.Opt.ncols plan.Opt.k
      in
      ( to_string ~backend ~model_name:m.Zoo.name ~cfg:m.Zoo.cfg
          ~spec:plan.Opt.spec ~ncols:plan.Opt.ncols ~k:plan.Opt.k
          ~instance_ints
          ~proof_hex:(Zkml_util.Bytes_util.to_hex bytes),
        r.B.Pipe_ipa.prove_s,
        r.B.Pipe_ipa.proof_bytes )
  | Backends.Kzg ->
      let params = Lazy.force B.kzg_params in
      let r =
        B.Pipe_kzg.run ~cfg:m.Zoo.cfg ~params m.Zoo.graph inputs
          ~seed:(Int64.of_int seed)
      in
      if not r.B.Pipe_kzg.verified then failwith "self-verification failed";
      let bytes = B.Pipe_kzg.Proto.proof_to_bytes r.B.Pipe_kzg.proof in
      let plan = r.B.Pipe_kzg.plan in
      let instance_ints =
        instance_for plan.Opt.spec_fn plan.Opt.ncols plan.Opt.k
      in
      ( to_string ~backend ~model_name:m.Zoo.name ~cfg:m.Zoo.cfg
          ~spec:plan.Opt.spec ~ncols:plan.Opt.ncols ~k:plan.Opt.k
          ~instance_ints
          ~proof_hex:(Zkml_util.Bytes_util.to_hex bytes),
        r.B.Pipe_kzg.prove_s,
        r.B.Pipe_kzg.proof_bytes )

(* Classify a parsed proof file against a model: [`Accepted], [`Rejected]
   (well-formed but false) or [`Malformed of Err.t]. Total — a hostile
   header that breaks the circuit rebuild surfaces as [`Malformed].
   [kzg_keys]/[ipa_keys] memoize rebuilt keys per header so the fuzzer
   does not re-run keygen for every mutant. *)
let verdict ~kzg_keys ~ipa_keys (m : Zoo.model) pf =
  if pf.pf_model <> m.Zoo.name then
    `Malformed
      (Err.make ~context:[ "proof-file" ] Err.Bad_field
         (Printf.sprintf "proof is for model %S, not %S" pf.pf_model
            m.Zoo.name))
  else begin
    let header =
      Printf.sprintf "%s|%s|%s|%d|%d|%d|%d" m.Zoo.name
        (Backends.backend_name pf.pf_backend)
        (Spec.to_string pf.pf_spec) pf.pf_ncols pf.pf_k
        pf.pf_cfg.Fx.scale_bits pf.pf_cfg.Fx.table_bits
    in
    let memo cache rebuild =
      match Hashtbl.find_opt cache header with
      | Some keys -> keys
      | None ->
          let keys = Err.guard Err.Bad_field rebuild in
          Hashtbl.add cache header keys;
          keys
    in
    match pf.pf_backend with
    | Backends.Ipa -> (
        let params = Lazy.force B.ipa_params in
        match
          memo ipa_keys (fun () ->
              B.Pipe_ipa.rebuild_keys params ~spec:pf.pf_spec
                ~ncols:pf.pf_ncols ~k:pf.pf_k ~cfg:pf.pf_cfg m.Zoo.graph)
        with
        | Error e -> `Malformed (Err.with_context "rebuild-keys" e)
        | Ok keys -> (
            match
              B.Pipe_ipa.verify_verdict params keys
                ~instance_ints:pf.pf_instance pf.pf_proof
            with
            | B.Pipe_ipa.Proto.Accepted -> `Accepted
            | B.Pipe_ipa.Proto.Rejected -> `Rejected
            | B.Pipe_ipa.Proto.Malformed e -> `Malformed e))
    | Backends.Kzg -> (
        let params = Lazy.force B.kzg_params in
        match
          memo kzg_keys (fun () ->
              B.Pipe_kzg.rebuild_keys params ~spec:pf.pf_spec
                ~ncols:pf.pf_ncols ~k:pf.pf_k ~cfg:pf.pf_cfg m.Zoo.graph)
        with
        | Error e -> `Malformed (Err.with_context "rebuild-keys" e)
        | Ok keys -> (
            match
              B.Pipe_kzg.verify_verdict params keys
                ~instance_ints:pf.pf_instance pf.pf_proof
            with
            | B.Pipe_kzg.Proto.Accepted -> `Accepted
            | B.Pipe_kzg.Proto.Rejected -> `Rejected
            | B.Pipe_kzg.Proto.Malformed e -> `Malformed e))
  end
