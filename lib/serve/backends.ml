(** The process-wide backend instantiations shared by the CLI, the
    proving daemon and the load generator.

    Proof bytes depend on the scheme modules AND the SRS (setup seed +
    size), so every entry point that promises byte-identical proofs —
    `zkml prove`, `zkml batch-prove`, the daemon's Prove handler — must
    draw from one shared instantiation. This module is that single
    source: the simulated-pairing curve over Fp61, the KZG and IPA
    schemes on top of it, the artifact-cache functors, and the lazily
    forced CLI parameters (seed ["zkml-cli"], 2^{!srs_k} rows). *)

module Sim61 = Zkml_ec.Simulated.Make (Zkml_ff.Fp61)
module Kzg = Zkml_commit.Kzg.Make (Sim61)
module Ipa = Zkml_commit.Ipa.Make (Sim61)
module Serve_kzg = Artifacts.Make (Kzg)
module Serve_ipa = Artifacts.Make (Ipa)

(* Applicative functors: [Serve_*.Pipe] IS [Zkml_compiler.Pipeline.Make]
   applied to the same scheme, so all pipeline types line up. *)
module Pipe_kzg = Serve_kzg.Pipe
module Pipe_ipa = Serve_ipa.Pipe

let srs_k = 15
let kzg_params = lazy (Kzg.setup ~max_size:(1 lsl srs_k) ~seed:"zkml-cli")
let ipa_params = lazy (Ipa.setup ~max_size:(1 lsl srs_k) ~seed:"zkml-cli")

(** The closed backend universe. The wire protocol and the proof-file
    header both range over exactly these two. *)
type backend = Kzg | Ipa

let backend_name = function Kzg -> "kzg" | Ipa -> "ipa"

let backend_of_string = function
  | "kzg" -> Some Kzg
  | "ipa" -> Some Ipa
  | _ -> None
