(** The daemon's length-prefixed binary wire protocol.

    One frame per message:

    {v
      +-------+------+----------------+--------------------+
      | magic | kind |     length     |      payload       |
      | "ZKW1"| u8   | u32 big-endian | exactly length B   |
      +-------+------+----------------+--------------------+
    v}

    Payload encodings are canonical by construction — fixed-width
    big-endian integers, exact length-prefixed strings, a closed kind
    set, and a mandatory end-of-payload check — so for every accepted
    string [decode (encode m) = m] AND [encode (decode s) = s]. The
    fuzz harness leans on the second equation: any mutant that decodes
    but does not re-encode to itself is a soundness failure.

    Decoding is total: every malformed frame (truncated, oversized
    length, bad magic, unknown kind, trailing bytes, out-of-range
    field) comes back as a typed {!Zkml_util.Err.t} with a byte offset,
    never as an exception. The daemon answers such frames with verdict
    2, reusing the CLI exit contract. *)

module Err = Zkml_util.Err

let magic = "ZKW1"

(* Caps: a frame an attacker can make us buffer, a name an attacker can
   make us label metrics with, a batch an attacker can make us prove.
   All sit far above real traffic (a vgg16 proof file is ~100 KiB). *)
let max_frame = 1 lsl 24
let max_name = 64
let max_batch = 64

type request =
  | Ping
  | Prove of {
      tenant : string;
      backend : Backends.backend;
      model : string;
      seeds : int64 list;  (** one proof per input-sampling seed *)
    }
  | Prove_seg of {
      tenant : string;
      backend : Backends.backend;
      model : string;
      segments : int;  (** requested segment count, 1..16 *)
      seeds : int64 list;
    }  (** split-and-aggregate prove; answers `zkml-proof-seg v1` texts *)
  | Verify of { tenant : string; model : string; proof : string }
      (** [proof] is a full `zkml-proof v1` or `zkml-proof-seg v1` file
          text; the daemon dispatches on the first line *)
  | Shutdown

type response =
  | Pong
  | Proofs of string list  (** proof-file texts, one per requested seed *)
  | Verdict of { code : int; detail : string }
      (** the CLI exit contract over the wire: 0 accepted, 1 rejected,
          2 malformed (with a one-line diagnostic) *)
  | Overloaded  (** admission control: queue full, retry later *)
  | Stopping  (** daemon is shutting down *)

(* Frame kinds. Requests and responses share one tag space so a single
   total decoder serves the fuzz harness. *)
let k_ping = 0x01
let k_prove = 0x02
let k_verify = 0x03
let k_shutdown = 0x04
let k_prove_seg = 0x05
let k_pong = 0x11
let k_proofs = 0x12
let k_verdict = 0x13
let k_overloaded = 0x14
let k_stopping = 0x15

(* ------------------------------------------------------------------ *)
(* primitive codecs (big-endian, fixed width) *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf v

let put_i64 buf v =
  for i = 7 downto 0 do
    put_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

(* short strings (names) carry a u16 length, long ones (proof texts) a
   u32 length; both lengths are exact, so the encoding is canonical *)
let put_str16 buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

let put_str32 buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

open Err

let get_u8 r ~what = Reader.decode r ~what 1 (fun s -> Char.code s.[0])

let get_u16 r ~what =
  Reader.decode r ~what 2 (fun s -> (Char.code s.[0] lsl 8) lor Char.code s.[1])

let get_u32 r ~what =
  let* hi = get_u16 r ~what in
  let* lo = get_u16 r ~what in
  Ok ((hi lsl 16) lor lo)

let get_i64 r ~what =
  Reader.decode r ~what 8 (fun s ->
      let v = ref 0L in
      String.iter
        (fun c ->
          v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c)))
        s;
      !v)

let get_name r ~what =
  let start = Reader.pos r in
  let* n = get_u16 r ~what in
  if n > max_name then
    failf ~offset:(Byte start) Out_of_range "%s: %d bytes exceeds cap %d" what
      n max_name
  else Reader.take r ~what n

let get_blob r ~what =
  let start = Reader.pos r in
  let* n = get_u32 r ~what in
  if n > max_frame then
    failf ~offset:(Byte start) Out_of_range "%s: %d bytes exceeds cap %d" what
      n max_frame
  else Reader.take r ~what n

(* ------------------------------------------------------------------ *)
(* frames *)

let header_len = String.length magic + 1 + 4

let encode_frame ~kind payload =
  let buf = Buffer.create (header_len + String.length payload) in
  Buffer.add_string buf magic;
  put_u8 buf kind;
  put_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Parse just the 9 header bytes to (kind, payload length). Shared by
   the pure decoder and the socket reader, so a hostile length field is
   rejected before any payload is buffered. *)
let parse_header s =
  let r = Reader.of_string s in
  let* m = Reader.take r ~what:"magic" (String.length magic) in
  let* () =
    if m = magic then Ok ()
    else fail ~offset:(Byte 0) Bad_header "bad magic (expected \"ZKW1\")"
  in
  let* kind = get_u8 r ~what:"kind" in
  let* len = get_u32 r ~what:"length" in
  let* () =
    if len > max_frame then
      failf ~offset:(Byte (String.length magic + 1)) Out_of_range
        "frame length %d exceeds cap %d" len max_frame
    else Ok ()
  in
  Ok (kind, len)

(** Split one complete frame into (kind, payload). Strict: the string
    must hold exactly the declared frame, no more, no less. *)
let decode_frame s =
  in_context "wire"
  @@
  if String.length s < header_len then
    failf ~offset:(Byte (String.length s)) Truncated
      "frame header needs %d bytes, got %d" header_len (String.length s)
  else
    let* kind, len = parse_header (String.sub s 0 header_len) in
    let body = String.length s - header_len in
    if body < len then
      failf ~offset:(Byte (String.length s)) Truncated
        "payload holds %d of %d bytes" body len
    else if body > len then
      failf
        ~offset:(Byte (header_len + len))
        Trailing_data "%d bytes after frame" (body - len)
    else Ok (kind, String.sub s header_len len)

(* ------------------------------------------------------------------ *)
(* payload codecs *)

let encode_request req =
  let buf = Buffer.create 64 in
  let kind =
    match req with
    | Ping -> k_ping
    | Prove { tenant; backend; model; seeds } ->
        put_str16 buf tenant;
        put_u8 buf (match backend with Backends.Kzg -> 0 | Backends.Ipa -> 1);
        put_str16 buf model;
        put_u16 buf (List.length seeds);
        List.iter (put_i64 buf) seeds;
        k_prove
    | Prove_seg { tenant; backend; model; segments; seeds } ->
        put_str16 buf tenant;
        put_u8 buf (match backend with Backends.Kzg -> 0 | Backends.Ipa -> 1);
        put_str16 buf model;
        put_u8 buf segments;
        put_u16 buf (List.length seeds);
        List.iter (put_i64 buf) seeds;
        k_prove_seg
    | Verify { tenant; model; proof } ->
        put_str16 buf tenant;
        put_str16 buf model;
        put_str32 buf proof;
        k_verify
    | Shutdown -> k_shutdown
  in
  encode_frame ~kind (Buffer.contents buf)

let encode_response resp =
  let buf = Buffer.create 64 in
  let kind =
    match resp with
    | Pong -> k_pong
    | Proofs texts ->
        put_u16 buf (List.length texts);
        List.iter (put_str32 buf) texts;
        k_proofs
    | Verdict { code; detail } ->
        put_u8 buf code;
        put_str32 buf detail;
        k_verdict
    | Overloaded -> k_overloaded
    | Stopping -> k_stopping
  in
  encode_frame ~kind (Buffer.contents buf)

let request_of_payload kind payload =
  in_context "wire"
  @@
  let r = Reader.of_string payload in
  let* req =
    if kind = k_ping then Ok Ping
    else if kind = k_prove then begin
      let* tenant = get_name r ~what:"tenant" in
      let* b = get_u8 r ~what:"backend" in
      let* backend =
        match b with
        | 0 -> Ok Backends.Kzg
        | 1 -> Ok Backends.Ipa
        | _ ->
            failf ~offset:(Byte (Reader.pos r - 1)) Unknown_variant
              "backend tag %d" b
      in
      let* model = get_name r ~what:"model" in
      let nstart = Reader.pos r in
      let* n = get_u16 r ~what:"seed count" in
      let* () =
        if n < 1 || n > max_batch then
          failf ~offset:(Byte nstart) Out_of_range
            "seed count %d outside [1, %d]" n max_batch
        else Ok ()
      in
      let rec seeds acc i =
        if i = 0 then Ok (List.rev acc)
        else
          let* s = get_i64 r ~what:"seed" in
          seeds (s :: acc) (i - 1)
      in
      let* seeds = seeds [] n in
      Ok (Prove { tenant; backend; model; seeds })
    end
    else if kind = k_prove_seg then begin
      let* tenant = get_name r ~what:"tenant" in
      let* b = get_u8 r ~what:"backend" in
      let* backend =
        match b with
        | 0 -> Ok Backends.Kzg
        | 1 -> Ok Backends.Ipa
        | _ ->
            failf ~offset:(Byte (Reader.pos r - 1)) Unknown_variant
              "backend tag %d" b
      in
      let* model = get_name r ~what:"model" in
      let sstart = Reader.pos r in
      let* segments = get_u8 r ~what:"segment count" in
      let* () =
        if segments < 1 || segments > 16 then
          failf ~offset:(Byte sstart) Out_of_range
            "segment count %d outside [1, 16]" segments
        else Ok ()
      in
      let nstart = Reader.pos r in
      let* n = get_u16 r ~what:"seed count" in
      let* () =
        if n < 1 || n > max_batch then
          failf ~offset:(Byte nstart) Out_of_range
            "seed count %d outside [1, %d]" n max_batch
        else Ok ()
      in
      let rec seeds acc i =
        if i = 0 then Ok (List.rev acc)
        else
          let* s = get_i64 r ~what:"seed" in
          seeds (s :: acc) (i - 1)
      in
      let* seeds = seeds [] n in
      Ok (Prove_seg { tenant; backend; model; segments; seeds })
    end
    else if kind = k_verify then begin
      let* tenant = get_name r ~what:"tenant" in
      let* model = get_name r ~what:"model" in
      let* proof = get_blob r ~what:"proof" in
      Ok (Verify { tenant; model; proof })
    end
    else if kind = k_shutdown then Ok Shutdown
    else failf Unknown_variant "request kind 0x%02x" kind
  in
  let* () = Reader.expect_end r ~what:"request" in
  Ok req

let response_of_payload kind payload =
  in_context "wire"
  @@
  let r = Reader.of_string payload in
  let* resp =
    if kind = k_pong then Ok Pong
    else if kind = k_proofs then begin
      let nstart = Reader.pos r in
      let* n = get_u16 r ~what:"proof count" in
      let* () =
        if n > max_batch then
          failf ~offset:(Byte nstart) Out_of_range "proof count %d exceeds %d"
            n max_batch
        else Ok ()
      in
      let rec texts acc i =
        if i = 0 then Ok (List.rev acc)
        else
          let* t = get_blob r ~what:"proof text" in
          texts (t :: acc) (i - 1)
      in
      let* texts = texts [] n in
      Ok (Proofs texts)
    end
    else if kind = k_verdict then begin
      let cstart = Reader.pos r in
      let* code = get_u8 r ~what:"verdict code" in
      let* () =
        if code > 2 then
          failf ~offset:(Byte cstart) Out_of_range
            "verdict code %d outside [0, 2]" code
        else Ok ()
      in
      let* detail = get_blob r ~what:"detail" in
      Ok (Verdict { code; detail })
    end
    else if kind = k_overloaded then Ok Overloaded
    else if kind = k_stopping then Ok Stopping
    else failf Unknown_variant "response kind 0x%02x" kind
  in
  let* () = Reader.expect_end r ~what:"response" in
  Ok resp

let decode_request s =
  let* kind, payload = decode_frame s in
  request_of_payload kind payload

let decode_response s =
  let* kind, payload = decode_frame s in
  response_of_payload kind payload

(** Decode either direction — the fuzz harness's single entry point. *)
let decode_any s =
  let* kind, payload = decode_frame s in
  if kind < 0x10 then
    let* req = request_of_payload kind payload in
    Ok (`Req req)
  else
    let* resp = response_of_payload kind payload in
    Ok (`Resp resp)

let encode_any = function
  | `Req r -> encode_request r
  | `Resp r -> encode_response r

(* ------------------------------------------------------------------ *)
(* socket I/O *)

type read_outcome =
  | Frame of int * string  (** kind, payload *)
  | Eof  (** clean end of stream at a frame boundary *)
  | Fail of Err.t
      (** framing broken (bad header, over-cap length, mid-frame EOF);
          the stream cannot be resynchronized *)

(* Read exactly [n] bytes; [`Eof k] reports how many arrived first. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof off
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(** Read one frame from [fd]. Never raises on malformed input: header
    or length violations come back as [Fail], a clean close between
    frames as [Eof]. *)
let read_frame fd =
  match read_exact fd header_len with
  | `Eof 0 -> Eof
  | `Eof k ->
      Fail
        (Err.make ~offset:(Byte k) ~context:[ "wire" ] Err.Truncated
           (Printf.sprintf "connection closed %d bytes into a frame header" k))
  | `Ok header -> (
      match parse_header header with
      | Error e -> Fail (Err.with_context "wire" e)
      | Ok (kind, len) -> (
          match read_exact fd len with
          | `Ok payload -> Frame (kind, payload)
          | `Eof k ->
              Fail
                (Err.make
                   ~offset:(Byte (header_len + k))
                   ~context:[ "wire" ] Err.Truncated
                   (Printf.sprintf "payload holds %d of %d bytes" k len))))

(* Raises on I/O errors (broken pipe etc.); callers own the socket. *)
let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_request fd req = write_all fd (encode_request req)
let send_response fd resp = write_all fd (encode_response resp)

(** One blocking request/response round-trip on an open connection. *)
let roundtrip fd req =
  send_request fd req;
  match read_frame fd with
  | Frame (kind, payload) -> response_of_payload kind payload
  | Eof -> fail ~context:[ "wire" ] Truncated "connection closed before reply"
  | Fail e -> Error e
