(** Deterministic seeded load generator for the proving daemon.

    Replays a mixed traffic schedule — proves over the zoo models with
    varying batch sizes, verifications of genuine and tampered proofs,
    pings, and malformed frames drawn from the wire fuzz corpus — from
    [concurrency] client connections, asserting the daemon's answer for
    every request: Proofs for proves, verdict 0/1/2 for good/tampered/
    malformed traffic, and that the daemon keeps serving after every
    malformed frame. The whole schedule is a pure function of the seed,
    so a failing run replays exactly.

    Reports per-kind p50/p90/p99 latency and proofs/sec, optionally as
    a schema-stamped BENCH_PR9-style JSON blob for the bench-regression
    gate. `zkml loadgen --spawn` forks the daemon itself (before any
    client thread exists), drives it, shuts it down with a wire-level
    Shutdown, and checks the child exits cleanly — `make serve-smoke`
    in one process tree. *)

module Zoo = Zkml_models.Zoo
module Err = Zkml_util.Err
module Rng = Zkml_util.Rng
module Mclock = Zkml_obs.Mclock

type opts = {
  lg_addr : Server.addr;
  lg_seed : int;
  lg_requests : int;
  lg_concurrency : int;
  lg_models : string list;
  lg_spawn : Server.config option;
      (** [Some cfg]: fork a daemon with this config on [lg_addr] *)
  lg_bench_out : string option;  (** write the serve bench JSON here *)
}

(* ------------------------------------------------------------------ *)
(* schedule *)

type op =
  | Op_prove of { model : string; seeds : int64 list }
  | Op_verify_good of string
  | Op_verify_bad of string
  | Op_ping
  | Op_malformed of int  (** flavor index, see [malformed_flavors] *)

let op_kind = function
  | Op_prove _ -> "prove"
  | Op_verify_good _ -> "verify_good"
  | Op_verify_bad _ -> "verify_bad"
  | Op_ping -> "ping"
  | Op_malformed _ -> "malformed"

let malformed_flavors = 5

(* The mixed-phase schedule: model choice, batch sizes, op mix and
   malformed-frame flavors all drawn from one seeded stream. *)
let schedule ~rng ~models n =
  Array.init n (fun i ->
      let d = Rng.int rng 100 in
      let pick () = List.nth models (Rng.int rng (List.length models)) in
      if d < 25 then
        let batch = 1 + Rng.int rng 2 in
        Op_prove
          {
            model = pick ();
            seeds =
              List.init batch (fun j -> Int64.of_int (2000 + (i * 7) + j));
          }
      else if d < 50 then Op_verify_good (pick ())
      else if d < 65 then Op_verify_bad (pick ())
      else if d < 85 then Op_malformed (Rng.int rng malformed_flavors)
      else Op_ping)

(* A tampered proof that must draw verdict 1: bump one public instance
   value. The proof still parses and the header still rebuilds, but the
   proof no longer binds the altered instance — well-formed and false.
   Handles both proof formats, so a daemon running with ZKML_SEGMENTS
   set (corpus proofs come back segmented) is load-testable too: there
   the bumped slot is a boundary value of the last segment, which the
   seam equality check rejects. *)
let tamper_proof text =
  if Seg_proof.looks_segmented text then
    match Seg_proof.of_string text with
    | Error e ->
        failwith
          ("loadgen: stored segmented proof does not parse: "
         ^ Err.to_string e)
    | Ok sp ->
        let n = Array.length sp.Seg_proof.sp_groups in
        if n = 0 then failwith "loadgen: stored segmented proof is empty";
        let g = sp.Seg_proof.sp_groups.(n - 1) in
        if Array.length g.Seg_proof.sg_instance = 0 then
          failwith "loadgen: stored segmented proof has an empty instance";
        let instance = Array.copy g.Seg_proof.sg_instance in
        instance.(0) <- instance.(0) + 1;
        let groups = Array.copy sp.Seg_proof.sp_groups in
        groups.(n - 1) <- { g with Seg_proof.sg_instance = instance };
        Seg_proof.render { sp with Seg_proof.sp_groups = groups }
  else
    match Proof_file.of_string text with
    | Error e ->
        failwith ("loadgen: stored proof does not parse: " ^ Err.to_string e)
    | Ok pf ->
        if Array.length pf.Proof_file.pf_instance = 0 then
          failwith "loadgen: stored proof has an empty instance";
        let instance = Array.copy pf.Proof_file.pf_instance in
        instance.(0) <- instance.(0) + 1;
        Proof_file.render { pf with Proof_file.pf_instance = instance }

(* ------------------------------------------------------------------ *)
(* client connections *)

(* The spawned daemon warms its cache before listening, so the first
   successful connect doubles as the ready signal. *)
let connect_retry ?(timeout_s = 600.0) addr =
  let t0 = Mclock.now_s () in
  let rec go () =
    match Server.connect addr with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        if Mclock.elapsed_s ~since:t0 > timeout_s then
          failwith "loadgen: daemon did not come up in time"
        else begin
          ignore (Unix.select [] [] [] 0.2);
          go ()
        end
  in
  go ()

let read_response fd =
  match Wire.read_frame fd with
  | Wire.Frame (kind, payload) -> Wire.response_of_payload kind payload
  | Wire.Eof ->
      Err.fail ~context:[ "loadgen" ] Err.Truncated "connection closed"
  | Wire.Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* per-op execution: send, check the answer, report (ok, note) *)

type outcome = {
  o_kind : string;
  o_latency : float;
  o_ok : bool;
  o_note : string;
  o_proofs : int;  (** proofs returned by this op *)
}

let expect_verdict fd code what =
  match read_response fd with
  | Ok (Wire.Verdict { code = c; _ }) when c = code -> (true, "", 0)
  | Ok (Wire.Verdict { code = c; detail }) ->
      ( false,
        Printf.sprintf "%s: verdict %d (wanted %d): %s" what c code detail,
        0 )
  | Ok _ -> (false, what ^ ": unexpected response kind", 0)
  | Error e -> (false, what ^ ": " ^ Err.to_string e, 0)

(* Each malformed flavor says whether the daemon is expected to keep the
   connection afterwards ([`Keep]) or drop it ([`Drop]). *)
let run_malformed fd flavor =
  let ping = Wire.encode_request Wire.Ping in
  let prove =
    Wire.encode_request
      (Wire.Prove
         { tenant = "fuzz"; backend = Backends.Kzg; model = "mnist";
           seeds = [ 1L ] })
  in
  match flavor with
  | 0 ->
      (* truncated frame: cut mid-payload, half-close so the daemon sees
         EOF inside the frame *)
      Wire.write_all fd (String.sub prove 0 (Wire.header_len + 3));
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (expect_verdict fd 2 "truncated frame", `Drop)
  | 1 ->
      (* corrupt magic *)
      Wire.write_all fd ("XKW1" ^ String.sub ping 4 (String.length ping - 4));
      (expect_verdict fd 2 "bad magic", `Drop)
  | 2 ->
      (* length field far over the declared cap *)
      Wire.write_all fd "ZKW1\x01\x7f\xff\xff\xff";
      (expect_verdict fd 2 "oversized length", `Drop)
  | 3 ->
      (* well-delimited frame, garbage payload: the daemon must answer
         verdict 2 and keep serving this very connection *)
      Wire.write_all fd
        (Wire.encode_frame ~kind:0x02 "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff");
      let (ok1, note1, _) = expect_verdict fd 2 "garbage payload" in
      if not ok1 then ((ok1, note1, 0), `Keep)
      else begin
        Wire.write_all fd ping;
        match read_response fd with
        | Ok Wire.Pong -> ((true, "", 0), `Keep)
        | _ -> ((false, "daemon stopped serving after payload error", 0), `Keep)
      end
  | _ ->
      (* duplicate header / trailing bytes: a valid frame followed by a
         second header with a hostile length *)
      Wire.write_all fd (ping ^ "ZKW1\xff\xff\xff\xff\xff");
      let ok1 =
        match read_response fd with Ok Wire.Pong -> true | _ -> false
      in
      let (ok2, note2, _) = expect_verdict fd 2 "duplicate header" in
      if not ok1 then ((false, "no answer to the frame before the junk", 0), `Drop)
      else ((ok2, note2, 0), `Drop)

let run_op ~addr ~good_proofs fd_ref op =
  let fd = !fd_ref in
  let reconnect () =
    (try Unix.close fd with _ -> ());
    fd_ref := connect_retry ~timeout_s:30.0 addr
  in
  let t0 = Mclock.now_s () in
  let ok, note, proofs =
    match op with
    | Op_ping -> (
        Wire.send_request fd Wire.Ping;
        match read_response fd with
        | Ok Wire.Pong -> (true, "", 0)
        | Ok _ -> (false, "ping: unexpected response", 0)
        | Error e -> (false, "ping: " ^ Err.to_string e, 0))
    | Op_prove { model; seeds } -> (
        Wire.send_request fd
          (Wire.Prove
             { tenant = "loadgen"; backend = Backends.Kzg; model; seeds });
        match read_response fd with
        | Ok (Wire.Proofs texts) when List.length texts = List.length seeds ->
            (true, "", List.length texts)
        | Ok (Wire.Proofs texts) ->
            ( false,
              Printf.sprintf "prove %s: %d proofs for %d seeds" model
                (List.length texts) (List.length seeds),
              List.length texts )
        | Ok (Wire.Verdict { code; detail }) ->
            (false, Printf.sprintf "prove %s: verdict %d: %s" model code detail, 0)
        | Ok _ -> (false, "prove " ^ model ^ ": unexpected response", 0)
        | Error e -> (false, "prove " ^ model ^ ": " ^ Err.to_string e, 0))
    | Op_verify_good model ->
        Wire.send_request fd
          (Wire.Verify
             { tenant = "loadgen"; model;
               proof = fst (List.assoc model good_proofs) });
        let ok, note, _ = expect_verdict fd 0 ("verify " ^ model) in
        (ok, note, 0)
    | Op_verify_bad model ->
        Wire.send_request fd
          (Wire.Verify
             { tenant = "mallory"; model;
               proof = snd (List.assoc model good_proofs) });
        let ok, note, _ = expect_verdict fd 1 ("verify tampered " ^ model) in
        (ok, note, 0)
    | Op_malformed flavor ->
        let (ok, note, _), keep = run_malformed fd flavor in
        (match keep with `Drop -> reconnect () | `Keep -> ());
        (ok, note, 0)
  in
  {
    o_kind = op_kind op;
    o_latency = Mclock.elapsed_s ~since:t0;
    o_ok = ok;
    o_note = note;
    o_proofs = proofs;
  }

(* ------------------------------------------------------------------ *)
(* stats *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

type kind_stats = {
  ks_kind : string;
  ks_count : int;
  ks_p50 : float;
  ks_p90 : float;
  ks_p99 : float;
}

let stats_of outcomes =
  let kinds =
    [ "prove"; "verify_good"; "verify_bad"; "ping"; "malformed" ]
  in
  List.filter_map
    (fun kind ->
      let lat =
        Array.of_list
          (List.filter_map
             (fun o -> if o.o_kind = kind then Some o.o_latency else None)
             outcomes)
      in
      if Array.length lat = 0 then None
      else begin
        Array.sort compare lat;
        Some
          {
            ks_kind = kind;
            ks_count = Array.length lat;
            ks_p50 = percentile lat 0.50;
            ks_p90 = percentile lat 0.90;
            ks_p99 = percentile lat 0.99;
          }
      end)
    kinds

let bench_json ~opts ~kinds ~proofs ~wall_s =
  let f = Zkml_obs.Obs.json_float in
  let kind_rows =
    List.map
      (fun k ->
        Printf.sprintf
          "{\"kind\":\"%s\",\"count\":%d,\"p50_s\":%s,\"p90_s\":%s,\"p99_s\":%s}"
          k.ks_kind k.ks_count (f k.ks_p50) (f k.ks_p90) (f k.ks_p99))
      kinds
  in
  Printf.sprintf
    "{\"schema_version\":1,\"bench\":\"serve\",\"seed\":%d,\"requests\":%d,\"concurrency\":%d,\"models\":[%s],\"kinds\":[%s],\"proofs\":%d,\"proofs_per_s\":%s,\"wall_s\":%s}\n"
    opts.lg_seed opts.lg_requests opts.lg_concurrency
    (String.concat "," (List.map (Printf.sprintf "\"%s\"") opts.lg_models))
    (String.concat "," kind_rows)
    proofs
    (f (float_of_int proofs /. Float.max wall_s 1e-9))
    (f wall_s)

(* ------------------------------------------------------------------ *)
(* the run *)

let spawn_daemon config addr =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* child: become the daemon; _exit skips the parent's at_exit
         handlers (metrics/trace dumps would race the parent's) *)
      (try
         Server.run ~config addr;
         Unix._exit 0
       with exn ->
         Printf.eprintf "daemon: %s\n%!" (Printexc.to_string exn);
         Unix._exit 1)
  | pid -> pid

let run opts =
  let failures = ref [] in
  let record_failures outcomes =
    List.iter
      (fun o -> if not o.o_ok then failures := o.o_note :: !failures)
      outcomes
  in
  let daemon =
    Option.map (fun cfg -> spawn_daemon cfg opts.lg_addr) opts.lg_spawn
  in
  let t_start = Mclock.now_s () in
  (* phase A (sequential): one proof per model; the stored texts feed
     the verify_good/verify_bad traffic of the mixed phase *)
  let fd0 = connect_retry opts.lg_addr in
  Printf.printf "loadgen: connected to %s; proving %d model(s) for the verify corpus\n%!"
    (Server.addr_string opts.lg_addr)
    (List.length opts.lg_models);
  let phase_a = ref [] in
  let good_proofs =
    List.map
      (fun model ->
        let t0 = Mclock.now_s () in
        Wire.send_request fd0
          (Wire.Prove
             { tenant = "loadgen"; backend = Backends.Kzg; model;
               seeds = [ Int64.of_int (1000 + opts.lg_seed) ] });
        let text =
          match read_response fd0 with
          | Ok (Wire.Proofs [ text ]) -> text
          | Ok (Wire.Verdict { code; detail }) ->
              failwith
                (Printf.sprintf "loadgen: prove %s answered verdict %d: %s"
                   model code detail)
          | Ok _ -> failwith ("loadgen: prove " ^ model ^ ": unexpected response")
          | Error e ->
              failwith ("loadgen: prove " ^ model ^ ": " ^ Err.to_string e)
        in
        phase_a :=
          {
            o_kind = "prove";
            o_latency = Mclock.elapsed_s ~since:t0;
            o_ok = true;
            o_note = "";
            o_proofs = 1;
          }
          :: !phase_a;
        (model, (text, tamper_proof text)))
      opts.lg_models
  in
  (try Unix.close fd0 with _ -> ());
  (* mixed phase: the seeded schedule over [concurrency] connections *)
  let n_mixed = max 0 (opts.lg_requests - List.length opts.lg_models) in
  let rng = Rng.create (Int64.of_int opts.lg_seed) in
  let ops = schedule ~rng ~models:opts.lg_models n_mixed in
  let results = Array.make n_mixed None in
  let next = Atomic.make 0 in
  let client () =
    let fd_ref = ref (connect_retry ~timeout_s:30.0 opts.lg_addr) in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n_mixed then begin
        results.(i) <-
          Some (run_op ~addr:opts.lg_addr ~good_proofs fd_ref ops.(i));
        go ()
      end
    in
    (try go ()
     with exn ->
       failures :=
         ("client thread died: " ^ Printexc.to_string exn) :: !failures);
    try Unix.close !fd_ref with _ -> ()
  in
  Printf.printf "loadgen: replaying %d mixed requests over %d connection(s)\n%!"
    n_mixed opts.lg_concurrency;
  let clients =
    List.init (max 1 opts.lg_concurrency) (fun _ -> Thread.create client ())
  in
  List.iter Thread.join clients;
  let wall_s = Mclock.elapsed_s ~since:t_start in
  (* clean shutdown over the wire, then reap the child *)
  let fd = connect_retry ~timeout_s:30.0 opts.lg_addr in
  Wire.send_request fd Wire.Shutdown;
  (match read_response fd with
  | Ok Wire.Stopping -> ()
  | _ -> failures := "no Stopping answer to Shutdown" :: !failures);
  (try Unix.close fd with _ -> ());
  (match daemon with
  | None -> ()
  | Some pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> failures := "daemon did not exit cleanly" :: !failures));
  (* report *)
  let outcomes =
    !phase_a
    @ (Array.to_list results |> List.filter_map Fun.id)
  in
  let mixed_done = List.length (List.filter_map Fun.id (Array.to_list results)) in
  if mixed_done < n_mixed then
    failures :=
      Printf.sprintf "%d of %d mixed requests never ran" (n_mixed - mixed_done)
        n_mixed
      :: !failures;
  record_failures outcomes;
  let kinds = stats_of outcomes in
  let proofs = List.fold_left (fun acc o -> acc + o.o_proofs) 0 outcomes in
  Printf.printf "\n%-12s %6s %10s %10s %10s\n" "kind" "count" "p50_s" "p90_s"
    "p99_s";
  List.iter
    (fun k ->
      Printf.printf "%-12s %6d %10.4f %10.4f %10.4f\n" k.ks_kind k.ks_count
        k.ks_p50 k.ks_p90 k.ks_p99)
    kinds;
  Printf.printf "\n%d proofs in %.2f s wall (%.3f proofs/s), %d request(s) failed\n"
    proofs wall_s
    (float_of_int proofs /. Float.max wall_s 1e-9)
    (List.length !failures);
  List.iter (fun f -> Printf.printf "  FAIL %s\n" f) !failures;
  (match opts.lg_bench_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (bench_json ~opts ~kinds ~proofs ~wall_s);
      close_out oc;
      Printf.printf "wrote %s\n" path);
  Zkml_obs.Log.event "loadgen.done"
    [ ("requests", Zkml_obs.Log.I opts.lg_requests);
      ("proofs", Zkml_obs.Log.I proofs);
      ("wall_s", Zkml_obs.Log.F wall_s);
      ("failures", Zkml_obs.Log.I (List.length !failures)) ];
  if !failures = [] then 0 else 1
