(** Monotonic clock shared by spans, metrics and benches.

    Wall clocks ([Unix.gettimeofday]) can step backwards under NTP
    adjustment, producing negative span durations mid-trace; all
    interval timing in the repo therefore reads CLOCK_MONOTONIC. The
    epoch is arbitrary (boot time on Linux): values are only meaningful
    as differences, never as timestamps. *)

val now_ns : unit -> int64
(** Raw monotonic nanoseconds. *)

val now_s : unit -> float
(** Monotonic seconds as a float; the default clock for {!Obs.enable},
    {!Metrics} timers and [Zkml_util.Timer]. *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since] is [now_s () -. since], clamped at [0.] so a
    degenerate clock source can never yield a negative duration. *)
