(** Structured tracing and metrics for the prover pipeline.

    A single global sink collects hierarchical spans (wall-clock timed,
    nested), per-span counters and global gauges. Instrumented code
    checks one ref per call and allocates nothing while the sink is
    disabled, so tracing is zero-cost in production runs; when enabled,
    the recorded tree can be exported as chrome-trace JSON (loadable in
    about:tracing / Perfetto), a flat summary JSON, or a pretty-printed
    span tree. The clock is injectable so tests are wall-clock free. *)

type clock = unit -> float

type span = {
  sp_name : string;
  sp_start : float;
  mutable sp_stop : float;
  mutable sp_counters : (string * float) list;  (* insertion order *)
  mutable sp_children : span list;  (* reversed *)
}

type sink = {
  sk_clock : clock;
  sk_root : span;
  mutable sk_stack : span list;  (* innermost first; root is last *)
  sk_gauges : (string, float) Hashtbl.t;
  mutable sk_gauge_order : string list;  (* reversed insertion order *)
}

(* The sink is domain-local: the main domain owns the trace; worker
   domains see [None] unless the pool installed a capture sink for the
   duration of a parallel region (see {!Par}), so recording never races
   across domains. *)
let sink_key : sink option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sink () = Domain.DLS.get sink_key
let enabled () = !(sink ()) <> None

(* Default to the monotonic clock: gettimeofday can step backwards
   (NTP) mid-trace, producing negative durations. Tests still inject
   dyadic fake clocks through [?clock]. *)
let enable ?(clock = Mclock.now_s) () =
  let root =
    {
      sp_name = "trace";
      sp_start = clock ();
      sp_stop = nan;
      sp_counters = [];
      sp_children = [];
    }
  in
  sink ()
  := Some
       {
         sk_clock = clock;
         sk_root = root;
         sk_stack = [ root ];
         sk_gauges = Hashtbl.create 16;
         sk_gauge_order = [];
       }

let disable () = sink () := None

(* Assoc bump preserving insertion order; counter lists are short. *)
let rec bump name v = function
  | [] -> [ (name, v) ]
  | (n, x) :: tl when String.equal n name -> (n, x +. v) :: tl
  | hd :: tl -> hd :: bump name v tl

let countf name v =
  match !(sink ()) with
  | None -> ()
  | Some s -> (
      match s.sk_stack with
      | sp :: _ -> sp.sp_counters <- bump name v sp.sp_counters
      | [] -> s.sk_root.sp_counters <- bump name v s.sk_root.sp_counters)

let count name v =
  (* check the sink before boxing the float so the disabled path stays
     allocation-free *)
  match !(sink ()) with None -> () | Some _ -> countf name (float_of_int v)

let gauge name v =
  match !(sink ()) with
  | None -> ()
  | Some s ->
      if not (Hashtbl.mem s.sk_gauges name) then
        s.sk_gauge_order <- name :: s.sk_gauge_order;
      Hashtbl.replace s.sk_gauges name v

let gauge_int name v = gauge name (float_of_int v)

module Span = struct
  let with_ ~name f =
    match !(sink ()) with
    | None -> f ()
    | Some s ->
        let sp =
          {
            sp_name = name;
            sp_start = s.sk_clock ();
            sp_stop = nan;
            sp_counters = [];
            sp_children = [];
          }
        in
        (match s.sk_stack with
        | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
        | [] -> s.sk_root.sp_children <- sp :: s.sk_root.sp_children);
        s.sk_stack <- sp :: s.sk_stack;
        let finish () =
          sp.sp_stop <- s.sk_clock ();
          let rec pop = function
            | top :: rest -> if top == sp then rest else pop rest
            | [] -> [ s.sk_root ]
          in
          s.sk_stack <- pop s.sk_stack
        in
        (match f () with
        | v ->
            finish ();
            v
        | exception e ->
            finish ();
            raise e)
end

(* ------------------------------------------------------------------ *)
(* Immutable snapshots *)

type node = {
  name : string;
  start_s : float;  (* relative to trace start *)
  dur_s : float;
  counters : (string * float) list;
  children : node list;  (* in execution order *)
}

type report = {
  spans : node list;  (* top-level spans in execution order *)
  root_counters : (string * float) list;  (* counts outside any span *)
  gauges : (string * float) list;
  total_s : float;  (* trace duration at snapshot time *)
}

let snapshot () =
  match !(sink ()) with
  | None -> None
  | Some s ->
      let now = s.sk_clock () in
      let t0 = s.sk_root.sp_start in
      let rec freeze sp =
        let stop = if Float.is_nan sp.sp_stop then now else sp.sp_stop in
        {
          name = sp.sp_name;
          start_s = sp.sp_start -. t0;
          dur_s = stop -. sp.sp_start;
          counters = sp.sp_counters;
          (* sp_children is stored in reverse execution order *)
          children = List.rev_map freeze sp.sp_children;
        }
      in
      let root = freeze s.sk_root in
      let gauges =
        List.rev_map
          (fun n -> (n, Hashtbl.find s.sk_gauges n))
          s.sk_gauge_order
        |> List.rev
      in
      Some
        {
          spans = root.children;
          root_counters = root.counters;
          gauges;
          total_s = now -. t0;
        }

(** Enable a fresh sink, run [f], return its result and the recorded
    report; restores the previous sink state afterwards. *)
let with_enabled ?clock f =
  let saved = !(sink ()) in
  enable ?clock ();
  let finish () =
    let r =
      match snapshot () with
      | Some r -> r
      | None -> { spans = []; root_counters = []; gauges = []; total_s = 0.0 }
    in
    sink () := saved;
    r
  in
  match f () with
  | v -> (v, finish ())
  | exception e ->
      ignore (finish ());
      raise e

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type agg = {
  agg_name : string;
  agg_calls : int;
  agg_total_s : float;
  agg_counters : (string * float) list;
}

let merge_counters into cs =
  List.fold_left (fun acc (n, v) -> bump n v acc) into cs

(** Aggregate spans by name. A span nested under a same-named ancestor
    is not counted again (its time is already inside the ancestor's).
    [?under] restricts aggregation to subtrees rooted at spans with
    that name (the subtree roots themselves are included). *)
let totals ?under report =
  let roots =
    match under with
    | None -> report.spans
    | Some u ->
        let rec collect acc n =
          if String.equal n.name u then n :: acc
          else List.fold_left collect acc n.children
        in
        List.fold_left collect [] report.spans |> List.rev
  in
  let order = ref [] in
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 16 in
  let record n =
    match Hashtbl.find_opt tbl n.name with
    | None ->
        order := n.name :: !order;
        Hashtbl.replace tbl n.name
          {
            agg_name = n.name;
            agg_calls = 1;
            agg_total_s = n.dur_s;
            agg_counters = n.counters;
          }
    | Some a ->
        Hashtbl.replace tbl n.name
          {
            a with
            agg_calls = a.agg_calls + 1;
            agg_total_s = a.agg_total_s +. n.dur_s;
            agg_counters = merge_counters a.agg_counters n.counters;
          }
  in
  let rec visit active n =
    let fresh = not (List.mem n.name active) in
    if fresh then record n;
    let active = if fresh then n.name :: active else active in
    List.iter (visit active) n.children
  in
  List.iter (visit []) roots;
  List.rev_map (fun name -> Hashtbl.find tbl name) !order

let total_of ?under report name =
  match
    List.find_opt (fun a -> String.equal a.agg_name name) (totals ?under report)
  with
  | Some a -> a.agg_total_s
  | None -> 0.0

let gauge_of report name =
  List.assoc_opt name report.gauges

let counter_total report name =
  let rec go acc n =
    let acc =
      List.fold_left
        (fun acc (cn, v) -> if String.equal cn name then acc +. v else acc)
        acc n.counters
    in
    List.fold_left go acc n.children
  in
  let base =
    List.fold_left
      (fun acc (cn, v) -> if String.equal cn name then acc +. v else acc)
      0.0 report.root_counters
  in
  List.fold_left go base report.spans

(* ------------------------------------------------------------------ *)
(* Parallel-region capture (used by Zkml_util.Pool) *)

(** Worker domains have no sink of their own, so anything they record
    would be lost. A pool bridging a parallel region calls {!Par.fork}
    on the main domain to get per-worker capture slots, wraps each
    worker body in {!Par.worker_run} (which installs a private sink in
    that worker's DLS for the duration), and calls {!Par.join} back on
    the main domain to splice every captured subtree, counter and gauge
    into the main trace in worker-index order — so the merged trace is
    deterministic regardless of scheduling. *)
module Par = struct
  type slot = { mutable captured : sink option }
  type handle = { pr_clock : clock; pr_slots : slot array }

  let fork n =
    match !(sink ()) with
    | None -> None
    | Some s ->
        Some
          {
            pr_clock = s.sk_clock;
            pr_slots = Array.init n (fun _ -> { captured = None });
          }

  let worker_run h i f =
    match h with
    | None -> f ()
    | Some { pr_clock; pr_slots } ->
        let root =
          {
            sp_name = "worker";
            sp_start = pr_clock ();
            sp_stop = nan;
            sp_counters = [];
            sp_children = [];
          }
        in
        let s =
          {
            sk_clock = pr_clock;
            sk_root = root;
            sk_stack = [ root ];
            sk_gauges = Hashtbl.create 4;
            sk_gauge_order = [];
          }
        in
        sink () := Some s;
        let finish () =
          root.sp_stop <- pr_clock ();
          sink () := None;
          pr_slots.(i).captured <- Some s
        in
        (match f () with
        | v ->
            finish ();
            v
        | exception e ->
            finish ();
            raise e)

  let join h =
    match h with
    | None -> ()
    | Some { pr_slots; _ } -> (
        match !(sink ()) with
        | None -> ()
        | Some main ->
            let target =
              match main.sk_stack with sp :: _ -> sp | [] -> main.sk_root
            in
            Array.iter
              (fun slot ->
                match slot.captured with
                | None -> ()
                | Some ws ->
                    (* both lists are newest-first, so prepending keeps
                       worker subtrees after existing children and in
                       worker order once reversed for snapshots *)
                    target.sp_children <-
                      ws.sk_root.sp_children @ target.sp_children;
                    target.sp_counters <-
                      merge_counters target.sp_counters
                        ws.sk_root.sp_counters;
                    List.iter
                      (fun n -> gauge n (Hashtbl.find ws.sk_gauges n))
                      (List.rev ws.sk_gauge_order))
              pr_slots)
end

(* ------------------------------------------------------------------ *)
(* JSON helpers (no external dependency; output is deterministic) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let json_obj_of_counters cs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (n, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape n) (json_float v))
         cs)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* Exporters *)

(** Chrome-trace format: a JSON array of complete ("ph":"X") events with
    microsecond timestamps, loadable in about:tracing or Perfetto. *)
let chrome_trace report =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  let first = ref true in
  let rec walk n =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"zkml\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1"
         (json_escape n.name)
         (Printf.sprintf "%.0f" (n.start_s *. 1e6))
         (Printf.sprintf "%.0f" (n.dur_s *. 1e6)));
    if n.counters <> [] then begin
      Buffer.add_string buf ",\"args\":";
      Buffer.add_string buf (json_obj_of_counters n.counters)
    end;
    Buffer.add_char buf '}';
    List.iter walk n.children
  in
  List.iter walk report.spans;
  Buffer.add_char buf ']';
  Buffer.contents buf

(** Flat summary: gauges, whole-trace counters, per-name aggregated
    totals and the full span tree, as one JSON object. *)
let summary_json report =
  let buf = Buffer.create 4096 in
  let rec span_json n =
    Printf.sprintf
      "{\"name\":\"%s\",\"start_s\":%s,\"dur_s\":%s,\"counters\":%s,\"children\":[%s]}"
      (json_escape n.name) (json_float n.start_s) (json_float n.dur_s)
      (json_obj_of_counters n.counters)
      (String.concat "," (List.map span_json n.children))
  in
  Buffer.add_string buf "{\"total_s\":";
  Buffer.add_string buf (json_float report.total_s);
  Buffer.add_string buf ",\"gauges\":";
  Buffer.add_string buf (json_obj_of_counters report.gauges);
  Buffer.add_string buf ",\"totals\":[";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun a ->
            Printf.sprintf
              "{\"name\":\"%s\",\"calls\":%d,\"total_s\":%s,\"counters\":%s}"
              (json_escape a.agg_name) a.agg_calls
              (json_float a.agg_total_s)
              (json_obj_of_counters a.agg_counters))
          (totals report)));
  Buffer.add_string buf "],\"spans\":[";
  Buffer.add_string buf (String.concat "," (List.map span_json report.spans));
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Pretty tree: same-named siblings are collapsed into one line (xN)
   so hundreds of leaf NTT/MSM spans stay readable. *)
let tree_string report =
  let buf = Buffer.create 1024 in
  let group children =
    let order = ref [] and tbl = Hashtbl.create 8 in
    List.iter
      (fun n ->
        match Hashtbl.find_opt tbl n.name with
        | None ->
            order := n.name :: !order;
            Hashtbl.replace tbl n.name (ref [ n ])
        | Some l -> l := n :: !l)
      children;
    List.rev_map
      (fun name ->
        let members = List.rev !(Hashtbl.find tbl name) in
        let dur =
          List.fold_left (fun acc n -> acc +. n.dur_s) 0.0 members
        in
        let counters =
          List.fold_left (fun acc n -> merge_counters acc n.counters) [] members
        in
        let kids = List.concat_map (fun n -> n.children) members in
        (name, List.length members, dur, counters, kids))
      !order
  in
  let counters_str cs =
    if cs = [] then ""
    else
      "  ["
      ^ String.concat ", "
          (List.map (fun (n, v) -> Printf.sprintf "%s=%s" n (json_float v)) cs)
      ^ "]"
  in
  let rec render prefix parent_dur children =
    let groups = group children in
    let last = List.length groups - 1 in
    List.iteri
      (fun i (name, calls, dur, counters, kids) ->
        let branch, cont =
          if i = last then ("`- ", "   ") else ("|- ", "|  ")
        in
        let label =
          if calls > 1 then Printf.sprintf "%s x%d" name calls else name
        in
        let pct =
          if parent_dur > 0.0 then
            Printf.sprintf "%5.1f%%" (100.0 *. dur /. parent_dur)
          else "     -"
        in
        Buffer.add_string buf
          (Printf.sprintf "%s%s%-*s %10.4f s  %s%s\n" prefix branch
             (max 1 (36 - String.length prefix))
             label dur pct (counters_str counters));
        if kids <> [] then render (prefix ^ cont) dur kids)
      groups
  in
  Buffer.add_string buf
    (Printf.sprintf "trace%33s %10.4f s  100.0%%%s\n" "" report.total_s
       (counters_str report.root_counters));
  render "" report.total_s report.spans;
  if report.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (n, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-24s %s\n" n (json_float v)))
      report.gauges
  end;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
