(* CLOCK_MONOTONIC via the bechamel runtime (the only monotonic-clock
   binding available in the build image; mtime is not vendored). *)

let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) *. 1e-9
let elapsed_s ~since = Float.max 0.0 (now_s () -. since)
