(** Leveled structured event log (JSON lines).

    Complementary to {!Metrics}: metrics aggregate, the log records
    discrete events (a cache lookup, a verdict, a batch completing)
    with typed fields. Each event is one JSON object on one line:

    {v {"ts":1722945600.123,"level":"info","event":"cache.prepare","status":"hit_disk"} v}

    Destination comes from [ZKML_LOG]: unset or empty disables logging
    entirely (events cost one ref read); ["stderr"] or ["-"] writes to
    stderr; anything else is a file path opened in append mode.
    [ZKML_LOG_LEVEL] (debug|info|warn|error, default info) filters.
    Writes are mutex-protected and flushed per event, so lines from
    worker domains never interleave mid-record. [ts] is wall-clock
    ([Unix.gettimeofday]) — unlike span/metric timing, log timestamps
    exist to correlate across processes. *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> level option
(** Case-insensitive; accepts the four level names. *)

val level_name : level -> string

type field =
  | S of string
  | I of int
  | F of float
  | B of bool

val event : ?level:level -> string -> (string * field) list -> unit
(** [event name fields] emits one line if the sink is configured and
    [level] (default [Info]) passes the filter. [ts], [level] and
    [event] are reserved keys; user fields keep call-site order. *)

val enabled : level -> bool

(** {1 Configuration overrides (tests, CLI)} *)

val set_level : level -> unit

val set_sink : (string -> unit) option -> unit
(** Replace the destination with a custom line consumer ([None]
    restores the [ZKML_LOG]-derived destination). The consumer receives
    the serialized line without a trailing newline. *)
