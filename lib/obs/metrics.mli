(** Process-wide, always-on metrics registry.

    Unlike the trace sink in {!Obs} — which records only inside an
    explicit [enable]d trace and is domain-local — this registry is one
    shared, mutex-protected structure that every domain writes into
    directly, so Pool worker domains record safely with no fork/join
    bridging and nothing is ever dropped. It is always on: recording
    does not depend on [Obs.enabled], costs one mutex round-trip per
    update, and never changes observable program output (proof bytes
    are identical with or without scraping).

    Three instrument kinds, each identified by a metric name plus a
    (sorted) label set:

    - {b counters}: monotonically increasing floats ([inc]);
    - {b gauges}: last-write-wins floats ([set]);
    - {b histograms}: log-linear buckets (8 sub-buckets per power of
      two, spanning 2{^-30}..2{^30}) with exact count/sum and
      deterministic p50/p90/p99 estimation — bucket assignment depends
      only on the observed value, so quantiles are identical regardless
      of observation order or domain interleaving.

    Hot paths resolve a {!handle} once (one registry lookup) and then
    update through it. Exposition: {!prometheus_string} (text format,
    scrape- or textfile-collector-ready) and {!json_string}. *)

type labels = (string * string) list
(** Label key/value pairs. Stored sorted by key; order at call sites is
    irrelevant. *)

type handle
(** A pre-resolved series (one metric name + label set). Updating
    through a handle skips the name/label lookup. *)

(** {1 Registration and updates} *)

val counter : ?labels:labels -> ?help:string -> string -> handle
val gauge : ?labels:labels -> ?help:string -> string -> handle
val histogram : ?labels:labels -> ?help:string -> string -> handle
(** Find-or-create a series. Re-registering the same name/labels
    returns the same underlying cell; registering a name under two
    different kinds raises [Invalid_argument]. *)

val add : handle -> float -> unit
(** Counter add ([v >= 0]; negative deltas raise [Invalid_argument]). *)

val set : handle -> float -> unit
(** Gauge set. *)

val observe : handle -> float -> unit
(** Histogram observation. *)

val inc : ?labels:labels -> ?help:string -> string -> float -> unit
(** [inc name v]: one-shot counter add (lookup + add). *)

val set_gauge : ?labels:labels -> ?help:string -> string -> float -> unit
val observe_in : ?labels:labels -> ?help:string -> string -> float -> unit

val time : handle -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its monotonic duration (seconds)
    into histogram [h], even if [f] raises. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase p f]: {!time} against the canonical per-phase histogram
    [zkml_phase_seconds{phase=p}]. This is the single spine all prover
    phase timings (ntt, msm, commit, opening, quotient) hang off. *)

val reset : unit -> unit
(** Zero every registered value in place (counts, sums, buckets).
    Registration and outstanding handles stay valid — for tests. *)

(** {1 Snapshots} *)

type hist_snap = {
  h_count : int;  (** total observations, including out-of-range *)
  h_sum : float;
  h_buckets : (float * int) list;
      (** non-empty finite buckets as (upper_bound, cumulative_count),
          ascending; the implicit +Inf bucket equals [h_count] *)
}

type value_snap = Counter_v of float | Gauge_v of float | Hist_v of hist_snap

type series_snap = { s_labels : labels; s_value : value_snap }

type kind = Counter_k | Gauge_k | Histogram_k

type family_snap = {
  f_name : string;
  f_kind : kind;
  f_help : string;
  f_series : series_snap list;  (** sorted by labels *)
}

val snapshot : unit -> family_snap list
(** Consistent copy of the whole registry, families sorted by name. *)

val quantile : hist_snap -> float -> float
(** [quantile h q] (0 < q <= 1): upper bound of the bucket holding the
    ceil(q*count)-th smallest observation — a deterministic
    overestimate within one bucket width (<= 12.5% relative error).
    [nan] on an empty histogram; [0.] when the rank falls among
    observations below the first bucket (v <= 0 or underflow). *)

val counter_value : ?labels:labels -> family_snap list -> string -> float
(** Value of one counter/gauge series in a snapshot; [0.] if absent. *)

val find_series :
  ?labels:labels -> family_snap list -> string -> value_snap option

(** {1 Exposition} *)

val prometheus_string : family_snap list -> string
(** Prometheus text exposition format 0.0.4: [# HELP]/[# TYPE] headers,
    one line per sample, histograms as cumulative [_bucket{le=...}]
    plus [_sum]/[_count]. Deterministic (families and series sorted). *)

val json_string : family_snap list -> string
(** One-line JSON snapshot:
    [{"schema_version":1,"metrics":[...]}], histograms carry count,
    sum, p50/p90/p99 and the non-empty cumulative buckets. *)

(**/**)

(* Bucket geometry, exposed for the boundary unit tests. *)

val bucket_index : float -> int option
(** Bucket holding [v]: [None] for v <= 0, non-finite or underflow;
    values at or above the top edge clamp into the last bucket. Buckets
    cover [lower, upper). *)

val bucket_upper : int -> float
(** Upper bound of bucket [i]. *)
