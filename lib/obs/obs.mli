(** Structured tracing and metrics for the prover pipeline.

    One global sink records hierarchical wall-clock spans, per-span
    counters and global gauges. Every recording entry point checks a
    single ref and allocates nothing while disabled, so instrumentation
    can stay in the hot path permanently. Reports export to
    chrome-trace JSON (about:tracing / Perfetto), a flat summary JSON,
    or a pretty-printed tree. *)

type clock = unit -> float

val enable : ?clock:clock -> unit -> unit
(** Install a fresh sink. [clock] defaults to the monotonic
    {!Mclock.now_s} (wall clocks can step backwards mid-trace); tests
    inject a fake clock for deterministic traces. *)

val disable : unit -> unit

val enabled : unit -> bool
(** One ref read; instrumented hot paths branch on this to keep the
    disabled path allocation-free. *)

module Span : sig
  val with_ : name:string -> (unit -> 'a) -> 'a
  (** [with_ ~name f] runs [f] inside a span nested under the current
      one, recording wall time even if [f] raises. When the sink is
      disabled this is exactly [f ()]. *)
end

val count : string -> int -> unit
(** Add to a named counter on the innermost open span. *)

val countf : string -> float -> unit

val gauge : string -> float -> unit
(** Set a global named gauge (last write wins). *)

val gauge_int : string -> int -> unit

(** {1 Snapshots} *)

type node = {
  name : string;
  start_s : float;  (** seconds since trace start *)
  dur_s : float;
  counters : (string * float) list;
  children : node list;
}

type report = {
  spans : node list;
  root_counters : (string * float) list;
  gauges : (string * float) list;
  total_s : float;
}

val snapshot : unit -> report option
(** Freeze the current trace (open spans are closed at "now"). [None]
    when disabled. *)

val with_enabled : ?clock:clock -> (unit -> 'a) -> 'a * report
(** Run [f] under a fresh sink and return its report; restores the
    previous sink state. *)

(** {1 Aggregation} *)

type agg = {
  agg_name : string;
  agg_calls : int;
  agg_total_s : float;
  agg_counters : (string * float) list;
}

val totals : ?under:string -> report -> agg list
(** Aggregate spans by name (spans nested under a same-named ancestor
    are not double counted). [?under] restricts to subtrees rooted at
    spans with that name. *)

val total_of : ?under:string -> report -> string -> float
(** Aggregated seconds for one span name; 0 if absent. *)

val counter_total : report -> string -> float
(** Sum of a named counter over the whole tree. *)

val gauge_of : report -> string -> float option
(** Last recorded value of a named gauge, if any. *)

(** {1 Parallel-region capture}

    The sink is domain-local, so worker domains record nothing unless
    bridged. A thread pool calls [fork n] on the domain that owns the
    trace, wraps each worker body in [worker_run h i], and calls
    [join h] back on the owning domain: every span, counter and gauge
    the workers recorded is spliced into the innermost open span of the
    main trace, in worker-index order (deterministic regardless of
    scheduling). All three are no-ops while tracing is disabled. *)

module Par : sig
  type handle

  val fork : int -> handle option
  (** [fork n] prepares capture slots for [n] workers; [None] (free)
      when the sink is disabled. *)

  val worker_run : handle option -> int -> (unit -> 'a) -> 'a
  (** [worker_run h i f] runs [f] with a private capture sink installed
      in the calling domain for slot [i]; captures even if [f] raises. *)

  val join : handle option -> unit
  (** Merge all captured slots into the current trace. Call on the
      domain that called [fork], after all workers finished. *)
end

(** {1 Exporters} *)

val chrome_trace : report -> string
(** JSON array of ["ph":"X"] complete events with microsecond
    timestamps. *)

val summary_json : report -> string

val tree_string : report -> string

val write_file : string -> string -> unit

(**/**)

val json_escape : string -> string
val json_float : float -> string
