(* Process-wide metrics registry (see metrics.mli).

   One global mutex guards both the name->family->series maps and every
   value update. OCaml 5 domains share the heap, so worker domains
   update the same cells the main domain reads — the mutex (never held
   across user code) makes read-modify-write increments exact; there is
   no per-domain buffering and thus no merge step. Updates are a few
   dozen ns; the instrumented sites (one per NTT/MSM call, per column
   commit, per verdict) are far coarser than that. *)

type labels = (string * string) list

(* ------------------------------------------------------------------ *)
(* Histogram geometry: log-linear. Each power-of-two octave [2^o,
   2^(o+1)) is split into [sub_buckets] equal-width buckets; octaves
   span 2^min_exp .. 2^max_exp (~1ns .. ~34yr for seconds). Bucket
   boundaries are dyadic rationals, so [frexp]-based assignment is
   exact: a value equal to a boundary lands in the bucket whose lower
   bound it is (buckets are [lower, upper)). Assignment depends only on
   the value, never on insertion order — quantiles are deterministic
   under any domain interleaving. *)

let sub_buckets = 8
let min_exp = -30
let max_exp = 30
let n_buckets = (max_exp - min_exp) * sub_buckets

let bucket_index v =
  if not (Float.is_finite v) || v <= 0.0 then None
  else
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1), so v in [2^(e-1), 2^e) *)
    let o = e - 1 in
    if o < min_exp then None
    else if o >= max_exp then Some (n_buckets - 1)
    else
      let s = int_of_float ((m *. 2.0 -. 1.0) *. float_of_int sub_buckets) in
      let s = if s >= sub_buckets then sub_buckets - 1 else s in
      Some (((o - min_exp) * sub_buckets) + s)

let bucket_upper i =
  let o = min_exp + (i / sub_buckets) and s = i mod sub_buckets in
  Float.ldexp (1.0 +. (float_of_int (s + 1) /. float_of_int sub_buckets)) o

(* ------------------------------------------------------------------ *)
(* Registry *)

type hist = {
  mutable hc_count : int;
  mutable hc_sum : float;
  mutable hc_under : int;  (* v <= 0 or below 2^min_exp *)
  hc_buckets : int array;
}

type cell = Counter_c of float ref | Gauge_c of float ref | Hist_c of hist

type kind = Counter_k | Gauge_k | Histogram_k

type family = {
  fam_kind : kind;
  mutable fam_help : string;
  fam_series : (labels, cell) Hashtbl.t;
}

type handle = cell

let mu = Mutex.create ()
let registry : (string, family) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter_k -> "counter"
  | Gauge_k -> "gauge"
  | Histogram_k -> "histogram"

let new_cell = function
  | Counter_k -> Counter_c (ref 0.0)
  | Gauge_k -> Gauge_c (ref 0.0)
  | Histogram_k ->
      Hist_c
        {
          hc_count = 0;
          hc_sum = 0.0;
          hc_under = 0;
          hc_buckets = Array.make n_buckets 0;
        }

let get_cell kind name labels help =
  let labels = normalize_labels labels in
  locked (fun () ->
      let fam =
        match Hashtbl.find_opt registry name with
        | Some f ->
            if f.fam_kind <> kind then
              invalid_arg
                (Printf.sprintf "Metrics: %s already registered as %s" name
                   (kind_name f.fam_kind));
            if help <> "" && f.fam_help = "" then f.fam_help <- help;
            f
        | None ->
            let f =
              { fam_kind = kind; fam_help = help; fam_series = Hashtbl.create 4 }
            in
            Hashtbl.replace registry name f;
            f
      in
      match Hashtbl.find_opt fam.fam_series labels with
      | Some c -> c
      | None ->
          let c = new_cell kind in
          Hashtbl.replace fam.fam_series labels c;
          c)

let counter ?(labels = []) ?(help = "") name =
  get_cell Counter_k name labels help

let gauge ?(labels = []) ?(help = "") name = get_cell Gauge_k name labels help

let histogram ?(labels = []) ?(help = "") name =
  get_cell Histogram_k name labels help

let add h v =
  if v < 0.0 then invalid_arg "Metrics.add: negative counter increment";
  match h with
  | Counter_c r -> locked (fun () -> r := !r +. v)
  | Gauge_c _ | Hist_c _ -> invalid_arg "Metrics.add: not a counter"

let set h v =
  match h with
  | Gauge_c r -> locked (fun () -> r := v)
  | Counter_c _ | Hist_c _ -> invalid_arg "Metrics.set: not a gauge"

let observe h v =
  match h with
  | Hist_c hc ->
      if Float.is_finite v then
        locked (fun () ->
            hc.hc_count <- hc.hc_count + 1;
            hc.hc_sum <- hc.hc_sum +. v;
            match bucket_index v with
            | Some i -> hc.hc_buckets.(i) <- hc.hc_buckets.(i) + 1
            | None -> hc.hc_under <- hc.hc_under + 1)
  | Counter_c _ | Gauge_c _ -> invalid_arg "Metrics.observe: not a histogram"

let inc ?labels ?help name v = add (counter ?labels ?help name) v
let set_gauge ?labels ?help name v = set (gauge ?labels ?help name) v
let observe_in ?labels ?help name v = observe (histogram ?labels ?help name) v

let time h f =
  let t0 = Mclock.now_s () in
  match f () with
  | v ->
      observe h (Mclock.elapsed_s ~since:t0);
      v
  | exception e ->
      observe h (Mclock.elapsed_s ~since:t0);
      raise e

let phase_help = "Per-phase wall time of the proving/verifying pipeline"

let phase p f =
  time (histogram ~labels:[ ("phase", p) ] ~help:phase_help "zkml_phase_seconds") f

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ fam ->
          Hashtbl.iter
            (fun _ cell ->
              match cell with
              | Counter_c r | Gauge_c r -> r := 0.0
              | Hist_c hc ->
                  hc.hc_count <- 0;
                  hc.hc_sum <- 0.0;
                  hc.hc_under <- 0;
                  Array.fill hc.hc_buckets 0 n_buckets 0)
            fam.fam_series)
        registry)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type hist_snap = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) list;
}

type value_snap = Counter_v of float | Gauge_v of float | Hist_v of hist_snap

type series_snap = { s_labels : labels; s_value : value_snap }

type family_snap = {
  f_name : string;
  f_kind : kind;
  f_help : string;
  f_series : series_snap list;
}

let freeze_cell = function
  | Counter_c r -> Counter_v !r
  | Gauge_c r -> Gauge_v !r
  | Hist_c hc ->
      let acc = ref 0 and out = ref [] in
      Array.iteri
        (fun i n ->
          if n > 0 then begin
            acc := !acc + n;
            out := (bucket_upper i, !acc) :: !out
          end)
        hc.hc_buckets;
      Hist_v
        { h_count = hc.hc_count; h_sum = hc.hc_sum; h_buckets = List.rev !out }

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name fam acc ->
          let series =
            Hashtbl.fold
              (fun labels cell acc ->
                { s_labels = labels; s_value = freeze_cell cell } :: acc)
              fam.fam_series []
            |> List.sort (fun a b -> compare a.s_labels b.s_labels)
          in
          {
            f_name = name;
            f_kind = fam.fam_kind;
            f_help = fam.fam_help;
            f_series = series;
          }
          :: acc)
        registry []
      |> List.sort (fun a b -> String.compare a.f_name b.f_name))

let quantile h q =
  if h.h_count = 0 then nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
      min (max r 1) h.h_count
    in
    let in_buckets =
      match List.rev h.h_buckets with (_, c) :: _ -> c | [] -> 0
    in
    let under = h.h_count - in_buckets in
    if rank <= under then 0.0
    else
      let rec go = function
        | (ub, c) :: rest -> if under + c >= rank then ub else go rest
        | [] -> 0.0 (* unreachable: rank <= under + in_buckets *)
      in
      go h.h_buckets
  end

let find_series ?(labels = []) snap name =
  let labels = normalize_labels labels in
  match List.find_opt (fun f -> String.equal f.f_name name) snap with
  | None -> None
  | Some f ->
      List.find_opt (fun s -> s.s_labels = labels) f.f_series
      |> Option.map (fun s -> s.s_value)

let counter_value ?labels snap name =
  match find_series ?labels snap name with
  | Some (Counter_v v) | Some (Gauge_v v) -> v
  | Some (Hist_v _) | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Exposition *)

let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
           labels)
    ^ "}"

let prometheus_string snap =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  List.iter
    (fun f ->
      if f.f_help <> "" then
        line "# HELP %s %s\n" f.f_name
          (String.map (fun c -> if c = '\n' then ' ' else c) f.f_help);
      line "# TYPE %s %s\n" f.f_name (kind_name f.f_kind);
      List.iter
        (fun s ->
          match s.s_value with
          | Counter_v v | Gauge_v v ->
              line "%s%s %s\n" f.f_name (prom_labels s.s_labels)
                (Obs.json_float v)
          | Hist_v h ->
              List.iter
                (fun (ub, c) ->
                  line "%s_bucket%s %d\n" f.f_name
                    (prom_labels ~extra:("le", Obs.json_float ub) s.s_labels)
                    c)
                h.h_buckets;
              line "%s_bucket%s %d\n" f.f_name
                (prom_labels ~extra:("le", "+Inf") s.s_labels)
                h.h_count;
              line "%s_sum%s %s\n" f.f_name (prom_labels s.s_labels)
                (Obs.json_float h.h_sum);
              line "%s_count%s %d\n" f.f_name (prom_labels s.s_labels) h.h_count)
        f.f_series)
    snap;
  Buffer.contents buf

let json_string snap =
  let buf = Buffer.create 4096 in
  let labels_json labels =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (Obs.json_escape k)
               (Obs.json_escape v))
           labels)
    ^ "}"
  in
  Buffer.add_string buf "{\"schema_version\":1,\"metrics\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"help\":\"%s\",\"series\":["
           (Obs.json_escape f.f_name) (kind_name f.f_kind)
           (Obs.json_escape f.f_help));
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"labels\":%s," (labels_json s.s_labels));
          (match s.s_value with
          | Counter_v v | Gauge_v v ->
              Buffer.add_string buf
                (Printf.sprintf "\"value\":%s" (Obs.json_float v))
          | Hist_v h ->
              Buffer.add_string buf
                (Printf.sprintf "\"count\":%d,\"sum\":%s" h.h_count
                   (Obs.json_float h.h_sum));
              if h.h_count > 0 then
                Buffer.add_string buf
                  (Printf.sprintf ",\"p50\":%s,\"p90\":%s,\"p99\":%s"
                     (Obs.json_float (quantile h 0.50))
                     (Obs.json_float (quantile h 0.90))
                     (Obs.json_float (quantile h 0.99)));
              Buffer.add_string buf ",\"buckets\":[";
              List.iteri
                (fun k (ub, c) ->
                  if k > 0 then Buffer.add_char buf ',';
                  Buffer.add_string buf
                    (Printf.sprintf "[%s,%d]" (Obs.json_float ub) c))
                h.h_buckets;
              Buffer.add_char buf ']');
          Buffer.add_char buf '}')
        f.f_series;
      Buffer.add_string buf "]}")
    snap;
  Buffer.add_string buf "]}";
  Buffer.contents buf
