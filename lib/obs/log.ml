type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type field = S of string | I of int | F of float | B of bool

type dest = Off | Chan of out_channel | Fn of (string -> unit)

(* Destination is resolved from the environment once, on first use; the
   channel (if a file) stays open for the process lifetime and is
   closed at exit. *)
let mu = Mutex.create ()
let env_dest : dest option ref = ref None (* None = not yet resolved *)
let override : (string -> unit) option ref = ref None

let resolve_env_dest () =
  match Sys.getenv_opt "ZKML_LOG" with
  | None | Some "" -> Off
  | Some "stderr" | Some "-" -> Chan stderr
  | Some path -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc ->
          at_exit (fun () -> try close_out oc with Sys_error _ -> ());
          Chan oc
      | exception Sys_error msg ->
          Printf.eprintf "zkml: ZKML_LOG: %s (logging disabled)\n%!" msg;
          Off)

let dest () =
  match !override with
  | Some fn -> Fn fn
  | None -> (
      match !env_dest with
      | Some d -> d
      | None ->
          let d = resolve_env_dest () in
          env_dest := Some d;
          d)

let min_level =
  ref
    (match Sys.getenv_opt "ZKML_LOG_LEVEL" with
    | None -> Info
    | Some s -> (
        match level_of_string s with
        | Some l -> l
        | None -> Info))

let set_level l = min_level := l

let set_sink fn = override := fn

let enabled l =
  level_rank l >= level_rank !min_level
  &&
  match !override with
  | Some _ -> true
  | None -> ( match !env_dest with Some Off -> false | _ -> true)

let field_json = function
  | S s -> Printf.sprintf "\"%s\"" (Obs.json_escape s)
  | I i -> string_of_int i
  | F v -> if Float.is_finite v then Obs.json_float v else "null"
  | B b -> if b then "true" else "false"

let render ~level name fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\""
       (Unix.gettimeofday ()) (level_name level) (Obs.json_escape name));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":%s" (Obs.json_escape k) (field_json v)))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let event ?(level = Info) name fields =
  if level_rank level >= level_rank !min_level then
    match dest () with
    | Off -> ()
    | Chan oc ->
        let line = render ~level name fields in
        Mutex.lock mu;
        output_string oc line;
        output_char oc '\n';
        (try flush oc with Sys_error _ -> ());
        Mutex.unlock mu
    | Fn fn ->
        let line = render ~level name fields in
        Mutex.lock mu;
        (match fn line with
        | () -> Mutex.unlock mu
        | exception e ->
            Mutex.unlock mu;
            raise e)
