(* Seeded corpus-mutation fuzzing (see fuzz.mli). Mutators are written
   so that the returned mutant always differs from the input string;
   [run] additionally treats a mutant that lands back inside the corpus
   as legitimate to accept (e.g. two bit flips cancelling out across
   iterations can never happen here, but a splice can be an identity on
   repetitive inputs). *)

type verdict = Accepted | Valid | Rejected | Malformed of string

type report = {
  iters : int;
  valid : int;
  rejected : int;
  malformed : int;
  unchanged : int;
  accepted_mutants : (int * string) list;
  escaped : (int * string * string) list;
}

let clean r = r.accepted_mutants = [] && r.escaped = []

let report_lines ~label r =
  let base =
    Printf.sprintf
      "%s: %d mutants: %d malformed, %d rejected, %d valid, %d unchanged, %d \
       ACCEPTED, %d ESCAPED"
      label r.iters r.malformed r.rejected r.valid r.unchanged
      (List.length r.accepted_mutants)
      (List.length r.escaped)
  in
  base
  :: List.map
       (fun (i, d) -> Printf.sprintf "  ACCEPTED mutant @%d: %s" i d)
       (List.rev r.accepted_mutants)
  @ List.map
      (fun (i, d, e) -> Printf.sprintf "  ESCAPED exception @%d (%s): %s" i d e)
      (List.rev r.escaped)

(* ------------------------------------------------------------------ *)
(* Binary mutators. Each takes the input and returns mutant + label, or
   None when it does not apply (e.g. too short). *)

let truncate rng s =
  let n = String.length s in
  if n = 0 then None
  else
    let cut = Rng.int rng n in
    Some (String.sub s 0 cut, Printf.sprintf "truncate to %d/%d bytes" cut n)

let bit_flip rng s =
  let n = String.length s in
  if n = 0 then None
  else begin
    let b = Bytes.of_string s in
    let flips = 1 + Rng.int rng 8 in
    let descr = Buffer.create 32 in
    Buffer.add_string descr "bit-flip";
    for _ = 1 to flips do
      let i = Rng.int rng n in
      let bit = Rng.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      Buffer.add_string descr (Printf.sprintf " %d.%d" i bit)
    done;
    let m = Bytes.to_string b in
    if m = s then None (* an even number of flips hit one spot *)
    else Some (m, Buffer.contents descr)
  end

let splice rng s =
  let n = String.length s in
  if n < 4 then None
  else begin
    let len = 1 + Rng.int rng (min 64 (n / 2)) in
    let src = Rng.int rng (n - len + 1) in
    let dst = Rng.int rng (n - len + 1) in
    let b = Bytes.of_string s in
    Bytes.blit_string s src b dst len;
    let m = Bytes.to_string b in
    if m = s then None
    else Some (m, Printf.sprintf "splice %d bytes %d->%d" len src dst)
  end

(* Overwrite a run with 0xFF: produces non-canonical field encodings and
   maximal length/count fields. *)
let overwrite_ff rng s =
  let n = String.length s in
  if n = 0 then None
  else begin
    let len = min n (1 + Rng.int rng 8) in
    let off = Rng.int rng (n - len + 1) in
    let b = Bytes.of_string s in
    Bytes.fill b off len '\xff';
    let m = Bytes.to_string b in
    if m = s then None
    else Some (m, Printf.sprintf "0xff run %d+%d" off len)
  end

let append_garbage rng s =
  let len = 1 + Rng.int rng 16 in
  let extra = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
  Some (s ^ extra, Printf.sprintf "append %d bytes" len)

(* ------------------------------------------------------------------ *)
(* Line-oriented mutators for textual formats. *)

let split_lines s = String.split_on_char '\n' s
let join_lines ls = String.concat "\n" ls

let dup_line rng s =
  match split_lines s with
  | [] | [ _ ] -> None
  | lines ->
      let n = List.length lines in
      let i = Rng.int rng n in
      let out =
        List.concat (List.mapi (fun j l -> if j = i then [ l; l ] else [ l ]) lines)
      in
      let m = join_lines out in
      if m = s then None else Some (m, Printf.sprintf "duplicate line %d" i)

let swap_lines rng s =
  match split_lines s with
  | [] | [ _ ] -> None
  | lines ->
      let n = List.length lines in
      let i = Rng.int rng n and j = Rng.int rng n in
      let arr = Array.of_list lines in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t;
      let m = join_lines (Array.to_list arr) in
      if m = s then None else Some (m, Printf.sprintf "swap lines %d,%d" i j)

let drop_line rng s =
  match split_lines s with
  | [] | [ _ ] -> None
  | lines ->
      let n = List.length lines in
      let i = Rng.int rng n in
      let m = join_lines (List.filteri (fun j _ -> j <> i) lines) in
      if m = s then None else Some (m, Printf.sprintf "drop line %d" i)

(* Replace one numeric token with a value that overflows [int_of_string]
   or lands far outside any sane range. *)
let big_token rng s =
  let is_num_char c = (c >= '0' && c <= '9') || c = '-' in
  let n = String.length s in
  (* collect starts of digit runs *)
  let starts = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_num_char s.[!i] then begin
      starts := !i :: !starts;
      while !i < n && is_num_char s.[!i] do
        incr i
      done
    end
    else incr i
  done;
  match !starts with
  | [] -> None
  | starts ->
      let starts = Array.of_list starts in
      let st = starts.(Rng.int rng (Array.length starts)) in
      let en = ref st in
      while !en < n && is_num_char s.[!en] do
        incr en
      done;
      let replacement =
        match Rng.int rng 3 with
        | 0 -> "99999999999999999999999999"
        | 1 -> "-99999999999999999999999999"
        | _ -> string_of_int max_int
      in
      let m = String.sub s 0 st ^ replacement ^ String.sub s !en (n - !en) in
      if m = s then None
      else Some (m, Printf.sprintf "big token @%d" st)

(* ------------------------------------------------------------------ *)

let pick_mutation rng s mutators =
  (* retry until a mutator applies; [append_garbage] always does, so the
     loop terminates *)
  let k = Array.length mutators in
  let rec go attempts =
    if attempts > 32 then Option.get (append_garbage rng s)
    else
      match mutators.(Rng.int rng k) rng s with
      | Some res -> res
      | None -> go (attempts + 1)
  in
  go 0

let binary_mutators =
  [| truncate; bit_flip; splice; overwrite_ff; append_garbage |]

let text_mutators =
  Array.append binary_mutators
    [| dup_line; swap_lines; drop_line; big_token |]

let mutate rng s = pick_mutation rng s binary_mutators
let mutate_text rng s = pick_mutation rng s text_mutators

(* Per-outcome tallies feed the always-on metrics registry so a fuzz
   run's outcome mix shows up in the same exposition as everything
   else. *)
let outcome_metric outcome =
  Zkml_obs.Metrics.inc
    ~labels:[ ("outcome", outcome) ]
    ~help:"Fuzz-harness mutant classifications" "zkml_fuzz_outcomes_total" 1.0

let run ?(text = false) ~rng ~iters ~corpus ~classify () =
  if corpus = [] then invalid_arg "Fuzz.run: empty corpus";
  let corpus = Array.of_list corpus in
  let mutate = if text then mutate_text else mutate in
  let valid = ref 0
  and rejected = ref 0
  and malformed = ref 0
  and unchanged = ref 0
  and accepted = ref []
  and escaped = ref [] in
  for it = 1 to iters do
    let base = corpus.(Rng.int rng (Array.length corpus)) in
    let mutant, descr = mutate rng base in
    let in_corpus = Array.exists (fun c -> c = mutant) corpus in
    match classify mutant with
    | Accepted ->
        if in_corpus then begin
          incr unchanged;
          outcome_metric "unchanged"
        end
        else begin
          accepted := (it, descr) :: !accepted;
          outcome_metric "accepted"
        end
    | Valid ->
        incr valid;
        outcome_metric "valid"
    | Rejected ->
        incr rejected;
        outcome_metric "rejected"
    | Malformed _ ->
        incr malformed;
        outcome_metric "malformed"
    | exception e ->
        escaped := (it, descr, Printexc.to_string e) :: !escaped;
        outcome_metric "escaped"
  done;
  {
    iters;
    valid = !valid;
    rejected = !rejected;
    malformed = !malformed;
    unchanged = !unchanged;
    accepted_mutants = !accepted;
    escaped = !escaped;
  }
