(** A fixed-size pool of OCaml 5 domains for data-parallel loops.

    Sized by the [ZKML_JOBS] environment variable (default 1) or
    {!set_jobs}; with [jobs () = 1] every entry point degrades to the
    plain sequential loop with no domain ever spawned. The calling
    domain always participates, so [jobs] is the true parallel width.

    Determinism: chunk boundaries depend only on the iteration count
    and chunk size — never on scheduling — and all combinators write to
    disjoint indices, so any computation whose body is pure per index
    (or writes only its own index) produces bit-identical results at
    every job count. Nested parallel calls detect the enclosing region
    and run sequentially instead of deadlocking. *)

val jobs : unit -> int
(** Current parallel width (>= 1). First call reads [ZKML_JOBS]. *)

val set_jobs : int -> unit
(** Resize the pool (values < 1 clamp to 1). Existing workers are
    joined; the next parallel call respawns at the new width. Must not
    be called from inside a parallel region. *)

val shutdown : unit -> unit
(** Join all worker domains. Also installed via [at_exit]; safe to call
    repeatedly. *)

val parallel_for : ?chunk:int -> ?seq_below:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f i] for [0 <= i < n], distributing chunks
    of iterations over the pool. [f] must be safe to call concurrently
    for distinct [i]. [chunk] fixes the chunk size (default: [n/(4*jobs)]
    rounded up); iterations within a chunk run in order. Loops with
    [n < seq_below] (default 2048) run sequentially to skip the region
    overhead. The first exception raised by any [f i] is re-raised by
    the caller after all workers drain. *)

val parallel_for_ranges :
  ?chunk:int -> ?seq_below:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for_ranges n body] like {!parallel_for} but hands each
    participant whole ranges: [body lo hi] covers [lo <= i < hi]. The
    ranges partition [0..n-1] exactly. Use when per-iteration closure
    dispatch would dominate (tight field-arithmetic loops). *)

val parallel_map_array :
  ?chunk:int -> ?seq_below:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array f a] is [Array.map f a] with the applications
    distributed over the pool ([f] applied exactly once per element;
    element order preserved). [f a.(0)] runs first on the caller.
    Elements are assumed expensive: defaults are [chunk = 1] and
    [seq_below = 2]. *)

val parallel_reduce :
  ?chunk:int ->
  ?seq_below:int ->
  int ->
  init:'a ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** [parallel_reduce n ~init ~map ~combine] computes
    [combine (... (combine init (map 0 c)) ...) (map lo n)] over fixed
    chunks of size [chunk] (default 1024, independent of job count).
    Partial results are combined in ascending chunk order, so the result
    is identical at every job count whenever [combine] is associative
    (it need not be commutative). *)
