(** Interval timing used by the cost-model calibration and benches. *)

val default_clock : unit -> float
(** Monotonic seconds ({!Zkml_obs.Mclock.now_s}); immune to wall-clock
    steps. The epoch is arbitrary — use differences only. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result and the elapsed seconds. *)

val time_counted : ?clock:(unit -> float) -> (unit -> 'a) -> 'a * float
(** Like {!time}, but the monotonic clock source is injectable so tests
    can measure without wall-clock dependence. *)

val time_s : (unit -> 'a) -> float
(** Elapsed seconds only. *)

type spread = { median : float; min_s : float; max_s : float }
(** Median plus the min/max extremes of repeated measurements, so bench
    tables can report spread alongside the central value. *)

val median_of : ?clock:(unit -> float) -> int -> (unit -> 'a) -> spread
(** [median_of n f] runs [f] [n] times and returns the median, minimum
    and maximum elapsed seconds; used to stabilise microbenchmark
    readings. *)
