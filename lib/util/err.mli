(** Structured errors for every boundary that consumes bytes we did not
    produce: proof byte strings, proof files, model files. A ZK
    verifier's whole job is judging adversarial input, so malformed
    bytes must surface as a typed, locatable [t] through a [result] —
    never as an escaping [Invalid_argument] or [Failure].

    Conventions used across the codebase:
    - Untrusted-input parsers return [('a, Err.t) result] and are total.
    - Their exception-raising variants keep the historical behaviour
      under an [_exn] suffix (raising {!Error}) for internal callers
      that parse bytes the process itself produced. *)

type code =
  | Truncated  (** input ended before a required read *)
  | Trailing_data  (** well-formed prefix followed by extra bytes *)
  | Invalid_encoding
      (** a scalar/point/hex blob that fails canonical decoding *)
  | Bad_header  (** magic line / version mismatch *)
  | Bad_field  (** a named field holds a malformed value *)
  | Missing_field  (** a required field or attribute is absent *)
  | Duplicate_field  (** a field that must be unique appears twice *)
  | Unknown_variant  (** unrecognised op / enum / backend tag *)
  | Out_of_range  (** numerically valid but outside sane bounds *)
  | Io_error  (** the underlying file could not be read *)

val code_name : code -> string
(** Stable lower-snake name of the code, e.g. ["truncated"]. Used in
    diagnostics and asserted by the fuzz regression suite. *)

(** Where in the input the error was detected. Binary parsers report
    byte offsets; line-oriented parsers report 1-based line numbers. *)
type offset = Byte of int | Line of int

type t = {
  code : code;
  msg : string;  (** human-oriented one-liner, no newlines *)
  offset : offset option;
  context : string list;  (** outermost-first breadcrumb, e.g. ["proof"] *)
}

val make : ?offset:offset -> ?context:string list -> code -> string -> t

val with_context : string -> t -> t
(** Push an outer breadcrumb frame onto [context]. *)

val to_string : t -> string
(** One line: [code at <offset> in <context>: msg]. *)

val pp : Format.formatter -> t -> unit

exception Error of t
(** The only exception the [_exn] wrapper variants raise. *)

val error_to_string_opt : exn -> string option
(** [Some (to_string e)] for {!Error}, [None] otherwise. *)

(** {1 Result combinators} *)

val fail : ?offset:offset -> ?context:string list -> code -> string -> ('a, t) result

val failf :
  ?offset:offset ->
  ?context:string list ->
  code ->
  ('b, unit, string, ('a, t) result) format4 ->
  'b

val get_exn : ('a, t) result -> 'a
(** [Ok x -> x]; [Error e -> raise (Error e)]. *)

val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result

val map_list : ('a -> ('b, t) result) -> 'a list -> ('b list, t) result
(** Left-to-right; stops at the first error. *)

val iter_list : ('a -> (unit, t) result) -> 'a list -> (unit, t) result

val in_context : string -> ('a, t) result -> ('a, t) result
(** Tag the error (if any) with an outer breadcrumb. *)

val guard : ?offset:offset -> code -> (unit -> 'a) -> ('a, t) result
(** Run a legacy validator that signals failure by raising. Catches
    [Invalid_argument], [Failure], [Not_found], [Division_by_zero] and
    {!Error} and wraps them as [code] (an {!Error} keeps its own
    payload); genuinely fatal exceptions (Out_of_memory, Stack_overflow,
    assert failures) still propagate. *)

(** {1 Typed text-field parsers}

    Replacements for bare [int_of_string] & co. with a field name in the
    diagnostic instead of a context-free [Failure "int_of_string"]. *)

val int_field : ?offset:offset -> what:string -> string -> (int, t) result

val bounded_int_field :
  ?offset:offset -> what:string -> min:int -> max:int -> string -> (int, t) result
(** [int_field] plus an inclusive range check ([Out_of_range]). *)

val float_field : ?offset:offset -> what:string -> string -> (float, t) result

val finite_float_field :
  ?offset:offset -> what:string -> string -> (float, t) result
(** [float_field] that additionally rejects nan/inf ([Out_of_range]) —
    for weight data, where a non-finite value would poison the
    fixed-point pipeline downstream. *)

val bool_field : ?offset:offset -> what:string -> string -> (bool, t) result

(** {1 Length-checked binary consumption} *)

module Reader : sig
  type error = t

  type t
  (** A cursor over an immutable byte string. Every read is
      length-checked: consuming past the end yields [Truncated] at the
      current byte offset instead of an [Invalid_argument] from
      [String.sub]. *)

  val of_string : string -> t
  val pos : t -> int
  val length : t -> int
  val remaining : t -> int

  val take : t -> what:string -> int -> (string, error) result
  (** Consume exactly [n] bytes. *)

  val decode : t -> what:string -> int -> (string -> 'a) -> ('a, error) result
  (** [decode r ~what n f] consumes [n] bytes and applies [f] (which may
      signal a bad encoding by raising [Invalid_argument] or [Failure],
      mapped to [Invalid_encoding] at the field's start offset). *)

  val expect_end : t -> what:string -> (unit, error) result
  (** [Trailing_data] unless the cursor is at the end of the input. *)
end
