type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let max_depth = 128

(* Recursive descent over a string with an explicit cursor. All
   failures go through [Err.fail] with the current byte offset. *)

type state = { src : string; mutable pos : int }

let fail st code msg = Err.fail ~offset:(Err.Byte st.pos) code msg
let ( let* ) = Err.( let* )

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c ->
      st.pos <- st.pos + 1;
      Ok ()
  | Some x ->
      fail st Err.Bad_field (Printf.sprintf "expected '%c', found '%c'" c x)
  | None -> fail st Err.Truncated (Printf.sprintf "expected '%c' at end" c)

let lit st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    Ok value
  end
  else fail st Err.Bad_field (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string st =
  let* () = expect st '"' in
  let buf = Buffer.create 16 in
  let n = String.length st.src in
  let rec go () =
    if st.pos >= n then fail st Err.Truncated "unterminated string"
    else
      match st.src.[st.pos] with
      | '"' ->
          st.pos <- st.pos + 1;
          Ok (Buffer.contents buf)
      | '\\' ->
          if st.pos + 1 >= n then fail st Err.Truncated "unterminated escape"
          else begin
            let c = st.src.[st.pos + 1] in
            st.pos <- st.pos + 2;
            match c with
            | '"' | '\\' | '/' ->
                Buffer.add_char buf c;
                go ()
            | 'b' ->
                Buffer.add_char buf '\b';
                go ()
            | 'f' ->
                Buffer.add_char buf '\012';
                go ()
            | 'n' ->
                Buffer.add_char buf '\n';
                go ()
            | 'r' ->
                Buffer.add_char buf '\r';
                go ()
            | 't' ->
                Buffer.add_char buf '\t';
                go ()
            | 'u' ->
                if st.pos + 4 > n then
                  fail st Err.Truncated "unterminated \\u escape"
                else begin
                  let hex = String.sub st.src st.pos 4 in
                  match int_of_string_opt ("0x" ^ hex) with
                  | None ->
                      fail st Err.Invalid_encoding
                        (Printf.sprintf "bad \\u escape %S" hex)
                  | Some cp ->
                      st.pos <- st.pos + 4;
                      (* encode the code point as UTF-8; surrogate
                         pairs are not recombined (kept as two
                         3-byte sequences) — sufficient for the
                         ASCII-only JSON this repo writes *)
                      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                      else if cp < 0x800 then begin
                        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                      end
                      else begin
                        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                      end;
                      go ()
                end
            | c ->
                st.pos <- st.pos - 1;
                fail st Err.Invalid_encoding
                  (Printf.sprintf "bad escape '\\%c'" c)
          end
      | c when Char.code c < 0x20 ->
          fail st Err.Invalid_encoding "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          st.pos <- st.pos + 1;
          go ()
  in
  go ()

let parse_number st =
  let n = String.length st.src in
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.src start (st.pos - start) in
  (* [float_of_string] is laxer than the JSON grammar ("01", ".5",
     "1.", "+1" all convert), so validate the token shape first:
     -? int frac? exp?  with int = 0 | [1-9][0-9]* *)
  let grammar_ok =
    let n = String.length tok in
    let i = if n > 0 && tok.[0] = '-' then 1 else 0 in
    let digits j =
      let k = ref j in
      while !k < n && tok.[!k] >= '0' && tok.[!k] <= '9' do
        incr k
      done;
      !k
    in
    let j = digits i in
    if j = i || (tok.[i] = '0' && j > i + 1) then false
    else begin
      let j =
        if j < n && tok.[j] = '.' then
          let k = digits (j + 1) in
          if k = j + 1 then -1 else k
        else j
      in
      if j < 0 then false
      else if j = n then true
      else if tok.[j] <> 'e' && tok.[j] <> 'E' then false
      else begin
        let j = j + 1 in
        let j = if j < n && (tok.[j] = '+' || tok.[j] = '-') then j + 1 else j in
        let k = digits j in
        k > j && k = n
      end
    end
  in
  match float_of_string_opt tok with
  | Some v when grammar_ok && Float.is_finite v -> Ok (Num v)
  | _ ->
      st.pos <- start;
      fail st Err.Bad_field (Printf.sprintf "invalid number %S" tok)

let rec parse_value st depth =
  if depth > max_depth then fail st Err.Out_of_range "nesting too deep"
  else begin
    skip_ws st;
    match peek st with
    | None -> fail st Err.Truncated "expected a value"
    | Some '"' ->
        let* s = parse_string st in
        Ok (Str s)
    | Some 't' -> lit st "true" (Bool true)
    | Some 'f' -> lit st "false" (Bool false)
    | Some 'n' -> lit st "null" Null
    | Some '[' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        if peek st = Some ']' then begin
          st.pos <- st.pos + 1;
          Ok (Arr [])
        end
        else
          let rec items acc =
            let* v = parse_value st (depth + 1) in
            skip_ws st;
            match peek st with
            | Some ',' ->
                st.pos <- st.pos + 1;
                items (v :: acc)
            | Some ']' ->
                st.pos <- st.pos + 1;
                Ok (Arr (List.rev (v :: acc)))
            | Some c ->
                fail st Err.Bad_field
                  (Printf.sprintf "expected ',' or ']', found '%c'" c)
            | None -> fail st Err.Truncated "unterminated array"
          in
          items []
    | Some '{' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        if peek st = Some '}' then begin
          st.pos <- st.pos + 1;
          Ok (Obj [])
        end
        else
          let rec fields acc =
            skip_ws st;
            let* k = parse_string st in
            skip_ws st;
            let* () = expect st ':' in
            let* v = parse_value st (depth + 1) in
            skip_ws st;
            match peek st with
            | Some ',' ->
                st.pos <- st.pos + 1;
                fields ((k, v) :: acc)
            | Some '}' ->
                st.pos <- st.pos + 1;
                Ok (Obj (List.rev ((k, v) :: acc)))
            | Some c ->
                fail st Err.Bad_field
                  (Printf.sprintf "expected ',' or '}', found '%c'" c)
            | None -> fail st Err.Truncated "unterminated object"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number st
    | Some c ->
        fail st Err.Bad_field (Printf.sprintf "unexpected character '%c'" c)
  end

let of_string src =
  let st = { src; pos = 0 } in
  Err.in_context "json"
    (let* v = parse_value st 0 in
     skip_ws st;
     if st.pos = String.length src then Ok v
     else fail st Err.Trailing_data "trailing data after value")

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v
    when Float.is_integer v
         && v >= Int.to_float min_int
         && v <= Int.to_float max_int ->
      Some (int_of_float v)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None

let bind_opt o f = match o with Some x -> f x | None -> None
let mem_float key j = bind_opt (member key j) to_float
let mem_string key j = bind_opt (member key j) to_string
let mem_list key j = bind_opt (member key j) to_list
