(** Deterministic malformed-input fuzzing of parser/verifier boundaries.

    The engine mutates a corpus of known-good inputs (truncation, bit
    flips, splices, field-overflow byte runs, appended garbage, and —
    for line-oriented formats — duplicated/reordered/dropped lines and
    numeric-token blowups) and checks that a classifier is total over
    the mutants: every mutant must classify as rejected or malformed; no
    exception may escape and no genuinely mutated input may be accepted.

    All randomness flows through {!Rng}, so a (seed, iters, corpus)
    triple replays exactly — CI failures pin down to one reproducible
    mutant. Used by [test/fuzz_inputs.ml] and the [zkml fuzz]
    subcommand. *)

type verdict =
  | Accepted
      (** taken as genuine where it must not be: a mutated proof the
          verifier accepts, or a parse that breaks a format invariant *)
  | Valid
      (** parsed to a well-formed value and every invariant holds — the
          legitimate outcome for corpora with no soundness claim (a
          model file with one weight float changed is simply a
          different valid model) *)
  | Rejected  (** parsed fine, judged false — the verifier said no *)
  | Malformed of string  (** rejected at parse time with a diagnostic *)

type report = {
  iters : int;
  valid : int;
  rejected : int;
  malformed : int;
  unchanged : int;
      (** mutants that round-tripped back into the corpus (acceptance is
          then legitimate) *)
  accepted_mutants : (int * string) list;
      (** (iteration, mutation description) of every true mutant the
          classifier accepted — must be empty *)
  escaped : (int * string * string) list;
      (** (iteration, mutation description, exception) of every escaped
          exception — must be empty *)
}

val clean : report -> bool
(** No accepted mutants and no escaped exceptions. *)

val report_lines : label:string -> report -> string list
(** Human-oriented summary, one finding per line. *)

val mutate : Rng.t -> string -> string * string
(** One random binary mutation; returns (mutant, description). The
    mutant always differs from the input. *)

val mutate_text : Rng.t -> string -> string * string
(** Like {!mutate} but mixes in line-oriented mutations (duplicate /
    swap / drop a line, replace a numeric token with an overflowing
    one). *)

val run :
  ?text:bool ->
  rng:Rng.t ->
  iters:int ->
  corpus:string list ->
  classify:(string -> verdict) ->
  unit ->
  report
(** Fuzz [corpus] for [iters] mutants. [classify] is called inside a
    handler that records any escaping exception; [text] (default false)
    selects {!mutate_text}. *)
