(* Structured errors + length-checked binary reader for the
   untrusted-input surface (see err.mli and DESIGN.md "Untrusted
   inputs"). *)

type code =
  | Truncated
  | Trailing_data
  | Invalid_encoding
  | Bad_header
  | Bad_field
  | Missing_field
  | Duplicate_field
  | Unknown_variant
  | Out_of_range
  | Io_error

let code_name = function
  | Truncated -> "truncated"
  | Trailing_data -> "trailing_data"
  | Invalid_encoding -> "invalid_encoding"
  | Bad_header -> "bad_header"
  | Bad_field -> "bad_field"
  | Missing_field -> "missing_field"
  | Duplicate_field -> "duplicate_field"
  | Unknown_variant -> "unknown_variant"
  | Out_of_range -> "out_of_range"
  | Io_error -> "io_error"

type offset = Byte of int | Line of int

type t = {
  code : code;
  msg : string;
  offset : offset option;
  context : string list;
}

let make ?offset ?(context = []) code msg = { code; msg; offset; context }

let with_context frame e = { e with context = frame :: e.context }

let offset_string = function
  | Byte b -> Printf.sprintf "byte %d" b
  | Line l -> Printf.sprintf "line %d" l

let to_string e =
  let b = Buffer.create 64 in
  Buffer.add_string b (code_name e.code);
  (match e.offset with
  | Some o ->
      Buffer.add_string b " at ";
      Buffer.add_string b (offset_string o)
  | None -> ());
  if e.context <> [] then begin
    Buffer.add_string b " in ";
    Buffer.add_string b (String.concat "/" e.context)
  end;
  Buffer.add_string b ": ";
  Buffer.add_string b e.msg;
  Buffer.contents b

let pp fmt e = Format.pp_print_string fmt (to_string e)

exception Error of t

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Zkml_util.Err.Error: " ^ to_string e)
    | _ -> None)

let error_to_string_opt = function
  | Error e -> Some (to_string e)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Result combinators *)

let fail ?offset ?context code msg = Result.error (make ?offset ?context code msg)

let failf ?offset ?context code fmt =
  Printf.ksprintf (fun msg -> fail ?offset ?context code msg) fmt

let get_exn = function Ok x -> x | Error e -> raise (Error e)

let ( let* ) = Result.bind

let map_list f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] xs

let iter_list f xs =
  let rec go = function
    | [] -> Ok ()
    | x :: rest -> ( match f x with Ok () -> go rest | Error _ as e -> e)
  in
  go xs

let in_context frame = function
  | Ok _ as ok -> ok
  | Error e -> Error (with_context frame e)

let guard ?offset code f =
  match f () with
  | x -> Ok x
  | exception Error e -> Error e
  | exception Invalid_argument m -> fail ?offset code m
  | exception Failure m -> fail ?offset code m
  | exception Not_found -> fail ?offset code "not found"
  | exception Division_by_zero -> fail ?offset code "division by zero"

(* ------------------------------------------------------------------ *)
(* Typed text-field parsers *)

(* Only the canonical decimal rendering is admitted: the permissive
   [int_of_string] grammar ("007", "-0", "+1", "0x10", "1_000") lets an
   attacker re-encode a value without changing its meaning, so equal
   value lists would no longer imply equal bytes (the fuzzer found a
   splice that collapsed a run of ",0,0,..." instance values into one
   long "000...0" token the old parser read as a single 0). *)
let canonical_decimal s =
  let n = String.length s in
  let digits_from start =
    n > start
    &&
    let ok = ref true in
    for i = start to n - 1 do
      match s.[i] with '0' .. '9' -> () | _ -> ok := false
    done;
    !ok && (s.[start] <> '0' || n = start + 1)
  in
  if n > 1 && s.[0] = '-' then digits_from 1 && s <> "-0" else digits_from 0

let int_field ?offset ~what s =
  if not (canonical_decimal s) then
    failf ?offset Bad_field "%s: not a canonical decimal integer: %S" what s
  else
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> failf ?offset Bad_field "%s: integer overflows: %S" what s

let bounded_int_field ?offset ~what ~min ~max s =
  let* v = int_field ?offset ~what s in
  if v < min || v > max then
    failf ?offset Out_of_range "%s: %d outside [%d, %d]" what v min max
  else Ok v

let float_field ?offset ~what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> failf ?offset Bad_field "%s: not a float: %S" what s

let finite_float_field ?offset ~what s =
  let* v = float_field ?offset ~what s in
  if Float.is_finite v then Ok v
  else failf ?offset Out_of_range "%s: non-finite value %s" what s

let bool_field ?offset ~what s =
  match bool_of_string_opt s with
  | Some v -> Ok v
  | None -> failf ?offset Bad_field "%s: not a bool: %S" what s

(* ------------------------------------------------------------------ *)
(* Length-checked binary reader *)

module Reader = struct
  type error = t

  type nonrec t = { src : string; mutable cursor : int }

  let of_string s = { src = s; cursor = 0 }
  let pos r = r.cursor
  let length r = String.length r.src
  let remaining r = String.length r.src - r.cursor

  let take r ~what n =
    if n < 0 then failf Out_of_range "%s: negative read of %d bytes" what n
    else if r.cursor + n > String.length r.src then
      failf ~offset:(Byte r.cursor) Truncated
        "%s: need %d bytes, %d remain" what n (remaining r)
    else begin
      let s = String.sub r.src r.cursor n in
      r.cursor <- r.cursor + n;
      Ok s
    end

  let decode r ~what n f =
    let start = r.cursor in
    let* s = take r ~what n in
    match f s with
    | v -> Ok v
    | exception Error e -> Error e
    | exception Invalid_argument m ->
        fail ~offset:(Byte start) Invalid_encoding
          (Printf.sprintf "%s: %s" what m)
    | exception Failure m ->
        fail ~offset:(Byte start) Invalid_encoding
          (Printf.sprintf "%s: %s" what m)

  let expect_end r ~what =
    if r.cursor = String.length r.src then Ok ()
    else
      failf ~offset:(Byte r.cursor) Trailing_data
        "%s: %d trailing bytes after a complete parse" what (remaining r)
end
