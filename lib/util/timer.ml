let default_clock = Zkml_obs.Mclock.now_s

let time f =
  let t0 = default_clock () in
  let result = f () in
  let t1 = default_clock () in
  (result, t1 -. t0)

let time_counted ?(clock = default_clock) f =
  let t0 = clock () in
  let result = f () in
  let t1 = clock () in
  (result, t1 -. t0)

let time_s f = snd (time f)

type spread = { median : float; min_s : float; max_s : float }

let median_of ?clock n f =
  assert (n > 0);
  let samples =
    Array.init n (fun _ -> snd (time_counted ?clock (fun () -> f ())))
  in
  Array.sort compare samples;
  {
    median = samples.(n / 2);
    min_s = samples.(0);
    max_s = samples.(n - 1);
  }
