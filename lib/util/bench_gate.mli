(** Bench-regression gate: compare a current bench JSON against a
    committed baseline.

    Understands the JSON shapes the bench harness writes:
    - [{"bench":"par", "runs":[{"jobs":J,"prove_s":T}]}]
      (BENCH_PR2.json) — keys [par/jobs=J/prove_s];
    - [{"bench":"quotient","models":[{"model":M,"interp_s":..,
      "compiled_s":..}]}] (BENCH_PR5.json) — keys
      [quotient/M/interp_s] and [quotient/M/compiled_s];
    - [{"bench":"kernels","field_ops":[..],"msm":[..],"ntt":[..]}]
      (BENCH_PR7.json) — keys [kernels/field_ops/F.OP/total_s],
      [kernels/msm/n=N/jacobian_s|affine_glv_s] and
      [kernels/ntt/F.k=K/reference_s|blocked_s];
    - [{"bench":"serve","kinds":[{"kind":K,"p50_s":..,"p90_s":..,
      "p99_s":..}]}] (BENCH_PR9.json, the serving-daemon load
      generator) — keys [serve/K/p50_s|p90_s|p99_s]; [proofs_per_s]
      and [wall_s] are skipped (throughput / request-count scaled);
    - [{"bench":"segments","models":[{"model":M,"prove_mono_s":..,
      "prove_seg_s":..,"verify_seg_s":..}]}] (BENCH_PR10.json,
      split-and-aggregate proving) — keys [segments/M/prove_mono_s],
      [segments/M/prove_seg_s], [segments/M/verify_seg_s]; the
      [mono_rows]/[peak_rows] fields are sizes and are skipped;
    - [{"results":[{"section":S,"model":M,"prove_s":..,"verify_s":..,
      "spans":{..}}]}] ([--json] output) — keys [S/M/prove_s],
      [S/M/verify_s], [S/M/span.K].

    Only time-like metrics are extracted (throughputs and speedups are
    skipped: a higher rows/s is not a regression). Duplicate keys
    collapse to their median, so repeated runs of the same subject
    stabilise the comparison. A key regresses when
    [current > baseline *. threshold]. Missing/extra keys are reported
    but never regressions — baselines outlive bench-section reshapes. *)

type series = (string * float) list
(** Extracted (key, seconds) samples; keys as documented above. *)

val series_of_json : Json.t -> series
(** All recognised samples in one document; [] if no shape matches. *)

val medians : series -> series
(** Collapse duplicate keys to their median, sorted by key. *)

type cmp = {
  c_key : string;
  c_baseline : float;
  c_current : float;
  c_ratio : float;  (** current / baseline *)
}

type verdict = {
  v_ok : cmp list;
  v_regressed : cmp list;  (** ratio above threshold *)
  v_missing : string list;  (** in baseline, absent from current *)
  v_extra : string list;  (** in current, absent from baseline *)
}

val compare_series : threshold:float -> baseline:series -> current:series -> verdict
(** Median-collapses both sides, then compares key-by-key.
    [threshold] is the allowed ratio (e.g. [1.75] tolerates up to 75%
    slower). Baseline values <= 0 are skipped (reported missing). *)

val passed : verdict -> bool
(** No regressed keys. *)

val report_lines : ?label:string -> threshold:float -> verdict -> string list
(** Human-readable verdict, one line per compared key, worst first. *)
