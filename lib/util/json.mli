(** Minimal total JSON parser.

    The build image has no JSON library, and the bench-regression gate
    plus telemetry tests need to read the JSON the repo itself writes
    (bench results, metrics snapshots, log lines). This is a strict
    recursive-descent parser over the full JSON grammar: numbers become
    [float]s, objects keep field order, and errors surface as typed
    {!Err.t} values with byte offsets — the same discipline as every
    other untrusted-input boundary in the repo. No printer is provided:
    writers build their output by hand for byte-determinism. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** field order preserved; dup keys kept *)

val of_string : string -> (t, Err.t) result
(** Parse one JSON value; trailing non-whitespace is [Trailing_data].
    Nesting depth is capped (protects the gate from adversarial or
    corrupt input). *)

(** {1 Accessors} — total; [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of a key in an object. *)

val to_float : t -> float option
(** [Num]; also [Bool] as 0/1 is {e not} accepted. *)

val to_int : t -> int option
(** [Num] holding an exact integer within [int] range. *)

val to_string : t -> string option
val to_list : t -> t list option

val mem_float : string -> t -> float option
val mem_string : string -> t -> string option
val mem_list : string -> t -> t list option
