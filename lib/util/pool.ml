(* A fixed-size pool of OCaml 5 domains for data-parallel loops.

   Design notes:

   - The pool is lazy and global: the first parallel call (with jobs>1)
     spawns [jobs-1] worker domains; they sleep on a condition variable
     between regions, so idle cost is one blocked domain each. The
     calling domain always participates as worker 0, so [jobs] is the
     true parallel width.

   - Work distribution is dynamic: a region exposes [nchunks] chunks
     behind one atomic cursor and every participant (caller included)
     pulls the next chunk until the cursor runs out. Chunk boundaries
     depend only on (n, chunk) — never on scheduling — so any
     chunk-shaped intermediate state (see [parallel_reduce]) is
     deterministic for a fixed chunk size.

   - Nested regions run sequentially: a global [busy] flag makes an
     inner parallel call from a worker (or from the caller inside a
     region) fall back to the plain loop instead of deadlocking on the
     pool. This keeps composite kernels (batch-of-NTTs calling the
     parallel NTT) safe without any configuration.

   - Exceptions: the first exception raised by any chunk is kept (by
     atomic race, then stably re-raised by the caller after every
     participant has drained), so [parallel_for] has the same "raises
     what the body raises" contract as a plain for loop, up to choice
     among simultaneous failures.

   - Tracing: worker domains have no Obs sink, so each region forks an
     [Obs.Par] capture handle; worker bodies run inside
     [Zkml_obs.Obs.Par.worker_run] and the caller splices captures back in
     worker order at the end of the region, keeping traces
     deterministic. *)

let env_jobs () =
  match Sys.getenv_opt "ZKML_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)

let configured : int option ref = ref None

let jobs () =
  match !configured with
  | Some n -> n
  | None ->
      let n = env_jobs () in
      configured := Some n;
      n

(* ------------------------------------------------------------------ *)
(* The worker pool *)

type pool = {
  nworkers : int;  (* spawned domains; parallel width is nworkers+1 *)
  mutex : Mutex.t;
  work_c : Condition.t;  (* signalled when a region starts or at stop *)
  done_c : Condition.t;  (* signalled when the last worker finishes *)
  mutable generation : int;
  mutable work : (int -> unit) option;  (* slot -> unit; slots 1..nworkers *)
  mutable active : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let the_pool : pool option ref = ref None

(* true while a region is running anywhere; inner calls go sequential *)
let busy = Atomic.make false

let worker_loop p slot =
  let last = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock p.mutex;
    while (not p.stop) && p.generation = !last do
      Condition.wait p.work_c p.mutex
    done;
    if p.stop then begin
      Mutex.unlock p.mutex;
      continue_ := false
    end
    else begin
      last := p.generation;
      let w = p.work in
      Mutex.unlock p.mutex;
      (match w with
      | Some f -> ( try f slot with _ -> () )
        (* the chunk runner records exceptions itself; this catch only
           guards the pool against a broken runner *)
      | None -> ());
      Mutex.lock p.mutex;
      p.active <- p.active - 1;
      if p.active = 0 then Condition.broadcast p.done_c;
      Mutex.unlock p.mutex
    end
  done

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.mutex;
      p.stop <- true;
      Condition.broadcast p.work_c;
      Mutex.unlock p.mutex;
      List.iter Domain.join p.domains;
      the_pool := None

let exit_hook_installed = ref false

let get_pool () =
  match !the_pool with
  | Some p -> p
  | None ->
      let nworkers = jobs () - 1 in
      let p =
        {
          nworkers;
          mutex = Mutex.create ();
          work_c = Condition.create ();
          done_c = Condition.create ();
          generation = 0;
          work = None;
          active = 0;
          stop = false;
          domains = [];
        }
      in
      p.domains <-
        List.init nworkers (fun i ->
            Domain.spawn (fun () -> worker_loop p (i + 1)));
      the_pool := Some p;
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit shutdown
      end;
      p

let set_jobs n =
  let n = max 1 n in
  if n <> jobs () then begin
    shutdown ();
    configured := Some n
  end

(* Run [f slot] on every participant: slots 1..nworkers on the pool
   domains, slot 0 on the caller; returns when all are done. *)
let run_region p f =
  Mutex.lock p.mutex;
  p.work <- Some f;
  p.generation <- p.generation + 1;
  p.active <- p.nworkers;
  Condition.broadcast p.work_c;
  Mutex.unlock p.mutex;
  (try f 0 with _ -> ());
  Mutex.lock p.mutex;
  while p.active > 0 do
    Condition.wait p.done_c p.mutex
  done;
  p.work <- None;
  Mutex.unlock p.mutex

(* ------------------------------------------------------------------ *)
(* Parallel loops *)

let default_seq_below = 2048

let parallel_for_ranges ?chunk ?(seq_below = default_seq_below) n body =
  if n <= 0 then ()
  else
    let j = jobs () in
    if j <= 1 || n < seq_below || not (Atomic.compare_and_set busy false true)
    then body 0 n
    else begin
      let release () = Atomic.set busy false in
      match
        let chunk =
          match chunk with
          | Some c -> max 1 c
          | None -> max 1 ((n + (4 * j) - 1) / (4 * j))
        in
        let nchunks = (n + chunk - 1) / chunk in
        let next = Atomic.make 0 in
        let err : exn option Atomic.t = Atomic.make None in
        let run_chunks () =
          let continue_ = ref true in
          while !continue_ do
            let c = Atomic.fetch_and_add next 1 in
            if c >= nchunks || Atomic.get err <> None then continue_ := false
            else
              let lo = c * chunk in
              let hi = min n (lo + chunk) in
              try body lo hi
              with e -> ignore (Atomic.compare_and_set err None (Some e))
          done
        in
        let h = Zkml_obs.Obs.Par.fork j in
        let p = get_pool () in
        run_region p (fun slot ->
            if slot = 0 then run_chunks ()
            else Zkml_obs.Obs.Par.worker_run h (slot - 1) run_chunks);
        Zkml_obs.Obs.Par.join h;
        Atomic.get err
      with
      | None -> release ()
      | Some e ->
          release ();
          raise e
      | exception e ->
          release ();
          raise e
    end

let parallel_for ?chunk ?seq_below n f =
  parallel_for_ranges ?chunk ?seq_below n (fun lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_map_array ?(chunk = 1) ?(seq_below = 2) f a =
  (* unlike the index loops, elements here are assumed expensive (whole
     columns), so default to chunk 1 and no sequential cutoff *)
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    (* element 0 on the caller seeds the result array *)
    let out = Array.make n (f a.(0)) in
    parallel_for ~chunk ~seq_below (n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

let parallel_reduce ?(chunk = 1024) ?seq_below n ~init ~map ~combine =
  if n <= 0 then init
  else begin
    let chunk = max 1 chunk in
    let nchunks = (n + chunk - 1) / chunk in
    let parts = Array.make nchunks None in
    (* chunk geometry is fixed by [chunk] alone, and [combine] is
       required associative, so the fold below yields the same value at
       any job count *)
    parallel_for_ranges ~chunk ?seq_below n (fun lo hi ->
        parts.(lo / chunk) <- Some (map lo hi));
    let acc = ref init in
    Array.iter
      (function Some v -> acc := combine !acc v | None -> ())
      parts;
    !acc
  end
