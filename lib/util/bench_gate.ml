type series = (string * float) list

(* Time-like fields only: comparing throughput or speedup as "bigger =
   regression" would be backwards. *)
let time_like name =
  let suffix s = String.length name >= String.length s
    && String.sub name (String.length name - String.length s) (String.length s) = s
  in
  suffix "_s" || String.length name > 5 && String.sub name 0 5 = "span."

let of_par j =
  match Json.mem_list "runs" j with
  | None -> []
  | Some runs ->
      List.filter_map
        (fun run ->
          match (Json.mem_float "jobs" run, Json.mem_float "prove_s" run) with
          | Some jobs, Some t ->
              Some (Printf.sprintf "par/jobs=%.0f/prove_s" jobs, t)
          | _ -> None)
        runs

let of_quotient j =
  match Json.mem_list "models" j with
  | None -> []
  | Some models ->
      List.concat_map
        (fun m ->
          match Json.mem_string "model" m with
          | None -> []
          | Some name ->
              List.filter_map
                (fun field ->
                  match Json.mem_float field m with
                  | Some t when time_like field ->
                      Some (Printf.sprintf "quotient/%s/%s" name field, t)
                  | _ -> None)
                [ "interp_s"; "compiled_s" ])
        models

let of_kernels j =
  (* BENCH_PR7.json: field-op totals plus both MSM and both NTT path
     timings. Only the [_s]-suffixed keys are time-like; ns_per_op and
     speedup are derived and skipped. *)
  let rows list_field subject fields =
    match Json.mem_list list_field j with
    | None -> []
    | Some rows ->
        List.concat_map
          (fun row ->
            match subject row with
            | None -> []
            | Some name ->
                List.filter_map
                  (fun field ->
                    match Json.mem_float field row with
                    | Some t when time_like field ->
                        Some
                          ( Printf.sprintf "kernels/%s/%s/%s" list_field name
                              field,
                            t )
                    | _ -> None)
                  fields)
          rows
  in
  rows "field_ops"
    (fun row ->
      match (Json.mem_string "field" row, Json.mem_string "op" row) with
      | Some f, Some op -> Some (f ^ "." ^ op)
      | _ -> None)
    [ "total_s" ]
  @ rows "msm"
      (fun row ->
        Option.map (fun n -> Printf.sprintf "n=%.0f" n) (Json.mem_float "n" row))
      [ "jacobian_s"; "affine_glv_s" ]
  @ rows "ntt"
      (fun row ->
        match (Json.mem_string "field" row, Json.mem_float "k" row) with
        | Some f, Some k -> Some (Printf.sprintf "%s.k=%.0f" f k)
        | _ -> None)
      [ "reference_s"; "blocked_s" ]

let of_serve j =
  (* BENCH_PR9.json: per-kind latency percentiles from the seeded load
     generator. proofs_per_s is throughput and wall_s scales with the
     request count, so only the per-kind percentile keys are gated. *)
  match Json.mem_list "kinds" j with
  | None -> []
  | Some kinds ->
      List.concat_map
        (fun row ->
          match Json.mem_string "kind" row with
          | None -> []
          | Some kind ->
              List.filter_map
                (fun field ->
                  match Json.mem_float field row with
                  | Some t when time_like field ->
                      Some (Printf.sprintf "serve/%s/%s" kind field, t)
                  | _ -> None)
                [ "p50_s"; "p90_s"; "p99_s" ])
        kinds

let of_segments j =
  (* BENCH_PR10.json: split-and-aggregate proving. Per model both the
     monolithic and the segmented prove walls plus the segmented verify
     wall are time-like; the row counts (mono_rows / peak_rows) are
     sizes, not times, and are skipped. *)
  match Json.mem_list "models" j with
  | None -> []
  | Some models ->
      List.concat_map
        (fun m ->
          match Json.mem_string "model" m with
          | None -> []
          | Some name ->
              List.filter_map
                (fun field ->
                  match Json.mem_float field m with
                  | Some t when time_like field ->
                      Some (Printf.sprintf "segments/%s/%s" name field, t)
                  | _ -> None)
                [ "prove_mono_s"; "prove_seg_s"; "verify_seg_s" ])
        models

let of_results j =
  match Json.mem_list "results" j with
  | None -> []
  | Some rows ->
      List.concat_map
        (fun row ->
          match (Json.mem_string "section" row, Json.mem_string "model" row) with
          | Some section, Some model ->
              let base field =
                match Json.mem_float field row with
                | Some t -> [ (Printf.sprintf "%s/%s/%s" section model field, t) ]
                | None -> []
              in
              let spans =
                match Json.member "spans" row with
                | Some (Json.Obj fields) ->
                    List.filter_map
                      (fun (k, v) ->
                        Option.map
                          (fun t ->
                            (Printf.sprintf "%s/%s/span.%s" section model k, t))
                          (Json.to_float v))
                      fields
                | _ -> []
              in
              base "prove_s" @ base "verify_s" @ spans
          | _ -> [])
        rows

let series_of_json j =
  match Json.mem_string "bench" j with
  | Some "par" -> of_par j
  | Some "quotient" -> of_quotient j
  | Some "kernels" -> of_kernels j
  | Some "serve" -> of_serve j
  | Some "segments" -> of_segments j
  | Some _ -> []
  | None -> of_results j

let medians series =
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some l -> l := v :: !l
      | None -> Hashtbl.replace tbl k (ref [ v ]))
    series;
  Hashtbl.fold
    (fun k l acc ->
      let a = Array.of_list !l in
      Array.sort compare a;
      (k, a.(Array.length a / 2)) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type cmp = {
  c_key : string;
  c_baseline : float;
  c_current : float;
  c_ratio : float;
}

type verdict = {
  v_ok : cmp list;
  v_regressed : cmp list;
  v_missing : string list;
  v_extra : string list;
}

let compare_series ~threshold ~baseline ~current =
  let baseline = medians baseline and current = medians current in
  let ok = ref [] and bad = ref [] and missing = ref [] in
  List.iter
    (fun (k, b) ->
      match List.assoc_opt k current with
      | Some c when b > 0.0 ->
          let cmp =
            { c_key = k; c_baseline = b; c_current = c; c_ratio = c /. b }
          in
          if cmp.c_ratio > threshold then bad := cmp :: !bad
          else ok := cmp :: !ok
      | Some _ | None -> missing := k :: !missing)
    baseline;
  let extra =
    List.filter_map
      (fun (k, _) ->
        if List.mem_assoc k baseline then None else Some k)
      current
  in
  {
    v_ok = List.rev !ok;
    v_regressed =
      List.sort (fun a b -> compare b.c_ratio a.c_ratio) (List.rev !bad);
    v_missing = List.rev !missing;
    v_extra = extra;
  }

let passed v = v.v_regressed = []

let report_lines ?(label = "bench") ~threshold v =
  let cmp_line tag c =
    Printf.sprintf "  %-4s %-32s baseline %9.4fs  current %9.4fs  x%.2f" tag
      c.c_key c.c_baseline c.c_current c.c_ratio
  in
  let header =
    Printf.sprintf "%s: %d compared, %d regressed (threshold x%.2f)%s" label
      (List.length v.v_ok + List.length v.v_regressed)
      (List.length v.v_regressed)
      threshold
      (if v.v_missing = [] then ""
       else Printf.sprintf ", %d baseline key(s) not measured" (List.length v.v_missing))
  in
  (header :: List.map (cmp_line "FAIL") v.v_regressed)
  @ List.map (cmp_line "ok") v.v_ok
  @ (if v.v_missing = [] then []
     else [ "  skipped (baseline-only): " ^ String.concat ", " v.v_missing ])
  @
  if v.v_extra = [] then []
  else [ "  new (no baseline): " ^ String.concat ", " v.v_extra ]
