(* The NTT-friendly prime p = 29 * 2^57 + 1 = 0x3A00000000000001.

   Elements are kept in Montgomery form (R = 2^64) inside a single
   [int64]; all values satisfy 0 <= x < p < 2^62 so signed comparison is
   safe after reduction. *)

type t = int64

let name = "fp61"
let p = 0x3A00000000000001L
let modulus_limbs = [| p |]
let size_bytes = 8
let two_adicity = 57

let p_int = Int64.to_int p

(* p' = -p^-1 mod 2^64 *)
let p' = Int64_arith.neg_inv p

let reduce_once x = if Int64.unsigned_compare x p >= 0 then Int64.sub x p else x

let add a b = reduce_once (Int64.add a b)

let sub a b = if Int64.unsigned_compare a b < 0 then Int64.sub (Int64.add a p) b else Int64.sub a b

let neg a = if a = 0L then 0L else Int64.sub p a

(* Montgomery reduction of a 128-bit product (hi, lo): returns
   (hi*2^64 + lo) * 2^-64 mod p. *)
let redc hi lo =
  let m = Int64.mul lo p' in
  let mp_hi, mp_lo = Int64_arith.umul m p in
  let sum_lo = Int64.add lo mp_lo in
  let carry = if Int64_arith.ult sum_lo lo then 1L else 0L in
  (* lo + m*p has low 64 bits equal to zero by construction; the result is
     the high half plus carry. hi < p and mp_hi < p so no overflow. *)
  ignore sum_lo;
  reduce_once (Int64.add hi (Int64.add mp_hi carry))

let mul a b =
  let hi, lo = Int64_arith.umul a b in
  redc hi lo

let square a = mul a a

(* R mod p and R^2 mod p, computed by repeated modular doubling. *)
let r_mod_p =
  let x = ref 1L in
  for _ = 1 to 64 do
    x := reduce_once (Int64.add !x !x)
  done;
  !x

let r2_mod_p =
  let x = ref r_mod_p in
  for _ = 1 to 64 do
    x := reduce_once (Int64.add !x !x)
  done;
  !x

let zero = 0L
let one = r_mod_p

let of_int64 x = mul (Int64.unsigned_rem x p) r2_mod_p

let of_int x =
  if x >= 0 then of_int64 (Int64.of_int x)
  else neg (of_int64 (Int64.of_int (-x)))

let to_canonical a = redc 0L a
let to_canonical_limbs a = [| to_canonical a |]
let equal (a : t) (b : t) = a = b
let is_zero a = a = 0L
let compare a b = Int64.unsigned_compare (to_canonical a) (to_canonical b)

let pow_int base e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (square base) (e lsr 1)
  in
  go one base e

let pow_limbs base limbs =
  let acc = ref one and b = ref base in
  Array.iter
    (fun limb ->
      let l = ref limb in
      for _ = 1 to 64 do
        if Int64.logand !l 1L = 1L then acc := mul !acc !b;
        b := square !b;
        l := Int64.shift_right_logical !l 1
      done)
    limbs;
  !acc

let inv a =
  if is_zero a then raise Division_by_zero
  else pow_limbs a [| Int64.sub p 2L |]

let div a b = mul a (inv b)
let generator = of_int 3

let root_of_unity k =
  if k > two_adicity || k < 0 then
    invalid_arg "Fp61.root_of_unity: exceeds two-adicity";
  (* g^((p-1) / 2^k); p - 1 = 29 * 2^57. *)
  let e = Int64.to_int (Int64.shift_right_logical (Int64.sub p 1L) k) in
  pow_int generator e

let to_bytes a = Zkml_util.Bytes_util.int64_le (to_canonical a)

let of_bytes_exn s =
  if String.length s <> 8 then invalid_arg "Fp61.of_bytes_exn: length";
  let x = Zkml_util.Bytes_util.int64_of_le s 0 in
  if Int64.unsigned_compare x p >= 0 then
    invalid_arg "Fp61.of_bytes_exn: not canonical";
  mul x r2_mod_p

let random rng =
  let rec draw () =
    let x =
      Int64.logand (Zkml_util.Rng.next_int64 rng) 0x3FFFFFFFFFFFFFFFL
    in
    if Int64.unsigned_compare x p < 0 then x else draw ()
  in
  mul (draw ()) r2_mod_p

let to_hex a = Printf.sprintf "%016Lx" (to_canonical a)
let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)
let _ = p_int

(* In-place capability surface: a boxed [int64] is immutable, so the
   destination-passing ops cannot exist here. Generic hot loops branch
   on [mutable_repr] and stay on the allocating API for this field. *)
let mutable_repr = false
let scratch () = 0L
let unshare (a : t) = a

let immutable op = invalid_arg ("Fp61." ^ op ^ ": immutable representation")
let set _ _ = immutable "set"
let add_into _ _ _ = immutable "add_into"
let sub_into _ _ _ = immutable "sub_into"
let neg_into _ _ = immutable "neg_into"
let mul_into _ _ _ = immutable "mul_into"
let square_into _ _ = immutable "square_into"
