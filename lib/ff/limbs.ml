(** Unsigned multiprecision arithmetic on little-endian [int64] limb
    vectors, plus a thin sign-magnitude layer.

    This backs the GLV lattice derivation in [zkml_ec]: the
    extended-Euclid short-vector search and the Barrett-style reciprocal
    precomputation run once per curve (at functor-force time), and the
    per-scalar split needs only [mul]/[add]/[sub] on 2-4 limb values.
    Nothing here is performance-critical except that it must not be
    wrong: every function is total over its stated domain and the qcheck
    suite in test_ff cross-checks the ring ops against [Zarith]-free
    schoolbook identities. *)

type t = int64 array
(** Little-endian limbs; no canonical length (trailing zero limbs ok). *)

let zero_of len = Array.make (max 1 len) 0L

let is_zero a = Array.for_all (fun l -> l = 0L) a

(* Drop trailing zero limbs (keeping at least one). Every operation
   below returns a trimmed result: without this, iterated arithmetic —
   the extended-Euclid loop especially, whose remainders feed back into
   the next division — accretes thousands of zero limbs and turns
   microsecond ops into milliseconds. *)
let trim a =
  let n = Array.length a in
  let rec top i = if i <= 0 then 0 else if a.(i) <> 0L then i else top (i - 1) in
  let t = top (n - 1) in
  if t = n - 1 then a else Array.sub a 0 (t + 1)

let limb a i = if i < Array.length a then a.(i) else 0L

(* carry(x+y=s) and borrow(x-y=d) as 0/1 without branches. *)
let carry_bit x y s =
  Int64.shift_right_logical
    (Int64.logor (Int64.logand x y)
       (Int64.logand (Int64.logor x y) (Int64.lognot s)))
    63

let borrow_bit x y d =
  Int64.shift_right_logical
    (Int64.logor
       (Int64.logand (Int64.lognot x) y)
       (Int64.logand (Int64.lognot (Int64.logxor x y)) d))
    63

(* Unsigned compare; lengths may differ. *)
let compare a b =
  let n = max (Array.length a) (Array.length b) in
  let rec go i =
    if i < 0 then 0
    else
      let c = Int64.unsigned_compare (limb a i) (limb b i) in
      if c <> 0 then c else go (i - 1)
  in
  go (n - 1)

(* a + b, result one limb longer than the wider input. *)
let add a b =
  let n = max (Array.length a) (Array.length b) + 1 in
  let r = zero_of n in
  let c = ref 0L in
  for i = 0 to n - 1 do
    let x = limb a i and y = limb b i in
    let s1 = Int64.add x y in
    let c1 = carry_bit x y s1 in
    let s2 = Int64.add s1 !c in
    let c2 = carry_bit s1 !c s2 in
    r.(i) <- s2;
    c := Int64.logor c1 c2
  done;
  trim r

(* a - b; requires a >= b. *)
let sub_exn a b =
  if compare a b < 0 then invalid_arg "Limbs.sub_exn: underflow";
  let n = Array.length a in
  let r = zero_of n in
  let bw = ref 0L in
  for i = 0 to n - 1 do
    let x = limb a i and y = limb b i in
    let d1 = Int64.sub x y in
    let w1 = borrow_bit x y d1 in
    let d2 = Int64.sub d1 !bw in
    let w2 = borrow_bit d1 !bw d2 in
    r.(i) <- d2;
    bw := Int64.logor w1 w2
  done;
  trim r

(* Schoolbook product, len a + len b limbs. *)
let mul a b =
  let na = Array.length a and nb = Array.length b in
  let r = zero_of (na + nb) in
  for i = 0 to na - 1 do
    if a.(i) <> 0L then begin
      let c = ref 0L in
      for j = 0 to nb - 1 do
        let hi, lo = Int64_arith.umul a.(i) b.(j) in
        let s1 = Int64.add r.(i + j) lo in
        let c1 = carry_bit r.(i + j) lo s1 in
        let s2 = Int64.add s1 !c in
        let c2 = carry_bit s1 !c s2 in
        r.(i + j) <- s2;
        c := Int64.add hi (Int64.add c1 c2)
      done;
      (* propagate the final carry word *)
      let k = ref (i + nb) in
      while !c <> 0L do
        let s = Int64.add r.(!k) !c in
        let cy = carry_bit r.(!k) !c s in
        r.(!k) <- s;
        c := cy;
        incr k
      done
    end
  done;
  trim r

let shift_left a k =
  let words = k / 64 and bits = k mod 64 in
  let n = Array.length a + words + 1 in
  let r = zero_of n in
  for i = Array.length a - 1 downto 0 do
    let v = a.(i) in
    r.(i + words) <- Int64.logor r.(i + words) (Int64.shift_left v bits);
    if bits > 0 then
      r.(i + words + 1) <-
        Int64.logor r.(i + words + 1) (Int64.shift_right_logical v (64 - bits))
  done;
  trim r

let shift_right a k =
  let words = k / 64 and bits = k mod 64 in
  let n = max 1 (Array.length a - words) in
  let r = zero_of n in
  for i = 0 to n - 1 do
    let lo = Int64.shift_right_logical (limb a (i + words)) bits in
    let hi =
      if bits = 0 then 0L
      else Int64.shift_left (limb a (i + words + 1)) (64 - bits)
    in
    r.(i) <- Int64.logor lo hi
  done;
  trim r

(* Index of the highest set bit, plus one (0 for zero). *)
let bits a =
  let rec top i = if i < 0 then -1 else if a.(i) <> 0L then i else top (i - 1) in
  match top (Array.length a - 1) with
  | -1 -> 0
  | i ->
      let v = ref a.(i) and n = ref 0 in
      while !v <> 0L do
        v := Int64.shift_right_logical !v 1;
        incr n
      done;
      (64 * i) + !n

(* Long division by shift-and-subtract: O(bits a * limbs) — derivation
   time only (the per-scalar GLV split uses reciprocal multiplication
   instead). *)
let div_rem a b =
  if is_zero b then raise Division_by_zero;
  let n = Array.length a in
  let q = zero_of n and r = ref (zero_of (Array.length b)) in
  for i = bits a - 1 downto 0 do
    r := shift_left !r 1;
    let bit =
      Int64.logand (Int64.shift_right_logical a.(i / 64) (i mod 64)) 1L
    in
    if bit = 1L then !r.(0) <- Int64.logor !r.(0) 1L;
    if compare !r b >= 0 then begin
      r := sub_exn !r b;
      q.(i / 64) <- Int64.logor q.(i / 64) (Int64.shift_left 1L (i mod 64))
    end
  done;
  (trim q, trim !r)

let of_int64 x = [| x |]

(** {1 Sign-magnitude integers} *)

module Signed = struct
  type nonrec t = { neg : bool; mag : t }
  (** [neg] is ignored when [mag] is zero. *)

  let of_limbs ?(neg = false) mag = { neg; mag }
  let zero = { neg = false; mag = [| 0L |] }
  let is_zero s = is_zero s.mag
  let neg s = { s with neg = not s.neg }

  let add x y =
    if x.neg = y.neg then { neg = x.neg; mag = add x.mag y.mag }
    else begin
      let c = compare x.mag y.mag in
      if c = 0 then zero
      else if c > 0 then { neg = x.neg; mag = sub_exn x.mag y.mag }
      else { neg = y.neg; mag = sub_exn y.mag x.mag }
    end

  let sub x y = add x (neg y)
  let mul x y = { neg = x.neg <> y.neg; mag = mul x.mag y.mag }
end
