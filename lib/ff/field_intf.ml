(** Signature of prime fields used throughout the proving stack.

    Two instantiations exist: {!Fp61} (a 62-bit NTT-friendly prime, used
    for fast benchmark sweeps) and the 255-bit Pasta fields in {!Pasta}
    (the real halo2 curve cycle, built on the {!Limb4} Montgomery
    functor). All protocol code is functorized over this signature. *)

module type S = sig
  type t

  val name : string

  val modulus_limbs : int64 array
  (** Little-endian 64-bit limbs of the modulus [p]. *)

  val size_bytes : int
  (** Canonical serialized size. *)

  val zero : t
  val one : t

  val of_int : int -> t
  (** Embeds an OCaml integer; negative integers map to [p - |x|]. *)

  val of_int64 : int64 -> t
  (** Embeds a non-negative 64-bit value (interpreted unsigned). *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val square : t -> t

  val inv : t -> t
  (** Multiplicative inverse. Raises [Division_by_zero] on zero. *)

  val div : t -> t -> t
  val equal : t -> t -> bool
  val is_zero : t -> bool

  val compare : t -> t -> int
  (** Total order on canonical representatives (used for sorting in the
      lookup argument); not arithmetically meaningful. *)

  val pow_int : t -> int -> t
  (** [pow_int x e] for [e >= 0]. *)

  val pow_limbs : t -> int64 array -> t
  (** Exponentiation by a little-endian multi-limb exponent. *)

  val generator : t
  (** A fixed generator of the multiplicative group. *)

  val two_adicity : int
  (** Largest [s] with [2^s | p - 1]. *)

  val root_of_unity : int -> t
  (** [root_of_unity k] is a primitive [2^k]-th root of unity;
      [k <= two_adicity]. *)

  val to_canonical_limbs : t -> int64 array
  (** Canonical (non-Montgomery) little-endian limbs in [\[0, p)]. *)

  val to_bytes : t -> string
  (** Canonical little-endian encoding, [size_bytes] long. *)

  val of_bytes_exn : string -> t
  (** Inverse of {!to_bytes}; raises [Invalid_argument] if out of range. *)

  val random : Zkml_util.Rng.t -> t
  val to_hex : t -> string
  val pp : Format.formatter -> t -> unit

  (** {1 In-place arithmetic}

      Destination-passing variants of the ring operations for hot loops
      (NTT butterflies, the compiled quotient evaluator). Without
      flambda, every cross-module call that returns a fresh element
      allocates; fields whose representation is a mutable buffer
      ([mutable_repr = true], e.g. the 4-limb Montgomery fields) instead
      expose [op_into dst a b], which overwrites [dst] and allocates
      nothing. [dst] may alias any operand.

      Contract: callers may only write into buffers they own — elements
      obtained from {!scratch} or {!unshare}. Writing into a value
      received from the allocating API (or into [zero]/[one]/table
      entries) is undefined behaviour, because values may be shared
      structurally ([Array.make n zero] aliases one buffer n times).

      Fields with an immutable representation ([mutable_repr = false],
      e.g. the boxed-[int64] {!Fp61}) raise [Invalid_argument] from
      every [_into] operation; [unshare] is the identity there. Generic
      code must branch on [mutable_repr]. *)

  val mutable_repr : bool
  (** Whether [t] is a caller-mutable buffer and the [_into] ops below
      are implemented. *)

  val scratch : unit -> t
  (** A fresh writable element, initially zero. *)

  val unshare : t -> t
  (** A physically fresh copy the caller may mutate (identity for
      immutable representations). *)

  val set : t -> t -> unit
  (** [set dst src] overwrites [dst] with the value of [src]. *)

  val add_into : t -> t -> t -> unit
  val sub_into : t -> t -> t -> unit
  val neg_into : t -> t -> unit
  val mul_into : t -> t -> t -> unit
  val square_into : t -> t -> unit
end
