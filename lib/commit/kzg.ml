(* KZG polynomial commitments [Kate-Zaverucha-Goldberg 2010].

   The SRS is (G, tau G, tau^2 G, ...). The standard scheme checks the
   opening with one pairing equation; our group backends have no pairing,
   so verification is *designated-verifier*: the verifier holds tau and
   checks  C - v*G == (tau - z) * W  directly in the group. This is the
   same equation the pairing would verify in the exponent, so prover
   work, proof bytes and completeness/soundness structure are identical;
   only public verifiability is lost (documented in DESIGN.md). *)

module Make (G : Zkml_ec.Group_intf.S) :
  Scheme_intf.S with module G = G = struct
  module G = G
  module F = G.Scalar
  module P = Zkml_poly.Polynomial.Make (F)

  type params = {
    srs : G.t array;
    trapdoor : F.t;  (* designated-verifier secret *)
  }

  type proof = G.t

  type deferred = G.t  (* see [verify_deferred] *)

  let name = "kzg"

  let setup ~max_size ~seed =
    (* The trusted-setup ceremony is simulated in-process: tau is derived
       from the seed, powers are computed, and tau is retained for the
       designated-verifier check. *)
    let rng =
      Zkml_util.Rng.create
        (Zkml_util.Bytes_util.int64_of_le
           (Zkml_util.Sha256.digest ("zkml-kzg-setup:" ^ seed))
           0)
    in
    let tau = F.random rng in
    let srs = Array.make max_size G.generator in
    for i = 1 to max_size - 1 do
      srs.(i) <- G.mul srs.(i - 1) tau
    done;
    { srs; trapdoor = tau }

  let max_size t = Array.length t.srs

  module M = Zkml_ec.Msm.Make (G)

  let m_commits =
    Zkml_obs.Metrics.counter
      ~labels:[ ("backend", name) ]
      ~help:"Polynomial commitments computed" "zkml_commitments_total"

  let m_final_checks =
    Zkml_obs.Metrics.counter
      ~labels:[ ("backend", name) ]
      ~help:"PCS final checks (one per verify or amortized batch)"
      "zkml_pcs_final_checks_total"

  let commit t coeffs =
    if Array.length coeffs > Array.length t.srs then
      invalid_arg "Kzg.commit: polynomial too large for SRS";
    Zkml_obs.Obs.count "commitments" 1;
    Zkml_obs.Metrics.add m_commits 1.0;
    M.msm (Array.sub t.srs 0 (Array.length coeffs)) coeffs

  let commit_many t polys =
    (* per-column fan-out only pays once each MSM is non-trivial *)
    let m = Array.fold_left (fun acc p -> max acc (Array.length p)) 0 polys in
    let seq_below = if m >= 256 then 2 else max_int in
    Zkml_util.Pool.parallel_map_array ~seq_below (commit t) polys
  let add_commitment = G.add
  let scale_commitment = G.mul

  let open_at t _transcript coeffs z =
    Zkml_obs.Metrics.phase "opening" @@ fun () ->
    Zkml_obs.Obs.Span.with_ ~name:"open" @@ fun () ->
    let v = P.eval coeffs z in
    let shifted = Array.copy coeffs in
    if Array.length shifted = 0 then (v, G.zero)
    else begin
      shifted.(0) <- F.sub shifted.(0) v;
      let w = P.div_by_linear shifted z in
      (v, commit t w)
    end

  (* The verification equation moved to one side:
       D = C - v*G - (tau - z)*W
     so a valid opening's deferred element is the group zero and any
     linear combination of valid claims stays zero. Evaluating "D == 0"
     (resp. the RLC "sum r_i D_i == 0") is the designated-verifier
     stand-in for the final pairing-product check, so batching N claims
     costs one final check instead of N. *)
  let verify_deferred t _transcript c ~point ~value w =
    Some
      (G.sub
         (G.sub c (G.mul G.generator value))
         (G.mul w (F.sub t.trapdoor point)))

  let deferred_check _t ~next_coeff ds =
    Zkml_obs.Obs.count "pcs.final_check" 1;
    Zkml_obs.Metrics.add m_final_checks 1.0;
    let acc =
      List.fold_left
        (fun acc d -> G.add acc (G.mul d (next_coeff ())))
        G.zero ds
    in
    G.equal acc G.zero

  let verify t transcript c ~point ~value w =
    (* C - v*G == (tau - z) * W, via the deferred path on a singleton *)
    match verify_deferred t transcript c ~point ~value w with
    | None -> false
    | Some d -> deferred_check t ~next_coeff:(fun () -> F.one) [ d ]

  let proof_to_bytes w = G.to_bytes w

  module Err = Zkml_util.Err

  let read_proof _t r =
    Err.Reader.decode r ~what:"kzg opening" G.size_bytes G.of_bytes_exn

  let read_proof_exn t s ~pos =
    let r = Err.Reader.of_string s in
    ignore (Err.get_exn (Err.Reader.take r ~what:"kzg opening prefix" pos));
    let p = Err.get_exn (read_proof t r) in
    (p, Err.Reader.pos r)
end
