(* Inner-product-argument polynomial commitments (the transparent halo2
   backend; no trusted setup). Opening is the recursive-halving argument
   of Bouneh et al. / Bulletproofs:

     claim:  C = <a, G>  and  v = <a, b>  with b = (1, z, z^2, ...).

   Each round sends L/R, folds the vectors by a transcript challenge x:
     a' = a_lo * x + a_hi * x^-1
     b' = b_lo * x^-1 + b_hi * x      G' = G_lo * x^-1 + G_hi * x
   so that  <a',G'> + <a',b'> U = P + x^2 L + x^-2 R. The proof carries
   2 log n group elements, and verification costs an O(n) MSM — exactly
   the proof-size and verify-time asymmetry the paper reports for IPA
   (Table 7 vs Table 6). *)

module Make (G : Zkml_ec.Group_intf.S) :
  Scheme_intf.S with module G = G = struct
  module G = G
  module F = G.Scalar
  module M = Zkml_ec.Msm.Make (G)
  module Ch = Zkml_transcript.Transcript.Challenge (F)

  type params = { gens : G.t array; u : G.t }

  type proof = { ls : G.t array; rs : G.t array; a_final : F.t }

  (* An opening claim folded down to "one size-n MSM over the fixed
     generators equals a cheap group element":
       msm(gens, d_scalars) == d_rhs
     with d_scalars = a_final * s (the verifier's folded-basis scalars)
     and d_rhs = C + v*[xi]U + sum(x_j^2 L_j + x_j^-2 R_j)
                 - a_final*b_final*[xi]U.
     The MSM is the dominant cost of IPA verification; deferring it lets
     a batch of N claims share a single MSM by linearity:
       msm(gens, sum r_i * d_scalars_i) == sum r_i * d_rhs_i. *)
  type deferred = { d_scalars : F.t array; d_rhs : G.t }

  let name = "ipa"

  let setup ~max_size ~seed =
    let n =
      let rec pow2 k = if k >= max_size then k else pow2 (2 * k) in
      pow2 1
    in
    let all = G.derive_generators ("ipa:" ^ seed) (n + 1) in
    { gens = Array.sub all 0 n; u = all.(n) }

  let max_size t = Array.length t.gens

  let m_commits =
    Zkml_obs.Metrics.counter
      ~labels:[ ("backend", name) ]
      ~help:"Polynomial commitments computed" "zkml_commitments_total"

  let m_final_checks =
    Zkml_obs.Metrics.counter
      ~labels:[ ("backend", name) ]
      ~help:"PCS final checks (one per verify or amortized batch)"
      "zkml_pcs_final_checks_total"

  let commit t coeffs =
    if Array.length coeffs > Array.length t.gens then
      invalid_arg "Ipa.commit: polynomial too large for params";
    Zkml_obs.Obs.count "commitments" 1;
    Zkml_obs.Metrics.add m_commits 1.0;
    M.msm (Array.sub t.gens 0 (Array.length coeffs)) coeffs

  let commit_many t polys =
    (* per-column fan-out only pays once each MSM is non-trivial *)
    let m = Array.fold_left (fun acc p -> max acc (Array.length p)) 0 polys in
    let seq_below = if m >= 256 then 2 else max_int in
    Zkml_util.Pool.parallel_map_array ~seq_below (commit t) polys
  let add_commitment = G.add
  let scale_commitment = G.mul

  let inner a b =
    let acc = ref F.zero in
    Array.iteri (fun i x -> acc := F.add !acc (F.mul x b.(i))) a;
    !acc

  let open_at t transcript coeffs z =
    Zkml_obs.Metrics.phase "opening" @@ fun () ->
    Zkml_obs.Obs.Span.with_ ~name:"open" @@ fun () ->
    let n = Array.length t.gens in
    let a = Array.make n F.zero in
    Array.blit coeffs 0 a 0 (Array.length coeffs);
    let b = Array.make n F.one in
    for i = 1 to n - 1 do
      b.(i) <- F.mul b.(i - 1) z
    done;
    let v = inner a b in
    Ch.absorb_scalar transcript ~label:"ipa-v" v;
    let xi = Ch.squeeze_nonzero transcript ~label:"ipa-xi" in
    let u = G.mul t.u xi in
    let g = Array.copy t.gens in
    let rounds =
      let rec log2 k acc = if k <= 1 then acc else log2 (k / 2) (acc + 1) in
      log2 n 0
    in
    let ls = Array.make rounds G.zero and rs = Array.make rounds G.zero in
    let len = ref n in
    let a = ref a and b = ref b and g = ref g in
    for j = 0 to rounds - 1 do
      let half = !len / 2 in
      let a_lo = Array.sub !a 0 half and a_hi = Array.sub !a half half in
      let b_lo = Array.sub !b 0 half and b_hi = Array.sub !b half half in
      let g_lo = Array.sub !g 0 half and g_hi = Array.sub !g half half in
      let l = G.add (M.msm g_hi a_lo) (G.mul u (inner a_lo b_hi)) in
      let r = G.add (M.msm g_lo a_hi) (G.mul u (inner a_hi b_lo)) in
      ls.(j) <- l;
      rs.(j) <- r;
      Zkml_transcript.Transcript.absorb_bytes transcript ~label:"ipa-l"
        (G.to_bytes l);
      Zkml_transcript.Transcript.absorb_bytes transcript ~label:"ipa-r"
        (G.to_bytes r);
      let x = Ch.squeeze_nonzero transcript ~label:"ipa-x" in
      let x_inv = F.inv x in
      a := Array.init half (fun i -> F.add (F.mul a_lo.(i) x) (F.mul a_hi.(i) x_inv));
      b := Array.init half (fun i -> F.add (F.mul b_lo.(i) x_inv) (F.mul b_hi.(i) x));
      g :=
        Array.init half (fun i ->
            G.add (G.mul g_lo.(i) x_inv) (G.mul g_hi.(i) x));
      len := half
    done;
    (v, { ls; rs; a_final = (!a).(0) })

  let verify_deferred t transcript c ~point ~value proof =
    let n = Array.length t.gens in
    let rounds = Array.length proof.ls in
    if 1 lsl rounds <> n || Array.length proof.rs <> rounds then None
    else begin
      Ch.absorb_scalar transcript ~label:"ipa-v" value;
      let xi = Ch.squeeze_nonzero transcript ~label:"ipa-xi" in
      let u = G.mul t.u xi in
      let challenges = Array.make rounds F.one in
      for j = 0 to rounds - 1 do
        Zkml_transcript.Transcript.absorb_bytes transcript ~label:"ipa-l"
          (G.to_bytes proof.ls.(j));
        Zkml_transcript.Transcript.absorb_bytes transcript ~label:"ipa-r"
          (G.to_bytes proof.rs.(j));
        challenges.(j) <- Ch.squeeze_nonzero transcript ~label:"ipa-x"
      done;
      (* s_i = prod_j x_j^(+-1): refine with each round's bit as the new
         least-significant bit. *)
      let s = ref [| F.one |] in
      Array.iter
        (fun x ->
          let x_inv = F.inv x in
          let prev = !s in
          let m = Array.length prev in
          let next = Array.make (2 * m) F.one in
          for i = 0 to m - 1 do
            next.(2 * i) <- F.mul prev.(i) x_inv;
            next.((2 * i) + 1) <- F.mul prev.(i) x
          done;
          s := next)
        challenges;
      let s = !s in
      let b_final =
        let acc = ref F.zero and zi = ref F.one in
        for i = 0 to n - 1 do
          acc := F.add !acc (F.mul s.(i) !zi);
          zi := F.mul !zi point
        done;
        !acc
      in
      (* msm(gens, a_final * s) is the lhs term G.mul (msm gens s)
         a_final by linearity; fold a_final into the scalars so the MSM
         can be shared across a batch. *)
      let d_scalars = Array.map (fun si -> F.mul si proof.a_final) s in
      let rhs = ref (G.add c (G.mul u value)) in
      for j = 0 to rounds - 1 do
        let x2 = F.square challenges.(j) in
        rhs :=
          G.add !rhs
            (G.add
               (G.mul proof.ls.(j) x2)
               (G.mul proof.rs.(j) (F.inv x2)))
      done;
      rhs := G.sub !rhs (G.mul u (F.mul proof.a_final b_final));
      Some { d_scalars; d_rhs = !rhs }
    end

  let deferred_check t ~next_coeff ds =
    Zkml_obs.Obs.count "pcs.final_check" 1;
    Zkml_obs.Metrics.add m_final_checks 1.0;
    let n = Array.length t.gens in
    let acc_scalars = Array.make n F.zero in
    let acc_rhs = ref G.zero in
    List.iter
      (fun d ->
        let r = next_coeff () in
        Array.iteri
          (fun i si -> acc_scalars.(i) <- F.add acc_scalars.(i) (F.mul r si))
          d.d_scalars;
        acc_rhs := G.add !acc_rhs (G.mul d.d_rhs r))
      ds;
    G.equal (M.msm t.gens acc_scalars) !acc_rhs

  let verify t transcript c ~point ~value proof =
    match verify_deferred t transcript c ~point ~value proof with
    | None -> false
    | Some d -> deferred_check t ~next_coeff:(fun () -> F.one) [ d ]

  let proof_to_bytes p =
    let buf = Buffer.create 256 in
    Array.iter (fun l -> Buffer.add_string buf (G.to_bytes l)) p.ls;
    Array.iter (fun r -> Buffer.add_string buf (G.to_bytes r)) p.rs;
    Buffer.add_string buf (F.to_bytes p.a_final);
    Buffer.contents buf

  module Err = Zkml_util.Err

  let read_proof t r =
    let open Err in
    let rounds =
      let rec log2 k acc = if k <= 1 then acc else log2 (k / 2) (acc + 1) in
      log2 (Array.length t.gens) 0
    in
    let read_gs what k =
      let acc = Array.make k G.zero in
      let rec go i =
        if i = k then Ok acc
        else
          let* g = Reader.decode r ~what G.size_bytes G.of_bytes_exn in
          acc.(i) <- g;
          go (i + 1)
      in
      go 0
    in
    let* ls = read_gs "ipa L" rounds in
    let* rs = read_gs "ipa R" rounds in
    let* a_final = Reader.decode r ~what:"ipa a" F.size_bytes F.of_bytes_exn in
    Ok { ls; rs; a_final }

  let read_proof_exn t s ~pos =
    let r = Err.Reader.of_string s in
    ignore (Err.get_exn (Err.Reader.take r ~what:"ipa proof prefix" pos));
    let p = Err.get_exn (read_proof t r) in
    (p, Err.Reader.pos r)
end
