(** Signature of polynomial commitment schemes (PCS). The Plonkish prover
    is functorized over this so the KZG and IPA backends of the paper
    (Tables 6 vs 7) share all circuit code.

    Both schemes are linearly homomorphic; the prover batches openings at
    a common point by random linear combination using {!S.scale_commitment}
    and {!S.add_commitment} before calling {!S.open_at} once per point. *)

module type S = sig
  module G : Zkml_ec.Group_intf.S

  type params
  type proof

  type deferred
  (** A fully-replayed opening claim reduced to its final group check,
      with that check left unevaluated. The final check is the expensive
      part of verification (one pairing for real KZG, one size-n MSM for
      IPA); deferring it lets {!deferred_check} evaluate a whole batch of
      claims with a single check via a random linear combination. *)

  val name : string

  val setup : max_size:int -> seed:string -> params
  (** Supports committing to polynomials with up to [max_size]
      coefficients. *)

  val max_size : params -> int

  val commit : params -> G.Scalar.t array -> G.t
  (** Commit to a coefficient vector (length <= [max_size params]). *)

  val commit_many : params -> G.Scalar.t array array -> G.t array
  (** [commit_many params polys] = [Array.map (commit params) polys],
      with the commitments computed in parallel over the domain pool
      (identical results at any job count). *)

  val add_commitment : G.t -> G.t -> G.t
  val scale_commitment : G.t -> G.Scalar.t -> G.t

  val open_at :
    params ->
    Zkml_transcript.Transcript.t ->
    G.Scalar.t array ->
    G.Scalar.t ->
    G.Scalar.t * proof
  (** [open_at params transcript coeffs z] evaluates the polynomial at
      [z] and produces an opening proof. *)

  val verify :
    params ->
    Zkml_transcript.Transcript.t ->
    G.t ->
    point:G.Scalar.t ->
    value:G.Scalar.t ->
    proof ->
    bool

  val verify_deferred :
    params ->
    Zkml_transcript.Transcript.t ->
    G.t ->
    point:G.Scalar.t ->
    value:G.Scalar.t ->
    proof ->
    deferred option
  (** Replay exactly the transcript interaction of {!verify} and reduce
      the claim to a {!deferred} final check. [None] means the proof is
      structurally invalid (wrong round count) and the claim is
      unconditionally false. Evaluating the result with
      {!deferred_check} on a singleton list is equivalent to {!verify}. *)

  val deferred_check :
    params -> next_coeff:(unit -> G.Scalar.t) -> deferred list -> bool
  (** Evaluate a batch of deferred claims with one final check: each
      claim is scaled by a fresh coefficient from [next_coeff] (called
      once per claim, in list order) and the combination is checked as a
      single group equation. Sound when the coefficients are
      unpredictable to the prover (squeezed from a transcript that
      absorbed every proof in the batch); a batch containing any false
      claim is rejected except with negligible probability. Records one
      ["pcs.final_check"] Obs count however long the list is. *)

  val proof_to_bytes : proof -> string

  val read_proof :
    params -> Zkml_util.Err.Reader.t -> (proof, Zkml_util.Err.t) result
  (** Parse a proof from the reader's cursor, advancing it just past
      the proof. Total over adversarial bytes: truncation and
      non-canonical encodings come back as typed errors, never as an
      exception (the proof bytes are the untrusted half of every
      verification). *)

  val read_proof_exn : params -> string -> pos:int -> proof * int
  (** Historical raising variant for internal callers; raises
      {!Zkml_util.Err.Error}. *)
end
