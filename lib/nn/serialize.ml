(** Textual model format — the stand-in for tflite flatbuffers (see
    DESIGN.md). One line per node:

      node <id> <op> in=<i,j,...> [attrs] [data]

    Weight data is stored inline as "%h" hex floats for exact
    round-tripping.

    Model files are an untrusted-input boundary (a verifier accepts
    them from outsiders), so parsing is total: {!of_string} and
    {!of_file} return [(Graph.t, Err.t) result] with 1-based line
    numbers in every diagnostic, and validate structure the writer
    guarantees — node ids in sequence, exactly one outputs line,
    output ids in range, weight data finite and matching its shape,
    pad lists of even length. The raising variants ({!of_string_exn},
    {!load}) are thin wrappers for internal callers reading files the
    process itself wrote. *)

module T = Zkml_tensor.Tensor
module Err = Zkml_util.Err

open Err

(* ------------------------------------------------------------------ *)
(* Writers *)

let shape_str s = String.concat "," (List.map string_of_int (Array.to_list s))

let pads_str pads =
  String.concat ","
    (List.concat_map (fun (a, b) -> [ string_of_int a; string_of_int b ])
       (Array.to_list pads))

let padding_str = function Op.Same -> "same" | Op.Valid -> "valid"

let op_to_string (op : Op.t) =
  match op with
  | Input { shape } -> Printf.sprintf "input shape=%s" (shape_str shape)
  | Weight { tensor } ->
      let floats =
        String.concat " "
          (List.map (fun f -> Printf.sprintf "%h" f)
             (Array.to_list (T.data tensor)))
      in
      Printf.sprintf "weight shape=%s data=%s" (shape_str (T.shape tensor)) floats
  | Conv2d { stride; padding } ->
      Printf.sprintf "conv2d stride=%d padding=%s" stride (padding_str padding)
  | Depthwise_conv2d { stride; padding } ->
      Printf.sprintf "depthwise_conv2d stride=%d padding=%s" stride
        (padding_str padding)
  | Fully_connected -> "fully_connected"
  | Batch_matmul { transpose_b } ->
      Printf.sprintf "batch_matmul transpose_b=%b" transpose_b
  | Avg_pool2d { size; stride } ->
      Printf.sprintf "avg_pool2d size=%d stride=%d" size stride
  | Max_pool2d { size; stride } ->
      Printf.sprintf "max_pool2d size=%d stride=%d" size stride
  | Global_avg_pool -> "global_avg_pool"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Squared_difference -> "squared_difference"
  | Maximum -> "maximum"
  | Minimum -> "minimum"
  | Neg -> "neg"
  | Square -> "square"
  | Reduce_sum { axis } -> Printf.sprintf "reduce_sum axis=%d" axis
  | Reduce_mean { axis } -> Printf.sprintf "reduce_mean axis=%d" axis
  | Reduce_max { axis } -> Printf.sprintf "reduce_max axis=%d" axis
  | Activation (Elu alpha) -> Printf.sprintf "act_elu alpha=%h" alpha
  | Activation a -> "act_" ^ Op.activation_name a
  | Softmax -> "softmax"
  | Layer_norm { eps } -> Printf.sprintf "layer_norm eps=%h" eps
  | Batch_norm -> "batch_norm"
  | Reshape { shape } -> Printf.sprintf "reshape shape=%s" (shape_str shape)
  | Transpose { perm } -> Printf.sprintf "transpose perm=%s" (shape_str perm)
  | Concat { axis } -> Printf.sprintf "concat axis=%d" axis
  | Slice { starts; sizes } ->
      Printf.sprintf "slice starts=%s sizes=%s" (shape_str starts)
        (shape_str sizes)
  | Pad { pads } -> Printf.sprintf "pad pads=%s" (pads_str pads)
  | Flatten -> "flatten"
  | Squeeze { axis } -> Printf.sprintf "squeeze axis=%d" axis
  | Expand_dims { axis } -> Printf.sprintf "expand_dims axis=%d" axis
  | Gather { indices; axis } ->
      Printf.sprintf "gather axis=%d indices=%s" axis (shape_str indices)

let to_string graph =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "zkml-model v1 %s\n" (Graph.name graph));
  Array.iter
    (fun (n : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "node %d in=%s %s\n" n.Graph.id
           (shape_str n.Graph.inputs)
           (op_to_string n.Graph.op)))
    (Graph.nodes graph);
  Buffer.add_string buf
    (Printf.sprintf "outputs %s\n"
       (String.concat "," (List.map string_of_int (Graph.outputs graph))));
  Buffer.contents buf

let save graph path =
  let oc = open_out path in
  output_string oc (to_string graph);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Parsers. Every function below is total; [off] is the 1-based line
   the tokens came from. *)

(* Sanity bounds: a single dimension and a tensor's element count that
   no model in scope comes near, so that a hostile shape cannot demand
   gigabytes before any later check runs. *)
let max_dim = 1 lsl 24
let max_numel = 1 lsl 26

let ints_of_csv ~off ~what s =
  if s = "" then Ok []
  else map_list (int_field ~offset:off ~what) (String.split_on_char ',' s)

let parse_int_array ~off ~what s =
  let* l = ints_of_csv ~off ~what s in
  Ok (Array.of_list l)

(* A real tensor shape: bounded dims and element count. [allow_infer]
   admits a single -1 (reshape's inferred dimension). *)
let parse_dims ~off ~what ?(allow_infer = false) s =
  let* shape = parse_int_array ~off ~what s in
  let lo = if allow_infer then -1 else 0 in
  let* () =
    iter_list
      (fun d ->
        if d < lo || d > max_dim then
          failf ~offset:off Out_of_range "%s: dimension %d outside [%d, %d]"
            what d lo max_dim
        else Ok ())
      (Array.to_list shape)
  in
  let numel = Array.fold_left (fun acc d -> acc * max d 1) 1 shape in
  if numel > max_numel then
    failf ~offset:off Out_of_range "%s: %d elements exceed limit %d" what numel
      max_numel
  else Ok shape

let parse_pads ~off s =
  let* parts = parse_int_array ~off ~what:"pads" s in
  let len = Array.length parts in
  if len mod 2 <> 0 then
    (* an odd trailing value must not be dropped silently: it would
       change the padding the executor applies vs what was written *)
    failf ~offset:off Bad_field
      "pads: odd number of values (%d); expected lo,hi pairs" len
  else
    Ok (Array.init (len / 2) (fun i -> (parts.(2 * i), parts.((2 * i) + 1))))

let parse_padding ~off = function
  | "same" -> Ok Op.Same
  | "valid" -> Ok Op.Valid
  | s -> failf ~offset:off Unknown_variant "padding: %S" s

let activation_of_string ~off = function
  | "relu" -> Ok Op.Relu
  | "relu6" -> Ok Op.Relu6
  | "sigmoid" -> Ok Op.Sigmoid
  | "tanh" -> Ok Op.Tanh
  | "gelu" -> Ok Op.Gelu
  | "exp" -> Ok Op.Exp
  | "softplus" -> Ok Op.Softplus
  | "silu" -> Ok Op.Silu
  | "rsqrt" -> Ok Op.Rsqrt
  | "sqrt" -> Ok Op.Sqrt
  | "reciprocal" -> Ok Op.Reciprocal
  | s -> failf ~offset:off Unknown_variant "activation: %S" s

let parse_attrs tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> None)
    tokens

let op_of_tokens ~off = function
  | [] -> fail ~offset:off Missing_field "empty op"
  | opname :: rest -> (
      let attrs = parse_attrs rest in
      let attr k =
        match List.assoc_opt k attrs with
        | Some v -> Ok v
        | None -> failf ~offset:off Missing_field "missing attr %s" k
      in
      let iattr k =
        let* v = attr k in
        int_field ~offset:off ~what:k v
      in
      (* strides and pool sizes of zero would loop or divide by zero in
         the executors; the writer only emits >= 1 *)
      let pos_iattr k =
        let* v = attr k in
        bounded_int_field ~offset:off ~what:k ~min:1 ~max:max_dim v
      in
      let shape_attr ?allow_infer k =
        let* v = attr k in
        parse_dims ~off ~what:k ?allow_infer v
      in
      let int_array_attr k =
        let* v = attr k in
        parse_int_array ~off ~what:k v
      in
      match opname with
      | "input" ->
          let* shape = shape_attr "shape" in
          Ok (Op.Input { shape })
      | "weight" ->
          let* shape = shape_attr "shape" in
          (* data floats follow the data= token *)
          let rec collect = function
            | [] -> []
            | tok :: rest when String.length tok > 5 && String.sub tok 0 5 = "data=" ->
                String.sub tok 5 (String.length tok - 5) :: rest
            | _ :: rest -> collect rest
          in
          let* floats =
            map_list
              (finite_float_field ~offset:off ~what:"weight data")
              (collect rest)
          in
          let data = Array.of_list floats in
          let numel = T.numel_of_shape shape in
          if Array.length data <> numel then
            failf ~offset:off Bad_field
              "weight: %d data values for a shape of %d elements"
              (Array.length data) numel
          else Ok (Op.Weight { tensor = T.of_array shape data })
      | "conv2d" ->
          let* stride = pos_iattr "stride" in
          let* p = attr "padding" in
          let* padding = parse_padding ~off p in
          Ok (Op.Conv2d { stride; padding })
      | "depthwise_conv2d" ->
          let* stride = pos_iattr "stride" in
          let* p = attr "padding" in
          let* padding = parse_padding ~off p in
          Ok (Op.Depthwise_conv2d { stride; padding })
      | "fully_connected" -> Ok Op.Fully_connected
      | "batch_matmul" ->
          let* v = attr "transpose_b" in
          let* transpose_b = bool_field ~offset:off ~what:"transpose_b" v in
          Ok (Op.Batch_matmul { transpose_b })
      | "avg_pool2d" ->
          let* size = pos_iattr "size" in
          let* stride = pos_iattr "stride" in
          Ok (Op.Avg_pool2d { size; stride })
      | "max_pool2d" ->
          let* size = pos_iattr "size" in
          let* stride = pos_iattr "stride" in
          Ok (Op.Max_pool2d { size; stride })
      | "global_avg_pool" -> Ok Op.Global_avg_pool
      | "add" -> Ok Op.Add
      | "sub" -> Ok Op.Sub
      | "mul" -> Ok Op.Mul
      | "div" -> Ok Op.Div
      | "squared_difference" -> Ok Op.Squared_difference
      | "maximum" -> Ok Op.Maximum
      | "minimum" -> Ok Op.Minimum
      | "neg" -> Ok Op.Neg
      | "square" -> Ok Op.Square
      | "reduce_sum" ->
          let* axis = iattr "axis" in
          Ok (Op.Reduce_sum { axis })
      | "reduce_mean" ->
          let* axis = iattr "axis" in
          Ok (Op.Reduce_mean { axis })
      | "reduce_max" ->
          let* axis = iattr "axis" in
          Ok (Op.Reduce_max { axis })
      | "act_elu" ->
          let* v = attr "alpha" in
          let* alpha = finite_float_field ~offset:off ~what:"alpha" v in
          Ok (Op.Activation (Op.Elu alpha))
      | "softmax" -> Ok Op.Softmax
      | "layer_norm" ->
          let* v = attr "eps" in
          let* eps = finite_float_field ~offset:off ~what:"eps" v in
          Ok (Op.Layer_norm { eps })
      | "batch_norm" -> Ok Op.Batch_norm
      | "reshape" ->
          let* shape = shape_attr ~allow_infer:true "shape" in
          Ok (Op.Reshape { shape })
      | "transpose" ->
          let* perm = int_array_attr "perm" in
          Ok (Op.Transpose { perm })
      | "concat" ->
          let* axis = iattr "axis" in
          Ok (Op.Concat { axis })
      | "slice" ->
          let* starts = int_array_attr "starts" in
          let* sizes = int_array_attr "sizes" in
          Ok (Op.Slice { starts; sizes })
      | "pad" ->
          let* v = attr "pads" in
          let* pads = parse_pads ~off v in
          Ok (Op.Pad { pads })
      | "flatten" -> Ok Op.Flatten
      | "squeeze" ->
          let* axis = iattr "axis" in
          Ok (Op.Squeeze { axis })
      | "expand_dims" ->
          let* axis = iattr "axis" in
          Ok (Op.Expand_dims { axis })
      | "gather" ->
          let* indices = int_array_attr "indices" in
          let* axis = iattr "axis" in
          Ok (Op.Gather { indices; axis })
      | s when String.length s > 4 && String.sub s 0 4 = "act_" ->
          let* a = activation_of_string ~off (String.sub s 4 (String.length s - 4)) in
          Ok (Op.Activation a)
      | s -> failf ~offset:off Unknown_variant "op: %S" s)

let of_string text =
  in_context "model"
  @@
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> fail ~offset:(Line 1) Bad_header "empty model"
  | header :: rest ->
      let* name =
        match String.split_on_char ' ' header with
        | "zkml-model" :: "v1" :: name :: _ -> Ok name
        | "zkml-model" :: v :: _ ->
            failf ~offset:(Line 1) Bad_header "unsupported version %S" v
        | _ ->
            fail ~offset:(Line 1) Bad_header
              "expected header 'zkml-model v1 <name>'"
      in
      let g = Graph.create name in
      (* the outputs line is recorded and validated after all nodes so
         its ids can be checked against the final node count *)
      let outputs = ref None in
      let rec go ln = function
        | [] -> Ok ()
        | line :: rest ->
            let off = Line ln in
            let* () =
              match String.split_on_char ' ' (String.trim line) with
              | [ "" ] | [] -> Ok ()
              | "node" :: id :: ins :: op_tokens ->
                  let* id = int_field ~offset:off ~what:"node id" id in
                  (* ids are the binding between in= references and
                     nodes: an out-of-sequence id means a duplicated,
                     dropped or reordered line, which would silently
                     rebind every later reference *)
                  if id <> Graph.num_nodes g then
                    failf ~offset:off Bad_field
                      "node id %d out of sequence (expected %d)" id
                      (Graph.num_nodes g)
                  else if
                    not (String.length ins >= 3 && String.sub ins 0 3 = "in=")
                  then fail ~offset:off Bad_field "expected in=<ids> after node id"
                  else
                    let* inputs =
                      parse_int_array ~off ~what:"in"
                        (String.sub ins 3 (String.length ins - 3))
                    in
                    let* op = op_of_tokens ~off op_tokens in
                    (* Graph.add re-checks input ids < id *)
                    let* _ =
                      guard ~offset:off Bad_field (fun () -> Graph.add g op inputs)
                    in
                    Ok ()
              | "outputs" :: [ outs ] -> (
                  match !outputs with
                  | Some (prev, _) ->
                      failf ~offset:off Duplicate_field
                        "second outputs line (first at line %d)" prev
                  | None ->
                      let* ids = ints_of_csv ~off ~what:"outputs" outs in
                      outputs := Some (ln, ids);
                      Ok ())
              | tok :: _ ->
                  failf ~offset:off Unknown_variant "unrecognised line %S" tok
            in
            go (ln + 1) rest
      in
      let* () = go 2 rest in
      let* ln, ids =
        match !outputs with
        | Some o -> Ok o
        | None -> fail Missing_field "missing outputs line"
      in
      let* () =
        iter_list
          (fun id ->
            if id < 0 || id >= Graph.num_nodes g then
              failf ~offset:(Line ln) Out_of_range
                "output id %d out of range [0, %d)" id (Graph.num_nodes g)
            else begin
              Graph.mark_output g id;
              Ok ()
            end)
          ids
      in
      Ok g

let of_string_exn text = Err.get_exn (of_string text)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error m -> fail ~context:[ "model" ] Io_error m
  | exception End_of_file ->
      fail ~context:[ "model" ] Io_error (path ^ ": unexpected end of file")

let load path = Err.get_exn (of_file path)
