(* A simulated group of order |F| over any scalar field F: elements are
   their own discrete logarithms with respect to [generator = 1]. Every
   protocol in `zkml_commit` runs unchanged over this backend (same
   message flow, same MSM shapes, same proof sizes up to element width).

   This is the DESIGN.md substitution for a pairing-capable curve: it is
   *not* binding against an adversary who exploits the representation,
   but it preserves completeness, proof structure and cost accounting,
   which is what the paper's experiments exercise. *)

module Make (F : Zkml_ff.Field_intf.S) : Group_intf.S with module Scalar = F =
struct
  module Scalar = F

  type t = F.t

  let name = "simulated-" ^ F.name
  let zero = F.zero
  let generator = F.one
  let add = F.add
  let double x = F.add x x
  let neg = F.neg
  let sub = F.sub
  let mul = F.mul
  let equal = F.equal
  let is_zero = F.is_zero
  let size_bytes = F.size_bytes
  let to_bytes = F.to_bytes
  let of_bytes_exn = F.of_bytes_exn

  let derive_generators seed n =
    Array.init n (fun i ->
        let h =
          Zkml_util.Sha256.digest (Printf.sprintf "zkml-sim-gen:%s:%d" seed i)
        in
        (* reduce 16 bytes into the field via two 64-bit words *)
        let a = Zkml_util.Bytes_util.int64_of_le h 0 in
        let b = Zkml_util.Bytes_util.int64_of_le h 8 in
        F.add (F.of_int64 a) (F.mul (F.of_int64 b) (F.pow_int (F.of_int 2) 64)))

  let random = F.random

  (* The "affine" representation of a simulated element is the element
     itself: additions are field additions, so batching buys no
     inversions — but the cells still satisfy the mutable-accumulator
     contract the batch-affine MSM scheduler relies on. *)
  module Affine = struct
    type point = { mutable v : F.t }

    let infinity () = { v = F.zero }
    let is_infinity p = F.is_zero p.v
    let neg p = { v = F.neg p.v }
    let to_group p = p.v
    let batch_of_group pts = Array.map (fun g -> { v = g }) pts

    let batch_add (acc : point array) ~(dst : int array) ~(src : point array)
        ~(len : int) =
      for i = 0 to len - 1 do
        let a = acc.(dst.(i)) in
        a.v <- F.add a.v src.(i).v
      done
  end

  (* No efficient endomorphism: a cube root of unity would need
     3 | |F| - 1, which e.g. Fp61 lacks; scalar decomposition buys
     nothing when group adds are single field adds anyway. *)
  let endo = None
end
