(** Multi-scalar multiplication. MSMs dominate proving cost in halo2 (the
    paper's cost model, §7.4, counts them explicitly), so we implement the
    bucket (Pippenger) method with a size-dependent window. *)

module Make (G : Group_intf.S) = struct
  module Pool = Zkml_util.Pool

  let naive points scalars =
    (* chunked sum; G.add is associative, and partial sums combine in
       ascending chunk order with a job-count-independent chunk size, so
       the result is identical at any width *)
    Pool.parallel_reduce ~chunk:64 ~seq_below:128 (Array.length points)
      ~init:G.zero
      ~map:(fun lo hi ->
        let acc = ref G.zero in
        for i = lo to hi - 1 do
          acc := G.add !acc (G.mul points.(i) scalars.(i))
        done;
        !acc)
      ~combine:G.add

  let scalar_bits = 64 * Array.length G.Scalar.modulus_limbs

  let window_size n =
    if n < 8 then 2
    else if n < 32 then 4
    else if n < 256 then 6
    else if n < 4096 then 9
    else 12

  (* Extract c bits of the canonical scalar starting at bit position pos. *)
  let digit limbs pos c =
    let limb_idx = pos / 64 and off = pos mod 64 in
    if limb_idx >= Array.length limbs then 0
    else begin
      let lo = Int64.shift_right_logical limbs.(limb_idx) off in
      let v =
        if off + c <= 64 || limb_idx + 1 >= Array.length limbs then lo
        else
          Int64.logor lo (Int64.shift_left limbs.(limb_idx + 1) (64 - off))
      in
      Int64.to_int (Int64.logand v (Int64.of_int ((1 lsl c) - 1)))
    end

  let pippenger points scalars =
    let n = Array.length points in
    assert (Array.length scalars = n);
    if n = 0 then G.zero
    else begin
      let c = window_size n in
      let limbs = Array.map G.Scalar.to_canonical_limbs scalars in
      let windows = (scalar_bits + c - 1) / c in
      (* windows are independent, so their bucket accumulation runs
         concurrently; each window's inner loops are exactly the
         sequential ones, so sums.(w) is representation-identical at any
         job count. Below ~256 points a window is too little work to
         amortize the region dispatch, so small MSMs stay sequential. *)
      let sums = Array.make windows G.zero in
      let seq_below = if n >= 256 then 2 else max_int in
      Pool.parallel_for ~chunk:1 ~seq_below windows (fun w ->
          let buckets = Array.make ((1 lsl c) - 1) G.zero in
          for i = 0 to n - 1 do
            let d = digit limbs.(i) (w * c) c in
            if d <> 0 then buckets.(d - 1) <- G.add buckets.(d - 1) points.(i)
          done;
          let running = ref G.zero and sum = ref G.zero in
          for b = Array.length buckets - 1 downto 0 do
            running := G.add !running buckets.(b);
            sum := G.add !sum !running
          done;
          sums.(w) <- !sum);
      (* the doubling combine stays sequential: acc = 2^c * acc + sum_w,
         highest window first — the same op sequence as before *)
      let acc = ref G.zero in
      for w = windows - 1 downto 0 do
        for _ = 1 to c do
          acc := G.double !acc
        done;
        acc := G.add !acc sums.(w)
      done;
      !acc
    end

  let msm_core points scalars =
    if Array.length points <= 4 then naive points scalars
    else pippenger points scalars

  let msm_hist =
    Zkml_obs.Metrics.histogram
      ~labels:[ ("phase", "msm") ]
      ~help:"Per-phase wall time of the proving/verifying pipeline"
      "zkml_phase_seconds"

  let msm points scalars =
    Zkml_obs.Metrics.time msm_hist @@ fun () ->
    if Zkml_obs.Obs.enabled () then
      Zkml_obs.Obs.Span.with_ ~name:"msm" (fun () ->
          Zkml_obs.Obs.count "msm.points" (Array.length points);
          msm_core points scalars)
    else msm_core points scalars
end
